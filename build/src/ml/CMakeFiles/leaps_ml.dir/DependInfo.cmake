
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cgraph_model.cc" "src/ml/CMakeFiles/leaps_ml.dir/cgraph_model.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/cgraph_model.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/leaps_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/leaps_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/distance.cc" "src/ml/CMakeFiles/leaps_ml.dir/distance.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/distance.cc.o.d"
  "/root/repo/src/ml/dtree.cc" "src/ml/CMakeFiles/leaps_ml.dir/dtree.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/dtree.cc.o.d"
  "/root/repo/src/ml/hcluster.cc" "src/ml/CMakeFiles/leaps_ml.dir/hcluster.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/hcluster.cc.o.d"
  "/root/repo/src/ml/hmm.cc" "src/ml/CMakeFiles/leaps_ml.dir/hmm.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/hmm.cc.o.d"
  "/root/repo/src/ml/kernel.cc" "src/ml/CMakeFiles/leaps_ml.dir/kernel.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/kernel.cc.o.d"
  "/root/repo/src/ml/logreg.cc" "src/ml/CMakeFiles/leaps_ml.dir/logreg.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/logreg.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/leaps_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/leaps_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/scaler.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/ml/CMakeFiles/leaps_ml.dir/svm.cc.o" "gcc" "src/ml/CMakeFiles/leaps_ml.dir/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/leaps_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/leaps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leaps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
