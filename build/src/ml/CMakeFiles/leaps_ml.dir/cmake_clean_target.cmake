file(REMOVE_RECURSE
  "libleaps_ml.a"
)
