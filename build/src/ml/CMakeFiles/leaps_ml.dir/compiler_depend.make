# Empty compiler generated dependencies file for leaps_ml.
# This may be replaced when dependencies are built.
