file(REMOVE_RECURSE
  "CMakeFiles/leaps_ml.dir/cgraph_model.cc.o"
  "CMakeFiles/leaps_ml.dir/cgraph_model.cc.o.d"
  "CMakeFiles/leaps_ml.dir/cross_validation.cc.o"
  "CMakeFiles/leaps_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/leaps_ml.dir/dataset.cc.o"
  "CMakeFiles/leaps_ml.dir/dataset.cc.o.d"
  "CMakeFiles/leaps_ml.dir/distance.cc.o"
  "CMakeFiles/leaps_ml.dir/distance.cc.o.d"
  "CMakeFiles/leaps_ml.dir/dtree.cc.o"
  "CMakeFiles/leaps_ml.dir/dtree.cc.o.d"
  "CMakeFiles/leaps_ml.dir/hcluster.cc.o"
  "CMakeFiles/leaps_ml.dir/hcluster.cc.o.d"
  "CMakeFiles/leaps_ml.dir/hmm.cc.o"
  "CMakeFiles/leaps_ml.dir/hmm.cc.o.d"
  "CMakeFiles/leaps_ml.dir/kernel.cc.o"
  "CMakeFiles/leaps_ml.dir/kernel.cc.o.d"
  "CMakeFiles/leaps_ml.dir/logreg.cc.o"
  "CMakeFiles/leaps_ml.dir/logreg.cc.o.d"
  "CMakeFiles/leaps_ml.dir/metrics.cc.o"
  "CMakeFiles/leaps_ml.dir/metrics.cc.o.d"
  "CMakeFiles/leaps_ml.dir/scaler.cc.o"
  "CMakeFiles/leaps_ml.dir/scaler.cc.o.d"
  "CMakeFiles/leaps_ml.dir/svm.cc.o"
  "CMakeFiles/leaps_ml.dir/svm.cc.o.d"
  "libleaps_ml.a"
  "libleaps_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
