
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attack.cc" "src/sim/CMakeFiles/leaps_sim.dir/attack.cc.o" "gcc" "src/sim/CMakeFiles/leaps_sim.dir/attack.cc.o.d"
  "/root/repo/src/sim/behavior.cc" "src/sim/CMakeFiles/leaps_sim.dir/behavior.cc.o" "gcc" "src/sim/CMakeFiles/leaps_sim.dir/behavior.cc.o.d"
  "/root/repo/src/sim/executor.cc" "src/sim/CMakeFiles/leaps_sim.dir/executor.cc.o" "gcc" "src/sim/CMakeFiles/leaps_sim.dir/executor.cc.o.d"
  "/root/repo/src/sim/library.cc" "src/sim/CMakeFiles/leaps_sim.dir/library.cc.o" "gcc" "src/sim/CMakeFiles/leaps_sim.dir/library.cc.o.d"
  "/root/repo/src/sim/profiles.cc" "src/sim/CMakeFiles/leaps_sim.dir/profiles.cc.o" "gcc" "src/sim/CMakeFiles/leaps_sim.dir/profiles.cc.o.d"
  "/root/repo/src/sim/program.cc" "src/sim/CMakeFiles/leaps_sim.dir/program.cc.o" "gcc" "src/sim/CMakeFiles/leaps_sim.dir/program.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/sim/CMakeFiles/leaps_sim.dir/scenario.cc.o" "gcc" "src/sim/CMakeFiles/leaps_sim.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/leaps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leaps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
