file(REMOVE_RECURSE
  "CMakeFiles/leaps_sim.dir/attack.cc.o"
  "CMakeFiles/leaps_sim.dir/attack.cc.o.d"
  "CMakeFiles/leaps_sim.dir/behavior.cc.o"
  "CMakeFiles/leaps_sim.dir/behavior.cc.o.d"
  "CMakeFiles/leaps_sim.dir/executor.cc.o"
  "CMakeFiles/leaps_sim.dir/executor.cc.o.d"
  "CMakeFiles/leaps_sim.dir/library.cc.o"
  "CMakeFiles/leaps_sim.dir/library.cc.o.d"
  "CMakeFiles/leaps_sim.dir/profiles.cc.o"
  "CMakeFiles/leaps_sim.dir/profiles.cc.o.d"
  "CMakeFiles/leaps_sim.dir/program.cc.o"
  "CMakeFiles/leaps_sim.dir/program.cc.o.d"
  "CMakeFiles/leaps_sim.dir/scenario.cc.o"
  "CMakeFiles/leaps_sim.dir/scenario.cc.o.d"
  "libleaps_sim.a"
  "libleaps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
