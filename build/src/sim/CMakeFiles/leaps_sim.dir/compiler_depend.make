# Empty compiler generated dependencies file for leaps_sim.
# This may be replaced when dependencies are built.
