file(REMOVE_RECURSE
  "libleaps_sim.a"
)
