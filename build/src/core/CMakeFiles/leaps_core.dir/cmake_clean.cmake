file(REMOVE_RECURSE
  "CMakeFiles/leaps_core.dir/experiment.cc.o"
  "CMakeFiles/leaps_core.dir/experiment.cc.o.d"
  "CMakeFiles/leaps_core.dir/persist.cc.o"
  "CMakeFiles/leaps_core.dir/persist.cc.o.d"
  "CMakeFiles/leaps_core.dir/pipeline.cc.o"
  "CMakeFiles/leaps_core.dir/pipeline.cc.o.d"
  "CMakeFiles/leaps_core.dir/preprocess.cc.o"
  "CMakeFiles/leaps_core.dir/preprocess.cc.o.d"
  "CMakeFiles/leaps_core.dir/universal.cc.o"
  "CMakeFiles/leaps_core.dir/universal.cc.o.d"
  "libleaps_core.a"
  "libleaps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
