file(REMOVE_RECURSE
  "libleaps_core.a"
)
