# Empty compiler generated dependencies file for leaps_core.
# This may be replaced when dependencies are built.
