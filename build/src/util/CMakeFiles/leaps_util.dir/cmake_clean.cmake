file(REMOVE_RECURSE
  "CMakeFiles/leaps_util.dir/env.cc.o"
  "CMakeFiles/leaps_util.dir/env.cc.o.d"
  "CMakeFiles/leaps_util.dir/rng.cc.o"
  "CMakeFiles/leaps_util.dir/rng.cc.o.d"
  "CMakeFiles/leaps_util.dir/stats.cc.o"
  "CMakeFiles/leaps_util.dir/stats.cc.o.d"
  "CMakeFiles/leaps_util.dir/strings.cc.o"
  "CMakeFiles/leaps_util.dir/strings.cc.o.d"
  "libleaps_util.a"
  "libleaps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
