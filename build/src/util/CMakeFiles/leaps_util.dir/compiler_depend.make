# Empty compiler generated dependencies file for leaps_util.
# This may be replaced when dependencies are built.
