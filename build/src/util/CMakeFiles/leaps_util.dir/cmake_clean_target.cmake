file(REMOVE_RECURSE
  "libleaps_util.a"
)
