
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary_log.cc" "src/trace/CMakeFiles/leaps_trace.dir/binary_log.cc.o" "gcc" "src/trace/CMakeFiles/leaps_trace.dir/binary_log.cc.o.d"
  "/root/repo/src/trace/event.cc" "src/trace/CMakeFiles/leaps_trace.dir/event.cc.o" "gcc" "src/trace/CMakeFiles/leaps_trace.dir/event.cc.o.d"
  "/root/repo/src/trace/log_stats.cc" "src/trace/CMakeFiles/leaps_trace.dir/log_stats.cc.o" "gcc" "src/trace/CMakeFiles/leaps_trace.dir/log_stats.cc.o.d"
  "/root/repo/src/trace/module_map.cc" "src/trace/CMakeFiles/leaps_trace.dir/module_map.cc.o" "gcc" "src/trace/CMakeFiles/leaps_trace.dir/module_map.cc.o.d"
  "/root/repo/src/trace/parser.cc" "src/trace/CMakeFiles/leaps_trace.dir/parser.cc.o" "gcc" "src/trace/CMakeFiles/leaps_trace.dir/parser.cc.o.d"
  "/root/repo/src/trace/partition.cc" "src/trace/CMakeFiles/leaps_trace.dir/partition.cc.o" "gcc" "src/trace/CMakeFiles/leaps_trace.dir/partition.cc.o.d"
  "/root/repo/src/trace/raw_log.cc" "src/trace/CMakeFiles/leaps_trace.dir/raw_log.cc.o" "gcc" "src/trace/CMakeFiles/leaps_trace.dir/raw_log.cc.o.d"
  "/root/repo/src/trace/system_log.cc" "src/trace/CMakeFiles/leaps_trace.dir/system_log.cc.o" "gcc" "src/trace/CMakeFiles/leaps_trace.dir/system_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/leaps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
