file(REMOVE_RECURSE
  "libleaps_trace.a"
)
