# Empty compiler generated dependencies file for leaps_trace.
# This may be replaced when dependencies are built.
