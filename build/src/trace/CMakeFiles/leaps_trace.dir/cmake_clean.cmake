file(REMOVE_RECURSE
  "CMakeFiles/leaps_trace.dir/binary_log.cc.o"
  "CMakeFiles/leaps_trace.dir/binary_log.cc.o.d"
  "CMakeFiles/leaps_trace.dir/event.cc.o"
  "CMakeFiles/leaps_trace.dir/event.cc.o.d"
  "CMakeFiles/leaps_trace.dir/log_stats.cc.o"
  "CMakeFiles/leaps_trace.dir/log_stats.cc.o.d"
  "CMakeFiles/leaps_trace.dir/module_map.cc.o"
  "CMakeFiles/leaps_trace.dir/module_map.cc.o.d"
  "CMakeFiles/leaps_trace.dir/parser.cc.o"
  "CMakeFiles/leaps_trace.dir/parser.cc.o.d"
  "CMakeFiles/leaps_trace.dir/partition.cc.o"
  "CMakeFiles/leaps_trace.dir/partition.cc.o.d"
  "CMakeFiles/leaps_trace.dir/raw_log.cc.o"
  "CMakeFiles/leaps_trace.dir/raw_log.cc.o.d"
  "CMakeFiles/leaps_trace.dir/system_log.cc.o"
  "CMakeFiles/leaps_trace.dir/system_log.cc.o.d"
  "libleaps_trace.a"
  "libleaps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
