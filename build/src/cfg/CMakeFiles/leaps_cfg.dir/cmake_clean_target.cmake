file(REMOVE_RECURSE
  "libleaps_cfg.a"
)
