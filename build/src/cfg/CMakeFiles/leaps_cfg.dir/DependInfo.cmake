
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/alignment.cc" "src/cfg/CMakeFiles/leaps_cfg.dir/alignment.cc.o" "gcc" "src/cfg/CMakeFiles/leaps_cfg.dir/alignment.cc.o.d"
  "/root/repo/src/cfg/call_graph.cc" "src/cfg/CMakeFiles/leaps_cfg.dir/call_graph.cc.o" "gcc" "src/cfg/CMakeFiles/leaps_cfg.dir/call_graph.cc.o.d"
  "/root/repo/src/cfg/graph.cc" "src/cfg/CMakeFiles/leaps_cfg.dir/graph.cc.o" "gcc" "src/cfg/CMakeFiles/leaps_cfg.dir/graph.cc.o.d"
  "/root/repo/src/cfg/inference.cc" "src/cfg/CMakeFiles/leaps_cfg.dir/inference.cc.o" "gcc" "src/cfg/CMakeFiles/leaps_cfg.dir/inference.cc.o.d"
  "/root/repo/src/cfg/weight.cc" "src/cfg/CMakeFiles/leaps_cfg.dir/weight.cc.o" "gcc" "src/cfg/CMakeFiles/leaps_cfg.dir/weight.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/leaps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leaps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
