file(REMOVE_RECURSE
  "CMakeFiles/leaps_cfg.dir/alignment.cc.o"
  "CMakeFiles/leaps_cfg.dir/alignment.cc.o.d"
  "CMakeFiles/leaps_cfg.dir/call_graph.cc.o"
  "CMakeFiles/leaps_cfg.dir/call_graph.cc.o.d"
  "CMakeFiles/leaps_cfg.dir/graph.cc.o"
  "CMakeFiles/leaps_cfg.dir/graph.cc.o.d"
  "CMakeFiles/leaps_cfg.dir/inference.cc.o"
  "CMakeFiles/leaps_cfg.dir/inference.cc.o.d"
  "CMakeFiles/leaps_cfg.dir/weight.cc.o"
  "CMakeFiles/leaps_cfg.dir/weight.cc.o.d"
  "libleaps_cfg.a"
  "libleaps_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
