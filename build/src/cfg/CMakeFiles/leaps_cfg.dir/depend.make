# Empty dependencies file for leaps_cfg.
# This may be replaced when dependencies are built.
