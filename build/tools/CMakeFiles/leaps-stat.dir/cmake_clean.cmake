file(REMOVE_RECURSE
  "CMakeFiles/leaps-stat.dir/leaps_stat.cc.o"
  "CMakeFiles/leaps-stat.dir/leaps_stat.cc.o.d"
  "leaps-stat"
  "leaps-stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps-stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
