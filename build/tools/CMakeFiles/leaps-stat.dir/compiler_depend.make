# Empty compiler generated dependencies file for leaps-stat.
# This may be replaced when dependencies are built.
