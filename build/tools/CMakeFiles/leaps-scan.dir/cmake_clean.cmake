file(REMOVE_RECURSE
  "CMakeFiles/leaps-scan.dir/leaps_scan.cc.o"
  "CMakeFiles/leaps-scan.dir/leaps_scan.cc.o.d"
  "leaps-scan"
  "leaps-scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps-scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
