# Empty dependencies file for leaps-scan.
# This may be replaced when dependencies are built.
