# Empty compiler generated dependencies file for leaps-train.
# This may be replaced when dependencies are built.
