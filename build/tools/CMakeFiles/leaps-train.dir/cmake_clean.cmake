file(REMOVE_RECURSE
  "CMakeFiles/leaps-train.dir/leaps_train.cc.o"
  "CMakeFiles/leaps-train.dir/leaps_train.cc.o.d"
  "leaps-train"
  "leaps-train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps-train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
