file(REMOVE_RECURSE
  "CMakeFiles/leaps-sim.dir/leaps_sim.cc.o"
  "CMakeFiles/leaps-sim.dir/leaps_sim.cc.o.d"
  "leaps-sim"
  "leaps-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaps-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
