# Empty dependencies file for leaps-sim.
# This may be replaced when dependencies are built.
