file(REMOVE_RECURSE
  "CMakeFiles/cfg_compare.dir/cfg_compare.cpp.o"
  "CMakeFiles/cfg_compare.dir/cfg_compare.cpp.o.d"
  "cfg_compare"
  "cfg_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
