# Empty dependencies file for cfg_compare.
# This may be replaced when dependencies are built.
