# Empty compiler generated dependencies file for system_capture.
# This may be replaced when dependencies are built.
