file(REMOVE_RECURSE
  "CMakeFiles/system_capture.dir/system_capture.cpp.o"
  "CMakeFiles/system_capture.dir/system_capture.cpp.o.d"
  "system_capture"
  "system_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
