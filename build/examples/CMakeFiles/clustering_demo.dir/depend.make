# Empty dependencies file for clustering_demo.
# This may be replaced when dependencies are built.
