file(REMOVE_RECURSE
  "CMakeFiles/detection_tour.dir/detection_tour.cpp.o"
  "CMakeFiles/detection_tour.dir/detection_tour.cpp.o.d"
  "detection_tour"
  "detection_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
