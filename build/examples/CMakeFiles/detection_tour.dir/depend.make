# Empty dependencies file for detection_tour.
# This may be replaced when dependencies are built.
