# Empty dependencies file for bench_hmm.
# This may be replaced when dependencies are built.
