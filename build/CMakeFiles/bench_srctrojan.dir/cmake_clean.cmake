file(REMOVE_RECURSE
  "CMakeFiles/bench_srctrojan.dir/bench/bench_srctrojan.cc.o"
  "CMakeFiles/bench_srctrojan.dir/bench/bench_srctrojan.cc.o.d"
  "bench/bench_srctrojan"
  "bench/bench_srctrojan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_srctrojan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
