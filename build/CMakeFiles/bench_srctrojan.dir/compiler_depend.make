# Empty compiler generated dependencies file for bench_srctrojan.
# This may be replaced when dependencies are built.
