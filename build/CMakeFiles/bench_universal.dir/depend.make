# Empty dependencies file for bench_universal.
# This may be replaced when dependencies are built.
