file(REMOVE_RECURSE
  "CMakeFiles/bench_universal.dir/bench/bench_universal.cc.o"
  "CMakeFiles/bench_universal.dir/bench/bench_universal.cc.o.d"
  "bench/bench_universal"
  "bench/bench_universal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_universal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
