# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_trace_system[1]_include.cmake")
include("/root/repo/build/tests/test_trace_binary[1]_include.cmake")
include("/root/repo/build/tests/test_trace_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cfg_graph[1]_include.cmake")
include("/root/repo/build/tests/test_cfg_inference[1]_include.cmake")
include("/root/repo/build/tests/test_cfg_weight[1]_include.cmake")
include("/root/repo/build/tests/test_cfg_alignment[1]_include.cmake")
include("/root/repo/build/tests/test_ml_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_ml_svm[1]_include.cmake")
include("/root/repo/build/tests/test_ml_misc[1]_include.cmake")
include("/root/repo/build/tests/test_ml_cgraph[1]_include.cmake")
include("/root/repo/build/tests/test_ml_hmm[1]_include.cmake")
include("/root/repo/build/tests/test_ml_logreg[1]_include.cmake")
include("/root/repo/build/tests/test_ml_dtree[1]_include.cmake")
include("/root/repo/build/tests/test_core_preprocess[1]_include.cmake")
include("/root/repo/build/tests/test_core_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_core_persist[1]_include.cmake")
include("/root/repo/build/tests/test_core_universal[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
add_test(tools_workflow "/usr/bin/cmake" "-DLEAPS_SIM=/root/repo/build/tools/leaps-sim" "-DLEAPS_TRAIN=/root/repo/build/tools/leaps-train" "-DLEAPS_SCAN=/root/repo/build/tools/leaps-scan" "-DLEAPS_STAT=/root/repo/build/tools/leaps-stat" "-DWORK_DIR=/root/repo/build/tools_workflow_tmp" "-P" "/root/repo/tests/tools_workflow.cmake")
set_tests_properties(tools_workflow PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
