# Empty compiler generated dependencies file for test_ml_svm.
# This may be replaced when dependencies are built.
