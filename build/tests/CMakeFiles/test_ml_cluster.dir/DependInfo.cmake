
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ml_cluster.cc" "tests/CMakeFiles/test_ml_cluster.dir/test_ml_cluster.cc.o" "gcc" "tests/CMakeFiles/test_ml_cluster.dir/test_ml_cluster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/leaps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/leaps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/leaps_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/leaps_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/leaps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leaps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
