file(REMOVE_RECURSE
  "CMakeFiles/test_ml_cluster.dir/test_ml_cluster.cc.o"
  "CMakeFiles/test_ml_cluster.dir/test_ml_cluster.cc.o.d"
  "test_ml_cluster"
  "test_ml_cluster.pdb"
  "test_ml_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
