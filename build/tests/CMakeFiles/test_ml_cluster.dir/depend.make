# Empty dependencies file for test_ml_cluster.
# This may be replaced when dependencies are built.
