file(REMOVE_RECURSE
  "CMakeFiles/test_core_persist.dir/test_core_persist.cc.o"
  "CMakeFiles/test_core_persist.dir/test_core_persist.cc.o.d"
  "test_core_persist"
  "test_core_persist.pdb"
  "test_core_persist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
