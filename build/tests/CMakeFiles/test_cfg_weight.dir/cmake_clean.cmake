file(REMOVE_RECURSE
  "CMakeFiles/test_cfg_weight.dir/test_cfg_weight.cc.o"
  "CMakeFiles/test_cfg_weight.dir/test_cfg_weight.cc.o.d"
  "test_cfg_weight"
  "test_cfg_weight.pdb"
  "test_cfg_weight[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
