# Empty compiler generated dependencies file for test_cfg_weight.
# This may be replaced when dependencies are built.
