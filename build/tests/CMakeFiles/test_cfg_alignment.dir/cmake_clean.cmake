file(REMOVE_RECURSE
  "CMakeFiles/test_cfg_alignment.dir/test_cfg_alignment.cc.o"
  "CMakeFiles/test_cfg_alignment.dir/test_cfg_alignment.cc.o.d"
  "test_cfg_alignment"
  "test_cfg_alignment.pdb"
  "test_cfg_alignment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
