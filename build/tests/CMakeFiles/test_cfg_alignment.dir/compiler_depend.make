# Empty compiler generated dependencies file for test_cfg_alignment.
# This may be replaced when dependencies are built.
