# Empty compiler generated dependencies file for test_ml_hmm.
# This may be replaced when dependencies are built.
