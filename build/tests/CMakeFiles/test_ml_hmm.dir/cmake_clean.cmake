file(REMOVE_RECURSE
  "CMakeFiles/test_ml_hmm.dir/test_ml_hmm.cc.o"
  "CMakeFiles/test_ml_hmm.dir/test_ml_hmm.cc.o.d"
  "test_ml_hmm"
  "test_ml_hmm.pdb"
  "test_ml_hmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
