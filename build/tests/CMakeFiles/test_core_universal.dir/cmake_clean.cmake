file(REMOVE_RECURSE
  "CMakeFiles/test_core_universal.dir/test_core_universal.cc.o"
  "CMakeFiles/test_core_universal.dir/test_core_universal.cc.o.d"
  "test_core_universal"
  "test_core_universal.pdb"
  "test_core_universal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_universal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
