# Empty compiler generated dependencies file for test_core_universal.
# This may be replaced when dependencies are built.
