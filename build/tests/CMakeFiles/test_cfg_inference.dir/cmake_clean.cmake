file(REMOVE_RECURSE
  "CMakeFiles/test_cfg_inference.dir/test_cfg_inference.cc.o"
  "CMakeFiles/test_cfg_inference.dir/test_cfg_inference.cc.o.d"
  "test_cfg_inference"
  "test_cfg_inference.pdb"
  "test_cfg_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
