# Empty compiler generated dependencies file for test_cfg_inference.
# This may be replaced when dependencies are built.
