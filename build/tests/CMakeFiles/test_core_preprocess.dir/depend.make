# Empty dependencies file for test_core_preprocess.
# This may be replaced when dependencies are built.
