file(REMOVE_RECURSE
  "CMakeFiles/test_core_preprocess.dir/test_core_preprocess.cc.o"
  "CMakeFiles/test_core_preprocess.dir/test_core_preprocess.cc.o.d"
  "test_core_preprocess"
  "test_core_preprocess.pdb"
  "test_core_preprocess[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
