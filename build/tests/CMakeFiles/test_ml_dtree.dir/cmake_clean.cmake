file(REMOVE_RECURSE
  "CMakeFiles/test_ml_dtree.dir/test_ml_dtree.cc.o"
  "CMakeFiles/test_ml_dtree.dir/test_ml_dtree.cc.o.d"
  "test_ml_dtree"
  "test_ml_dtree.pdb"
  "test_ml_dtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_dtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
