# Empty dependencies file for test_ml_dtree.
# This may be replaced when dependencies are built.
