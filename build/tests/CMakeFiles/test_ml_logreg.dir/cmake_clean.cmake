file(REMOVE_RECURSE
  "CMakeFiles/test_ml_logreg.dir/test_ml_logreg.cc.o"
  "CMakeFiles/test_ml_logreg.dir/test_ml_logreg.cc.o.d"
  "test_ml_logreg"
  "test_ml_logreg.pdb"
  "test_ml_logreg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
