# Empty dependencies file for test_ml_logreg.
# This may be replaced when dependencies are built.
