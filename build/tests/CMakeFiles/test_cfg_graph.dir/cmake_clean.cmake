file(REMOVE_RECURSE
  "CMakeFiles/test_cfg_graph.dir/test_cfg_graph.cc.o"
  "CMakeFiles/test_cfg_graph.dir/test_cfg_graph.cc.o.d"
  "test_cfg_graph"
  "test_cfg_graph.pdb"
  "test_cfg_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
