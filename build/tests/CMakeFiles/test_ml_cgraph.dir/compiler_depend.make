# Empty compiler generated dependencies file for test_ml_cgraph.
# This may be replaced when dependencies are built.
