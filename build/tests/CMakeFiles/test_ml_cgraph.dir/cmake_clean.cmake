file(REMOVE_RECURSE
  "CMakeFiles/test_ml_cgraph.dir/test_ml_cgraph.cc.o"
  "CMakeFiles/test_ml_cgraph.dir/test_ml_cgraph.cc.o.d"
  "test_ml_cgraph"
  "test_ml_cgraph.pdb"
  "test_ml_cgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_cgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
