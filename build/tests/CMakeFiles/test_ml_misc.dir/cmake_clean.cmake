file(REMOVE_RECURSE
  "CMakeFiles/test_ml_misc.dir/test_ml_misc.cc.o"
  "CMakeFiles/test_ml_misc.dir/test_ml_misc.cc.o.d"
  "test_ml_misc"
  "test_ml_misc.pdb"
  "test_ml_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
