# Empty dependencies file for test_ml_misc.
# This may be replaced when dependencies are built.
