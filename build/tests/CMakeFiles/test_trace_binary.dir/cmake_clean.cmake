file(REMOVE_RECURSE
  "CMakeFiles/test_trace_binary.dir/test_trace_binary.cc.o"
  "CMakeFiles/test_trace_binary.dir/test_trace_binary.cc.o.d"
  "test_trace_binary"
  "test_trace_binary.pdb"
  "test_trace_binary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
