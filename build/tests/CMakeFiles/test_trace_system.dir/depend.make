# Empty dependencies file for test_trace_system.
# This may be replaced when dependencies are built.
