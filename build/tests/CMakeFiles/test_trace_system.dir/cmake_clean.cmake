file(REMOVE_RECURSE
  "CMakeFiles/test_trace_system.dir/test_trace_system.cc.o"
  "CMakeFiles/test_trace_system.dir/test_trace_system.cc.o.d"
  "test_trace_system"
  "test_trace_system.pdb"
  "test_trace_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
