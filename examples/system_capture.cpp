// System-wide capture walkthrough: the workflow of a real deployment.
//
// A tracing engine records EVERY process on the machine into one log. This
// example simulates a machine running an infected WinSCP alongside clean
// Chrome and Vim, then:
//   1. performs application slicing on the capture (the Raw Log Parser's
//      front-end role in Section II-B),
//   2. trains a detector for the target application from a clean reference
//      trace plus its (noisy) slice,
//   3. scans every process slice on the machine — only the infected one
//      should light up.
#include <cstdio>

#include "core/pipeline.h"
#include "ml/cross_validation.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "trace/system_log.h"

using namespace leaps;

namespace {

trace::PartitionedLog split(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

}  // namespace

int main() {
  const sim::ScenarioSpec& spec = sim::find_scenario("winscp_reverse_tcp");
  sim::SimConfig cfg;

  std::printf("Recording a machine-wide capture (infected %s + clean "
              "chrome, vim)...\n",
              spec.app.c_str());
  const sim::SystemCapture cap =
      sim::generate_system_capture(spec, cfg, {"chrome", "vim"});
  std::printf("capture: %zu events across %zu processes\n\n",
              cap.capture.entries.size(),
              cap.capture.process_names.size());

  // --- application slicing ------------------------------------------------
  for (const std::uint32_t pid : trace::capture_pids(cap.capture)) {
    const trace::RawLog sliced = trace::slice_process(cap.capture, pid);
    std::printf("  pid %-6u %-16s %6zu events\n", pid,
                sliced.process_name.c_str(), sliced.events.size());
  }

  // --- train on the target application ------------------------------------
  const sim::ScenarioLogs reference = sim::generate_scenario(spec, cfg);
  const trace::PartitionedLog benign = split(reference.benign);
  const trace::PartitionedLog mixed =
      split(trace::slice_process(cap.capture, cap.target_pid));
  const core::TrainingData td = core::LeapsPipeline().prepare(benign, mixed);

  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  ml::SvmParams params;
  params.lambda = 10.0;
  params.kernel.sigma2 = 8.0;
  const ml::SvmModel model = ml::SvmTrainer(params).train(train);
  const core::Detector detector(td.preprocessor, scaler, model);
  std::printf("\ntrained WSVM detector for %s (%zu support vectors)\n\n",
              spec.app.c_str(), model.support_vector_count());

  // --- scan every slice on the machine ------------------------------------
  std::printf("scanning all process slices:\n");
  for (const std::uint32_t pid : trace::capture_pids(cap.capture)) {
    const trace::RawLog sliced = trace::slice_process(cap.capture, pid);
    const auto result = detector.scan(split(sliced));
    std::printf("  pid %-6u %-16s %5.1f%% windows flagged%s\n", pid,
                sliced.process_name.c_str(),
                100.0 * result.malicious_fraction(),
                pid == cap.target_pid ? "   <-- infected target" : "");
  }
  std::printf(
      "\nNote: the detector is application-wise (trained for %s); flags on\n"
      "other applications' slices only demonstrate cross-application "
      "noise.\n",
      spec.app.c_str());
  return 0;
}
