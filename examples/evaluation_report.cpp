// Generates a markdown evaluation report for one scenario: the three-model
// comparison, AUCs, and the WSVM's ROC operating points — the artifact an
// analyst would attach to a deployment decision.
//
// Usage: evaluation_report [scenario] [output.md]
// Defaults: winscp_reverse_tcp, leaps_report.md
#include <cstdio>
#include <fstream>
#include <numeric>

#include "core/experiment.h"
#include "ml/metrics.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/strings.h"

using namespace leaps;

namespace {

void model_row(std::ofstream& os, const char* name,
               const core::ModelOutcome& m) {
  os << "| " << name << " | " << util::fixed(m.mean.acc, 3) << " | "
     << util::fixed(m.mean.ppv, 3) << " | " << util::fixed(m.mean.tpr, 3)
     << " | " << util::fixed(m.mean.tnr, 3) << " | "
     << util::fixed(m.mean.npv, 3) << " | " << util::fixed(m.auc, 3)
     << " | ±" << util::fixed(m.stddev.acc, 3) << " |\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scenario =
      argc > 1 ? argv[1] : std::string("winscp_reverse_tcp");
  const std::string out_path =
      argc > 2 ? argv[2] : std::string("leaps_report.md");

  core::ExperimentOptions opt;
  opt.runs = 5;
  const sim::ScenarioSpec& spec = sim::find_scenario(scenario);
  std::printf("evaluating %s (%zu runs)...\n", spec.name.c_str(), opt.runs);
  const core::ExperimentResult r =
      core::ExperimentRunner(opt).run_scenario(spec);

  // A ROC curve for the WSVM from one extra evaluation pass: train on one
  // split, score the held-out windows.
  const sim::ScenarioLogs logs = sim::generate_scenario(spec, opt.sim);
  const trace::RawLogParser parser;
  const auto split = [&parser](const trace::RawLog& raw) {
    const trace::ParsedTrace t = parser.parse_raw(raw);
    return trace::StackPartitioner(t.log.process_name).partition(t.log);
  };
  const trace::PartitionedLog benign = split(logs.benign);
  const trace::PartitionedLog mixed = split(logs.mixed);
  const trace::PartitionedLog malicious = split(logs.malicious);
  const core::TrainingData td =
      core::LeapsPipeline(opt.pipeline).prepare(benign, mixed);
  const core::WindowedData mal_windows =
      td.preprocessor.make_windows(malicious);

  std::vector<std::size_t> half(td.benign.size() / 2);
  std::iota(half.begin(), half.end(), 0);
  ml::Dataset train = td.benign.subset(half);
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  const ml::SvmModel model = ml::SvmTrainer(r.wsvm.params).train(train);

  std::vector<double> scores;
  std::vector<int> labels;
  for (std::size_t w = td.benign.size() / 2; w < td.benign.size(); ++w) {
    scores.push_back(model.decision_value(scaler.transform(td.benign.X[w])));
    labels.push_back(1);
  }
  for (const auto& x : mal_windows.X) {
    scores.push_back(model.decision_value(scaler.transform(x)));
    labels.push_back(-1);
  }
  const auto curve = ml::roc_curve(scores, labels);
  const double auc = ml::roc_auc(scores, labels);

  std::ofstream os(out_path);
  os << "# LEAPS evaluation report — " << spec.name << "\n\n";
  os << "* attack method: " << sim::attack_method_name(spec.method) << "\n";
  os << "* application: " << spec.app << ", payload: " << spec.payload
     << "\n";
  os << "* configuration: " << opt.sim.benign_events << "/"
     << opt.sim.mixed_events << "/" << opt.sim.malicious_events
     << " events, " << opt.runs << " runs, " << opt.cv.folds
     << "-fold CV\n\n";
  os << "## Model comparison (mean over runs)\n\n";
  os << "| Model | ACC | PPV | TPR | TNR | NPV | AUC | σ(ACC) |\n";
  os << "|---|---|---|---|---|---|---|---|\n";
  model_row(os, "CGraph", r.cgraph);
  model_row(os, "SVM", r.svm);
  model_row(os, "WSVM", r.wsvm);
  os << "\nWSVM hyper-parameters: λ=" << r.wsvm.params.lambda
     << ", σ²=" << r.wsvm.params.kernel.sigma2 << "\n\n";
  os << "## WSVM ROC (held-out benign vs pure malicious; AUC "
     << util::fixed(auc, 4) << ")\n\n";
  os << "| threshold | FPR (malicious passed) | TPR (benign passed) |\n";
  os << "|---|---|---|\n";
  // Subsample the polyline to ~15 rows.
  const std::size_t step = std::max<std::size_t>(1, curve.size() / 15);
  for (std::size_t i = 0; i < curve.size(); i += step) {
    os << "| " << util::fixed(curve[i].threshold, 3) << " | "
       << util::fixed(curve[i].fpr, 3) << " | "
       << util::fixed(curve[i].tpr, 3) << " |\n";
  }
  os.close();
  std::printf("wrote %s (WSVM AUC %.4f)\n", out_path.c_str(), auc);
  return 0;
}
