// Quickstart: the whole LEAPS workflow on one camouflaged attack.
//
// 1. Simulate a trojaned WinSCP (reverse TCP shell implant) and record the
//    three raw event logs (benign / mixed / pure-malicious).
// 2. Run the training pipeline: parse → partition → preprocess → CFG
//    inference → weight assessment → Weighted SVM.
// 3. Evaluate against the call-graph and plain-SVM baselines.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.h"
#include "util/env.h"

int main() {
  using namespace leaps;

  core::ExperimentOptions options;
  options.sim.benign_events =
      static_cast<std::size_t>(util::env_int("LEAPS_EVENTS", 12000));
  options.sim.mixed_events = options.sim.benign_events * 3 / 4;
  options.sim.malicious_events = options.sim.benign_events / 2;
  options.runs = static_cast<std::size_t>(util::env_int("LEAPS_RUNS", 3));

  const sim::ScenarioSpec& spec = sim::find_scenario("winscp_reverse_tcp");
  std::printf("Scenario: %s (%s, app=%s, payload=%s)\n", spec.name.c_str(),
              std::string(sim::attack_method_name(spec.method)).c_str(),
              spec.app.c_str(), spec.payload.c_str());
  std::printf("Simulating %zu/%zu/%zu events, %zu runs...\n\n",
              options.sim.benign_events, options.sim.mixed_events,
              options.sim.malicious_events, options.runs);

  const core::ExperimentRunner runner(options);
  const core::ExperimentResult r = runner.run_scenario(spec);

  std::printf("%s\n", core::format_result_header(true).c_str());
  std::printf("%s\n\n", core::format_result_row(r, true).c_str());
  std::printf("WSVM params: lambda=%.1f sigma2=%.1f\n", r.wsvm.params.lambda,
              r.wsvm.params.kernel.sigma2);
  std::printf("Paper (Table I, winscp_reverse_tcp, WSVM): ACC=0.932 "
              "PPV=0.999 TPR=0.865 TNR=0.999 NPV=0.881\n");
  return 0;
}
