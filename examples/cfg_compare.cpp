// Figures 3 & 4: CFG inference from stack walks, and benign-vs-mixed CFG
// comparison for a trojaned Vim (reverse TCP shell payload).
//
// Section 1 replays the paper's Figure-3 micro-example (explicit vs
// implicit paths). Section 2 simulates vim_reverse_tcp, infers both CFGs,
// reports how the payload subgraph separates in the address space, and
// writes Graphviz files:
//   vim_benign_cfg.dot   — Figure 4-(1)
//   vim_mixed_cfg.dot    — Figure 4-(2), payload nodes highlighted
// Render with: dot -Tpng vim_mixed_cfg.dot -o vim_mixed_cfg.png
#include <cstdio>
#include <fstream>

#include "cfg/inference.h"
#include "cfg/weight.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/strings.h"

using namespace leaps;

namespace {

void figure3_micro_example() {
  std::printf("--- Figure 3: explicit and implicit paths ---\n");
  trace::PartitionedLog log;
  trace::PartitionedEvent e1;
  e1.seq = 1;
  e1.app_stack = {0x1, 0x2, 0x3, 0x4, 0x5};
  trace::PartitionedEvent e2;
  e2.seq = 2;
  e2.app_stack = {0x1, 0x2, 0x3, 0x6, 0x7};
  log.events = {e1, e2};

  const cfg::InferredCfg inferred = cfg::CfgInference().infer(log);
  std::printf("event 1 stack: Addr_1..Addr_5; event 2 stack: "
              "Addr_1..Addr_3, Addr_6, Addr_7\n");
  std::printf("inferred edges:\n");
  for (const auto& [from, tos] : inferred.graph.adjacency()) {
    for (const auto to : tos) {
      const bool implicit = from == 0x4 && to == 0x6;
      std::printf("  Addr_%llu -> Addr_%llu%s\n",
                  static_cast<unsigned long long>(from),
                  static_cast<unsigned long long>(to),
                  implicit ? "   (implicit path, Fig. 3)" : "");
    }
  }
  std::printf("\n");
}

trace::PartitionedLog parse_and_partition(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

}  // namespace

int main() {
  figure3_micro_example();

  std::printf("--- Figure 4: Vim benign CFG vs Vim mixed CFG "
              "(Reverse TCP Shell) ---\n");
  sim::SimConfig cfg;
  cfg.benign_events = 6000;
  cfg.mixed_events = 4500;
  cfg.malicious_events = 100;  // unused here
  const sim::ScenarioLogs logs =
      sim::generate_scenario(sim::find_scenario("vim_reverse_tcp"), cfg);

  const trace::PartitionedLog benign = parse_and_partition(logs.benign);
  const trace::PartitionedLog mixed = parse_and_partition(logs.mixed);
  const cfg::CfgInference inference;
  const cfg::InferredCfg bcfg = inference.infer(benign);
  const cfg::InferredCfg mcfg = inference.infer(mixed);

  const std::uint64_t benign_max = bcfg.graph.nodes().back();
  std::size_t payload_nodes = 0;
  for (const std::uint64_t node : mcfg.graph.nodes()) {
    if (node > benign_max) ++payload_nodes;
  }
  std::printf("benign CFG: %zu nodes, %zu edges\n",
              bcfg.graph.node_count(), bcfg.graph.edge_count());
  std::printf("mixed  CFG: %zu nodes, %zu edges — %zu nodes beyond the "
              "benign address range (the payload subgraph)\n",
              mcfg.graph.node_count(), mcfg.graph.edge_count(),
              payload_nodes);

  // Weight assessment over the mixed CFG, summarized.
  const cfg::WeightAssessor assessor(bcfg.graph);
  const auto benignity = assessor.assess(mcfg);
  std::size_t low = 0;
  std::size_t high = 0;
  for (const auto& [seq, b] : benignity) {
    (b < 0.5 ? low : high) += 1;
  }
  std::printf("weight assessment: %zu events scored benignity >= 0.5, "
              "%zu scored < 0.5 (payload sessions)\n",
              high, low);

  const auto write_dot = [&](const char* path, const cfg::InferredCfg& g,
                             const char* title) {
    std::ofstream os(path);
    g.graph.to_dot(os, title, [benign_max](std::uint64_t node) {
      return node > benign_max
                 ? std::string("style=filled, fillcolor=\"#e06666\"")
                 : std::string();
    });
    std::printf("wrote %s\n", path);
  };
  write_dot("vim_benign_cfg.dot", bcfg, "Vim Benign CFG");
  write_dot("vim_mixed_cfg.dot", mcfg,
            "Vim Mixed CFG (Reverse TCP Shell payload in red)");
  return 0;
}
