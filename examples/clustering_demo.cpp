// Figure 2: hierarchical clustering inside the Data Preprocessing Module.
//
// Simulates a short Putty trace, fits the Lib/Func clusterers, then walks
// one SysCallEnter-class event through the whole discretization: raw stack
// walk → stack partition → {Event_Type, Lib-set, Func-set} → UPGMA cluster
// numbers → the 3-tuple row the statistical model consumes (the paper's
// "@107 7 2 40" example).
#include <cstdio>

#include "core/preprocess.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/strings.h"

using namespace leaps;

int main() {
  sim::SimConfig cfg;
  cfg.benign_events = 4000;
  cfg.mixed_events = 1000;
  cfg.malicious_events = 100;
  const sim::ScenarioLogs logs =
      sim::generate_scenario(sim::find_scenario("putty_reverse_tcp"), cfg);

  const trace::ParsedTrace parsed =
      trace::RawLogParser().parse_raw(logs.benign);
  const trace::PartitionedLog part =
      trace::StackPartitioner(parsed.log.process_name).partition(parsed.log);

  core::Preprocessor pre;
  pre.fit({&part});
  std::printf("Fitted clusterers on %zu events:\n", part.events.size());
  std::printf("  Lib sets:  %zu unique -> %d clusters\n",
              pre.lib_clusterer().unique_set_count(),
              pre.lib_clusterer().cluster_count());
  std::printf("  Func sets: %zu unique -> %d clusters\n\n",
              pre.func_clusterer().unique_set_count(),
              pre.func_clusterer().cluster_count());

  // Pick a file-read event to mirror the figure.
  for (const trace::PartitionedEvent& e : part.events) {
    if (e.type != trace::EventType::kFileRead) continue;
    std::printf("Event @%llu (%s):\n",
                static_cast<unsigned long long>(e.seq),
                std::string(trace::event_type_name(e.type)).c_str());
    std::printf("  system stack trace (innermost first):\n");
    for (const trace::StackFrame& f : e.system_stack) {
      std::printf("    %s %s!%s\n", util::hex_addr(f.address).c_str(),
                  f.module.c_str(), f.function.c_str());
    }
    std::printf("  Lib set  = {");
    for (const auto& lib : core::Preprocessor::lib_set(e)) {
      std::printf(" %s", lib.c_str());
    }
    std::printf(" }\n  Func set = {");
    for (const auto& fn : core::Preprocessor::func_set(e)) {
      std::printf(" %s", fn.c_str());
    }
    const core::EventTuple t = pre.tuple(e);
    std::printf(" }\n\n  discretized 3-tuple (Figure 2 format):\n");
    std::printf("  Event_Num  Event_Type  Lib  Func\n");
    std::printf("  @%-9llu %-11d %-4d %d\n",
                static_cast<unsigned long long>(e.seq), t.event_type,
                t.lib_cluster, t.func_cluster);
    std::printf("  feature coordinates: lib=%.1f func=%.1f "
                "(dissimilarity-scaled cluster positions)\n",
                t.lib_coord, t.func_coord);
    break;
  }
  return 0;
}
