// End-to-end detection tour: train a LEAPS detector on one scenario and
// deploy it against fresh logs — the Testing Phase as a user would run it.
//
// 1. Simulate putty + reverse HTTPS meterpreter (online injection);
//    record the training logs.
// 2. Train: pipeline prepare → CFG-guided weights → tune λ, σ² by weighted
//    10-fold CV → Weighted SVM.
// 3. Deploy the detector on three *fresh* traces (different seeds): a clean
//    Putty session, a newly infected Putty process, and the standalone
//    recompiled payload.
#include <cstdio>

#include "core/pipeline.h"
#include "ml/cross_validation.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"

using namespace leaps;

namespace {

trace::PartitionedLog parse_and_partition(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

void report(const char* what, const core::Detector::ScanResult& r) {
  std::printf("  %-38s %4zu windows benign, %4zu malicious  (%.1f%% flagged)\n",
              what, r.benign_windows, r.malicious_windows,
              100.0 * r.malicious_fraction());
}

}  // namespace

int main() {
  const sim::ScenarioSpec& spec =
      sim::find_scenario("putty_reverse_https_online");
  sim::SimConfig train_cfg;
  std::printf("Training on scenario %s (%s)\n", spec.name.c_str(),
              std::string(sim::attack_method_name(spec.method)).c_str());
  const sim::ScenarioLogs train_logs = sim::generate_scenario(spec, train_cfg);
  const trace::PartitionedLog benign = parse_and_partition(train_logs.benign);
  const trace::PartitionedLog mixed = parse_and_partition(train_logs.mixed);

  // --- training phase ----------------------------------------------------
  const core::LeapsPipeline pipeline;
  const core::TrainingData td = pipeline.prepare(benign, mixed);
  std::printf("  %zu benign windows (+1), %zu mixed windows (-1, CFG "
              "weights)\n",
              td.benign.size(), td.mixed.size());

  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);

  ml::CrossValidationOptions cv;
  cv.weighted_validation = true;
  util::Rng rng(7);
  const ml::GridSearchResult grid = ml::tune_svm(train, {}, cv, rng);
  std::printf("  tuned by weighted %zu-fold CV: lambda=%g sigma2=%g "
              "(validation accuracy %.3f)\n",
              cv.folds, grid.best.lambda, grid.best.kernel.sigma2,
              grid.best_accuracy);

  ml::TrainStats stats;
  const ml::SvmModel model = ml::SvmTrainer(grid.best).train(train, &stats);
  std::printf("  WSVM trained: %zu support vectors, %zu SMO iterations\n\n",
              stats.support_vectors, stats.iterations);
  const core::Detector detector(td.preprocessor, scaler, model);

  // --- testing phase on fresh traces --------------------------------------
  std::printf("Scanning fresh traces (unseen seeds):\n");
  sim::SimConfig fresh = train_cfg;
  fresh.seed = train_cfg.seed + 1;
  const sim::ScenarioLogs fresh_logs = sim::generate_scenario(spec, fresh);

  report("clean putty session",
         detector.scan(parse_and_partition(fresh_logs.benign)));
  report("putty with injected backdoor (mixed)",
         detector.scan(parse_and_partition(fresh_logs.mixed)));
  report("standalone recompiled payload",
         detector.scan(parse_and_partition(fresh_logs.malicious)));

  std::printf("\nA clean trace should stay mostly green; the infected "
              "process lights up in proportion\nto the adversary's backdoor "
              "sessions; the pure payload should be flagged nearly "
              "everywhere.\n");
  return 0;
}
