# Benchmark binaries — included from the top-level CMakeLists (instead of
# add_subdirectory) so ${CMAKE_BINARY_DIR}/bench holds ONLY the executables
# and `for b in build/bench/*; do $b; done` runs clean.
set(LEAPS_BENCH_TARGETS
  bench_table1
  bench_fig5
  bench_fig6
  bench_fig7
  bench_ablation
  bench_srctrojan
  bench_hmm
  bench_baselines
  bench_universal
  bench_micro
  bench_serve
  bench_train
  bench_campaign
)
foreach(b ${LEAPS_BENCH_TARGETS})
  add_executable(${b} bench/${b}.cc)
  target_link_libraries(${b} PRIVATE leaps_core)
  target_include_directories(${b} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${b} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
target_link_libraries(bench_micro PRIVATE benchmark::benchmark)
target_link_libraries(bench_serve PRIVATE leaps_serve leaps_online)
target_link_libraries(bench_campaign PRIVATE leaps_attrib)
