// Figure 7 reproduction: CGraph vs SVM vs WSVM on the 8 *online injection*
// datasets, five measurements each. Case Study III anchors printed inline.
#include <cstdio>

#include "bench_common.h"
#include "sim/scenario.h"

int main() {
  using namespace leaps;

  const core::ExperimentOptions opt = bench::options_from_env();
  bench::print_banner(
      "Figure 7 (online injection: CGraph vs SVM vs WSVM)", opt);
  const core::ExperimentRunner runner(opt);

  std::printf("%s\n", core::format_result_header(true).c_str());
  std::FILE* csv = bench::open_csv(
      "fig7.csv",
      "scenario,model,acc,ppv,tpr,tnr,npv,auc");
  std::size_t wsvm_wins_svm = 0;
  std::size_t wsvm_wins_cgraph = 0;
  std::size_t total = 0;
  for (const sim::ScenarioSpec& spec : sim::table1_scenarios()) {
    if (spec.method != sim::AttackMethod::kOnlineInjection) continue;
    const core::ExperimentResult r = runner.run_scenario(spec);
    bench::print_model_rows(r);
    bench::csv_model_row(csv, spec.name.c_str(), "cgraph", r.cgraph);
    bench::csv_model_row(csv, spec.name.c_str(), "svm", r.svm);
    bench::csv_model_row(csv, spec.name.c_str(), "wsvm", r.wsvm);
    const auto ref = bench::paper_case_studies().find(spec.name);
    if (ref != bench::paper_case_studies().end()) {
      std::printf("  (paper ACC anchors: CGraph %.3f  SVM %.3f  WSVM %.3f)\n",
                  ref->second.cgraph_acc, ref->second.svm_acc,
                  ref->second.wsvm_acc);
    }
    ++total;
    wsvm_wins_svm += r.wsvm.mean.acc >= r.svm.mean.acc ? 1 : 0;
    wsvm_wins_cgraph += r.wsvm.mean.acc >= r.cgraph.mean.acc ? 1 : 0;
    std::fflush(stdout);
  }
  std::printf(
      "\nshape check: WSVM >= SVM on %zu/%zu datasets; WSVM >= CGraph on "
      "%zu/%zu (paper: 8/8 and 8/8)\n",
      wsvm_wins_svm, total, wsvm_wins_cgraph, total);
  if (csv != nullptr) std::fclose(csv);
  return 0;
}
