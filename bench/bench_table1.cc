// Table I reproduction: WSVM ACC/PPV/TPR/TNR/NPV on all 21 camouflaged-
// attack datasets, with the paper's reported values inline for comparison.
#include <cstdio>

#include "bench_common.h"
#include "sim/scenario.h"
#include "util/stats.h"

int main() {
  using namespace leaps;

  const core::ExperimentOptions opt = bench::options_from_env();
  bench::print_banner("Table I (WSVM on all 21 datasets)", opt);
  const core::ExperimentRunner runner(opt);

  std::printf("%-34s%-19s%7s%7s%7s%7s%7s\n", "Name", "Attack Method", "ACC",
              "PPV", "TPR", "TNR", "NPV");
  std::FILE* csv = bench::open_csv(
      "table1.csv",
      "scenario,method,acc,ppv,tpr,tnr,npv,auc,"
      "paper_acc,paper_ppv,paper_tpr,paper_tnr,paper_npv");
  util::RunningStats acc_gap;
  for (const sim::ScenarioSpec& spec : sim::table1_scenarios()) {
    const core::ExperimentResult r = runner.run_scenario(spec);
    const ml::Measurements& m = r.wsvm.mean;
    std::printf("%-34s%-19s%7.3f%7.3f%7.3f%7.3f%7.3f\n", spec.name.c_str(),
                std::string(sim::attack_method_name(spec.method)).c_str(),
                m.acc, m.ppv, m.tpr, m.tnr, m.npv);
    const auto it = bench::paper_table1().find(spec.name);
    if (it != bench::paper_table1().end()) {
      const ml::Measurements& p = it->second;
      std::printf("%-34s%-19s%7.3f%7.3f%7.3f%7.3f%7.3f\n", "  (paper)", "",
                  p.acc, p.ppv, p.tpr, p.tnr, p.npv);
      acc_gap.add(m.acc - p.acc);
      if (csv != nullptr) {
        std::fprintf(csv,
                     "%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,"
                     "%.3f,%.3f,%.3f,%.3f,%.3f\n",
                     spec.name.c_str(),
                     std::string(sim::attack_method_name(spec.method)).c_str(),
                     m.acc, m.ppv, m.tpr, m.tnr, m.npv, r.wsvm.auc, p.acc,
                     p.ppv, p.tpr, p.tnr, p.npv);
      }
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nWSVM ACC deviation vs paper over %zu datasets: mean %+0.3f, "
      "stddev %0.3f, range [%+0.3f, %+0.3f]\n",
      acc_gap.count(), acc_gap.mean(), acc_gap.stddev(), acc_gap.min(),
      acc_gap.max());
  if (csv != nullptr) std::fclose(csv);
  return 0;
}
