// Figure 5 reproduction: the SVM-vs-WSVM illustration on 2-D synthetic
// data. Negatives include mislabeled copies of the benign cluster (the
// "mixed data points [that] actually belong to benign events"); the WSVM
// receives CFG-style confidence weights. The binary prints both decision
// boundaries' error rates and an ASCII rendering of the two classifiers.
#include <cstdio>
#include <vector>

#include "ml/metrics.h"
#include "ml/svm.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

struct Fig5Data {
  leaps::ml::Dataset train;       // with confidence weights
  leaps::ml::Dataset test_benign;  // pure benign, label +1
  leaps::ml::Dataset test_malicious;
};

Fig5Data make_data(leaps::util::Rng& rng, int n_per_class,
                   double mislabeled_fraction) {
  Fig5Data d;
  auto benign_point = [&rng]() {
    return leaps::ml::FeatureVector{rng.next_gaussian() * 0.5 - 1.0,
                                    rng.next_gaussian() * 0.5 + 1.0};
  };
  auto malicious_point = [&rng]() {
    return leaps::ml::FeatureVector{rng.next_gaussian() * 0.5 + 1.0,
                                    rng.next_gaussian() * 0.5 - 1.0};
  };
  for (int i = 0; i < n_per_class; ++i) {
    d.train.add(benign_point(), 1, 1.0);
    d.train.add(malicious_point(), -1, 1.0);
    // Mislabeled benign events inside the "mixed" negative set. Their CFG
    // weight is near zero; a plain SVM sees them at full strength.
    if (i < static_cast<int>(mislabeled_fraction * n_per_class)) {
      d.train.add(benign_point(), -1, 0.05);
    }
    d.test_benign.add(benign_point(), 1, 1.0);
    d.test_malicious.add(malicious_point(), -1, 1.0);
  }
  return d;
}

void evaluate(const char* name, const leaps::ml::SvmModel& model,
              const Fig5Data& d) {
  leaps::ml::ConfusionMatrix cm;
  for (const auto& x : d.test_benign.X) cm.add(1, model.predict(x));
  for (const auto& x : d.test_malicious.X) cm.add(-1, model.predict(x));
  const auto m = leaps::ml::Measurements::from(cm);
  std::printf("%-6s %s  (support vectors: %zu)\n", name,
              m.to_string().c_str(), model.support_vector_count());
}

void ascii_boundary(const leaps::ml::SvmModel& plain,
                    const leaps::ml::SvmModel& weighted) {
  std::printf("\nDecision maps over [-2.5,2.5]^2 (.=benign  #=malicious):\n");
  std::printf("%-28s  %-28s\n", "original SVM", "Weighted SVM");
  for (int row = 0; row < 13; ++row) {
    const double y = 2.5 - row * (5.0 / 12.0);
    std::string left, right;
    for (int col = 0; col < 26; ++col) {
      const double x = -2.5 + col * (5.0 / 25.0);
      left += plain.predict({x, y}) == 1 ? '.' : '#';
      right += weighted.predict({x, y}) == 1 ? '.' : '#';
    }
    std::printf("%s  %s\n", left.c_str(), right.c_str());
  }
}

}  // namespace

int main() {
  using namespace leaps;
  util::Rng rng(static_cast<std::uint64_t>(util::env_int("LEAPS_SEED", 42)));
  const int n = static_cast<int>(util::env_int("LEAPS_FIG5_N", 120));

  std::printf("LEAPS reproduction — Figure 5 (SVM vs Weighted SVM on noisy "
              "2-D training data)\n");
  std::printf("train: %d benign, %d malicious, %d mislabeled-benign "
              "negatives (weight 0.05)\n\n",
              n, n, n / 2);
  const Fig5Data d = make_data(rng, n, 0.5);

  ml::SvmParams params;
  params.lambda = 10.0;
  params.kernel.sigma2 = 1.0;

  ml::Dataset plain_train = d.train;
  std::fill(plain_train.weight.begin(), plain_train.weight.end(), 1.0);
  const ml::SvmModel plain = ml::SvmTrainer(params).train(plain_train);
  const ml::SvmModel weighted = ml::SvmTrainer(params).train(d.train);

  evaluate("SVM", plain, d);
  evaluate("WSVM", weighted, d);
  ascii_boundary(plain, weighted);
  std::printf(
      "\nexpected shape (paper Fig. 5): the plain SVM concedes part of the "
      "benign\ncluster to the malicious side; the weighted SVM restores the "
      "boundary.\n");
  return 0;
}
