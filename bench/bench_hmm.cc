// Section VI-B extension: sequence models for event ordering.
//
// The paper: "there may exist some causal relations between multiple
// events … we plan to explore more machine learning techniques, such as
// conditional random field model and hidden Markov model." This binary
// adds two HMM log-likelihood-ratio classifiers to the Figure-6/7
// comparison — one trained on raw labels (HMM) and one whose mixed-log
// sequences are discounted by the CFG weight assessment (WHMM), the
// weighted-HMM analogue of Eqn. 2.
//
// Expected shape: WHMM >= HMM (CFG guidance transfers to sequence models),
// and the sequence models rival or beat the WSVM where event *order*
// carries signal.
#include <cstdio>

#include "bench_common.h"
#include "sim/scenario.h"

int main() {
  using namespace leaps;

  core::ExperimentOptions opt = bench::options_from_env();
  opt.runs = std::min<std::size_t>(opt.runs, 5);
  opt.include_hmm = true;
  bench::print_banner("HMM sequence models (Section VI-B)", opt);

  const char* kScenarios[] = {
      "winscp_reverse_tcp",       "chrome_reverse_https",
      "vim_codeinject",           "putty_reverse_tcp_online",
      "notepad++_reverse_https_online",
  };

  std::printf("%-34s%8s%8s%8s%8s%8s\n", "Name (ACC per model)", "CGraph",
              "SVM", "WSVM", "HMM", "WHMM");
  std::size_t whmm_ge_hmm = 0;
  std::size_t whmm_ge_svm = 0;
  for (const char* name : kScenarios) {
    const core::ExperimentResult r =
        core::ExperimentRunner(opt).run_scenario(sim::find_scenario(name));
    std::printf("%-34s%8.3f%8.3f%8.3f%8.3f%8.3f\n", name,
                r.cgraph.mean.acc, r.svm.mean.acc, r.wsvm.mean.acc,
                r.hmm.mean.acc, r.whmm.mean.acc);
    whmm_ge_hmm += r.whmm.mean.acc >= r.hmm.mean.acc ? 1 : 0;
    whmm_ge_svm += r.whmm.mean.acc >= r.svm.mean.acc ? 1 : 0;
    std::fflush(stdout);
  }
  std::printf(
      "\nshape check: CFG-weighted HMM >= unweighted HMM on %zu/%zu; "
      ">= plain SVM on %zu/%zu\n",
      whmm_ge_hmm, std::size(kScenarios), whmm_ge_svm,
      std::size(kScenarios));
  return 0;
}
