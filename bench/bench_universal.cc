// Universal-classifier study (Section II-B-2): the paper evaluates
// application-wise classifiers "for convenience" but claims a single
// universal classifier works in deployment. This binary tests the claim:
// pool four applications' training data into ONE weighted SVM and compare
// its per-application accuracy against dedicated per-app WSVMs.
#include <cstdio>

#include "bench_common.h"
#include "core/universal.h"
#include "sim/scenario.h"
#include "trace/parser.h"

namespace {

using namespace leaps;

trace::PartitionedLog split_log(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

}  // namespace

int main() {
  using namespace leaps;
  core::ExperimentOptions opt = bench::options_from_env();
  opt.runs = std::min<std::size_t>(opt.runs, 5);
  bench::print_banner("universal classifier (Section II-B-2)", opt);

  const char* kScenarios[] = {
      "winscp_reverse_tcp",
      "vim_codeinject",
      "putty_reverse_https",
      "notepad++_reverse_tcp_online",
  };

  // Dedicated per-application classifiers (the paper's evaluation setup).
  std::printf("dedicated application-wise WSVMs:\n");
  std::map<std::string, double> dedicated;
  for (const char* name : kScenarios) {
    const core::ExperimentResult r =
        core::ExperimentRunner(opt).run_scenario(sim::find_scenario(name));
    dedicated[name] = r.wsvm.mean.acc;
    std::printf("  %-34s ACC %.3f\n", name, r.wsvm.mean.acc);
    std::fflush(stdout);
  }

  // The universal classifier over the pooled data.
  std::vector<core::AppLogs> apps;
  for (const char* name : kScenarios) {
    const sim::ScenarioLogs logs =
        sim::generate_scenario(sim::find_scenario(name), opt.sim);
    apps.push_back({name, split_log(logs.benign), split_log(logs.mixed),
                    split_log(logs.malicious)});
  }
  core::UniversalOptions uopt;
  uopt.svm.kernel.sigma2 = 8.0;
  const core::UniversalEvaluation u = core::train_universal(apps, uopt);

  std::printf("\nuniversal WSVM (one model for all %zu applications):\n",
              apps.size());
  std::size_t within = 0;
  for (const auto& [name, m] : u.per_app) {
    const double gap = m.acc - dedicated[name];
    std::printf("  %-34s ACC %.3f  (dedicated %.3f, gap %+.3f)\n",
                name.c_str(), m.acc, dedicated[name], gap);
    within += gap > -0.10 ? 1 : 0;
  }
  std::printf("  %-34s ACC %.3f\n", "POOLED", u.pooled.acc);
  std::printf(
      "\nshape check: universal within 0.10 ACC of dedicated on %zu/%zu "
      "applications\n(the paper's deployment claim: one classifier "
      "suffices in practice)\n",
      within, apps.size());
  return 0;
}
