// Ablation bench (not a paper artifact): quantifies each design decision
// DESIGN.md calls out by toggling it and re-running one representative
// scenario. Prints WSVM rows per configuration; the baseline row uses the
// repository defaults.
#include <cstdio>

#include "bench_common.h"
#include "sim/scenario.h"

namespace {

using namespace leaps;

void run_row(const char* label, const core::ExperimentOptions& opt,
             const char* scenario) {
  const core::ExperimentRunner runner(opt);
  const core::ExperimentResult r =
      runner.run_scenario(sim::find_scenario(scenario));
  const ml::Measurements& m = r.wsvm.mean;
  std::printf("%-44s%7.3f%7.3f%7.3f%7.3f%7.3f   (SVM acc %.3f)\n", label,
              m.acc, m.ppv, m.tpr, m.tnr, m.npv, r.svm.mean.acc);
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace leaps;
  core::ExperimentOptions base = bench::options_from_env();
  // Ablations resolve faster with fewer runs; the deltas are large.
  base.runs = std::min<std::size_t>(base.runs, 3);

  bench::print_banner("design-choice ablations (WSVM)", base);
  // winscp_reverse_tcp is a representative mid-difficulty dataset;
  // chrome_reverse_tcp is the hardest (heaviest app/payload overlap) and
  // shows the largest deltas.
  for (const char* scenario :
       {"winscp_reverse_tcp", "chrome_reverse_tcp"}) {
  std::printf("scenario: %s\n\n", scenario);
  std::printf("%-44s%7s%7s%7s%7s%7s\n", "configuration", "ACC", "PPV", "TPR",
              "TNR", "NPV");

  run_row("baseline (repository defaults)", base, scenario);

  {
    core::ExperimentOptions o = base;
    o.pipeline.inference.per_thread_adjacency = false;
    run_row("global implicit-path adjacency (Alg.1 verbatim)", o, scenario);
  }
  {
    core::ExperimentOptions o = base;
    o.weighted_cv_for_wsvm = false;
    run_row("plain CV validation for the WSVM", o, scenario);
  }
  {
    core::ExperimentOptions o = base;
    o.pipeline.preprocess.lib_clustering.gap_scale = 0.0;
    o.pipeline.preprocess.func_clustering.gap_scale = 0.0;
    run_row("sequential cluster ids (gap_scale = 0)", o, scenario);
  }
  {
    core::ExperimentOptions o = base;
    o.sim.payload_framework_chains = true;
    run_row("payload uses framework chains (no direct style)", o, scenario);
  }
  for (const std::size_t window : {1ul, 5ul, 20ul}) {
    core::ExperimentOptions o = base;
    o.pipeline.preprocess.window = window;
    char label[64];
    std::snprintf(label, sizeof(label), "window = %zu events (paper: 10)",
                  window);
    run_row(label, o, scenario);
  }
  for (const double intensity : {0.5, 0.99}) {
    core::ExperimentOptions o = base;
    o.sim.exec.attack_intensity = intensity;
    char label[64];
    std::snprintf(label, sizeof(label),
                  "attack duty cycle = %.2f (default 0.90)", intensity);
    run_row(label, o, scenario);
  }
  {
    core::ExperimentOptions o = base;
    o.pipeline.default_benignity = 0.0;
    run_row("pathless events default to malicious", o, scenario);
  }
  std::printf("\n");
  }  // scenario loop
  std::printf(
      "\nreading: each row deviates from the baseline in exactly one "
      "choice; drops show what the\ncorresponding mechanism contributes "
      "(see DESIGN.md, 'reconciliations' and 'realism decisions').\n");
  return 0;
}
