// bench_serve — serving-layer throughput: aggregate events/sec through the
// DetectionServer as the worker pool grows, over many concurrent replayed
// sessions.
//
// Sessions are sharded across workers, so scaling comes from session
// parallelism; with ≥ 8 sessions the pool should scale near-linearly until
// it runs out of hardware threads (the binary prints the machine's
// concurrency so a 1-core CI box's flat curve reads as what it is).
//
// Knobs: LEAPS_SERVE_SESSIONS (default 8), LEAPS_SERVE_EVENTS per session
// (default 6000), LEAPS_EVENTS (training-log size), LEAPS_FAST=1.
// LEAPS_BENCH_JSON=<path> additionally writes the measurements as a JSON
// snapshot (the format of the checked-in BENCH_serve.json baseline). LEAPS_BENCH_BASELINE=<path> compares this
// box's core count against the checked-in snapshot before writing:
// mismatches are annotated in the JSON, or refused outright with
// LEAPS_BENCH_STRICT=1 (speedup columns are incomparable across core
// counts).
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "durable/store.h"
#include "ml/svm.h"
#include "online/manager.h"
#include "serve/server.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/env.h"

namespace {

using namespace leaps;

trace::PartitionedLog partition_raw(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

struct Workload {
  std::shared_ptr<const core::Detector> detector;
  trace::PartitionedLog replay;  // the event source every session loops over
};

Workload build_workload(std::size_t train_events) {
  sim::SimConfig cfg;
  cfg.benign_events = train_events;
  cfg.mixed_events = train_events * 3 / 4;
  cfg.malicious_events = train_events / 2;
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("vim_reverse_tcp_online"), cfg);

  Workload w;
  const trace::PartitionedLog benign = partition_raw(logs.benign);
  const trace::PartitionedLog mixed = partition_raw(logs.mixed);
  const core::TrainingData td = core::LeapsPipeline().prepare(benign, mixed);
  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  const ml::SvmModel model = ml::SvmTrainer({}).train(train);
  w.detector = std::make_shared<const core::Detector>(td.preprocessor,
                                                      scaler, model);
  w.replay = mixed;
  return w;
}

double run_once(const Workload& w, std::size_t workers,
                std::size_t sessions, std::size_t events_per_session,
                std::size_t coalesce) {
  serve::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = 4096;
  options.batch_size = 128;
  options.coalesce = coalesce;
  serve::DetectionServer server(options);
  server.registry().add("bench", w.detector);

  std::vector<std::shared_ptr<serve::Session>> handles;
  for (std::size_t s = 0; s < sessions; ++s) {
    handles.push_back(server.open_session(
        {"bench" + std::to_string(s), static_cast<std::uint32_t>(s)},
        "bench"));
  }
  server.start();

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    producers.emplace_back([&, s] {
      const auto& events = w.replay.events;
      for (std::size_t i = 0; i < events_per_session; ++i) {
        server.submit(handles[s], events[i % events.size()]);
      }
    });
  }
  for (auto& p : producers) p.join();
  server.drain();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  server.stop();
  return static_cast<double>(sessions * events_per_session) /
         elapsed.count();
}

/// Warm-restart latency: from "process came back up" (durable recover)
/// through registry + online-state restore to the first verdict served.
struct RestartLatency {
  bool ok = false;
  double recover_ms = 0.0;        // snapshot + journal replay
  double first_verdict_ms = 0.0;  // recover + restore + serve to verdict 1
};

RestartLatency measure_warm_restart(const Workload& w) {
  RestartLatency out;
  char tmpl[] = "/tmp/bench_serve_durable_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) return out;
  const std::string snapshot = std::string(dir) + "/snapshot.leaps";
  const std::string journal = std::string(dir) + "/journal.wal";

  // Seed the directory with the shape a clean shutdown leaves behind: one
  // checkpoint holding the incumbent and a batch of pending windows.
  const std::size_t window = w.detector->preprocessor().window();
  {
    durable::DurableOptions dopts;
    dopts.dir = dir;
    durable::DurableStore store(dopts);
    if (!store.open().ok()) return out;
    durable::CheckpointState state;
    state.detector = w.detector;
    for (std::size_t i = 0;
         i + window <= w.replay.events.size() && i < 32 * window;
         i += window) {
      state.pending_windows.push_back(durable::DurableWindow{
          {w.replay.events.begin() + static_cast<std::ptrdiff_t>(i),
           w.replay.events.begin() + static_cast<std::ptrdiff_t>(i + window)}});
    }
    if (!store.checkpoint(state).ok()) return out;
  }

  const auto start = std::chrono::steady_clock::now();
  durable::DurableOptions dopts;
  dopts.dir = dir;
  durable::DurableStore store(dopts);
  const auto recovered = store.recover();
  const auto recovered_at = std::chrono::steady_clock::now();
  if (!recovered.ok() || recovered->detector == nullptr) return out;
  if (!store.open().ok()) return out;

  serve::ServerOptions options;
  options.workers = 2;
  serve::DetectionServer server(options);
  server.registry().add("default", recovered->detector);
  online::OnlineOptions oopts;
  oopts.durable = &store;
  online::OnlineManager manager(&server, oopts);
  manager.install();
  manager.restore(*recovered);

  std::mutex mu;
  std::condition_variable cv;
  bool got = false;
  std::chrono::steady_clock::time_point first;
  server.set_verdict_sink([&](const serve::VerdictRecord&) {
    const std::lock_guard<std::mutex> lock(mu);
    if (!got) {
      got = true;
      first = std::chrono::steady_clock::now();
      cv.notify_all();
    }
  });
  server.start();
  const auto session = server.open_session({"restart", 1}, "default");
  for (std::size_t i = 0; i < 4 * window && i < w.replay.events.size(); ++i) {
    server.submit(session, w.replay.events[i]);
  }
  server.drain();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return got; });
  }
  server.stop();
  manager.stop();
  if (got) {
    out.ok = true;
    out.recover_ms =
        std::chrono::duration<double, std::milli>(recovered_at - start)
            .count();
    out.first_verdict_ms =
        std::chrono::duration<double, std::milli>(first - start).count();
  }
  ::unlink(snapshot.c_str());
  ::unlink(journal.c_str());
  ::rmdir(dir);
  return out;
}

/// Drift-detection latency at the default window sizes (reference 256,
/// live 128): the per-verdict observe() cost the tap pays, and the KS
/// evaluate-to-trigger cost the manager poll pays.
struct DriftLatency {
  bool ok = false;
  double observe_ns = 0.0;   // per observed decision value
  double evaluate_us = 0.0;  // per full-window KS evaluation
  int fired = 0;             // triggers over kDriftRounds evaluations
};

constexpr int kDriftRounds = 100;

DriftLatency measure_drift_trigger(const Workload& w) {
  DriftLatency out;
  // Real decision values from a real replay seed the reference; the live
  // window gets the same values shifted — a guaranteed, repeatable drift.
  std::vector<double> values;
  core::Detector::Stream stream = w.detector->stream();
  for (const trace::PartitionedEvent& e : w.replay.events) {
    if (stream.push(e).has_value()) {
      values.push_back(stream.last_decision_value());
    }
    if (values.size() >= 512) break;
  }
  online::DriftOptions dopts;
  dopts.enabled = true;
  if (values.size() < dopts.reference_target + dopts.min_live) return out;
  online::DriftMonitor monitor(dopts);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const bool live = i >= dopts.reference_target;
    monitor.observe(values[i] + (live ? 1.0 : 0.0), 1);
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.observe_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(values.size());

  double total_us = 0.0;
  for (int r = 0; r < kDriftRounds; ++r) {
    const auto e0 = std::chrono::steady_clock::now();
    const bool fired = monitor.evaluate();
    const auto e1 = std::chrono::steady_clock::now();
    total_us += std::chrono::duration<double, std::micro>(e1 - e0).count();
    if (fired) ++out.fired;
    monitor.consume_trigger();  // clears the live window (cooldown)
    for (std::size_t i = dopts.reference_target; i < values.size(); ++i) {
      monitor.observe(values[i] + 1.0, 1);
    }
  }
  out.evaluate_us = total_us / kDriftRounds;
  out.ok = true;
  return out;
}

}  // namespace

int main() {
  const bool fast = util::env_flag("LEAPS_FAST");
  const auto sessions = static_cast<std::size_t>(
      util::env_int("LEAPS_SERVE_SESSIONS", 8));
  const auto events_per_session = static_cast<std::size_t>(
      util::env_int("LEAPS_SERVE_EVENTS", fast ? 1500 : 6000));
  const auto train_events =
      static_cast<std::size_t>(util::env_int("LEAPS_EVENTS", 3000));
  // Micro-batched hand-off (events staged per queue push). 4 keeps queue
  // contention visible but low; 1 reproduces the classic per-event path.
  const auto coalesce = static_cast<std::size_t>(
      util::env_int("LEAPS_SERVE_COALESCE", 4));

  std::printf("LEAPS reproduction — serving throughput (bench_serve)\n");
  std::printf(
      "config: sessions=%zu events/session=%zu train_events=%zu "
      "coalesce=%zu hardware_concurrency=%u\n\n",
      sessions, events_per_session, train_events, coalesce,
      std::thread::hardware_concurrency());

  const Workload w = build_workload(train_events);
  std::printf("%-8s %14s %10s\n", "workers", "events/sec", "speedup");
  double base = 0.0;
  double at4 = 0.0;
  std::vector<std::pair<std::size_t, double>> rows;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    // Warm-up pass, then the measured pass.
    run_once(w, workers, sessions, events_per_session / 4 + 1, coalesce);
    const double rate =
        run_once(w, workers, sessions, events_per_session, coalesce);
    if (workers == 1) base = rate;
    if (workers == 4) at4 = rate;
    rows.emplace_back(workers, rate);
    std::printf("%-8zu %14.0f %9.2fx\n", workers, rate,
                base > 0.0 ? rate / base : 1.0);
  }
  std::printf(
      "\n1 → 4 workers: %.2fx aggregate scaling over %zu sessions%s\n",
      base > 0.0 ? at4 / base : 0.0, sessions,
      std::thread::hardware_concurrency() < 4
          ? " (machine has fewer than 4 hardware threads; expect ~1x here)"
          : "");

  const RestartLatency restart = measure_warm_restart(w);
  if (restart.ok) {
    std::printf(
        "warm restart: recover %.2f ms, first verdict %.2f ms "
        "(checkpoint -> recover -> restore -> serve)\n",
        restart.recover_ms, restart.first_verdict_ms);
  } else {
    std::printf("warm restart: measurement unavailable\n");
  }

  const DriftLatency drift = measure_drift_trigger(w);
  if (drift.ok) {
    std::printf(
        "drift monitor: observe %.0f ns/value, KS evaluate %.1f us "
        "(ref=256 live=128), trigger fired %d/%d rounds\n",
        drift.observe_ns, drift.evaluate_us, drift.fired, kDriftRounds);
  } else {
    std::printf("drift monitor: measurement unavailable\n");
  }

  const std::string json_path = util::env_string("LEAPS_BENCH_JSON", "");
  if (!json_path.empty()) {
    const bench::BaselineGuard guard = bench::check_bench_baseline();
    std::ofstream os(json_path, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    os << "{\n  \"benchmark\": \"bench_serve\",\n"
       << "  \"config\": {\"sessions\": " << sessions
       << ", \"events_per_session\": " << events_per_session
       << ", \"train_events\": " << train_events
       << ", \"coalesce\": " << coalesce
       << ", \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << guard.annotation
       << "},\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char line[128];
      std::snprintf(line, sizeof line,
                    "    {\"workers\": %zu, \"events_per_sec\": %.0f, "
                    "\"speedup\": %.2f}%s\n",
                    rows[i].first, rows[i].second,
                    base > 0.0 ? rows[i].second / base : 1.0,
                    i + 1 < rows.size() ? "," : "");
      os << line;
    }
    os << "  ]";
    if (restart.ok) {
      char line[160];
      std::snprintf(line, sizeof line,
                    ",\n  \"warm_restart\": {\"recover_ms\": %.2f, "
                    "\"first_verdict_ms\": %.2f}",
                    restart.recover_ms, restart.first_verdict_ms);
      os << line;
    }
    if (drift.ok) {
      char line[160];
      std::snprintf(line, sizeof line,
                    ",\n  \"drift\": {\"observe_ns\": %.0f, "
                    "\"evaluate_us\": %.2f, \"fired\": %d}",
                    drift.observe_ns, drift.evaluate_us, drift.fired);
      os << line;
    }
    os << "\n}\n";
    std::printf("(JSON -> %s)\n", json_path.c_str());
  }
  return 0;
}
