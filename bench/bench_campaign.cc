// Campaign-scenario table: WSVM detection quality on the multi-stage APT
// datasets plus the attribution margin — the score gap between the
// campaign's ground-truth signature and its best permuted decoy when the
// pure-attack trace is matched against the three-signature library.
#include <cstdio>
#include <string>
#include <vector>

#include "attrib/matcher.h"
#include "attrib/signature.h"
#include "bench_common.h"
#include "sim/campaign.h"
#include "trace/parser.h"
#include "trace/partition.h"

namespace {

struct AttributionRow {
  std::string rank1;
  double score = 0.0;
  double margin = 0.0;  // rank-1 score minus best decoy score
};

AttributionRow attribution_row(const leaps::sim::CampaignSpec& spec,
                               const leaps::sim::CampaignLogs& logs) {
  using namespace leaps;
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(logs.malicious);
  const trace::PartitionedLog mal =
      trace::StackPartitioner(t.log.process_name).partition(t.log);

  std::vector<attrib::WindowEvidence> flagged;
  constexpr std::size_t kWindow = 10;
  for (std::size_t i = 0; i + kWindow <= mal.events.size(); i += kWindow) {
    flagged.push_back(attrib::evidence_from_events(
        flagged.size(), -1.0, mal.events.data() + i, kWindow));
  }

  attrib::SignatureLibrary lib;
  const attrib::CampaignSignature sig = attrib::signature_from_campaign(spec);
  lib.add(sig);
  for (attrib::CampaignSignature& d : attrib::decoy_signatures(sig)) {
    lib.add(std::move(d));
  }
  const std::vector<attrib::AttributionVerdict> ranked =
      attrib::attribute(lib, flagged);

  AttributionRow row;
  if (!ranked.empty()) {
    row.rank1 = ranked[0].signature;
    row.score = ranked[0].score;
    for (const attrib::AttributionVerdict& v : ranked) {
      if (v.signature == spec.name) continue;
      row.margin = ranked[0].score - v.score;
      break;  // ranked descending: the first non-true signature is the
              // best decoy
    }
  }
  return row;
}

}  // namespace

int main() {
  using namespace leaps;

  const core::ExperimentOptions opt = bench::options_from_env();
  bench::print_banner("Campaign scenarios (multi-stage APT + attribution)",
                      opt);
  const core::ExperimentRunner runner(opt);

  std::printf("%-26s%7s%7s%7s%7s  %-26s%8s%8s\n", "Campaign", "ACC", "PPV",
              "TPR", "TNR", "Rank-1 signature", "score", "margin");
  std::FILE* csv = bench::open_csv(
      "campaign.csv",
      "campaign,lotl,acc,ppv,tpr,tnr,npv,auc,rank1,rank1_score,decoy_margin");
  for (const sim::CampaignSpec& spec : sim::campaign_catalog()) {
    const sim::CampaignLogs campaign =
        sim::generate_campaign(spec, opt.sim);
    sim::ScenarioLogs logs;
    logs.spec.name = spec.name;
    logs.spec.app = spec.app;
    logs.benign = campaign.benign;
    logs.mixed = campaign.mixed;
    logs.malicious = campaign.malicious;
    logs.mixed_truth = campaign.mixed_truth;
    const core::ExperimentResult r = runner.run_on_logs(logs);
    const ml::Measurements& m = r.wsvm.mean;

    const AttributionRow a = attribution_row(spec, campaign);
    const bool correct = a.rank1 == spec.name;
    std::printf("%-26s%7.3f%7.3f%7.3f%7.3f  %-26s%8.3f%8.3f%s\n",
                spec.name.c_str(), m.acc, m.ppv, m.tpr, m.tnr,
                a.rank1.c_str(), a.score, a.margin,
                correct ? "" : "  (WRONG)");
    if (csv != nullptr) {
      std::fprintf(csv, "%s,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%s,%.4f,%.4f\n",
                   spec.name.c_str(), spec.lotl ? 1 : 0, m.acc, m.ppv, m.tpr,
                   m.tnr, m.npv, r.wsvm.auc, a.rank1.c_str(), a.score,
                   a.margin);
    }
    std::fflush(stdout);
  }
  if (csv != nullptr) std::fclose(csv);
  return 0;
}
