// Section VI-A extension: source-level trojans and CFG alignment.
//
// The adversary recompiles the application with the payload's source added,
// shifting every address. Exact-address weight assessment (Algorithm 2)
// collapses — the mixed CFG looks entirely "in range" — so the WSVM loses
// its guidance. The CFG-alignment extension (cfg/alignment.h) restores it
// by aligning pivotal nodes between the clean and trojaned builds.
//
// For each dataset this binary reports all three models with alignment off
// and the WSVM with alignment on. Expected shape: WSVM(no align) degrades
// toward plain SVM; WSVM(aligned) recovers most of the Table-I margin.
#include <cstdio>

#include "bench_common.h"
#include "sim/scenario.h"

int main() {
  using namespace leaps;

  core::ExperimentOptions opt = bench::options_from_env();
  opt.runs = std::min<std::size_t>(opt.runs, 5);
  bench::print_banner("source-level trojans + CFG alignment (Section VI-A)",
                      opt);

  const std::pair<const char*, const char*> kDatasets[] = {
      {"winscp", "reverse_tcp"},
      {"vim", "pwddlg"},
      {"putty", "reverse_https"},
      {"notepad++", "reverse_tcp"},
  };

  std::printf("%s\n", core::format_result_header(true).c_str());
  std::size_t aligned_wins = 0;
  for (const auto& [app, payload] : kDatasets) {
    const sim::ScenarioLogs logs =
        sim::generate_source_trojan_scenario(app, payload, opt.sim);

    core::ExperimentOptions off = opt;
    off.pipeline.align_cfgs = false;
    const core::ExperimentResult r_off =
        core::ExperimentRunner(off).run_on_logs(logs);
    bench::print_model_rows(r_off);

    core::ExperimentOptions on = opt;
    on.pipeline.align_cfgs = true;
    const core::ExperimentResult r_on =
        core::ExperimentRunner(on).run_on_logs(logs);
    const ml::Measurements& m = r_on.wsvm.mean;
    std::printf("%-34s%-8s%6.3f %6.3f %6.3f %6.3f %6.3f\n",
                logs.spec.name.c_str(), "WSVM+A", m.acc, m.ppv, m.tpr, m.tnr,
                m.npv);
    if (m.acc >= r_off.wsvm.mean.acc) ++aligned_wins;
    std::fflush(stdout);
  }
  std::printf(
      "\nshape check: aligned WSVM >= unaligned WSVM on %zu/%zu "
      "source-trojan datasets\n",
      aligned_wins, std::size(kDatasets));
  return 0;
}
