// google-benchmark micro-suite: throughput of every pipeline stage.
// Not a paper artifact — harness health and regression tracking for the
// substrates (simulator, parser, CFG inference, clustering, SMO).
#include <benchmark/benchmark.h>

#include <sstream>

#include "cfg/alignment.h"
#include "cfg/call_graph.h"
#include "cfg/inference.h"
#include "cfg/weight.h"
#include "core/preprocess.h"
#include "core/persist.h"
#include "ml/dtree.h"
#include "ml/hcluster.h"
#include "ml/hmm.h"
#include "ml/logreg.h"
#include "ml/svm.h"
#include "obs/sketch.h"
#include "obs/trace.h"
#include "serve/session.h"
#include "sim/scenario.h"
#include "trace/binary_log.h"
#include "trace/intern.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/rng.h"

namespace {

using namespace leaps;

sim::SimConfig small_config(std::size_t events) {
  sim::SimConfig cfg;
  cfg.benign_events = events;
  cfg.mixed_events = events;
  cfg.malicious_events = events / 2;
  return cfg;
}

const sim::ScenarioLogs& cached_logs(std::size_t events) {
  static std::map<std::size_t, sim::ScenarioLogs> cache;
  auto it = cache.find(events);
  if (it == cache.end()) {
    it = cache
             .emplace(events,
                      sim::generate_scenario(
                          sim::find_scenario("winscp_reverse_tcp"),
                          small_config(events)))
             .first;
  }
  return it->second;
}

void BM_SimulateScenario(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::generate_scenario(
        sim::find_scenario("putty_reverse_tcp"), small_config(events)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events) * 5 / 2);
}
BENCHMARK(BM_SimulateScenario)->Arg(1000)->Arg(4000);

void BM_SerializeRawLog(benchmark::State& state) {
  const auto& logs = cached_logs(2000);
  for (auto _ : state) {
    std::ostringstream os;
    trace::write_raw_log(logs.benign, os);
    benchmark::DoNotOptimize(os.str());
  }
}
BENCHMARK(BM_SerializeRawLog);

void BM_ParseRawLogText(benchmark::State& state) {
  const auto& logs = cached_logs(2000);
  const std::string text = trace::raw_log_to_string(logs.benign);
  const trace::RawLogParser parser;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.parse_string(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ParseRawLogText);

void BM_StackPartition(benchmark::State& state) {
  const auto& logs = cached_logs(2000);
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(logs.mixed);
  const trace::StackPartitioner part(t.log.process_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.partition(t.log));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.log.events.size()));
}
BENCHMARK(BM_StackPartition);

const trace::PartitionedLog& cached_partitioned(std::size_t events) {
  static std::map<std::size_t, trace::PartitionedLog> cache;
  auto it = cache.find(events);
  if (it == cache.end()) {
    const auto& logs = cached_logs(events);
    const trace::ParsedTrace t = trace::RawLogParser().parse_raw(logs.mixed);
    it = cache
             .emplace(events, trace::StackPartitioner(t.log.process_name)
                                  .partition(t.log))
             .first;
  }
  return it->second;
}

void BM_CfgInference(benchmark::State& state) {
  const auto& part = cached_partitioned(
      static_cast<std::size_t>(state.range(0)));
  const cfg::CfgInference inference;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inference.infer(part));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.events.size()));
}
BENCHMARK(BM_CfgInference)->Arg(1000)->Arg(4000);

void BM_WeightAssessment(benchmark::State& state) {
  const auto& logs = cached_logs(4000);
  const trace::RawLogParser parser;
  const auto split = [&parser](const trace::RawLog& raw) {
    const trace::ParsedTrace t = parser.parse_raw(raw);
    return trace::StackPartitioner(t.log.process_name).partition(t.log);
  };
  const cfg::CfgInference inference;
  const cfg::InferredCfg bcfg = inference.infer(split(logs.benign));
  const cfg::InferredCfg mcfg = inference.infer(split(logs.mixed));
  for (auto _ : state) {
    const cfg::WeightAssessor assessor(bcfg.graph);
    benchmark::DoNotOptimize(assessor.assess(mcfg));
  }
}
BENCHMARK(BM_WeightAssessment);

void BM_HierarchicalClustering(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<std::vector<double>> dm(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      dm[i][j] = dm[j][i] = rng.next_double();
    }
  }
  const ml::HierarchicalClusterer clusterer({.cut_distance = 0.35});
  for (auto _ : state) {
    benchmark::DoNotOptimize(clusterer.cluster(dm));
  }
}
BENCHMARK(BM_HierarchicalClustering)->Arg(64)->Arg(256);

void BM_SmoTrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  ml::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    ml::FeatureVector x(30);
    for (double& v : x) v = rng.next_gaussian() + 0.4 * label;
    d.add(std::move(x), label, 0.1 + 0.9 * rng.next_double());
  }
  ml::SvmParams params;
  params.lambda = 10.0;
  params.kernel.sigma2 = 8.0;
  const ml::SvmTrainer trainer(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SmoTrain)->Arg(128)->Arg(384);

void BM_SvmPredict(benchmark::State& state) {
  util::Rng rng(13);
  ml::Dataset d;
  for (std::size_t i = 0; i < 256; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    ml::FeatureVector x(30);
    for (double& v : x) v = rng.next_gaussian() + 0.4 * label;
    d.add(std::move(x), label);
  }
  const ml::SvmModel model = ml::SvmTrainer({}).train(d);
  ml::FeatureVector probe(30, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.decision_value(probe));
  }
}
BENCHMARK(BM_SvmPredict);

void BM_PreprocessorFitAndWindows(benchmark::State& state) {
  const auto& part = cached_partitioned(2000);
  for (auto _ : state) {
    core::Preprocessor pre;
    pre.fit({&part});
    benchmark::DoNotOptimize(pre.make_windows(part));
  }
}
BENCHMARK(BM_PreprocessorFitAndWindows);

void BM_CallGraphBuild(benchmark::State& state) {
  const auto& part = cached_partitioned(4000);
  for (auto _ : state) {
    cfg::SystemCallGraph g;
    g.add_log(part);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_CallGraphBuild);

void BM_BinaryLogWrite(benchmark::State& state) {
  const auto& logs = cached_logs(2000);
  for (auto _ : state) {
    std::ostringstream os(std::ios::binary);
    trace::write_raw_log_binary(logs.benign, os);
    benchmark::DoNotOptimize(os.str());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(logs.benign.events.size()));
}
BENCHMARK(BM_BinaryLogWrite);

void BM_BinaryLogRead(benchmark::State& state) {
  const auto& logs = cached_logs(2000);
  std::ostringstream os(std::ios::binary);
  trace::write_raw_log_binary(logs.benign, os);
  const std::string blob = os.str();
  for (auto _ : state) {
    std::istringstream is(blob, std::ios::binary);
    benchmark::DoNotOptimize(trace::read_raw_log_binary(is));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_BinaryLogRead);

void BM_HmmTrain(benchmark::State& state) {
  util::Rng rng(17);
  std::vector<ml::Sequence> seqs;
  for (int i = 0; i < 120; ++i) {
    ml::Sequence s;
    for (int t = 0; t < 10; ++t) {
      s.push_back(static_cast<int>(rng.next_below(24)));
    }
    seqs.push_back(std::move(s));
  }
  const std::vector<double> ones(seqs.size(), 1.0);
  ml::HmmParams params;
  params.states = 5;
  params.max_iterations = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::Hmm::train(seqs, ones, 24, params));
  }
}
BENCHMARK(BM_HmmTrain);

void BM_CfgAlignment(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.benign_events = 4000;
  cfg.mixed_events = 3000;
  cfg.malicious_events = 100;
  const auto logs =
      sim::generate_source_trojan_scenario("winscp", "reverse_tcp", cfg);
  const trace::RawLogParser parser;
  const auto split = [&parser](const trace::RawLog& raw) {
    const trace::ParsedTrace t = parser.parse_raw(raw);
    return trace::StackPartitioner(t.log.process_name).partition(t.log);
  };
  const auto benign = split(logs.benign);
  const auto mixed = split(logs.mixed);
  const cfg::CfgInference inference;
  const auto bcfg = inference.infer(benign);
  const auto mcfg = inference.infer(mixed);
  const auto fb = cfg::node_fingerprints(benign);
  const auto fm = cfg::node_fingerprints(mixed);
  const cfg::CfgAligner aligner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aligner.align(bcfg.graph, mcfg.graph, &fb, &fm));
  }
}
BENCHMARK(BM_CfgAlignment);

void BM_LogRegTrain(benchmark::State& state) {
  util::Rng rng(19);
  ml::Dataset d;
  for (int i = 0; i < 360; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    ml::FeatureVector x(30);
    for (double& v : x) v = rng.next_gaussian() + 0.3 * label;
    d.add(std::move(x), label, 0.1 + 0.9 * rng.next_double());
  }
  const ml::LogRegTrainer trainer{ml::LogRegParams{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(d));
  }
}
BENCHMARK(BM_LogRegTrain);

void BM_ForestTrain(benchmark::State& state) {
  util::Rng rng(23);
  ml::Dataset d;
  for (int i = 0; i < 360; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    ml::FeatureVector x(30);
    for (double& v : x) v = rng.next_gaussian() + 0.3 * label;
    d.add(std::move(x), label, 0.1 + 0.9 * rng.next_double());
  }
  const ml::RandomForestTrainer trainer{ml::ForestParams{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(d));
  }
}
BENCHMARK(BM_ForestTrain);

// The observability acceptance case: a disabled span site must cost one
// relaxed atomic load plus a predicted branch (low single-digit ns —
// compare against BM_SpanEnabled to see what turning tracing on buys).
void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer::set_enabled(false);
  obs::Tracer::instance().clear();
  for (auto _ : state) {
    LEAPS_SPAN("bench.disabled");
    benchmark::DoNotOptimize(&state);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer::set_enabled(true);
  obs::Tracer::instance().clear();
  // Drain the ring before it saturates so every iteration measures a real
  // record, not the drop path (single-threaded here, so clear() is safe).
  std::size_t since_clear = 0;
  for (auto _ : state) {
    {
      LEAPS_SPAN("bench.enabled");
      benchmark::DoNotOptimize(&state);
    }
    if (++since_clear == obs::Tracer::kCapacity - 1) {
      state.PauseTiming();
      obs::Tracer::instance().clear();
      since_clear = 0;
      state.ResumeTiming();
    }
  }
  obs::Tracer::set_enabled(false);
  obs::Tracer::instance().clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

// Decision-value sketch hot path: every scored window pays one insert, so
// this is the per-verdict observability overhead (amortized — most
// inserts land in level 0, the occasional one triggers a compaction
// cascade).
void BM_SketchInsert(benchmark::State& state) {
  obs::QuantileSketch sketch;
  util::Rng rng(29);
  std::size_t i = 0;
  std::vector<double> values(4096);
  for (double& v : values) v = rng.next_gaussian();
  for (auto _ : state) {
    sketch.insert(values[i++ & 4095]);
  }
  benchmark::DoNotOptimize(&sketch);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchInsert);

// Quantile queries run on the metrics-export path (Prometheus summary
// lines + status JSON), never per verdict.
void BM_SketchQuantile(benchmark::State& state) {
  obs::QuantileSketch sketch;
  util::Rng rng(31);
  for (int i = 0; i < 100000; ++i) sketch.insert(rng.next_gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.quantile(0.99));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchQuantile);

// Merge cost (shard aggregation): fold a 10k-value sketch into a growing
// accumulator each iteration.
void BM_SketchMerge(benchmark::State& state) {
  obs::QuantileSketch shard;
  util::Rng rng(37);
  for (int i = 0; i < 10000; ++i) shard.insert(rng.next_gaussian());
  for (auto _ : state) {
    obs::QuantileSketch merged;
    merged.merge(shard);
    merged.merge(shard);
    benchmark::DoNotOptimize(&merged);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchMerge);

void BM_DetectorPersistRoundTrip(benchmark::State& state) {
  const auto& logs = cached_logs(2000);
  const trace::RawLogParser parser;
  const auto split = [&parser](const trace::RawLog& raw) {
    const trace::ParsedTrace t = parser.parse_raw(raw);
    return trace::StackPartitioner(t.log.process_name).partition(t.log);
  };
  const auto benign = split(logs.benign);
  const auto mixed = split(logs.mixed);
  const core::TrainingData td = core::LeapsPipeline().prepare(benign, mixed);
  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  const core::Detector detector(
      td.preprocessor, scaler, ml::SvmTrainer({}).train(train));
  for (auto _ : state) {
    std::stringstream buffer;
    core::save_detector(detector, buffer);
    benchmark::DoNotOptimize(core::load_detector(buffer));
  }
}
BENCHMARK(BM_DetectorPersistRoundTrip);

// The per-event fault-point detail on the worker path: rebuilding
// "host:pid" per event (the old behavior) vs the cached key string the
// session now carries. The gap is what caching buys every classified
// event.
void BM_SessionKeyToString(benchmark::State& state) {
  const serve::SessionKey key{"fleet-host-042.prod.example", 48213};
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.to_string());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SessionKeyToString);

void BM_SessionKeyCachedString(benchmark::State& state) {
  const serve::SessionKey key{"fleet-host-042.prod.example", 48213};
  const std::string cached = key.to_string();  // what Session{} does once
  for (auto _ : state) {
    benchmark::DoNotOptimize(cached.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SessionKeyCachedString);

// Interning one event at the ingest boundary (steady state: every lookup
// hits). This is the submit()-side cost that buys string-free workers.
void BM_TokenTableCompact(benchmark::State& state) {
  const auto& logs = cached_logs(1000);
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(logs.benign);
  const trace::PartitionedLog log =
      trace::StackPartitioner(t.log.process_name).partition(t.log);
  trace::TokenTable table;  // private table: the benchmark stays hermetic
  std::size_t i = 0;
  const std::size_t n = log.events.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.compact(log.events[i]));
    i = (i + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenTableCompact);

}  // namespace

BENCHMARK_MAIN();
