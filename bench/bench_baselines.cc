// Alternative-classifier study (Section III-D-2 mentions Logistic
// Regression and decision trees as candidate binary classifiers; Section
// VI-B proposes sequence models). Every model receives the *same*
// CFG-derived confidences, isolating the question the paper leaves open:
// how much of LEAPS's power is the weighting versus the SVM itself?
//
// Models compared, all trained on identical samples per run:
//   W-LR    weighted L2 logistic regression (linear)
//   W-Tree  weighted CART decision tree
//   W-RF    weighted bagged random forest
//   WSVM    weighted Gaussian-kernel SVM (the paper's model)
//   W-HMM   weighted HMM log-likelihood ratio (sequence model)
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "ml/dtree.h"
#include "ml/hmm.h"
#include "ml/logreg.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "util/stats.h"

namespace {

using namespace leaps;

struct Row {
  util::RunningStats lr, tree, forest, svm, hmm;
};

trace::PartitionedLog split_log(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

}  // namespace

int main() {
  using namespace leaps;
  core::ExperimentOptions opt = bench::options_from_env();
  const std::size_t runs = std::min<std::size_t>(opt.runs, 5);
  bench::print_banner("classifier comparison under CFG weighting", opt);

  const char* kScenarios[] = {
      "winscp_reverse_tcp", "vim_codeinject", "putty_reverse_https_online",
  };
  std::printf("%-34s%8s%8s%8s%8s%8s   (ACC over %zu runs)\n", "Name",
              "W-LR", "W-Tree", "W-RF", "WSVM", "W-HMM", runs);

  for (const char* name : kScenarios) {
    const sim::ScenarioLogs logs =
        sim::generate_scenario(sim::find_scenario(name), opt.sim);
    const trace::PartitionedLog benign = split_log(logs.benign);
    const trace::PartitionedLog mixed = split_log(logs.mixed);
    const trace::PartitionedLog malicious = split_log(logs.malicious);

    const core::LeapsPipeline pipeline(opt.pipeline);
    const core::TrainingData td = pipeline.prepare(benign, mixed);
    const core::WindowedData mal_windows =
        td.preprocessor.make_windows(malicious);
    core::TupleVocabulary vocabulary;
    vocabulary.fit({&benign, &mixed}, td.preprocessor);

    Row row;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng(util::hash_string(name) ^ (run + 31));

      // Same data selection scheme as the main experiment harness.
      std::vector<std::size_t> order(td.benign.size());
      std::iota(order.begin(), order.end(), 0);
      rng.shuffle(order);
      const std::size_t half = order.size() / 2;
      std::vector<std::size_t> b_train(order.begin(),
                                       order.begin() + half / 5);
      std::vector<std::size_t> b_test(order.begin() + half,
                                      order.begin() + half + half / 5);
      std::vector<std::size_t> m_train(td.mixed.size());
      std::iota(m_train.begin(), m_train.end(), 0);
      rng.shuffle(m_train);
      m_train.resize(td.mixed.size() / 5);
      std::vector<std::size_t> x_test(mal_windows.X.size());
      std::iota(x_test.begin(), x_test.end(), 0);
      rng.shuffle(x_test);
      x_test.resize(mal_windows.X.size() / 5);

      ml::Dataset train = td.benign.subset(b_train);
      train.append(td.mixed.subset(m_train));
      ml::MinMaxScaler scaler;
      scaler.fit(train.X);
      ml::Dataset train_scaled = train;
      scaler.transform_in_place(train_scaled);

      ml::SvmParams svm_params;
      svm_params.lambda = 10.0;
      svm_params.kernel.sigma2 = 8.0;
      const ml::SvmModel svm = ml::SvmTrainer(svm_params).train(train_scaled);
      ml::LogRegParams lr_params;
      lr_params.l2 = 1.0;
      const ml::LogRegModel lr =
          ml::LogRegTrainer(lr_params).train(train_scaled);
      const ml::DecisionTreeModel tree =
          ml::DecisionTreeTrainer().train(train_scaled);
      ml::ForestParams forest_params;
      forest_params.seed = run + 1;
      const ml::RandomForestModel forest =
          ml::RandomForestTrainer(forest_params).train(train_scaled);

      std::vector<ml::Sequence> b_seqs, m_seqs;
      std::vector<double> m_weights;
      for (const std::size_t w : b_train) {
        b_seqs.push_back(vocabulary.encode(
            benign, td.benign_windows.event_indices[w], td.preprocessor));
      }
      for (const std::size_t w : m_train) {
        m_seqs.push_back(vocabulary.encode(
            mixed, td.mixed_windows.event_indices[w], td.preprocessor));
        m_weights.push_back(td.mixed.weight[w]);
      }
      ml::HmmClassifier hmm;
      hmm.fit(b_seqs, m_seqs, m_weights, vocabulary.size());

      ml::ConfusionMatrix cm_lr, cm_tree, cm_forest, cm_svm, cm_hmm;
      const auto eval = [&](const trace::PartitionedLog& log,
                            const core::WindowedData& windows,
                            std::size_t w, int actual) {
        const ml::FeatureVector x = scaler.transform(windows.X[w]);
        cm_lr.add(actual, lr.predict(x));
        cm_tree.add(actual, tree.predict(x));
        cm_forest.add(actual, forest.predict(x));
        cm_svm.add(actual, svm.predict(x));
        cm_hmm.add(actual,
                   hmm.predict(vocabulary.encode(
                       log, windows.event_indices[w], td.preprocessor)));
      };
      for (const std::size_t w : b_test) {
        eval(benign, td.benign_windows, w, 1);
      }
      for (const std::size_t w : x_test) {
        eval(malicious, mal_windows, w, -1);
      }
      row.lr.add(cm_lr.accuracy());
      row.tree.add(cm_tree.accuracy());
      row.forest.add(cm_forest.accuracy());
      row.svm.add(cm_svm.accuracy());
      row.hmm.add(cm_hmm.accuracy());
    }
    std::printf("%-34s%8.3f%8.3f%8.3f%8.3f%8.3f\n", name, row.lr.mean(),
                row.tree.mean(), row.forest.mean(), row.svm.mean(),
                row.hmm.mean());
    std::fflush(stdout);
  }
  std::printf(
      "\nreading: W-LR vs WSVM isolates the kernel's share; W-Tree/W-RF "
      "test axis-aligned\npartitioning; WSVM vs W-HMM is what event "
      "ordering adds. All models use identical\nCFG-derived weights.\n");
  return 0;
}
