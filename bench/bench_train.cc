// bench_train — training fast-path timings: flat Gram build, SMO solve,
// condensed Jaccard, cached-NN UPGMA, and the end-to-end prepare+tune+train
// pipeline, swept over the shared thread pool size (1/2/4/8).
//
// Two claims are measured:
//   * the fast paths beat the reference implementations on one thread
//     (algorithmic win: flat memory, interned tokens, cached neighbors);
//   * the parallel stages scale with threads while producing bit-identical
//     results (the binary prints hardware_concurrency so a 1-core CI box's
//     flat curve reads as what it is).
//
// Knobs: LEAPS_EVENTS (end-to-end training-log size, default 3000),
// LEAPS_RUNS (best-of repetitions per timing, default 5, fast 3),
// LEAPS_FAST=1 (small preset). LEAPS_BENCH_JSON=<path> additionally writes
// the measurements as a JSON snapshot (the format of the checked-in
// BENCH_train.json baseline). LEAPS_BENCH_BASELINE=<path> compares this
// box's core count against the checked-in snapshot before writing:
// mismatches are annotated in the JSON, or refused outright with
// LEAPS_BENCH_STRICT=1 (speedup columns are incomparable across core
// counts).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "ml/cross_validation.h"
#include "ml/distance.h"
#include "ml/hcluster.h"
#include "ml/kernel.h"
#include "ml/svm.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/env.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

using namespace leaps;

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  const std::chrono::duration<double, std::milli> d =
      std::chrono::steady_clock::now() - t0;
  return d.count();
}

/// Best-of-R wall time: the minimum is the least noise-contaminated sample
/// on a shared box, and all the micro-stages here are deterministic.
template <typename F>
double best_of_ms(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, ms_since(t0));
  }
  return best;
}

std::vector<std::vector<double>> random_rows(std::size_t n, std::size_t d,
                                             util::Rng& rng) {
  std::vector<std::vector<double>> X(n, std::vector<double>(d));
  for (auto& row : X) {
    for (double& v : row) v = 4.0 * rng.next_double() - 2.0;
  }
  return X;
}

std::vector<ml::StringSet> random_sets(std::size_t n, util::Rng& rng) {
  // ~30 tokens drawn from a 60-symbol vocabulary: roughly the shape of the
  // pipeline's module/function sets.
  std::vector<ml::StringSet> sets(n);
  for (auto& s : sets) {
    for (int t = 0; t < 60; ++t) {
      if (rng.next_bool(0.5)) s.push_back("module_" + std::to_string(t));
    }
    if (s.empty()) s.push_back("module_0");
    std::sort(s.begin(), s.end());
  }
  return sets;
}

ml::Dataset blob_dataset(std::size_t n, util::Rng& rng) {
  ml::Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = (i % 2) == 0;
    const double c = pos ? 0.0 : 2.5;
    data.add({c + rng.next_gaussian(), c + rng.next_gaussian(),
              c + rng.next_gaussian()},
             pos ? +1 : -1, 1.0);
  }
  return data;
}

struct SingleThreadRow {
  std::size_t n = 0;
  double gram_ref_ms = 0.0;
  double gram_fast_ms = 0.0;
  double jaccard_ref_ms = 0.0;
  double jaccard_fast_ms = 0.0;
  double upgma_ref_ms = 0.0;
  double upgma_fast_ms = 0.0;
};

struct ThreadRow {
  std::size_t threads = 0;
  double gram_ms = 0.0;
  double jaccard_ms = 0.0;
  double smo_ms = 0.0;
  double tune_ms = 0.0;
  double e2e_ms = 0.0;
};

struct E2eInput {
  trace::PartitionedLog benign;
  trace::PartitionedLog mixed;
};

trace::PartitionedLog partition_raw(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

E2eInput build_e2e_input(std::size_t train_events) {
  sim::SimConfig cfg;
  cfg.benign_events = train_events;
  cfg.mixed_events = train_events * 3 / 4;
  cfg.malicious_events = train_events / 2;
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("vim_reverse_tcp_online"), cfg);
  return {partition_raw(logs.benign), partition_raw(logs.mixed)};
}

/// prepare (cluster-heavy) + CV tune (fold×grid fan-out) + final train
/// (Gram + SMO) — the whole leaps-train hot path minus file I/O.
double run_e2e(const E2eInput& in) {
  const auto t0 = std::chrono::steady_clock::now();
  const core::TrainingData td =
      core::LeapsPipeline().prepare(in.benign, in.mixed);
  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  ml::CrossValidationOptions cv;
  cv.folds = 5;
  cv.lambdas = {1.0, 10.0};
  cv.sigma2s = {2.0, 8.0};
  cv.weighted_validation = true;
  util::Rng rng(7);
  const ml::GridSearchResult grid = ml::tune_svm(train, {}, cv, rng);
  (void)ml::SvmTrainer(grid.best).train(train);
  return ms_since(t0);
}

}  // namespace

int main() {
  const bool fast = util::env_flag("LEAPS_FAST");
  const auto train_events = static_cast<std::size_t>(
      util::env_int("LEAPS_EVENTS", fast ? 1500 : 3000));
  const std::vector<std::size_t> gram_sizes =
      fast ? std::vector<std::size_t>{128, 256}
           : std::vector<std::size_t>{256, 512};
  const std::vector<std::size_t> cluster_sizes =
      fast ? std::vector<std::size_t>{150, 300}
           : std::vector<std::size_t>{300, 600};
  const int reps = static_cast<int>(util::env_int("LEAPS_RUNS", fast ? 3 : 5));

  std::printf("LEAPS reproduction — training fast paths (bench_train)\n");
  std::printf("config: train_events=%zu hardware_concurrency=%u\n\n",
              train_events, std::thread::hardware_concurrency());

  // ---- single-thread: fast path vs reference ----------------------------
  util::Parallel::set_threads(1);
  std::vector<SingleThreadRow> st_rows;
  std::printf("single-thread fast path vs reference (ms)\n");
  std::printf("%-6s %10s %10s %12s %12s %10s %10s\n", "n", "gram_ref",
              "gram_fast", "jaccard_ref", "jaccard_fast", "upgma_ref",
              "upgma_fast");
  for (std::size_t s = 0; s < gram_sizes.size(); ++s) {
    SingleThreadRow row;
    row.n = gram_sizes[s];
    util::Rng rng(100 + s);
    const auto X = random_rows(row.n, 6, rng);
    ml::KernelParams kernel;
    kernel.sigma2 = 8.0;
    row.gram_ref_ms =
        best_of_ms(reps, [&] { (void)ml::gram_matrix(X, kernel); });
    row.gram_fast_ms =
        best_of_ms(reps, [&] { (void)ml::GramMatrix(X, kernel); });

    const std::size_t cn = cluster_sizes[s];
    const auto sets = random_sets(cn, rng);
    std::vector<std::vector<double>> nested(cn,
                                            std::vector<double>(cn, 0.0));
    row.jaccard_ref_ms = best_of_ms(reps, [&] {
      for (std::size_t i = 0; i < cn; ++i) {
        for (std::size_t j = i + 1; j < cn; ++j) {
          nested[i][j] = nested[j][i] =
              ml::set_dissimilarity(sets[i], sets[j]);
        }
      }
    });
    const ml::CondensedMatrix condensed = ml::jaccard_condensed(sets);
    row.jaccard_fast_ms =
        best_of_ms(reps, [&] { (void)ml::jaccard_condensed(sets); });

    const ml::HierarchicalClusterer clusterer({.cut_distance = 0.5});
    row.upgma_ref_ms =
        best_of_ms(reps, [&] { (void)clusterer.cluster_reference(nested); });
    row.upgma_fast_ms = best_of_ms(reps, [&] {
      ml::CondensedMatrix dm = condensed;  // cluster() consumes its input
      (void)clusterer.cluster(std::move(dm));
    });
    std::printf("%-6zu %10.1f %10.1f %12.1f %12.1f %10.1f %10.1f\n", row.n,
                row.gram_ref_ms, row.gram_fast_ms, row.jaccard_ref_ms,
                row.jaccard_fast_ms, row.upgma_ref_ms, row.upgma_fast_ms);
    st_rows.push_back(row);
  }

  // ---- thread sweep over the parallel stages ----------------------------
  const std::size_t gram_n = gram_sizes.back();
  const std::size_t cluster_n = cluster_sizes.back();
  util::Rng rng(42);
  const auto Xg = random_rows(gram_n, 6, rng);
  ml::KernelParams kernel;
  kernel.sigma2 = 8.0;
  const auto sets = random_sets(cluster_n, rng);
  const ml::Dataset smo_data = blob_dataset(fast ? 200 : 400, rng);
  const E2eInput e2e = build_e2e_input(train_events);

  std::printf("\nthread sweep (ms; same bytes out at every width)\n");
  std::printf("%-8s %9s %12s %9s %9s %10s %9s\n", "threads", "gram",
              "jaccard", "smo", "tune", "e2e", "speedup");
  std::vector<ThreadRow> rows;
  double base_e2e = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::Parallel::set_threads(threads);
    ThreadRow row;
    row.threads = threads;
    row.gram_ms =
        best_of_ms(reps, [&] { (void)ml::GramMatrix(Xg, kernel); });
    row.jaccard_ms =
        best_of_ms(reps, [&] { (void)ml::jaccard_condensed(sets); });
    row.smo_ms =
        best_of_ms(reps, [&] { (void)ml::SvmTrainer({}).train(smo_data); });
    row.tune_ms = best_of_ms(reps, [&] {
      ml::CrossValidationOptions cv;
      cv.folds = 5;
      cv.lambdas = {1.0, 10.0};
      cv.sigma2s = {2.0, 8.0};
      util::Rng tune_rng(7);
      (void)ml::tune_svm(smo_data, {}, cv, tune_rng);
    });
    row.e2e_ms = run_e2e(e2e);
    if (threads == 1) base_e2e = row.e2e_ms;
    rows.push_back(row);
    std::printf("%-8zu %9.1f %12.1f %9.1f %9.1f %10.1f %8.2fx\n", threads,
                row.gram_ms, row.jaccard_ms, row.smo_ms, row.tune_ms,
                row.e2e_ms, base_e2e > 0.0 ? base_e2e / row.e2e_ms : 1.0);
  }
  if (std::thread::hardware_concurrency() < 4) {
    std::printf(
        "\n(machine has fewer than 4 hardware threads; expect ~1x "
        "scaling here)\n");
  }

  // ---- JSON snapshot ----------------------------------------------------
  const std::string json_path = util::env_string("LEAPS_BENCH_JSON", "");
  if (!json_path.empty()) {
    const bench::BaselineGuard guard = bench::check_bench_baseline();
    std::ofstream os(json_path, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    os << "{\n  \"benchmark\": \"bench_train\",\n"
       << "  \"config\": {\"train_events\": " << train_events
       << ", \"gram_n\": " << gram_n << ", \"cluster_n\": " << cluster_n
       << ", \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << guard.annotation << "},\n"
       << "  \"single_thread\": [\n";
    for (std::size_t i = 0; i < st_rows.size(); ++i) {
      char line[256];
      std::snprintf(
          line, sizeof line,
          "    {\"n\": %zu, \"gram_ref_ms\": %.1f, \"gram_fast_ms\": %.1f, "
          "\"jaccard_ref_ms\": %.1f, \"jaccard_fast_ms\": %.1f, "
          "\"upgma_ref_ms\": %.1f, \"upgma_fast_ms\": %.1f}%s\n",
          st_rows[i].n, st_rows[i].gram_ref_ms, st_rows[i].gram_fast_ms,
          st_rows[i].jaccard_ref_ms, st_rows[i].jaccard_fast_ms,
          st_rows[i].upgma_ref_ms, st_rows[i].upgma_fast_ms,
          i + 1 < st_rows.size() ? "," : "");
      os << line;
    }
    os << "  ],\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char line[256];
      std::snprintf(
          line, sizeof line,
          "    {\"threads\": %zu, \"gram_ms\": %.1f, \"jaccard_ms\": %.1f, "
          "\"smo_ms\": %.1f, \"tune_ms\": %.1f, \"e2e_ms\": %.1f, "
          "\"speedup\": %.2f}%s\n",
          rows[i].threads, rows[i].gram_ms, rows[i].jaccard_ms,
          rows[i].smo_ms, rows[i].tune_ms, rows[i].e2e_ms,
          base_e2e > 0.0 ? base_e2e / rows[i].e2e_ms : 1.0,
          i + 1 < rows.size() ? "," : "");
      os << line;
    }
    os << "  ]\n}\n";
    std::printf("(JSON -> %s)\n", json_path.c_str());
  }
  return 0;
}
