// Shared harness for the table/figure reproduction binaries.
//
// Each bench binary regenerates one artifact of the paper's evaluation
// (Table I, Figure 6, Figure 7, Figure 5) and prints measured-vs-paper rows.
// Knobs come from the environment so CI can run a fast smoke pass:
//   LEAPS_RUNS    averaging runs (paper: 10)
//   LEAPS_EVENTS  benign-log events per scenario (mixed = 3/4, malicious = 1/2)
//   LEAPS_FOLDS   cross-validation folds (paper: 10)
//   LEAPS_FAST=1  small preset (overrides the above downward)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "core/experiment.h"
#include "ml/metrics.h"
#include "util/env.h"

namespace leaps::bench {

/// Guard for re-capturing a checked-in BENCH_*.json: speedup columns are
/// only comparable when the new box has the same core count the baseline
/// was measured on. Point LEAPS_BENCH_BASELINE at the checked-in snapshot;
/// on a mismatch the bench either refuses (LEAPS_BENCH_STRICT=1) or
/// annotates the new JSON so the divergence is recorded, never silent.
struct BaselineGuard {
  unsigned baseline_concurrency = 0;  // 0 = no baseline consulted
  bool mismatch = false;
  /// Extra fields for the JSON "config" object ("" when comparable).
  std::string annotation;
};

inline BaselineGuard check_bench_baseline() {
  BaselineGuard g;
  const std::string path = util::env_string("LEAPS_BENCH_BASELINE", "");
  if (path.empty()) return g;
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "bench: cannot read baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  const std::string key = "\"hardware_concurrency\":";
  const auto pos = text.find(key);
  if (pos == std::string::npos) {
    std::fprintf(stderr, "bench: baseline %s lacks hardware_concurrency\n",
                 path.c_str());
    std::exit(1);
  }
  g.baseline_concurrency = static_cast<unsigned>(
      std::strtoul(text.c_str() + pos + key.size(), nullptr, 10));
  const unsigned here = std::thread::hardware_concurrency();
  if (g.baseline_concurrency == here) return g;
  g.mismatch = true;
  if (util::env_flag("LEAPS_BENCH_STRICT")) {
    std::fprintf(stderr,
                 "bench: refusing to re-capture — this box has %u hardware "
                 "threads but the baseline %s was measured with %u "
                 "(LEAPS_BENCH_STRICT=1); results would not be comparable\n",
                 here, path.c_str(), g.baseline_concurrency);
    std::exit(1);
  }
  std::fprintf(stderr,
               "bench: warning — %u hardware threads here vs %u in baseline "
               "%s; annotating the JSON (set LEAPS_BENCH_STRICT=1 to refuse "
               "instead)\n",
               here, g.baseline_concurrency, path.c_str());
  std::ostringstream ann;
  ann << ", \"baseline_hardware_concurrency\": " << g.baseline_concurrency
      << ", \"baseline_core_mismatch\": true";
  g.annotation = ann.str();
  return g;
}

inline core::ExperimentOptions options_from_env() {
  core::ExperimentOptions opt;
  opt.runs = static_cast<std::size_t>(util::env_int("LEAPS_RUNS", 10));
  const auto events =
      static_cast<std::size_t>(util::env_int("LEAPS_EVENTS", 12000));
  opt.sim.benign_events = events;
  opt.sim.mixed_events = events * 3 / 4;
  opt.sim.malicious_events = events / 2;
  opt.cv.folds = static_cast<std::size_t>(util::env_int("LEAPS_FOLDS", 10));
  if (util::env_flag("LEAPS_FAST")) {
    opt.runs = std::min<std::size_t>(opt.runs, 2);
    opt.sim.benign_events = std::min<std::size_t>(opt.sim.benign_events, 4000);
    opt.sim.mixed_events = std::min<std::size_t>(opt.sim.mixed_events, 3000);
    opt.sim.malicious_events =
        std::min<std::size_t>(opt.sim.malicious_events, 2000);
    opt.cv.folds = 5;
  }
  return opt;
}

inline void print_banner(const char* what,
                         const core::ExperimentOptions& opt) {
  std::printf("LEAPS reproduction — %s\n", what);
  std::printf(
      "config: events=%zu/%zu/%zu runs=%zu cv_folds=%zu "
      "(LEAPS_RUNS/LEAPS_EVENTS/LEAPS_FOLDS/LEAPS_FAST to adjust)\n\n",
      opt.sim.benign_events, opt.sim.mixed_events, opt.sim.malicious_events,
      opt.runs, opt.cv.folds);
}

/// Table I of the paper: the WSVM measurements reported per dataset.
inline const std::map<std::string, ml::Measurements>& paper_table1() {
  static const std::map<std::string, ml::Measurements> table = {
      {"winscp_reverse_tcp", {0.932, 0.999, 0.865, 0.999, 0.881}},
      {"winscp_reverse_https", {0.927, 0.991, 0.862, 0.992, 0.878}},
      {"chrome_reverse_tcp", {0.877, 0.998, 0.755, 0.999, 0.803}},
      {"chrome_reverse_https", {0.907, 0.998, 0.815, 0.999, 0.844}},
      {"notepad++_reverse_tcp", {0.846, 0.998, 0.693, 0.998, 0.765}},
      {"notepad++_reverse_https", {0.866, 0.998, 0.733, 0.998, 0.789}},
      {"putty_reverse_tcp", {0.886, 0.815, 0.998, 0.774, 0.998}},
      {"putty_reverse_https", {0.869, 0.999, 0.739, 0.999, 0.793}},
      {"vim_reverse_tcp", {0.914, 0.995, 0.832, 0.996, 0.856}},
      {"vim_reverse_https", {0.919, 0.998, 0.839, 0.999, 0.861}},
      {"vim_codeinject", {0.852, 0.985, 0.715, 0.989, 0.776}},
      {"notepad++_codeinject", {0.802, 0.948, 0.639, 0.965, 0.728}},
      {"putty_codeinject", {0.802, 0.919, 0.661, 0.942, 0.736}},
      {"putty_reverse_tcp_online", {0.894, 0.825, 0.999, 0.789, 0.999}},
      {"putty_reverse_https_online", {0.869, 0.999, 0.738, 0.999, 0.792}},
      {"notepad++_reverse_tcp_online", {0.927, 0.991, 0.861, 0.992, 0.877}},
      {"notepad++_reverse_https_online", {0.845, 0.998, 0.690, 0.999, 0.763}},
      {"vim_reverse_tcp_online", {0.963, 0.933, 0.998, 0.928, 0.998}},
      {"vim_reverse_https_online", {0.919, 0.995, 0.842, 0.996, 0.863}},
      {"winscp_reverse_tcp_online", {0.950, 0.996, 0.904, 0.996, 0.912}},
      {"winscp_reverse_https_online", {0.921, 0.998, 0.843, 0.998, 0.864}},
  };
  return table;
}

/// Case-study reference points the paper spells out for CGraph and SVM
/// (Section V-C); used by the Figure 6/7 binaries as anchors.
struct CaseStudyRef {
  double cgraph_acc, svm_acc, wsvm_acc;
};

inline const std::map<std::string, CaseStudyRef>& paper_case_studies() {
  static const std::map<std::string, CaseStudyRef> refs = {
      {"winscp_reverse_tcp", {0.7479, 0.8581, 0.932}},
      {"vim_codeinject", {0.355, 0.725, 0.852}},
      {"putty_reverse_https_online", {0.6922, 0.7825, 0.8686}},
  };
  return refs;
}

inline void print_model_rows(const core::ExperimentResult& r) {
  std::printf("%s\n", core::format_result_row(r, true).c_str());
}

/// When LEAPS_CSV_DIR is set, opens `<dir>/<name>` for writing and prints
/// the header; otherwise returns nullptr (CSV output disabled). The caller
/// owns the handle (fclose).
inline std::FILE* open_csv(const char* name, const char* header) {
  const std::string dir = util::env_string("LEAPS_CSV_DIR", "");
  if (dir.empty()) return nullptr;
  const std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return nullptr;
  }
  std::fprintf(f, "%s\n", header);
  std::printf("(CSV -> %s)\n", path.c_str());
  return f;
}

inline void csv_model_row(std::FILE* f, const char* scenario,
                          const char* model, const core::ModelOutcome& m) {
  if (f == nullptr) return;
  std::fprintf(f, "%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", scenario, model,
               m.mean.acc, m.mean.ppv, m.mean.tpr, m.mean.tnr, m.mean.npv,
               m.auc);
}

}  // namespace leaps::bench
