// Tests for decision-value drift detection (src/online/drift.h): the
// two-sample KS primitives, the reference/live window state machine, the
// trigger/cooldown cycle, serialization round trips, and — the property
// the durability drill rests on — that the monitor's state is a pure
// function of its observation sequence, independent of server worker
// count when fed through a single session.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "detector_fixture.h"
#include "online/drift.h"
#include "online/manager.h"
#include "serve/server.h"

namespace leaps::online {
namespace {

using testing::TrainedDetector;
using testing::train_small_detector;

const TrainedDetector& fixture() {
  static const TrainedDetector f = train_small_detector(
      "vim_reverse_tcp_online", 1200, 7, /*with_continual=*/true);
  return f;
}

// --- KS primitives --------------------------------------------------------

TEST(KsTest, IdenticalSamplesHaveZeroStatistic) {
  const std::vector<double> a = {0.1, 0.5, 0.9, 1.3, 2.0};
  EXPECT_DOUBLE_EQ(DriftMonitor::ks_statistic(a, a), 0.0);
  EXPECT_NEAR(DriftMonitor::ks_p_value(0.0, a.size(), a.size()), 1.0, 1e-9);
}

TEST(KsTest, DisjointSamplesHaveStatisticOne) {
  std::vector<double> low, high;
  for (int i = 0; i < 64; ++i) {
    low.push_back(static_cast<double>(i) * 0.01);
    high.push_back(10.0 + static_cast<double>(i) * 0.01);
  }
  EXPECT_DOUBLE_EQ(DriftMonitor::ks_statistic(low, high), 1.0);
  EXPECT_LT(DriftMonitor::ks_p_value(1.0, low.size(), high.size()), 1e-12);
}

TEST(KsTest, StatisticIsOrderInvariantAndSymmetric) {
  const std::vector<double> a = {3.0, 1.0, 2.0, 0.5};
  const std::vector<double> b = {2.5, 0.75, 1.5};
  std::vector<double> a_sorted = a, b_sorted = b;
  std::sort(a_sorted.begin(), a_sorted.end());
  std::sort(b_sorted.begin(), b_sorted.end());
  const double d = DriftMonitor::ks_statistic(a, b);
  EXPECT_DOUBLE_EQ(d, DriftMonitor::ks_statistic(a_sorted, b_sorted));
  EXPECT_DOUBLE_EQ(d, DriftMonitor::ks_statistic(b, a));
}

TEST(KsTest, EmptySampleYieldsZero) {
  EXPECT_DOUBLE_EQ(DriftMonitor::ks_statistic({}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(DriftMonitor::ks_statistic({1.0}, {}), 0.0);
}

TEST(KsTest, PValueIsClampedAndMonotonicInD) {
  double prev = 1.0;
  for (double d = 0.0; d <= 1.0; d += 0.1) {
    const double p = DriftMonitor::ks_p_value(d, 100, 100);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, prev + 1e-12) << "p must not grow with D";
    prev = p;
  }
}

// --- monitor state machine ------------------------------------------------

DriftOptions small_options() {
  DriftOptions options;
  options.enabled = true;
  options.reference_target = 16;
  options.live_window = 8;
  options.min_live = 4;
  options.p_threshold = 0.01;
  return options;
}

/// Reference values 0..15, then shifted live values — guaranteed drift.
void fill_reference(DriftMonitor& monitor) {
  for (int i = 0; i < 16; ++i) {
    monitor.observe(static_cast<double>(i) * 0.1, 1);
  }
}

TEST(DriftMonitorTest, ReferenceFreezesAtTarget) {
  DriftMonitor monitor(small_options());
  for (int i = 0; i < 15; ++i) monitor.observe(0.1 * i, 1);
  EXPECT_FALSE(monitor.status().reference_frozen);
  monitor.observe(1.5, 1);
  const DriftStatus frozen = monitor.status();
  EXPECT_TRUE(frozen.reference_frozen);
  EXPECT_EQ(frozen.reference_size, 16u);
  EXPECT_EQ(frozen.live_size, 0u);
  monitor.observe(2.0, 1);
  EXPECT_EQ(monitor.status().live_size, 1u);
}

TEST(DriftMonitorTest, NoEvaluationBeforeMinLive) {
  DriftMonitor monitor(small_options());
  fill_reference(monitor);
  for (int i = 0; i < 3; ++i) monitor.observe(100.0, -1);
  EXPECT_FALSE(monitor.evaluate());
  EXPECT_EQ(monitor.status().evaluations, 0u);
}

TEST(DriftMonitorTest, ShiftedDistributionFiresAndCoolsDown) {
  DriftMonitor monitor(small_options());
  fill_reference(monitor);
  for (int i = 0; i < 8; ++i) monitor.observe(100.0 + i, -1);
  EXPECT_TRUE(monitor.evaluate());
  const DriftStatus fired = monitor.status();
  EXPECT_TRUE(fired.trigger_pending);
  EXPECT_EQ(fired.triggers, 1u);
  EXPECT_DOUBLE_EQ(fired.ks_statistic, 1.0);
  EXPECT_LT(fired.p_value, 0.01);

  // Consuming the trigger clears the live window: the natural cooldown.
  EXPECT_TRUE(monitor.consume_trigger());
  EXPECT_FALSE(monitor.trigger_pending());
  EXPECT_EQ(monitor.status().live_size, 0u);
  EXPECT_FALSE(monitor.evaluate()) << "no re-fire until live refills";
  EXPECT_FALSE(monitor.consume_trigger());

  // A refilled live window at the same shift fires again.
  for (int i = 0; i < 8; ++i) monitor.observe(100.0 + i, -1);
  EXPECT_TRUE(monitor.evaluate());
  EXPECT_EQ(monitor.status().triggers, 2u);
}

TEST(DriftMonitorTest, MatchingDistributionStaysQuiet) {
  DriftMonitor monitor(small_options());
  fill_reference(monitor);
  // Live drawn from the same ramp: KS must not clear the 1% bar.
  for (int i = 0; i < 8; ++i) {
    monitor.observe(static_cast<double>(i * 2) * 0.1, 1);
  }
  EXPECT_FALSE(monitor.evaluate());
  EXPECT_EQ(monitor.status().triggers, 0u);
  EXPECT_GE(monitor.status().p_value, 0.01);
}

TEST(DriftMonitorTest, AdvanceGenerationResetsWindowsKeepsHistory) {
  DriftMonitor monitor(small_options());
  fill_reference(monitor);
  for (int i = 0; i < 8; ++i) monitor.observe(100.0, -1);
  monitor.advance_generation();
  const DriftStatus s = monitor.status();
  EXPECT_EQ(s.generation, 1u);
  EXPECT_EQ(s.observed, 0u);
  EXPECT_FALSE(s.reference_frozen);
  EXPECT_EQ(s.reference_size, 0u);
  EXPECT_EQ(s.live_size, 0u);
  EXPECT_EQ(s.sketch.count, 0u);
  ASSERT_EQ(s.generations.size(), 2u);
  EXPECT_EQ(s.generations[0].benign, 16u);
  EXPECT_EQ(s.generations[0].malicious, 8u);
}

TEST(DriftMonitorTest, RestoreTriggerRelatchesWithoutCounting) {
  DriftMonitor monitor(small_options());
  fill_reference(monitor);
  for (int i = 0; i < 8; ++i) monitor.observe(100.0, -1);
  EXPECT_TRUE(monitor.evaluate());
  const std::uint64_t triggers = monitor.status().triggers;
  EXPECT_TRUE(monitor.consume_trigger());
  monitor.restore_trigger();  // what journal replay does for kTrigger
  EXPECT_TRUE(monitor.trigger_pending());
  EXPECT_EQ(monitor.status().triggers, triggers)
      << "restoring a journaled trigger must not double-count";
}

TEST(DriftMonitorTest, SerializeRoundTripIsExact) {
  DriftMonitor monitor(small_options());
  fill_reference(monitor);
  for (int i = 0; i < 6; ++i) monitor.observe(50.0 + 0.25 * i, -1);
  monitor.evaluate();
  monitor.advance_generation();
  for (int i = 0; i < 5; ++i) monitor.observe(0.33 * i, 1);

  DriftMonitor copy(small_options());
  ASSERT_TRUE(copy.deserialize(monitor.serialize()).ok());
  EXPECT_TRUE(copy == monitor);
  EXPECT_EQ(copy.serialize(), monitor.serialize());
}

TEST(DriftMonitorTest, DeserializeRejectsGarbage) {
  DriftMonitor monitor(small_options());
  EXPECT_FALSE(monitor.deserialize("not a drift blob").ok());
  EXPECT_FALSE(monitor.deserialize("").ok());
  const std::string good = monitor.serialize();
  EXPECT_FALSE(
      monitor.deserialize(std::string_view(good).substr(0, good.size() / 2))
          .ok());
}

TEST(DriftMonitorTest, StateIsAPureFunctionOfTheSequence) {
  // Same observation sequence, interleaved with different evaluate() call
  // patterns — the serialized state must be identical (evaluations that
  // cannot run are free, ones that run latch the same KS result).
  DriftMonitor a(small_options());
  DriftMonitor b(small_options());
  for (int i = 0; i < 16; ++i) {
    a.observe(0.1 * i, 1);
    b.observe(0.1 * i, 1);
    b.evaluate();  // no-op: reference not frozen / live empty
  }
  for (int i = 0; i < 8; ++i) {
    a.observe(100.0 + i, -1);
    b.observe(100.0 + i, -1);
  }
  EXPECT_TRUE(a.evaluate());
  EXPECT_TRUE(b.evaluate());
  EXPECT_EQ(a.serialize(), b.serialize());
}

// --- worker-count determinism through the serving stack -------------------

/// Drives one server at the given worker count: a single session replays
/// benign then malicious traffic with drift enabled, and the resulting
/// monitor state is returned serialized. Per-session windows are scored
/// in submission order regardless of worker count, so the bytes must be
/// identical at 1 and 8 workers.
std::string drive_drift(std::size_t workers) {
  const TrainedDetector& f = fixture();
  serve::ServerOptions server_options;
  server_options.workers = workers;
  serve::DetectionServer server(server_options);
  server.registry().add("default", f.detector);

  OnlineOptions options;
  options.retrain.min_new_events = 1u << 30;  // drift is the only trigger
  options.drift.enabled = true;
  // Reference = exactly one benign replay, live = one malicious replay —
  // no benign stragglers ever reach the live window.
  options.drift.reference_target =
      f.detector->scan(f.benign).window_labels.size();
  options.drift.live_window =
      f.detector->scan(f.malicious).window_labels.size();
  options.drift.min_live =
      std::min<std::size_t>(options.drift.live_window, 6);
  options.drift.p_threshold = 0.05;
  OnlineManager manager(&server, options);
  manager.install();
  server.start();
  auto session = server.open_session({"host", 1}, "default");
  EXPECT_NE(session, nullptr);
  if (session == nullptr) return "";

  for (const trace::PartitionedEvent& e : f.benign.events) {
    server.submit(session, e);
  }
  server.drain();
  for (const trace::PartitionedEvent& e : f.malicious.events) {
    server.submit(session, e);
  }
  server.drain();
  manager.poll_once();

  // Extract the monitor state through its public face: a fresh monitor
  // fed the same status — serialize via the report's full state instead.
  const DriftStatus s = manager.report().drift;
  std::string fingerprint;
  fingerprint += std::to_string(s.generation) + "|";
  fingerprint += std::to_string(s.observed) + "|";
  fingerprint += std::to_string(s.reference_size) + "|";
  fingerprint += std::to_string(s.reference_frozen) + "|";
  fingerprint += std::to_string(s.live_size) + "|";
  char buf[128];
  std::snprintf(buf, sizeof buf, "%.17g|%.17g|", s.ks_statistic, s.p_value);
  fingerprint += buf;
  fingerprint += std::to_string(s.evaluations) + "|";
  fingerprint += std::to_string(s.triggers) + "|";
  std::snprintf(buf, sizeof buf, "%llu|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g",
                static_cast<unsigned long long>(s.sketch.count), s.sketch.sum,
                s.sketch.min, s.sketch.max, s.sketch.q50, s.sketch.q90,
                s.sketch.q99);
  fingerprint += buf;
  for (const GenerationMix& g : s.generations) {
    fingerprint += "|" + std::to_string(g.benign) + "/" +
                   std::to_string(g.malicious);
  }
  server.stop();
  manager.stop();
  return fingerprint;
}

TEST(DriftDeterminism, OneVersusEightWorkersByteIdentical) {
  const std::string one = drive_drift(1);
  const std::string eight = drive_drift(8);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, eight)
      << "single-session drift state must not depend on worker count";
}

// --- drift-triggered retrain through the manager --------------------------

TEST(DriftRetrain, TriggerSchedulesARetrainAlongsideTheVolumePath) {
  const TrainedDetector& f = fixture();
  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::DetectionServer server(server_options);
  server.registry().add("default", f.detector);

  OnlineOptions options;
  options.accumulator.admit_floor = 0.0;
  options.retrain.min_new_events = 1u << 30;  // volume trigger parked
  options.retrain.max_new_samples = 32;
  options.gates = {.max_disagreement = 1.0,
                   .max_latency_ratio = 1e9,
                   .min_windows = 2};
  options.drift.enabled = true;
  options.drift.reference_target =
      f.detector->scan(f.benign).window_labels.size();
  options.drift.live_window =
      f.detector->scan(f.malicious).window_labels.size();
  options.drift.min_live =
      std::min<std::size_t>(options.drift.live_window, 6);
  options.drift.p_threshold = 0.05;
  OnlineManager manager(&server, options);
  manager.install();
  server.start();
  auto session = server.open_session({"host", 1}, "default");
  ASSERT_NE(session, nullptr);

  for (const trace::PartitionedEvent& e : f.benign.events) {
    ASSERT_TRUE(server.submit(session, e));
  }
  server.drain();
  manager.poll_once();
  EXPECT_EQ(manager.report().retrain_cycles, 0u)
      << "volume trigger must stay parked";

  for (const trace::PartitionedEvent& e : f.malicious.events) {
    ASSERT_TRUE(server.submit(session, e));
  }
  server.drain();
  manager.poll_once();  // drift fires -> retrain consumes the trigger

  const OnlineReport report = manager.report();
  EXPECT_GE(report.drift.triggers, 1u);
  EXPECT_FALSE(report.drift.trigger_pending) << "retrain must consume it";
  EXPECT_EQ(report.drift_retrains, 1u);
  EXPECT_EQ(report.retrain_cycles, 1u);
  server.stop();
  manager.stop();
}

}  // namespace
}  // namespace leaps::online
