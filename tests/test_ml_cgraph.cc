// Unit tests for the system-level call-graph decision model (CGraph).
#include <gtest/gtest.h>

#include "ml/cgraph_model.h"

namespace leaps::ml {
namespace {

trace::PartitionedEvent sys_event(std::uint64_t seq,
                                  std::vector<std::uint64_t> addrs) {
  trace::PartitionedEvent e;
  e.seq = seq;
  for (const std::uint64_t a : addrs) {
    trace::StackFrame f;
    f.address = a;
    f.module = "m.dll";
    f.function = "f";
    e.system_stack.push_back(std::move(f));
  }
  return e;
}

trace::PartitionedLog log_of(std::vector<trace::PartitionedEvent> events) {
  trace::PartitionedLog l;
  l.events = std::move(events);
  return l;
}

class CGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // BCG learns the edge 20→10 (stack [10,20]); MCG learns 40→30.
    // The shared edge 60→50 appears in both.
    model_.train(log_of({sys_event(0, {10, 20}), sys_event(1, {50, 60})}),
                 log_of({sys_event(0, {30, 40}), sys_event(1, {50, 60})}));
  }
  CallGraphModel model_;
};

TEST_F(CGraphTest, BcgOnlyEdgeVotesBenign) {
  EXPECT_EQ(model_.predict_event(sys_event(9, {10, 20})), 1);
}

TEST_F(CGraphTest, McgOnlyEdgeVotesMalicious) {
  EXPECT_EQ(model_.predict_event(sys_event(9, {30, 40})), -1);
}

TEST_F(CGraphTest, SharedEdgeIsUndecidable) {
  // Edge in both graphs → score 0 → deterministic coin. Whatever the
  // outcome, it must be stable across calls.
  const int a = model_.predict_event(sys_event(9, {50, 60}));
  const int b = model_.predict_event(sys_event(9, {50, 60}));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a == 1 || a == -1);
}

TEST_F(CGraphTest, UnseenEdgeIsUndecidable) {
  const auto e = sys_event(9, {70, 80});
  EXPECT_EQ(model_.predict_event(e), model_.predict_event(e));
}

TEST_F(CGraphTest, TieBreakIsRoughlyBalanced) {
  int benign = 0;
  for (std::uint64_t seq = 0; seq < 400; ++seq) {
    if (model_.predict_event(sys_event(seq, {70 + seq * 2, 71 + seq * 2})) ==
        1) {
      ++benign;
    }
  }
  EXPECT_GT(benign, 120);
  EXPECT_LT(benign, 280);
}

TEST_F(CGraphTest, MixedVotesResolveByMajority) {
  // One BCG edge + two MCG-flavored frames: [30,40] gives one MCG vote,
  // combined stack [10,20] one BCG vote -> build a window to combine.
  const auto benign_ev = sys_event(1, {10, 20});
  const auto mal_ev1 = sys_event(2, {30, 40});
  const auto mal_ev2 = sys_event(3, {30, 40});
  const std::vector<const trace::PartitionedEvent*> window = {
      &benign_ev, &mal_ev1, &mal_ev2};
  EXPECT_EQ(model_.score_window(window), -1);
  EXPECT_EQ(model_.predict_window(window), -1);
}

TEST_F(CGraphTest, WindowOfBenignEdgesPredictsBenign) {
  const auto e1 = sys_event(1, {10, 20});
  const auto e2 = sys_event(2, {10, 20});
  const std::vector<const trace::PartitionedEvent*> window = {&e1, &e2};
  EXPECT_EQ(model_.score_window(window), 2);
  EXPECT_EQ(model_.predict_window(window), 1);
}

TEST(CallGraphModel, UseBeforeTrainThrows) {
  CallGraphModel m;
  const auto e = sys_event(0, {1, 2});
  EXPECT_THROW(m.predict_event(e), std::logic_error);
  EXPECT_FALSE(m.trained());
}

TEST(CallGraphModel, RetrainReplacesGraphs) {
  CallGraphModel m;
  m.train(log_of({sys_event(0, {10, 20})}), log_of({sys_event(0, {30, 40})}));
  EXPECT_EQ(m.predict_event(sys_event(1, {10, 20})), 1);
  // Swap the roles.
  m.train(log_of({sys_event(0, {30, 40})}), log_of({sys_event(0, {10, 20})}));
  EXPECT_EQ(m.predict_event(sys_event(1, {10, 20})), -1);
  EXPECT_EQ(m.predict_event(sys_event(1, {30, 40})), 1);
}

}  // namespace
}  // namespace leaps::ml
