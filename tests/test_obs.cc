// Tests for the observability subsystem (src/obs/): the log₂ latency
// histogram's edge cases, the metric registry's Prometheus/JSON
// exposition, the lock-free span tracer (including a ≥4-thread
// concurrency test that the tsan CI job runs), and the pipeline
// instrumentation's span tree.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "detector_fixture.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/sketch.h"
#include "obs/trace.h"
#include "serve/metrics.h"

namespace leaps::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator — enough grammar to reject anything Perfetto or
// python's json module would reject (unbalanced structure, bare keys,
// trailing garbage). Returns true iff `text` is one complete JSON value.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip the escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& text) {
  return JsonChecker(text).valid();
}

TEST(JsonChecker, SanityOnTheCheckerItself) {
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3],"b":"x\"y","c":null})"));
  EXPECT_TRUE(is_valid_json("[]"));
  EXPECT_FALSE(is_valid_json("{\"a\":}"));
  EXPECT_FALSE(is_valid_json("[1,2"));
  EXPECT_FALSE(is_valid_json("{} trailing"));
}

// ---------------------------------------------------------------------------
// LatencyHistogram edge cases

TEST(Histogram, EmptySnapshotQuantilesAreZero) {
  const LatencyHistogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.quantile_us(0.0), 0u);
  EXPECT_EQ(s.quantile_us(0.5), 0u);
  EXPECT_EQ(s.quantile_us(1.0), 0u);
  EXPECT_DOUBLE_EQ(s.mean_us(), 0.0);
}

TEST(Histogram, QuantileOneFallsThroughToMax) {
  LatencyHistogram h;
  h.record_us(3);
  h.record_us(100);
  h.record_us(5000);
  const auto s = h.snapshot();
  // rank = count at q=1.0, beyond every cumulative bucket count, so the
  // scan falls through and reports the exact observed max.
  EXPECT_EQ(s.quantile_us(1.0), 5000u);
  EXPECT_EQ(s.max_us, 5000u);
}

TEST(Histogram, PowerOfTwoValuesLandInTheRightBucket) {
  // Bucket i covers [2^(i-1), 2^i) µs, so an exact power of two 2^k is the
  // *lowest* value of bucket k+1, not the top of bucket k.
  for (const std::size_t k : {0u, 1u, 5u, 10u, 20u}) {
    LatencyHistogram h;
    const std::uint64_t v = std::uint64_t{1} << k;
    h.record_us(v);
    const auto s = h.snapshot();
    ASSERT_EQ(s.buckets[k + 1], 1u) << "value " << v;
    // And the bucket's inclusive upper bound is consistent with it.
    EXPECT_GE(LatencyHistogram::bucket_upper_us(k + 1), v);
    EXPECT_LT(LatencyHistogram::bucket_upper_us(k), v);
  }
  // One below the power of two stays in bucket k.
  LatencyHistogram h;
  h.record_us((std::uint64_t{1} << 10) - 1);  // 1023 µs
  EXPECT_EQ(h.snapshot().buckets[10], 1u);
}

TEST(Histogram, HugeValuesSaturateIntoTheLastBucket) {
  LatencyHistogram h;
  // ~16 minutes and ~11 days, both far beyond the 2^27 µs (~2 min) range.
  h.record_us(std::uint64_t{1} << 30);
  h.record_us(std::uint64_t{1} << 40);
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[LatencyHistogram::kBuckets - 1], 2u);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max_us, std::uint64_t{1} << 40);
}

TEST(Histogram, BucketUpperBoundsAreInclusiveAndMonotonic) {
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(2), 3u);
  for (std::size_t i = 1; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_GT(LatencyHistogram::bucket_upper_us(i),
              LatencyHistogram::bucket_upper_us(i - 1));
  }
}

// ---------------------------------------------------------------------------
// MetricRegistry

TEST(Registry, FindOrCreateReturnsStableReferences) {
  MetricRegistry r;
  Counter& a = r.counter("x_total", "help");
  Counter& b = r.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, TypeMismatchThrows) {
  MetricRegistry r;
  r.counter("thing");
  EXPECT_THROW(r.gauge("thing"), std::logic_error);
  EXPECT_THROW(r.histogram("thing"), std::logic_error);
}

TEST(Registry, PrometheusExposition) {
  MetricRegistry r;
  r.counter("leaps_test_events_total", "events seen").inc(42);
  r.gauge("leaps_test_depth", "queue depth").set(-7);
  LatencyHistogram& h = r.histogram("leaps_test_wait_us", "wait");
  h.record_us(2);
  h.record_us(1000);
  const std::string text = r.to_prometheus();

  EXPECT_NE(text.find("# HELP leaps_test_events_total events seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE leaps_test_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_test_events_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("leaps_test_depth -7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE leaps_test_wait_us histogram\n"),
            std::string::npos);
  // Cumulative buckets: nothing ≤ 1 µs, both ≤ 1023 µs, +Inf == count.
  EXPECT_NE(text.find("leaps_test_wait_us_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_test_wait_us_bucket{le=\"3\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_test_wait_us_bucket{le=\"1023\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_test_wait_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_test_wait_us_sum 1002\n"), std::string::npos);
  EXPECT_NE(text.find("leaps_test_wait_us_count 2\n"), std::string::npos);
}

TEST(Registry, JsonExpositionIsValidJson) {
  MetricRegistry r;
  r.counter("a_total").inc(1);
  r.gauge("b").set(2);
  r.histogram("c_us").record_us(10);
  const std::string json = r.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"le_us\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Registry, CollectorRegistrationIsRaii) {
  MetricRegistry r;
  {
    const MetricRegistry::Registration reg =
        r.register_collector([](std::vector<MetricSample>& out) {
          MetricSample s;
          s.name = "from_collector_total";
          s.type = MetricType::kCounter;
          s.counter_value = 9;
          out.push_back(std::move(s));
        });
    EXPECT_NE(r.to_prometheus().find("from_collector_total 9"),
              std::string::npos);
  }
  // Handle destroyed → collector gone.
  EXPECT_EQ(r.to_prometheus().find("from_collector_total"),
            std::string::npos);
}

TEST(Registry, ServerMetricsRegisterWithExposesServeCounters) {
  MetricRegistry r;
  serve::ServerMetrics metrics;
  metrics.events_ingested.fetch_add(10);
  metrics.events_processed.fetch_add(8);
  metrics.windows_scored.fetch_add(4);
  metrics.note_queue_depth(17);
  metrics.queue_wait.record_us(50);
  const MetricRegistry::Registration reg = metrics.register_with(r);
  const std::string text = r.to_prometheus();
  EXPECT_NE(text.find("leaps_serve_events_ingested_total 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_serve_events_processed_total 8\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_serve_windows_scored_total 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_serve_queue_high_water 17\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_serve_queue_wait_us_count 1\n"),
            std::string::npos);
  EXPECT_TRUE(is_valid_json(r.to_json()));
}

TEST(Registry, MetricsSnapshotJsonCarriesFullBucketShape) {
  serve::ServerMetrics metrics;
  metrics.classify.record_us(123);
  const std::string json = metrics.snapshot().to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  // The full bucket arrays (satellite of the registry work): 28 bounds
  // with the saturated last bucket as -1, and 28 per-bucket counts.
  EXPECT_NE(json.find("\"le_us\":[0,1,3,7,15"), std::string::npos);
  EXPECT_NE(json.find(",-1]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer. These tests mutate the global tracer; the fixture quiesces and
// clears it around each one so they compose with any test order.

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  {
    LEAPS_SPAN("nothing.outer");
    LEAPS_SPAN("nothing.inner");
  }
  EXPECT_EQ(Tracer::instance().span_count(), 0u);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
}

TEST_F(TracerTest, NestedSpansRecordDepthAndContainment) {
  Tracer::set_enabled(true);
  {
    LEAPS_SPAN("outer");
    {
      LEAPS_SPAN("inner");
    }
  }
  Tracer::set_enabled(false);

  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans commit on close, so the inner span lands first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  // Containment: inner starts at/after outer and ends at/before it.
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].start_ns + spans[0].dur_ns,
            spans[1].start_ns + spans[1].dur_ns);
}

TEST_F(TracerTest, ChromeTraceJsonIsAValidEventArray) {
  Tracer::set_enabled(true);
  {
    LEAPS_SPAN("stage.a");
    LEAPS_SPAN("stage.b");
  }
  Tracer::set_enabled(false);

  const std::string json = Tracer::instance().chrome_trace_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage.a\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TracerTest, ProfileTextAggregatesAndIndents) {
  Tracer::set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    LEAPS_SPAN("prof.outer");
    {
      LEAPS_SPAN("prof.inner");
    }
  }
  Tracer::set_enabled(false);

  const std::string text = Tracer::instance().profile_text();
  EXPECT_NE(text.find("prof.outer"), std::string::npos);
  // Depth-1 stages are indented two spaces under their parent.
  EXPECT_NE(text.find("  prof.inner"), std::string::npos);
  // Both aggregated to one line with count 3.
  EXPECT_NE(text.find("3"), std::string::npos);
}

TEST_F(TracerTest, ConcurrentSpansFromManyThreads) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSpansPerThread = 2000;
  Tracer::set_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        LEAPS_SPAN("mt.work");
        {
          LEAPS_SPAN("mt.nested");
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Tracer::set_enabled(false);

  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  EXPECT_EQ(spans.size() + Tracer::instance().dropped(),
            kThreads * kSpansPerThread * 2);
  std::set<std::uint32_t> tids;
  for (const SpanRecord& s : spans) {
    tids.insert(s.tid);
    EXPECT_TRUE(s.depth == 0 || s.depth == 1);
    ASSERT_NE(s.name, nullptr);
  }
  EXPECT_EQ(tids.size(), kThreads);
  // The exports stay well-formed on multi-thread data.
  EXPECT_TRUE(is_valid_json(Tracer::instance().chrome_trace_json()));
}

TEST_F(TracerTest, RingSaturationCountsDrops) {
  Tracer::set_enabled(true);
  for (std::size_t i = 0; i < Tracer::kCapacity + 100; ++i) {
    LEAPS_SPAN("flood");
  }
  Tracer::set_enabled(false);
  EXPECT_EQ(Tracer::instance().span_count(), Tracer::kCapacity);
  EXPECT_GE(Tracer::instance().dropped(), 100u);
  // The profile must still render (and disclose the drop).
  EXPECT_NE(Tracer::instance().profile_text().find("dropped"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipeline instrumentation: the span tree over a real training run.

TEST_F(TracerTest, PipelinePrepareEmitsANestedStageTree) {
  const testing::TrainedDetector trained = [] {
    Tracer::set_enabled(true);
    testing::TrainedDetector t = testing::train_small_detector(
        "vim_reverse_tcp_online", /*events=*/600, /*seed=*/11);
    Tracer::set_enabled(false);
    return t;
  }();
  ASSERT_NE(trained.detector, nullptr);

  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  std::map<std::string, const SpanRecord*> by_name;
  for (const SpanRecord& s : spans) by_name[s.name] = &s;

  for (const char* stage :
       {"pipeline.prepare", "pipeline.preprocess", "pipeline.cfg_infer",
        "pipeline.weight_assess", "pipeline.assemble", "preprocess.fit",
        "cfg.infer", "cfg.assess_weights", "svm.train"}) {
    EXPECT_NE(by_name.find(stage), by_name.end())
        << "missing span " << stage;
  }

  // The top-level stages partition prepare(): their total is within the
  // parent wall time (never above), and covers most of it.
  const SpanRecord* prepare = by_name.at("pipeline.prepare");
  std::uint64_t child_total = 0;
  for (const SpanRecord& s : spans) {
    if (s.depth == prepare->depth + 1 && s.tid == prepare->tid &&
        s.start_ns >= prepare->start_ns &&
        s.start_ns < prepare->start_ns + prepare->dur_ns) {
      child_total += s.dur_ns;
    }
  }
  EXPECT_LE(child_total, prepare->dur_ns);
  EXPECT_GE(child_total, prepare->dur_ns / 2);
}

// ---------------------------------------------------------------------------
// QuantileSketch / ReservoirWindow (obs/sketch.h)

TEST(Sketch, QuantilesOnAdversarialOrderings) {
  // The alternating-compaction sketch must stay accurate on exactly the
  // inputs that break naive samplers: fully sorted, reverse-sorted, and
  // constant streams. Rank error at k=128 over n=10000 is ~5%, so allow
  // a generous ±8% of the value range.
  constexpr int kN = 10000;
  constexpr double kTol = 0.08 * kN;
  QuantileSketch asc, desc, flat;
  for (int i = 0; i < kN; ++i) {
    asc.insert(static_cast<double>(i));
    desc.insert(static_cast<double>(kN - 1 - i));
    flat.insert(42.0);
  }
  for (const QuantileSketch* s : {&asc, &desc}) {
    EXPECT_EQ(s->count(), static_cast<std::uint64_t>(kN));
    EXPECT_DOUBLE_EQ(s->quantile(0.0), 0.0);          // exact min
    EXPECT_DOUBLE_EQ(s->quantile(1.0), kN - 1.0);     // exact max
    EXPECT_NEAR(s->quantile(0.5), 0.5 * kN, kTol);
    EXPECT_NEAR(s->quantile(0.9), 0.9 * kN, kTol);
    EXPECT_NEAR(s->quantile(0.99), 0.99 * kN, kTol);
  }
  EXPECT_DOUBLE_EQ(flat.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(flat.quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(flat.sum(), 42.0 * kN);

  QuantileSketch empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
}

TEST(Sketch, MergeIsEquivalentToUnion) {
  QuantileSketch left, right;
  for (int i = 0; i < 5000; ++i) left.insert(static_cast<double>(i));
  for (int i = 5000; i < 10000; ++i) right.insert(static_cast<double>(i));
  left.merge(right);
  EXPECT_EQ(left.count(), 10000u);
  EXPECT_DOUBLE_EQ(left.min(), 0.0);
  EXPECT_DOUBLE_EQ(left.max(), 9999.0);
  EXPECT_DOUBLE_EQ(left.sum(), 10000.0 * 9999.0 / 2.0);
  EXPECT_NEAR(left.quantile(0.5), 5000.0, 0.08 * 10000.0);
  // Merging an empty sketch is a no-op; merging *into* an empty sketch
  // copies the donor's distribution.
  QuantileSketch empty;
  const std::string before = left.serialize();
  left.merge(empty);
  EXPECT_EQ(left.serialize(), before);
  empty.merge(left);
  EXPECT_EQ(empty.count(), left.count());
  EXPECT_DOUBLE_EQ(empty.max(), left.max());
}

TEST(Sketch, StateIsAPureFunctionOfTheInsertionSequence) {
  QuantileSketch a, b;
  for (int i = 0; i < 4096; ++i) {
    const double v = std::sin(i * 0.7) * 100.0;
    a.insert(v);
    b.insert(v);
  }
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(Sketch, SerializeRoundTripIsBitExact) {
  QuantileSketch s(64);
  for (int i = 0; i < 3000; ++i) s.insert(std::cos(i) * 1e6);
  const std::string bytes = s.serialize();
  util::StatusOr<QuantileSketch> back = QuantileSketch::deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(*back == s);
  EXPECT_EQ(back->serialize(), bytes);
  EXPECT_EQ(back->k(), s.k());
  // Weighted values (the KS-test view) survive the trip verbatim.
  EXPECT_EQ(back->weighted_values(), s.weighted_values());

  EXPECT_FALSE(QuantileSketch::deserialize("not a sketch").ok());
  EXPECT_FALSE(QuantileSketch::deserialize("").ok());
  EXPECT_FALSE(
      QuantileSketch::deserialize(std::string_view(bytes).substr(
          0, bytes.size() / 2))
          .ok());
}

TEST(Sketch, ReservoirWindowIsAnExactFifo) {
  ReservoirWindow w(4);
  for (int i = 1; i <= 6; ++i) w.insert(static_cast<double>(i));
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.capacity(), 4u);
  EXPECT_EQ(w.total(), 6u);
  EXPECT_EQ(w.values(), (std::vector<double>{3.0, 4.0, 5.0, 6.0}));

  // Serialization is the oldest-first normal form: a rotated ring and its
  // deserialized twin are logically equal (same values(), same bytes) even
  // though the member-wise layout differs.
  const std::string bytes = w.serialize();
  util::StatusOr<ReservoirWindow> back = ReservoirWindow::deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->values(), w.values());
  EXPECT_EQ(back->total(), w.total());
  EXPECT_EQ(back->serialize(), bytes);
  // An unrotated window round-trips to a member-wise identical object.
  ReservoirWindow small(8);
  small.insert(1.0);
  small.insert(2.0);
  util::StatusOr<ReservoirWindow> small_back =
      ReservoirWindow::deserialize(small.serialize());
  ASSERT_TRUE(small_back.ok());
  EXPECT_TRUE(*small_back == small);
  EXPECT_FALSE(ReservoirWindow::deserialize("garbage").ok());

  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.values().empty());
}

TEST(Registry, SummaryPrometheusAndJsonExposition) {
  MetricRegistry r;
  Summary& s = r.summary("leaps_test_decision_value", "decision values");
  for (int i = 0; i < 1000; ++i) s.observe(i * 0.001);
  const std::string text = r.to_prometheus();
  EXPECT_NE(text.find("# HELP leaps_test_decision_value decision values\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE leaps_test_decision_value summary\n"),
            std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.99"}) {
    EXPECT_NE(text.find("leaps_test_decision_value{quantile=\"" +
                        std::string(q) + "\"} "),
              std::string::npos)
        << "missing quantile " << q << " in:\n" << text;
  }
  EXPECT_NE(text.find("leaps_test_decision_value_sum "), std::string::npos);
  EXPECT_NE(text.find("leaps_test_decision_value_count 1000\n"),
            std::string::npos);

  const std::string json = r.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"leaps_test_decision_value\""), std::string::npos);

  // Same name must come back as the same Summary; cross-kind lookups throw.
  EXPECT_EQ(&r.summary("leaps_test_decision_value"), &s);
  EXPECT_THROW(r.counter("leaps_test_decision_value"), std::logic_error);
}

TEST(Registry, GlobalRegistryExportsBuildInfoAndTracerDrops) {
  const std::string text = MetricRegistry::global().to_prometheus();
  EXPECT_NE(text.find("# TYPE leaps_build_info gauge\n"), std::string::npos);
  const std::size_t pos = text.find("leaps_build_info{");
  ASSERT_NE(pos, std::string::npos);
  const std::string line = text.substr(pos, text.find('\n', pos) - pos);
  EXPECT_NE(line.find("version="), std::string::npos) << line;
  EXPECT_EQ(line.substr(line.size() - 2), " 1") << line;

  EXPECT_NE(text.find("# TYPE leaps_trace_spans_dropped_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("leaps_trace_spans_dropped_total "), std::string::npos);
  EXPECT_TRUE(is_valid_json(MetricRegistry::global().to_json()));
}

}  // namespace
}  // namespace leaps::obs
