// Unit tests for CFG inference (Algorithm 1) and the system call graph.
#include <gtest/gtest.h>

#include "cfg/call_graph.h"
#include "cfg/inference.h"
#include "trace/partition.h"

namespace leaps::cfg {
namespace {

trace::PartitionedEvent make_event(std::uint64_t seq,
                                   std::vector<std::uint64_t> app_stack,
                                   std::uint32_t tid = 1) {
  trace::PartitionedEvent e;
  e.seq = seq;
  e.tid = tid;
  e.app_stack = std::move(app_stack);
  return e;
}

TEST(BranchPoint, CommonPrefixLength) {
  EXPECT_EQ(CfgInference::branch_point({1, 2, 3}, {1, 2, 4}), 2u);
  EXPECT_EQ(CfgInference::branch_point({1, 2}, {1, 2, 3}), 2u);
  EXPECT_EQ(CfgInference::branch_point({9}, {1}), 0u);
  EXPECT_EQ(CfgInference::branch_point({}, {1}), 0u);
  EXPECT_EQ(CfgInference::branch_point({1, 2}, {1, 2}), 2u);
}

TEST(CfgInference, Figure3Example) {
  // Event 1: Addr_1..Addr_5; Event 2: Addr_1..Addr_3, Addr_6, Addr_7.
  trace::PartitionedLog log;
  log.events.push_back(make_event(0, {1, 2, 3, 4, 5}));
  log.events.push_back(make_event(1, {1, 2, 3, 6, 7}));
  const InferredCfg cfg = CfgInference().infer(log);
  // Explicit paths of event 1.
  EXPECT_TRUE(cfg.graph.has_edge(1, 2));
  EXPECT_TRUE(cfg.graph.has_edge(2, 3));
  EXPECT_TRUE(cfg.graph.has_edge(3, 4));
  EXPECT_TRUE(cfg.graph.has_edge(4, 5));
  // Explicit paths of event 2.
  EXPECT_TRUE(cfg.graph.has_edge(3, 6));
  EXPECT_TRUE(cfg.graph.has_edge(6, 7));
  // The implicit path of Figure 3: Addr_4 → Addr_6.
  EXPECT_TRUE(cfg.graph.has_edge(4, 6));
  // Nothing else.
  EXPECT_EQ(cfg.graph.edge_count(), 7u);
}

TEST(CfgInference, MemapAttributesEdgesToEvents) {
  trace::PartitionedLog log;
  log.events.push_back(make_event(10, {1, 2}));
  log.events.push_back(make_event(11, {1, 3}));
  const InferredCfg cfg = CfgInference().infer(log);
  // Explicit edge (1,2) belongs to event 10.
  ASSERT_TRUE(cfg.edge_events.count({1, 2}));
  EXPECT_EQ(cfg.edge_events.at({1, 2}),
            (std::vector<std::uint64_t>{10}));
  // The implicit edge (2,3) belongs to the *later* event 11.
  ASSERT_TRUE(cfg.edge_events.count({2, 3}));
  EXPECT_EQ(cfg.edge_events.at({2, 3}),
            (std::vector<std::uint64_t>{11}));
}

TEST(CfgInference, RepeatedEdgeCollectsAllEvents) {
  trace::PartitionedLog log;
  log.events.push_back(make_event(0, {1, 2}));
  log.events.push_back(make_event(1, {1, 2}));
  log.events.push_back(make_event(2, {1, 2}));
  const InferredCfg cfg = CfgInference().infer(log);
  EXPECT_EQ(cfg.edge_events.at({1, 2}),
            (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(CfgInference, PrefixStacksProduceNoImplicitEdge) {
  trace::PartitionedLog log;
  log.events.push_back(make_event(0, {1, 2, 3}));
  log.events.push_back(make_event(1, {1, 2}));  // pure prefix
  const InferredCfg cfg = CfgInference().infer(log);
  // Only the explicit edges; no out-of-range implicit edge was fabricated.
  EXPECT_EQ(cfg.graph.edge_count(), 2u);
  EXPECT_TRUE(cfg.graph.has_edge(1, 2));
  EXPECT_TRUE(cfg.graph.has_edge(2, 3));
}

TEST(CfgInference, EmptyAppStacksAreSkipped) {
  trace::PartitionedLog log;
  log.events.push_back(make_event(0, {}));
  log.events.push_back(make_event(1, {1, 2}));
  log.events.push_back(make_event(2, {}));
  const InferredCfg cfg = CfgInference().infer(log);
  EXPECT_EQ(cfg.graph.edge_count(), 1u);
}

TEST(CfgInference, SingleFrameStacksYieldOnlyImplicitEdges) {
  trace::PartitionedLog log;
  log.events.push_back(make_event(0, {5}));
  log.events.push_back(make_event(1, {6}));
  const InferredCfg cfg = CfgInference().infer(log);
  EXPECT_EQ(cfg.graph.edge_count(), 1u);
  EXPECT_TRUE(cfg.graph.has_edge(5, 6));
}

TEST(CfgInference, PerThreadAdjacencySeparatesThreads) {
  trace::PartitionedLog log;
  log.events.push_back(make_event(0, {1, 2}, /*tid=*/1));
  log.events.push_back(make_event(1, {9, 8}, /*tid=*/2));
  log.events.push_back(make_event(2, {1, 3}, /*tid=*/1));
  // Per-thread (default): thread 1's adjacent pair is events 0 and 2.
  const InferredCfg per_thread = CfgInference().infer(log);
  EXPECT_TRUE(per_thread.graph.has_edge(2, 3));
  EXPECT_FALSE(per_thread.graph.has_edge(1, 9));
  // Global adjacency (the paper's verbatim Algorithm 1): cross-thread
  // implicit edges appear.
  const InferredCfg global =
      CfgInference({.per_thread_adjacency = false}).infer(log);
  EXPECT_TRUE(global.graph.has_edge(1, 9));
  EXPECT_FALSE(global.graph.has_edge(2, 3));
}

TEST(CfgInference, IdenticalAdjacentStacksAddNoImplicitEdge) {
  trace::PartitionedLog log;
  log.events.push_back(make_event(0, {1, 2, 3}));
  log.events.push_back(make_event(1, {1, 2, 3}));
  const InferredCfg cfg = CfgInference().infer(log);
  EXPECT_EQ(cfg.graph.edge_count(), 2u);
}

// ------------------------------------------------------ SystemCallGraph ----

trace::PartitionedEvent make_sys_event(
    std::vector<std::pair<std::uint64_t, std::string>> frames) {
  trace::PartitionedEvent e;
  for (auto& [addr, name] : frames) {
    trace::StackFrame f;
    f.address = addr;
    f.module = "lib.dll";
    f.function = name;
    e.system_stack.push_back(std::move(f));
  }
  return e;
}

TEST(SystemCallGraph, EdgesRunCallerToCallee) {
  // Innermost-first frames [leaf, mid, root] → edges root→mid, mid→leaf.
  const auto e = make_sys_event({{1, "leaf"}, {2, "mid"}, {3, "root"}});
  const auto edges = SystemCallGraph::event_edges(e);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{2, 1}));
  EXPECT_EQ(edges[1], (Edge{3, 2}));
}

TEST(SystemCallGraph, AccumulatesOverLog) {
  SystemCallGraph g;
  trace::PartitionedLog log;
  log.events.push_back(make_sys_event({{1, "a"}, {2, "b"}}));
  log.events.push_back(make_sys_event({{1, "a"}, {3, "c"}}));
  g.add_log(log);
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(SystemCallGraph, SingleFrameHasNoEdges) {
  EXPECT_TRUE(
      SystemCallGraph::event_edges(make_sys_event({{1, "only"}})).empty());
}

}  // namespace
}  // namespace leaps::cfg
