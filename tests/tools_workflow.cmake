# CTest script: end-to-end CLI workflow integration test.
#
# Drives the tools exactly as a user would:
#   leaps-sim   → raw logs (text and binary)
#   leaps-train → detector file (with calibration)
#   leaps-scan  → exit 3 on the malicious log, exit 0 on the benign log
#   leaps-serve → concurrent replay of both logs, same verdict contract
# Any deviation fails the test.
#
# Variables (passed with -D): LEAPS_SIM, LEAPS_TRAIN, LEAPS_SCAN,
# LEAPS_STAT, LEAPS_SERVE, LEAPS_ROLLOVER, WORK_DIR.

function(run_checked expect_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "command [${ARGN}] exited ${rc} (expected "
                        "${expect_rc})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# --- text-format round ----------------------------------------------------
run_checked(0 ${LEAPS_SIM} vim_reverse_tcp_online ${WORK_DIR}
            --events 3000 --seed 99)
run_checked(0 ${LEAPS_TRAIN} ${WORK_DIR}/benign.log ${WORK_DIR}/mixed.log
            ${WORK_DIR}/detector.txt --folds 5 --max-false-alarms 0.05)
run_checked(3 ${LEAPS_SCAN} ${WORK_DIR}/detector.txt
            ${WORK_DIR}/malicious.log)
run_checked(0 ${LEAPS_SCAN} ${WORK_DIR}/detector.txt ${WORK_DIR}/benign.log)

# --- binary-format round (same detector must accept both) ------------------
file(MAKE_DIRECTORY ${WORK_DIR}/bin)
run_checked(0 ${LEAPS_SIM} vim_reverse_tcp_online ${WORK_DIR}/bin
            --events 3000 --seed 99 --binary)
run_checked(3 ${LEAPS_SCAN} ${WORK_DIR}/detector.txt
            ${WORK_DIR}/bin/malicious.log)

# --- stats tool over both formats -------------------------------------------
run_checked(0 ${LEAPS_STAT} ${WORK_DIR}/benign.log ${WORK_DIR}/bin/mixed.log)
run_checked(1 ${LEAPS_STAT} /nonexistent.log)

# --- concurrent serving round ----------------------------------------------
# Mixed fleet: malicious sessions must flip the exit code to 3; a clean
# fleet exits 0. Both text- and binary-format logs replay through the server.
run_checked(3 ${LEAPS_SERVE} ${WORK_DIR}/detector.txt
            ${WORK_DIR}/malicious.log ${WORK_DIR}/benign.log
            ${WORK_DIR}/bin/malicious.log --workers 2 --sessions 4)
run_checked(0 ${LEAPS_SERVE} ${WORK_DIR}/detector.txt ${WORK_DIR}/benign.log
            --workers 2 --policy drop-oldest --json)

# --- observability flags -----------------------------------------------------
# Every tool honours --trace-out / --profile / --metrics-out without
# changing its verdict, and the outputs are machine-readable: the trace is
# a chrome://tracing event array, the metrics file is Prometheus text
# exposition (or JSON when the path ends in .json).
run_checked(0 ${LEAPS_SCAN} ${WORK_DIR}/detector.txt ${WORK_DIR}/benign.log
            --profile --trace-out ${WORK_DIR}/scan_trace.json
            --metrics-out ${WORK_DIR}/scan_metrics.json)
run_checked(3 ${LEAPS_SERVE} ${WORK_DIR}/detector.txt
            ${WORK_DIR}/malicious.log ${WORK_DIR}/benign.log --workers 2
            --metrics-out ${WORK_DIR}/serve_metrics.prom)

# A `.json` metrics path switches to the JSON exposition.
file(READ ${WORK_DIR}/scan_metrics.json metrics_json)
if(NOT metrics_json MATCHES "^{" OR
   NOT metrics_json MATCHES "\"leaps_ingest_events_total\"")
  message(FATAL_ERROR "--metrics-out *.json did not produce JSON metrics:\n"
                      "${metrics_json}")
endif()

# Trace export: a JSON array of "X" complete events.
file(READ ${WORK_DIR}/scan_trace.json trace_json)
if(NOT trace_json MATCHES "^\\[" OR NOT trace_json MATCHES "\"ph\":\"X\"")
  message(FATAL_ERROR "--trace-out did not produce a trace-event array:\n"
                      "${trace_json}")
endif()

# Prometheus exposition: # TYPE headers, `name value` sample lines, and —
# because the server registers onto the shared registry — both serving and
# ingest counters in the one scrape document.
file(READ ${WORK_DIR}/serve_metrics.prom prom)
foreach(needle
        "# TYPE leaps_serve_events_ingested_total counter"
        "# TYPE leaps_ingest_events_total counter"
        "leaps_serve_queue_wait_us_bucket{le=\"+Inf\"}"
        "leaps_serve_queue_wait_us_count")
  string(FIND "${prom}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "metrics file missing '${needle}':\n${prom}")
  endif()
endforeach()
string(REGEX REPLACE "\n$" "" prom_body "${prom}")
string(REPLACE "\n" ";" prom_lines "${prom_body}")
foreach(line ${prom_lines})
  # Values may be floats: summary metrics (decision-value quantiles,
  # _sum) export alongside the integer counters and gauges.
  if(NOT line MATCHES "^# (HELP|TYPE) " AND
     NOT line MATCHES
       "^[a-zA-Z_:][a-zA-Z0-9_:]*({[^}]*})? -?[0-9]+(\\.[0-9]+)?([eE][-+]?[0-9]+)?$")
    message(FATAL_ERROR "bad Prometheus exposition line: '${line}'")
  endif()
endforeach()

# --- online learning / rollover round ---------------------------------------
# leaps-serve --online over two replay rounds of benign traffic: round 1
# accumulates classified-benign windows and the inter-round poll triggers a
# warm-started retrain + shadow deploy; round 2 streams through both
# detectors; the final poll clears the gates and promotes via the RCU swap.
# The metrics JSON must show the whole story: >= 1 retrain cycle, > 0 SMO
# iterations saved by the warm start, >= 1 promotion, no rollback, zero
# dropped events.
run_checked(0 ${LEAPS_SERVE} ${WORK_DIR}/detector.txt ${WORK_DIR}/benign.log
            --workers 2 --online --online-replays 2 --retrain-events 1
            --admit-floor 0 --shadow-min-windows 2 --shadow-max-disagree 1.0
            --shadow-max-latency 1000000
            --metrics-out ${WORK_DIR}/online_metrics.json)
file(READ ${WORK_DIR}/online_metrics.json online_json)
foreach(needle
        "\"leaps_online_retrain_cycles_total\":{\"type\":\"counter\",\"value\":[1-9]"
        "\"leaps_online_warm_iterations_saved_total\":{\"type\":\"counter\",\"value\":[1-9]"
        "\"leaps_online_promotions_total\":{\"type\":\"counter\",\"value\":[1-9]"
        "\"leaps_online_rollbacks_total\":{\"type\":\"counter\",\"value\":0"
        "\"leaps_serve_events_dropped_total\":{\"type\":\"counter\",\"value\":0")
  string(REGEX MATCH "${needle}" found "${online_json}")
  if(found STREQUAL "")
    message(FATAL_ERROR "online metrics missing/mismatching '${needle}':\n"
                        "${online_json}")
  endif()
endforeach()

# Offline rollover tooling against the same detector. retrain must report a
# warm start that saves iterations and write a loadable candidate; the
# candidate then shadows the incumbent over live-like traffic and promotes.
run_checked(0 ${LEAPS_ROLLOVER} retrain ${WORK_DIR}/detector.txt
            ${WORK_DIR}/benign.log ${WORK_DIR}/candidate.txt)
# max-disagree 0.1 absorbs churn on the incumbent's calibrated false
# alarms (up to 5%) while still gating real verdict drift.
run_checked(0 ${LEAPS_ROLLOVER} shadow ${WORK_DIR}/detector.txt
            ${WORK_DIR}/candidate.txt ${WORK_DIR}/benign.log
            --shadow-min-windows 2 --shadow-max-disagree 0.1
            --shadow-max-latency 1000000)
run_checked(0 ${LEAPS_ROLLOVER} diff ${WORK_DIR}/detector.txt
            ${WORK_DIR}/detector.txt ${WORK_DIR}/benign.log)

# Rollback drill: a deliberately broken candidate (all-malicious) must trip
# the disagreement gate on benign traffic and exit 4.
run_checked(0 ${LEAPS_ROLLOVER} drill ${WORK_DIR}/detector.txt
            ${WORK_DIR}/broken.txt)
run_checked(4 ${LEAPS_ROLLOVER} shadow ${WORK_DIR}/detector.txt
            ${WORK_DIR}/broken.txt ${WORK_DIR}/benign.log
            --shadow-min-windows 2)

# --- campaign / auditd / attribution round ----------------------------------
# A multi-stage APT campaign emitted in the auditd dialect must flow
# through every tool unchanged (stat, train, scan, serve all sniff the
# format), and the attribution pipeline must name the campaign: the true
# signature at rank 1 with both permuted decoys scoring strictly lower —
# online (leaps-serve --attrib, surfaced in --status-json) and offline
# (leaps-attrib match over the audit JSONL).
file(MAKE_DIRECTORY ${WORK_DIR}/camp ${WORK_DIR}/camp/sigs)
run_checked(0 ${LEAPS_SIM} campaign_putty_apt ${WORK_DIR}/camp
            --events 4000 --seed 7 --auditd)
run_checked(0 ${LEAPS_STAT} ${WORK_DIR}/camp/benign.log)
run_checked(0 ${LEAPS_TRAIN} ${WORK_DIR}/camp/benign.log
            ${WORK_DIR}/camp/mixed.log ${WORK_DIR}/camp/detector.txt
            --folds 5 --max-false-alarms 0.02)
run_checked(3 ${LEAPS_SCAN} ${WORK_DIR}/camp/detector.txt
            ${WORK_DIR}/camp/malicious.log)
run_checked(0 ${LEAPS_ATTRIB} derive campaign_putty_apt ${WORK_DIR}/camp/sigs
            --decoys)
run_checked(3 ${LEAPS_SERVE} ${WORK_DIR}/camp/detector.txt
            ${WORK_DIR}/camp/mixed.log --attrib ${WORK_DIR}/camp/sigs
            --audit-out ${WORK_DIR}/camp/audit.jsonl
            --status-json ${WORK_DIR}/camp/status.json --workers 2)

file(READ ${WORK_DIR}/camp/status.json camp_status)
if(NOT camp_status MATCHES "\"type\":\"AttributionVerdict\"" OR
   NOT camp_status MATCHES "\"signature\":\"campaign_putty_apt\"")
  message(FATAL_ERROR "--status-json carries no AttributionVerdict:\n"
                      "${camp_status}")
endif()

execute_process(COMMAND ${LEAPS_ATTRIB} match ${WORK_DIR}/camp/audit.jsonl
                ${WORK_DIR}/camp/sigs
                RESULT_VARIABLE rc OUTPUT_VARIABLE attrib_out
                ERROR_VARIABLE attrib_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "leaps-attrib match exited ${rc}:\n${attrib_out}\n"
                      "${attrib_err}")
endif()
string(REGEX MATCH "rank=1 signature=campaign_putty_apt score=([0-9.]+)"
       rank1 "${attrib_out}")
if(rank1 STREQUAL "")
  message(FATAL_ERROR "true signature is not rank 1:\n${attrib_out}")
endif()
set(true_score ${CMAKE_MATCH_1})
string(REGEX MATCH "rank=2 signature=campaign_putty_apt__[a-z]+ "
       rank2 "${attrib_out}")
if(rank2 STREQUAL "")
  message(FATAL_ERROR "rank 2 is not a decoy:\n${attrib_out}")
endif()
# Scores print as fixed-width %.6f, so lexicographic comparison is
# numeric comparison; the decoys must be STRICTLY below the true score.
foreach(decoy __reversed __rotated)
  string(REGEX MATCH
         "signature=campaign_putty_apt${decoy} score=([0-9.]+)"
         found "${attrib_out}")
  if(found STREQUAL "")
    message(FATAL_ERROR "decoy ${decoy} missing from ranking:\n${attrib_out}")
  endif()
  if(NOT CMAKE_MATCH_1 STRLESS true_score)
    message(FATAL_ERROR "decoy ${decoy} (${CMAKE_MATCH_1}) does not score "
                        "strictly below the true signature (${true_score}):\n"
                        "${attrib_out}")
  endif()
endforeach()

# --- help and version flags --------------------------------------------------
foreach(tool ${LEAPS_SIM} ${LEAPS_TRAIN} ${LEAPS_SCAN} ${LEAPS_STAT}
        ${LEAPS_SERVE})
  run_checked(0 ${tool} --help)
  run_checked(0 ${tool} --version)
endforeach()

# --- error handling ---------------------------------------------------------
run_checked(2 ${LEAPS_SIM} no_such_scenario ${WORK_DIR})
run_checked(2 ${LEAPS_SCAN} ${WORK_DIR}/detector.txt)
run_checked(1 ${LEAPS_SCAN} ${WORK_DIR}/detector.txt /nonexistent.log)
run_checked(2 ${LEAPS_SCAN} ${WORK_DIR}/detector.txt ${WORK_DIR}/benign.log
            --no-such-option)
run_checked(2 ${LEAPS_SERVE} ${WORK_DIR}/detector.txt)
run_checked(2 ${LEAPS_SERVE} ${WORK_DIR}/detector.txt ${WORK_DIR}/benign.log
            --policy bogus)

message(STATUS "tools workflow OK")
