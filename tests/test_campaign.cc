// Campaign-engine tests: catalog integrity, generation invariants (dwell
// windows, per-event stage truth), byte-exact determinism under a fixed
// seed, the living-off-the-land host-profile restriction, and the auditd
// dialect (syscall-table invertibility, round-trip through the
// read_raw_log_any sniffing boundary, corrupt-input rejection).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "sim/campaign.h"
#include "sim/profiles.h"
#include "sim/scenario.h"
#include "trace/auditd_log.h"
#include "trace/binary_log.h"
#include "trace/intern.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "trace/raw_log.h"
#include "util/status.h"

namespace leaps::sim {
namespace {

SimConfig small_config(std::uint64_t seed = 7) {
  SimConfig cfg;
  cfg.benign_events = 1200;
  cfg.mixed_events = 900;
  cfg.malicious_events = 600;
  cfg.seed = seed;
  return cfg;
}

// ------------------------------------------------------------ catalog ----

TEST(CampaignCatalog, IsWellFormedAndLookupRoundTrips) {
  const auto& catalog = campaign_catalog();
  ASSERT_FALSE(catalog.empty());
  std::set<std::string> names;
  for (const CampaignSpec& spec : catalog) {
    EXPECT_EQ(spec.name.rfind("campaign_", 0), 0u) << spec.name;
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    ASSERT_FALSE(spec.stages.empty()) << spec.name;
    for (const CampaignStageSpec& stage : spec.stages) {
      EXPECT_GT(stage.dwell_fraction, 0.0);
      EXPECT_GT(stage.intensity, 0.0);
      EXPECT_FALSE(stage.mix.empty());
    }
    EXPECT_EQ(find_campaign(spec.name).name, spec.name);
  }
  EXPECT_THROW(find_campaign("campaign_no_such"), std::invalid_argument);
}

TEST(CampaignCatalog, KillChainCoversEveryStageInOrder) {
  const std::vector<CampaignStageSpec> chain = default_kill_chain();
  ASSERT_EQ(chain.size(), kCampaignStageCount);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(chain[i].stage), i);
    EXPECT_FALSE(campaign_stage_name(chain[i].stage).empty());
  }
}

// --------------------------------------------------------- generation ----

TEST(GenerateCampaign, TruthStagesAndDwellWindowsAreConsistent) {
  const CampaignSpec& spec = find_campaign("campaign_putty_apt");
  const CampaignLogs logs = generate_campaign(spec, small_config());

  ASSERT_EQ(logs.mixed_truth.size(), logs.mixed.events.size());
  ASSERT_EQ(logs.mixed_stage.size(), logs.mixed.events.size());
  ASSERT_EQ(logs.dwell.size(), spec.stages.size());

  // Per-event stage index agrees with the boolean truth, and every
  // attack event falls inside its stage's dwell window.
  std::size_t attack_events = 0;
  for (std::size_t i = 0; i < logs.mixed_stage.size(); ++i) {
    const int stage = logs.mixed_stage[i];
    EXPECT_EQ(logs.mixed_truth[i], stage >= 0) << "event " << i;
    if (stage < 0) continue;
    ++attack_events;
    ASSERT_LT(static_cast<std::size_t>(stage), spec.stages.size());
    EXPECT_GE(i, logs.dwell[stage].first) << "event " << i;
    EXPECT_LT(i, logs.dwell[stage].second) << "event " << i;
  }
  EXPECT_GT(attack_events, 0u);

  // Dwell windows are ordered, disjoint, and in range: stage s+1 begins
  // at or after stage s ends (the adversary is silent in between).
  for (std::size_t s = 0; s < logs.dwell.size(); ++s) {
    EXPECT_LT(logs.dwell[s].first, logs.dwell[s].second);
    EXPECT_LE(logs.dwell[s].second, logs.mixed.events.size());
    if (s > 0) EXPECT_LE(logs.dwell[s - 1].second, logs.dwell[s].first);
  }

  // Every stage emits at least one event.
  std::set<int> stages_seen;
  for (const int s : logs.mixed_stage) {
    if (s >= 0) stages_seen.insert(s);
  }
  EXPECT_EQ(stages_seen.size(), spec.stages.size());
}

TEST(GenerateCampaign, SameSeedIsByteIdenticalAcrossDialects) {
  const CampaignSpec& spec = find_campaign("campaign_winscp_lotl");
  const CampaignLogs a = generate_campaign(spec, small_config(11));
  const CampaignLogs b = generate_campaign(spec, small_config(11));

  EXPECT_EQ(trace::raw_log_to_string(a.benign),
            trace::raw_log_to_string(b.benign));
  EXPECT_EQ(trace::raw_log_to_string(a.mixed),
            trace::raw_log_to_string(b.mixed));
  EXPECT_EQ(trace::raw_log_to_auditd_string(a.mixed),
            trace::raw_log_to_auditd_string(b.mixed));
  EXPECT_EQ(trace::raw_log_to_auditd_string(a.malicious),
            trace::raw_log_to_auditd_string(b.malicious));
  EXPECT_EQ(a.mixed_stage, b.mixed_stage);
  EXPECT_EQ(a.dwell, b.dwell);
}

TEST(GenerateCampaign, DifferentSeedsDiverge) {
  const CampaignSpec& spec = find_campaign("campaign_putty_apt");
  const CampaignLogs a = generate_campaign(spec, small_config(1));
  const CampaignLogs b = generate_campaign(spec, small_config(2));
  EXPECT_NE(trace::raw_log_to_string(a.mixed),
            trace::raw_log_to_string(b.mixed));
}

TEST(GenerateCampaign, LotlPayloadsDrawOnlyFromTheHostMix) {
  for (const CampaignSpec& spec : campaign_catalog()) {
    if (!spec.lotl) continue;
    const ProgramSpec host = app_spec(spec.app);
    for (const CampaignStageSpec& stage : spec.stages) {
      const ProgramSpec payload = campaign_stage_payload_spec(spec, stage);
      EXPECT_EQ(payload.chain_style, ChainStyle::kFramework) << spec.name;
      for (const auto& [kind, weight] : payload.mix) {
        EXPECT_TRUE(host.mix.count(kind) > 0)
            << spec.name << ": payload uses an ActionKind ("
            << static_cast<int>(kind) << ") the host never performs";
      }
    }
  }
}

TEST(GenerateCampaign, AptPayloadsUseDirectChains) {
  const CampaignSpec& spec = find_campaign("campaign_putty_apt");
  ASSERT_FALSE(spec.lotl);
  for (const CampaignStageSpec& stage : spec.stages) {
    EXPECT_EQ(campaign_stage_payload_spec(spec, stage).chain_style,
              ChainStyle::kDirect);
  }
}

}  // namespace
}  // namespace leaps::sim

namespace leaps::trace {
namespace {

// ------------------------------------------------------ auditd dialect ----

TEST(AuditdLog, SyscallTableIsInvertible) {
  std::set<int> numbers;
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const EventType t = static_cast<EventType>(i);
    const int sys = auditd_syscall_for(t);
    EXPECT_TRUE(numbers.insert(sys).second)
        << "syscall " << sys << " maps two event types";
    ASSERT_TRUE(auditd_event_type(sys).has_value());
    EXPECT_EQ(*auditd_event_type(sys), t);
  }
  EXPECT_FALSE(auditd_event_type(99999).has_value());
}

TEST(AuditdLog, CampaignMixedLogRoundTripsThroughAny) {
  const sim::CampaignLogs logs = sim::generate_campaign(
      sim::find_campaign("campaign_vim_apt"), [] {
        sim::SimConfig cfg;
        cfg.benign_events = 600;
        cfg.mixed_events = 450;
        cfg.malicious_events = 300;
        cfg.seed = 3;
        return cfg;
      }());
  std::stringstream ss;
  write_raw_log_auditd(logs.mixed, ss);
  ASSERT_EQ(ss.str().rfind("type=", 0), 0u) << "auditd logs start 'type='";
  const util::StatusOr<RawLog> back = read_raw_log_any(ss);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(*back, logs.mixed);
}

TEST(AuditdLog, CorruptInputIsRejectedWithLineContext) {
  const struct {
    const char* doc;
    const char* why;
  } cases[] = {
      {"type=SYSCALL msg=audit(1.000:1): seq=x tid=1 syscall=0\n",
       "non-numeric field"},
      {"type=BOGUS msg=audit(1.000:1): a=b\n", "unknown record kind"},
      {"type=SYSCALL msg=nonsense seq=0\n", "malformed msg token"},
      {"type=MMAP msg=audit(1.000:1): addr=0x1000 len=0x0 name=\"x\"\n",
       "zero-length module"},
      {"type=SYSCALL msg=audit(1.000:1): key=\"unterminated\n",
       "unterminated quote"},
  };
  for (const auto& c : cases) {
    std::istringstream is(c.doc);
    const util::StatusOr<RawLog> got = read_raw_log_auditd(is);
    ASSERT_FALSE(got.ok()) << c.why;
    EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput) << c.why;
    EXPECT_NE(got.status().message().find("line"), std::string::npos)
        << c.why << ": diagnostics must carry the line number";
  }
}

TEST(AuditdLog, TruncationsNeverParse) {
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("vim_reverse_tcp_online"), [] {
        sim::SimConfig cfg;
        cfg.benign_events = 300;
        cfg.mixed_events = 225;
        cfg.malicious_events = 150;
        return cfg;
      }());
  const std::string bytes = raw_log_to_auditd_string(logs.benign);
  // Auditd is a line format, so a cut can land at a record boundary and
  // leave a structurally complete shorter document; what a cut must
  // never do is crash, escape an exception, or keep every event while
  // claiming success — except for the degenerate cut that only strips
  // the final newline.
  for (const std::size_t cut :
       {std::size_t{1}, std::size_t{17}, bytes.size() / 4,
        bytes.size() / 2}) {
    std::istringstream is(bytes.substr(0, cut));
    const util::StatusOr<RawLog> got = read_raw_log_any(is);
    if (got.ok()) {
      // The first half of the document cannot carry the full event
      // stream (each event is at least one line).
      EXPECT_LT(got->events.size(), logs.benign.events.size())
          << "cut at " << cut;
    } else {
      EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput)
          << "cut at " << cut;
    }
  }
}

// ------------------------------------------- token-table gauges (obs) ----

TEST(TokenTableGauges, RegistryExportsInternAndRetentionGauges) {
  // Interning anything guarantees non-zero retention accounting.
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("vim_reverse_tcp_online"), [] {
        sim::SimConfig cfg;
        cfg.benign_events = 200;
        cfg.mixed_events = 150;
        cfg.malicious_events = 100;
        return cfg;
      }());
  const ParsedTrace t = RawLogParser().parse_raw(logs.benign);
  const PartitionedLog plog =
      StackPartitioner(t.log.process_name).partition(t.log);
  for (const PartitionedEvent& e : plog.events) {
    TokenTable::global().compact(e);
  }

  const TokenTable::Stats stats = TokenTable::global().stats();
  EXPECT_GT(stats.interned, 0u);
  EXPECT_GT(stats.bytes_retained, 0u);

  std::map<std::string, obs::MetricSample> samples;
  for (obs::MetricSample& s : obs::MetricRegistry::global().collect()) {
    samples[s.name] = std::move(s);
  }
  for (const char* name : {"leaps_trace_token_table_system_stacks",
                           "leaps_trace_token_table_app_stacks",
                           "leaps_trace_token_table_lib_sets",
                           "leaps_trace_token_table_func_sets",
                           "leaps_trace_token_table_bytes_retained"}) {
    ASSERT_TRUE(samples.count(name) > 0) << name << " not exported";
    EXPECT_EQ(samples[name].type, obs::MetricType::kGauge) << name;
  }
  for (const char* name : {"leaps_trace_token_table_hits_total",
                           "leaps_trace_token_table_interned_total"}) {
    ASSERT_TRUE(samples.count(name) > 0) << name << " not exported";
    EXPECT_EQ(samples[name].type, obs::MetricType::kCounter) << name;
  }
  // The scrape reads the same atomics stats() reads; the table only grows,
  // so the collected values are at least the earlier snapshot's.
  EXPECT_GE(samples["leaps_trace_token_table_bytes_retained"].gauge_value,
            static_cast<std::int64_t>(stats.bytes_retained));
  EXPECT_GE(samples["leaps_trace_token_table_interned_total"].counter_value,
            stats.interned);
}

}  // namespace
}  // namespace leaps::trace
