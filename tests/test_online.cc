// Tests for the online-learning subsystem (src/online/): verdict diffing,
// the CFG accumulator's fold/admit/evict behavior, warm-started SMO
// retraining, registry shadow staging (RCU promote / quarantine), the
// server-level shadow streams, and the OnlineManager control loop driven
// deterministically via poll_once(). Runs under -DLEAPS_SANITIZE=thread
// in CI (ctest -L online / -L concurrency).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "detector_fixture.h"
#include "durable/store.h"
#include "online/accumulator.h"
#include "online/manager.h"
#include "online/retrain.h"
#include "online/shadow.h"
#include "online/verdict_diff.h"
#include "serve/server.h"

namespace leaps::online {
namespace {

using leaps::testing::TrainedDetector;
using leaps::testing::train_small_detector;

/// Fixture detector carrying ContinualState (the online path needs it).
const TrainedDetector& fixture() {
  static const TrainedDetector* f = new TrainedDetector(
      train_small_detector("vim_reverse_tcp_online", 1500, 7,
                           /*with_continual=*/true));
  return *f;
}

/// Slices a log into whole windows of the detector's window size.
std::vector<std::vector<trace::PartitionedEvent>> windows_of(
    const trace::PartitionedLog& log, std::size_t window) {
  std::vector<std::vector<trace::PartitionedEvent>> out;
  for (std::size_t i = 0; i + window <= log.events.size(); i += window) {
    out.emplace_back(log.events.begin() + i, log.events.begin() + i + window);
  }
  return out;
}

// --- diff_sequences / VerdictDiff ----------------------------------------

TEST(DiffSequences, CountsDisagreementsAndLengthDelta) {
  const SequenceDiff same = diff_sequences({1, -1, 1}, {1, -1, 1});
  EXPECT_TRUE(same.identical());
  EXPECT_EQ(same.compared, 3u);
  EXPECT_EQ(same.disagreements, 0u);

  const SequenceDiff diff = diff_sequences({1, 1, 1, 1}, {1, -1, 1});
  EXPECT_FALSE(diff.identical());
  EXPECT_EQ(diff.compared, 3u);
  EXPECT_EQ(diff.disagreements, 1u);
  EXPECT_EQ(diff.length_delta, 1u);
  ASSERT_EQ(diff.mismatch_indices.size(), 1u);
  EXPECT_EQ(diff.mismatch_indices[0], 1u);
  EXPECT_DOUBLE_EQ(diff.disagreement_rate(), 1.0 / 3.0);
}

TEST(VerdictDiffTest, ConcurrentRecordsAllLand) {
  VerdictDiff diff;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&diff] {
      for (int i = 0; i < kPerThread; ++i) {
        diff.record(1, i % 10 == 0 ? -1 : 1, 100, 200);
      }
    });
  }
  for (auto& t : threads) t.join();
  const DiffStats s = diff.stats();
  EXPECT_EQ(s.compared, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.disagreements,
            static_cast<std::uint64_t>(kThreads * kPerThread / 10));
  EXPECT_DOUBLE_EQ(s.latency_ratio(), 2.0);
  diff.reset();
  EXPECT_EQ(diff.stats().compared, 0u);
}

// --- ShadowEvaluator gates ------------------------------------------------

TEST(ShadowEvaluatorTest, UndecidedUntilMinWindows) {
  ShadowEvaluator eval({.max_disagreement = 0.5,
                        .max_latency_ratio = 10.0,
                        .min_windows = 4});
  const serve::SessionKey key{"s", 1};
  for (int i = 0; i < 3; ++i) eval.record(key, 1, 1, 10, 10);
  EXPECT_EQ(eval.decision(), RolloverDecision::kUndecided);
  eval.record(key, 1, 1, 10, 10);
  EXPECT_EQ(eval.decision(), RolloverDecision::kPromote);
}

TEST(ShadowEvaluatorTest, DisagreementGateRollsBack) {
  ShadowEvaluator eval({.max_disagreement = 0.25,
                        .max_latency_ratio = 100.0,
                        .min_windows = 4});
  const serve::SessionKey key{"s", 1};
  // 2 of 4 disagree: rate 0.5 > 0.25.
  eval.record(key, 1, 1, 10, 10);
  eval.record(key, 1, -1, 10, 10);
  eval.record(key, 1, 1, 10, 10);
  eval.record(key, -1, 1, 10, 10);
  EXPECT_EQ(eval.decision(), RolloverDecision::kRollback);
}

TEST(ShadowEvaluatorTest, LatencyGateRollsBackDespiteAgreement) {
  ShadowEvaluator eval({.max_disagreement = 1.0,
                        .max_latency_ratio = 2.0,
                        .min_windows = 2});
  const serve::SessionKey key{"s", 1};
  eval.record(key, 1, 1, 10, 100);  // shadow 10x slower
  eval.record(key, 1, 1, 10, 100);
  EXPECT_EQ(eval.decision(), RolloverDecision::kRollback);
}

// --- Warm-started SMO -----------------------------------------------------

TEST(WarmStart, SeededSolveConvergesFasterOnSameData) {
  const TrainedDetector& f = fixture();
  const core::ContinualState* state = f.detector->continual();
  ASSERT_NE(state, nullptr);
  ASSERT_EQ(state->alpha.size(), state->train.size());

  ml::SvmParams params;
  params.kernel = f.detector->model().kernel();
  ml::TrainStats cold, warm;
  ml::SvmTrainer(params).train(state->train, &cold);
  ml::SvmTrainer(params).train(state->train, &warm, &state->alpha);
  EXPECT_GT(warm.warm_nonzero, 0u);
  EXPECT_LT(warm.iterations, cold.iterations)
      << "re-solving from the previous optimum should take fewer SMO "
         "iterations than a cold start";
}

TEST(WarmStart, GarbageSeedIsRepairedNotTrusted) {
  const TrainedDetector& f = fixture();
  const core::ContinualState* state = f.detector->continual();
  ASSERT_NE(state, nullptr);

  ml::SvmParams params;
  params.kernel = f.detector->model().kernel();
  // Wildly infeasible seed: all entries far above the box, wrong balance.
  const std::vector<double> garbage(state->train.size(), 1e9);
  ml::TrainStats stats;
  const ml::SvmModel seeded =
      ml::SvmTrainer(params).train(state->train, &stats, &garbage);
  const ml::SvmModel cold = ml::SvmTrainer(params).train(state->train);
  // The repaired seed must not change the optimum: identical verdicts on
  // every training row.
  for (const ml::FeatureVector& x : state->train.X) {
    EXPECT_EQ(seeded.predict(x), cold.predict(x));
  }
}

TEST(WarmStart, ShortSeedPadsGrownRowsWithZero) {
  const TrainedDetector& f = fixture();
  const core::ContinualState* state = f.detector->continual();
  ASSERT_NE(state, nullptr);
  // Simulate a grown dataset: duplicate the first benign row; the seed is
  // one entry short and the trainer must pad, not throw.
  ml::Dataset grown = state->train;
  grown.add(grown.X.front(), grown.y.front(), grown.weight.front());
  ml::SvmParams params;
  params.kernel = f.detector->model().kernel();
  ml::TrainStats stats;
  EXPECT_NO_THROW(
      ml::SvmTrainer(params).train(grown, &stats, &state->alpha));
  EXPECT_GT(stats.warm_nonzero, 0u);
}

// --- OnlineCfgAccumulator -------------------------------------------------

TEST(Accumulator, FoldsGrowTheGraphAndDrainResetsProgress) {
  const TrainedDetector& f = fixture();
  const std::size_t window = f.detector->preprocessor().window();
  AccumulatorOptions options;
  options.fold_batch_events = 64;
  options.admit_floor = 0.0;
  OnlineCfgAccumulator acc(cfg::AddressGraph{}, options);

  const auto wins = windows_of(f.benign, window);
  ASSERT_GT(wins.size(), 4u);
  for (const auto& w : wins) acc.observe_window(w.data(), w.size());
  acc.fold_now();

  const AccumulatorStats stats = acc.stats();
  EXPECT_EQ(stats.windows_observed, wins.size());
  EXPECT_EQ(stats.windows_admitted, wins.size());
  EXPECT_EQ(stats.windows_rejected, 0u);
  EXPECT_GT(stats.edges_added, 0u);
  EXPECT_GT(stats.folds, 0u);
  EXPECT_FALSE(acc.graph_snapshot().empty());
  EXPECT_EQ(acc.events_since_drain(), wins.size() * window);

  const std::vector<PendingWindow> drained = acc.drain_windows();
  EXPECT_EQ(drained.size(), wins.size());
  for (const PendingWindow& p : drained) {
    EXPECT_EQ(p.events.size(), window);
    EXPECT_GE(p.benignity, 0.0);
    EXPECT_LE(p.benignity, 1.0);
  }
  EXPECT_EQ(acc.events_since_drain(), 0u);
  EXPECT_TRUE(acc.drain_windows().empty());
}

TEST(Accumulator, AdmissionFloorRejectsEverythingAboveOne) {
  const TrainedDetector& f = fixture();
  const std::size_t window = f.detector->preprocessor().window();
  ASSERT_NE(f.detector->continual(), nullptr);
  AccumulatorOptions options;
  options.admit_floor = 1.01;  // benignity is capped at 1.0
  OnlineCfgAccumulator acc(f.detector->continual()->benign_cfg, options);

  const auto wins = windows_of(f.benign, window);
  for (const auto& w : wins) acc.observe_window(w.data(), w.size());
  acc.fold_now();

  const AccumulatorStats stats = acc.stats();
  EXPECT_EQ(stats.windows_observed, wins.size());
  EXPECT_EQ(stats.windows_admitted, 0u);
  EXPECT_EQ(stats.windows_rejected, wins.size());
  EXPECT_EQ(stats.edges_added, 0u);  // rejected windows teach nothing
  EXPECT_TRUE(acc.drain_windows().empty());
}

TEST(Accumulator, MaliciousWindowsScoreBelowBenignOnes) {
  // The poisoning guard's premise: against the benign CFG, windows from
  // the malicious log score lower than windows from the benign log.
  const TrainedDetector& f = fixture();
  const std::size_t window = f.detector->preprocessor().window();
  ASSERT_NE(f.detector->continual(), nullptr);
  const cfg::AddressGraph& benign_cfg = f.detector->continual()->benign_cfg;

  auto mean_benignity = [&](const trace::PartitionedLog& log) {
    AccumulatorOptions options;
    options.admit_floor = 0.0;
    OnlineCfgAccumulator acc(benign_cfg, options);
    for (const auto& w : windows_of(log, window)) {
      acc.observe_window(w.data(), w.size());
    }
    double sum = 0.0;
    const auto drained = acc.drain_windows();
    for (const PendingWindow& p : drained) sum += p.benignity;
    return drained.empty() ? 0.0 : sum / static_cast<double>(drained.size());
  };
  EXPECT_GT(mean_benignity(f.benign), mean_benignity(f.malicious));
}

TEST(Accumulator, RetentionBoundEvictsOldest) {
  const TrainedDetector& f = fixture();
  const std::size_t window = f.detector->preprocessor().window();
  AccumulatorOptions options;
  options.admit_floor = 0.0;
  options.max_pending_windows = 2;
  OnlineCfgAccumulator acc(cfg::AddressGraph{}, options);

  const auto wins = windows_of(f.benign, window);
  ASSERT_GT(wins.size(), 3u);
  for (const auto& w : wins) acc.observe_window(w.data(), w.size());
  const std::vector<PendingWindow> drained = acc.drain_windows();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(acc.stats().windows_evicted, wins.size() - 2);
}

// --- RetrainScheduler -----------------------------------------------------

TEST(Retrain, PreV2DetectorCannotRetrainOnline) {
  // A detector without ContinualState (anything loaded from a v1 file).
  static const TrainedDetector* plain = new TrainedDetector(
      train_small_detector("vim_reverse_tcp_online", 1500, 7,
                           /*with_continual=*/false));
  OnlineCfgAccumulator acc(cfg::AddressGraph{}, {});
  RetrainConfig config;
  config.min_new_events = 1;
  RetrainScheduler scheduler(plain->detector, &acc, config);
  EXPECT_FALSE(scheduler.can_retrain());
  EXPECT_FALSE(scheduler.due());
  const RetrainResult result = scheduler.retrain();
  EXPECT_EQ(result.candidate, nullptr);
  EXPECT_NE(result.error.find("continual"), std::string::npos);
}

TEST(Retrain, WarmCycleGrowsDatasetAndSavesIterations) {
  const TrainedDetector& f = fixture();
  const core::ContinualState* state = f.detector->continual();
  ASSERT_NE(state, nullptr);
  const std::size_t window = f.detector->preprocessor().window();

  AccumulatorOptions acc_options;
  acc_options.admit_floor = 0.0;
  OnlineCfgAccumulator acc(state->benign_cfg, acc_options);
  RetrainConfig config;
  config.min_new_events = 1;
  config.max_new_samples = 32;
  RetrainScheduler scheduler(f.detector, &acc, config);
  ASSERT_TRUE(scheduler.can_retrain());
  EXPECT_FALSE(scheduler.due()) << "nothing accumulated yet";

  for (const auto& w : windows_of(f.benign, window)) {
    acc.observe_window(w.data(), w.size());
  }
  EXPECT_TRUE(scheduler.due());

  const RetrainResult result = scheduler.retrain();
  ASSERT_NE(result.candidate, nullptr) << result.error;
  EXPECT_GT(result.new_samples, 0u);
  EXPECT_LE(result.new_samples, config.max_new_samples);
  EXPECT_EQ(result.train_size, state->train.size() + result.new_samples);
  ASSERT_NE(result.candidate->continual(), nullptr);
  EXPECT_EQ(result.candidate->continual()->train.size(), result.train_size);
  EXPECT_EQ(result.candidate->continual()->alpha.size(), result.train_size);
  ASSERT_TRUE(result.measured_cold);
  EXPECT_LT(result.warm_iterations, result.cold_iterations)
      << "warm start must beat the cold baseline on the grown problem";
  EXPECT_EQ(result.iterations_saved,
            result.cold_iterations - result.warm_iterations);
  EXPECT_EQ(scheduler.cycles(), 1u);
  // The drain emptied the accumulator: a second cycle is not due.
  EXPECT_FALSE(scheduler.due());
  const RetrainResult empty = scheduler.retrain();
  EXPECT_EQ(empty.candidate, nullptr);
}

// --- DetectorRegistry shadow staging --------------------------------------

TEST(RegistryShadow, StagePromoteAndQuarantine) {
  const TrainedDetector& f = fixture();
  serve::DetectorRegistry registry;
  auto candidate = std::make_shared<const core::Detector>(*f.detector);

  EXPECT_FALSE(registry.begin_shadow("missing", candidate));
  registry.add("app", f.detector);
  EXPECT_TRUE(registry.begin_shadow("app", candidate));
  EXPECT_FALSE(registry.begin_shadow("app", candidate))
      << "one shadow in flight per profile";
  EXPECT_EQ(registry.shadow_candidate("app"), candidate);
  EXPECT_EQ(registry.find("app"), f.detector) << "not promoted yet";

  EXPECT_TRUE(registry.promote_shadow("app"));
  EXPECT_EQ(registry.find("app"), candidate);
  EXPECT_EQ(registry.shadow_candidate("app"), nullptr);
  EXPECT_FALSE(registry.promote_shadow("app")) << "nothing staged";

  auto bad = std::make_shared<const core::Detector>(*f.detector);
  EXPECT_TRUE(registry.begin_shadow("app", bad));
  EXPECT_TRUE(registry.rollback_shadow("app"));
  EXPECT_EQ(registry.find("app"), candidate) << "rollback keeps incumbent";
  EXPECT_EQ(registry.quarantined_count("app"), 1u);
  EXPECT_EQ(registry.last_quarantined("app"), bad);
}

// --- Server-level shadow streams ------------------------------------------

TEST(ServerShadow, IdenticalCandidateNeverDisagrees) {
  const TrainedDetector& f = fixture();
  serve::ServerOptions options;
  options.workers = 2;
  serve::DetectionServer server(options);
  server.registry().add("app", f.detector);
  server.start();

  auto session = server.open_session({"host", 1}, "app");
  ASSERT_NE(session, nullptr);

  auto evaluator = std::make_shared<ShadowEvaluator>(
      RolloverGates{.max_disagreement = 0.0,
                    .max_latency_ratio = 1e9,
                    .min_windows = 1});
  auto candidate = std::make_shared<const core::Detector>(*f.detector);
  ASSERT_TRUE(server.begin_shadow(
      "app", candidate,
      [evaluator](const serve::SessionKey& key, int active, int shadow,
                  std::uint64_t active_ns, std::uint64_t shadow_ns) {
        evaluator->record(key, active, shadow, active_ns, shadow_ns);
      }));
  EXPECT_TRUE(server.shadowing("app"));
  EXPECT_FALSE(server.begin_shadow("app", candidate, [](auto&&...) {}))
      << "second shadow refused while one is in flight";

  // Sessions opened mid-shadow auto-attach too.
  auto late = server.open_session({"host", 2}, "app");
  ASSERT_NE(late, nullptr);

  for (const trace::PartitionedEvent& e : f.benign.events) {
    ASSERT_TRUE(server.submit(session, e));
    ASSERT_TRUE(server.submit(late, e));
  }
  server.drain();

  const DiffStats stats = evaluator->stats();
  EXPECT_GT(stats.compared, 0u);
  EXPECT_EQ(stats.disagreements, 0u)
      << "an identical candidate must agree window-for-window";
  EXPECT_EQ(evaluator->decision(), RolloverDecision::kPromote);

  ASSERT_TRUE(server.end_shadow("app", /*promote=*/true));
  EXPECT_EQ(server.registry().find("app"), candidate);
  EXPECT_FALSE(server.shadowing("app"));
  EXPECT_EQ(server.metrics().snapshot().events_dropped, 0u);
  server.stop();
}

TEST(ServerShadow, BrokenCandidateTripsTheGateAndQuarantines) {
  const TrainedDetector& f = fixture();
  serve::ServerOptions options;
  options.workers = 2;
  serve::DetectionServer server(options);
  server.registry().add("app", f.detector);
  server.start();
  auto session = server.open_session({"host", 1}, "app");
  ASSERT_NE(session, nullptr);

  // All-malicious candidate: maximum disagreement on benign traffic.
  auto broken = std::make_shared<core::Detector>(*f.detector);
  broken->set_decision_threshold(1e18);
  auto evaluator = std::make_shared<ShadowEvaluator>(
      RolloverGates{.max_disagreement = 0.02,
                    .max_latency_ratio = 1e9,
                    .min_windows = 2});
  ASSERT_TRUE(server.begin_shadow(
      "app", broken,
      [evaluator](const serve::SessionKey& key, int active, int shadow,
                  std::uint64_t active_ns, std::uint64_t shadow_ns) {
        evaluator->record(key, active, shadow, active_ns, shadow_ns);
      }));

  for (const trace::PartitionedEvent& e : f.benign.events) {
    ASSERT_TRUE(server.submit(session, e));
  }
  server.drain();

  EXPECT_GT(evaluator->stats().disagreements, 0u);
  EXPECT_EQ(evaluator->decision(), RolloverDecision::kRollback);
  ASSERT_TRUE(server.end_shadow("app", /*promote=*/false));
  EXPECT_EQ(server.registry().find("app"), f.detector);
  EXPECT_EQ(server.registry().quarantined_count("app"), 1u);
  EXPECT_EQ(server.registry().last_quarantined("app"),
            std::static_pointer_cast<const core::Detector>(broken));
  server.stop();
}

TEST(ServerShadow, WindowTapDeliversWholeWindowsWithLabels) {
  const TrainedDetector& f = fixture();
  const std::size_t window = f.detector->preprocessor().window();
  serve::ServerOptions options;
  options.workers = 2;
  serve::DetectionServer server(options);
  server.registry().add("app", f.detector);

  std::mutex mu;
  std::vector<std::pair<int, std::size_t>> taps;  // (label, event count)
  server.set_window_tap([&](const serve::SessionKey&, std::size_t,
                            int label, double,
                            const trace::PartitionedEvent* events,
                            std::size_t count) {
    ASSERT_NE(events, nullptr);
    const std::lock_guard<std::mutex> lock(mu);
    taps.emplace_back(label, count);
  });
  server.start();

  auto session = server.open_session({"host", 1}, "app");
  ASSERT_NE(session, nullptr);
  for (const trace::PartitionedEvent& e : f.benign.events) {
    ASSERT_TRUE(server.submit(session, e));
  }
  server.drain();

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_GT(taps.size(), 0u);
  for (const auto& [label, count] : taps) {
    EXPECT_EQ(count, window) << "tap must only see whole windows";
    EXPECT_TRUE(label == 1 || label == -1);
  }
  server.stop();
}

// --- OnlineManager (deterministic drive via poll_once) --------------------

TEST(OnlineManagerTest, AccumulateRetrainShadowPromote) {
  const TrainedDetector& f = fixture();
  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::DetectionServer server(server_options);
  server.registry().add("default", f.detector);

  OnlineOptions options;
  options.accumulator.admit_floor = 0.0;
  options.retrain.min_new_events = 1;
  options.retrain.max_new_samples = 32;
  options.gates = {.max_disagreement = 1.0,
                   .max_latency_ratio = 1e9,
                   .min_windows = 2};
  OnlineManager manager(&server, options);
  manager.install();
  server.start();

  auto session = server.open_session({"host", 1}, "default");
  ASSERT_NE(session, nullptr);
  auto replay = [&] {
    for (const trace::PartitionedEvent& e : f.benign.events) {
      ASSERT_TRUE(server.submit(session, e));
    }
    server.drain();
  };

  OnlineReport report = manager.report();
  EXPECT_EQ(report.phase, "accumulating");

  // Round 1: accumulate benign windows; the poll triggers a warm retrain
  // and stages the candidate as a shadow.
  replay();
  manager.poll_once();
  report = manager.report();
  EXPECT_EQ(report.retrain_cycles, 1u) << report.last_error;
  EXPECT_EQ(report.phase, "shadowing");
  EXPECT_TRUE(manager.shadowing());
  EXPECT_GT(report.last_cold_iterations, report.last_warm_iterations);
  EXPECT_GT(report.warm_iterations_saved, 0u);

  // Round 2: live traffic flows through both streams; the next poll sees
  // enough agreeing windows and promotes via the RCU swap.
  replay();
  manager.poll_once();
  report = manager.report();
  EXPECT_EQ(report.promotions, 1u) << report.last_error;
  EXPECT_EQ(report.rollbacks, 0u);
  EXPECT_EQ(report.phase, "accumulating");
  EXPECT_FALSE(manager.shadowing());
  EXPECT_GT(report.shadow.compared, 0u);
  const auto promoted = server.registry().find("default");
  EXPECT_NE(promoted, f.detector) << "promotion must swap the detector";
  ASSERT_NE(promoted->continual(), nullptr);
  EXPECT_GT(promoted->continual()->train.size(),
            f.detector->continual()->train.size());

  EXPECT_EQ(server.metrics().snapshot().events_dropped, 0u)
      << "rollover must not drop events";
  server.stop();
}

TEST(OnlineManagerTest, StartStopWithLiveTrafficIsClean) {
  const TrainedDetector& f = fixture();
  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::DetectionServer server(server_options);
  server.registry().add("default", f.detector);

  OnlineOptions options;
  options.retrain.min_new_events = 1;
  options.gates = {.max_disagreement = 1.0,
                   .max_latency_ratio = 1e9,
                   .min_windows = 1};
  options.poll_interval = std::chrono::milliseconds(5);
  OnlineManager manager(&server, options);
  manager.install();
  server.start();
  manager.start();

  auto session = server.open_session({"host", 1}, "default");
  ASSERT_NE(session, nullptr);
  for (int round = 0; round < 3; ++round) {
    for (const trace::PartitionedEvent& e : f.benign.events) {
      ASSERT_TRUE(server.submit(session, e));
    }
    server.drain();
  }
  manager.stop();  // concludes any in-flight shadow by its evidence
  EXPECT_FALSE(manager.shadowing());
  const OnlineReport report = manager.report();
  // Every concluded shadow came from a retrain cycle (a shadow caught by
  // stop() with no compared traffic legitimately rolls back).
  EXPECT_LE(report.promotions + report.rollbacks, report.retrain_cycles);
  EXPECT_EQ(server.metrics().snapshot().events_dropped, 0u);
  server.stop();
  manager.stop();  // idempotent
}

// --- durability (kill-restart behavior, minus the kill) -------------------

durable::DurableStore make_durable(const std::string& name) {
  durable::DurableOptions options;
  options.dir = ::testing::TempDir() + "/" + name;
  ::mkdir(options.dir.c_str(), 0755);
  ::unlink((options.dir + "/snapshot.leaps").c_str());
  ::unlink((options.dir + "/journal.wal").c_str());
  return durable::DurableStore(options);
}

TEST(OnlineManagerTest, WarmRestartRestoresVerdictsAndAccounting) {
  const TrainedDetector& f = fixture();
  durable::DurableStore store = make_durable("online_warm_restart");
  ASSERT_TRUE(store.open().ok());

  // Generation 1: serve, learn, promote, shut down cleanly.
  core::Detector::ScanResult baseline_scan;
  serve::MetricsSnapshot before;
  {
    serve::ServerOptions server_options;
    server_options.workers = 2;
    serve::DetectionServer server(server_options);
    server.registry().add("default", f.detector);

    OnlineOptions options;
    options.accumulator.admit_floor = 0.0;
    options.retrain.min_new_events = 1;
    options.retrain.max_new_samples = 32;
    options.gates = {.max_disagreement = 1.0,
                     .max_latency_ratio = 1e9,
                     .min_windows = 2};
    options.durable = &store;
    OnlineManager manager(&server, options);
    manager.install();
    server.start();

    auto session = server.open_session({"host", 1}, "default");
    ASSERT_NE(session, nullptr);
    for (int round = 0; round < 2; ++round) {
      for (const trace::PartitionedEvent& e : f.benign.events) {
        ASSERT_TRUE(server.submit(session, e));
      }
      server.drain();
      manager.poll_once();
    }
    ASSERT_EQ(manager.report().promotions, 1u) << manager.report().last_error;
    baseline_scan = server.registry().find("default")->scan(f.malicious);
    server.stop();
    manager.stop();
    before = server.metrics().snapshot();
  }

  // Generation 2: a fresh process would recover from the same directory.
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  ASSERT_TRUE(recovered->snapshot_found);
  ASSERT_NE(recovered->detector, nullptr)
      << "the promoted incumbent must survive the restart";

  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::DetectionServer server(server_options);
  server.registry().add("default", recovered->detector);
  OnlineOptions options;
  options.durable = &store;
  OnlineManager manager(&server, options);
  manager.install();
  manager.restore(*recovered);

  // Recovered verdicts are identical to the pre-crash incumbent's.
  const auto scan = server.registry().find("default")->scan(f.malicious);
  EXPECT_EQ(scan.window_labels, baseline_scan.window_labels)
      << "recovered verdicts must be identical to the pre-restart ones";

  // The accounting identity survives the restart: the restored baseline
  // counts only terminal events, and ingested == processed + dropped +
  // quarantined holds before the first new event arrives.
  const serve::MetricsSnapshot after = server.metrics().snapshot();
  EXPECT_EQ(after.events_ingested, after.events_processed +
                                       after.events_dropped +
                                       after.events_quarantined);
  EXPECT_EQ(after.events_processed, before.events_processed);
  EXPECT_LE(after.events_ingested, before.events_ingested);

  // The restore checkpointed: a second recovery sees the same state even
  // if the journal is gone.
  const auto again = store.recover();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->accounting.ingested, recovered->accounting.ingested);
  server.stop();
}

// stop() racing direct poll_once callers must never lose admitted
// windows: whatever the interleaving, the final checkpoint folds every
// admitted window (or the retrain that consumed it) into the snapshot.
TEST(OnlineManagerTest, StopRacingPollOnceLosesNoAdmittedWindows) {
#if defined(__SANITIZE_THREAD__)
  constexpr int kRounds = 8;
#else
  constexpr int kRounds = 3;
#endif
  const TrainedDetector& f = fixture();
  for (int round = 0; round < kRounds; ++round) {
    durable::DurableStore store =
        make_durable("online_stop_race_" + std::to_string(round));
    ASSERT_TRUE(store.open().ok());

    serve::ServerOptions server_options;
    server_options.workers = 2;
    serve::DetectionServer server(server_options);
    server.registry().add("default", f.detector);

    OnlineOptions options;
    options.accumulator.admit_floor = 0.0;
    // Retrain never fires: every admitted window stays pending, so the
    // recovered pending count must equal the admitted count exactly.
    options.retrain.min_new_events = std::numeric_limits<std::uint64_t>::max();
    options.durable = &store;
    OnlineManager manager(&server, options);
    manager.install();
    server.start();

    auto session = server.open_session({"host", 1}, "default");
    ASSERT_NE(session, nullptr);
    for (const trace::PartitionedEvent& e : f.benign.events) {
      ASSERT_TRUE(server.submit(session, e));
    }
    server.drain();
    server.stop();

    ASSERT_GT(manager.report().accumulator.windows_admitted, 0u);

    // The race: a poller hammering poll_once while stop() concludes and
    // takes the final checkpoint.
    std::thread poller([&] {
      for (int i = 0; i < 50; ++i) manager.poll_once();
    });
    manager.stop();
    poller.join();

    // The accumulator folds lazily, so the authoritative admitted count
    // is the post-stop one (stop()'s checkpoint folds everything still
    // deferred). Whatever the interleaving, no admitted window may be
    // missing from the recovered state.
    const AccumulatorStats acc = manager.report().accumulator;
    const std::uint64_t admitted = acc.windows_admitted - acc.windows_evicted;
    const auto recovered = store.recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
    EXPECT_EQ(recovered->pending_windows.size(), admitted)
        << "round " << round << ": admitted windows lost across stop()"
        << " (last_error=" << manager.report().last_error << ")";
  }
}

// Worker-thread taps racing checkpoint truncations must never lose an
// admitted window. The manager's tap fence makes a tap's journal→observe
// pair atomic against a checkpoint's capture→snapshot→truncate, so every
// admitted window lands either in the snapshot or in the journal above
// its fold LSN — checkpointing on nearly every append maximizes the
// chances of a truncate landing inside an unfenced tap.
TEST(OnlineManagerTest, TapsRacingCheckpointsLoseNoAdmittedWindows) {
#if defined(__SANITIZE_THREAD__)
  constexpr int kRounds = 4;
#else
  constexpr int kRounds = 2;
#endif
  const TrainedDetector& f = fixture();
  for (int round = 0; round < kRounds; ++round) {
    durable::DurableOptions durable_options;
    durable_options.dir = ::testing::TempDir() + "/online_tap_ckpt_race_" +
                          std::to_string(round);
    ::mkdir(durable_options.dir.c_str(), 0755);
    ::unlink((durable_options.dir + "/snapshot.leaps").c_str());
    ::unlink((durable_options.dir + "/journal.wal").c_str());
    durable_options.checkpoint_every_appends = 2;
    durable::DurableStore store(durable_options);
    ASSERT_TRUE(store.open().ok());

    serve::ServerOptions server_options;
    server_options.workers = 2;
    serve::DetectionServer server(server_options);
    server.registry().add("default", f.detector);

    OnlineOptions options;
    options.accumulator.admit_floor = 0.0;
    // Retrain never fires: pending must track admitted exactly.
    options.retrain.min_new_events = std::numeric_limits<std::uint64_t>::max();
    options.durable = &store;
    OnlineManager manager(&server, options);
    manager.install();
    server.start();

    auto session = server.open_session({"host", 1}, "default");
    ASSERT_NE(session, nullptr);

    // Checkpoints hammer on the poller thread while worker taps journal
    // windows from live traffic.
    std::atomic<bool> done{false};
    std::thread poller([&] {
      while (!done.load(std::memory_order_relaxed)) manager.poll_once();
    });
    for (int rep = 0; rep < 3; ++rep) {
      for (const trace::PartitionedEvent& e : f.benign.events) {
        ASSERT_TRUE(server.submit(session, e));
      }
      server.drain();
    }
    done.store(true, std::memory_order_relaxed);
    poller.join();
    server.stop();
    manager.stop();

    const AccumulatorStats acc = manager.report().accumulator;
    const std::uint64_t admitted = acc.windows_admitted - acc.windows_evicted;
    ASSERT_GT(admitted, 0u);
    const auto recovered = store.recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
    EXPECT_EQ(recovered->pending_windows.size(), admitted)
        << "round " << round << ": window lost between a tap's journal"
        << " append and a checkpoint truncate (last_error="
        << manager.report().last_error << ")";
  }
}

}  // namespace
}  // namespace leaps::online
