// Unit tests for the address graph: edges, reachability (CHECK_CFG
// semantics), density arrays, DOT export.
#include <gtest/gtest.h>

#include <sstream>

#include "cfg/graph.h"

namespace leaps::cfg {
namespace {

TEST(AddressGraph, AddAndQueryEdges) {
  AddressGraph g;
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_FALSE(g.add_edge(1, 2));  // duplicate
  EXPECT_TRUE(g.add_edge(1, 3));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_EQ(g.edge_count(), 2u);
  ASSERT_NE(g.successors(1), nullptr);
  EXPECT_EQ(g.successors(1)->size(), 2u);
  EXPECT_EQ(g.successors(42), nullptr);
}

TEST(AddressGraph, NodesAreSortedUnique) {
  AddressGraph g;
  g.add_edge(5, 1);
  g.add_edge(1, 5);
  g.add_edge(5, 9);
  const auto nodes = g.nodes();
  EXPECT_EQ(nodes, (std::vector<std::uint64_t>{1, 5, 9}));
  EXPECT_EQ(g.node_count(), 3u);
}

TEST(AddressGraph, ReachableAlongChains) {
  AddressGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.reachable(1, 2));
  EXPECT_TRUE(g.reachable(1, 4));
  EXPECT_FALSE(g.reachable(4, 1));
  EXPECT_FALSE(g.reachable(1, 99));
  EXPECT_FALSE(g.reachable(99, 1));
}

TEST(AddressGraph, ReachabilityRequiresAtLeastOneEdge) {
  // CHECK_CFG: "start = end ∧ level ≠ 0" — a node does not reach itself
  // unless a cycle returns to it.
  AddressGraph g;
  g.add_edge(1, 2);
  EXPECT_FALSE(g.reachable(1, 1));
  g.add_edge(2, 1);
  EXPECT_TRUE(g.reachable(1, 1));
}

TEST(AddressGraph, ReachableTerminatesOnCycles) {
  AddressGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);  // cycle — the paper's recursion would never return
  g.add_edge(3, 4);
  EXPECT_TRUE(g.reachable(1, 4));
  EXPECT_FALSE(g.reachable(4, 1));
  EXPECT_TRUE(g.reachable(2, 2));
}

TEST(AddressGraph, SelfLoopReachesItself) {
  AddressGraph g;
  g.add_edge(7, 7);
  EXPECT_TRUE(g.reachable(7, 7));
}

TEST(AddressGraph, DensityArrayKeepsDuplicatesSorted) {
  AddressGraph g;
  g.add_edge(30, 10);
  g.add_edge(10, 20);
  const auto density = g.density_array();
  // GEN_CFG_DENSITY inserts both endpoints of every edge.
  EXPECT_EQ(density, (std::vector<std::uint64_t>{10, 10, 20, 30}));
}

TEST(AddressGraph, EmptyGraphBehaves) {
  AddressGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.density_array().empty());
  EXPECT_FALSE(g.reachable(1, 2));
}

TEST(AddressGraph, DotExportContainsNodesAndEdges) {
  AddressGraph g;
  g.add_edge(0x10, 0x20);
  std::ostringstream os;
  g.to_dot(os, "test", [](std::uint64_t a) {
    return a == 0x20 ? std::string("color=red") : std::string();
  });
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("0x0000000000000010"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace leaps::cfg
