// Unit tests for system-wide captures and application slicing.
#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "trace/system_log.h"

namespace leaps::trace {
namespace {

SystemRawLog tiny_capture() {
  SystemRawLog cap;
  cap.shared_modules.push_back({0x7FF800000000, 0x10000, "lib.dll"});
  cap.symbols.push_back({0x7FF800001000, "LibFunc"});
  cap.process_names[10] = "a.exe";
  cap.process_names[20] = "b.exe";
  cap.process_modules[10] = {{0x140000000, 0x8000, "a.exe"}};
  cap.process_modules[20] = {{0x140000000, 0x6000, "b.exe"}};
  for (std::uint64_t i = 0; i < 6; ++i) {
    SystemRawLog::Entry e;
    e.pid = i % 2 == 0 ? 10 : 20;
    e.event.seq = i;
    e.event.tid = 1;
    e.event.type = EventType::kFileRead;
    e.event.stack = {0x7FF800001010, 0x140000100 + i * 0x10};
    cap.entries.push_back(std::move(e));
  }
  return cap;
}

TEST(SystemLog, CapturePids) {
  EXPECT_EQ(capture_pids(tiny_capture()),
            (std::vector<std::uint32_t>{10, 20}));
}

TEST(SystemLog, SliceExtractsOneProcess) {
  const SystemRawLog cap = tiny_capture();
  const RawLog a = slice_process(cap, 10);
  EXPECT_EQ(a.process_name, "a.exe");
  ASSERT_EQ(a.events.size(), 3u);
  // Capture order preserved; global sequence numbers retained.
  EXPECT_EQ(a.events[0].seq, 0u);
  EXPECT_EQ(a.events[1].seq, 2u);
  EXPECT_EQ(a.events[2].seq, 4u);
  // Modules: the process's own image plus the shared libraries.
  ASSERT_EQ(a.modules.size(), 2u);
  EXPECT_EQ(a.modules[0].name, "a.exe");
  EXPECT_EQ(a.modules[1].name, "lib.dll");
  EXPECT_EQ(a.symbols.size(), 1u);
}

TEST(SystemLog, SliceUnknownPidThrows) {
  EXPECT_THROW(slice_process(tiny_capture(), 99), std::invalid_argument);
}

TEST(SystemLog, SlicedLogParsesAndPartitions) {
  const RawLog sliced = slice_process(tiny_capture(), 20);
  const ParsedTrace t = RawLogParser().parse_raw(sliced);
  const PartitionedLog part = StackPartitioner("b.exe").partition(t.log);
  ASSERT_EQ(part.events.size(), 3u);
  for (const PartitionedEvent& e : part.events) {
    EXPECT_EQ(e.app_stack.size(), 1u);
    EXPECT_EQ(e.system_stack.size(), 1u);
  }
}

TEST(SystemLog, TextRoundTrip) {
  const SystemRawLog cap = tiny_capture();
  const SystemRawLog back = parse_system_log_string(system_log_to_string(cap));
  EXPECT_EQ(back, cap);
}

TEST(SystemLog, ParserRejectsMalformedInput) {
  const auto reject = [](const std::string& text, std::size_t line) {
    try {
      parse_system_log_string(text);
      FAIL() << text;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line);
    }
  };
  reject("STACK 0x10\n", 1);                                     // orphan
  reject("SYSEVENT 5 0 1 FileRead\n", 1);                        // no pid
  reject("PROCESSENTRY 5 a.exe\nSYSEVENT 5 0 1 NoType\n", 2);    // type
  reject("PROCMODULE 9 0x0 0x10 x\n", 1);                        // no entry
  reject("FROB\n", 1);
  reject("SYSMODULE 0x0 zz m\n", 1);
}

TEST(SystemLog, GeneratedCaptureSlicesCleanly) {
  sim::SimConfig cfg;
  cfg.benign_events = 1200;
  cfg.mixed_events = 1000;
  cfg.malicious_events = 100;
  const sim::SystemCapture cap = sim::generate_system_capture(
      sim::find_scenario("putty_reverse_tcp"), cfg, {"vim", "notepad++"});
  // One target + two background processes.
  EXPECT_EQ(capture_pids(cap.capture).size(), 3u);
  const RawLog target = slice_process(cap.capture, cap.target_pid);
  EXPECT_EQ(target.process_name, "putty.exe");
  EXPECT_EQ(target.events.size(), 1000u);
  ASSERT_EQ(cap.target_truth.size(), target.events.size());
  // Background slices carry the right names and sizes.
  std::set<std::string> names;
  for (const std::uint32_t pid : capture_pids(cap.capture)) {
    names.insert(slice_process(cap.capture, pid).process_name);
  }
  EXPECT_TRUE(names.count("vim.exe"));
  EXPECT_TRUE(names.count("notepad++.exe"));
  // Global sequence numbers are strictly increasing across the capture.
  for (std::size_t i = 1; i < cap.capture.entries.size(); ++i) {
    EXPECT_EQ(cap.capture.entries[i].event.seq, i);
  }
}

TEST(SystemLog, SlicedTargetStillSeparatesTruth) {
  sim::SimConfig cfg;
  cfg.benign_events = 3000;
  cfg.mixed_events = 2500;
  cfg.malicious_events = 100;
  const sim::ScenarioSpec& spec = sim::find_scenario("vim_reverse_tcp_online");
  const sim::SystemCapture cap =
      sim::generate_system_capture(spec, cfg, {"chrome"});
  // Benign reference log for the same target app (clean run).
  const sim::ScenarioLogs ref = sim::generate_scenario(spec, cfg);

  const auto split = [](const RawLog& raw) {
    const ParsedTrace t = RawLogParser().parse_raw(raw);
    return StackPartitioner(t.log.process_name).partition(t.log);
  };
  const PartitionedLog benign = split(ref.benign);
  const PartitionedLog mixed =
      split(slice_process(cap.capture, cap.target_pid));

  const core::TrainingData td = core::LeapsPipeline().prepare(benign, mixed);
  double sum_b = 0.0, sum_m = 0.0;
  std::size_t n_b = 0, n_m = 0;
  for (std::size_t i = 0; i < mixed.events.size(); ++i) {
    const auto it = td.event_benignity.find(mixed.events[i].seq);
    const double b = it == td.event_benignity.end() ? 1.0 : it->second;
    if (cap.target_truth[i]) {
      sum_m += b;
      ++n_m;
    } else {
      sum_b += b;
      ++n_b;
    }
  }
  ASSERT_GT(n_m, 0u);
  ASSERT_GT(n_b, 0u);
  EXPECT_GT(sum_b / n_b, 0.85);
  EXPECT_LT(sum_m / n_m, 0.15);
}

}  // namespace
}  // namespace leaps::trace
