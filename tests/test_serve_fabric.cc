// Fleet-scale session-fabric tests (the sharded/interned/slab-backed/
// batched serving hot path):
//
//   * TokenTable — exact round-trip interning (materialize ==
//     original, byte for byte), derived-set equality with
//     core::Preprocessor's recipes, and concurrent-intern determinism,
//   * SessionManager sharding — an open/close/find/evict/reports race
//     hammer across threads (run under -DLEAPS_SANITIZE=thread in CI),
//   * batched hand-off — windows assemble identically across any batch
//     split: coalesce=1 vs coalesce=7 vs a sequential Detector::Stream
//     produce byte-identical verdicts (decision values compared exactly),
//   * WeightedQueue — event-granular capacity/drop accounting,
//   * SlabPool / BufferPool — slot reuse, overflow fallback, gauges.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "detector_fixture.h"
#include "core/preprocess.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/slab.h"
#include "trace/intern.h"

namespace leaps::serve {
namespace {

using leaps::testing::TrainedDetector;
using leaps::testing::train_small_detector;

const TrainedDetector& fixture() {
  static const TrainedDetector* f =
      new TrainedDetector(train_small_detector());
  return *f;
}

bool same_event(const trace::PartitionedEvent& a,
                const trace::PartitionedEvent& b) {
  return a.seq == b.seq && a.tid == b.tid && a.type == b.type &&
         a.system_stack == b.system_stack && a.app_stack == b.app_stack;
}

// --- TokenTable -----------------------------------------------------------

TEST(TokenTable, RoundTripIsExact) {
  trace::TokenTable table;
  const auto& events = fixture().mixed.events;
  ASSERT_FALSE(events.empty());
  for (const trace::PartitionedEvent& e : events) {
    const trace::CompactEvent c = table.compact(e);
    const trace::PartitionedEvent back = table.materialize(c);
    ASSERT_TRUE(same_event(e, back))
        << "materialize() must reconstruct the event byte-identically";
  }
  const trace::TokenTable::Stats stats = table.stats();
  EXPECT_GT(stats.hits, 0u) << "a real log recycles stack shapes";
  EXPECT_GT(stats.interned, 0u);
}

TEST(TokenTable, HandlesEmptyStacksAndHostileNames) {
  trace::TokenTable table;
  trace::PartitionedEvent e;
  e.seq = 42;
  e.tid = 7;
  e.type = trace::EventType::kSysCallEnter;
  // Empty stacks are legal (partitioner output for stackless events).
  const trace::CompactEvent c0 = table.compact(e);
  EXPECT_TRUE(same_event(e, table.materialize(c0)));
  // '!' inside a module name must not collide with the module!function
  // separator in a *different* stack (ids key on the frame sequence, not
  // on the joined string, so no ambiguity is possible).
  trace::PartitionedEvent bang1 = e;
  bang1.system_stack.push_back({0x10, "lib!odd", "fn"});
  trace::PartitionedEvent bang2 = e;
  bang2.system_stack.push_back({0x10, "lib", "odd!fn"});
  const trace::CompactEvent c1 = table.compact(bang1);
  const trace::CompactEvent c2 = table.compact(bang2);
  EXPECT_NE(c1.sys_id, c2.sys_id);
  EXPECT_TRUE(same_event(bang1, table.materialize(c1)));
  EXPECT_TRUE(same_event(bang2, table.materialize(c2)));
}

TEST(TokenTable, DerivedSetsMatchPreprocessorRecipes) {
  trace::TokenTable table;
  for (const trace::PartitionedEvent& e : fixture().mixed.events) {
    const trace::CompactEvent c = table.compact(e);
    EXPECT_EQ(table.lib_set(c.lib_id), core::Preprocessor::lib_set(e))
        << "Lib recipe diverged from core::Preprocessor::lib_set";
    EXPECT_EQ(table.func_set(c.func_id), core::Preprocessor::func_set(e))
        << "Func recipe diverged from core::Preprocessor::func_set";
  }
}

TEST(TokenTable, ConcurrentInterningIsDeterministic) {
  trace::TokenTable table;
  const auto& events = fixture().mixed.events;
  const std::size_t n = std::min<std::size_t>(events.size(), 512);
  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<trace::CompactEvent>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t].reserve(n);
      // Different threads walk in different orders: first-seen racing is
      // the point.
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = (t % 2 == 0) ? i : n - 1 - i;
        per_thread[t].push_back(table.compact(events[idx]));
      }
      if (t % 2 != 0) {
        std::reverse(per_thread[t].begin(), per_thread[t].end());
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Every thread must have observed identical ids for identical events —
  // a racing double-intern handing out two ids for one token would make
  // downstream id-keyed caches diverge between workers.
  for (std::size_t t = 1; t < kThreads; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(per_thread[0][i].sys_id, per_thread[t][i].sys_id);
      EXPECT_EQ(per_thread[0][i].app_id, per_thread[t][i].app_id);
      EXPECT_EQ(per_thread[0][i].lib_id, per_thread[t][i].lib_id);
      EXPECT_EQ(per_thread[0][i].func_id, per_thread[t][i].func_id);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_event(events[i], table.materialize(per_thread[0][i])));
  }
}

// --- SessionManager sharding ----------------------------------------------

TEST(SessionManagerShards, PowerOfTwoRounding) {
  DetectorRegistry registry;
  registry.add("p", fixture().detector);
  EXPECT_EQ(SessionManager(&registry, 1).shard_count(), 1u);
  EXPECT_EQ(SessionManager(&registry, 3).shard_count(), 4u);
  EXPECT_EQ(SessionManager(&registry, 64).shard_count(), 64u);
  EXPECT_EQ(SessionManager(&registry, 65).shard_count(), 128u);
}

TEST(SessionManagerShards, OpenCloseFindSweepRaceHammer) {
  DetectorRegistry registry;
  registry.add("p", fixture().detector);
  SessionManager manager(&registry, 8);
  constexpr std::size_t kKeys = 64;
  constexpr int kRounds = 120;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> finds{0};

  std::vector<std::thread> threads;
  // Openers/closers churn overlapping key ranges across every shard.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t k = static_cast<std::size_t>(t); k < kKeys;
             k += 4) {
          const SessionKey key{"hammer", static_cast<std::uint32_t>(k)};
          ASSERT_NE(manager.open(key, "p"), nullptr);
          if ((r + t) % 3 == 0) manager.close(key);
        }
      }
    });
  }
  // Readers: find / reports / active / sessions_for against the churn.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (std::size_t k = 0; k < kKeys; ++k) {
          if (manager.find({"hammer", static_cast<std::uint32_t>(k)})) {
            finds.fetch_add(1, std::memory_order_relaxed);
          }
        }
        const std::vector<SessionReport> reports = manager.reports();
        // reports() promises key order even across shards.
        for (std::size_t i = 1; i < reports.size(); ++i) {
          ASSERT_LT(reports[i - 1].key, reports[i].key);
        }
        (void)manager.active();
        (void)manager.sessions_for("p").size();
      }
    });
  }
  // Sweeper: a future cutoff evicts everything (nothing ever feeds, so
  // every session is "idle") — open races must survive concurrent erasure.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)manager.evict_idle(std::chrono::steady_clock::now() +
                               std::chrono::hours(1));
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < 4; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = 4; t < threads.size(); ++t) threads[t].join();
  EXPECT_GT(finds.load(), 0u);

  // Deterministic closing sweep: whatever survived is found and closed.
  std::size_t closed = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    closed += manager.close({"hammer", static_cast<std::uint32_t>(k)})
                      .has_value()
                  ? 1
                  : 0;
  }
  EXPECT_EQ(manager.active(), 0u);
  EXPECT_LE(closed, kKeys);
}

TEST(SessionManagerShards, ReportsAreKeyOrderedAcrossShards) {
  DetectorRegistry registry;
  registry.add("p", fixture().detector);
  SessionManager manager(&registry, 16);
  for (std::uint32_t pid = 0; pid < 40; ++pid) {
    ASSERT_NE(manager.open({"host-" + std::to_string(pid % 5), pid}, "p"),
              nullptr);
  }
  const std::vector<SessionReport> reports = manager.reports();
  ASSERT_EQ(reports.size(), 40u);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_LT(reports[i - 1].key, reports[i].key);
  }
}

// --- batched hand-off: window assembly across batch splits ----------------

std::map<std::size_t, std::vector<std::pair<std::size_t, double>>>
serve_verdicts(std::size_t coalesce, std::size_t sessions,
               std::size_t per_session) {
  const TrainedDetector& f = fixture();
  ServerOptions options;
  options.workers = 3;
  options.coalesce = coalesce;
  options.session_shards = 4;
  serve::DetectionServer server(options);
  server.registry().add("p", f.detector);

  std::mutex mu;
  std::map<std::size_t, std::vector<std::pair<std::size_t, double>>> got;
  server.set_verdict_sink([&](const VerdictRecord& v) {
    const std::lock_guard<std::mutex> lock(mu);
    got[v.key.pid].emplace_back(v.window_index, v.decision_value);
  });

  std::vector<std::shared_ptr<Session>> opened;
  for (std::size_t s = 0; s < sessions; ++s) {
    opened.push_back(server.open_session(
        {"batch", static_cast<std::uint32_t>(s)}, "p"));
  }
  server.start();
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < sessions; ++s) {
    producers.emplace_back([&, s] {
      const auto& events = f.mixed.events;
      for (std::size_t i = 0; i < per_session; ++i) {
        server.submit(opened[s], events[i % events.size()]);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  server.drain();
  server.stop();
  return got;
}

TEST(BatchedHandoff, WindowAssemblyIdenticalAcrossBatchSplits) {
  const TrainedDetector& f = fixture();
  constexpr std::size_t kSessions = 4;
  const std::size_t per_session = 40 * f.detector->preprocessor().window();

  // Sequential ground truth: one Detector::Stream per session.
  std::vector<std::pair<std::size_t, double>> expected;
  {
    core::Detector::Stream stream = f.detector->stream();
    std::size_t window_index = 0;
    for (std::size_t i = 0; i < per_session; ++i) {
      const auto& events = f.mixed.events;
      if (stream.push(events[i % events.size()]).has_value()) {
        expected.emplace_back(window_index++,
                              stream.last_decision_value());
      }
    }
  }
  ASSERT_FALSE(expected.empty());

  // coalesce=1 (per-event hand-off), a prime coalesce that never divides
  // the window size, and one larger than the worker drain batch.
  for (const std::size_t coalesce : {std::size_t{1}, std::size_t{7},
                                     std::size_t{160}}) {
    const auto got = serve_verdicts(coalesce, kSessions, per_session);
    ASSERT_EQ(got.size(), kSessions) << "coalesce=" << coalesce;
    for (const auto& [pid, verdicts] : got) {
      ASSERT_EQ(verdicts.size(), expected.size())
          << "coalesce=" << coalesce << " session " << pid;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(verdicts[i].first, expected[i].first);
        // Byte-identical decision values — the interned/batched path must
        // not perturb the math by even one ulp.
        EXPECT_EQ(verdicts[i].second, expected[i].second)
            << "coalesce=" << coalesce << " window " << i;
      }
    }
  }
}

// --- WeightedQueue --------------------------------------------------------

TEST(WeightedQueue, CapacityAndDropsAreInWeightUnits) {
  WeightedQueue<int> q(10, OverflowPolicy::kDropOldest);
  std::vector<int> evicted;
  EXPECT_TRUE(q.push(1, 4, &evicted));
  EXPECT_TRUE(q.push(2, 4, &evicted));
  EXPECT_TRUE(q.push(3, 2, &evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(q.size(), 10u);
  // 4 more weight units: evicting item 1 (4 units) already makes room.
  EXPECT_TRUE(q.push(4, 4, &evicted));
  EXPECT_EQ(evicted, (std::vector<int>{1}));
  EXPECT_EQ(q.dropped(), 4u);
  EXPECT_EQ(q.size(), 10u);
  EXPECT_EQ(q.high_water(), 10u);
  // 9 more: every queued item goes — freeing 4+2 is still not enough, so
  // the evictor keeps walking until the newcomer fits.
  evicted.clear();
  EXPECT_TRUE(q.push(5, 9, &evicted));
  EXPECT_EQ(evicted, (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(q.dropped(), 14u);
  EXPECT_EQ(q.size(), 9u);
}

TEST(WeightedQueue, OversizedItemAdmittedWhenEmpty) {
  WeightedQueue<int> q(4, OverflowPolicy::kBlock);
  // Heavier than the whole queue: admitted alone rather than deadlocking.
  EXPECT_TRUE(q.push(7, 100));
  EXPECT_EQ(q.size(), 100u);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 1), 100u);
  EXPECT_EQ(out, (std::vector<int>{7}));
}

TEST(WeightedQueue, PopBatchTakesAtLeastOneAndStopsAtMaxWeight) {
  WeightedQueue<int> q(100, OverflowPolicy::kBlock);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i, 10));
  std::vector<int> out;
  // 25 units: items 0,1 fit (20), item 2 overshoots to 30 — the batch
  // takes it (last item may overshoot) and stops.
  EXPECT_EQ(q.pop_batch(out, 25), 30u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  out.clear();
  q.close();
  EXPECT_EQ(q.pop_batch(out, 1000), 20u);
  EXPECT_EQ(out, (std::vector<int>{3, 4}));
  EXPECT_EQ(q.pop_batch(out, 1000), 0u);  // closed and drained
}

// --- SlabPool / BufferPool ------------------------------------------------

TEST(SlabPool, ReusesSlotsAndPublishesGauges) {
  auto gauges = std::make_shared<SlabGauges>();
  SlabPool pool(4, gauges);
  void* a = pool.allocate(64, 8);
  void* b = pool.allocate(64, 8);
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.chunk_count(), 1u);
  EXPECT_EQ(gauges->in_use.load(), 2);
  pool.deallocate(a, 64, 8);
  EXPECT_EQ(gauges->free.load(), 3);
  // A freed slot is handed out again before any chunk growth.
  void* c = pool.allocate(64, 8);
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.chunk_count(), 1u);
  pool.deallocate(b, 64, 8);
  pool.deallocate(c, 64, 8);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(gauges->in_use.load(), 0);
}

TEST(SlabPool, MismatchedSizeFallsBackToHeapWithCounter) {
  auto gauges = std::make_shared<SlabGauges>();
  SlabPool pool(4, gauges);
  void* a = pool.allocate(64, 8);  // fixes the slot size
  void* odd = pool.allocate(128, 8);
  ASSERT_NE(odd, nullptr);
  EXPECT_EQ(pool.overflow(), 1u);
  EXPECT_EQ(gauges->overflow.load(), 1);
  EXPECT_EQ(pool.in_use(), 1u);  // overflow blocks are not pool slots
  pool.deallocate(odd, 128, 8);  // classified by containment -> heap path
  pool.deallocate(a, 64, 8);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(SlabPool, GrowsByWholeChunks) {
  SlabPool pool(2);
  std::vector<void*> slots;
  for (int i = 0; i < 5; ++i) slots.push_back(pool.allocate(32, 8));
  EXPECT_EQ(pool.chunk_count(), 3u);  // ceil(5 / 2)
  const std::set<void*> unique(slots.begin(), slots.end());
  EXPECT_EQ(unique.size(), slots.size());
  for (void* p : slots) pool.deallocate(p, 32, 8);
  EXPECT_EQ(pool.free_slots(), 6u);
}

TEST(BufferPool, RecyclesCapacityAndBoundsFreeList) {
  auto gauges = std::make_shared<SlabGauges>();
  BufferPool<int> pool(2, gauges);
  std::vector<int> a = pool.acquire();
  a.reserve(1024);
  const std::size_t cap = a.capacity();
  int* data = a.data();
  pool.release(std::move(a));
  std::vector<int> b = pool.acquire();
  EXPECT_EQ(b.data(), data) << "capacity must be recycled, not reallocated";
  EXPECT_GE(b.capacity(), cap);
  EXPECT_TRUE(b.empty());
  // max_free bounds the free list: the third release is dropped.
  pool.release(std::move(b));
  pool.release(pool.acquire());
  std::vector<int> c = pool.acquire();
  std::vector<int> d = pool.acquire();
  std::vector<int> e = pool.acquire();
  pool.release(std::move(c));
  pool.release(std::move(d));
  pool.release(std::move(e));
  EXPECT_LE(pool.free_buffers(), 2u);
  EXPECT_EQ(gauges->in_use.load(), 0);
}

TEST(SlabAllocator, SessionsAllocateFromThePoolViaAllocateShared) {
  auto gauges = std::make_shared<SlabGauges>();
  DetectorRegistry registry;
  registry.add("p", fixture().detector);
  SessionManager manager(&registry, 4, gauges);
  std::vector<std::shared_ptr<Session>> held;
  for (std::uint32_t pid = 0; pid < 16; ++pid) {
    held.push_back(manager.open({"slab", pid}, "p"));
    ASSERT_NE(held.back(), nullptr);
  }
  EXPECT_EQ(gauges->in_use.load() +
                gauges->overflow.load(),
            16);
  for (std::uint32_t pid = 0; pid < 16; ++pid) manager.close({"slab", pid});
  held.clear();  // last refs drop -> slots return to the freelist
  EXPECT_EQ(gauges->in_use.load(), 0);
}

}  // namespace
}  // namespace leaps::serve
