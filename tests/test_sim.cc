// Unit tests for the ETW-simulator substrate: library registry, behavior
// table, program builder, attack transforms, executor, and scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/address_space.h"
#include "sim/attack.h"
#include "sim/behavior.h"
#include "sim/executor.h"
#include "sim/library.h"
#include "sim/profiles.h"
#include "sim/program.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"

namespace leaps::sim {
namespace {

// ---------------------------------------------------- LibraryRegistry ----

TEST(LibraryRegistry, AddressesLiveInsideTheirModule) {
  const LibraryRegistry r = LibraryRegistry::standard();
  for (const SystemLibrary& lib : r.libraries()) {
    for (std::size_t i = 0; i < lib.functions.size(); ++i) {
      const std::uint64_t addr = lib.function_address(i);
      EXPECT_GE(addr, lib.base);
      EXPECT_LT(addr, lib.base + lib.size);
      EXPECT_EQ(r.address_of(lib.name, lib.functions[i]), addr);
    }
  }
}

TEST(LibraryRegistry, UserAndKernelSpacesAreDisjoint) {
  const LibraryRegistry r = LibraryRegistry::standard();
  for (const SystemLibrary& lib : r.libraries()) {
    if (lib.is_kernel) {
      EXPECT_GE(lib.base, kKernelBase);
    } else {
      EXPECT_GE(lib.base, kUserLibBase);
      EXPECT_LT(lib.base, kKernelBase);
    }
  }
}

TEST(LibraryRegistry, ModuleRangesNeverOverlap) {
  const LibraryRegistry r = LibraryRegistry::standard();
  const auto& libs = r.libraries();
  for (std::size_t i = 0; i < libs.size(); ++i) {
    for (std::size_t j = i + 1; j < libs.size(); ++j) {
      const bool disjoint = libs[i].base + libs[i].size <= libs[j].base ||
                            libs[j].base + libs[j].size <= libs[i].base;
      EXPECT_TRUE(disjoint) << libs[i].name << " vs " << libs[j].name;
    }
  }
}

TEST(LibraryRegistry, UnknownFunctionThrows) {
  const LibraryRegistry r = LibraryRegistry::standard();
  EXPECT_THROW(r.address_of("ntdll.dll", "NoSuchFn"), std::logic_error);
  EXPECT_THROW(r.address_of("nosuch.dll", "ReadFile"), std::logic_error);
}

TEST(LibraryRegistry, AppendRecordsCoversEverything) {
  const LibraryRegistry r = LibraryRegistry::standard();
  trace::RawLog log;
  r.append_records(log);
  EXPECT_EQ(log.modules.size(), r.libraries().size());
  std::size_t fn_total = 0;
  for (const SystemLibrary& lib : r.libraries()) {
    fn_total += lib.functions.size();
  }
  EXPECT_EQ(log.symbols.size(), fn_total);
}

// ------------------------------------------------------ BehaviorTable ----

TEST(BehaviorTable, EveryActionHasResolvedVariants) {
  const LibraryRegistry r = LibraryRegistry::standard();
  const BehaviorTable table(r);
  for (std::size_t k = 0; k < kActionKindCount; ++k) {
    const auto& variants = table.variants(static_cast<ActionKind>(k));
    ASSERT_FALSE(variants.empty())
        << action_kind_name(static_cast<ActionKind>(k));
    for (const ResolvedVariant& v : variants) {
      EXPECT_FALSE(v.frame_addresses.empty());
      // Innermost frame of every variant is a kernel-side frame.
      EXPECT_GE(v.frame_addresses.front(), kKernelBase);
      // Outermost is user-mode.
      EXPECT_LT(v.frame_addresses.back(), kKernelBase);
    }
  }
}

TEST(BehaviorTable, VariantSpecsResolveAgainstRegistry) {
  const LibraryRegistry r = LibraryRegistry::standard();
  for (std::size_t k = 0; k < kActionKindCount; ++k) {
    for (const ActionVariant& v :
         action_variants(static_cast<ActionKind>(k))) {
      for (const SystemFrameSpec& f : v.frames) {
        EXPECT_NO_THROW(r.address_of(f.lib, f.func));
      }
    }
  }
}

TEST(ActionKind, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::size_t k = 0; k < kActionKindCount; ++k) {
    const auto name = action_kind_name(static_cast<ActionKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
}

// ------------------------------------------------------------ Program ----

TEST(Program, BuilderMakesAllFunctionsReachable) {
  util::Rng rng(1);
  const Program p = build_program(app_spec("putty"), kAppImageBase, rng);
  // BFS from the entry over callees.
  std::set<std::size_t> seen = {p.entry};
  std::vector<std::size_t> frontier = {p.entry};
  while (!frontier.empty()) {
    const std::size_t f = frontier.back();
    frontier.pop_back();
    for (const std::size_t c : p.functions[f].callees) {
      if (seen.insert(c).second) frontier.push_back(c);
    }
  }
  EXPECT_EQ(seen.size(), p.functions.size());
}

TEST(Program, AddressesAreMonotoneAndInsideImage) {
  util::Rng rng(2);
  const Program p = build_program(app_spec("vim"), kAppImageBase, rng);
  for (std::size_t i = 1; i < p.functions.size(); ++i) {
    EXPECT_LT(p.functions[i - 1].address, p.functions[i].address);
  }
  EXPECT_GE(p.min_address(), p.image_base);
  EXPECT_LT(p.max_address(), p.image_base + p.image_size);
}

TEST(Program, LeavesAlwaysHaveActions) {
  util::Rng rng(3);
  const Program p = build_program(app_spec("chrome"), kAppImageBase, rng);
  for (const ProgramFunction& f : p.functions) {
    if (f.callees.empty()) EXPECT_FALSE(f.actions.empty());
  }
}

TEST(Program, BuildIsDeterministicInSeed) {
  util::Rng r1(9);
  util::Rng r2(9);
  const Program a = build_program(app_spec("winscp"), kAppImageBase, r1);
  const Program b = build_program(app_spec("winscp"), kAppImageBase, r2);
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].address, b.functions[i].address);
    EXPECT_EQ(a.functions[i].callees, b.functions[i].callees);
    EXPECT_EQ(a.functions[i].actions, b.functions[i].actions);
  }
}

TEST(Program, RelocatePreservesStructure) {
  util::Rng rng(4);
  const Program p =
      build_program(payload_spec("reverse_tcp"), kAppImageBase, rng);
  const Program q = relocate(p, kInjectionBase);
  EXPECT_EQ(q.image_base, kInjectionBase);
  ASSERT_EQ(q.functions.size(), p.functions.size());
  for (std::size_t i = 0; i < p.functions.size(); ++i) {
    EXPECT_EQ(q.functions[i].address - q.image_base,
              p.functions[i].address - p.image_base);
    EXPECT_EQ(q.functions[i].callees, p.functions[i].callees);
    EXPECT_EQ(q.functions[i].actions, p.functions[i].actions);
  }
}

TEST(Profiles, KnownNamesBuildUnknownThrow) {
  for (const auto app : known_apps()) EXPECT_NO_THROW(app_spec(app));
  for (const auto pl : known_payloads()) EXPECT_NO_THROW(payload_spec(pl));
  EXPECT_THROW(app_spec("emacs"), std::invalid_argument);
  EXPECT_THROW(payload_spec("ransomware"), std::invalid_argument);
}

// ------------------------------------------------------------- Attack ----

TEST(Attack, OfflinePayloadSitsJustPastTheBenignImage) {
  util::Rng rng(5);
  const Program app = build_program(app_spec("vim"), kAppImageBase, rng);
  const Program payload =
      build_program(payload_spec("pwddlg"), kAppImageBase, rng);
  const InfectedProcess ip = make_offline_infection(app, payload, rng);
  EXPECT_EQ(ip.method, AttackMethod::kOfflineInfection);
  EXPECT_GT(ip.payload.min_address(), ip.app.max_address());
  // The grown image record covers the appended payload section.
  EXPECT_LE(ip.payload.max_address(),
            ip.app.image_base + ip.image_record_size);
  // Detour site is a real, non-entry app function.
  EXPECT_GT(ip.detour_function, 0u);
  EXPECT_LT(ip.detour_function, ip.app.functions.size());
}

TEST(Attack, OnlinePayloadIsFarAndUnmapped) {
  util::Rng rng(6);
  const Program app = build_program(app_spec("putty"), kAppImageBase, rng);
  const Program payload =
      build_program(payload_spec("reverse_https"), kAppImageBase, rng);
  const InfectedProcess ip = make_online_injection(app, payload, rng);
  EXPECT_EQ(ip.payload.image_base, kInjectionBase);
  // Image record does not cover the injected pages.
  EXPECT_GT(ip.payload.min_address(),
            ip.app.image_base + ip.image_record_size);
  EXPECT_EQ(ip.image_record_size, ip.app.image_size);
}

TEST(Attack, SourceTrojanPreservesBenignStructure) {
  util::Rng rng(7);
  const Program app = build_program(app_spec("vim"), kAppImageBase, rng);
  const Program payload =
      build_program(payload_spec("pwddlg"), kAppImageBase, rng);
  const SourceTrojan t = make_source_trojan(app, payload, rng);

  ASSERT_EQ(t.merged.functions.size(),
            app.functions.size() + payload.functions.size());
  ASSERT_EQ(t.is_payload_fn.size(), t.merged.functions.size());
  const auto payload_count = static_cast<std::size_t>(std::count(
      t.is_payload_fn.begin(), t.is_payload_fn.end(), true));
  EXPECT_EQ(payload_count, payload.functions.size());
  // Payload functions form one contiguous block.
  const auto first = std::find(t.is_payload_fn.begin(),
                               t.is_payload_fn.end(), true) -
                     t.is_payload_fn.begin();
  for (std::size_t i = 0; i < payload.functions.size(); ++i) {
    EXPECT_TRUE(t.is_payload_fn[first + i]);
  }
  EXPECT_TRUE(t.is_payload_fn[t.payload_entry]);
  EXPECT_FALSE(t.is_payload_fn[t.detour_function]);
  EXPECT_FALSE(t.is_payload_fn[t.merged.entry]);
  // Compiled with the app toolchain.
  EXPECT_EQ(t.merged.chain_style, ChainStyle::kFramework);
  // Benign call edges survive (modulo index remapping): spot-check by
  // counting — merged benign functions have the same out-degrees.
  std::size_t app_edges = 0;
  for (const auto& f : app.functions) app_edges += f.callees.size();
  std::size_t merged_benign_edges = 0;
  for (std::size_t i = 0; i < t.merged.functions.size(); ++i) {
    if (!t.is_payload_fn[i]) {
      merged_benign_edges += t.merged.functions[i].callees.size();
    }
  }
  EXPECT_EQ(merged_benign_edges, app_edges);
  // Payload callees stay inside the payload block.
  for (std::size_t i = 0; i < t.merged.functions.size(); ++i) {
    if (!t.is_payload_fn[i]) continue;
    for (const std::size_t c : t.merged.functions[i].callees) {
      EXPECT_TRUE(t.is_payload_fn[c]);
    }
  }
}

TEST(Attack, SourceTrojanRunProducesGroundTruth) {
  util::Rng rng(8);
  const Program app = build_program(app_spec("putty"), kAppImageBase, rng);
  const Program payload =
      build_program(payload_spec("reverse_tcp"), kAppImageBase, rng);
  const SourceTrojan t = make_source_trojan(app, payload, rng);
  const LibraryRegistry registry = LibraryRegistry::standard();
  const Executor ex(registry, {});
  const auto run = ex.run_source_trojan(t, 3000, util::Rng(9));
  ASSERT_EQ(run.log.events.size(), 3000u);
  ASSERT_EQ(run.is_malicious.size(), 3000u);
  const auto malicious = static_cast<std::size_t>(std::count(
      run.is_malicious.begin(), run.is_malicious.end(), true));
  EXPECT_GT(malicious, 300u);
  EXPECT_LT(malicious, 2700u);
  // Malicious events carry payload-block frames, benign ones do not.
  const std::uint64_t lo =
      t.merged.functions[t.payload_entry].address;  // block start ≈ entry
  std::uint64_t block_lo = ~0ULL, block_hi = 0;
  for (std::size_t i = 0; i < t.merged.functions.size(); ++i) {
    if (t.is_payload_fn[i]) {
      block_lo = std::min(block_lo, t.merged.functions[i].address);
      block_hi = std::max(block_hi, t.merged.functions[i].address);
    }
  }
  (void)lo;
  for (std::size_t i = 0; i < run.log.events.size(); ++i) {
    bool touches_block = false;
    for (const std::uint64_t a : run.log.events[i].stack) {
      if (a >= block_lo && a <= block_hi) touches_block = true;
    }
    EXPECT_EQ(touches_block, static_cast<bool>(run.is_malicious[i]))
        << "event " << i;
  }
}

TEST(Scenario, SourceTrojanScenarioIsDeterministicAndComplete) {
  SimConfig cfg;
  cfg.benign_events = 500;
  cfg.mixed_events = 400;
  cfg.malicious_events = 200;
  const ScenarioLogs a =
      generate_source_trojan_scenario("vim", "pwddlg", cfg);
  const ScenarioLogs b =
      generate_source_trojan_scenario("vim", "pwddlg", cfg);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.mixed, b.mixed);
  EXPECT_EQ(a.malicious, b.malicious);
  EXPECT_EQ(a.spec.name, "vim_pwddlg_srctrojan");
  EXPECT_EQ(a.benign.events.size(), 500u);
  EXPECT_EQ(a.mixed.events.size(), 400u);
  // The trojaned image is at least as large as the clean one (the payload
  // block may hide inside section-alignment padding for tiny payloads).
  EXPECT_GE(a.mixed.modules.front().size, a.benign.modules.front().size);
}

TEST(Attack, MethodNames) {
  EXPECT_EQ(attack_method_name(AttackMethod::kOfflineInfection),
            "Offline Infection");
  EXPECT_EQ(attack_method_name(AttackMethod::kOnlineInjection),
            "Online Injection");
}

// ----------------------------------------------------------- Executor ----

class ExecutorTest : public ::testing::Test {
 protected:
  LibraryRegistry registry_ = LibraryRegistry::standard();
  ExecConfig config_;
};

TEST_F(ExecutorTest, BenignRunProducesRequestedEvents) {
  const Executor ex(registry_, config_);
  util::Rng rng(10);
  const Program app = build_program(app_spec("vim"), kAppImageBase, rng);
  const trace::RawLog log = ex.run_benign(app, 500, util::Rng(1));
  ASSERT_EQ(log.events.size(), 500u);
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].seq, i);
    EXPECT_FALSE(log.events[i].stack.empty());
  }
}

TEST_F(ExecutorTest, StackWalksAreWellFormed) {
  const Executor ex(registry_, config_);
  util::Rng rng(11);
  const Program app = build_program(app_spec("putty"), kAppImageBase, rng);
  const trace::RawLog log = ex.run_benign(app, 300, util::Rng(2));
  const std::uint64_t app_lo = app.image_base;
  const std::uint64_t app_hi = app.image_base + app.image_size;
  for (const trace::RawEvent& e : log.events) {
    // Innermost frame is kernel-side; walking outward we must pass through
    // at least one app frame; the outermost frame is the thread bootstrap.
    EXPECT_GE(e.stack.front(), kKernelBase);
    EXPECT_LT(e.stack.back(), kKernelBase);
    bool has_app_frame = false;
    for (const std::uint64_t a : e.stack) {
      if (a >= app_lo && a < app_hi) has_app_frame = true;
    }
    EXPECT_TRUE(has_app_frame);
  }
}

TEST_F(ExecutorTest, RunsAreDeterministic) {
  const Executor ex(registry_, config_);
  util::Rng rng(12);
  const Program app = build_program(app_spec("winscp"), kAppImageBase, rng);
  const trace::RawLog a = ex.run_benign(app, 200, util::Rng(3));
  const trace::RawLog b = ex.run_benign(app, 200, util::Rng(3));
  EXPECT_EQ(a, b);
}

TEST_F(ExecutorTest, MixedRunTruthTracksPayloadRatio) {
  const Executor ex(registry_, config_);
  util::Rng rng(13);
  const Program app = build_program(app_spec("putty"), kAppImageBase, rng);
  const Program payload =
      build_program(payload_spec("reverse_tcp"), kAppImageBase, rng);
  const InfectedProcess ip = make_online_injection(app, payload, rng);
  const auto mixed = ex.run_infected_with_truth(ip, 6000, util::Rng(4));
  ASSERT_EQ(mixed.is_malicious.size(), mixed.log.events.size());
  std::size_t malicious = 0;
  for (const bool b : mixed.is_malicious) malicious += b ? 1 : 0;
  const double frac =
      static_cast<double>(malicious) / static_cast<double>(6000);
  EXPECT_NEAR(frac, config_.payload_ratio, 0.12);
}

TEST_F(ExecutorTest, MixedPayloadEventsCarryPayloadFrames) {
  const Executor ex(registry_, config_);
  util::Rng rng(14);
  const Program app = build_program(app_spec("vim"), kAppImageBase, rng);
  const Program payload =
      build_program(payload_spec("reverse_https"), kAppImageBase, rng);
  const InfectedProcess ip = make_online_injection(app, payload, rng);
  const auto mixed = ex.run_infected_with_truth(ip, 2000, util::Rng(5));
  const std::uint64_t lo = ip.payload.min_address();
  const std::uint64_t hi = ip.payload.max_address();
  for (std::size_t i = 0; i < mixed.log.events.size(); ++i) {
    bool has_payload_frame = false;
    for (const std::uint64_t a : mixed.log.events[i].stack) {
      if (a >= lo && a <= hi) has_payload_frame = true;
    }
    EXPECT_EQ(has_payload_frame, static_cast<bool>(mixed.is_malicious[i]));
  }
}

TEST_F(ExecutorTest, StandalonePayloadRunsAlone) {
  const Executor ex(registry_, config_);
  util::Rng rng(15);
  const Program payload =
      build_program(payload_spec("pwddlg"), kAppImageBase, rng);
  const trace::RawLog log = ex.run_payload_standalone(payload, 300,
                                                      util::Rng(6));
  EXPECT_EQ(log.process_name, "pwddlg.exe");
  EXPECT_EQ(log.events.size(), 300u);
}

TEST_F(ExecutorTest, RejectsBadConfig) {
  ExecConfig bad = config_;
  bad.max_stack_depth = 1;
  EXPECT_THROW(Executor(registry_, bad), std::logic_error);
  bad = config_;
  bad.payload_ratio = 0.0;
  EXPECT_THROW(Executor(registry_, bad), std::logic_error);
}

// ----------------------------------------------------------- Scenario ----

TEST(Scenario, TableHasTwentyOneEntries) {
  const auto& specs = table1_scenarios();
  EXPECT_EQ(specs.size(), 21u);
  std::size_t offline = 0;
  std::size_t online = 0;
  std::set<std::string> names;
  for (const ScenarioSpec& s : specs) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    (s.method == AttackMethod::kOfflineInfection ? offline : online) += 1;
  }
  EXPECT_EQ(offline, 13u);  // Table I upper block
  EXPECT_EQ(online, 8u);    // Table I lower block
}

TEST(Scenario, FindByNameWorks) {
  EXPECT_EQ(find_scenario("vim_codeinject").payload, "pwddlg");
  EXPECT_EQ(find_scenario("putty_reverse_https_online").method,
            AttackMethod::kOnlineInjection);
  EXPECT_THROW(find_scenario("nope"), std::invalid_argument);
}

TEST(Scenario, GenerationIsDeterministic) {
  SimConfig cfg;
  cfg.benign_events = 300;
  cfg.mixed_events = 300;
  cfg.malicious_events = 150;
  const ScenarioSpec& spec = find_scenario("vim_reverse_tcp");
  const ScenarioLogs a = generate_scenario(spec, cfg);
  const ScenarioLogs b = generate_scenario(spec, cfg);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.mixed, b.mixed);
  EXPECT_EQ(a.malicious, b.malicious);
  EXPECT_EQ(a.mixed_truth, b.mixed_truth);
}

TEST(Scenario, LogsHaveConfiguredSizes) {
  SimConfig cfg;
  cfg.benign_events = 400;
  cfg.mixed_events = 200;
  cfg.malicious_events = 100;
  const ScenarioLogs logs =
      generate_scenario(find_scenario("putty_codeinject"), cfg);
  EXPECT_EQ(logs.benign.events.size(), 400u);
  EXPECT_EQ(logs.mixed.events.size(), 200u);
  EXPECT_EQ(logs.malicious.events.size(), 100u);
  EXPECT_EQ(logs.benign.process_name, "putty.exe");
  EXPECT_EQ(logs.malicious.process_name, "pwddlg.exe");
}

TEST(Scenario, DifferentSeedsGiveDifferentLogs) {
  SimConfig a;
  a.benign_events = a.mixed_events = 200;
  a.malicious_events = 100;
  SimConfig b = a;
  b.seed = a.seed + 1;
  const ScenarioSpec& spec = find_scenario("winscp_reverse_https");
  EXPECT_NE(generate_scenario(spec, a).benign,
            generate_scenario(spec, b).benign);
}

TEST(Scenario, OfflineMixedLogHasGrownImageRecord) {
  SimConfig cfg;
  cfg.benign_events = cfg.mixed_events = 200;
  cfg.malicious_events = 100;
  const ScenarioLogs logs =
      generate_scenario(find_scenario("vim_reverse_tcp"), cfg);
  const auto find_app = [](const trace::RawLog& log) {
    for (const trace::RawModule& m : log.modules) {
      if (m.name == "vim.exe") return m.size;
    }
    return std::uint64_t{0};
  };
  EXPECT_GT(find_app(logs.mixed), find_app(logs.benign));
}

}  // namespace
}  // namespace leaps::sim
