// Property-based test suites (parameterized): structural invariants that
// must hold across all 21 scenarios, random seeds, and parameter sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "cfg/inference.h"
#include "cfg/weight.h"
#include "core/preprocess.h"
#include "ml/hcluster.h"
#include "ml/hmm.h"
#include "ml/logreg.h"
#include "ml/scaler.h"
#include "ml/svm.h"
#include "sim/address_space.h"
#include "sim/executor.h"
#include "sim/profiles.h"
#include "sim/scenario.h"
#include "trace/binary_log.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/rng.h"
#include "util/stats.h"

namespace leaps {
namespace {

// ================= Property: scenario invariants over all 21 datasets ====

class ScenarioProperty : public ::testing::TestWithParam<sim::ScenarioSpec> {
 protected:
  static sim::SimConfig config() {
    sim::SimConfig cfg;
    cfg.benign_events = 1200;
    cfg.mixed_events = 1000;
    cfg.malicious_events = 600;
    return cfg;
  }
};

TEST_P(ScenarioProperty, LogsParsePartitionAndCover) {
  const sim::ScenarioLogs logs = sim::generate_scenario(GetParam(), config());
  const trace::RawLogParser parser;
  for (const trace::RawLog* raw : {&logs.benign, &logs.mixed,
                                   &logs.malicious}) {
    const trace::ParsedTrace t = parser.parse_raw(*raw);
    const trace::PartitionedLog part =
        trace::StackPartitioner(t.log.process_name).partition(t.log);
    ASSERT_EQ(part.events.size(), raw->events.size());
    for (const trace::PartitionedEvent& e : part.events) {
      // Every event has both an application and a system side.
      EXPECT_FALSE(e.app_stack.empty());
      EXPECT_FALSE(e.system_stack.empty());
    }
  }
}

TEST_P(ScenarioProperty, BenignLogNeverTouchesPayloadAddresses) {
  const sim::ScenarioLogs logs = sim::generate_scenario(GetParam(), config());
  // Payload frames live past the original app image (offline) or at the
  // injection base (online); the benign log must contain neither.
  const std::uint64_t app_ceiling = sim::kAppImageBase + 0x10000000ULL;
  for (const trace::RawEvent& e : logs.benign.events) {
    for (const std::uint64_t addr : e.stack) {
      const bool in_injection_region =
          addr >= sim::kInjectionBase && addr < sim::kInjectionBase + 0x100000;
      EXPECT_FALSE(in_injection_region);
      if (addr >= sim::kAppImageBase && addr < app_ceiling) {
        // App frames in the benign log must be inside the *benign* image.
        const auto& mod = logs.benign.modules.front();
        EXPECT_TRUE(addr >= mod.base && addr < mod.base + mod.size);
      }
    }
  }
}

TEST_P(ScenarioProperty, MixedTruthIsConsistentWithPayloadFrames) {
  const sim::ScenarioLogs logs = sim::generate_scenario(GetParam(), config());
  ASSERT_EQ(logs.mixed_truth.size(), logs.mixed.events.size());
  const std::size_t malicious = static_cast<std::size_t>(
      std::count(logs.mixed_truth.begin(), logs.mixed_truth.end(), true));
  // The payload contributes a nontrivial share, below half the events
  // (benign cover-up) at default knobs… here ratio=0.5 gives about half.
  EXPECT_GT(malicious, logs.mixed.events.size() / 10);
  EXPECT_LT(malicious, logs.mixed.events.size() * 8 / 10);
}

TEST_P(ScenarioProperty, WeightAssessmentSeparatesTruth) {
  const sim::ScenarioLogs logs = sim::generate_scenario(GetParam(), config());
  const trace::RawLogParser parser;
  const auto split = [&parser](const trace::RawLog& raw) {
    const trace::ParsedTrace t = parser.parse_raw(raw);
    return trace::StackPartitioner(t.log.process_name).partition(t.log);
  };
  const trace::PartitionedLog benign = split(logs.benign);
  const trace::PartitionedLog mixed = split(logs.mixed);
  const cfg::CfgInference inference;
  const cfg::InferredCfg bcfg = inference.infer(benign);
  const cfg::InferredCfg mcfg = inference.infer(mixed);
  const cfg::WeightAssessor assessor(bcfg.graph);
  const auto benignity = assessor.assess(mcfg);

  util::RunningStats truly_benign;
  util::RunningStats truly_malicious;
  for (std::size_t i = 0; i < mixed.events.size(); ++i) {
    const auto it = benignity.find(mixed.events[i].seq);
    const double b = it == benignity.end() ? 1.0 : it->second;
    (logs.mixed_truth[i] ? truly_malicious : truly_benign).add(b);
  }
  // The core LEAPS mechanism, as a property across all 21 datasets.
  EXPECT_GT(truly_benign.mean(), truly_malicious.mean() + 0.5)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTable1Scenarios, ScenarioProperty,
    ::testing::ValuesIn(sim::table1_scenarios()),
    [](const ::testing::TestParamInfo<sim::ScenarioSpec>& info) {
      std::string name = info.param.name;
      std::replace(name.begin(), name.end(), '+', 'p');
      return name;
    });

// ====== Property: inferred explicit edges are true static call edges =====

class InferenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InferenceProperty, ExplicitEdgesAreGroundTruthCallEdges) {
  util::Rng rng(GetParam());
  const sim::Program app =
      sim::build_program(sim::app_spec("putty"), sim::kAppImageBase, rng);
  const sim::LibraryRegistry registry = sim::LibraryRegistry::standard();
  const sim::Executor ex(registry, {});
  const trace::RawLog raw = ex.run_benign(app, 2500, rng.fork(1));
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  const trace::PartitionedLog part =
      trace::StackPartitioner("putty.exe").partition(t.log);

  // Ground-truth static call edges by address.
  std::set<std::pair<std::uint64_t, std::uint64_t>> truth;
  for (const sim::ProgramFunction& f : app.functions) {
    for (const std::size_t callee : f.callees) {
      truth.emplace(f.address, app.functions[callee].address);
    }
  }
  // Every *explicit* path (adjacent frames within one walk) must be a true
  // call edge. We recompute explicit edges directly from the stacks.
  for (const trace::PartitionedEvent& e : part.events) {
    for (std::size_t i = 0; i + 1 < e.app_stack.size(); ++i) {
      EXPECT_TRUE(truth.count({e.app_stack[i], e.app_stack[i + 1]}))
          << "fabricated call edge";
    }
  }
  // And the inferred graph must contain a meaningful share of the truth.
  const cfg::InferredCfg inferred = cfg::CfgInference().infer(part);
  std::size_t hit = 0;
  for (const auto& edge : truth) {
    if (inferred.graph.has_edge(edge.first, edge.second)) ++hit;
  }
  // 2500 sampled events of a ~90-function program recover a sizable share
  // of the static call graph (the inferred CFG is incomplete by design).
  EXPECT_GT(hit, truth.size() / 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferenceProperty,
                         ::testing::Values(1, 2, 3, 42, 1337));

// ============== Property: ESTIMATE_WEIGHT bounds over random arrays ======

class EstimateWeightProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EstimateWeightProperty, InRangeWeightsLieInHalfToOne) {
  util::Rng rng(GetParam());
  std::vector<std::uint64_t> density;
  for (int i = 0; i < 100; ++i) {
    density.push_back(1000 + rng.next_below(100000));
  }
  std::sort(density.begin(), density.end());
  for (int probe = 0; probe < 500; ++probe) {
    const std::uint64_t addr =
        density.front() +
        rng.next_below(density.back() - density.front() + 1);
    const double w = cfg::WeightAssessor::estimate_weight(addr, density);
    // mindiff <= gap/2 → the estimate never drops below 1/2 in range.
    EXPECT_GE(w, 0.5);
    EXPECT_LE(w, 1.0);
  }
  // Exactly on a node → exactly 1.
  for (const std::uint64_t node : density) {
    EXPECT_DOUBLE_EQ(cfg::WeightAssessor::estimate_weight(node, density),
                     1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateWeightProperty,
                         ::testing::Values(7, 8, 9, 10));

// ================= Property: SVM dual feasibility across seeds ============

class SvmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SvmProperty, CoefficientsRespectBoxConstraints) {
  util::Rng rng(GetParam());
  ml::Dataset d;
  for (int i = 0; i < 60; ++i) {
    const int label = rng.next_bool(0.5) ? 1 : -1;
    d.add({rng.next_gaussian(), rng.next_gaussian(),
           static_cast<double>(label) * 0.4},
          label, 0.1 + 0.9 * rng.next_double());
  }
  ml::SvmParams p;
  p.lambda = 5.0;
  const ml::SvmModel m = ml::SvmTrainer(p).train(d);
  // Σ αᵢ yᵢ = 0 (the equality constraint) — coefficients are αy.
  double sum = 0.0;
  for (const double c : m.coefficients()) {
    sum += c;
    EXPECT_LE(std::abs(c), p.lambda + 1e-9);
  }
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST_P(SvmProperty, DualityGapCertifiesOptimality) {
  // Strong-duality certificate for the SMO solver: at the optimum the
  // primal objective ½||w||² + Σ λcᵢ ξᵢ and the dual Σαᵢ - ½||w||²
  // coincide; a small relative gap proves (approximate) optimality without
  // trusting any of the solver's internal bookkeeping.
  util::Rng rng(GetParam() + 500);
  ml::Dataset d;
  for (int i = 0; i < 80; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    d.add({rng.next_gaussian() + 0.7 * label, rng.next_gaussian()}, label,
          0.2 + 0.8 * rng.next_double());
  }
  ml::SvmParams p;
  p.lambda = 5.0;
  p.kernel.sigma2 = 2.0;
  p.epsilon = 1e-4;
  const ml::SvmModel m = ml::SvmTrainer(p).train(d);

  // ||w||² from the support-vector expansion.
  double w_norm2 = 0.0;
  for (std::size_t i = 0; i < m.support_vector_count(); ++i) {
    for (std::size_t j = 0; j < m.support_vector_count(); ++j) {
      w_norm2 += m.coefficients()[i] * m.coefficients()[j] *
                 p.kernel(m.support_vectors()[i], m.support_vectors()[j]);
    }
  }
  double hinge = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double margin =
        static_cast<double>(d.y[i]) * m.decision_value(d.X[i]);
    hinge += p.lambda * d.weight[i] * std::max(0.0, 1.0 - margin);
  }
  double alpha_sum = 0.0;
  for (const double c : m.coefficients()) alpha_sum += std::abs(c);

  const double primal = 0.5 * w_norm2 + hinge;
  const double dual = alpha_sum - 0.5 * w_norm2;
  EXPECT_GE(primal, dual - 1e-6);
  EXPECT_LT((primal - dual) / std::max(1.0, std::abs(primal)), 0.02)
      << "primal " << primal << " dual " << dual;
}

TEST_P(SvmProperty, PredictionIsSignOfDecision) {
  util::Rng rng(GetParam() + 100);
  ml::Dataset d;
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    d.add({rng.next_gaussian() + label, rng.next_gaussian()}, label);
  }
  const ml::SvmModel m = ml::SvmTrainer({}).train(d);
  for (int i = 0; i < 50; ++i) {
    const ml::FeatureVector x = {rng.next_gaussian() * 2,
                                 rng.next_gaussian() * 2};
    EXPECT_EQ(m.predict(x), m.decision_value(x) >= 0 ? 1 : -1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvmProperty,
                         ::testing::Values(11, 12, 13, 14, 15));

// ============ Property: HMM defines a probability distribution ===========

class HmmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HmmProperty, LikelihoodsSumToOneOverAllSequences) {
  // For any parameters, Σ over all |Σ|^L sequences of P(seq) must be 1 —
  // a total-probability check that exercises the forward algorithm's
  // scaling arithmetic end to end.
  util::Rng rng(GetParam());
  std::vector<ml::Sequence> data;
  for (int i = 0; i < 12; ++i) {
    ml::Sequence s;
    for (int t = 0; t < 8; ++t) {
      s.push_back(static_cast<int>(rng.next_below(3)));
    }
    data.push_back(std::move(s));
  }
  ml::HmmParams p;
  p.states = 3;
  p.max_iterations = 5;
  p.seed = GetParam();
  const ml::Hmm m =
      ml::Hmm::train(data, std::vector<double>(data.size(), 1.0), 3, p);

  const std::size_t alphabet = 3;
  const std::size_t length = 4;
  double total = 0.0;
  std::size_t count = 1;
  for (std::size_t i = 0; i < length; ++i) count *= alphabet;
  for (std::size_t code = 0; code < count; ++code) {
    ml::Sequence seq;
    std::size_t c = code;
    for (std::size_t i = 0; i < length; ++i) {
      seq.push_back(static_cast<int>(c % alphabet));
      c /= alphabet;
    }
    total += std::exp(m.log_likelihood(seq));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HmmProperty, ::testing::Values(41, 42, 43));

// ============ Property: logistic regression first-order optimality =======

class LogRegProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogRegProperty, GradientVanishesAtTheSolution) {
  util::Rng rng(GetParam());
  ml::Dataset d;
  for (int i = 0; i < 60; ++i) {
    const int label = rng.next_bool(0.5) ? 1 : -1;
    d.add({rng.next_gaussian() + 0.5 * label, rng.next_gaussian(),
           rng.next_double()},
          label, 0.1 + 0.9 * rng.next_double());
  }
  ml::LogRegParams p;
  p.l2 = 2.0;
  const ml::LogRegModel m = ml::LogRegTrainer(p).train(d);

  // ∇ = l2·w + Σ cᵢ (−yᵢ σ(−yᵢ zᵢ)) xᵢ must vanish (bias row too, without
  // the regularizer).
  const std::size_t dims = d.dims();
  std::vector<double> grad(dims + 1, 0.0);
  for (std::size_t j = 0; j < dims; ++j) grad[j] = p.l2 * m.weights()[j];
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double y = static_cast<double>(d.y[i]);
    const double z = m.decision_value(d.X[i]);
    const double sig = 1.0 / (1.0 + std::exp(y * z));  // σ(−y z)
    for (std::size_t j = 0; j < dims; ++j) {
      grad[j] -= d.weight[i] * y * sig * d.X[i][j];
    }
    grad[dims] -= d.weight[i] * y * sig;
  }
  for (std::size_t j = 0; j <= dims; ++j) {
    EXPECT_NEAR(grad[j], 0.0, 1e-5) << "component " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogRegProperty,
                         ::testing::Values(51, 52, 53, 54));

// ============ Property: binary log round-trips arbitrary content ==========

class BinaryLogProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryLogProperty, RandomLogsRoundTrip) {
  util::Rng rng(GetParam());
  trace::RawLog log;
  log.process_name = "rand.exe";
  const std::size_t modules = 1 + rng.next_below(5);
  std::uint64_t base = 0x1000;
  for (std::size_t i = 0; i < modules; ++i) {
    const std::uint64_t size = 0x1000 + rng.next_below(0x100000);
    log.modules.push_back({base, size, "m" + std::to_string(i)});
    base += size + rng.next_below(0x1000000);
  }
  const std::size_t events = rng.next_below(200);
  for (std::size_t i = 0; i < events; ++i) {
    trace::RawEvent e;
    e.seq = i;
    e.tid = static_cast<std::uint32_t>(rng.next_below(8));
    e.type = static_cast<trace::EventType>(
        rng.next_below(trace::kEventTypeCount));
    const std::size_t frames = rng.next_below(20);
    for (std::size_t f = 0; f < frames; ++f) e.stack.push_back(rng.next_u64());
    log.events.push_back(std::move(e));
  }
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  trace::write_raw_log_binary(log, buffer);
  const util::StatusOr<trace::RawLog> got = trace::read_raw_log_binary(buffer);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(*got, log);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryLogProperty,
                         ::testing::Values(61, 62, 63, 64, 65));

// ============ Property: clustering output well-formedness =================

class ClusterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterProperty, AssignmentsAreDenseAndLeafOrderIsPermutation) {
  util::Rng rng(GetParam());
  const std::size_t n = 3 + rng.next_below(40);
  std::vector<std::vector<double>> dm(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      dm[i][j] = dm[j][i] = rng.next_double();
    }
  }
  for (const double cut : {0.0, 0.2, 0.5, 0.9, 1.0}) {
    const auto res =
        ml::HierarchicalClusterer({.cut_distance = cut}).cluster(dm);
    ASSERT_EQ(res.assignment.size(), n);
    std::set<int> ids;
    for (const int id : res.assignment) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, res.cluster_count);
      ids.insert(id);
    }
    EXPECT_EQ(static_cast<int>(ids.size()), res.cluster_count);
    auto order = res.leaf_order;
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST_P(ClusterProperty, ClusterCountIsMonotoneInCut) {
  util::Rng rng(GetParam() + 50);
  const std::size_t n = 5 + rng.next_below(25);
  std::vector<std::vector<double>> dm(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      dm[i][j] = dm[j][i] = rng.next_double();
    }
  }
  int prev = static_cast<int>(n) + 1;
  for (const double cut : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const int count =
        ml::HierarchicalClusterer({.cut_distance = cut}).cluster(dm)
            .cluster_count;
    EXPECT_LE(count, prev);
    prev = count;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterProperty,
                         ::testing::Values(21, 22, 23, 24));

// ============ Property: window shapes across window sizes ================

class WindowProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowProperty, WindowCountAndDims) {
  const std::size_t window = GetParam();
  sim::SimConfig cfg;
  cfg.benign_events = 700;
  cfg.mixed_events = 500;
  cfg.malicious_events = 300;
  const sim::ScenarioLogs logs =
      sim::generate_scenario(sim::find_scenario("vim_reverse_tcp"), cfg);
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(logs.benign);
  const trace::PartitionedLog part =
      trace::StackPartitioner("vim.exe").partition(t.log);
  core::PreprocessOptions opt;
  opt.window = window;
  core::Preprocessor pre(opt);
  pre.fit({&part});
  const core::WindowedData wd = pre.make_windows(part);
  EXPECT_EQ(wd.X.size(), 700 / window);
  for (const auto& x : wd.X) EXPECT_EQ(x.size(), 3 * window);
  for (const auto& idx : wd.event_indices) EXPECT_EQ(idx.size(), window);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowProperty,
                         ::testing::Values(1, 2, 5, 10, 25));

// ============ Property: min-max scaling keeps training data in range =====

class ScalerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalerProperty, FittedDataMapsIntoUnitBox) {
  util::Rng rng(GetParam());
  std::vector<ml::FeatureVector> X;
  for (int i = 0; i < 50; ++i) {
    X.push_back({rng.next_gaussian() * 100, rng.next_double() * 5 - 10});
  }
  ml::MinMaxScaler s;
  s.fit(X);
  for (const auto& x : X) {
    for (const double v : s.transform(x)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalerProperty,
                         ::testing::Values(31, 32, 33));

}  // namespace
}  // namespace leaps
