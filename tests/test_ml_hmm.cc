// Unit tests for the discrete HMM (Baum-Welch / forward algorithm) and the
// LLR classifier — the Section VI-B extension.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/hmm.h"
#include "util/rng.h"

namespace leaps::ml {
namespace {

/// Samples sequences from a known 2-state generator for recovery tests.
std::vector<Sequence> sample_from(const std::vector<double>& initial,
                                  const std::vector<std::vector<double>>& a,
                                  const std::vector<std::vector<double>>& b,
                                  std::size_t count, std::size_t length,
                                  util::Rng& rng) {
  std::vector<Sequence> out;
  for (std::size_t i = 0; i < count; ++i) {
    Sequence seq;
    std::size_t state = rng.sample_weighted(initial);
    for (std::size_t t = 0; t < length; ++t) {
      seq.push_back(static_cast<int>(rng.sample_weighted(b[state])));
      state = rng.sample_weighted(a[state]);
    }
    out.push_back(std::move(seq));
  }
  return out;
}

TEST(Hmm, ForwardMatchesHandComputedExample) {
  // Model known in closed form: 1 state, 2 symbols, B = [0.25, 0.75].
  const std::vector<Sequence> data = {{0, 1, 1}};
  HmmParams p;
  p.states = 1;
  p.max_iterations = 50;
  p.smoothing = 0.0;
  const Hmm m = Hmm::train(data, {1.0}, 2, p);
  // ML solution emits exactly the empirical frequencies.
  EXPECT_NEAR(m.emission()[0][0], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(m.emission()[0][1], 2.0 / 3.0, 1e-6);
  // log P(0,1,1) = log(1/3) + 2 log(2/3).
  EXPECT_NEAR(m.log_likelihood({0, 1, 1}),
              std::log(1.0 / 3.0) + 2 * std::log(2.0 / 3.0), 1e-6);
}

TEST(Hmm, TrainingIncreasesDataLikelihood) {
  util::Rng rng(5);
  const std::vector<std::vector<double>> a = {{0.9, 0.1}, {0.2, 0.8}};
  const std::vector<std::vector<double>> b = {{0.8, 0.1, 0.1},
                                              {0.1, 0.1, 0.8}};
  const auto data = sample_from({0.5, 0.5}, a, b, 40, 25, rng);
  const std::vector<double> ones(data.size(), 1.0);
  HmmParams p1;
  p1.max_iterations = 1;
  HmmParams p30;
  p30.max_iterations = 30;
  const Hmm early = Hmm::train(data, ones, 3, p1);
  const Hmm late = Hmm::train(data, ones, 3, p30);
  double ll_early = 0.0;
  double ll_late = 0.0;
  for (const Sequence& s : data) {
    ll_early += early.log_likelihood(s);
    ll_late += late.log_likelihood(s);
  }
  EXPECT_GT(ll_late, ll_early);
}

TEST(Hmm, LearnsToSeparateTwoGenerators) {
  util::Rng rng(7);
  // Generator A favors symbols {0,1} with sticky states; B favors {2,3}.
  const auto data_a = sample_from(
      {1.0, 0.0}, {{0.9, 0.1}, {0.1, 0.9}},
      {{0.7, 0.25, 0.025, 0.025}, {0.25, 0.7, 0.025, 0.025}}, 30, 20, rng);
  const auto data_b = sample_from(
      {1.0, 0.0}, {{0.9, 0.1}, {0.1, 0.9}},
      {{0.025, 0.025, 0.7, 0.25}, {0.025, 0.025, 0.25, 0.7}}, 30, 20, rng);
  const std::vector<double> ones(30, 1.0);
  HmmParams p;
  p.states = 2;
  const Hmm ma = Hmm::train(data_a, ones, 4, p);
  const Hmm mb = Hmm::train(data_b, ones, 4, p);
  // Held-out sequences are explained better by their own model.
  util::Rng rng2(8);
  const auto test_a = sample_from(
      {1.0, 0.0}, {{0.9, 0.1}, {0.1, 0.9}},
      {{0.7, 0.25, 0.025, 0.025}, {0.25, 0.7, 0.025, 0.025}}, 10, 20, rng2);
  for (const Sequence& s : test_a) {
    EXPECT_GT(ma.log_likelihood(s), mb.log_likelihood(s));
  }
}

TEST(Hmm, ZeroWeightSequencesAreIgnored) {
  // Poison sequences of symbol 2 at weight 0 must not affect the model.
  std::vector<Sequence> data = {{0, 0, 1, 0}, {1, 0, 0, 1}};
  std::vector<double> weights = {1.0, 1.0};
  HmmParams p;
  p.states = 1;
  p.smoothing = 0.0;
  const Hmm clean = Hmm::train(data, weights, 3, p);
  data.push_back({2, 2, 2, 2});
  weights.push_back(0.0);
  const Hmm poisoned = Hmm::train(data, weights, 3, p);
  EXPECT_NEAR(clean.emission()[0][0], poisoned.emission()[0][0], 1e-9);
  EXPECT_NEAR(clean.emission()[0][2], poisoned.emission()[0][2], 1e-9);
}

TEST(Hmm, RowsAreDistributions) {
  util::Rng rng(9);
  const auto data = sample_from({0.5, 0.5}, {{0.5, 0.5}, {0.5, 0.5}},
                                {{0.5, 0.5}, {0.5, 0.5}}, 10, 15, rng);
  const std::vector<double> ones(data.size(), 1.0);
  const Hmm m = Hmm::train(data, ones, 2, {});
  double pi_sum = 0.0;
  for (const double v : m.initial()) {
    EXPECT_GT(v, 0.0);
    pi_sum += v;
  }
  EXPECT_NEAR(pi_sum, 1.0, 1e-9);
  for (const auto& row : m.transition()) {
    double sum = 0.0;
    for (const double v : row) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  for (const auto& row : m.emission()) {
    double sum = 0.0;
    for (const double v : row) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Hmm, RejectsMalformedInput) {
  EXPECT_THROW(Hmm::train({{0}}, {1.0, 1.0}, 2, {}),
               std::invalid_argument);                               // sizes
  EXPECT_THROW(Hmm::train({{5}}, {1.0}, 2, {}), std::invalid_argument);
  EXPECT_THROW(Hmm::train({{0}}, {0.0}, 2, {}), std::invalid_argument);
  EXPECT_THROW(Hmm::train({{0}}, {-1.0}, 2, {}), std::invalid_argument);
  EXPECT_THROW(Hmm::train({{0}}, {1.0}, 0, {}), std::invalid_argument);
}

TEST(Hmm, EmptySequenceScoresZero) {
  const Hmm m = Hmm::train({{0, 1}}, {1.0}, 2, {});
  EXPECT_DOUBLE_EQ(m.log_likelihood({}), 0.0);
}

TEST(Hmm, TrainingIsDeterministic) {
  util::Rng rng(11);
  const auto data = sample_from({1.0}, {{1.0}}, {{0.3, 0.7}}, 8, 12, rng);
  const std::vector<double> ones(data.size(), 1.0);
  const Hmm a = Hmm::train(data, ones, 2, {});
  const Hmm b = Hmm::train(data, ones, 2, {});
  EXPECT_EQ(a.emission(), b.emission());
  EXPECT_EQ(a.transition(), b.transition());
}

// ----------------------------------------------------- HmmClassifier ----

TEST(HmmClassifier, SeparatesDistinctSymbolDistributions) {
  util::Rng rng(13);
  std::vector<Sequence> benign, mixed, test_b, test_m;
  for (int i = 0; i < 40; ++i) {
    Sequence sb, sm, tb, tm;
    for (int t = 0; t < 10; ++t) {
      sb.push_back(static_cast<int>(rng.next_below(3)));      // symbols 0-2
      sm.push_back(3 + static_cast<int>(rng.next_below(3)));  // symbols 3-5
      tb.push_back(static_cast<int>(rng.next_below(3)));
      tm.push_back(3 + static_cast<int>(rng.next_below(3)));
    }
    benign.push_back(sb);
    mixed.push_back(sm);
    test_b.push_back(tb);
    test_m.push_back(tm);
  }
  HmmClassifier clf;
  clf.fit(benign, mixed, std::vector<double>(mixed.size(), 1.0), 6);
  ASSERT_TRUE(clf.fitted());
  std::size_t correct = 0;
  for (const auto& s : test_b) correct += clf.predict(s) == 1 ? 1 : 0;
  for (const auto& s : test_m) correct += clf.predict(s) == -1 ? 1 : 0;
  EXPECT_GT(correct, 76u);  // 95%+
}

TEST(HmmClassifier, WeightsSuppressMislabeledSequences) {
  util::Rng rng(17);
  std::vector<Sequence> benign, mixed;
  std::vector<double> weights;
  for (int i = 0; i < 30; ++i) {
    Sequence sb, sm;
    for (int t = 0; t < 10; ++t) {
      sb.push_back(static_cast<int>(rng.next_below(2)));
      sm.push_back(2 + static_cast<int>(rng.next_below(2)));
    }
    benign.push_back(sb);
    mixed.push_back(sm);
    weights.push_back(1.0);
    // Mislabeled benign sequence in the mixed set, CFG weight near zero.
    if (i < 20) {
      mixed.push_back(sb);
      weights.push_back(0.01);
    }
  }
  HmmClassifier weighted;
  weighted.fit(benign, mixed, weights, 4);
  HmmClassifier plain;
  plain.fit(benign, mixed, std::vector<double>(mixed.size(), 1.0), 4);

  // Benign-looking held-out sequences: the weighted classifier must not
  // call them malicious.
  util::Rng rng2(18);
  std::size_t weighted_ok = 0;
  std::size_t plain_ok = 0;
  for (int i = 0; i < 30; ++i) {
    Sequence s;
    for (int t = 0; t < 10; ++t) {
      s.push_back(static_cast<int>(rng2.next_below(2)));
    }
    weighted_ok += weighted.predict(s) == 1 ? 1 : 0;
    plain_ok += plain.predict(s) == 1 ? 1 : 0;
  }
  EXPECT_GE(weighted_ok, plain_ok);
  EXPECT_GT(weighted_ok, 25u);
}

TEST(HmmClassifier, UseBeforeFitThrows) {
  const HmmClassifier clf;
  EXPECT_THROW(clf.score({0, 1}), std::logic_error);
  EXPECT_THROW(clf.benign_model(), std::logic_error);
}

}  // namespace
}  // namespace leaps::ml
