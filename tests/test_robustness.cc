// Failure-injection and degenerate-input robustness: the library must fail
// loudly and specifically on unusable input, and keep working on unusual
// but valid input.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiment.h"
#include "core/pipeline.h"
#include "ml/svm.h"
#include "sim/address_space.h"
#include "sim/profiles.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"

namespace leaps {
namespace {

trace::PartitionedLog split(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

// A "mixed" log that is actually clean: CFG weights go to ~0 everywhere and
// WSVM training must refuse with an actionable error instead of fitting a
// meaningless boundary.
TEST(Robustness, CleanMixedLogRefusesToTrainAWeightedModel) {
  sim::SimConfig cfg;
  cfg.benign_events = 2000;
  cfg.mixed_events = 1500;
  cfg.malicious_events = 100;
  const sim::ScenarioSpec& spec = sim::find_scenario("vim_reverse_tcp");
  const sim::ScenarioLogs logs = sim::generate_scenario(spec, cfg);

  // Use a second clean run as the "mixed" input.
  sim::SimConfig clean_cfg = cfg;
  clean_cfg.seed = cfg.seed + 17;
  const sim::ScenarioLogs clean = sim::generate_scenario(spec, clean_cfg);

  const trace::PartitionedLog benign = split(logs.benign);
  const trace::PartitionedLog fake_mixed = split(clean.benign);
  const core::TrainingData td =
      core::LeapsPipeline().prepare(benign, fake_mixed);

  // Nearly all mixed windows carry ~zero weight…
  double total_weight = 0.0;
  for (const double w : td.mixed.weight) total_weight += w;
  EXPECT_LT(total_weight, 0.15 * static_cast<double>(td.mixed.size()));

  // …and if they are *all* zero, the trainer refuses loudly.
  ml::Dataset train = td.benign;
  ml::Dataset zeroed = td.mixed;
  std::fill(zeroed.weight.begin(), zeroed.weight.end(), 0.0);
  train.append(zeroed);
  try {
    ml::SvmTrainer({}).train(train);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("both classes"),
              std::string::npos);
  }
}

TEST(Robustness, TinyLogsFlowThroughThePipeline) {
  sim::SimConfig cfg;
  cfg.benign_events = 40;  // 4 windows
  cfg.mixed_events = 30;
  cfg.malicious_events = 20;
  const sim::ScenarioLogs logs =
      sim::generate_scenario(sim::find_scenario("putty_codeinject"), cfg);
  const trace::PartitionedLog benign = split(logs.benign);
  const trace::PartitionedLog mixed = split(logs.mixed);
  const core::TrainingData td = core::LeapsPipeline().prepare(benign, mixed);
  EXPECT_EQ(td.benign.size(), 4u);
  EXPECT_EQ(td.mixed.size(), 3u);
  td.benign.validate();
  td.mixed.validate();
}

TEST(Robustness, ExperimentRejectsTooFewWindows) {
  core::ExperimentOptions opt;
  opt.sim.benign_events = 30;  // 3 windows: unusable for a 50/50 split
  opt.sim.mixed_events = 30;
  opt.sim.malicious_events = 30;
  opt.runs = 1;
  const core::ExperimentRunner runner(opt);
  EXPECT_THROW(
      runner.run_scenario(sim::find_scenario("vim_reverse_tcp")),
      std::logic_error);
}

TEST(Robustness, ScanOnShortLogYieldsNoWindows) {
  sim::SimConfig cfg;
  cfg.benign_events = 500;
  cfg.mixed_events = 400;
  cfg.malicious_events = 100;
  const sim::ScenarioLogs logs =
      sim::generate_scenario(sim::find_scenario("vim_reverse_tcp"), cfg);
  const trace::PartitionedLog benign = split(logs.benign);
  const trace::PartitionedLog mixed = split(logs.mixed);
  const core::TrainingData td = core::LeapsPipeline().prepare(benign, mixed);
  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  const core::Detector detector(td.preprocessor, scaler,
                                ml::SvmTrainer({}).train(train));
  trace::PartitionedLog stub;
  stub.events.assign(benign.events.begin(), benign.events.begin() + 7);
  const auto result = detector.scan(stub);  // < one window
  EXPECT_TRUE(result.window_labels.empty());
  EXPECT_DOUBLE_EQ(result.malicious_fraction(), 0.0);
}

TEST(Robustness, DetectorHandlesForeignApplicationLogs) {
  // Scanning a different application's trace must not crash: unseen sets
  // map to nearest clusters and the verdicts are merely unreliable.
  sim::SimConfig cfg;
  cfg.benign_events = 1500;
  cfg.mixed_events = 1200;
  cfg.malicious_events = 100;
  const sim::ScenarioLogs vim =
      sim::generate_scenario(sim::find_scenario("vim_reverse_tcp"), cfg);
  const sim::ScenarioLogs chrome = sim::generate_scenario(
      sim::find_scenario("chrome_reverse_https"), cfg);
  const trace::PartitionedLog benign = split(vim.benign);
  const trace::PartitionedLog mixed = split(vim.mixed);
  const core::TrainingData td = core::LeapsPipeline().prepare(benign, mixed);
  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  const core::Detector detector(td.preprocessor, scaler,
                                ml::SvmTrainer({}).train(train));
  const auto result = detector.scan(split(chrome.benign));
  EXPECT_EQ(result.window_labels.size(), 150u);
}

TEST(Robustness, DeepStackEventsSurviveTheFullFrontEnd) {
  trace::RawLog log;
  log.process_name = "deep.exe";
  log.modules.push_back({0x140000000, 0x100000, "deep.exe"});
  log.modules.push_back({0x7FF800000000, 0x10000, "lib.dll"});
  log.symbols.push_back({0x7FF800001000, "F"});
  for (std::uint64_t seq = 0; seq < 20; ++seq) {
    trace::RawEvent e;
    e.seq = seq;
    e.tid = 1;
    e.type = trace::EventType::kFileRead;
    e.stack.push_back(0x7FF800001000);
    for (int d = 0; d < 500; ++d) {  // pathological stack depth
      e.stack.push_back(0x140000000 + 0x100 + (seq * 13 + d) % 256 * 0x80);
    }
    log.events.push_back(std::move(e));
  }
  const trace::PartitionedLog part = split(log);
  EXPECT_EQ(part.events[0].app_stack.size(), 500u);
  const cfg::InferredCfg inferred = cfg::CfgInference().infer(part);
  EXPECT_GT(inferred.graph.edge_count(), 0u);
  const cfg::WeightAssessor assessor(inferred.graph);
  EXPECT_NO_THROW(assessor.assess(inferred));
}

TEST(Robustness, ExecutorSurvivesMinimalStackDepth) {
  const sim::LibraryRegistry registry = sim::LibraryRegistry::standard();
  sim::ExecConfig cfg;
  cfg.max_stack_depth = 3;
  const sim::Executor ex(registry, cfg);
  util::Rng rng(1);
  const sim::Program app =
      sim::build_program(sim::app_spec("vim"), sim::kAppImageBase, rng);
  const trace::RawLog log = ex.run_benign(app, 300, util::Rng(2));
  EXPECT_EQ(log.events.size(), 300u);
}

TEST(Robustness, ScenarioRejectsAbsurdPayloadRatio) {
  sim::SimConfig cfg;
  cfg.exec.payload_ratio = 1.5;
  EXPECT_THROW(
      sim::generate_scenario(sim::find_scenario("vim_reverse_tcp"), cfg),
      std::logic_error);
}

}  // namespace
}  // namespace leaps
