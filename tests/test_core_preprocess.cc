// Unit tests for the Data Preprocessing Module: set extraction, clustering
// assignment, 3-tuples, and window coalescing.
#include <gtest/gtest.h>

#include "core/preprocess.h"

namespace leaps::core {
namespace {

trace::PartitionedEvent event_with_frames(
    trace::EventType type,
    std::vector<std::pair<std::string, std::string>> frames,
    std::uint64_t seq = 0) {
  trace::PartitionedEvent e;
  e.seq = seq;
  e.type = type;
  std::uint64_t addr = 0x1000;
  for (auto& [mod, fn] : frames) {
    trace::StackFrame f;
    f.address = addr;
    addr += 0x10;
    f.module = mod;
    f.function = fn;
    e.system_stack.push_back(std::move(f));
  }
  return e;
}

TEST(SetExtraction, LibSetIsSortedUniqueModules) {
  const auto e = event_with_frames(
      trace::EventType::kFileRead,
      {{"ntdll.dll", "NtReadFile"}, {"kernel32.dll", "ReadFile"},
       {"ntdll.dll", "NtClose"}});
  EXPECT_EQ(Preprocessor::lib_set(e),
            (ml::StringSet{"kernel32.dll", "ntdll.dll"}));
}

TEST(SetExtraction, FuncSetIsModuleQualified) {
  const auto e = event_with_frames(
      trace::EventType::kFileRead,
      {{"a.dll", "ReadFile"}, {"b.dll", "ReadFile"}});
  // Same exported name in two modules stays two distinct functions.
  EXPECT_EQ(Preprocessor::func_set(e),
            (ml::StringSet{"a.dll!ReadFile", "b.dll!ReadFile"}));
}

TEST(SetClusterer, ExactAndNearestAssignment) {
  SetClusterer c({.cut_distance = 0.4});
  c.fit({{"a", "b"}, {"a", "b", "c"}, {"x", "y"}, {"x", "y", "z"}});
  EXPECT_EQ(c.cluster_count(), 2);
  // Exact matches.
  EXPECT_EQ(c.assign({"a", "b"}), c.assign({"a", "b", "c"}));
  EXPECT_NE(c.assign({"a", "b"}), c.assign({"x", "y"}));
  // Unseen sets map to the nearest cluster.
  EXPECT_EQ(c.assign({"a", "b", "d"}), c.assign({"a", "b"}));
  EXPECT_EQ(c.assign({"x", "y", "w"}), c.assign({"x", "y"}));
}

TEST(SetClusterer, DeduplicatesBeforeClustering) {
  SetClusterer c;
  c.fit({{"a"}, {"a"}, {"a"}, {"b"}});
  EXPECT_EQ(c.unique_set_count(), 2u);
}

TEST(SetClusterer, UseBeforeFitThrows) {
  const SetClusterer c;
  EXPECT_THROW(c.assign({"a"}), std::logic_error);
}

class PreprocessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two event flavors: "file" events and "net" events.
    for (int i = 0; i < 6; ++i) {
      log_.events.push_back(event_with_frames(
          trace::EventType::kFileRead,
          {{"ntdll.dll", "NtReadFile"}, {"kernel32.dll", "ReadFile"}},
          static_cast<std::uint64_t>(i * 2)));
      log_.events.push_back(event_with_frames(
          trace::EventType::kNetworkSend,
          {{"ws2_32.dll", "send"}, {"mswsock.dll", "WSPSend"}},
          static_cast<std::uint64_t>(i * 2 + 1)));
    }
    options_.window = 4;
    pre_ = Preprocessor(options_);
    pre_.fit({&log_});
  }

  trace::PartitionedLog log_;
  PreprocessOptions options_;
  Preprocessor pre_{};
};

TEST_F(PreprocessorTest, TupleDiscretizesEventTypeAndClusters) {
  const EventTuple t = pre_.tuple(log_.events[0]);
  EXPECT_EQ(t.event_type, trace::event_type_id(trace::EventType::kFileRead));
  EXPECT_GE(t.lib_cluster, 0);
  EXPECT_GE(t.func_cluster, 0);
  // The two flavors land in different clusters.
  const EventTuple u = pre_.tuple(log_.events[1]);
  EXPECT_NE(t.func_cluster, u.func_cluster);
  EXPECT_NE(t.lib_cluster, u.lib_cluster);
}

TEST_F(PreprocessorTest, WindowsCoalesceTuples) {
  const WindowedData wd = pre_.make_windows(log_);
  // 12 events at window 4 → 3 windows of 12 dims.
  ASSERT_EQ(wd.X.size(), 3u);
  ASSERT_EQ(wd.event_indices.size(), 3u);
  for (const auto& x : wd.X) EXPECT_EQ(x.size(), 12u);
  // Provenance covers consecutive indices without overlap.
  EXPECT_EQ(wd.event_indices[0],
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(wd.event_indices[2],
            (std::vector<std::size_t>{8, 9, 10, 11}));
}

TEST_F(PreprocessorTest, WindowFeatureLayoutIsTripletPerEvent) {
  const WindowedData wd = pre_.make_windows(log_);
  const EventTuple t0 = pre_.tuple(log_.events[0]);
  EXPECT_DOUBLE_EQ(wd.X[0][0], static_cast<double>(t0.event_type));
  EXPECT_DOUBLE_EQ(wd.X[0][1], static_cast<double>(t0.lib_cluster));
  EXPECT_DOUBLE_EQ(wd.X[0][2], static_cast<double>(t0.func_cluster));
  const EventTuple t1 = pre_.tuple(log_.events[1]);
  EXPECT_DOUBLE_EQ(wd.X[0][3], static_cast<double>(t1.event_type));
}

TEST_F(PreprocessorTest, TrailingPartialWindowIsDropped) {
  trace::PartitionedLog longer = log_;
  longer.events.push_back(log_.events[0]);  // 13 events now
  EXPECT_EQ(pre_.make_windows(longer).X.size(), 3u);
}

TEST_F(PreprocessorTest, VocabularyAssignsDenseSymbols) {
  TupleVocabulary vocab;
  vocab.fit({&log_}, pre_);
  ASSERT_TRUE(vocab.fitted());
  // Two event flavors → two known symbols (+ the reserved unknown 0).
  EXPECT_EQ(vocab.size(), 3u);
  const int file_sym = vocab.symbol(pre_.tuple(log_.events[0]));
  const int net_sym = vocab.symbol(pre_.tuple(log_.events[1]));
  EXPECT_GT(file_sym, 0);
  EXPECT_GT(net_sym, 0);
  EXPECT_NE(file_sym, net_sym);
  // Unseen tuples map to the unknown symbol.
  EventTuple alien;
  alien.event_type = 99;
  EXPECT_EQ(vocab.symbol(alien), 0);
}

TEST_F(PreprocessorTest, VocabularyEncodesWindows) {
  TupleVocabulary vocab;
  vocab.fit({&log_}, pre_);
  const WindowedData wd = pre_.make_windows(log_);
  const std::vector<int> seq =
      vocab.encode(log_, wd.event_indices[0], pre_);
  ASSERT_EQ(seq.size(), 4u);
  // Alternating flavors alternate symbols.
  EXPECT_EQ(seq[0], seq[2]);
  EXPECT_EQ(seq[1], seq[3]);
  EXPECT_NE(seq[0], seq[1]);
}

TEST(TupleVocabulary, UseBeforeFitThrows) {
  const TupleVocabulary vocab;
  trace::PartitionedLog log;
  log.events.push_back({});
  const Preprocessor pre;
  EXPECT_THROW(vocab.encode(log, {0}, pre), std::logic_error);
}

TEST(Preprocessor, UseBeforeFitThrows) {
  const Preprocessor p;
  trace::PartitionedLog log;
  EXPECT_THROW(p.make_windows(log), std::logic_error);
  EXPECT_FALSE(p.fitted());
}

TEST(Preprocessor, FitRequiresLogs) {
  Preprocessor p;
  EXPECT_THROW(p.fit({}), std::logic_error);
}

}  // namespace
}  // namespace leaps::core
