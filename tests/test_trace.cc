// Unit tests for the trace module: event model, module map, raw-log
// serialization, the Raw Log Parser, and the Stack Partition Module.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/event.h"
#include "trace/module_map.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "trace/raw_log.h"
#include "util/status.h"

namespace leaps::trace {
namespace {

// --------------------------------------------------------------- event ----

TEST(EventType, NamesRoundTrip) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto t = static_cast<EventType>(i);
    const auto back = event_type_from_name(event_type_name(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(event_type_from_name("NoSuchEvent").has_value());
}

TEST(EventType, IdsAreDense) {
  EXPECT_EQ(event_type_id(EventType::kSysCallEnter), 0);
  EXPECT_EQ(event_type_id(EventType::kUiMessage),
            static_cast<int>(kEventTypeCount) - 1);
}

// ----------------------------------------------------------- ModuleMap ----

ModuleMap two_module_map() {
  ModuleMap m;
  m.add_module({"app.exe", 0x1000, 0x1000});
  m.add_module({"lib.dll", 0x10000, 0x1000});
  m.add_symbol(0x10000, "f0");
  m.add_symbol(0x10100, "f1");
  return m;
}

TEST(ModuleMap, FindModuleByRange) {
  const ModuleMap m = two_module_map();
  ASSERT_NE(m.find_module(0x1000), nullptr);
  EXPECT_EQ(m.find_module(0x1000)->name, "app.exe");
  EXPECT_EQ(m.find_module(0x1FFF)->name, "app.exe");
  EXPECT_EQ(m.find_module(0x2000), nullptr);  // one past the end
  EXPECT_EQ(m.find_module(0xFFF), nullptr);   // one before the start
  EXPECT_EQ(m.find_module(0x10800)->name, "lib.dll");
}

TEST(ModuleMap, ResolveNearestPrecedingSymbol) {
  const ModuleMap m = two_module_map();
  EXPECT_EQ(m.resolve(0x10000).function, "f0");
  EXPECT_EQ(m.resolve(0x100FF).function, "f0");
  EXPECT_EQ(m.resolve(0x10100).function, "f1");
  EXPECT_EQ(m.resolve(0x10FFF).function, "f1");
  // Mapped module without any symbol at/below the address.
  EXPECT_EQ(m.resolve(0x1500).function, "");
  EXPECT_EQ(m.resolve(0x1500).module->name, "app.exe");
  // Unmapped address.
  EXPECT_EQ(m.resolve(0x99999999).module, nullptr);
}

TEST(ModuleMap, RejectsOverlapsAndStraySymbols) {
  ModuleMap m = two_module_map();
  EXPECT_THROW(m.add_module({"bad.dll", 0x1800, 0x1000}), std::logic_error);
  EXPECT_THROW(m.add_module({"bad.dll", 0x800, 0x1000}), std::logic_error);
  EXPECT_THROW(m.add_module({"zero.dll", 0x50000, 0}), std::logic_error);
  EXPECT_THROW(m.add_symbol(0x99999999, "ghost"), std::logic_error);
}

// -------------------------------------------------- raw log + parser ----

RawLog make_raw_log() {
  RawLog log;
  log.process_name = "app.exe";
  log.modules.push_back({0x140000000, 0x10000, "app.exe"});
  log.modules.push_back({0x7FF800000000, 0x10000, "lib.dll"});
  log.symbols.push_back({0x7FF800001000, "LibFunc"});
  RawEvent e1;
  e1.seq = 0;
  e1.tid = 1;
  e1.type = EventType::kFileRead;
  e1.stack = {0x7FF800001010, 0x140001000, 0x140000100};
  RawEvent e2;
  e2.seq = 1;
  e2.tid = 1;
  e2.type = EventType::kNetworkSend;
  e2.stack = {0x7FF800001020, 0x20000000100, 0x140000100};  // unmapped frame
  log.events = {e1, e2};
  return log;
}

TEST(RawLogParser, TextRoundTripMatchesInMemoryParse) {
  const RawLog raw = make_raw_log();
  const RawLogParser parser;
  const ParsedTrace from_text =
      parser.parse_string(raw_log_to_string(raw)).value();
  const ParsedTrace from_raw = parser.parse_raw(raw);
  EXPECT_EQ(from_text.log.process_name, from_raw.log.process_name);
  ASSERT_EQ(from_text.log.events.size(), from_raw.log.events.size());
  for (std::size_t i = 0; i < from_text.log.events.size(); ++i) {
    EXPECT_EQ(from_text.log.events[i], from_raw.log.events[i]);
  }
}

TEST(RawLogParser, SymbolicatesFrames) {
  const ParsedTrace t = RawLogParser().parse_raw(make_raw_log());
  ASSERT_EQ(t.log.events.size(), 2u);
  const Event& e1 = t.log.events[0];
  ASSERT_EQ(e1.stack.size(), 3u);
  EXPECT_EQ(e1.stack[0].module, "lib.dll");
  EXPECT_EQ(e1.stack[0].function, "LibFunc");
  EXPECT_EQ(e1.stack[1].module, "app.exe");
  EXPECT_EQ(e1.stack[1].function, "");  // app image ships no symbols
  // The injected (unmapped) frame resolves to nothing.
  const Event& e2 = t.log.events[1];
  EXPECT_EQ(e2.stack[1].module, "");
  EXPECT_EQ(e2.stack[1].function, "");
}

TEST(RawLogParser, PreservesEventMetadata) {
  const ParsedTrace t = RawLogParser().parse_raw(make_raw_log());
  EXPECT_EQ(t.log.events[0].seq, 0u);
  EXPECT_EQ(t.log.events[0].type, EventType::kFileRead);
  EXPECT_EQ(t.log.events[1].type, EventType::kNetworkSend);
  EXPECT_EQ(t.log.events[1].tid, 1u);
}

TEST(RawLogParser, IgnoresCommentsAndBlankLines) {
  const std::string text =
      "# comment\n\nPROCESS a.exe\n# another\nEVENT 0 1 FileRead\n";
  const ParsedTrace t = RawLogParser().parse_string(text).value();
  EXPECT_EQ(t.log.process_name, "a.exe");
  ASSERT_EQ(t.log.events.size(), 1u);
  EXPECT_TRUE(t.log.events[0].stack.empty());
}

TEST(RawLogParser, ReportsErrorsWithLineNumbers) {
  const RawLogParser p;
  const auto expect_error_at = [&p](const std::string& text,
                                    std::size_t line) {
    const util::StatusOr<ParsedTrace> got = p.parse_string(text);
    ASSERT_FALSE(got.ok()) << "expected kCorruptInput for: " << text;
    EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput) << text;
    EXPECT_NE(got.status().message().find(
                  "line " + std::to_string(line) + ":"),
              std::string::npos)
        << got.status().message();
  };
  expect_error_at("STACK 0x10\n", 1);                       // stack w/o event
  expect_error_at("PROCESS a\nEVENT 0 1 NoSuchType\n", 2);  // bad type
  expect_error_at("EVENT zz 1 FileRead\n", 1);              // bad decimal
  expect_error_at("MODULE 0x0 0x10 m\nSYMBOL 0x99 f\n", 2);  // stray symbol
  expect_error_at("FROB x\n", 1);                           // unknown record
  expect_error_at("MODULE 0x10 xyz m\n", 1);                // bad hex
  expect_error_at("EVENT 0 1 FileRead extra\n", 1);         // arity
}

TEST(RawLogParser, RejectsOverlappingModules) {
  const util::StatusOr<ParsedTrace> got = RawLogParser().parse_string(
      "MODULE 0x1000 0x1000 a\nMODULE 0x1800 0x1000 b\n");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput);
}

// ----------------------------------------------------- StackPartition ----

TEST(StackPartitioner, SplitsAppAndSystemFrames) {
  const ParsedTrace t = RawLogParser().parse_raw(make_raw_log());
  const StackPartitioner part("app.exe");
  const PartitionedEvent pe = part.partition(t.log.events[0]);
  EXPECT_EQ(pe.seq, 0u);
  EXPECT_EQ(pe.type, EventType::kFileRead);
  ASSERT_EQ(pe.system_stack.size(), 1u);
  EXPECT_EQ(pe.system_stack[0].module, "lib.dll");
  // Application walk is outermost-first.
  ASSERT_EQ(pe.app_stack.size(), 2u);
  EXPECT_EQ(pe.app_stack[0], 0x140000100u);
  EXPECT_EQ(pe.app_stack[1], 0x140001000u);
}

TEST(StackPartitioner, UnmappedFramesCountAsApplication) {
  const ParsedTrace t = RawLogParser().parse_raw(make_raw_log());
  const PartitionedEvent pe =
      StackPartitioner("app.exe").partition(t.log.events[1]);
  // The injected 0x20000000100 frame has no module record: application side.
  ASSERT_EQ(pe.app_stack.size(), 2u);
  EXPECT_EQ(pe.app_stack[1], 0x20000000100u);
  EXPECT_EQ(pe.system_stack.size(), 1u);
}

TEST(StackPartitioner, WholeLogPartition) {
  const ParsedTrace t = RawLogParser().parse_raw(make_raw_log());
  const PartitionedLog pl = StackPartitioner("app.exe").partition(t.log);
  EXPECT_EQ(pl.process_name, "app.exe");
  EXPECT_EQ(pl.events.size(), 2u);
}

// ------------------------------------------------------- serialization ----

TEST(RawLog, WriterEmitsExpectedRecords) {
  std::ostringstream os;
  write_raw_log(make_raw_log(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("PROCESS app.exe"), std::string::npos);
  EXPECT_NE(text.find("MODULE 0x0000000140000000"), std::string::npos);
  EXPECT_NE(text.find("SYMBOL 0x00007ff800001000 LibFunc"),
            std::string::npos);
  EXPECT_NE(text.find("EVENT 0 1 FileRead"), std::string::npos);
  EXPECT_NE(text.find("STACK 0x00007ff800001010"), std::string::npos);
}

}  // namespace
}  // namespace leaps::trace
