// Unit tests for Eqn. 1 set dissimilarity and UPGMA hierarchical clustering.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ml/distance.h"
#include "ml/hcluster.h"

namespace leaps::ml {
namespace {

// ----------------------------------------------------------- distance ----

TEST(SetDissimilarity, MatchesEqnOne) {
  const StringSet a = {"a", "b", "c"};
  const StringSet b = {"b", "c", "d"};
  // |∩| = 2, |∪| = 4 → 1 - 2/4 = 0.5.
  EXPECT_DOUBLE_EQ(set_dissimilarity(a, b), 0.5);
}

TEST(SetDissimilarity, IdenticalSetsAreDistanceZero) {
  const StringSet a = {"x", "y"};
  EXPECT_DOUBLE_EQ(set_dissimilarity(a, a), 0.0);
  EXPECT_DOUBLE_EQ(set_dissimilarity({}, {}), 0.0);
}

TEST(SetDissimilarity, DisjointSetsAreDistanceOne) {
  EXPECT_DOUBLE_EQ(set_dissimilarity({"a"}, {"b"}), 1.0);
  EXPECT_DOUBLE_EQ(set_dissimilarity({}, {"b"}), 1.0);
}

TEST(SetDissimilarity, SubsetDistance) {
  // |∩| = 1, |∪| = 3 → 2/3.
  EXPECT_NEAR(set_dissimilarity({"a"}, {"a", "b", "c"}), 2.0 / 3.0, 1e-12);
}

TEST(JaccardMatrix, SymmetricZeroDiagonal) {
  const std::vector<StringSet> sets = {{"a"}, {"a", "b"}, {"c"}};
  const auto dm = jaccard_distance_matrix(sets);
  ASSERT_EQ(dm.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(dm[i][i], 0.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(dm[i][j], dm[j][i]);
  }
  EXPECT_DOUBLE_EQ(dm[0][1], 0.5);
  EXPECT_DOUBLE_EQ(dm[0][2], 1.0);
}

// ----------------------------------------------------------- hcluster ----

std::vector<std::vector<double>> matrix_from(
    std::initializer_list<std::initializer_list<double>> rows) {
  std::vector<std::vector<double>> m;
  for (const auto& r : rows) m.emplace_back(r);
  return m;
}

TEST(HierarchicalClusterer, TwoObviousGroups) {
  // Items {0,1} close, {2,3} close, groups far apart.
  const auto dm = matrix_from({{0.0, 0.1, 0.9, 0.95},
                               {0.1, 0.0, 0.92, 0.9},
                               {0.9, 0.92, 0.0, 0.05},
                               {0.95, 0.9, 0.05, 0.0}});
  const auto res = HierarchicalClusterer({.cut_distance = 0.5}).cluster(dm);
  EXPECT_EQ(res.cluster_count, 2);
  EXPECT_EQ(res.assignment[0], res.assignment[1]);
  EXPECT_EQ(res.assignment[2], res.assignment[3]);
  EXPECT_NE(res.assignment[0], res.assignment[2]);
}

TEST(HierarchicalClusterer, CutZeroKeepsAllSeparate) {
  const auto dm = matrix_from(
      {{0.0, 0.5, 0.5}, {0.5, 0.0, 0.5}, {0.5, 0.5, 0.0}});
  const auto res = HierarchicalClusterer({.cut_distance = 0.0}).cluster(dm);
  EXPECT_EQ(res.cluster_count, 3);
}

TEST(HierarchicalClusterer, LargeCutMergesEverything) {
  const auto dm = matrix_from(
      {{0.0, 0.5, 0.9}, {0.5, 0.0, 0.7}, {0.9, 0.7, 0.0}});
  const auto res = HierarchicalClusterer({.cut_distance = 1.0}).cluster(dm);
  EXPECT_EQ(res.cluster_count, 1);
}

TEST(HierarchicalClusterer, MaxClustersBoundForcesMerging) {
  const auto dm = matrix_from({{0.0, 0.9, 0.9, 0.9},
                               {0.9, 0.0, 0.9, 0.9},
                               {0.9, 0.9, 0.0, 0.9},
                               {0.9, 0.9, 0.9, 0.0}});
  // Cut alone would keep 4 clusters; the bound forces 2.
  const auto res =
      HierarchicalClusterer({.cut_distance = 0.1, .max_clusters = 2})
          .cluster(dm);
  EXPECT_EQ(res.cluster_count, 2);
}

TEST(HierarchicalClusterer, SingletonInput) {
  const auto res = HierarchicalClusterer().cluster(matrix_from({{0.0}}));
  EXPECT_EQ(res.cluster_count, 1);
  EXPECT_EQ(res.assignment, (std::vector<int>{0}));
  EXPECT_EQ(res.leaf_order, (std::vector<std::size_t>{0}));
}

TEST(HierarchicalClusterer, IdenticalItemsMergeFirst) {
  const auto dm = matrix_from(
      {{0.0, 0.0, 0.8}, {0.0, 0.0, 0.8}, {0.8, 0.8, 0.0}});
  const auto res = HierarchicalClusterer({.cut_distance = 0.4}).cluster(dm);
  EXPECT_EQ(res.cluster_count, 2);
  EXPECT_EQ(res.assignment[0], res.assignment[1]);
}

TEST(HierarchicalClusterer, LeafOrderIsAPermutation) {
  const auto dm = matrix_from({{0.0, 0.3, 0.6, 0.9},
                               {0.3, 0.0, 0.5, 0.8},
                               {0.6, 0.5, 0.0, 0.4},
                               {0.9, 0.8, 0.4, 0.0}});
  const auto res = HierarchicalClusterer().cluster(dm);
  auto order = res.leaf_order;
  std::sort(order.begin(), order.end());
  std::vector<std::size_t> expect(4);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(HierarchicalClusterer, ClusterIdsAreDenseAndLeafOrdered) {
  const auto dm = matrix_from({{0.0, 0.05, 0.9, 0.9},
                               {0.05, 0.0, 0.9, 0.9},
                               {0.9, 0.9, 0.0, 0.05},
                               {0.9, 0.9, 0.05, 0.0}});
  const auto res = HierarchicalClusterer({.cut_distance = 0.5}).cluster(dm);
  // Ids must be 0..cluster_count-1, numbered by first leaf appearance.
  std::vector<int> seen_order;
  for (const std::size_t leaf : res.leaf_order) {
    const int id = res.assignment[leaf];
    if (std::find(seen_order.begin(), seen_order.end(), id) ==
        seen_order.end()) {
      seen_order.push_back(id);
    }
  }
  for (int i = 0; i < res.cluster_count; ++i) EXPECT_EQ(seen_order[i], i);
}

TEST(HierarchicalClusterer, UpgmaUsesAverageLinkage) {
  // Three points on a line: 0 at x=0, 1 at x=1, 2 at x=2.4.
  // Single linkage would merge {0,1} then attach 2 at distance 1.4;
  // UPGMA attaches 2 at the *average* distance (2.4 + 1.4)/2 = 1.9.
  const auto dm = matrix_from(
      {{0.0, 1.0, 2.4}, {1.0, 0.0, 1.4}, {2.4, 1.4, 0.0}});
  // Cut at 1.5: single linkage would merge everything; UPGMA must keep 2
  // clusters because the second merge happens at 1.9 > 1.5.
  const auto res = HierarchicalClusterer({.cut_distance = 1.5}).cluster(dm);
  EXPECT_EQ(res.cluster_count, 2);
  EXPECT_EQ(res.assignment[0], res.assignment[1]);
  EXPECT_NE(res.assignment[0], res.assignment[2]);
}

TEST(HierarchicalClusterer, RejectsMalformedMatrix) {
  HierarchicalClusterer c;
  EXPECT_THROW(c.cluster(std::vector<std::vector<double>>{}),
               std::logic_error);
  EXPECT_THROW(c.cluster({{0.0, 1.0}}), std::logic_error);  // not square
}

}  // namespace
}  // namespace leaps::ml
