// Tests for the parallel training substrate (util/parallel.h) and the
// fast paths built on it: flat Gram matrix, interned condensed Jaccard,
// cached-NN UPGMA, and parallel cross-validation. The contract under test
// throughout: results are bit-identical for every thread count, and the
// fast paths agree with the straightforward reference implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ml/cross_validation.h"
#include "ml/distance.h"
#include "ml/hcluster.h"
#include "ml/kernel.h"
#include "ml/svm.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace leaps {
namespace {

// ========================= parallel_for mechanics ========================

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::Parallel::set_threads(threads);
    std::vector<std::atomic<int>> hits(1001);
    for (auto& h : hits) h.store(0);
    util::parallel_for(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelFor, EmptyAndSingleChunkRangesRunInline) {
  util::Parallel::set_threads(4);
  int calls = 0;
  util::parallel_for(5, 5, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  util::parallel_for(0, 3, 8, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 3u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, ChunkLayoutIndependentOfThreadCount) {
  // The (begin, end) pairs handed to the body depend only on the grain —
  // never on how many workers happen to exist.
  const auto layout = [](std::size_t threads) {
    util::Parallel::set_threads(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    util::parallel_for(3, 100, 9, [&](std::size_t b, std::size_t e) {
      const std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(b, e);
    });
    return chunks;
  };
  EXPECT_EQ(layout(1), layout(8));
}

TEST(ParallelFor, RethrowsFirstFailingChunk) {
  util::Parallel::set_threads(4);
  try {
    util::parallel_for(0, 100, 10, [&](std::size_t b, std::size_t) {
      throw std::runtime_error("boom@" + std::to_string(b));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    // Every chunk throws; the lowest-indexed chunk's exception wins,
    // regardless of scheduling.
    EXPECT_STREQ(e.what(), "boom@0");
  }
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  util::Parallel::set_threads(4);
  std::vector<int> out(20 * 20, 0);
  util::parallel_for(0, 20, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t i = ob; i < oe; ++i) {
      util::parallel_for(0, 20, 1, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t j = ib; j < ie; ++j) {
          out[i * 20 + j] = static_cast<int>(i + j);
        }
      });
    }
  });
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      ASSERT_EQ(out[i * 20 + j], static_cast<int>(i + j));
    }
  }
}

TEST(ParallelFor, SetThreadsZeroResolvesAutomaticDefault) {
  util::Parallel::set_threads(0);
  EXPECT_GE(util::Parallel::threads(), 1u);
}

// ========================= CondensedMatrix layout ========================

TEST(CondensedMatrix, IndexMatchesRowMajorUpperTriangle) {
  const std::size_t n = 7;
  ml::CondensedMatrix dm(n);
  std::size_t flat = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ASSERT_EQ(dm.index(i, j), flat);
      ASSERT_EQ(dm.index(j, i), flat);  // unordered pair
      ++flat;
    }
  }
  EXPECT_EQ(flat, n * (n - 1) / 2);
  EXPECT_EQ(dm.data().size(), flat);

  // row(i) points at the i/(i+1) entry; the row is contiguous.
  dm.ref(2, 3) = 0.25;
  dm.ref(2, 6) = 0.75;
  EXPECT_EQ(dm.row(2)[0], 0.25);
  EXPECT_EQ(dm.row(2)[3], 0.75);
  EXPECT_EQ(dm.at(3, 2), 0.25);
  EXPECT_EQ(dm.at(4, 4), 0.0);  // diagonal
}

// ===================== GramMatrix vs direct evaluation ===================

std::vector<std::vector<double>> random_rows(std::size_t n, std::size_t d,
                                             util::Rng& rng) {
  std::vector<std::vector<double>> X(n, std::vector<double>(d));
  for (auto& row : X) {
    for (double& v : row) v = 4.0 * rng.next_double() - 2.0;
  }
  return X;
}

TEST(GramMatrix, AgreesWithKernelParamsToTwelveDecimals) {
  util::Rng rng(1234);
  const auto X = random_rows(31, 5, rng);
  for (const ml::KernelType type :
       {ml::KernelType::kGaussian, ml::KernelType::kLinear,
        ml::KernelType::kPolynomial}) {
    ml::KernelParams kernel;
    kernel.type = type;
    kernel.sigma2 = 3.0;
    const ml::GramMatrix K(X, kernel);
    ASSERT_EQ(K.size(), X.size());
    for (std::size_t i = 0; i < X.size(); ++i) {
      for (std::size_t j = 0; j < X.size(); ++j) {
        const double ref = kernel(X[i], X[j]);
        const double tol = 1e-12 * std::max(1.0, std::fabs(ref));
        ASSERT_NEAR(K(i, j), ref, tol)
            << "kernel " << static_cast<int>(type) << " at (" << i << ","
            << j << ")";
        ASSERT_EQ(K(i, j), K(j, i));  // exactly symmetric
      }
    }
  }
}

TEST(GramMatrix, BitIdenticalAcrossThreadCounts) {
  util::Rng rng(99);
  const auto X = random_rows(64, 6, rng);
  ml::KernelParams kernel;  // Gaussian
  kernel.sigma2 = 8.0;
  util::Parallel::set_threads(1);
  const ml::GramMatrix k1(X, kernel);
  util::Parallel::set_threads(8);
  const ml::GramMatrix k8(X, kernel);
  for (std::size_t i = 0; i < X.size(); ++i) {
    for (std::size_t j = 0; j < X.size(); ++j) {
      ASSERT_EQ(k1(i, j), k8(i, j));
    }
  }
  EXPECT_EQ(k1(0, 0), 1.0);  // Gaussian diagonal is exact
}

// ================== condensed Jaccard vs per-pair Eqn. 1 =================

std::vector<ml::StringSet> random_string_sets(std::size_t n,
                                              util::Rng& rng) {
  // A small token alphabet on purpose: identical sets and tied distances
  // are common, like real lib/func sets.
  const std::vector<std::string> alphabet = {
      "ntdll", "kernel32", "kernelbase", "user32", "advapi32",
      "ws2_32", "crypt32", "gdi32"};
  std::vector<ml::StringSet> sets(n);
  for (auto& s : sets) {
    for (const std::string& tok : alphabet) {
      if (rng.next_bool(0.4)) s.push_back(tok);
    }
    if (s.empty()) s.push_back(alphabet[rng.next_below(alphabet.size())]);
    std::sort(s.begin(), s.end());
  }
  return sets;
}

TEST(JaccardCondensed, MatchesSetDissimilarityBitwise) {
  util::Rng rng(7);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    util::Parallel::set_threads(threads);
    const auto sets = random_string_sets(40, rng);
    const ml::CondensedMatrix dm = ml::jaccard_condensed(sets);
    ASSERT_EQ(dm.n(), sets.size());
    for (std::size_t i = 0; i < sets.size(); ++i) {
      for (std::size_t j = 0; j < sets.size(); ++j) {
        ASSERT_EQ(dm.at(i, j), ml::set_dissimilarity(sets[i], sets[j]))
            << "pair (" << i << "," << j << ")";
      }
    }
  }
}

// ==================== NN-chain UPGMA vs the reference ====================

void expect_same_result(const ml::ClusterResult& a,
                        const ml::ClusterResult& b, const char* what) {
  EXPECT_EQ(a.cluster_count, b.cluster_count) << what;
  EXPECT_EQ(a.assignment, b.assignment) << what;
  EXPECT_EQ(a.leaf_order, b.leaf_order) << what;
  ASSERT_EQ(a.positions.size(), b.positions.size()) << what;
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]) << what << " position " << i;
  }
}

class ClusterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ClusterEquivalence, FastPathMatchesReferenceOnContinuousDistances) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + rng.next_below(60);
  std::vector<std::vector<double>> dm(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      dm[i][j] = dm[j][i] = 0.05 + 0.95 * rng.next_double();
    }
  }
  for (const double cut : {0.2, 0.5, 2.0}) {
    const ml::HierarchicalClusterer c({.cut_distance = cut});
    expect_same_result(c.cluster(dm), c.cluster_reference(dm), "random dm");
  }
  // max_clusters bound instead of the cut.
  const ml::HierarchicalClusterer c(
      {.cut_distance = 0.0, .max_clusters = 1 + n / 3});
  expect_same_result(c.cluster(dm), c.cluster_reference(dm), "max_clusters");
}

TEST_P(ClusterEquivalence, FastPathMatchesReferenceOnTieRichJaccard) {
  // Jaccard distances over a tiny alphabet are full of exact ties and
  // duplicate values — the adversarial case for merge-order equivalence,
  // and exactly what the production pipeline feeds the clusterer.
  util::Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  auto sets = random_string_sets(6 + rng.next_below(40), rng);
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  const auto dm = ml::jaccard_distance_matrix(sets);
  for (const double cut : {0.3, 0.5, 0.8}) {
    const ml::HierarchicalClusterer c({.cut_distance = cut});
    expect_same_result(c.cluster(dm), c.cluster_reference(dm), "jaccard dm");
  }
}

TEST_P(ClusterEquivalence, CondensedPathBitIdenticalAcrossThreadCounts) {
  util::Rng rng(static_cast<std::uint64_t>(2000 + GetParam()));
  const auto sets = random_string_sets(30, rng);
  const ml::HierarchicalClusterer c({.cut_distance = 0.5});
  util::Parallel::set_threads(1);
  const ml::ClusterResult r1 = c.cluster(ml::jaccard_condensed(sets));
  util::Parallel::set_threads(8);
  const ml::ClusterResult r8 = c.cluster(ml::jaccard_condensed(sets));
  expect_same_result(r1, r8, "thread counts");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterEquivalence,
                         ::testing::Range(21, 37));

// ============== SvmModel scoring with cached SV norms ====================

TEST(SvmModel, CachedNormScoringMatchesDirectKernelSum) {
  util::Rng rng(4242);
  const auto svs = random_rows(25, 4, rng);
  std::vector<double> coef(svs.size());
  for (double& c : coef) c = 2.0 * rng.next_double() - 1.0;
  ml::KernelParams kernel;  // Gaussian
  kernel.sigma2 = 5.0;
  const ml::SvmModel model(svs, coef, 0.125, kernel);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = random_rows(1, 4, rng)[0];
    double ref = 0.125;
    for (std::size_t i = 0; i < svs.size(); ++i) {
      ref += coef[i] * kernel(svs[i], x);
    }
    ASSERT_NEAR(model.decision_value(x), ref,
                1e-9 * std::max(1.0, std::fabs(ref)));
  }
}

// ============ cross-validation: byte-identical across threads ============

ml::Dataset blob_dataset(std::size_t per_class, util::Rng& rng) {
  ml::Dataset data;
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({rng.next_gaussian(), rng.next_gaussian()}, +1, 1.0);
    data.add({3.0 + rng.next_gaussian(), 3.0 + rng.next_gaussian()}, -1,
             0.25 + 0.75 * rng.next_double());
  }
  return data;
}

ml::GridSearchResult tune_with_threads(std::size_t threads,
                                       bool weighted) {
  util::Parallel::set_threads(threads);
  util::Rng data_rng(31337);
  const ml::Dataset data = blob_dataset(24, data_rng);
  ml::CrossValidationOptions options;
  options.lambdas = {1.0, 10.0};
  options.sigma2s = {2.0, 8.0};
  options.folds = 4;
  options.weighted_validation = weighted;
  util::Rng rng(7);
  return ml::tune_svm(data, {}, options, rng);
}

TEST(CrossValidation, TuneSvmByteIdenticalAcrossThreadCounts) {
  for (const bool weighted : {false, true}) {
    const ml::GridSearchResult serial = tune_with_threads(1, weighted);
    const ml::GridSearchResult parallel = tune_with_threads(8, weighted);
    EXPECT_EQ(serial.best.lambda, parallel.best.lambda);
    EXPECT_EQ(serial.best.kernel.sigma2, parallel.best.kernel.sigma2);
    EXPECT_EQ(serial.best_accuracy, parallel.best_accuracy);
    ASSERT_EQ(serial.trials.size(), parallel.trials.size());
    for (std::size_t i = 0; i < serial.trials.size(); ++i) {
      EXPECT_EQ(serial.trials[i].lambda, parallel.trials[i].lambda);
      EXPECT_EQ(serial.trials[i].sigma2, parallel.trials[i].sigma2);
      EXPECT_EQ(serial.trials[i].accuracy, parallel.trials[i].accuracy);
    }
    // The grid preserves trial order: λ outer, σ² inner.
    EXPECT_EQ(serial.trials.size(), 4u);
    EXPECT_EQ(serial.trials[0].lambda, 1.0);
    EXPECT_EQ(serial.trials[1].lambda, 1.0);
    EXPECT_EQ(serial.trials[0].sigma2, 2.0);
    EXPECT_EQ(serial.trials[1].sigma2, 8.0);
  }
}

TEST(CrossValidation, CrossValidateByteIdenticalAcrossThreadCounts) {
  util::Rng data_rng(555);
  const ml::Dataset data = blob_dataset(20, data_rng);
  ml::SvmParams params;
  params.kernel.sigma2 = 4.0;
  util::Parallel::set_threads(1);
  util::Rng r1(11);
  const double a1 = ml::cross_validate(data, params, 5, r1);
  util::Parallel::set_threads(8);
  util::Rng r8(11);
  const double a8 = ml::cross_validate(data, params, 5, r8);
  EXPECT_EQ(a1, a8);
  EXPECT_GT(a1, 0.5);  // the blobs are separable; sanity only
}

// =============== end-to-end: SMO training across threads =================

TEST(SvmTrainer, TrainedModelBitIdenticalAcrossThreadCounts) {
  util::Rng data_rng(777);
  const ml::Dataset data = blob_dataset(30, data_rng);
  ml::SvmParams params;
  params.kernel.sigma2 = 4.0;
  params.lambda = 10.0;

  const auto train_with = [&](std::size_t threads) {
    util::Parallel::set_threads(threads);
    return ml::SvmTrainer(params).train(data);
  };
  const ml::SvmModel m1 = train_with(1);
  const ml::SvmModel m8 = train_with(8);
  EXPECT_EQ(m1.bias(), m8.bias());
  ASSERT_EQ(m1.support_vector_count(), m8.support_vector_count());
  EXPECT_EQ(m1.coefficients(), m8.coefficients());
  EXPECT_EQ(m1.support_vectors(), m8.support_vectors());
}

}  // namespace
}  // namespace leaps
