// Shared test fixture: a small but genuinely trained detector plus the
// partitioned logs it was trained on. Skips hyper-parameter search (the
// default SvmParams are fine for asserting *consistency*, which is what
// the stream/serving tests check — accuracy has its own suites).
#pragma once

#include <memory>
#include <string>

#include "core/pipeline.h"
#include "ml/svm.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"

namespace leaps::testing {

struct TrainedDetector {
  trace::PartitionedLog benign;
  trace::PartitionedLog mixed;
  trace::PartitionedLog malicious;
  std::shared_ptr<const core::Detector> detector;
};

inline trace::PartitionedLog partition_raw(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

/// `with_continual` attaches the ContinualState (benign CFG + scaled train
/// set + dual solution) that the online-learning tests retrain from.
inline TrainedDetector train_small_detector(
    const std::string& scenario = "vim_reverse_tcp_online",
    std::size_t events = 1500, std::uint64_t seed = 7,
    bool with_continual = false) {
  sim::SimConfig cfg;
  cfg.benign_events = events;
  cfg.mixed_events = events * 3 / 4;
  cfg.malicious_events = events / 2;
  cfg.seed = seed;
  const sim::ScenarioLogs logs =
      sim::generate_scenario(sim::find_scenario(scenario), cfg);

  TrainedDetector out;
  out.benign = partition_raw(logs.benign);
  out.mixed = partition_raw(logs.mixed);
  out.malicious = partition_raw(logs.malicious);

  const core::TrainingData td =
      core::LeapsPipeline().prepare(out.benign, out.mixed);
  ml::Dataset train = td.benign;
  train.append(td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  ml::TrainStats stats;
  const ml::SvmModel model = ml::SvmTrainer({}).train(train, &stats);
  auto detector =
      std::make_shared<core::Detector>(td.preprocessor, scaler, model);
  if (with_continual) {
    core::ContinualState continual;
    continual.benign_cfg = td.benign_cfg.graph;
    continual.train = std::move(train);
    continual.alpha = std::move(stats.alpha);
    detector->set_continual(std::move(continual));
  }
  out.detector = std::move(detector);
  return out;
}

}  // namespace leaps::testing
