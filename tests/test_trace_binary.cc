// Unit tests for the binary raw-log format: round trips, compactness,
// format auto-detection, corruption rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/scenario.h"
#include "trace/binary_log.h"
#include "trace/parser.h"

namespace leaps::trace {
namespace {

RawLog sample_log() {
  sim::SimConfig cfg;
  cfg.benign_events = 400;
  cfg.mixed_events = 200;
  cfg.malicious_events = 100;
  return sim::generate_scenario(sim::find_scenario("putty_reverse_tcp"),
                                cfg)
      .benign;
}

std::string to_binary(const RawLog& log) {
  std::ostringstream os(std::ios::binary);
  write_raw_log_binary(log, os);
  return os.str();
}

TEST(BinaryLog, RoundTripIsExact) {
  const RawLog log = sample_log();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_raw_log_binary(log, buffer);
  const RawLog back = read_raw_log_binary(buffer);
  EXPECT_EQ(back, log);
}

TEST(BinaryLog, RoundTripHandlesExtremeAddresses) {
  RawLog log;
  log.process_name = "x.exe";
  log.modules.push_back({0, 1, "zero.dll"});
  log.modules.push_back({~0ULL - 0x1000, 0x1000, "top.dll"});
  RawEvent e;
  e.seq = ~0ULL;
  e.tid = ~0U;
  e.type = static_cast<EventType>(kEventTypeCount - 1);
  // Descending then ascending addresses exercise negative deltas.
  e.stack = {~0ULL - 1, 0, 0x8000000000000000ULL, 1};
  log.events.push_back(e);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_raw_log_binary(log, buffer);
  EXPECT_EQ(read_raw_log_binary(buffer), log);
}

TEST(BinaryLog, SubstantiallySmallerThanText) {
  const RawLog log = sample_log();
  const std::string binary = to_binary(log);
  const std::string text = raw_log_to_string(log);
  EXPECT_LT(binary.size() * 4, text.size());  // at least 4x smaller
}

TEST(BinaryLog, DetectionDistinguishesFormats) {
  const RawLog log = sample_log();
  std::stringstream binary(to_binary(log),
                           std::ios::in | std::ios::binary);
  EXPECT_TRUE(is_binary_log(binary));
  // Detection must not consume the stream.
  EXPECT_EQ(read_raw_log_binary(binary), log);

  std::stringstream text(raw_log_to_string(log));
  EXPECT_FALSE(is_binary_log(text));
}

TEST(BinaryLog, ReadAnyHandlesBothFormats) {
  const RawLog log = sample_log();
  std::stringstream binary(to_binary(log),
                           std::ios::in | std::ios::binary);
  EXPECT_EQ(read_raw_log_any(binary), log);

  std::stringstream text(raw_log_to_string(log));
  const RawLog from_text = read_raw_log_any(text);
  // The text round trip preserves everything the pipeline consumes.
  EXPECT_EQ(from_text.process_name, log.process_name);
  EXPECT_EQ(from_text.modules, log.modules);
  EXPECT_EQ(from_text.events, log.events);
  EXPECT_EQ(from_text.symbols.size(), log.symbols.size());
}

TEST(BinaryLog, RejectsCorruption) {
  const std::string good = to_binary(sample_log());
  const auto expect_reject = [](std::string text) {
    std::stringstream is(std::move(text),
                         std::ios::in | std::ios::binary);
    EXPECT_THROW(read_raw_log_binary(is), BinaryLogError);
  };
  expect_reject("");                           // empty
  expect_reject("LEAPSB99" + good.substr(8));  // wrong magic
  expect_reject(good.substr(0, good.size() / 2));  // truncated
  expect_reject(good.substr(0, 20));               // truncated header
  // Implausible count: magic + tiny name + huge module count.
  std::string bomb(kBinaryLogMagic, sizeof(kBinaryLogMagic));
  bomb += '\x01';
  bomb += 'x';
  bomb += "\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x01";  // ~2^63
  expect_reject(bomb);
}

TEST(BinaryLog, ErrorsCarryByteOffsets) {
  const std::string good = to_binary(sample_log());
  std::stringstream is(good.substr(0, 30),
                       std::ios::in | std::ios::binary);
  try {
    read_raw_log_binary(is);
    FAIL() << "expected BinaryLogError";
  } catch (const BinaryLogError& e) {
    EXPECT_GT(e.offset(), 0u);
    EXPECT_LE(e.offset(), 31u);
  }
}

TEST(BinaryLog, EmptyLogRoundTrips) {
  RawLog log;
  log.process_name = "empty.exe";
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_raw_log_binary(log, buffer);
  EXPECT_EQ(read_raw_log_binary(buffer), log);
}

}  // namespace
}  // namespace leaps::trace
