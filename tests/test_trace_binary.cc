// Unit tests for the binary raw-log format: round trips, compactness,
// format auto-detection (including non-seekable streams), and the
// corruption contract — hostile bytes come back as Status values, never
// exceptions, crashes, or unbounded allocations.
#include <gtest/gtest.h>

#include <sstream>
#include <streambuf>
#include <string>

#include "sim/scenario.h"
#include "trace/binary_log.h"
#include "trace/parser.h"
#include "util/rng.h"
#include "util/status.h"

namespace leaps::trace {
namespace {

RawLog sample_log() {
  sim::SimConfig cfg;
  cfg.benign_events = 400;
  cfg.mixed_events = 200;
  cfg.malicious_events = 100;
  return sim::generate_scenario(sim::find_scenario("putty_reverse_tcp"),
                                cfg)
      .benign;
}

std::string to_binary(const RawLog& log) {
  std::ostringstream os(std::ios::binary);
  write_raw_log_binary(log, os);
  return os.str();
}

/// A read-only, strictly non-seekable stream buffer (seekoff inherits
/// streambuf's always-fail default), like a pipe or socket: tellg() on a
/// stream over it yields -1. Serves one byte per underflow so peek/get
/// interplay is exercised too.
class PipeBuf : public std::streambuf {
 public:
  explicit PipeBuf(std::string data) : data_(std::move(data)) {}

 protected:
  int_type underflow() override {
    if (pos_ == data_.size()) return traits_type::eof();
    ch_ = data_[pos_++];
    setg(&ch_, &ch_, &ch_ + 1);
    return traits_type::to_int_type(ch_);
  }

 private:
  std::string data_;
  std::size_t pos_ = 0;
  char ch_ = 0;
};

TEST(BinaryLog, RoundTripIsExact) {
  const RawLog log = sample_log();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_raw_log_binary(log, buffer);
  const util::StatusOr<RawLog> back = read_raw_log_binary(buffer);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(*back, log);
}

TEST(BinaryLog, RoundTripHandlesExtremeAddresses) {
  RawLog log;
  log.process_name = "x.exe";
  log.modules.push_back({0, 1, "zero.dll"});
  log.modules.push_back({~0ULL - 0x1000, 0x1000, "top.dll"});
  RawEvent e;
  e.seq = ~0ULL;
  e.tid = ~0U;
  e.type = static_cast<EventType>(kEventTypeCount - 1);
  // Descending then ascending addresses exercise negative deltas.
  e.stack = {~0ULL - 1, 0, 0x8000000000000000ULL, 1};
  log.events.push_back(e);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_raw_log_binary(log, buffer);
  EXPECT_EQ(read_raw_log_binary(buffer).value(), log);
}

TEST(BinaryLog, SubstantiallySmallerThanText) {
  const RawLog log = sample_log();
  const std::string binary = to_binary(log);
  const std::string text = raw_log_to_string(log);
  EXPECT_LT(binary.size() * 4, text.size());  // at least 4x smaller
}

TEST(BinaryLog, DetectionDistinguishesFormats) {
  const RawLog log = sample_log();
  std::stringstream binary(to_binary(log),
                           std::ios::in | std::ios::binary);
  EXPECT_TRUE(is_binary_log(binary));
  // Detection must not consume the stream.
  EXPECT_EQ(read_raw_log_binary(binary).value(), log);

  std::stringstream text(raw_log_to_string(log));
  EXPECT_FALSE(is_binary_log(text));
}

TEST(BinaryLog, DetectionWorksOnNonSeekableStreams) {
  const RawLog log = sample_log();

  PipeBuf binary_buf(to_binary(log));
  std::istream binary(&binary_buf);
  ASSERT_EQ(binary.tellg(), std::streampos(-1));  // genuinely unseekable
  EXPECT_TRUE(is_binary_log(binary));
  // The peek must not have consumed anything: a full read still works.
  EXPECT_EQ(read_raw_log_binary(binary).value(), log);

  PipeBuf text_buf(raw_log_to_string(log));
  std::istream text(&text_buf);
  EXPECT_FALSE(is_binary_log(text));
}

TEST(BinaryLog, ReadAnyHandlesBothFormats) {
  const RawLog log = sample_log();
  std::stringstream binary(to_binary(log),
                           std::ios::in | std::ios::binary);
  EXPECT_EQ(read_raw_log_any(binary).value(), log);

  std::stringstream text(raw_log_to_string(log));
  const RawLog from_text = read_raw_log_any(text).value();
  // The text round trip preserves everything the pipeline consumes.
  EXPECT_EQ(from_text.process_name, log.process_name);
  EXPECT_EQ(from_text.modules, log.modules);
  EXPECT_EQ(from_text.events, log.events);
  EXPECT_EQ(from_text.symbols.size(), log.symbols.size());
}

TEST(BinaryLog, ReadAnyWorksOnNonSeekablePipes) {
  // The leaps tools accept "-" (stdin, typically a pipe); both formats
  // must autodetect and parse without seeking.
  const RawLog log = sample_log();

  PipeBuf binary_buf(to_binary(log));
  std::istream binary(&binary_buf);
  EXPECT_EQ(read_raw_log_any(binary).value(), log);

  PipeBuf text_buf(raw_log_to_string(log));
  std::istream text(&text_buf);
  EXPECT_EQ(read_raw_log_any(text).value().events, log.events);
}

TEST(BinaryLog, RejectsCorruption) {
  const std::string good = to_binary(sample_log());
  const auto expect_reject = [](std::string text) {
    std::stringstream is(std::move(text),
                         std::ios::in | std::ios::binary);
    const util::StatusOr<RawLog> got = read_raw_log_binary(is);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput);
  };
  expect_reject("");                           // empty
  expect_reject("LEAPSB99" + good.substr(8));  // wrong magic
  expect_reject(good.substr(0, good.size() / 2));  // truncated
  expect_reject(good.substr(0, 20));               // truncated header
  // Implausible count: magic + tiny name + huge module count.
  std::string bomb(kBinaryLogMagic, sizeof(kBinaryLogMagic));
  bomb += '\x01';
  bomb += 'x';
  bomb += "\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x01";  // ~2^63
  expect_reject(bomb);
}

TEST(BinaryLog, EveryTruncationIsRejected) {
  // Counts are declared up front and the stream ends exactly after the
  // last event, so *every* strict prefix must fail as corrupt — there is
  // no silent partial parse an attacker can force by cutting a log short.
  sim::SimConfig cfg;
  cfg.benign_events = 60;
  cfg.mixed_events = 30;
  cfg.malicious_events = 20;
  const RawLog log = sim::generate_scenario(
                         sim::find_scenario("putty_reverse_tcp"), cfg)
                         .benign;
  const std::string good = to_binary(log);
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    std::stringstream is(good.substr(0, cut),
                         std::ios::in | std::ios::binary);
    const util::StatusOr<RawLog> got = read_raw_log_binary(is);
    ASSERT_FALSE(got.ok()) << "prefix of " << cut << " bytes parsed";
    EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput);
  }
}

TEST(BinaryLog, BitFlipCorpusNeverThrows) {
  const std::string good = to_binary(sample_log());
  util::Rng rng(20150622);  // deterministic corpus
  for (int i = 0; i < 500; ++i) {
    std::string mutated = good;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(mutated.size());
      mutated[at] = static_cast<char>(
          static_cast<unsigned char>(mutated[at]) ^
          (1u << rng.next_below(8)));
    }
    std::stringstream is(std::move(mutated),
                         std::ios::in | std::ios::binary);
    // A flip may survive decoding (payload bytes) or be rejected
    // (structure bytes); either way it must come back as a Status.
    EXPECT_NO_THROW((void)read_raw_log_any(is)) << "corpus item " << i;
  }
}

TEST(BinaryLog, HugeClaimedStringFailsWithoutCommittingMemory) {
  // A header claiming a ~64 MB process name backed by 4 bytes of data
  // must fail at the first 64 KiB chunk (kCorruptInput), not attempt the
  // full allocation up front.
  std::string bytes(kBinaryLogMagic, sizeof(kBinaryLogMagic));
  bytes += "\x80\x80\x80\x20";  // varint 0x4000000 = 64 MiB
  bytes += "only";
  std::stringstream is(std::move(bytes),
                       std::ios::in | std::ios::binary);
  const util::StatusOr<RawLog> got = read_raw_log_binary(is);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput);
  EXPECT_NE(got.status().message().find("truncated string"),
            std::string::npos);
}

TEST(BinaryLog, EndlessVarintContinuationIsRejected) {
  // A run of 0x80 continuation bytes encodes no terminator: the decoder
  // must reject it as overflow after at most 10 bytes (no unbounded loop,
  // no shift past 63 — a UBSan-caught vector).
  std::string bytes(kBinaryLogMagic, sizeof(kBinaryLogMagic));
  bytes += std::string(64, '\x80');
  std::stringstream is(std::move(bytes),
                       std::ios::in | std::ios::binary);
  const util::StatusOr<RawLog> got = read_raw_log_binary(is);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput);
  EXPECT_NE(got.status().message().find("varint overflow"),
            std::string::npos);
}

TEST(BinaryLog, ErrorsCarryByteOffsets) {
  const std::string good = to_binary(sample_log());
  std::stringstream is(good.substr(0, 30),
                       std::ios::in | std::ios::binary);
  const util::StatusOr<RawLog> got = read_raw_log_binary(is);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("at byte"), std::string::npos);
}

TEST(BinaryLog, EmptyLogRoundTrips) {
  RawLog log;
  log.process_name = "empty.exe";
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_raw_log_binary(log, buffer);
  EXPECT_EQ(read_raw_log_binary(buffer).value(), log);
}

}  // namespace
}  // namespace leaps::trace
