// Integration tests for the evaluation harness: data selection, the
// three-model comparison, averaging, and the headline LEAPS claim
// (WSVM >= SVM and CGraph on accuracy).
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace leaps::core {
namespace {

ExperimentOptions small_options(std::size_t runs = 2) {
  ExperimentOptions opt;
  opt.sim.benign_events = 3000;
  opt.sim.mixed_events = 2400;
  opt.sim.malicious_events = 1500;
  opt.runs = runs;
  opt.cv.folds = 5;
  opt.cv.lambdas = {10.0};
  opt.cv.sigma2s = {8.0};
  return opt;
}

TEST(Experiment, ProducesCompleteResults) {
  const ExperimentRunner runner(small_options());
  const ExperimentResult r =
      runner.run_scenario(sim::find_scenario("vim_reverse_tcp"));
  EXPECT_EQ(r.spec.name, "vim_reverse_tcp");
  EXPECT_EQ(r.runs, 2u);
  for (const ModelOutcome* m : {&r.cgraph, &r.svm, &r.wsvm}) {
    EXPECT_GT(m->pooled.total(), 0u);
    EXPECT_GE(m->mean.acc, 0.0);
    EXPECT_LE(m->mean.acc, 1.0);
    EXPECT_GE(m->mean.tpr, 0.0);
    EXPECT_LE(m->mean.tnr, 1.0);
  }
}

TEST(Experiment, IsDeterministicForFixedOptions) {
  const ExperimentRunner runner(small_options());
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("putty_codeinject"), small_options().sim);
  const ExperimentResult a = runner.run_on_logs(logs);
  const ExperimentResult b = runner.run_on_logs(logs);
  EXPECT_DOUBLE_EQ(a.wsvm.mean.acc, b.wsvm.mean.acc);
  EXPECT_DOUBLE_EQ(a.svm.mean.tpr, b.svm.mean.tpr);
  EXPECT_DOUBLE_EQ(a.cgraph.mean.npv, b.cgraph.mean.npv);
}

TEST(Experiment, SeedChangesResults) {
  ExperimentOptions opt = small_options();
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("putty_codeinject"), opt.sim);
  const ExperimentResult a = ExperimentRunner(opt).run_on_logs(logs);
  opt.seed += 1;
  const ExperimentResult b = ExperimentRunner(opt).run_on_logs(logs);
  EXPECT_NE(a.wsvm.mean.acc, b.wsvm.mean.acc);
}

// The paper's headline: the CFG-guided WSVM beats the plain SVM and the
// call-graph baseline. A small slack absorbs small-sample noise at this
// reduced log size.
TEST(Experiment, WsvmWinsOnAccuracy) {
  ExperimentOptions opt = small_options(3);
  opt.sim.benign_events = 6000;
  opt.sim.mixed_events = 4500;
  opt.sim.malicious_events = 3000;
  const ExperimentRunner runner(opt);
  for (const char* name : {"winscp_reverse_tcp", "vim_reverse_tcp_online"}) {
    const ExperimentResult r =
        runner.run_scenario(sim::find_scenario(name));
    EXPECT_GT(r.wsvm.mean.acc, r.svm.mean.acc - 0.02) << name;
    EXPECT_GT(r.wsvm.mean.acc, r.cgraph.mean.acc - 0.02) << name;
    EXPECT_GT(r.wsvm.mean.acc, 0.75) << name;
  }
}

TEST(Experiment, AucTracksAccuracyOrdering) {
  ExperimentOptions opt = small_options(3);
  opt.sim.benign_events = 6000;
  opt.sim.mixed_events = 4500;
  opt.sim.malicious_events = 3000;
  const ExperimentResult r = ExperimentRunner(opt).run_scenario(
      sim::find_scenario("vim_reverse_tcp_online"));
  // AUC is threshold-free: the WSVM separates nearly perfectly here.
  EXPECT_GT(r.wsvm.auc, 0.95);
  EXPECT_GE(r.wsvm.auc, r.svm.auc - 0.02);
  for (const ModelOutcome* m : {&r.cgraph, &r.svm, &r.wsvm}) {
    EXPECT_GE(m->auc, 0.0);
    EXPECT_LE(m->auc, 1.0);
  }
}

TEST(Experiment, ParallelAndSequentialRunsAgreeExactly) {
  ExperimentOptions opt = small_options(3);
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("winscp_reverse_https"), opt.sim);
  opt.parallel_runs = false;
  const ExperimentResult seq = ExperimentRunner(opt).run_on_logs(logs);
  opt.parallel_runs = true;
  const ExperimentResult par = ExperimentRunner(opt).run_on_logs(logs);
  EXPECT_DOUBLE_EQ(seq.wsvm.mean.acc, par.wsvm.mean.acc);
  EXPECT_DOUBLE_EQ(seq.svm.mean.tpr, par.svm.mean.tpr);
  EXPECT_DOUBLE_EQ(seq.cgraph.auc, par.cgraph.auc);
  EXPECT_EQ(seq.wsvm.pooled.tp, par.wsvm.pooled.tp);
}

TEST(Experiment, PooledConfusionMatchesRunsTimesSamples) {
  const ExperimentOptions opt = small_options();
  const ExperimentRunner runner(opt);
  const ExperimentResult r =
      runner.run_scenario(sim::find_scenario("notepad++_reverse_https"));
  // All three models saw the same number of test points.
  EXPECT_EQ(r.cgraph.pooled.total(), r.svm.pooled.total());
  EXPECT_EQ(r.svm.pooled.total(), r.wsvm.pooled.total());
  EXPECT_EQ(r.svm.pooled.total() % opt.runs, 0u);
}

TEST(Experiment, FormattersProduceAlignedRows) {
  const ExperimentRunner runner(small_options(1));
  const ExperimentResult r =
      runner.run_scenario(sim::find_scenario("vim_codeinject"));
  const std::string header = format_result_header(true);
  EXPECT_NE(header.find("ACC"), std::string::npos);
  EXPECT_NE(header.find("NPV"), std::string::npos);
  const std::string rows = format_result_row(r, true);
  EXPECT_NE(rows.find("CGraph"), std::string::npos);
  EXPECT_NE(rows.find("WSVM"), std::string::npos);
  const std::string single = format_result_row(r, false);
  EXPECT_EQ(single.find("WSVM"), std::string::npos);
  EXPECT_NE(single.find("vim_codeinject"), std::string::npos);
}

}  // namespace
}  // namespace leaps::core
