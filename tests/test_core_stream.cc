// Detector::Stream edge cases: the online path must agree exactly with
// batch scan() — same verdicts, same handling of the trailing partial
// window, sane behavior on empty input.
#include <gtest/gtest.h>

#include "detector_fixture.h"

namespace leaps::core {
namespace {

using leaps::testing::TrainedDetector;
using leaps::testing::train_small_detector;

const TrainedDetector& fixture() {
  static const TrainedDetector* f =
      new TrainedDetector(train_small_detector());
  return *f;
}

Detector::ScanResult stream_all(const Detector& detector,
                                const trace::PartitionedLog& log) {
  Detector::Stream stream = detector.stream();
  for (const trace::PartitionedEvent& e : log.events) stream.push(e);
  return stream.tally();
}

TEST(DetectorStream, MatchesBatchScanVerdictForVerdict) {
  const TrainedDetector& f = fixture();
  for (const trace::PartitionedLog* log :
       {&f.benign, &f.mixed, &f.malicious}) {
    const Detector::ScanResult batch = f.detector->scan(*log);
    const Detector::ScanResult streamed = stream_all(*f.detector, *log);
    ASSERT_EQ(batch.window_labels.size(), streamed.window_labels.size());
    EXPECT_EQ(batch.window_labels, streamed.window_labels);
    EXPECT_EQ(batch.benign_windows, streamed.benign_windows);
    EXPECT_EQ(batch.malicious_windows, streamed.malicious_windows);
  }
}

TEST(DetectorStream, PartialFinalWindowIsNeverClassified) {
  const TrainedDetector& f = fixture();
  const std::size_t window = f.detector->preprocessor().window();
  ASSERT_GE(f.benign.events.size(), 3 * window);

  // 2.5 windows of events: exactly two verdicts, half a window pending.
  trace::PartitionedLog truncated;
  truncated.process_name = f.benign.process_name;
  truncated.events.assign(f.benign.events.begin(),
                          f.benign.events.begin() + 2 * window + window / 2);

  Detector::Stream stream = f.detector->stream();
  std::size_t verdicts = 0;
  for (const trace::PartitionedEvent& e : truncated.events) {
    if (stream.push(e).has_value()) ++verdicts;
  }
  EXPECT_EQ(verdicts, 2u);
  EXPECT_EQ(stream.events_seen(), truncated.events.size());
  EXPECT_EQ(stream.pending_events(), window / 2);
  // Batch scan drops the same trailing partial window.
  const Detector::ScanResult batch = f.detector->scan(truncated);
  EXPECT_EQ(batch.window_labels, stream.tally().window_labels);
}

TEST(DetectorStream, ZeroEventLogYieldsEmptyTally) {
  const TrainedDetector& f = fixture();
  trace::PartitionedLog empty;
  empty.process_name = f.benign.process_name;

  const Detector::ScanResult batch = f.detector->scan(empty);
  EXPECT_TRUE(batch.window_labels.empty());
  EXPECT_EQ(batch.malicious_fraction(), 0.0);

  const Detector::Stream stream = f.detector->stream();
  EXPECT_EQ(stream.events_seen(), 0u);
  EXPECT_EQ(stream.pending_events(), 0u);
  EXPECT_TRUE(stream.tally().window_labels.empty());
  EXPECT_EQ(stream.tally().malicious_fraction(), 0.0);
}

TEST(DetectorStream, TallyCountsAreConsistentWithLabels) {
  const TrainedDetector& f = fixture();
  const Detector::ScanResult t = stream_all(*f.detector, f.mixed);
  std::size_t benign = 0;
  std::size_t malicious = 0;
  for (const int label : t.window_labels) {
    (label == 1 ? benign : malicious) += 1;
  }
  EXPECT_EQ(t.benign_windows, benign);
  EXPECT_EQ(t.malicious_windows, malicious);
  EXPECT_EQ(t.benign_windows + t.malicious_windows,
            t.window_labels.size());
}

}  // namespace
}  // namespace leaps::core
