// Unit tests for the util module: RNG, statistics, env parsing, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace leaps::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.fork(1);
  Rng child_again = Rng(99).fork(1);
  EXPECT_EQ(child.next_u64(), child_again.next_u64());
  // Different stream ids diverge.
  Rng c1 = Rng(99).fork(1);
  Rng c2 = Rng(99).fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::logic_error);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.next_int(3, 2), std::logic_error);
}

TEST(Rng, NextBoolEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolFrequencyTracksP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMomentsAreSane) {
  Rng rng(23);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, SampleWeightedRespectsWeights) {
  Rng rng(29);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.sample_weighted(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(Rng, SampleWeightedRejectsDegenerateInput) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_weighted({}), std::logic_error);
  EXPECT_THROW(rng.sample_weighted({0.0, 0.0}), std::logic_error);
  EXPECT_THROW(rng.sample_weighted({1.0, -1.0}), std::logic_error);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, HashStringIsStableAndSpread) {
  EXPECT_EQ(hash_string("abc"), hash_string("abc"));
  EXPECT_NE(hash_string("abc"), hash_string("abd"));
  EXPECT_NE(hash_string(""), hash_string("a"));
}

// -------------------------------------------------------------- stats ----

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  EXPECT_NEAR(s.variance(), 9.583333333, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  RunningStats a, b, all;
  for (double x : {1.0, 3.0, 5.0}) {
    a.add(x);
    all.add(x);
  }
  for (double x : {2.0, 4.0}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, MeanAndStddevHelpers) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
  EXPECT_NEAR(stddev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
}

TEST(Stats, PercentileInterpolation) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_THROW(percentile({}, 50), std::logic_error);
  EXPECT_THROW(percentile(xs, 101), std::logic_error);
}

// ---------------------------------------------------------------- env ----

TEST(Env, StringIntFlagParsing) {
  ::setenv("LEAPS_TEST_STR", "hello", 1);
  ::setenv("LEAPS_TEST_INT", "42", 1);
  ::setenv("LEAPS_TEST_BAD", "4x2", 1);
  ::setenv("LEAPS_TEST_FLAG", "yes", 1);
  EXPECT_EQ(env_string("LEAPS_TEST_STR", "d"), "hello");
  EXPECT_EQ(env_string("LEAPS_TEST_MISSING", "d"), "d");
  EXPECT_EQ(env_int("LEAPS_TEST_INT", 7), 42);
  EXPECT_EQ(env_int("LEAPS_TEST_BAD", 7), 7);
  EXPECT_EQ(env_int("LEAPS_TEST_MISSING", 7), 7);
  EXPECT_TRUE(env_flag("LEAPS_TEST_FLAG"));
  EXPECT_FALSE(env_flag("LEAPS_TEST_MISSING"));
  ::unsetenv("LEAPS_TEST_STR");
  ::unsetenv("LEAPS_TEST_INT");
  ::unsetenv("LEAPS_TEST_BAD");
  ::unsetenv("LEAPS_TEST_FLAG");
}

// ------------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ParseHexRoundTrip) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_hex_u64("0x1f", v));
  EXPECT_EQ(v, 0x1fu);
  EXPECT_TRUE(parse_hex_u64("FFFFFFFFFFFFFFFF", v));
  EXPECT_EQ(v, ~0ULL);
  EXPECT_FALSE(parse_hex_u64("", v));
  EXPECT_FALSE(parse_hex_u64("0x", v));
  EXPECT_FALSE(parse_hex_u64("12g4", v));
  const std::uint64_t addr = 0x00007FF810001200ULL;
  std::uint64_t back = 0;
  EXPECT_TRUE(parse_hex_u64(hex_addr(addr), back));
  EXPECT_EQ(back, addr);
}

TEST(Strings, StartsWithAndFixed) {
  EXPECT_TRUE(starts_with("MODULE x", "MODULE"));
  EXPECT_FALSE(starts_with("MOD", "MODULE"));
  EXPECT_EQ(fixed(0.93251, 3), "0.933");
  EXPECT_EQ(fixed(2.0, 1), "2.0");
}

// --------------------------------------------------------------- check ----

TEST(Check, ThrowsLogicErrorWithContext) {
  try {
    LEAPS_CHECK_MSG(false, "ctx");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
  }
  EXPECT_NO_THROW(LEAPS_CHECK(true));
}

}  // namespace
}  // namespace leaps::util
