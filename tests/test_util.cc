// Unit tests for the util module: RNG, statistics, env parsing, strings,
// the Status error taxonomy, and the fault-injection framework.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <set>
#include <string>

#include "util/check.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"

namespace leaps::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.fork(1);
  Rng child_again = Rng(99).fork(1);
  EXPECT_EQ(child.next_u64(), child_again.next_u64());
  // Different stream ids diverge.
  Rng c1 = Rng(99).fork(1);
  Rng c2 = Rng(99).fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::logic_error);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.next_int(3, 2), std::logic_error);
}

TEST(Rng, NextBoolEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolFrequencyTracksP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMomentsAreSane) {
  Rng rng(23);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, SampleWeightedRespectsWeights) {
  Rng rng(29);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.sample_weighted(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(Rng, SampleWeightedRejectsDegenerateInput) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_weighted({}), std::logic_error);
  EXPECT_THROW(rng.sample_weighted({0.0, 0.0}), std::logic_error);
  EXPECT_THROW(rng.sample_weighted({1.0, -1.0}), std::logic_error);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, HashStringIsStableAndSpread) {
  EXPECT_EQ(hash_string("abc"), hash_string("abc"));
  EXPECT_NE(hash_string("abc"), hash_string("abd"));
  EXPECT_NE(hash_string(""), hash_string("a"));
}

// -------------------------------------------------------------- stats ----

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  EXPECT_NEAR(s.variance(), 9.583333333, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  RunningStats a, b, all;
  for (double x : {1.0, 3.0, 5.0}) {
    a.add(x);
    all.add(x);
  }
  for (double x : {2.0, 4.0}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, MeanAndStddevHelpers) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
  EXPECT_NEAR(stddev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
}

TEST(Stats, PercentileInterpolation) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_THROW(percentile({}, 50), std::logic_error);
  EXPECT_THROW(percentile(xs, 101), std::logic_error);
}

// ---------------------------------------------------------------- env ----

TEST(Env, StringIntFlagParsing) {
  ::setenv("LEAPS_TEST_STR", "hello", 1);
  ::setenv("LEAPS_TEST_INT", "42", 1);
  ::setenv("LEAPS_TEST_BAD", "4x2", 1);
  ::setenv("LEAPS_TEST_FLAG", "yes", 1);
  EXPECT_EQ(env_string("LEAPS_TEST_STR", "d"), "hello");
  EXPECT_EQ(env_string("LEAPS_TEST_MISSING", "d"), "d");
  EXPECT_EQ(env_int("LEAPS_TEST_INT", 7), 42);
  EXPECT_EQ(env_int("LEAPS_TEST_BAD", 7), 7);
  EXPECT_EQ(env_int("LEAPS_TEST_MISSING", 7), 7);
  EXPECT_TRUE(env_flag("LEAPS_TEST_FLAG"));
  EXPECT_FALSE(env_flag("LEAPS_TEST_MISSING"));
  ::unsetenv("LEAPS_TEST_STR");
  ::unsetenv("LEAPS_TEST_INT");
  ::unsetenv("LEAPS_TEST_BAD");
  ::unsetenv("LEAPS_TEST_FLAG");
}

// ------------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ParseHexRoundTrip) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_hex_u64("0x1f", v));
  EXPECT_EQ(v, 0x1fu);
  EXPECT_TRUE(parse_hex_u64("FFFFFFFFFFFFFFFF", v));
  EXPECT_EQ(v, ~0ULL);
  EXPECT_FALSE(parse_hex_u64("", v));
  EXPECT_FALSE(parse_hex_u64("0x", v));
  EXPECT_FALSE(parse_hex_u64("12g4", v));
  const std::uint64_t addr = 0x00007FF810001200ULL;
  std::uint64_t back = 0;
  EXPECT_TRUE(parse_hex_u64(hex_addr(addr), back));
  EXPECT_EQ(back, addr);
}

TEST(Strings, StartsWithAndFixed) {
  EXPECT_TRUE(starts_with("MODULE x", "MODULE"));
  EXPECT_FALSE(starts_with("MOD", "MODULE"));
  EXPECT_EQ(fixed(0.93251, 3), "0.933");
  EXPECT_EQ(fixed(2.0, 1), "2.0");
}

// --------------------------------------------------------------- check ----

TEST(Check, ThrowsLogicErrorWithContext) {
  try {
    LEAPS_CHECK_MSG(false, "ctx");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
  }
  EXPECT_NO_THROW(LEAPS_CHECK(true));
}

// -------------------------------------------------------------- status ----

TEST(Status, DefaultIsOkAndCarriesCodeAndMessage) {
  EXPECT_TRUE(Status().ok());
  EXPECT_EQ(Status().to_string(), "OK");
  const Status s = corrupt_input("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruptInput);
  EXPECT_EQ(s.message(), "bad magic");
  EXPECT_EQ(s.to_string(), "CORRUPT_INPUT: bad magic");
  EXPECT_EQ(s, corrupt_input("bad magic"));
  EXPECT_NE(s, resource_exhausted("bad magic"));
}

TEST(Status, EveryCodeHasAStableName) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kCorruptInput),
               "CORRUPT_INPUT");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(status_code_name(StatusCode::kTimeout), "TIMEOUT");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOr, HoldsValueOrStatus) {
  const StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(-1), 42);
  EXPECT_TRUE(good.status().ok());

  const StatusOr<int> bad = not_found("no such profile");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
  // Accessing the value of an error is a programming error, not UB.
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(StatusOr, RefusesConstructionFromOkStatus) {
  EXPECT_THROW(StatusOr<int>{ok_status()}, std::logic_error);
}

// --------------------------------------------------------------- fault ----

TEST(Fault, DisarmedPointsAreInvisible) {
  auto& injector = FaultInjector::instance();
  EXPECT_FALSE(injector.any_armed());
  EXPECT_TRUE(injector.hit("test.nowhere").ok());
  EXPECT_NO_THROW(LEAPS_FAULT_POINT("test.nowhere"));
}

TEST(Fault, ThrowActionThrowsAndCounts) {
  auto& injector = FaultInjector::instance();
  const ScopedFault fault("test.point", {.action = FaultAction::kThrow});
  EXPECT_TRUE(injector.any_armed());
  EXPECT_THROW(LEAPS_FAULT_POINT("test.point"), FaultInjectedError);
  EXPECT_THROW(LEAPS_FAULT_POINT("test.point"), FaultInjectedError);
  EXPECT_EQ(injector.evaluated("test.point"), 2u);
  EXPECT_EQ(injector.injected("test.point"), 2u);
  // Other points stay silent.
  EXPECT_NO_THROW(LEAPS_FAULT_POINT("test.other"));
}

TEST(Fault, ErrorActionReturnsTheArmedStatus) {
  auto& injector = FaultInjector::instance();
  const ScopedFault fault("test.err",
                          {.action = FaultAction::kError,
                           .error_code = StatusCode::kUnavailable});
  const Status s = injector.hit("test.err");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

TEST(Fault, ProbabilityIsDeterministicInTheSeed) {
  auto& injector = FaultInjector::instance();
  const auto run = [&injector](std::uint64_t seed) {
    injector.set_seed(seed);
    const ScopedFault fault("test.prob",
                            {.action = FaultAction::kError,
                             .probability = 0.3});
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += injector.hit("test.prob").ok() ? '.' : 'X';
    }
    return pattern;
  };
  const std::string a = run(99);
  EXPECT_EQ(a, run(99));           // same seed → same injections
  EXPECT_NE(a, run(100));          // different seed → different draws
  EXPECT_NE(a.find('X'), std::string::npos);  // some injected
  EXPECT_NE(a.find('.'), std::string::npos);  // some passed
  injector.set_seed(0);
}

TEST(Fault, FilterTargetsMatchingDetailsOnly) {
  auto& injector = FaultInjector::instance();
  const ScopedFault fault("test.filter",
                          {.action = FaultAction::kError,
                           .filter = "victim"});
  EXPECT_FALSE(injector.hit("test.filter", "victim-3:1003").ok());
  EXPECT_TRUE(injector.hit("test.filter", "steady-2:1002").ok());
  EXPECT_TRUE(injector.hit("test.filter").ok());  // no detail, no match
  // Non-matching hits are evaluated but never injected.
  EXPECT_EQ(injector.injected("test.filter"), 1u);
  EXPECT_EQ(injector.evaluated("test.filter"), 3u);
}

TEST(Fault, DelayActionSleepsThenSucceeds) {
  auto& injector = FaultInjector::instance();
  const ScopedFault fault(
      "test.delay",
      {.action = FaultAction::kDelay,
       .delay = std::chrono::microseconds(2000)});
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(injector.hit("test.delay").ok());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::microseconds(2000));
}

TEST(Fault, ArmFromSpecParsesTheCliGrammar) {
  auto& injector = FaultInjector::instance();
  EXPECT_TRUE(injector.arm_from_spec("p.a:throw:0.5"));
  EXPECT_TRUE(injector.arm_from_spec("p.b:error:1"));
  EXPECT_TRUE(injector.arm_from_spec("p.c:delay:0.25:1500"));
  // For the exit action the fourth field is the exit status, not a delay.
  EXPECT_TRUE(injector.arm_from_spec("p.e:exit:1:91"));
  EXPECT_TRUE(injector.any_armed());
  injector.disarm_all();
  EXPECT_FALSE(injector.any_armed());

  EXPECT_FALSE(injector.arm_from_spec(""));
  EXPECT_FALSE(injector.arm_from_spec("nocolon"));
  EXPECT_FALSE(injector.arm_from_spec("p:badaction:0.5"));
  EXPECT_FALSE(injector.arm_from_spec("p:throw:notanumber"));
  EXPECT_FALSE(injector.arm_from_spec("p:delay:0.5"));  // delay needs us
  EXPECT_FALSE(injector.arm_from_spec("p:exit:1:300"));  // > 8 bits
  EXPECT_FALSE(injector.any_armed());
}

}  // namespace
}  // namespace leaps::util
