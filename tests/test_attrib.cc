// Attribution-subsystem tests: the .sig format (round-trip + corrupt-input
// rejection), matcher/edge semantics, the acceptance property (the true
// campaign signature ranks strictly above its permuted decoys), the audit
// JSONL evidence reader, and FleetAttributor's worker-count invariance on
// a live DetectionServer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "attrib/matcher.h"
#include "attrib/signature.h"
#include "detector_fixture.h"
#include "serve/server.h"
#include "sim/campaign.h"
#include "trace/partition.h"
#include "util/status.h"

namespace leaps::attrib {
namespace {

using leaps::testing::partition_raw;
using leaps::testing::TrainedDetector;
using leaps::testing::train_small_detector;

CampaignSignature two_stage_sig() {
  CampaignSignature sig;
  sig.name = "toy";
  sig.nodes.push_back({0,
                       "recon",
                       {trace::EventType::kRegistryRead},
                       {"advapi32.dll"},
                       {"advapi32.dll!RegQueryValueExW"}});
  sig.nodes.push_back({1,
                       "exfil",
                       {trace::EventType::kNetworkSend},
                       {"ws2_32.dll"},
                       {"ws2_32.dll!send"}});
  sig.edges.push_back({0, 1, 0});
  return sig;
}

WindowEvidence evidence(std::size_t index, trace::EventType type,
                        const std::string& lib, const std::string& func) {
  WindowEvidence w;
  w.window_index = index;
  w.decision_value = -1.0;
  w.event_types = {type};
  w.libs = {lib};
  w.funcs = {func};
  return w;
}

// ------------------------------------------------------------ .sig IO ----

TEST(SignatureFormat, RoundTripsEveryCatalogSignature) {
  for (const sim::CampaignSpec& spec : sim::campaign_catalog()) {
    const CampaignSignature sig = signature_from_campaign(spec);
    EXPECT_EQ(sig.name, spec.name);
    ASSERT_EQ(sig.nodes.size(), spec.stages.size());
    ASSERT_EQ(sig.edges.size(), spec.stages.size() - 1);

    std::istringstream is(signature_to_string(sig));
    const util::StatusOr<CampaignSignature> back = read_signature(is);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(back->name, sig.name);
    ASSERT_EQ(back->nodes.size(), sig.nodes.size());
    for (std::size_t i = 0; i < sig.nodes.size(); ++i) {
      EXPECT_EQ(back->nodes[i].id, sig.nodes[i].id);
      EXPECT_EQ(back->nodes[i].name, sig.nodes[i].name);
      EXPECT_EQ(back->nodes[i].event_types, sig.nodes[i].event_types);
      EXPECT_EQ(back->nodes[i].libs, sig.nodes[i].libs);
      EXPECT_EQ(back->nodes[i].funcs, sig.nodes[i].funcs);
    }
    ASSERT_EQ(back->edges.size(), sig.edges.size());
    for (std::size_t i = 0; i < sig.edges.size(); ++i) {
      EXPECT_EQ(back->edges[i].from, sig.edges[i].from);
      EXPECT_EQ(back->edges[i].to, sig.edges[i].to);
      EXPECT_EQ(back->edges[i].max_gap_windows, sig.edges[i].max_gap_windows);
    }
  }
}

TEST(SignatureFormat, CorruptDocumentsRejectWithLineNumbers) {
  const struct {
    const char* doc;
    const char* why;
  } cases[] = {
      {"", "empty document"},
      {"NODE 0 n TYPES FileRead LIBS - FUNCS -\n", "node before SIGNATURE"},
      {"SIGNATURE s\n", "no nodes"},
      {"SIGNATURE s\nNODE 0 n TYPES NotAType LIBS - FUNCS -\n",
       "unknown event type"},
      {"SIGNATURE s\nNODE 0 n TYPES FileRead LIBS - FUNCS bare\n",
       "func without lib!func shape"},
      {"SIGNATURE s\nNODE 0 n TYPES FileRead LIBS - FUNCS -\n"
       "NODE 0 m TYPES FileRead LIBS - FUNCS -\n",
       "duplicate node id"},
      {"SIGNATURE s\nNODE 0 n TYPES FileRead LIBS - FUNCS -\nEDGE 0 7 GAP 0\n",
       "edge to a missing node"},
      {"SIGNATURE s\nNODE 0 n TYPES FileRead LIBS - FUNCS -\nEDGE 0 0 GAP 0\n",
       "self edge"},
      {"SIGNATURE s\nNODE 0 n TYPES FileRead LIBS - FUNCS - extra\n",
       "trailing tokens"},
  };
  for (const auto& c : cases) {
    std::istringstream is(c.doc);
    const util::StatusOr<CampaignSignature> got = read_signature(is);
    ASSERT_FALSE(got.ok()) << c.why;
    EXPECT_EQ(got.status().code(), util::StatusCode::kCorruptInput) << c.why;
  }
}

TEST(SignatureLibrary, LoadDirSortsAndRejectsMissing) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "leaps_attrib_sig_test";
  fs::remove_all(dir);

  SignatureLibrary missing;
  EXPECT_EQ(missing.load_dir(dir.string()).code(),
            util::StatusCode::kNotFound);

  fs::create_directories(dir);
  const CampaignSignature sig =
      signature_from_campaign(sim::find_campaign("campaign_putty_apt"));
  for (const CampaignSignature& s : decoy_signatures(sig)) {
    std::ofstream os(dir / (s.name + ".sig"));
    write_signature(s, os);
  }
  {
    std::ofstream os(dir / (sig.name + ".sig"));
    write_signature(sig, os);
  }
  SignatureLibrary lib;
  ASSERT_TRUE(lib.load_dir(dir.string()).ok());
  ASSERT_EQ(lib.size(), 3u);
  EXPECT_EQ(lib.signatures()[0].name, "campaign_putty_apt");
  EXPECT_EQ(lib.signatures()[1].name, "campaign_putty_apt__reversed");
  EXPECT_EQ(lib.signatures()[2].name, "campaign_putty_apt__rotated");
  fs::remove_all(dir);
}

// ---------------------------------------------------- matcher semantics ----

TEST(Matcher, OrderedEvidenceSatisfiesEdgesReversedDoesNot) {
  const CampaignSignature sig = two_stage_sig();
  const std::vector<WindowEvidence> ordered = {
      evidence(3, trace::EventType::kRegistryRead, "advapi32.dll",
               "advapi32.dll!RegQueryValueExW"),
      evidence(9, trace::EventType::kNetworkSend, "ws2_32.dll",
               "ws2_32.dll!send"),
  };
  const AttributionVerdict hit = match_signature(sig, ordered);
  EXPECT_EQ(hit.nodes_matched, 2u);
  EXPECT_EQ(hit.edges_satisfied, 1u);
  EXPECT_DOUBLE_EQ(hit.score, 1.0);
  EXPECT_EQ(hit.first_window, 3u);
  EXPECT_EQ(hit.last_window, 9u);

  const std::vector<WindowEvidence> reversed = {ordered[1], ordered[0]};
  const AttributionVerdict miss = match_signature(sig, reversed);
  EXPECT_EQ(miss.edges_satisfied, 0u);
  EXPECT_LT(miss.score, hit.score);
}

TEST(Matcher, GapBoundRejectsDistantStages) {
  CampaignSignature sig = two_stage_sig();
  sig.edges[0].max_gap_windows = 2;
  // Positions are counted in flagged windows, not raw window indices: the
  // exfil window is the 4th flagged window after recon — past the bound.
  std::vector<WindowEvidence> far = {
      evidence(0, trace::EventType::kRegistryRead, "advapi32.dll",
               "advapi32.dll!RegQueryValueExW")};
  for (std::size_t i = 1; i <= 3; ++i) {
    far.push_back(evidence(i, trace::EventType::kFileRead, "kernel32.dll",
                           "kernel32.dll!ReadFile"));
  }
  far.push_back(evidence(4, trace::EventType::kNetworkSend, "ws2_32.dll",
                         "ws2_32.dll!send"));
  EXPECT_EQ(match_signature(sig, far).edges_satisfied, 0u);

  sig.edges[0].max_gap_windows = 4;
  EXPECT_EQ(match_signature(sig, far).edges_satisfied, 1u);
}

TEST(Matcher, EmptyEvidenceMatchesNothing) {
  const AttributionVerdict v = match_signature(two_stage_sig(), {});
  EXPECT_EQ(v.nodes_matched, 0u);
  EXPECT_EQ(v.edges_satisfied, 0u);
  EXPECT_DOUBLE_EQ(v.score, 0.0);
}

// ----------------------------------------------- acceptance: rank order ----

// The acceptance property, detector-free: treat every window of the
// campaign's pure-attack log as flagged and rank the true signature
// against its permuted decoys. Stage order in the trace follows the kill
// chain, so the reversed decoy loses the ordering term and the rotated
// decoy mis-covers every stage's predicates.
TEST(Attribution, TrueSignatureOutranksDecoysOnEveryAptCampaign) {
  for (const sim::CampaignSpec& spec : sim::campaign_catalog()) {
    if (spec.lotl) continue;  // LotL shares host predicates by design
    sim::SimConfig cfg;
    cfg.benign_events = 1200;
    cfg.mixed_events = 900;
    cfg.malicious_events = 600;
    cfg.seed = 7;
    const sim::CampaignLogs logs = sim::generate_campaign(spec, cfg);
    const trace::PartitionedLog mal = partition_raw(logs.malicious);

    std::vector<WindowEvidence> flagged;
    constexpr std::size_t kWindow = 10;
    for (std::size_t i = 0; i + kWindow <= mal.events.size(); i += kWindow) {
      flagged.push_back(evidence_from_events(flagged.size(), -1.0,
                                             mal.events.data() + i, kWindow));
    }
    ASSERT_GT(flagged.size(), 4u) << spec.name;

    SignatureLibrary lib;
    const CampaignSignature sig = signature_from_campaign(spec);
    lib.add(sig);
    for (CampaignSignature& d : decoy_signatures(sig)) lib.add(std::move(d));

    const std::vector<AttributionVerdict> ranked = attribute(lib, flagged);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].signature, spec.name) << "true signature not rank 1";
    EXPECT_GT(ranked[0].score, ranked[1].score)
        << spec.name << ": decoy " << ranked[1].signature << " tied";
    EXPECT_GT(ranked[0].score, ranked[2].score);
  }
}

// ------------------------------------------------------- audit JSONL ----

TEST(Evidence, AuditJsonlReaderSkipsBenignAndRejectsCorruption) {
  const std::string good =
      R"({"type":"window_audit","host":"h","window":4,"label":-1,)"
      R"("decision_value":-1.25,"cfg_terms":[],)"
      R"("evidence":{"event_types":["FileRead"],"libs":["kernel32.dll"],)"
      R"("funcs":["kernel32.dll!ReadFile"]}})"
      "\n"
      R"({"type":"window_audit","host":"h","window":9,"label":1,)"
      R"("decision_value":0.5,"cfg_terms":[],)"
      R"("evidence":{"event_types":["UiMessage"],"libs":[],"funcs":[]}})"
      "\n";
  std::istringstream is(good);
  const util::StatusOr<std::vector<WindowEvidence>> got =
      evidence_from_audit_jsonl(is);
  ASSERT_TRUE(got.ok()) << got.status().message();
  ASSERT_EQ(got->size(), 1u);  // the benign record is skipped
  EXPECT_EQ((*got)[0].window_index, 4u);
  EXPECT_DOUBLE_EQ((*got)[0].decision_value, -1.25);
  EXPECT_EQ((*got)[0].event_types,
            std::vector<trace::EventType>{trace::EventType::kFileRead});
  EXPECT_EQ((*got)[0].funcs,
            std::vector<std::string>{"kernel32.dll!ReadFile"});

  for (const char* bad : {
           "{\"label\":-1}\n",                 // no window index
           "{\"window\":1,\"label\":-1}\n",    // no decision value/evidence
           "{\"window\":1,\"label\":-1,\"decision_value\":0,"
           "\"evidence\":{\"event_types\":[\"NoSuchType\"],\"libs\":[],"
           "\"funcs\":[]}}\n",                 // unknown event type
           "not json at all\n",
       }) {
    std::istringstream bin(bad);
    const auto r = evidence_from_audit_jsonl(bin);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), util::StatusCode::kCorruptInput) << bad;
  }
}

// -------------------------------------------- FleetAttributor (online) ----

std::string render(const std::vector<FleetAttributor::SessionAttribution>& s) {
  std::ostringstream os;
  for (const auto& a : s) {
    os << a.key.to_string() << " flagged=" << a.flagged_windows << "\n";
    for (const AttributionVerdict& v : a.verdicts) {
      os << "  " << v.signature << " score=" << v.score
         << " nodes=" << v.nodes_matched << "/" << v.nodes_total
         << " edges=" << v.edges_satisfied << "/" << v.edges_total
         << " windows=[" << v.first_window << "," << v.last_window << "]\n";
    }
  }
  return os.str();
}

const TrainedDetector& fixture_for_attrib() {
  static const TrainedDetector* f =
      new TrainedDetector(train_small_detector());
  return *f;
}

// The load-bearing serving property: attribution output is a pure
// function of each session's per-window verdict stream, so it cannot
// depend on how many workers raced to produce it.
TEST(FleetAttributor, SnapshotIsIdenticalAcrossWorkerCounts) {
  const TrainedDetector& f = fixture_for_attrib();

  SignatureLibrary lib;
  const CampaignSignature sig =
      signature_from_campaign(sim::find_campaign("campaign_putty_apt"));
  lib.add(sig);
  for (CampaignSignature& d : decoy_signatures(sig)) lib.add(std::move(d));

  std::string snapshots[2];
  const std::size_t workers[2] = {1, 8};
  for (int run = 0; run < 2; ++run) {
    serve::ServerOptions options;
    options.workers = workers[run];
    serve::DetectionServer server(options);
    server.registry().add("app", f.detector);
    FleetAttributor attributor(&lib);
    server.add_window_tap(
        [&attributor](const serve::SessionKey& key, std::size_t window_index,
                      int label, double decision_value,
                      const trace::PartitionedEvent* events,
                      std::size_t count) {
          attributor.observe(key, window_index, label, decision_value, events,
                             count);
        });
    server.start();
    for (std::uint32_t s = 0; s < 3; ++s) {
      const auto session = server.open_session({"host", s + 1}, "app");
      ASSERT_NE(session, nullptr);
      for (const trace::PartitionedEvent& e : f.mixed.events) {
        ASSERT_TRUE(server.submit(session, e));
      }
    }
    server.drain();
    server.stop();
    EXPECT_GT(attributor.flagged_total(), 0u);
    EXPECT_EQ(attributor.sessions(), 3u);
    snapshots[run] = render(attributor.snapshot());
  }
  EXPECT_EQ(snapshots[0], snapshots[1])
      << "attribution diverged between 1 and 8 workers";
}

}  // namespace
}  // namespace leaps::attrib
