// Unit tests for the SMO-based weighted SVM (Eqns. 2-5).
#include <gtest/gtest.h>

#include <cmath>

#include "ml/svm.h"
#include "util/rng.h"

namespace leaps::ml {
namespace {

Dataset blobs(std::size_t per_class, util::Rng& rng, double separation) {
  Dataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({rng.next_gaussian() * 0.3, rng.next_gaussian() * 0.3 + separation},
          1, 1.0);
    d.add({rng.next_gaussian() * 0.3, rng.next_gaussian() * 0.3 - separation},
          -1, 1.0);
  }
  return d;
}

TEST(Svm, SeparatesTwoBlobs) {
  util::Rng rng(1);
  const Dataset d = blobs(40, rng, 2.0);
  TrainStats stats;
  const SvmModel m = SvmTrainer({}).train(d, &stats);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.support_vectors, 0u);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (m.predict(d.X[i]) == d.y[i]) ++correct;
  }
  EXPECT_GE(correct, d.size() - 2);
  // Held-out points on each side.
  EXPECT_EQ(m.predict({0.0, 2.0}), 1);
  EXPECT_EQ(m.predict({0.0, -2.0}), -1);
}

TEST(Svm, GaussianKernelSolvesXor) {
  Dataset d;
  util::Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const double n1 = rng.next_gaussian() * 0.1;
    const double n2 = rng.next_gaussian() * 0.1;
    d.add({0.0 + n1, 0.0 + n2}, 1);
    d.add({1.0 + n1, 1.0 + n2}, 1);
    d.add({0.0 + n1, 1.0 + n2}, -1);
    d.add({1.0 + n1, 0.0 + n2}, -1);
  }
  SvmParams p;
  p.kernel.sigma2 = 0.5;
  p.lambda = 10.0;
  const SvmModel m = SvmTrainer(p).train(d);
  EXPECT_EQ(m.predict({0.0, 0.0}), 1);
  EXPECT_EQ(m.predict({1.0, 1.0}), 1);
  EXPECT_EQ(m.predict({0.0, 1.0}), -1);
  EXPECT_EQ(m.predict({1.0, 0.0}), -1);
}

TEST(Svm, DecisionValueMatchesEqnFive) {
  util::Rng rng(3);
  const Dataset d = blobs(20, rng, 1.5);
  const SvmModel m = SvmTrainer({}).train(d);
  // f(x) = Σ αᵢ yᵢ k(svᵢ, x) + b, recomputed by hand from the model dump.
  const FeatureVector x = {0.3, 0.7};
  double f = m.bias();
  for (std::size_t i = 0; i < m.support_vector_count(); ++i) {
    f += m.coefficients()[i] * m.kernel()(m.support_vectors()[i], x);
  }
  EXPECT_NEAR(f, m.decision_value(x), 1e-9);
  EXPECT_EQ(m.predict(x), f >= 0 ? 1 : -1);
}

TEST(Svm, AlphaRespectsPerSampleBound) {
  // λ·cᵢ caps every dual coefficient: |coef| = αᵢ ≤ λ·cᵢ.
  util::Rng rng(4);
  Dataset d = blobs(30, rng, 0.3);  // heavy overlap → saturated alphas
  for (std::size_t i = 0; i < d.size(); ++i) {
    d.weight[i] = (i % 3 == 0) ? 0.25 : 1.0;
  }
  SvmParams p;
  p.lambda = 4.0;
  const SvmModel m = SvmTrainer(p).train(d);
  for (const double coef : m.coefficients()) {
    EXPECT_LE(std::abs(coef), 4.0 + 1e-9);  // λ · max cᵢ
  }
}

TEST(Svm, ZeroWeightSamplesArePinnedOut) {
  // Mislabeled positives inside the negative blob, weight 0: the model must
  // ignore them entirely (no support vector can sit on them).
  util::Rng rng(5);
  Dataset d = blobs(30, rng, 2.0);
  const std::size_t poisoned_start = d.size();
  for (int i = 0; i < 10; ++i) {
    d.add({0.0, 2.0}, -1, 0.0);  // "malicious" label planted in benign blob
  }
  const SvmModel m = SvmTrainer({}).train(d);
  EXPECT_EQ(m.predict({0.0, 2.0}), 1);  // unharmed by the poison
  (void)poisoned_start;
}

TEST(Svm, WeightingChangesTheBoundaryUnderLabelNoise) {
  // The Figure-5 situation: negatives include mislabeled copies of the
  // positive blob. Plain SVM concedes part of the benign region; WSVM with
  // near-zero weights on the mislabeled points recovers it.
  util::Rng rng(6);
  Dataset d;
  for (int i = 0; i < 40; ++i) {
    const double n1 = rng.next_gaussian() * 0.2;
    const double n2 = rng.next_gaussian() * 0.2;
    d.add({n1, 1.0 + n2}, 1, 1.0);    // benign blob
    d.add({n1, -1.0 + n2}, -1, 1.0);  // true malicious blob
    // Mislabeled benign, outnumbering the true positives in the blob.
    d.add({n1 + 0.05, 1.0 + n2 - 0.05}, -1, 1.0);
    if (i < 20) d.add({n1 - 0.05, 1.0 + n2 + 0.05}, -1, 1.0);
  }
  SvmParams p;
  p.lambda = 10.0;
  p.kernel.sigma2 = 1.0;
  const SvmModel plain = SvmTrainer(p).train(d);

  Dataset weighted = d;
  std::size_t k = 0;
  for (std::size_t i = 0; i < weighted.size(); ++i) {
    if (weighted.y[i] == -1 && weighted.X[i][1] > 0.0) {
      weighted.weight[i] = 0.02;  // CFG says: benign
      ++k;
    }
  }
  ASSERT_GT(k, 0u);
  const SvmModel wsvm = SvmTrainer(p).train(weighted);

  // Probe the benign region.
  int plain_benign = 0;
  int wsvm_benign = 0;
  for (double x = -0.5; x <= 0.5; x += 0.1) {
    plain_benign += plain.predict({x, 1.0}) == 1 ? 1 : 0;
    wsvm_benign += wsvm.predict({x, 1.0}) == 1 ? 1 : 0;
  }
  EXPECT_GT(wsvm_benign, plain_benign);
  EXPECT_EQ(wsvm.predict({0.0, -1.0}), -1);  // malicious region intact
}

TEST(Svm, RequiresBothClassesWithPositiveWeight) {
  Dataset d;
  d.add({0.0}, 1, 1.0);
  d.add({1.0}, 1, 1.0);
  EXPECT_THROW(SvmTrainer({}).train(d), std::invalid_argument);
  d.add({2.0}, -1, 0.0);  // negative class present but weightless
  EXPECT_THROW(SvmTrainer({}).train(d), std::invalid_argument);
  d.weight[2] = 1.0;
  EXPECT_NO_THROW(SvmTrainer({}).train(d));
}

TEST(Svm, RejectsInvalidDatasets) {
  Dataset d;
  d.add({0.0}, 1);
  EXPECT_THROW(SvmTrainer({}).train(d), std::logic_error);  // n < 2
  d.add({1.0}, 2);  // invalid label
  EXPECT_THROW(SvmTrainer({}).train(d), std::logic_error);
  Dataset e;
  e.add({0.0}, 1, 1.0);
  e.add({1.0, 2.0}, -1, 1.0);  // ragged dims
  EXPECT_THROW(SvmTrainer({}).train(e), std::logic_error);
}

TEST(Svm, DuplicateOppositePointsDoNotHangTheSolver) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.add({0.5, 0.5}, 1, 1.0);
    d.add({0.5, 0.5}, -1, 1.0);  // exactly conflicting evidence
  }
  d.add({0.0, 0.0}, 1, 1.0);
  d.add({1.0, 1.0}, -1, 1.0);
  TrainStats stats;
  EXPECT_NO_THROW(SvmTrainer({}).train(d, &stats));
}

TEST(Svm, LinearKernelLearnsALinearBoundary) {
  util::Rng rng(7);
  Dataset d = blobs(30, rng, 1.5);
  SvmParams p;
  p.kernel.type = KernelType::kLinear;
  const SvmModel m = SvmTrainer(p).train(d);
  EXPECT_EQ(m.predict({0.0, 3.0}), 1);   // far on the positive side
  EXPECT_EQ(m.predict({0.0, -3.0}), -1);
}

TEST(Svm, StatsReportObjectiveAndIterations) {
  util::Rng rng(8);
  const Dataset d = blobs(20, rng, 1.0);
  TrainStats stats;
  SvmTrainer({}).train(d, &stats);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_LT(stats.objective, 0.0);  // dual optimum of a non-trivial problem
}

TEST(Svm, TrainingIsDeterministic) {
  util::Rng rng(9);
  const Dataset d = blobs(25, rng, 1.0);
  const SvmModel a = SvmTrainer({}).train(d);
  const SvmModel b = SvmTrainer({}).train(d);
  ASSERT_EQ(a.support_vector_count(), b.support_vector_count());
  EXPECT_EQ(a.bias(), b.bias());
  EXPECT_EQ(a.coefficients(), b.coefficients());
}

}  // namespace
}  // namespace leaps::ml
