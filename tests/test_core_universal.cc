// Integration tests for the universal (cross-application) classifier.
#include <gtest/gtest.h>

#include "core/universal.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"

namespace leaps::core {
namespace {

trace::PartitionedLog split(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

std::vector<AppLogs> make_apps(std::size_t events = 3000) {
  sim::SimConfig cfg;
  cfg.benign_events = events;
  cfg.mixed_events = events * 3 / 4;
  cfg.malicious_events = events / 2;
  std::vector<AppLogs> apps;
  for (const char* name : {"vim_reverse_tcp", "putty_reverse_https_online"}) {
    const sim::ScenarioLogs logs =
        sim::generate_scenario(sim::find_scenario(name), cfg);
    apps.push_back({name, split(logs.benign), split(logs.mixed),
                    split(logs.malicious)});
  }
  return apps;
}

TEST(Universal, OneDetectorCoversMultipleApplications) {
  const std::vector<AppLogs> apps = make_apps();
  UniversalOptions opt;
  opt.svm.kernel.sigma2 = 8.0;
  const UniversalEvaluation u = train_universal(apps, opt);

  ASSERT_EQ(u.per_app.size(), 2u);
  for (const auto& [name, m] : u.per_app) {
    EXPECT_GT(m.acc, 0.7) << name;
    EXPECT_GE(m.tpr, 0.0);
    EXPECT_LE(m.tnr, 1.0);
  }
  EXPECT_GT(u.pooled.acc, 0.7);
  // The detector works as a regular detector on any app's slice.
  const auto scan = u.detector.scan(apps[0].malicious);
  EXPECT_GT(scan.malicious_fraction(), 0.5);
}

TEST(Universal, PooledIsWithinPerAppEnvelope) {
  const std::vector<AppLogs> apps = make_apps();
  UniversalOptions opt;
  opt.svm.kernel.sigma2 = 8.0;
  const UniversalEvaluation u = train_universal(apps, opt);
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& [name, m] : u.per_app) {
    lo = std::min(lo, m.acc);
    hi = std::max(hi, m.acc);
  }
  EXPECT_GE(u.pooled.acc, lo - 1e-9);
  EXPECT_LE(u.pooled.acc, hi + 1e-9);
}

TEST(Universal, DeterministicForFixedSeed) {
  const std::vector<AppLogs> apps = make_apps(2000);
  UniversalOptions opt;
  const UniversalEvaluation a = train_universal(apps, opt);
  const UniversalEvaluation b = train_universal(apps, opt);
  EXPECT_EQ(a.pooled.acc, b.pooled.acc);
  EXPECT_EQ(a.per_app.begin()->second.tpr, b.per_app.begin()->second.tpr);
}

TEST(Universal, RejectsEmptyInput) {
  EXPECT_THROW(train_universal({}, {}), std::logic_error);
}

}  // namespace
}  // namespace leaps::core
