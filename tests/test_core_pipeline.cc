// Integration tests for the LEAPS training pipeline and detector on
// simulated scenarios: weights must separate ground-truth benign from
// malicious events, and a trained detector must flag payload activity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "ml/svm.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"

namespace leaps::core {
namespace {

struct PreparedScenario {
  sim::ScenarioLogs logs;
  trace::PartitionedLog benign;
  trace::PartitionedLog mixed;
  trace::PartitionedLog malicious;
  TrainingData td;
};

PreparedScenario prepare(const std::string& name, std::size_t events = 3000) {
  PreparedScenario out;
  sim::SimConfig cfg;
  cfg.benign_events = events;
  cfg.mixed_events = events;
  cfg.malicious_events = events / 2;
  out.logs = sim::generate_scenario(sim::find_scenario(name), cfg);
  const trace::RawLogParser parser;
  const auto parse_and_split = [&parser](const trace::RawLog& raw) {
    const trace::ParsedTrace t = parser.parse_raw(raw);
    return trace::StackPartitioner(t.log.process_name).partition(t.log);
  };
  out.benign = parse_and_split(out.logs.benign);
  out.mixed = parse_and_split(out.logs.mixed);
  out.malicious = parse_and_split(out.logs.malicious);
  out.td = LeapsPipeline().prepare(out.benign, out.mixed);
  return out;
}

TEST(Pipeline, BenignDatasetIsAllPositiveWeightOne) {
  const PreparedScenario s = prepare("vim_reverse_tcp");
  EXPECT_FALSE(s.td.benign.empty());
  for (std::size_t i = 0; i < s.td.benign.size(); ++i) {
    EXPECT_EQ(s.td.benign.y[i], 1);
    EXPECT_DOUBLE_EQ(s.td.benign.weight[i], 1.0);
  }
  s.td.benign.validate();
}

TEST(Pipeline, MixedDatasetIsNegativeWithUnitIntervalWeights) {
  const PreparedScenario s = prepare("putty_reverse_https_online");
  EXPECT_FALSE(s.td.mixed.empty());
  for (std::size_t i = 0; i < s.td.mixed.size(); ++i) {
    EXPECT_EQ(s.td.mixed.y[i], -1);
    EXPECT_GE(s.td.mixed.weight[i], 0.0);
    EXPECT_LE(s.td.mixed.weight[i], 1.0);
  }
  s.td.mixed.validate();
}

// The heart of LEAPS: CFG-derived benignity must track ground truth.
TEST(Pipeline, EventBenignitySeparatesTruthClasses) {
  for (const char* name :
       {"winscp_reverse_tcp", "vim_codeinject", "chrome_reverse_https",
        "notepad++_reverse_tcp_online"}) {
    const PreparedScenario s = prepare(name);
    double benign_sum = 0.0;
    double malicious_sum = 0.0;
    std::size_t benign_n = 0;
    std::size_t malicious_n = 0;
    for (std::size_t i = 0; i < s.mixed.events.size(); ++i) {
      const auto it = s.td.event_benignity.find(s.mixed.events[i].seq);
      const double b = it == s.td.event_benignity.end() ? 1.0 : it->second;
      if (s.logs.mixed_truth[i]) {
        malicious_sum += b;
        ++malicious_n;
      } else {
        benign_sum += b;
        ++benign_n;
      }
    }
    ASSERT_GT(benign_n, 0u) << name;
    ASSERT_GT(malicious_n, 0u) << name;
    const double mean_benign = benign_sum / static_cast<double>(benign_n);
    const double mean_malicious =
        malicious_sum / static_cast<double>(malicious_n);
    EXPECT_GT(mean_benign, 0.9) << name;
    // Offline detour events carry benign stack prefixes whose explicit
    // edges score 1, so malicious means float above 0 — but far below the
    // benign mean.
    EXPECT_LT(mean_malicious, 0.35) << name;
    EXPECT_GT(mean_benign - mean_malicious, 0.6) << name;
  }
}

TEST(Pipeline, WindowWeightsTrackPayloadContent) {
  const PreparedScenario s = prepare("winscp_reverse_tcp_online");
  const std::size_t window = s.td.preprocessor.window();
  // Window weight approximates the malicious event fraction: compare the
  // two series by mean absolute deviation and correlation.
  double mad = 0.0;
  double sum_w = 0.0, sum_t = 0.0, sum_ww = 0.0, sum_tt = 0.0, sum_wt = 0.0;
  const auto n = static_cast<double>(s.td.mixed.size());
  for (std::size_t w = 0; w < s.td.mixed.size(); ++w) {
    double truth_fraction = 0.0;
    for (const std::size_t idx : s.td.mixed_windows.event_indices[w]) {
      truth_fraction += s.logs.mixed_truth[idx] ? 1.0 : 0.0;
    }
    truth_fraction /= static_cast<double>(window);
    const double weight = s.td.mixed.weight[w];
    mad += std::abs(weight - truth_fraction);
    sum_w += weight;
    sum_t += truth_fraction;
    sum_ww += weight * weight;
    sum_tt += truth_fraction * truth_fraction;
    sum_wt += weight * truth_fraction;
  }
  mad /= n;
  const double cov = sum_wt / n - (sum_w / n) * (sum_t / n);
  const double var_w = sum_ww / n - (sum_w / n) * (sum_w / n);
  const double var_t = sum_tt / n - (sum_t / n) * (sum_t / n);
  ASSERT_GT(var_w, 0.0);
  ASSERT_GT(var_t, 0.0);
  const double corr = cov / std::sqrt(var_w * var_t);
  EXPECT_LT(mad, 0.15);
  // At 3000-event logs the inferred benign CFG is sparse enough that some
  // windows are mis-weighted; 0.75 still indicates strong agreement.
  EXPECT_GT(corr, 0.75);
}

TEST(Pipeline, InferredCfgsAreNonTrivial) {
  const PreparedScenario s = prepare("notepad++_codeinject");
  EXPECT_GT(s.td.benign_cfg.graph.edge_count(), 50u);
  EXPECT_GT(s.td.mixed_cfg.graph.edge_count(),
            s.td.benign_cfg.graph.edge_count() / 2);
  // The mixed CFG contains payload-region nodes the benign CFG lacks.
  const auto benign_nodes = s.td.benign_cfg.graph.nodes();
  const auto mixed_nodes = s.td.mixed_cfg.graph.nodes();
  EXPECT_GT(mixed_nodes.back(), benign_nodes.back());
}

TEST(Pipeline, MemapCoversMostMixedEvents) {
  const PreparedScenario s = prepare("vim_reverse_https");
  // Nearly every event has at least one affiliated inferred path.
  EXPECT_GT(s.td.event_benignity.size(), s.mixed.events.size() * 8 / 10);
}

TEST(Detector, FlagsPayloadLogAndPassesBenignLog) {
  const PreparedScenario s = prepare("vim_reverse_tcp_online", 4000);

  // Train a WSVM on the pipeline's output (no subsampling — small logs).
  ml::Dataset train = s.td.benign;
  train.append(s.td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  ml::SvmParams params;
  params.lambda = 10.0;
  params.kernel.sigma2 = 8.0;
  const ml::SvmModel model = ml::SvmTrainer(params).train(train);

  const Detector detector(s.td.preprocessor, scaler, model);
  const auto benign_scan = detector.scan(s.benign);
  const auto malicious_scan = detector.scan(s.malicious);
  ASSERT_GT(benign_scan.window_labels.size(), 0u);
  ASSERT_GT(malicious_scan.window_labels.size(), 0u);
  EXPECT_LT(benign_scan.malicious_fraction(), 0.35);
  EXPECT_GT(malicious_scan.malicious_fraction(), 0.65);
}

TEST(Detector, StreamMatchesBatchScan) {
  const PreparedScenario s = prepare("vim_reverse_tcp_online", 3000);
  ml::Dataset train = s.td.benign;
  train.append(s.td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  ml::SvmParams params;
  params.lambda = 10.0;
  params.kernel.sigma2 = 8.0;
  const Detector detector(s.td.preprocessor, scaler,
                          ml::SvmTrainer(params).train(train));

  const auto batch = detector.scan(s.malicious);
  Detector::Stream stream = detector.stream();
  std::vector<int> online;
  for (const trace::PartitionedEvent& e : s.malicious.events) {
    if (const auto verdict = stream.push(e)) online.push_back(*verdict);
  }
  EXPECT_EQ(online, batch.window_labels);
  EXPECT_EQ(stream.tally().malicious_windows, batch.malicious_windows);
  EXPECT_EQ(stream.events_seen(), s.malicious.events.size());
}

TEST(Detector, StreamEmitsOnlyOnWindowBoundaries) {
  const PreparedScenario s = prepare("vim_reverse_tcp", 2000);
  ml::Dataset train = s.td.benign;
  train.append(s.td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  const Detector detector(
      s.td.preprocessor, scaler,
      ml::SvmTrainer(ml::SvmParams{}).train(train));
  Detector::Stream stream = detector.stream();
  const std::size_t window = detector.preprocessor().window();
  for (std::size_t i = 0; i < 3 * window; ++i) {
    const auto verdict = stream.push(s.benign.events[i]);
    EXPECT_EQ(verdict.has_value(), (i + 1) % window == 0) << "event " << i;
  }
}

TEST(Detector, CalibrationBoundsFalseAlarms) {
  const PreparedScenario s = prepare("putty_reverse_https_online", 4000);
  ml::Dataset train = s.td.benign;
  train.append(s.td.mixed);
  ml::MinMaxScaler scaler;
  scaler.fit(train.X);
  scaler.transform_in_place(train);
  ml::SvmParams params;
  params.lambda = 10.0;
  params.kernel.sigma2 = 8.0;
  Detector detector(s.td.preprocessor, scaler,
                    ml::SvmTrainer(params).train(train));

  for (const double target : {0.0, 0.02, 0.10}) {
    const double achieved = detector.calibrate(s.benign, target);
    EXPECT_LE(achieved, target + 1e-12) << "target " << target;
    // The calibration set itself must honor the bound exactly.
    const auto scan = detector.scan(s.benign);
    EXPECT_LE(scan.malicious_fraction(), target + 1e-12);
  }
  // Tighter targets move the threshold down (more permissive to benign).
  detector.calibrate(s.benign, 0.10);
  const double loose = detector.decision_threshold();
  detector.calibrate(s.benign, 0.0);
  EXPECT_LT(detector.decision_threshold(), loose);
  // The malicious log must still be substantially flagged at 2%.
  detector.calibrate(s.benign, 0.02);
  EXPECT_GT(detector.scan(s.malicious).malicious_fraction(), 0.5);
  EXPECT_THROW(detector.calibrate(s.benign, 1.5), std::logic_error);
}

TEST(Detector, RequiresFittedComponents) {
  EXPECT_THROW(Detector(Preprocessor(), ml::MinMaxScaler(), ml::SvmModel()),
               std::logic_error);
}

TEST(Pipeline, DefaultBenignityAppliesToUnmappedEvents) {
  PipelineOptions opt;
  opt.default_benignity = 0.0;  // treat unmapped as malicious
  trace::PartitionedLog empty_benign;
  trace::PartitionedLog mixed;
  // Events with empty app stacks: no paths map to them.
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace::PartitionedEvent e;
    e.seq = i;
    e.type = trace::EventType::kFileRead;
    trace::StackFrame f;
    f.address = 0x1000 + i;
    f.module = "x.dll";
    f.function = "f";
    e.system_stack.push_back(f);
    mixed.events.push_back(e);
    empty_benign.events.push_back(e);
  }
  const TrainingData td = LeapsPipeline(opt).prepare(empty_benign, mixed);
  ASSERT_EQ(td.mixed.size(), 1u);  // one 10-event window
  EXPECT_DOUBLE_EQ(td.mixed.weight[0], 1.0);  // 1 - benignity(0) = 1
}

}  // namespace
}  // namespace leaps::core
