// Unit tests for the CFG-alignment extension (Section VI-A): pivot
// discovery, address translation, insertion detection, CFG rewriting.
#include <gtest/gtest.h>

#include "cfg/alignment.h"
#include "core/pipeline.h"
#include "sim/address_space.h"
#include "sim/attack.h"
#include "sim/executor.h"
#include "sim/profiles.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"
#include "util/rng.h"

namespace leaps::cfg {
namespace {

/// A chain-with-branches graph over `n` nodes at the given base/stride.
AddressGraph synthetic_graph(std::uint64_t base, std::size_t n,
                             std::uint64_t stride = 0x80) {
  AddressGraph g;
  const auto addr = [base, stride](std::size_t i) {
    return base + i * stride;
  };
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(addr(i), addr(i + 1));
    if (i % 3 == 0 && i + 2 < n) g.add_edge(addr(i), addr(i + 2));
    if (i % 5 == 0 && i >= 5) g.add_edge(addr(i), addr(i - 5));
  }
  return g;
}

/// Fingerprints that make node k of any copy identifiable: type k mod N.
NodeFingerprints synthetic_fingerprints(std::uint64_t base, std::size_t n,
                                        std::uint64_t stride = 0x80) {
  NodeFingerprints fp;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> hist(trace::kEventTypeCount, 0.0);
    hist[i % trace::kEventTypeCount] = 10.0;
    hist[(i / trace::kEventTypeCount) % trace::kEventTypeCount] += 3.0;
    fp[base + i * stride] = hist;
  }
  return fp;
}

TEST(CfgAligner, IdenticalGraphsAlignCompletely) {
  const AddressGraph g = synthetic_graph(0x1000, 40);
  const auto fp = synthetic_fingerprints(0x1000, 40);
  const CfgAligner aligner;
  const Alignment a = aligner.align(g, g, &fp, &fp);
  EXPECT_EQ(a.pivots.size(), a.mixed_nodes);
  for (const auto& [m, b] : a.pivots) EXPECT_EQ(m, b);
}

TEST(CfgAligner, ShiftedCopyAlignsToOriginal) {
  const std::size_t n = 40;
  const AddressGraph benign = synthetic_graph(0x1000, n);
  const AddressGraph mixed = synthetic_graph(0x50000, n);  // same structure
  const auto fb = synthetic_fingerprints(0x1000, n);
  const auto fm = synthetic_fingerprints(0x50000, n);
  const CfgAligner aligner;
  const Alignment a = aligner.align(benign, mixed, &fb, &fm);
  EXPECT_GT(a.pivot_fraction(), 0.9);
  for (const auto& [m, b] : a.pivots) {
    EXPECT_EQ(m - 0x50000, b - 0x1000);  // same node index
  }
  // Translation recovers original addresses for all in-envelope nodes.
  const auto t = aligner.translate(a, 0x50000 + 7 * 0x80);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0x1000 + 7 * 0x80);
}

TEST(CfgAligner, InsertedBlockIsNotTranslated) {
  // Benign: 30 nodes. Mixed: same 30 with a 6-node foreign block spliced in
  // at index 10 (addresses shift by 6*stride after the block).
  const std::uint64_t stride = 0x80;
  const std::size_t n = 30;
  const std::size_t ins = 6;
  AddressGraph benign = synthetic_graph(0x1000, n, stride);
  AddressGraph mixed;
  NodeFingerprints fb = synthetic_fingerprints(0x1000, n, stride);
  NodeFingerprints fm;
  const auto mixed_addr = [&](std::size_t i) {  // benign index -> new addr
    return 0x1000 + (i < 10 ? i : i + ins) * stride;
  };
  for (const auto& [from, tos] : benign.adjacency()) {
    const std::size_t fi = (from - 0x1000) / stride;
    for (const std::uint64_t to : tos) {
      const std::size_t ti = (to - 0x1000) / stride;
      mixed.add_edge(mixed_addr(fi), mixed_addr(ti));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    fm[mixed_addr(i)] = fb.at(0x1000 + i * stride);
  }
  // The foreign block: a small cycle with alien fingerprints.
  const std::uint64_t block = 0x1000 + 10 * stride;
  for (std::size_t k = 0; k + 1 < ins; ++k) {
    mixed.add_edge(block + k * stride, block + (k + 1) * stride);
  }
  mixed.add_edge(block + (ins - 1) * stride, block);
  for (std::size_t k = 0; k < ins; ++k) {
    std::vector<double> alien(trace::kEventTypeCount, 0.0);
    alien[trace::kEventTypeCount - 1] = 50.0;
    fm[block + k * stride] = alien;
  }

  const CfgAligner aligner;
  const Alignment a = aligner.align(benign, mixed, &fb, &fm);
  EXPECT_GT(a.pivots.size(), n / 2);
  // Benign nodes translate back to their original address.
  std::size_t translated_ok = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = aligner.translate(a, mixed_addr(i));
    if (t.has_value() && *t == 0x1000 + i * stride) ++translated_ok;
  }
  EXPECT_GT(translated_ok, n * 3 / 4);
  // Inserted nodes must NOT translate (insertion interval detected).
  for (std::size_t k = 0; k < ins; ++k) {
    EXPECT_FALSE(aligner.translate(a, block + k * stride).has_value())
        << "inserted node " << k << " was translated";
  }
}

TEST(CfgAligner, EmptyGraphsYieldEmptyAlignment) {
  const AddressGraph empty;
  const AddressGraph g = synthetic_graph(0x1000, 10);
  const CfgAligner aligner;
  EXPECT_TRUE(aligner.align(empty, g).pivots.empty());
  EXPECT_TRUE(aligner.align(g, empty).pivots.empty());
  EXPECT_DOUBLE_EQ(aligner.align(empty, empty).pivot_fraction(), 0.0);
  EXPECT_FALSE(aligner.translate(Alignment{}, 0x1234).has_value());
}

TEST(CfgAligner, PivotMapIsMonotone) {
  util::Rng rng(3);
  const sim::Program app =
      sim::build_program(sim::app_spec("vim"), sim::kAppImageBase, rng);
  const sim::Program payload =
      sim::build_program(sim::payload_spec("pwddlg"), sim::kAppImageBase,
                         rng);
  const sim::SourceTrojan trojan =
      sim::make_source_trojan(app, payload, rng);
  const sim::LibraryRegistry registry = sim::LibraryRegistry::standard();
  const sim::Executor ex(registry, {});
  const auto split = [](const trace::RawLog& raw) {
    const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
    return trace::StackPartitioner(t.log.process_name).partition(t.log);
  };
  const auto benign_part =
      split(ex.run_benign(app, 4000, util::Rng(1)));
  const auto mixed_part =
      split(ex.run_source_trojan(trojan, 3000, util::Rng(2)).log);
  const CfgInference inference;
  const auto bcfg = inference.infer(benign_part);
  const auto mcfg = inference.infer(mixed_part);
  const auto fb = node_fingerprints(benign_part);
  const auto fm = node_fingerprints(mixed_part);
  const Alignment a = CfgAligner().align(bcfg.graph, mcfg.graph, &fb, &fm);
  ASSERT_GT(a.pivots.size(), 10u);
  std::uint64_t prev_b = 0;
  for (const auto& [m, b] : a.pivots) {
    EXPECT_GT(b, prev_b);  // strictly increasing in both coordinates
    prev_b = b;
  }
}

TEST(CfgAligner, TranslateCfgSendsUnknownAddressesToSentinels) {
  AddressGraph benign;
  benign.add_edge(0x1000, 0x1080);
  InferredCfg mixed;
  mixed.graph.add_edge(0x5000, 0x5080);
  mixed.edge_events[{0x5000, 0x5080}] = {3};
  Alignment a;
  a.pivots = {{0x5000, 0x1000}};  // only one endpoint known
  const CfgAligner aligner;
  const InferredCfg out = aligner.translate_cfg(a, mixed);
  EXPECT_EQ(out.graph.edge_count(), 1u);
  // 0x5000 translated; 0x5080 beyond the single pivot -> sentinel.
  const auto& adj = out.graph.adjacency();
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_EQ(adj.begin()->first, 0x1000u);
  EXPECT_GE(*adj.begin()->second.begin(), aligner.options().sentinel_base);
  // Events follow the translated edge.
  EXPECT_EQ(out.edge_events.begin()->second,
            (std::vector<std::uint64_t>{3}));
}

TEST(NodeFingerprints, CountEventTypesPerNode) {
  trace::PartitionedLog log;
  trace::PartitionedEvent e1;
  e1.type = trace::EventType::kFileRead;
  e1.app_stack = {0x10, 0x20};
  trace::PartitionedEvent e2;
  e2.type = trace::EventType::kNetworkSend;
  e2.app_stack = {0x10};
  log.events = {e1, e2};
  const NodeFingerprints fp = node_fingerprints(log);
  ASSERT_EQ(fp.size(), 2u);
  const auto read_id =
      static_cast<std::size_t>(trace::event_type_id(trace::EventType::kFileRead));
  const auto send_id = static_cast<std::size_t>(
      trace::event_type_id(trace::EventType::kNetworkSend));
  EXPECT_DOUBLE_EQ(fp.at(0x10)[read_id], 1.0);
  EXPECT_DOUBLE_EQ(fp.at(0x10)[send_id], 1.0);
  EXPECT_DOUBLE_EQ(fp.at(0x20)[read_id], 1.0);
  EXPECT_DOUBLE_EQ(fp.at(0x20)[send_id], 0.0);
}

// Integration: the full pipeline with alignment separates ground truth on a
// source trojan where exact-address assessment fails.
TEST(CfgAligner, PipelineAlignmentSeparatesSourceTrojanTruth) {
  sim::SimConfig cfg;
  cfg.benign_events = 4000;
  cfg.mixed_events = 3000;
  cfg.malicious_events = 500;
  const sim::ScenarioLogs logs =
      sim::generate_source_trojan_scenario("winscp", "reverse_tcp", cfg);
  const auto split = [](const trace::RawLog& raw) {
    const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
    return trace::StackPartitioner(t.log.process_name).partition(t.log);
  };
  const auto benign = split(logs.benign);
  const auto mixed = split(logs.mixed);

  core::PipelineOptions opt;
  opt.align_cfgs = true;
  const core::TrainingData td = core::LeapsPipeline(opt).prepare(benign,
                                                                 mixed);
  double sum_b = 0.0, sum_m = 0.0;
  std::size_t n_b = 0, n_m = 0;
  for (std::size_t i = 0; i < mixed.events.size(); ++i) {
    const auto it = td.event_benignity.find(mixed.events[i].seq);
    const double b = it == td.event_benignity.end() ? 1.0 : it->second;
    if (logs.mixed_truth[i]) {
      sum_m += b;
      ++n_m;
    } else {
      sum_b += b;
      ++n_b;
    }
  }
  ASSERT_GT(n_b, 0u);
  ASSERT_GT(n_m, 0u);
  EXPECT_GT(sum_b / n_b, 0.8);
  EXPECT_LT(sum_m / n_m, 0.2);
}

}  // namespace
}  // namespace leaps::cfg
