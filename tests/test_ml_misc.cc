// Unit tests for kernels, scaler, metrics, dataset, and cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/cross_validation.h"
#include "ml/dataset.h"
#include "ml/kernel.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "util/rng.h"

namespace leaps::ml {
namespace {

// ------------------------------------------------------------- kernel ----

TEST(Kernel, GaussianProperties) {
  KernelParams k;
  k.type = KernelType::kGaussian;
  k.sigma2 = 2.0;
  const FeatureVector a = {1.0, 2.0};
  const FeatureVector b = {2.0, 0.0};
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);              // k(x,x) = 1
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));          // symmetry
  EXPECT_DOUBLE_EQ(k(a, b), std::exp(-5.0 / 2.0));
  EXPECT_GT(k(a, b), 0.0);
}

TEST(Kernel, LinearIsDotProduct) {
  KernelParams k;
  k.type = KernelType::kLinear;
  EXPECT_DOUBLE_EQ(k({1.0, 2.0}, {3.0, 4.0}), 11.0);
}

TEST(Kernel, PolynomialMatchesDefinition) {
  KernelParams k;
  k.type = KernelType::kPolynomial;
  k.degree = 2;
  k.coef0 = 1.0;
  EXPECT_DOUBLE_EQ(k({1.0}, {2.0}), 9.0);  // (2+1)^2
}

TEST(Kernel, KernelTypeNames) {
  EXPECT_EQ(kernel_type_name(KernelType::kGaussian), "gaussian");
  EXPECT_EQ(kernel_type_name(KernelType::kLinear), "linear");
  EXPECT_EQ(kernel_type_name(KernelType::kPolynomial), "polynomial");
}

TEST(Kernel, GramMatrixSymmetricUnitDiagonal) {
  const std::vector<FeatureVector> X = {{0.0}, {1.0}, {2.0}};
  const auto K = gram_matrix(X, {});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(K[i][i], 1.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(K[i][j], K[j][i]);
  }
}

// -------------------------------------------------------------- scaler ----

TEST(Scaler, MapsTrainingRangeToUnit) {
  MinMaxScaler s;
  s.fit({{0.0, 10.0}, {4.0, 20.0}});
  EXPECT_EQ(s.transform({0.0, 10.0}), (FeatureVector{0.0, 0.0}));
  EXPECT_EQ(s.transform({4.0, 20.0}), (FeatureVector{1.0, 1.0}));
  EXPECT_EQ(s.transform({2.0, 15.0}), (FeatureVector{0.5, 0.5}));
}

TEST(Scaler, ClampsOutOfRangeTestValues) {
  MinMaxScaler s;
  s.fit({{0.0}, {1.0}});
  EXPECT_DOUBLE_EQ(s.transform({100.0})[0], 1.5);
  EXPECT_DOUBLE_EQ(s.transform({-100.0})[0], -0.5);
}

TEST(Scaler, DegenerateDimensionCollapsesToZero) {
  MinMaxScaler s;
  s.fit({{5.0, 1.0}, {5.0, 2.0}});
  EXPECT_DOUBLE_EQ(s.transform({5.0, 1.5})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.transform({99.0, 1.5})[0], 0.0);
}

TEST(Scaler, UsageErrorsThrow) {
  MinMaxScaler s;
  EXPECT_THROW(s.transform({1.0}), std::logic_error);  // before fit
  EXPECT_THROW(s.fit({}), std::logic_error);
  s.fit({{1.0, 2.0}});
  EXPECT_THROW(s.transform({1.0}), std::logic_error);  // dim mismatch
}

TEST(Scaler, TransformInPlaceCoversDataset) {
  MinMaxScaler s;
  s.fit({{0.0}, {2.0}});
  Dataset d;
  d.add({0.0}, 1);
  d.add({2.0}, -1);
  s.transform_in_place(d);
  EXPECT_DOUBLE_EQ(d.X[0][0], 0.0);
  EXPECT_DOUBLE_EQ(d.X[1][0], 1.0);
}

// ------------------------------------------------------------- metrics ----

TEST(ConfusionMatrix, CountsAllFourCells) {
  ConfusionMatrix cm;
  cm.add(1, 1);    // TP
  cm.add(1, -1);   // FN
  cm.add(-1, -1);  // TN
  cm.add(-1, -1);  // TN
  cm.add(-1, 1);   // FP
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 2u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.total(), 5u);
}

TEST(ConfusionMatrix, DerivedMeasuresMatchEqns6To10) {
  ConfusionMatrix cm;
  cm.tp = 8;
  cm.fn = 2;
  cm.tn = 9;
  cm.fp = 1;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 17.0 / 20.0);  // Eqn. 6
  EXPECT_DOUBLE_EQ(cm.ppv(), 8.0 / 9.0);         // Eqn. 7
  EXPECT_DOUBLE_EQ(cm.tpr(), 8.0 / 10.0);        // Eqn. 8
  EXPECT_DOUBLE_EQ(cm.tnr(), 9.0 / 10.0);        // Eqn. 9
  EXPECT_DOUBLE_EQ(cm.npv(), 9.0 / 11.0);        // Eqn. 10
}

TEST(ConfusionMatrix, EmptyDenominatorsAreZeroNotNan) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.ppv(), 0.0);
  EXPECT_EQ(cm.tpr(), 0.0);
  EXPECT_EQ(cm.tnr(), 0.0);
  EXPECT_EQ(cm.npv(), 0.0);
}

TEST(ConfusionMatrix, MergeAndLabelsValidation) {
  ConfusionMatrix a;
  a.add(1, 1);
  ConfusionMatrix b;
  b.add(-1, -1);
  a.merge(b);
  EXPECT_EQ(a.tp, 1u);
  EXPECT_EQ(a.tn, 1u);
  EXPECT_THROW(a.add(0, 1), std::logic_error);
}

TEST(Measurements, FromAndToString) {
  ConfusionMatrix cm;
  cm.tp = cm.tn = 9;
  cm.fp = cm.fn = 1;
  const Measurements m = Measurements::from(cm);
  EXPECT_DOUBLE_EQ(m.acc, 0.9);
  EXPECT_NE(m.to_string().find("ACC=0.900"), std::string::npos);
}

// ----------------------------------------------------------- ROC / AUC ----

TEST(RocAuc, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(
      roc_auc({3.0, 2.5, -1.0, -2.0}, {1, 1, -1, -1}), 1.0);
}

TEST(RocAuc, ReversedSeparationIsZero) {
  EXPECT_DOUBLE_EQ(
      roc_auc({-3.0, -2.5, 1.0, 2.0}, {1, 1, -1, -1}), 0.0);
}

TEST(RocAuc, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(roc_auc({1.0, 1.0, 1.0, 1.0}, {1, 1, -1, -1}), 0.5);
}

TEST(RocAuc, MatchesHandComputedMixedCase) {
  // scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0) → 3/4.
  EXPECT_DOUBLE_EQ(roc_auc({3.0, 1.0, 2.0, 0.0}, {1, 1, -1, -1}), 0.75);
}

TEST(RocAuc, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(roc_auc({1.0, 2.0}, {1, 1}), 0.5);
}

TEST(RocCurve, EndpointsAndMonotonicity) {
  const auto curve =
      roc_curve({3.0, 1.0, 2.0, 0.0, 2.0}, {1, 1, -1, -1, 1});
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

// -------------------------------------------------------------- dataset ----

TEST(Dataset, ValidateCatchesCorruption) {
  Dataset d;
  d.add({1.0, 2.0}, 1, 0.5);
  d.add({3.0, 4.0}, -1, 1.0);
  EXPECT_NO_THROW(d.validate());
  d.y[0] = 3;
  EXPECT_THROW(d.validate(), std::logic_error);
  d.y[0] = 1;
  d.weight[0] = 1.5;
  EXPECT_THROW(d.validate(), std::logic_error);
  d.weight[0] = 0.5;
  d.X[0].push_back(9.0);
  EXPECT_THROW(d.validate(), std::logic_error);
}

TEST(Dataset, SubsetAndAppend) {
  Dataset d;
  d.add({1.0}, 1, 0.1);
  d.add({2.0}, -1, 0.2);
  d.add({3.0}, 1, 0.3);
  const Dataset s = d.subset({2, 0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.X[0][0], 3.0);
  EXPECT_DOUBLE_EQ(s.weight[1], 0.1);
  EXPECT_THROW(d.subset({9}), std::logic_error);
  Dataset t;
  t.append(d);
  t.append(s);
  EXPECT_EQ(t.size(), 5u);
}

// ----------------------------------------------------- cross-validation ----

TEST(CrossValidation, FoldsPartitionTheIndexSpace) {
  util::Rng rng(1);
  const auto folds = make_folds(23, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<char> seen(23, 0);
  for (const auto& f : folds) {
    for (const std::size_t i : f) {
      EXPECT_LT(i, 23u);
      EXPECT_FALSE(seen[i]) << "index " << i << " in two folds";
      seen[i] = 1;
    }
  }
  for (const char c : seen) EXPECT_TRUE(c);
  EXPECT_THROW(make_folds(10, 1, rng), std::logic_error);
}

Dataset easy_dataset(util::Rng& rng) {
  Dataset d;
  for (int i = 0; i < 30; ++i) {
    d.add({rng.next_gaussian() * 0.1 + 1.0}, 1, 1.0);
    d.add({rng.next_gaussian() * 0.1 - 1.0}, -1, 1.0);
  }
  return d;
}

TEST(CrossValidation, HighAccuracyOnSeparableData) {
  util::Rng rng(2);
  const Dataset d = easy_dataset(rng);
  util::Rng cv_rng(3);
  EXPECT_GT(cross_validate(d, {}, 5, cv_rng), 0.9);
}

TEST(CrossValidation, WeightedValidationIgnoresZeroWeightErrors) {
  util::Rng rng(4);
  Dataset d = easy_dataset(rng);
  // Poison: mislabeled positives at weight 0 — weighted validation must not
  // let them drag the score down.
  for (int i = 0; i < 10; ++i) d.add({1.0}, -1, 0.0);
  util::Rng r1(5);
  util::Rng r2(5);
  const double weighted = cross_validate(d, {}, 5, r1, true);
  const double plain = cross_validate(d, {}, 5, r2, false);
  EXPECT_GT(weighted, plain);
  EXPECT_GT(weighted, 0.9);
}

TEST(CrossValidation, GridSearchFindsAWorkingCell) {
  util::Rng rng(6);
  const Dataset d = easy_dataset(rng);
  CrossValidationOptions opt;
  opt.lambdas = {0.001, 10.0};
  opt.sigma2s = {1.0};
  opt.folds = 5;
  util::Rng grid_rng(7);
  const GridSearchResult res = tune_svm(d, {}, opt, grid_rng);
  EXPECT_EQ(res.trials.size(), 2u);
  EXPECT_GT(res.best_accuracy, 0.9);
  EXPECT_DOUBLE_EQ(res.best.lambda, 10.0);
}

TEST(CrossValidation, GridSearchRejectsEmptyGrid) {
  util::Rng rng(8);
  const Dataset d = easy_dataset(rng);
  CrossValidationOptions opt;
  opt.lambdas = {};
  EXPECT_THROW(tune_svm(d, {}, opt, rng), std::logic_error);
}

}  // namespace
}  // namespace leaps::ml
