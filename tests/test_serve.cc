// Concurrency tests for the serving layer (src/serve/): queue backpressure
// semantics, registry snapshot isolation, and — the load-bearing property —
// that a DetectionServer classifying many interleaved sessions on many
// workers produces exactly the verdicts a sequential Detector::Stream
// produces per session, even while faults are injected into other
// sessions (crash isolation, circuit breaker, idle eviction, shedding).
// Run under -DLEAPS_SANITIZE=thread in CI (ctest -L concurrency).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "detector_fixture.h"
#include "serve/audit.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "util/fault.h"

namespace leaps::serve {
namespace {

using leaps::testing::TrainedDetector;
using leaps::testing::train_small_detector;

const TrainedDetector& fixture() {
  static const TrainedDetector* f =
      new TrainedDetector(train_small_detector());
  return *f;
}

// --- BoundedQueue ---------------------------------------------------------

TEST(BoundedQueue, BlockPolicyDeliversEverythingInOrder) {
  BoundedQueue<int> q(2, OverflowPolicy::kBlock);
  constexpr int kItems = 500;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  std::vector<int> got;
  while (auto item = q.pop()) got.push_back(*item);
  producer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
  EXPECT_LE(q.high_water(), 2u);
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(BoundedQueue, DropOldestEvictsFromTheFront) {
  BoundedQueue<int> q(4, OverflowPolicy::kDropOldest);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.push(i));  // never blocks, never fails while open
  }
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.dropped(), 6u);
  q.close();
  // Survivors are the newest four, still in order.
  for (int expected : {6, 7, 8, 9}) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, expected);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseUnblocksProducersAndDrainsConsumers) {
  BoundedQueue<int> q(1, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> blocked_push_returned{false};
  std::thread producer([&] {
    const bool ok = q.push(2);  // blocks: queue is full
    EXPECT_FALSE(ok);           // woken by close, item discarded
    blocked_push_returned.store(true);
  });
  // Give the producer time to park on the condition variable.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(blocked_push_returned.load());
  q.close();
  producer.join();
  EXPECT_TRUE(blocked_push_returned.load());
  EXPECT_EQ(q.pop(), std::optional<int>(1));  // still drains
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PopBatchTakesUpToMax) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.pop_batch(out, 100), 6u);
  q.close();
  out.clear();
  EXPECT_EQ(q.pop_batch(out, 4), 0u);
}

// --- DetectorRegistry -----------------------------------------------------

TEST(DetectorRegistry, ConcurrentReadersAndHotSwaps) {
  const TrainedDetector& f = fixture();
  DetectorRegistry registry;
  registry.add("app", f.detector);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto d = registry.find("app");
        ASSERT_NE(d, nullptr);
        reads.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    registry.add("app", f.detector);  // hot swap
  }
  // On a loaded single-core box the swaps can finish before any reader is
  // ever scheduled; don't stop until the readers have observed something.
  while (reads.load() == 0) std::this_thread::yield();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(DetectorRegistry, SessionsPinTheirSnapshotAcrossSwaps) {
  const TrainedDetector& f = fixture();
  DetectionServer server({.workers = 1});
  server.registry().add("app", f.detector);
  const auto session =
      server.open_session({"host", 1}, "app");
  ASSERT_NE(session, nullptr);
  // Swap in a different detector object; the open session is unaffected,
  // new sessions get the replacement.
  auto replacement = std::make_shared<const core::Detector>(*f.detector);
  server.registry().add("app", replacement);
  EXPECT_EQ(server.registry().find("app"), replacement);
  EXPECT_EQ(server.sessions().find({"host", 1}), session);
}

// --- DetectionServer ------------------------------------------------------

TEST(DetectionServer, RejectsUnknownProfileAndNullSession) {
  DetectionServer server({.workers = 1});
  EXPECT_EQ(server.open_session({"h", 1}, "no_such_profile"), nullptr);
  EXPECT_FALSE(server.submit({"h", 1}, trace::PartitionedEvent{}));
  EXPECT_EQ(server.metrics().snapshot().events_rejected, 1u);
}

TEST(DetectionServer, ParallelSessionsMatchSequentialStreams) {
  const TrainedDetector& f = fixture();
  constexpr std::size_t kSessions = 6;

  ServerOptions options;
  options.workers = 3;
  options.queue_capacity = 256;
  options.batch_size = 32;
  DetectionServer server(options);
  server.registry().add("app", f.detector);

  // Collect every verdict the workers emit, per session.
  std::mutex verdict_mu;
  std::map<std::string, std::vector<std::pair<std::size_t, int>>> verdicts;
  server.set_verdict_sink([&](const VerdictRecord& v) {
    const std::lock_guard<std::mutex> lock(verdict_mu);
    verdicts[v.key.to_string()].emplace_back(v.window_index, v.label);
  });
  server.start();

  // Session s replays one of the three logs; producers run concurrently.
  const std::vector<const trace::PartitionedLog*> logs = {
      &f.benign, &f.mixed, &f.malicious};
  std::vector<std::shared_ptr<Session>> sessions;
  for (std::size_t s = 0; s < kSessions; ++s) {
    sessions.push_back(server.open_session(
        {"host" + std::to_string(s), static_cast<std::uint32_t>(s)}, "app"));
    ASSERT_NE(sessions.back(), nullptr);
  }
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    producers.emplace_back([&, s] {
      for (const trace::PartitionedEvent& e : logs[s % logs.size()]->events) {
        ASSERT_TRUE(server.submit(sessions[s], e));
      }
    });
  }
  for (auto& p : producers) p.join();
  server.drain();

  const MetricsSnapshot m = server.metrics().snapshot();
  EXPECT_EQ(m.events_dropped, 0u);
  EXPECT_EQ(m.events_rejected, 0u);
  EXPECT_EQ(m.events_processed, m.events_ingested);

  // Every session's serving verdicts must equal a sequential stream's.
  for (std::size_t s = 0; s < kSessions; ++s) {
    const trace::PartitionedLog& log = *logs[s % logs.size()];
    core::Detector::Stream reference = f.detector->stream();
    std::vector<std::pair<std::size_t, int>> expected;
    for (const trace::PartitionedEvent& e : log.events) {
      if (const auto label = reference.push(e)) {
        expected.emplace_back(expected.size(), *label);
      }
    }
    const SessionKey key{"host" + std::to_string(s),
                         static_cast<std::uint32_t>(s)};
    const auto report = server.close_session(key);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->events_seen, log.events.size());
    EXPECT_EQ(report->windows, expected.size());
    EXPECT_EQ(report->benign_windows, reference.tally().benign_windows);
    EXPECT_EQ(report->malicious_windows,
              reference.tally().malicious_windows);
    const std::lock_guard<std::mutex> lock(verdict_mu);
    EXPECT_EQ(verdicts[key.to_string()], expected)
        << "session " << s << " diverged from the sequential stream";
  }
  server.stop();
}

TEST(DetectionServer, DropOldestSheddingIsCountedAndBounded) {
  const TrainedDetector& f = fixture();
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  options.overflow = OverflowPolicy::kDropOldest;
  DetectionServer server(options);
  server.registry().add("app", f.detector);
  const auto session = server.open_session({"h", 1}, "app");
  ASSERT_NE(session, nullptr);

  // Workers are not started yet: the queue must shed.
  constexpr std::size_t kEvents = 100;
  for (std::size_t i = 0; i < kEvents; ++i) {
    EXPECT_TRUE(server.submit(session, f.benign.events[i]));
  }
  server.start();
  server.drain();  // must terminate despite the shed events
  const MetricsSnapshot m = server.metrics().snapshot();
  EXPECT_EQ(m.events_ingested, kEvents);
  EXPECT_EQ(m.events_dropped, kEvents - options.queue_capacity);
  EXPECT_EQ(m.events_processed, options.queue_capacity);
  EXPECT_LE(m.queue_high_water, options.queue_capacity);
  server.stop();
}

TEST(DetectionServer, SubmitAfterStopIsRejected) {
  const TrainedDetector& f = fixture();
  DetectionServer server({.workers = 1});
  server.registry().add("app", f.detector);
  const auto session = server.open_session({"h", 1}, "app");
  server.start();
  server.stop();
  EXPECT_FALSE(server.submit(session, f.benign.events[0]));
  EXPECT_EQ(server.metrics().snapshot().events_rejected, 1u);
}

// --- Crash isolation / self-healing ---------------------------------------

void expect_accounting_identity(const MetricsSnapshot& m) {
  EXPECT_EQ(m.events_ingested,
            m.events_processed + m.events_dropped + m.events_quarantined);
}

TEST(SessionBreaker, ConsecutiveFailuresQuarantineMidRun) {
  const TrainedDetector& f = fixture();
  Session session({"h", 1}, "app", f.detector);
  const util::ScopedFault fault("serve.worker.classify",
                                {.action = util::FaultAction::kThrow});

  std::vector<const trace::PartitionedEvent*> run;
  for (std::size_t i = 0; i < 5; ++i) run.push_back(&f.benign.events[i]);
  std::vector<Verdict> verdicts;
  const RunOutcome o = session.feed_run(run.data(), run.size(), verdicts,
                                        /*breaker_threshold=*/3);
  // Events 1-3 fail (tripping the breaker at the third), 4-5 are skipped.
  EXPECT_EQ(o.processed, 0u);
  EXPECT_EQ(o.failed, 3u);
  EXPECT_EQ(o.skipped, 2u);
  EXPECT_TRUE(o.newly_quarantined);
  EXPECT_TRUE(session.quarantined());
  EXPECT_TRUE(verdicts.empty());

  const SessionReport report = session.report();
  EXPECT_TRUE(report.quarantined);
  EXPECT_EQ(report.failed_events, 3u);
}

TEST(SessionBreaker, SuccessResetsTheFailureStreak) {
  const TrainedDetector& f = fixture();
  Session session({"h", 1}, "app", f.detector);
  std::vector<Verdict> verdicts;

  // Two failures, then clean events, then two more failures: the streak
  // resets in between, so a threshold of 3 never trips.
  const trace::PartitionedEvent* one[] = {&f.benign.events[0]};
  {
    const util::ScopedFault fault("serve.worker.classify",
                                  {.action = util::FaultAction::kThrow});
    for (int i = 0; i < 2; ++i) {
      session.feed_run(one, 1, verdicts, 3);
    }
  }
  session.feed_run(one, 1, verdicts, 3);  // clean: resets the streak
  {
    const util::ScopedFault fault("serve.worker.classify",
                                  {.action = util::FaultAction::kThrow});
    for (int i = 0; i < 2; ++i) {
      session.feed_run(one, 1, verdicts, 3);
    }
  }
  EXPECT_FALSE(session.quarantined());
  EXPECT_EQ(session.report().failed_events, 4u);

  // Threshold 0 disables the breaker entirely.
  const util::ScopedFault fault("serve.worker.classify",
                                {.action = util::FaultAction::kThrow});
  for (int i = 0; i < 10; ++i) session.feed_run(one, 1, verdicts, 0);
  EXPECT_FALSE(session.quarantined());
}

TEST(DetectionServer, FaultQuarantinesOnlyTheAffectedSession) {
  const TrainedDetector& f = fixture();
  ServerOptions options;
  options.workers = 2;
  options.batch_size = 16;
  options.circuit_breaker = 1;
  DetectionServer server(options);
  server.registry().add("app", f.detector);

  std::mutex verdict_mu;
  std::map<std::string, std::vector<int>> verdicts;
  server.set_verdict_sink([&](const VerdictRecord& v) {
    const std::lock_guard<std::mutex> lock(verdict_mu);
    verdicts[v.key.to_string()].push_back(v.label);
  });

  const SessionKey victim_key{"victim", 1};
  const SessionKey steady_key{"steady", 2};
  const auto victim = server.open_session(victim_key, "app");
  const auto steady = server.open_session(steady_key, "app");
  ASSERT_NE(victim, nullptr);
  ASSERT_NE(steady, nullptr);

  // Every event of the victim session throws; the steady session is
  // untouched (the filter matches the victim's "host:pid" key string).
  const util::ScopedFault fault(
      "serve.worker.classify",
      {.action = util::FaultAction::kThrow, .filter = "victim"});
  server.start();
  std::thread victim_producer([&] {
    for (const trace::PartitionedEvent& e : f.mixed.events) {
      server.submit(victim, e);
    }
  });
  std::thread steady_producer([&] {
    for (const trace::PartitionedEvent& e : f.mixed.events) {
      ASSERT_TRUE(server.submit(steady, e));
    }
  });
  victim_producer.join();
  steady_producer.join();
  server.drain();

  EXPECT_TRUE(victim->quarantined());
  EXPECT_FALSE(steady->quarantined());

  const MetricsSnapshot m = server.metrics().snapshot();
  expect_accounting_identity(m);
  EXPECT_EQ(m.sessions_quarantined, 1u);
  EXPECT_GE(m.events_failed, 1u);
  EXPECT_GE(m.events_quarantined, m.events_failed);

  // The steady session's verdicts match a fault-free sequential stream.
  core::Detector::Stream reference = f.detector->stream();
  std::vector<int> expected;
  for (const trace::PartitionedEvent& e : f.mixed.events) {
    if (const auto label = reference.push(e)) expected.push_back(*label);
  }
  {
    const std::lock_guard<std::mutex> lock(verdict_mu);
    EXPECT_EQ(verdicts[steady_key.to_string()], expected);
  }
  server.stop();
}

TEST(DetectionServer, QuarantinedSessionRejectsNewSubmits) {
  const TrainedDetector& f = fixture();
  DetectionServer server({.workers = 1});
  server.registry().add("app", f.detector);
  const auto session = server.open_session({"h", 1}, "app");
  ASSERT_NE(session, nullptr);
  session->quarantine();
  EXPECT_FALSE(server.submit(session, f.benign.events[0]));
  EXPECT_EQ(server.metrics().snapshot().events_rejected, 1u);
  EXPECT_EQ(server.metrics().snapshot().events_ingested, 0u);
}

TEST(DetectionServer, IdleSessionsAreEvictedByTheSweep) {
  const TrainedDetector& f = fixture();
  ServerOptions options;
  options.workers = 1;
  options.idle_ttl = std::chrono::milliseconds(40);
  options.sweep_interval = std::chrono::milliseconds(1000);  // manual sweeps
  DetectionServer server(options);
  server.registry().add("app", f.detector);

  const auto idle = server.open_session({"idle", 1}, "app");
  const auto busy = server.open_session({"busy", 2}, "app");
  ASSERT_NE(idle, nullptr);
  ASSERT_NE(busy, nullptr);
  EXPECT_EQ(server.sweep_idle_now(), 0u);  // both fresh

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  busy->feed(f.benign.events[0]);  // refreshes last_active
  EXPECT_EQ(server.sweep_idle_now(), 1u);  // only "idle" crossed the TTL
  EXPECT_EQ(server.sessions().active(), 1u);
  EXPECT_NE(server.sessions().find({"busy", 2}), nullptr);
  EXPECT_EQ(server.sessions().find({"idle", 1}), nullptr);
  EXPECT_EQ(server.metrics().snapshot().sessions_evicted, 1u);
}

TEST(DetectionServer, SweeperThreadEvictsWithoutManualCalls) {
  const TrainedDetector& f = fixture();
  ServerOptions options;
  options.workers = 1;
  options.idle_ttl = std::chrono::milliseconds(20);
  options.sweep_interval = std::chrono::milliseconds(5);
  DetectionServer server(options);
  server.registry().add("app", f.detector);
  server.start();
  ASSERT_NE(server.open_session({"h", 1}, "app"), nullptr);
  // Generous deadline: the sweeper runs every 5ms, the TTL is 20ms.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.sessions().active() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.sessions().active(), 0u);
  EXPECT_EQ(server.metrics().snapshot().sessions_evicted, 1u);
  server.stop();
}

TEST(DetectionServer, OpenSessionRetriesTransientRegistryMisses) {
  const TrainedDetector& f = fixture();
  ServerOptions options;
  options.workers = 1;
  options.registry_retries = 2;
  options.registry_backoff = std::chrono::milliseconds(1);
  DetectionServer server(options);
  server.registry().add("app", f.detector);

  // A hard outage exhausts the retry budget deterministically.
  {
    const util::ScopedFault fault(
        "serve.registry.find",
        {.action = util::FaultAction::kError,
         .error_code = util::StatusCode::kUnavailable});
    EXPECT_EQ(server.open_session({"h", 1}, "app"), nullptr);
    EXPECT_EQ(server.metrics().snapshot().registry_retries, 2u);
  }

  // A reload that lands mid-retry is absorbed: the profile appears after
  // the first miss and open_session recovers without the caller noticing.
  ServerOptions patient = options;
  patient.registry_retries = 100;
  DetectionServer late(patient);
  std::thread reloader([&late, &f] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    late.registry().add("late", f.detector);
  });
  EXPECT_NE(late.open_session({"h", 2}, "late"), nullptr);
  reloader.join();
  EXPECT_GE(late.metrics().snapshot().registry_retries, 1u);
}

TEST(DetectionServer, SheddingEngagesUnderInjectedLatency) {
  const TrainedDetector& f = fixture();
  ServerOptions options;
  options.workers = 1;
  options.batch_size = 8;
  options.queue_capacity = 8;
  options.shed_queue_wait_us = 100;
  DetectionServer server(options);
  server.registry().add("app", f.detector);
  const auto session = server.open_session({"slow", 1}, "app");
  ASSERT_NE(session, nullptr);

  // Every classification sleeps 1ms: with an 8-deep queue, queued events
  // wait >> 100us, so the shard must flip to shedding — and the blocked
  // kBlock producer must keep making progress by dropping oldest.
  const util::ScopedFault fault("serve.worker.classify",
                                {.action = util::FaultAction::kDelay,
                                 .delay = std::chrono::milliseconds(1)});
  server.start();
  for (std::size_t i = 0; i < 400; ++i) {
    server.submit(session, f.benign.events[i % f.benign.events.size()]);
  }
  server.drain();
  const MetricsSnapshot m = server.metrics().snapshot();
  expect_accounting_identity(m);
  EXPECT_GE(m.shed_activations, 1u);
  EXPECT_GE(m.events_shed, 1u);
  EXPECT_LE(m.events_shed, m.events_dropped);
  server.stop();
}

TEST(DetectionServer, EvictionRacingStopIsClean) {
  // Regression hammer for the sweeper-vs-stop() shutdown race: the idle
  // sweeper evicts sessions (taking session mutexes and touching the
  // session map) while stop() tears down the worker pool and the sweeper
  // itself. Tiny TTLs + immediate stop maximize the overlap; TSan (this
  // file runs under -DLEAPS_SANITIZE=thread in CI) turns any unsynchronized
  // access into a failure. Producers keep submitting through the teardown
  // on purpose — submits may fail once stopped, but must never race.
  const TrainedDetector& f = fixture();
  for (int round = 0; round < 20; ++round) {
    ServerOptions options;
    options.workers = 2;
    options.idle_ttl = std::chrono::milliseconds(1);
    options.sweep_interval = std::chrono::milliseconds(1);
    DetectionServer server(options);
    server.registry().add("app", f.detector);
    server.start();

    std::vector<std::shared_ptr<Session>> sessions;
    for (std::uint32_t s = 0; s < 4; ++s) {
      sessions.push_back(server.open_session({"race", s}, "app"));
      ASSERT_NE(sessions.back(), nullptr);
    }
    std::atomic<bool> halt{false};
    std::thread producer([&] {
      std::size_t i = 0;
      while (!halt.load(std::memory_order_relaxed)) {
        // Mix pinned-handle and by-key submits so both lookup paths race
        // the eviction; either may fail (evicted/stopped), never crash.
        server.submit(sessions[i % sessions.size()],
                      f.benign.events[i % f.benign.events.size()]);
        server.submit({"race", static_cast<std::uint32_t>(i % 4)},
                      f.benign.events[i % f.benign.events.size()]);
        ++i;
      }
    });
    // Let eviction and traffic overlap, then stop mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(2 + round % 3));
    server.stop();
    halt.store(true, std::memory_order_relaxed);
    producer.join();

    const MetricsSnapshot m = server.metrics().snapshot();
    expect_accounting_identity(m);
  }
}

// --- AuditLog (verdict provenance) ----------------------------------------

// Structural JSON check: balanced {}/[] outside string literals, one
// complete object, no trailing garbage. CI additionally pipes real audit
// output through `python -m json.tool`; this keeps the unit test
// dependency-free.
bool looks_like_one_json_object(const std::string& s) {
  if (s.empty() || s.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
      if (depth == 0) return i + 1 == s.size();
    }
  }
  return false;
}

TEST(AuditLog, FormatRecordExplainsTheVerdict) {
  // cfg_terms come from the ContinualState's benign CFG, so this test
  // needs a continual-enabled model (the shared fixture trains without).
  static const TrainedDetector* trained = new TrainedDetector(
      train_small_detector("vim_reverse_tcp_online", 1200, 7,
                           /*with_continual=*/true));
  const TrainedDetector& f = *trained;
  // The explanation re-featurizes the events, so the slice must be exactly
  // one detector window — the same contract the server's tap honors.
  const std::size_t win = f.detector->preprocessor().window();
  ASSERT_GE(f.malicious.events.size(), win);
  const std::vector<trace::PartitionedEvent> events(
      f.malicious.events.begin(),
      f.malicious.events.begin() + static_cast<std::ptrdiff_t>(win));
  const SessionKey key{"web1", 4242};
  const std::string line = AuditLog::format_record(
      key, "default", 12, -1, -0.41, events, *f.detector, /*top_k=*/3);

  EXPECT_TRUE(looks_like_one_json_object(line)) << line;
  const std::string events_field = "\"events\":" + std::to_string(win);
  EXPECT_NE(line.find(events_field), std::string::npos) << line;
  for (const char* field :
       {"\"window\":12", "\"host\":\"web1\"", "\"pid\":4242",
        "\"profile\":\"default\"", "\"label\":-1",
        "\"decision_value\":-0.41", "\"threshold\":",
        "\"sv_contributions\":[", "\"sv\":", "\"coefficient\":",
        "\"kernel\":", "\"contribution\":", "\"cfg_terms\":[",
        "\"address\":\"0x"}) {
    EXPECT_NE(line.find(field), std::string::npos)
        << "missing " << field << " in:\n" << line;
  }
  // top_k bounds the explanation: at most 3 support vectors listed.
  std::size_t svs = 0;
  for (std::size_t pos = line.find("\"sv\":"); pos != std::string::npos;
       pos = line.find("\"sv\":", pos + 1)) {
    ++svs;
  }
  EXPECT_LE(svs, 3u);
  EXPECT_GE(svs, 1u);
}

TEST(AuditLog, WritesOneJsonLinePerAnomalousWindow) {
  const TrainedDetector& f = fixture();
  char tmpl[] = "/tmp/leaps-audit-XXXXXX";
  const int fd = mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string path = tmpl;

  {
    const std::size_t win = f.detector->preprocessor().window();
    AuditLog log(AuditOptions{path, /*queue_capacity=*/16, /*top_k=*/2});
    ASSERT_TRUE(log.start().ok());
    const SessionKey key{"db7", 99};
    for (std::size_t i = 0; i < 3; ++i) {
      log.submit(key, "default", i, -1, -0.5 - 0.1 * i,
                 f.malicious.events.data(), win, f.detector);
    }
    log.stop();
    EXPECT_EQ(log.written(), 3u);
    EXPECT_EQ(log.dropped(), 0u);
    // submit() after stop() drops, never blocks or crashes.
    log.submit(key, "default", 9, -1, -1.0, f.malicious.events.data(), win,
               f.detector);
    EXPECT_EQ(log.dropped(), 1u);
  }

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(looks_like_one_json_object(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

TEST(AuditLog, FullQueueDropsInsteadOfBlocking) {
  const TrainedDetector& f = fixture();
  // Never started: the writer thread isn't draining, so every submit
  // falls through to the drop path immediately — the caller (a worker
  // thread holding the session mutex) must not stall.
  AuditLog log(AuditOptions{"/dev/null", /*queue_capacity=*/2, /*top_k=*/1});
  const SessionKey key{"h", 1};
  for (std::size_t i = 0; i < 5; ++i) {
    log.submit(key, "default", i, -1, -0.5, f.malicious.events.data(),
               f.detector->preprocessor().window(), f.detector);
  }
  EXPECT_EQ(log.written(), 0u);
  EXPECT_EQ(log.dropped(), 5u);
}

}  // namespace
}  // namespace leaps::serve
