// Concurrency tests for the serving layer (src/serve/): queue backpressure
// semantics, registry snapshot isolation, and — the load-bearing property —
// that a DetectionServer classifying many interleaved sessions on many
// workers produces exactly the verdicts a sequential Detector::Stream
// produces per session. Run under -DLEAPS_SANITIZE=thread in CI
// (ctest -L concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "detector_fixture.h"
#include "serve/queue.h"
#include "serve/server.h"

namespace leaps::serve {
namespace {

using leaps::testing::TrainedDetector;
using leaps::testing::train_small_detector;

const TrainedDetector& fixture() {
  static const TrainedDetector* f =
      new TrainedDetector(train_small_detector());
  return *f;
}

// --- BoundedQueue ---------------------------------------------------------

TEST(BoundedQueue, BlockPolicyDeliversEverythingInOrder) {
  BoundedQueue<int> q(2, OverflowPolicy::kBlock);
  constexpr int kItems = 500;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  std::vector<int> got;
  while (auto item = q.pop()) got.push_back(*item);
  producer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
  EXPECT_LE(q.high_water(), 2u);
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(BoundedQueue, DropOldestEvictsFromTheFront) {
  BoundedQueue<int> q(4, OverflowPolicy::kDropOldest);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.push(i));  // never blocks, never fails while open
  }
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.dropped(), 6u);
  q.close();
  // Survivors are the newest four, still in order.
  for (int expected : {6, 7, 8, 9}) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, expected);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseUnblocksProducersAndDrainsConsumers) {
  BoundedQueue<int> q(1, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> blocked_push_returned{false};
  std::thread producer([&] {
    const bool ok = q.push(2);  // blocks: queue is full
    EXPECT_FALSE(ok);           // woken by close, item discarded
    blocked_push_returned.store(true);
  });
  // Give the producer time to park on the condition variable.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(blocked_push_returned.load());
  q.close();
  producer.join();
  EXPECT_TRUE(blocked_push_returned.load());
  EXPECT_EQ(q.pop(), std::optional<int>(1));  // still drains
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PopBatchTakesUpToMax) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.pop_batch(out, 100), 6u);
  q.close();
  out.clear();
  EXPECT_EQ(q.pop_batch(out, 4), 0u);
}

// --- DetectorRegistry -----------------------------------------------------

TEST(DetectorRegistry, ConcurrentReadersAndHotSwaps) {
  const TrainedDetector& f = fixture();
  DetectorRegistry registry;
  registry.add("app", f.detector);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto d = registry.find("app");
        ASSERT_NE(d, nullptr);
        reads.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    registry.add("app", f.detector);  // hot swap
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(DetectorRegistry, SessionsPinTheirSnapshotAcrossSwaps) {
  const TrainedDetector& f = fixture();
  DetectionServer server({.workers = 1});
  server.registry().add("app", f.detector);
  const auto session =
      server.open_session({"host", 1}, "app");
  ASSERT_NE(session, nullptr);
  // Swap in a different detector object; the open session is unaffected,
  // new sessions get the replacement.
  auto replacement = std::make_shared<const core::Detector>(*f.detector);
  server.registry().add("app", replacement);
  EXPECT_EQ(server.registry().find("app"), replacement);
  EXPECT_EQ(server.sessions().find({"host", 1}), session);
}

// --- DetectionServer ------------------------------------------------------

TEST(DetectionServer, RejectsUnknownProfileAndNullSession) {
  DetectionServer server({.workers = 1});
  EXPECT_EQ(server.open_session({"h", 1}, "no_such_profile"), nullptr);
  EXPECT_FALSE(server.submit({"h", 1}, trace::PartitionedEvent{}));
  EXPECT_EQ(server.metrics().snapshot().events_rejected, 1u);
}

TEST(DetectionServer, ParallelSessionsMatchSequentialStreams) {
  const TrainedDetector& f = fixture();
  constexpr std::size_t kSessions = 6;

  ServerOptions options;
  options.workers = 3;
  options.queue_capacity = 256;
  options.batch_size = 32;
  DetectionServer server(options);
  server.registry().add("app", f.detector);

  // Collect every verdict the workers emit, per session.
  std::mutex verdict_mu;
  std::map<std::string, std::vector<std::pair<std::size_t, int>>> verdicts;
  server.set_verdict_sink([&](const VerdictRecord& v) {
    const std::lock_guard<std::mutex> lock(verdict_mu);
    verdicts[v.key.to_string()].emplace_back(v.window_index, v.label);
  });
  server.start();

  // Session s replays one of the three logs; producers run concurrently.
  const std::vector<const trace::PartitionedLog*> logs = {
      &f.benign, &f.mixed, &f.malicious};
  std::vector<std::shared_ptr<Session>> sessions;
  for (std::size_t s = 0; s < kSessions; ++s) {
    sessions.push_back(server.open_session(
        {"host" + std::to_string(s), static_cast<std::uint32_t>(s)}, "app"));
    ASSERT_NE(sessions.back(), nullptr);
  }
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    producers.emplace_back([&, s] {
      for (const trace::PartitionedEvent& e : logs[s % logs.size()]->events) {
        ASSERT_TRUE(server.submit(sessions[s], e));
      }
    });
  }
  for (auto& p : producers) p.join();
  server.drain();

  const MetricsSnapshot m = server.metrics().snapshot();
  EXPECT_EQ(m.events_dropped, 0u);
  EXPECT_EQ(m.events_rejected, 0u);
  EXPECT_EQ(m.events_processed, m.events_ingested);

  // Every session's serving verdicts must equal a sequential stream's.
  for (std::size_t s = 0; s < kSessions; ++s) {
    const trace::PartitionedLog& log = *logs[s % logs.size()];
    core::Detector::Stream reference = f.detector->stream();
    std::vector<std::pair<std::size_t, int>> expected;
    for (const trace::PartitionedEvent& e : log.events) {
      if (const auto label = reference.push(e)) {
        expected.emplace_back(expected.size(), *label);
      }
    }
    const SessionKey key{"host" + std::to_string(s),
                         static_cast<std::uint32_t>(s)};
    const auto report = server.close_session(key);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->events_seen, log.events.size());
    EXPECT_EQ(report->windows, expected.size());
    EXPECT_EQ(report->benign_windows, reference.tally().benign_windows);
    EXPECT_EQ(report->malicious_windows,
              reference.tally().malicious_windows);
    const std::lock_guard<std::mutex> lock(verdict_mu);
    EXPECT_EQ(verdicts[key.to_string()], expected)
        << "session " << s << " diverged from the sequential stream";
  }
  server.stop();
}

TEST(DetectionServer, DropOldestSheddingIsCountedAndBounded) {
  const TrainedDetector& f = fixture();
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  options.overflow = OverflowPolicy::kDropOldest;
  DetectionServer server(options);
  server.registry().add("app", f.detector);
  const auto session = server.open_session({"h", 1}, "app");
  ASSERT_NE(session, nullptr);

  // Workers are not started yet: the queue must shed.
  constexpr std::size_t kEvents = 100;
  for (std::size_t i = 0; i < kEvents; ++i) {
    EXPECT_TRUE(server.submit(session, f.benign.events[i]));
  }
  server.start();
  server.drain();  // must terminate despite the shed events
  const MetricsSnapshot m = server.metrics().snapshot();
  EXPECT_EQ(m.events_ingested, kEvents);
  EXPECT_EQ(m.events_dropped, kEvents - options.queue_capacity);
  EXPECT_EQ(m.events_processed, options.queue_capacity);
  EXPECT_LE(m.queue_high_water, options.queue_capacity);
  server.stop();
}

TEST(DetectionServer, SubmitAfterStopIsRejected) {
  const TrainedDetector& f = fixture();
  DetectionServer server({.workers = 1});
  server.registry().add("app", f.detector);
  const auto session = server.open_session({"h", 1}, "app");
  server.start();
  server.stop();
  EXPECT_FALSE(server.submit(session, f.benign.events[0]));
  EXPECT_EQ(server.metrics().snapshot().events_rejected, 1u);
}

}  // namespace
}  // namespace leaps::serve
