// Unit tests for Weight Assessment (Algorithm 2): ESTIMATE_WEIGHT,
// path benignity, and per-event averaging.
#include <gtest/gtest.h>

#include "cfg/weight.h"

namespace leaps::cfg {
namespace {

AddressGraph chain_graph() {
  // Benign CFG: 100 → 200 → 300; density array {100,100,200,200,300,300}.
  AddressGraph g;
  g.add_edge(100, 200);
  g.add_edge(200, 300);
  return g;
}

TEST(EstimateWeight, ExactNodeScoresOne) {
  const std::vector<std::uint64_t> density = {100, 200, 300};
  EXPECT_DOUBLE_EQ(WeightAssessor::estimate_weight(100, density), 1.0);
  EXPECT_DOUBLE_EQ(WeightAssessor::estimate_weight(200, density), 1.0);
  EXPECT_DOUBLE_EQ(WeightAssessor::estimate_weight(300, density), 1.0);
}

TEST(EstimateWeight, MidpointScoresHalf) {
  const std::vector<std::uint64_t> density = {100, 200};
  EXPECT_DOUBLE_EQ(WeightAssessor::estimate_weight(150, density), 0.5);
}

TEST(EstimateWeight, InterpolatesTowardNearestNode) {
  const std::vector<std::uint64_t> density = {100, 200};
  // 110 is 10 away from 100 in a gap of 100: weight 1 - 10/100 = 0.9.
  EXPECT_DOUBLE_EQ(WeightAssessor::estimate_weight(110, density), 0.9);
  EXPECT_DOUBLE_EQ(WeightAssessor::estimate_weight(190, density), 0.9);
}

TEST(EstimateWeight, DuplicateNodesNeverDivideByZero) {
  const std::vector<std::uint64_t> density = {100, 100, 100};
  EXPECT_DOUBLE_EQ(WeightAssessor::estimate_weight(100, density), 1.0);
}

TEST(EstimateWeight, OutOfRangeIsAPreconditionViolation) {
  const std::vector<std::uint64_t> density = {100, 200};
  EXPECT_THROW(WeightAssessor::estimate_weight(99, density),
               std::logic_error);
  EXPECT_THROW(WeightAssessor::estimate_weight(201, density),
               std::logic_error);
  EXPECT_THROW(WeightAssessor::estimate_weight(100, {}), std::logic_error);
}

TEST(PathBenignity, ConnectedPathScoresOne) {
  const AddressGraph benign = chain_graph();
  const WeightAssessor assessor(benign);
  EXPECT_DOUBLE_EQ(assessor.path_benignity(100, 200), 1.0);
  // Transitively connected counts too (CHECK_CFG is a reachability test).
  EXPECT_DOUBLE_EQ(assessor.path_benignity(100, 300), 1.0);
}

TEST(PathBenignity, UnconnectedInRangePathIsEstimated) {
  const AddressGraph benign = chain_graph();
  const WeightAssessor assessor(benign);
  // 300 → 100 is not a benign path but both endpoints sit on benign nodes.
  EXPECT_DOUBLE_EQ(assessor.path_benignity(300, 100), 1.0);
  // Start between nodes: estimated from the density array.
  const double w = assessor.path_benignity(150, 100);
  EXPECT_GT(w, 0.0);
  EXPECT_LT(w, 1.0);
}

TEST(PathBenignity, FarPathsScoreZero) {
  const AddressGraph benign = chain_graph();
  const WeightAssessor assessor(benign);
  EXPECT_DOUBLE_EQ(assessor.path_benignity(5000, 6000), 0.0);
  // One endpoint out of range is enough (WITHIN_RANGE checks both).
  EXPECT_DOUBLE_EQ(assessor.path_benignity(200, 5000), 0.0);
  EXPECT_DOUBLE_EQ(assessor.path_benignity(5000, 200), 0.0);
  EXPECT_DOUBLE_EQ(assessor.path_benignity(10, 200), 0.0);
}

TEST(WeightAssessor, DensityArrayComesFromBenignGraph) {
  const AddressGraph benign = chain_graph();
  const WeightAssessor assessor(benign);
  // Two edges, each contributing both endpoints: {100,200} and {200,300}.
  EXPECT_EQ(assessor.density_array(),
            (std::vector<std::uint64_t>{100, 200, 200, 300}));
}

TEST(WeightAssessor, AssessAveragesPathWeightsPerEvent) {
  const AddressGraph benign = chain_graph();
  const WeightAssessor assessor(benign);

  InferredCfg mixed;
  // Event 7 maps to a benign path (weight 1) and a far path (weight 0):
  // running mean = 0.5.
  mixed.graph.add_edge(100, 200);
  mixed.edge_events[{100, 200}] = {7};
  mixed.graph.add_edge(5000, 6000);
  mixed.edge_events[{5000, 6000}] = {7, 8};

  const auto weights = assessor.assess(mixed);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights.at(7), 0.5);
  EXPECT_DOUBLE_EQ(weights.at(8), 0.0);
}

TEST(WeightAssessor, AssessEmptyMixedGraph) {
  const AddressGraph benign = chain_graph();
  const WeightAssessor assessor(benign);
  EXPECT_TRUE(assessor.assess(InferredCfg{}).empty());
}

TEST(WeightAssessor, EmptyBenignGraphScoresEverythingZero) {
  const AddressGraph benign;  // no benign evidence at all
  const WeightAssessor assessor(benign);
  InferredCfg mixed;
  mixed.graph.add_edge(1, 2);
  mixed.edge_events[{1, 2}] = {0};
  const auto weights = assessor.assess(mixed);
  EXPECT_DOUBLE_EQ(weights.at(0), 0.0);
}

TEST(WeightAssessor, AllWeightsWithinUnitInterval) {
  AddressGraph benign;
  for (std::uint64_t a = 0; a < 50; ++a) {
    benign.add_edge(1000 + a * 16, 1000 + ((a * 7) % 50) * 16);
  }
  const WeightAssessor assessor(benign);
  InferredCfg mixed;
  std::uint64_t seq = 0;
  for (std::uint64_t a = 990; a < 1900; a += 13) {
    mixed.graph.add_edge(a, a + 5);
    mixed.edge_events[{a, a + 5}] = {seq++};
  }
  for (const auto& [ev, w] : assessor.assess(mixed)) {
    EXPECT_GE(w, 0.0) << "event " << ev;
    EXPECT_LE(w, 1.0) << "event " << ev;
  }
}

}  // namespace
}  // namespace leaps::cfg
