// Durability-layer tests: CRC32C, atomic file replacement, WAL framing
// and torn-tail handling, window codec, and checkpoint/recover round
// trips including the crash-between-rename-and-truncate LSN guard.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/persist.h"
#include "detector_fixture.h"
#include "durable/store.h"
#include "durable/wal.h"
#include "util/atomic_file.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace leaps::durable {
namespace {

using leaps::testing::TrainedDetector;

const TrainedDetector& fixture() {
  static const TrainedDetector* f = new TrainedDetector(
      leaps::testing::train_small_detector("vim_reverse_tcp_online", 1200, 7,
                                           /*with_continual=*/true));
  return *f;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  // Start clean across repeated runs.
  ::unlink((dir + "/snapshot.leaps").c_str());
  ::unlink((dir + "/journal.wal").c_str());
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

// --- CRC32C ---------------------------------------------------------------

TEST(Crc32c, MatchesKnownVectors) {
  // The iSCSI/RFC 3720 check value for "123456789".
  EXPECT_EQ(util::crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(util::crc32c(""), 0x00000000u);
  // Seeded continuation equals one-shot over the concatenation. (The
  // string_view is spelled out: a bare literal with a seed argument would
  // resolve to the (void*, size_t) overload with the seed as the size.)
  const std::uint32_t part = util::crc32c(std::string_view("12345"));
  EXPECT_EQ(util::crc32c(std::string_view("6789"), part),
            util::crc32c(std::string_view("123456789")));
}

// --- atomic_write_file ----------------------------------------------------

TEST(AtomicFile, ReplacesWholeFileOrNothing) {
  const std::string dir = fresh_dir("atomic_file");
  const std::string path = dir + "/target.txt";
  ASSERT_TRUE(
      util::atomic_write_file(path, [](std::ostream& os) { os << "one"; })
          .ok());
  EXPECT_EQ(slurp(path), "one");
  ASSERT_TRUE(
      util::atomic_write_file(path, [](std::ostream& os) { os << "two"; })
          .ok());
  EXPECT_EQ(slurp(path), "two");

  // A throwing fill must leave the previous generation untouched and no
  // temp file behind.
  EXPECT_THROW(util::atomic_write_file(path,
                                       [](std::ostream& os) {
                                         os << "half";
                                         throw std::runtime_error("boom");
                                       }),
               std::runtime_error);
  EXPECT_EQ(slurp(path), "two");

  // A fault at the pre-rename point (the worst crash instant) likewise.
  {
    util::ScopedFault fault("durable.snapshot.pre_rename",
                            {.action = util::FaultAction::kThrow});
    EXPECT_THROW(util::atomic_write_file(
                     path, [](std::ostream& os) { os << "three"; }),
                 util::FaultInjectedError);
  }
  EXPECT_EQ(slurp(path), "two");
}

// --- WAL ------------------------------------------------------------------

TEST(Wal, AppendScanRoundTrip) {
  const std::string dir = fresh_dir("wal_roundtrip");
  const std::string path = dir + "/journal.wal";
  WalWriter writer;
  ASSERT_TRUE(writer.open(path, 1).ok());
  std::uint64_t lsn = 0;
  ASSERT_TRUE(writer.append(WalRecordType::kWindow, "alpha", &lsn).ok());
  EXPECT_EQ(lsn, 1u);
  ASSERT_TRUE(writer.append(WalRecordType::kRetrain, "", &lsn).ok());
  EXPECT_EQ(lsn, 2u);
  ASSERT_TRUE(
      writer.append(WalRecordType::kPromotion, std::string(1000, 'x')).ok());
  writer.close();

  const auto scan = scan_wal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn);
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].type, WalRecordType::kWindow);
  EXPECT_EQ(scan->records[0].payload, "alpha");
  EXPECT_EQ(scan->records[1].lsn, 2u);
  EXPECT_EQ(scan->records[2].payload.size(), 1000u);
  EXPECT_EQ(verify_wal_strict(path), 3u);

  // Reopen continues the LSN sequence.
  WalWriter again;
  ASSERT_TRUE(again.open(path, scan->records.back().lsn + 1).ok());
  ASSERT_TRUE(again.append(WalRecordType::kWindow, "beta", &lsn).ok());
  EXPECT_EQ(lsn, 4u);
}

TEST(Wal, MissingFileIsEmptyScanAndForeignMagicIsCorrupt) {
  const std::string dir = fresh_dir("wal_magic");
  const auto missing = scan_wal(dir + "/nope.wal");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->records.empty());
  EXPECT_FALSE(missing->torn);

  const std::string foreign = dir + "/foreign.wal";
  std::ofstream(foreign, std::ios::binary) << "NOTOURWAL\nstuff";
  const auto scanned = scan_wal(foreign);
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), util::StatusCode::kCorruptInput);
  EXPECT_THROW(verify_wal_strict(foreign), core::PersistError);
}

TEST(Wal, ValidHeaderShortBodyIsTypedAndTruncatable) {
  const std::string dir = fresh_dir("wal_torn");
  const std::string path = dir + "/journal.wal";
  WalWriter writer;
  ASSERT_TRUE(writer.open(path, 1).ok());
  ASSERT_TRUE(writer.append(WalRecordType::kWindow, "intact").ok());
  // Crash mid-append: the frame header lands, the body does not.
  {
    util::ScopedFault fault("durable.wal.append.mid",
                            {.action = util::FaultAction::kThrow});
    EXPECT_THROW(writer.append(WalRecordType::kWindow, "lost-forever"),
                 util::FaultInjectedError);
  }
  writer.close();

  // Strict verification (the corruption corpus) is a typed error with the
  // damage offset; recovery scanning keeps the intact prefix.
  try {
    verify_wal_strict(path);
    FAIL() << "short body not detected";
  } catch (const core::PersistError& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }
  const auto scan = scan_wal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].payload, "intact");
}

TEST(Wal, ChecksumFlipEndsScanAtExactOffset) {
  const std::string dir = fresh_dir("wal_flip");
  const std::string path = dir + "/journal.wal";
  WalWriter writer;
  ASSERT_TRUE(writer.open(path, 1).ok());
  ASSERT_TRUE(writer.append(WalRecordType::kWindow, "first").ok());
  ASSERT_TRUE(writer.append(WalRecordType::kWindow, "second").ok());
  writer.close();

  std::string bytes = slurp(path);
  bytes[bytes.size() - 1] ^= 0x40;  // flip inside the second record's body
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  const auto scan = scan_wal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_NE(scan->torn_reason.find("checksum mismatch"), std::string::npos);
  EXPECT_THROW(verify_wal_strict(path), core::PersistError);
}

// --- window codec ---------------------------------------------------------

TEST(WindowCodec, RoundTripsStacksAndSymbols) {
  const TrainedDetector& f = fixture();
  ASSERT_GE(f.benign.events.size(), 20u);
  const std::string payload = encode_window(f.benign.events.data(), 20);
  const auto decoded = decode_window(payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& a = f.benign.events[i];
    const auto& b = (*decoded)[i];
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.tid, b.tid);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.app_stack, b.app_stack);
    ASSERT_EQ(a.system_stack.size(), b.system_stack.size());
    for (std::size_t s = 0; s < a.system_stack.size(); ++s) {
      EXPECT_EQ(a.system_stack[s], b.system_stack[s]);
    }
  }

  // Truncation anywhere inside is a typed corrupt-input, never UB.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                payload.size() / 2, payload.size() - 1}) {
    const auto bad = decode_window(std::string_view(payload).substr(0, cut));
    EXPECT_FALSE(bad.ok()) << cut;
    EXPECT_EQ(bad.status().code(), util::StatusCode::kCorruptInput) << cut;
  }
}

// --- DurableStore ---------------------------------------------------------

DurableStore make_store(const std::string& name, std::size_t every = 1000) {
  DurableOptions options;
  options.dir = fresh_dir(name);
  options.checkpoint_every_appends = every;
  return DurableStore(options);
}

TEST(DurableStoreTest, CheckpointRecoverRoundTrip) {
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_roundtrip");
  ASSERT_TRUE(store.open().ok());

  CheckpointState state;
  state.detector = f.detector;
  state.pending_windows.push_back(
      DurableWindow{{f.benign.events.begin(), f.benign.events.begin() + 10}});
  state.pending_windows.push_back(
      DurableWindow{{f.benign.events.begin() + 10,
                     f.benign.events.begin() + 25}});
  state.quarantined.push_back(f.detector);
  state.accounting = {.ingested = 100, .processed = 90, .dropped = 6,
                      .quarantined = 4};
  ASSERT_TRUE(store.checkpoint(state).ok());

  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(recovered->snapshot_found);
  EXPECT_FALSE(recovered->torn_tail);
  ASSERT_NE(recovered->detector, nullptr);
  EXPECT_EQ(recovered->detector->scan(f.malicious).malicious_windows,
            f.detector->scan(f.malicious).malicious_windows);
  ASSERT_NE(recovered->detector->continual(), nullptr);
  ASSERT_EQ(recovered->pending_windows.size(), 2u);
  EXPECT_EQ(recovered->pending_windows[1].events.size(), 15u);
  EXPECT_EQ(recovered->quarantined.size(), 1u);
  EXPECT_EQ(recovered->accounting.ingested, 100u);
  EXPECT_EQ(recovered->accounting.ingested,
            recovered->accounting.processed + recovered->accounting.dropped +
                recovered->accounting.quarantined);
}

TEST(DurableStoreTest, JournalReplayAppliesWindowsRetrainsAndPromotions) {
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_replay");
  ASSERT_TRUE(store.open().ok());

  // No snapshot at all: recovery must still replay the journal.
  ASSERT_TRUE(store.journal_window(f.benign.events.data(), 8).ok());
  ASSERT_TRUE(store.journal_window(f.benign.events.data() + 8, 8).ok());
  auto r1 = store.recover();
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->snapshot_found);
  EXPECT_EQ(r1->detector, nullptr);
  EXPECT_EQ(r1->pending_windows.size(), 2u);
  EXPECT_EQ(r1->replayed, 2u);

  // A retrain record marks the drain point: windows journaled at or below
  // its boundary stop being pending. The promotion then carries the
  // candidate's full bytes.
  ASSERT_TRUE(store.journal_retrain(store.last_lsn(), true, 16, "").ok());
  ASSERT_TRUE(store.journal_promotion(*f.detector).ok());
  ASSERT_TRUE(store.journal_window(f.benign.events.data(), 5).ok());
  ASSERT_TRUE(store.journal_quarantine(*f.detector).ok());
  auto r2 = store.recover();
  ASSERT_TRUE(r2.ok());
  ASSERT_NE(r2->detector, nullptr);
  EXPECT_EQ(r2->detector->scan(f.malicious).malicious_windows,
            f.detector->scan(f.malicious).malicious_windows);
  EXPECT_EQ(r2->pending_windows.size(), 1u);
  EXPECT_EQ(r2->quarantined.size(), 1u);
  EXPECT_EQ(r2->replayed, 6u);
}

TEST(DurableStoreTest, RetrainBoundaryKeepsWindowsJournaledDuringTraining) {
  // The drain boundary is captured when the accumulator is drained, but
  // the retrain record lands only after training. A window journaled in
  // between was NOT part of the drained set — replay must keep it pending
  // instead of sweeping it away with the drained ones.
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_drain_boundary");
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(store.journal_window(f.benign.events.data(), 8).ok());  // lsn 1
  const std::uint64_t boundary = store.last_lsn();  // drain happens here
  ASSERT_TRUE(store.journal_window(f.benign.events.data(), 6).ok());  // lsn 2
  ASSERT_TRUE(store.journal_retrain(boundary, true, 8, "").ok());     // lsn 3

  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  ASSERT_EQ(recovered->pending_windows.size(), 1u)
      << "the mid-training window must survive the drain marker";
  EXPECT_EQ(recovered->pending_windows[0].events.size(), 6u);
}

TEST(DurableStoreTest, LsnGuardSkipsRecordsAlreadyFolded) {
  // Crash between snapshot rename and journal truncate: the journal still
  // holds records the snapshot already folded. Replay must skip them.
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_lsn_guard");
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(store.journal_window(f.benign.events.data(), 8).ok());
  ASSERT_TRUE(store.journal_window(f.benign.events.data(), 8).ok());

  CheckpointState state;
  state.detector = f.detector;
  // The snapshot says: those two windows are already folded (as pending).
  state.pending_windows.push_back(
      DurableWindow{{f.benign.events.begin(), f.benign.events.begin() + 8}});
  state.pending_windows.push_back(
      DurableWindow{{f.benign.events.begin(), f.benign.events.begin() + 8}});
  {
    // Fail the checkpoint *after* the snapshot rename, *before* truncate.
    util::ScopedFault fault("durable.checkpoint.pre_truncate",
                            {.action = util::FaultAction::kError});
    EXPECT_FALSE(store.checkpoint(state).ok());
  }
  // Journal still holds both records...
  ASSERT_EQ(verify_wal_strict(store.journal_path()), 2u);
  // ...but replay skips them: exactly two pending windows, not four.
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(recovered->snapshot_found);
  EXPECT_EQ(recovered->pending_windows.size(), 2u);
  EXPECT_EQ(recovered->replayed, 0u);
  EXPECT_EQ(recovered->skipped, 2u);
}

TEST(DurableStoreTest, TornJournalTailIsTruncatedNotFatal) {
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_torn");
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(store.journal_window(f.benign.events.data(), 8).ok());
  {
    util::ScopedFault fault("durable.wal.append.mid",
                            {.action = util::FaultAction::kThrow});
    EXPECT_THROW(store.journal_window(f.benign.events.data(), 8),
                 util::FaultInjectedError);
  }
  auto recovered = store.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(recovered->torn_tail);
  EXPECT_EQ(recovered->pending_windows.size(), 1u);
  // The tail was physically dropped: a second recovery is clean.
  auto again = store.recover();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->torn_tail);
  EXPECT_EQ(again->pending_windows.size(), 1u);
}

TEST(DurableStoreTest, OpenTruncatesTornTailBeforeAppending) {
  // A crash mid-append leaves a torn tail. If the next process open()s and
  // journals before ever calling recover(), those appends must land after
  // the last good record — not behind garbage where no scan reaches them.
  const TrainedDetector& f = fixture();
  const std::string dir = fresh_dir("store_open_torn");
  {
    DurableOptions options;
    options.dir = dir;
    DurableStore store(options);
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(store.journal_window(f.benign.events.data(), 8).ok());
    util::ScopedFault fault("durable.wal.append.mid",
                            {.action = util::FaultAction::kThrow});
    EXPECT_THROW(store.journal_window(f.benign.events.data(), 8),
                 util::FaultInjectedError);
  }
  // "Restart": open() must truncate the torn tail, then append cleanly.
  DurableOptions options;
  options.dir = dir;
  DurableStore store(options);
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(store.journal_window(f.benign.events.data(), 4).ok());
  // Both the pre-crash record and the new one are reachable, and the
  // truncated tail is still reported by the recovery that follows.
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(recovered->torn_tail);
  ASSERT_EQ(recovered->pending_windows.size(), 2u);
  EXPECT_EQ(recovered->pending_windows[1].events.size(), 4u);
  // ...but only once: the next recovery is clean.
  const auto again = store.recover();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->torn_tail);
}

TEST(Wal, FailedAppendRollsBackInsteadOfStrandingLaterRecords) {
  // A body-write failure (ENOSPC et al., injected here as an error at the
  // mid-append point) must not leave a partial record mid-file: later
  // appends would return OK but be unreachable to every scan. The writer
  // rolls the file back to the pre-append offset and stays usable.
  const std::string dir = fresh_dir("wal_failed_append");
  const std::string path = dir + "/journal.wal";
  WalWriter writer;
  ASSERT_TRUE(writer.open(path, 1).ok());
  ASSERT_TRUE(writer.append(WalRecordType::kWindow, "before").ok());
  {
    util::ScopedFault fault("durable.wal.append.mid",
                            {.action = util::FaultAction::kError});
    EXPECT_FALSE(writer.append(WalRecordType::kWindow, "doomed").ok());
  }
  // The failed record left no bytes behind; the next append is reachable.
  std::uint64_t lsn = 0;
  ASSERT_TRUE(writer.append(WalRecordType::kWindow, "after", &lsn).ok());
  EXPECT_EQ(lsn, 2u) << "the failed append must not consume an LSN";
  writer.close();
  EXPECT_EQ(verify_wal_strict(path), 2u);
  const auto scan = scan_wal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn);
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[1].payload, "after");
}

TEST(DurableStoreTest, ConcurrentJournalersAndCheckpointsStayWellFramed) {
  // Worker taps journal from several threads while the manager thread
  // checkpoints: every record is two write()s and a checkpoint ends in a
  // truncate, so without the store's serialization this interleaves into
  // checksum garbage. After the storm the journal must scan clean and
  // recovery must succeed.
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_concurrent", /*every=*/1000);
  ASSERT_TRUE(store.open().ok());

#if defined(__SANITIZE_THREAD__)
  constexpr int kAppendsPerThread = 120;
#else
  constexpr int kAppendsPerThread = 60;
#endif
  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> appended{0};
  std::vector<std::thread> journalers;
  journalers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    journalers.emplace_back([&store, &appended, &f, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        const std::size_t n = 1 + static_cast<std::size_t>((t + i) % 8);
        if (store.journal_window(f.benign.events.data(), n).ok()) {
          appended.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread checkpointer([&store, &f] {
    for (int i = 0; i < 10; ++i) {
      CheckpointState state;
      state.detector = f.detector;
      EXPECT_TRUE(store.checkpoint(state).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& t : journalers) t.join();
  checkpointer.join();
  EXPECT_EQ(appended.load(), kThreads * kAppendsPerThread)
      << "no append may fail under contention";

  // Whatever interleaving happened, the surviving journal is well-framed
  // (strict verify throws on any framing or checksum damage) and recovery
  // replays it without complaint.
  EXPECT_NO_THROW(verify_wal_strict(store.journal_path()));
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_FALSE(recovered->torn_tail);
}

TEST(DurableStoreTest, CorruptSnapshotIsTypedError) {
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_corrupt_snap");
  ASSERT_TRUE(store.open().ok());
  CheckpointState state;
  state.detector = f.detector;
  ASSERT_TRUE(store.checkpoint(state).ok());

  std::string bytes = slurp(store.snapshot_path());
  const std::size_t det = bytes.find("DETECTOR ");
  ASSERT_NE(det, std::string::npos);
  bytes[bytes.find('\n', det) + 40] ^= 0x01;  // flip inside detector blob
  std::ofstream(store.snapshot_path(), std::ios::binary | std::ios::trunc)
      << bytes;

  const auto recovered = store.recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), util::StatusCode::kCorruptInput);
  EXPECT_NE(recovered.status().message().find("byte offset"),
            std::string::npos)
      << recovered.status().message();
}

TEST(DurableStoreTest, ShouldCheckpointHonorsAppendCadence) {
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_cadence", /*every=*/3);
  ASSERT_TRUE(store.open().ok());
  EXPECT_FALSE(store.should_checkpoint());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.journal_window(f.benign.events.data(), 4).ok());
  }
  EXPECT_TRUE(store.should_checkpoint());
  CheckpointState state;
  state.detector = f.detector;
  ASSERT_TRUE(store.checkpoint(state).ok());
  EXPECT_FALSE(store.should_checkpoint());
  // The checkpoint truncated the journal back to bare magic.
  EXPECT_EQ(verify_wal_strict(store.journal_path()), 0u);
}

// --- Drift records ---------------------------------------------------------

TEST(DurableStoreTest, DriftRecordsRoundTripThroughRecovery) {
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_drift");
  ASSERT_TRUE(store.open().ok());

  // The DRIFT blob is opaque to the store: whatever the checkpointer
  // serialized comes back verbatim from recover().
  CheckpointState state;
  state.detector = f.detector;
  state.drift = std::string("drift-monitor-state\x00with-nul", 28);
  ASSERT_TRUE(store.checkpoint(state).ok());

  // A zero-length batch is a no-op: no record, no LSN consumed.
  const std::uint64_t before = store.last_lsn();
  ASSERT_TRUE(store.journal_drift_batch(nullptr, 0).ok());
  EXPECT_EQ(store.last_lsn(), before);

  const DriftSample samples[] = {{0.5, 1}, {-0.7, -1}, {0.25, 1}};
  ASSERT_TRUE(store.journal_drift_batch(samples, 3).ok());
  std::uint64_t trigger_lsn = 0;
  ASSERT_TRUE(store.journal_drift_trigger(2, 1e-6, &trigger_lsn).ok());
  EXPECT_EQ(trigger_lsn, store.last_lsn());
  ASSERT_TRUE(store.journal_retrain(store.last_lsn(), true, 8, "").ok());

  const auto r = store.recover();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->drift, state.drift);
  // One op per sample, then the trigger, then the retrain consumption
  // marker — in journal order.
  ASSERT_EQ(r->drift_ops.size(), 5u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r->drift_ops[i].kind, DriftReplayOp::Kind::kObserve);
    EXPECT_DOUBLE_EQ(r->drift_ops[i].value, samples[i].value);
    EXPECT_EQ(r->drift_ops[i].label, samples[i].label);
  }
  EXPECT_EQ(r->drift_ops[3].kind, DriftReplayOp::Kind::kTrigger);
  EXPECT_EQ(r->drift_ops[4].kind, DriftReplayOp::Kind::kRetrain);
}

TEST(DurableStoreTest, SnapshotWithoutDriftBlobStaysLoadable) {
  // Drift-disabled deployments (and snapshots that predate drift) carry
  // no DRIFT section; recovery must come back empty-handed, not fail.
  const TrainedDetector& f = fixture();
  DurableStore store = make_store("store_no_drift");
  ASSERT_TRUE(store.open().ok());
  CheckpointState state;
  state.detector = f.detector;
  ASSERT_TRUE(store.checkpoint(state).ok());
  const auto r = store.recover();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r->snapshot_found);
  ASSERT_NE(r->detector, nullptr);
  EXPECT_TRUE(r->drift.empty());
  EXPECT_TRUE(r->drift_ops.empty());
}

}  // namespace
}  // namespace leaps::durable
