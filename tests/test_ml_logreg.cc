// Unit tests for weighted logistic regression (the III-D-2 alternative).
#include <gtest/gtest.h>

#include <cmath>

#include "ml/logreg.h"
#include "util/rng.h"

namespace leaps::ml {
namespace {

Dataset blobs(std::size_t per_class, util::Rng& rng, double separation) {
  Dataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({rng.next_gaussian() * 0.3, rng.next_gaussian() * 0.3 + separation},
          1, 1.0);
    d.add({rng.next_gaussian() * 0.3, rng.next_gaussian() * 0.3 - separation},
          -1, 1.0);
  }
  return d;
}

TEST(LogReg, SeparatesTwoBlobs) {
  util::Rng rng(1);
  const Dataset d = blobs(50, rng, 1.5);
  LogRegStats stats;
  const LogRegModel m = LogRegTrainer(LogRegParams{}).train(d, &stats);
  EXPECT_TRUE(stats.converged);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (m.predict(d.X[i]) == d.y[i]) ++correct;
  }
  EXPECT_GE(correct, d.size() - 2);
  EXPECT_EQ(m.predict({0.0, 2.0}), 1);
  EXPECT_EQ(m.predict({0.0, -2.0}), -1);
}

TEST(LogReg, ProbabilitiesAreCalibratedBySide) {
  util::Rng rng(2);
  const Dataset d = blobs(50, rng, 1.5);
  const LogRegModel m = LogRegTrainer(LogRegParams{}).train(d);
  EXPECT_GT(m.probability({0.0, 2.0}), 0.9);
  EXPECT_LT(m.probability({0.0, -2.0}), 0.1);
  // Decision boundary ≈ probability 0.5.
  EXPECT_NEAR(m.probability({0.0, -m.bias() / m.weights()[1]}), 0.5, 1e-6);
}

TEST(LogReg, RegularizationShrinksWeights) {
  util::Rng rng(3);
  const Dataset d = blobs(40, rng, 1.0);
  LogRegParams weak;
  weak.l2 = 0.01;
  LogRegParams strong;
  strong.l2 = 100.0;
  const LogRegModel mw = LogRegTrainer(weak).train(d);
  const LogRegModel ms = LogRegTrainer(strong).train(d);
  const auto norm = [](const LogRegModel& m) {
    double s = 0.0;
    for (const double w : m.weights()) s += w * w;
    return std::sqrt(s);
  };
  EXPECT_GT(norm(mw), norm(ms));
}

TEST(LogReg, ZeroWeightPoisonIsIgnored) {
  util::Rng rng(4);
  Dataset d = blobs(40, rng, 1.5);
  const LogRegModel clean = LogRegTrainer(LogRegParams{}).train(d);
  for (int i = 0; i < 20; ++i) d.add({0.0, 1.5}, -1, 0.0);
  const LogRegModel poisoned = LogRegTrainer(LogRegParams{}).train(d);
  for (std::size_t j = 0; j < clean.weights().size(); ++j) {
    EXPECT_NEAR(clean.weights()[j], poisoned.weights()[j], 1e-9);
  }
  EXPECT_NEAR(clean.bias(), poisoned.bias(), 1e-9);
}

TEST(LogReg, LowWeightLabelNoiseIsSuppressed) {
  // The Figure-5 situation again, linear edition.
  util::Rng rng(5);
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    const double n1 = rng.next_gaussian() * 0.2;
    const double n2 = rng.next_gaussian() * 0.2;
    d.add({n1, 1.0 + n2}, 1, 1.0);
    d.add({n1, -1.0 + n2}, -1, 1.0);
    d.add({n1, 1.0 - n2}, -1, 1.0);  // mislabeled benign at full weight
  }
  Dataset weighted = d;
  for (std::size_t i = 0; i < weighted.size(); ++i) {
    if (weighted.y[i] == -1 && weighted.X[i][1] > 0.0) {
      weighted.weight[i] = 0.02;
    }
  }
  const LogRegModel plain = LogRegTrainer(LogRegParams{}).train(d);
  const LogRegModel wlr = LogRegTrainer(LogRegParams{}).train(weighted);
  int plain_benign = 0;
  int wlr_benign = 0;
  for (double x = -0.5; x <= 0.5; x += 0.1) {
    plain_benign += plain.predict({x, 1.0}) == 1 ? 1 : 0;
    wlr_benign += wlr.predict({x, 1.0}) == 1 ? 1 : 0;
  }
  EXPECT_GT(wlr_benign, plain_benign);
  EXPECT_EQ(wlr.predict({0.0, -1.0}), -1);
}

TEST(LogReg, RejectsDegenerateData) {
  Dataset d;
  d.add({1.0}, 1, 1.0);
  EXPECT_THROW(LogRegTrainer(LogRegParams{}).train(d), std::logic_error);  // n < 2
  d.add({2.0}, 1, 1.0);
  EXPECT_THROW(LogRegTrainer(LogRegParams{}).train(d), std::invalid_argument);
  d.add({0.0}, -1, 0.0);  // weightless negative
  EXPECT_THROW(LogRegTrainer(LogRegParams{}).train(d), std::invalid_argument);
}

TEST(LogReg, DeterministicTraining) {
  util::Rng rng(6);
  const Dataset d = blobs(30, rng, 1.0);
  const LogRegModel a = LogRegTrainer(LogRegParams{}).train(d);
  const LogRegModel b = LogRegTrainer(LogRegParams{}).train(d);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.bias(), b.bias());
}

TEST(LogReg, DecisionValueMatchesDotProduct) {
  const LogRegModel m({2.0, -1.0}, 0.5);
  EXPECT_DOUBLE_EQ(m.decision_value({1.0, 1.0}), 1.5);
  EXPECT_EQ(m.predict({1.0, 1.0}), 1);
  EXPECT_EQ(m.predict({-1.0, 1.0}), -1);
  EXPECT_THROW(m.decision_value({1.0}), std::logic_error);
}

}  // namespace
}  // namespace leaps::ml
