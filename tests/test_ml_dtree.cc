// Unit tests for weighted CART decision trees and the bagged forest.
#include <gtest/gtest.h>

#include "ml/dtree.h"
#include "util/rng.h"

namespace leaps::ml {
namespace {

/// Benign = the lower-left quadrant; greedy CART learns this with two
/// axis-aligned splits (unlike symmetric XOR, whose first split has zero
/// Gini gain for any greedy tree).
Dataset quadrant_data(util::Rng& rng, int per_corner = 25) {
  Dataset d;
  for (int i = 0; i < per_corner; ++i) {
    const double n1 = rng.next_gaussian() * 0.05;
    const double n2 = rng.next_gaussian() * 0.05;
    d.add({0.0 + n1, 0.0 + n2}, 1);
    d.add({1.0 + n1, 1.0 + n2}, -1);
    d.add({0.0 + n1, 1.0 + n2}, -1);
    d.add({1.0 + n1, 0.0 + n2}, -1);
  }
  return d;
}

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.add({static_cast<double>(i), 0.0}, i < 10 ? 1 : -1);
  }
  const DecisionTreeModel m = DecisionTreeTrainer().train(d);
  EXPECT_EQ(m.predict({3.0, 0.0}), 1);
  EXPECT_EQ(m.predict({15.0, 0.0}), -1);
  EXPECT_LE(m.depth(), 2u);  // one split suffices
}

TEST(DecisionTree, SolvesQuadrant) {
  util::Rng rng(1);
  const Dataset d = quadrant_data(rng);
  const DecisionTreeModel m = DecisionTreeTrainer().train(d);
  EXPECT_EQ(m.predict({0.0, 0.0}), 1);
  EXPECT_EQ(m.predict({1.0, 1.0}), -1);
  EXPECT_EQ(m.predict({0.0, 1.0}), -1);
  EXPECT_EQ(m.predict({1.0, 0.0}), -1);
}

TEST(DecisionTree, ScoreReflectsLeafPurity) {
  util::Rng rng(2);
  const Dataset d = quadrant_data(rng);
  const DecisionTreeModel m = DecisionTreeTrainer().train(d);
  EXPECT_GT(m.score({0.0, 0.0}), 0.9);   // pure benign leaf
  EXPECT_LT(m.score({1.0, 0.0}), -0.9);  // pure malicious leaf
}

TEST(DecisionTree, MaxDepthBounds) {
  util::Rng rng(3);
  const Dataset d = quadrant_data(rng);
  DTreeParams p;
  p.max_depth = 1;
  const DecisionTreeModel m = DecisionTreeTrainer(p).train(d);
  EXPECT_LE(m.depth(), 2u);  // root + one level
}

TEST(DecisionTree, ZeroWeightSamplesAreInvisible) {
  Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.add({static_cast<double>(i)}, i < 10 ? 1 : -1);
  }
  const DecisionTreeModel clean = DecisionTreeTrainer().train(d);
  // Poison: flipped labels at weight 0 everywhere.
  Dataset poisoned = d;
  for (int i = 0; i < 20; ++i) {
    poisoned.add({static_cast<double>(i)}, i < 10 ? -1 : 1, 0.0);
  }
  const DecisionTreeModel after = DecisionTreeTrainer().train(poisoned);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(clean.predict({static_cast<double>(i)}),
              after.predict({static_cast<double>(i)}));
  }
}

TEST(DecisionTree, LowWeightLabelNoiseIsOutvoted) {
  // Mislabeled benign duplicates at low weight must not flip the region.
  Dataset d;
  util::Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.next_double();
    d.add({x, 1.0}, 1, 1.0);
    d.add({x, -1.0}, -1, 1.0);
    d.add({x, 1.0}, -1, 0.05);  // CFG says: almost certainly benign
  }
  const DecisionTreeModel m = DecisionTreeTrainer().train(d);
  EXPECT_EQ(m.predict({0.5, 1.0}), 1);
  EXPECT_EQ(m.predict({0.5, -1.0}), -1);
}

TEST(DecisionTree, RejectsDegenerateData) {
  Dataset d;
  d.add({1.0}, 1);
  EXPECT_THROW(DecisionTreeTrainer().train(d), std::logic_error);
  d.add({2.0}, 1);
  EXPECT_THROW(DecisionTreeTrainer().train(d), std::invalid_argument);
  EXPECT_THROW(DecisionTreeModel().predict({1.0}), std::logic_error);
}

TEST(DecisionTree, PureClassDataYieldsSingleLeafAfterWeighting) {
  // Both labels present but one side dominated: tree still trains.
  Dataset d;
  for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, 1, 1.0);
  d.add({100.0}, -1, 1.0);
  const DecisionTreeModel m = DecisionTreeTrainer().train(d);
  EXPECT_EQ(m.predict({0.0}), 1);
}

// ------------------------------------------------------------- forest ----

TEST(RandomForest, BeatsOrMatchesSingleTreeOnNoisyData) {
  util::Rng rng(5);
  Dataset train;
  Dataset test;
  for (int i = 0; i < 150; ++i) {
    const int label = rng.next_bool(0.5) ? 1 : -1;
    FeatureVector x(6);
    for (double& v : x) v = rng.next_gaussian();
    x[1] += 0.9 * label;
    x[4] -= 0.6 * label;
    (i < 100 ? train : test).add(x, label);
  }
  const DecisionTreeModel tree = DecisionTreeTrainer().train(train);
  ForestParams fp;
  fp.trees = 30;
  const RandomForestModel forest = RandomForestTrainer(fp).train(train);
  std::size_t tree_ok = 0;
  std::size_t forest_ok = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    tree_ok += tree.predict(test.X[i]) == test.y[i] ? 1 : 0;
    forest_ok += forest.predict(test.X[i]) == test.y[i] ? 1 : 0;
  }
  EXPECT_GE(forest_ok + 2, tree_ok);  // at worst marginally below
  EXPECT_GT(forest_ok, test.size() * 7 / 10);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  util::Rng rng(6);
  const Dataset d = quadrant_data(rng);
  const RandomForestModel a = RandomForestTrainer().train(d);
  const RandomForestModel b = RandomForestTrainer().train(d);
  util::Rng probe(7);
  for (int i = 0; i < 50; ++i) {
    const FeatureVector x = {probe.next_double() * 1.5 - 0.25,
                             probe.next_double() * 1.5 - 0.25};
    EXPECT_EQ(a.predict(x), b.predict(x));
  }
}

TEST(RandomForest, ScoreIsMeanOfTreeVotes) {
  util::Rng rng(8);
  const Dataset d = quadrant_data(rng);
  const RandomForestModel m = RandomForestTrainer().train(d);
  const double s = m.score({0.0, 0.0});
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
  EXPECT_GT(s, 0.5);  // strongly benign corner
  EXPECT_GT(m.tree_count(), 0u);
}

TEST(RandomForest, UsageErrors) {
  EXPECT_THROW(RandomForestModel().predict({1.0}), std::logic_error);
  Dataset d;
  d.add({1.0}, 1);
  d.add({2.0}, -1);
  ForestParams p;
  p.trees = 0;
  EXPECT_THROW(RandomForestTrainer(p).train(d), std::logic_error);
}

}  // namespace
}  // namespace leaps::ml
