// Unit tests for detector persistence: round-trip fidelity and rejection
// of malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/persist.h"
#include "detector_fixture.h"
#include "ml/cross_validation.h"
#include "sim/scenario.h"
#include "trace/parser.h"
#include "trace/partition.h"

namespace leaps::core {
namespace {

trace::PartitionedLog parse_and_partition(const trace::RawLog& raw) {
  const trace::ParsedTrace t = trace::RawLogParser().parse_raw(raw);
  return trace::StackPartitioner(t.log.process_name).partition(t.log);
}

struct Fixture {
  sim::ScenarioLogs logs;
  trace::PartitionedLog benign;
  trace::PartitionedLog mixed;
  trace::PartitionedLog malicious;
  Detector detector;

  static Fixture make() {
    sim::SimConfig cfg;
    cfg.benign_events = 2500;
    cfg.mixed_events = 2000;
    cfg.malicious_events = 1000;
    sim::ScenarioLogs logs =
        sim::generate_scenario(sim::find_scenario("vim_reverse_tcp"), cfg);
    trace::PartitionedLog benign = parse_and_partition(logs.benign);
    trace::PartitionedLog mixed = parse_and_partition(logs.mixed);
    trace::PartitionedLog malicious = parse_and_partition(logs.malicious);

    const TrainingData td = LeapsPipeline().prepare(benign, mixed);
    ml::Dataset train = td.benign;
    train.append(td.mixed);
    ml::MinMaxScaler scaler;
    scaler.fit(train.X);
    scaler.transform_in_place(train);
    ml::SvmParams params;
    params.lambda = 10.0;
    params.kernel.sigma2 = 8.0;
    const ml::SvmModel model = ml::SvmTrainer(params).train(train);
    return Fixture{std::move(logs), std::move(benign), std::move(mixed),
                   std::move(malicious),
                   Detector(td.preprocessor, scaler, model)};
  }
};

TEST(Persist, RoundTripPreservesEveryPrediction) {
  const Fixture f = Fixture::make();
  std::stringstream buffer;
  save_detector(f.detector, buffer);
  const Detector loaded = load_detector(buffer);

  for (const trace::PartitionedLog* log :
       {&f.benign, &f.mixed, &f.malicious}) {
    const auto before = f.detector.scan(*log);
    const auto after = loaded.scan(*log);
    ASSERT_EQ(before.window_labels.size(), after.window_labels.size());
    for (std::size_t w = 0; w < before.window_labels.size(); ++w) {
      EXPECT_EQ(before.window_labels[w], after.window_labels[w])
          << "window " << w;
    }
  }
}

TEST(Persist, RoundTripPreservesModelGeometry) {
  const Fixture f = Fixture::make();
  std::stringstream buffer;
  save_detector(f.detector, buffer);
  const Detector loaded = load_detector(buffer);
  EXPECT_EQ(loaded.model().support_vector_count(),
            f.detector.model().support_vector_count());
  EXPECT_DOUBLE_EQ(loaded.model().bias(), f.detector.model().bias());
  EXPECT_EQ(loaded.preprocessor().window(),
            f.detector.preprocessor().window());
  EXPECT_EQ(loaded.preprocessor().func_clusterer().cluster_count(),
            f.detector.preprocessor().func_clusterer().cluster_count());
}

TEST(Persist, SerializedFormIsStableText) {
  const Fixture f = Fixture::make();
  std::stringstream a;
  std::stringstream b;
  save_detector(f.detector, a);
  save_detector(f.detector, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str().rfind("LEAPS-DETECTOR v3", 0), 0u);  // header
  EXPECT_NE(a.str().find("BLOCK OPTIONS "), std::string::npos);
}

TEST(Persist, ExplicitV2StillWritesPlainTokenStream) {
  // Interop escape hatch: a v2 save must be byte-compatible with what
  // pre-durability builds read (no BLOCK framing), and still load here.
  const Fixture f = Fixture::make();
  std::stringstream buffer;
  save_detector(f.detector, buffer, PersistVersion::kV2);
  EXPECT_EQ(buffer.str().rfind("LEAPS-DETECTOR v2", 0), 0u);
  EXPECT_EQ(buffer.str().find("BLOCK"), std::string::npos);
  const Detector loaded = load_detector(buffer);
  EXPECT_EQ(loaded.scan(f.malicious).malicious_windows,
            f.detector.scan(f.malicious).malicious_windows);
}

TEST(Persist, V3ChecksumFlipInEveryBlockIsDetectedWithOffset) {
  // Flip one payload byte inside each BLOCK in turn; every flip must be a
  // typed PersistError naming a byte offset — never a silent mis-parse.
  const leaps::testing::TrainedDetector t =
      leaps::testing::train_small_detector("vim_reverse_tcp_online", 1500, 7,
                                           /*with_continual=*/true);
  std::stringstream buffer;
  save_detector(*t.detector, buffer);
  const std::string text = buffer.str();

  std::size_t blocks = 0;
  std::size_t pos = 0;
  while ((pos = text.find("BLOCK ", pos)) != std::string::npos) {
    const std::size_t payload_start = text.find('\n', pos) + 1;
    ASSERT_NE(payload_start, std::string::npos);
    std::string bad = text;
    bad[payload_start] ^= 0x01;
    std::stringstream is(bad);
    try {
      load_detector(is);
      FAIL() << "flip in block at " << pos << " not detected";
    } catch (const PersistError& e) {
      EXPECT_NE(std::string(e.what()).find("byte offset"),
                std::string::npos)
          << e.what();
    }
    ++blocks;
    pos = payload_start;
  }
  EXPECT_EQ(blocks, 6u);  // OPTIONS LIB FUNC SCALER SVM CONTINUAL
}

TEST(Persist, V3TruncatedTailIsTypedWithOffset) {
  const leaps::testing::TrainedDetector t =
      leaps::testing::train_small_detector("vim_reverse_tcp_online", 1500, 7,
                                           /*with_continual=*/true);
  std::stringstream buffer;
  save_detector(*t.detector, buffer);
  const std::string text = buffer.str();
  // Cut inside the CONTINUAL block payload (the last, largest block).
  const std::size_t continual = text.find("BLOCK CONTINUAL ");
  ASSERT_NE(continual, std::string::npos);
  const std::size_t cut = text.find('\n', continual) + 16;
  ASSERT_LT(cut, text.size());
  std::stringstream truncated(text.substr(0, cut));
  try {
    load_detector(truncated);
    FAIL() << "truncated CONTINUAL block not detected";
  } catch (const PersistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CONTINUAL"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
  }
  // Cutting between blocks (no END) must also be typed.
  const std::size_t header_cut = text.find("BLOCK SCALER ");
  ASSERT_NE(header_cut, std::string::npos);
  std::stringstream headless(text.substr(0, header_cut));
  EXPECT_THROW(load_detector(headless), PersistError);
}

TEST(Persist, FileRoundTrip) {
  const Fixture f = Fixture::make();
  const std::string path = ::testing::TempDir() + "/leaps_detector_test.txt";
  save_detector_file(f.detector, path);
  const Detector loaded = load_detector_file(path);
  EXPECT_EQ(loaded.scan(f.malicious).malicious_windows,
            f.detector.scan(f.malicious).malicious_windows);
  std::remove(path.c_str());
}

TEST(Persist, RejectsMalformedInput) {
  const auto expect_reject = [](const std::string& text) {
    std::stringstream is(text);
    EXPECT_THROW(load_detector(is), PersistError) << text;
  };
  expect_reject("");
  expect_reject("NOT-A-DETECTOR v1");
  expect_reject("LEAPS-DETECTOR v999");
  expect_reject("LEAPS-DETECTOR v1 OPTIONS ten 0.3 10 0.35 10");
  // Truncated mid-stream.
  const Fixture f = Fixture::make();
  std::stringstream full;
  save_detector(f.detector, full);
  const std::string text = full.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_detector(truncated), PersistError);
}

TEST(Persist, RejectsInconsistentDimensions) {
  const Fixture f = Fixture::make();
  std::stringstream buffer;
  save_detector(f.detector, buffer);
  // Corrupt the SCALER dims so they disagree with the window.
  std::string text = buffer.str();
  const auto pos = text.find("SCALER 30");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "SCALER 31");
  std::stringstream corrupted(text);
  EXPECT_THROW(load_detector(corrupted), PersistError);
}

TEST(Persist, MissingFileThrows) {
  EXPECT_THROW(load_detector_file("/nonexistent/detector.txt"),
               PersistError);
}

// --- v2 continual-learning block (src/online/) ----------------------------

TEST(Persist, V1FileLoadsAsColdStartFallback) {
  // A pre-online-learning (v1) model file is exactly a v2 file without the
  // CONTINUAL block. It must still load — predictions intact — and yield a
  // detector with no continual state, which the online path treats as
  // "retrain offline" (RetrainScheduler::can_retrain() == false).
  const Fixture f = Fixture::make();
  ASSERT_EQ(f.detector.continual(), nullptr);
  std::stringstream buffer;
  save_detector(f.detector, buffer, PersistVersion::kV2);
  std::string text = buffer.str();
  ASSERT_EQ(text.rfind("LEAPS-DETECTOR v2", 0), 0u);
  text.replace(0, std::string("LEAPS-DETECTOR v2").size(),
               "LEAPS-DETECTOR v1");

  std::stringstream v1(text);
  const Detector loaded = load_detector(v1);
  EXPECT_EQ(loaded.continual(), nullptr);
  EXPECT_EQ(loaded.scan(f.malicious).malicious_windows,
            f.detector.scan(f.malicious).malicious_windows);
}

TEST(Persist, ContinualStateRoundTripsExactly) {
  const leaps::testing::TrainedDetector t =
      leaps::testing::train_small_detector("vim_reverse_tcp_online", 1500, 7,
                                           /*with_continual=*/true);
  const ContinualState* before = t.detector->continual();
  ASSERT_NE(before, nullptr);
  ASSERT_GT(before->benign_cfg.edge_count(), 0u);
  ASSERT_EQ(before->alpha.size(), before->train.size());

  std::stringstream buffer;
  save_detector(*t.detector, buffer);
  const Detector loaded = load_detector(buffer);
  const ContinualState* after = loaded.continual();
  ASSERT_NE(after, nullptr);

  EXPECT_EQ(after->benign_cfg.edge_count(), before->benign_cfg.edge_count());
  EXPECT_EQ(after->benign_cfg.adjacency(), before->benign_cfg.adjacency());
  ASSERT_EQ(after->train.size(), before->train.size());
  ASSERT_EQ(after->alpha.size(), before->alpha.size());
  for (std::size_t i = 0; i < before->train.size(); ++i) {
    EXPECT_EQ(after->train.y[i], before->train.y[i]);
    EXPECT_DOUBLE_EQ(after->train.weight[i], before->train.weight[i]);
    EXPECT_DOUBLE_EQ(after->alpha[i], before->alpha[i]);
    ASSERT_EQ(after->train.X[i].size(), before->train.X[i].size());
    for (std::size_t d = 0; d < before->train.X[i].size(); ++d) {
      EXPECT_DOUBLE_EQ(after->train.X[i][d], before->train.X[i][d]);
    }
  }
  // The reloaded state must be warm-start-able: a seeded re-fit accepts it.
  ml::SvmParams params;
  params.kernel = loaded.model().kernel();
  ml::TrainStats stats;
  ml::SvmTrainer(params).train(after->train, &stats, &after->alpha);
  EXPECT_GT(stats.warm_nonzero, 0u);
}

TEST(Persist, ContinualBlockInV1FileIsRejected) {
  const leaps::testing::TrainedDetector t =
      leaps::testing::train_small_detector("vim_reverse_tcp_online", 1500, 7,
                                           /*with_continual=*/true);
  std::stringstream buffer;
  save_detector(*t.detector, buffer, PersistVersion::kV2);
  std::string text = buffer.str();
  ASSERT_NE(text.find("CONTINUAL"), std::string::npos);
  text.replace(0, std::string("LEAPS-DETECTOR v2").size(),
               "LEAPS-DETECTOR v1");
  std::stringstream downgraded(text);
  EXPECT_THROW(load_detector(downgraded), PersistError);
}

TEST(Persist, RejectsCorruptContinualRows) {
  const leaps::testing::TrainedDetector t =
      leaps::testing::train_small_detector("vim_reverse_tcp_online", 1500, 7,
                                           /*with_continual=*/true);
  std::stringstream buffer;
  save_detector(*t.detector, buffer, PersistVersion::kV2);
  const std::string text = buffer.str();

  const auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string bad = text;
    const auto pos = bad.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    bad.replace(pos, from.size(), to);
    std::stringstream is(bad);
    EXPECT_THROW(load_detector(is), PersistError) << from;
  };
  corrupt("ROW 1 ", "ROW 3 ");    // label must be +/-1
  corrupt("ROW -1 ", "ROW -1 7.5 ");  // weight outside [0,1] (extra token)
}

}  // namespace
}  // namespace leaps::core
