// Unit tests for the trace summary statistics.
#include <gtest/gtest.h>

#include "sim/scenario.h"
#include "trace/log_stats.h"
#include "trace/parser.h"
#include "trace/partition.h"

namespace leaps::trace {
namespace {

PartitionedLog sample_partitioned() {
  sim::SimConfig cfg;
  cfg.benign_events = 600;
  cfg.mixed_events = 400;
  cfg.malicious_events = 100;
  const sim::ScenarioLogs logs = sim::generate_scenario(
      sim::find_scenario("putty_reverse_tcp_online"), cfg);
  const ParsedTrace t = RawLogParser().parse_raw(logs.mixed);
  return StackPartitioner(t.log.process_name).partition(t.log);
}

TEST(LogStats, CountsAddUp) {
  const PartitionedLog log = sample_partitioned();
  const LogStats s = compute_stats(log);
  EXPECT_EQ(s.process_name, "putty.exe");
  EXPECT_EQ(s.events, 400u);
  std::size_t by_type = 0;
  for (const auto& [type, count] : s.events_by_type) by_type += count;
  EXPECT_EQ(by_type, s.events);
  std::size_t by_thread = 0;
  for (const auto& [tid, count] : s.events_by_thread) by_thread += count;
  EXPECT_EQ(by_thread, s.events);
  std::size_t by_module = 0;
  for (const auto& [name, count] : s.frames_by_module) by_module += count;
  EXPECT_EQ(by_module, s.system_frames);
}

TEST(LogStats, MixedLogShowsTwoThreads) {
  const LogStats s = compute_stats(sample_partitioned());
  EXPECT_EQ(s.events_by_thread.size(), 2u);  // app + injected backdoor
  EXPECT_TRUE(s.events_by_thread.count(1));
  EXPECT_TRUE(s.events_by_thread.count(2));
}

TEST(LogStats, DepthAndAddressRangesAreSane) {
  const LogStats s = compute_stats(sample_partitioned());
  EXPECT_GT(s.mean_stack_depth, 3.0);
  EXPECT_GE(static_cast<double>(s.max_stack_depth), s.mean_stack_depth);
  EXPECT_GT(s.distinct_app_addresses, 10u);
  EXPECT_LT(s.app_address_min, s.app_address_max);
  // The injected payload sits far above the app image.
  EXPECT_GT(s.app_address_max, 0x0000020000000000ULL);
}

TEST(LogStats, EmptyLogIsZeroes) {
  const LogStats s = compute_stats(PartitionedLog{});
  EXPECT_EQ(s.events, 0u);
  EXPECT_EQ(s.mean_stack_depth, 0.0);
  EXPECT_EQ(s.distinct_app_addresses, 0u);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(LogStats, ReportMentionsTheEssentials) {
  const std::string report = compute_stats(sample_partitioned()).to_string();
  EXPECT_NE(report.find("putty.exe"), std::string::npos);
  EXPECT_NE(report.find("tid 1"), std::string::npos);
  EXPECT_NE(report.find("ntdll.dll"), std::string::npos);
  EXPECT_NE(report.find("event types"), std::string::npos);
}

}  // namespace
}  // namespace leaps::trace
