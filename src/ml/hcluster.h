// Agglomerative hierarchical clustering with UPGMA (average) linkage —
// the Data Preprocessing Module's grouping step (Section III-A).
//
// Matches the paper's use of SciPy's `cluster.hierarchy` with the UPGMA
// method: the distance between two clusters is the mean pairwise distance
// between all their elements, maintained incrementally via the
// Lance-Williams update for average linkage.
//
// Cluster numbering follows dendrogram leaf order: merging is continued all
// the way to a single root (recording the cut), and clusters are numbered by
// an in-order traversal of that tree. Similar clusters therefore receive
// adjacent integer ids — which matters because the ids feed a Gaussian
// kernel downstream.
#pragma once

#include <cstddef>
#include <vector>

namespace leaps::ml {

struct ClusterOptions {
  /// Stop merging once the closest pair is farther than this (the cut).
  double cut_distance = 0.5;
  /// If nonzero, additionally merge down to at most this many clusters
  /// (the cut distance is ignored once the count bound binds).
  std::size_t max_clusters = 0;
  /// Spread factor for the cluster *positions* (see ClusterResult):
  /// consecutive clusters are separated by 1 + gap_scale × their cophenetic
  /// distance, so numerically close positions mean genuinely similar
  /// clusters — which matters because positions feed a Gaussian kernel.
  double gap_scale = 10.0;
};

struct ClusterResult {
  /// item index -> cluster id in [0, cluster_count).
  std::vector<int> assignment;
  int cluster_count = 0;
  /// Dendrogram leaf order (a permutation of item indices).
  std::vector<std::size_t> leaf_order;
  /// Per-cluster coordinate on the dendrogram axis, ascending in leaf
  /// order: the discretized "cluster number" used as the feature value,
  /// with inter-cluster gaps proportional to dissimilarity.
  std::vector<double> positions;
};

class HierarchicalClusterer {
 public:
  explicit HierarchicalClusterer(ClusterOptions options = {})
      : options_(options) {}

  /// `distance` must be a square symmetric matrix with zero diagonal.
  /// Complexity O(n^3) worst-case; n here is the number of *unique*
  /// lib/func sets, typically a few hundred.
  ClusterResult cluster(
      const std::vector<std::vector<double>>& distance) const;

 private:
  ClusterOptions options_;
};

}  // namespace leaps::ml
