// Agglomerative hierarchical clustering with UPGMA (average) linkage —
// the Data Preprocessing Module's grouping step (Section III-A).
//
// Matches the paper's use of SciPy's `cluster.hierarchy` with the UPGMA
// method: the distance between two clusters is the mean pairwise distance
// between all their elements, maintained incrementally via the
// Lance-Williams update for average linkage.
//
// The solver is a greedy merge with cached per-row nearest neighbors over
// a condensed flat distance matrix (one allocation, expected O(n²) total):
// each row caches its first strict minimum, the global pick is the
// smallest cache at the smallest row, and caches are repaired
// incrementally after each Lance-Williams update. That selection is
// observationally identical to the previous O(n³) row-major global-min
// scan — including its tie-breaking (lexicographically-smallest slot
// pair) — so merge sequence, heights, node numbering, and left/right
// children match bit for bit on every input. (A nearest-neighbor-*chain*
// solver was evaluated first: it is O(n²) worst-case but provably cannot
// reproduce the historic tie behavior, because greedy tie-breaks depend on
// history-dependent slot indices; Jaccard matrices are tie-rich, so
// exactness won.) The previous implementation is retained as
// cluster_reference for property tests and bench_train comparisons.
//
// Cluster numbering follows dendrogram leaf order: merging is continued all
// the way to a single root (recording the cut), and clusters are numbered by
// an in-order traversal of that tree. Similar clusters therefore receive
// adjacent integer ids — which matters because the ids feed a Gaussian
// kernel downstream.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/distance.h"

namespace leaps::ml {

struct ClusterOptions {
  /// Stop merging once the closest pair is farther than this (the cut).
  double cut_distance = 0.5;
  /// If nonzero, additionally merge down to at most this many clusters
  /// (the cut distance is ignored once the count bound binds).
  std::size_t max_clusters = 0;
  /// Spread factor for the cluster *positions* (see ClusterResult):
  /// consecutive clusters are separated by 1 + gap_scale × their cophenetic
  /// distance, so numerically close positions mean genuinely similar
  /// clusters — which matters because positions feed a Gaussian kernel.
  double gap_scale = 10.0;
};

struct ClusterResult {
  /// item index -> cluster id in [0, cluster_count).
  std::vector<int> assignment;
  int cluster_count = 0;
  /// Dendrogram leaf order (a permutation of item indices).
  std::vector<std::size_t> leaf_order;
  /// Per-cluster coordinate on the dendrogram axis, ascending in leaf
  /// order: the discretized "cluster number" used as the feature value,
  /// with inter-cluster gaps proportional to dissimilarity.
  std::vector<double> positions;
};

class HierarchicalClusterer {
 public:
  explicit HierarchicalClusterer(ClusterOptions options = {})
      : options_(options) {}

  /// Cached-nearest-neighbor UPGMA over a condensed distance matrix — the
  /// fast path (expected O(n²)). Takes the matrix by value: it doubles as
  /// the working buffer, so std::move it in to cluster without any copy at
  /// all.
  ClusterResult cluster(CondensedMatrix distance) const;

  /// Square-matrix convenience overload: validates shape, condenses the
  /// upper triangle, delegates. `distance` must be symmetric with zero
  /// diagonal.
  ClusterResult cluster(
      const std::vector<std::vector<double>>& distance) const;

  /// The previous O(n³) global-min-scan implementation, kept verbatim as
  /// the behavioral reference: property tests assert the NN-chain path
  /// produces identical results, and bench_train measures the speedup
  /// against it. Not a production path.
  ClusterResult cluster_reference(
      const std::vector<std::vector<double>>& distance) const;

 private:
  ClusterOptions options_;
};

}  // namespace leaps::ml
