// Dataset container for the statistical-learning layer.
//
// Labels follow the paper's convention: +1 = benign (positive), -1 =
// malicious/mixed (negative). `weight` is the per-sample confidence c_i of
// Eqn. 2 (1 for benign training data; CFG-derived for mixed data).
#pragma once

#include <cstddef>
#include <vector>

namespace leaps::ml {

using FeatureVector = std::vector<double>;

struct Dataset {
  std::vector<FeatureVector> X;
  std::vector<int> y;            // +1 or -1
  std::vector<double> weight;    // c_i in [0, 1]

  std::size_t size() const { return X.size(); }
  bool empty() const { return X.empty(); }

  void add(FeatureVector x, int label, double w = 1.0);
  void append(const Dataset& other);

  /// Number of feature dimensions (0 for an empty dataset).
  std::size_t dims() const { return X.empty() ? 0 : X.front().size(); }

  /// Throws std::logic_error if sizes disagree, labels are not ±1, weights
  /// fall outside [0,1], or rows have inconsistent dimensionality.
  void validate() const;

  /// Sub-dataset at the given row indices.
  Dataset subset(const std::vector<std::size_t>& indices) const;
};

}  // namespace leaps::ml
