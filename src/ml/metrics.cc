#include "ml/metrics.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace leaps::ml {

namespace {
double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

void ConfusionMatrix::add(int actual, int predicted) {
  LEAPS_CHECK_MSG((actual == 1 || actual == -1) &&
                      (predicted == 1 || predicted == -1),
                  "labels must be +1 or -1");
  if (actual == 1) {
    (predicted == 1 ? tp : fn) += 1;
  } else {
    (predicted == -1 ? tn : fp) += 1;
  }
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  tp += other.tp;
  tn += other.tn;
  fp += other.fp;
  fn += other.fn;
}

double ConfusionMatrix::accuracy() const { return ratio(tp + tn, total()); }
double ConfusionMatrix::ppv() const { return ratio(tp, tp + fp); }
double ConfusionMatrix::tpr() const { return ratio(tp, tp + fn); }
double ConfusionMatrix::tnr() const { return ratio(tn, tn + fp); }
double ConfusionMatrix::npv() const { return ratio(tn, tn + fn); }

double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels) {
  LEAPS_CHECK(scores.size() == labels.size());
  // Rank-sum (Mann-Whitney U) with average ranks for ties.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](std::size_t a,
                                                  std::size_t b) {
    return scores[a] < scores[b];
  });
  std::size_t pos = 0;
  std::size_t neg = 0;
  for (const int y : labels) (y == 1 ? pos : neg) += 1;
  if (pos == 0 || neg == 0) return 0.5;

  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    // Average rank of the tie group (1-based ranks i+1 .. j).
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) /
                            2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (labels[order[k]] == 1) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double u = rank_sum_pos -
                   static_cast<double>(pos) *
                       (static_cast<double>(pos) + 1.0) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  LEAPS_CHECK(scores.size() == labels.size());
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Descending score: start strict (classify nothing benign), loosen.
  std::sort(order.begin(), order.end(), [&scores](std::size_t a,
                                                  std::size_t b) {
    return scores[a] > scores[b];
  });
  std::size_t pos = 0;
  std::size_t neg = 0;
  for (const int y : labels) (y == 1 ? pos : neg) += 1;

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double threshold = scores[order[i]];
    while (i < order.size() && scores[order[i]] == threshold) {
      (labels[order[i]] == 1 ? tp : fp) += 1;
      ++i;
    }
    curve.push_back({neg == 0 ? 0.0 : static_cast<double>(fp) / neg,
                     pos == 0 ? 0.0 : static_cast<double>(tp) / pos,
                     threshold});
  }
  return curve;
}

Measurements Measurements::from(const ConfusionMatrix& cm) {
  return {cm.accuracy(), cm.ppv(), cm.tpr(), cm.tnr(), cm.npv()};
}

std::string Measurements::to_string() const {
  return "ACC=" + util::fixed(acc, 3) + " PPV=" + util::fixed(ppv, 3) +
         " TPR=" + util::fixed(tpr, 3) + " TNR=" + util::fixed(tnr, 3) +
         " NPV=" + util::fixed(npv, 3);
}

}  // namespace leaps::ml
