#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/check.h"

namespace leaps::ml {

namespace {
constexpr double kTau = 1e-12;  // curvature floor (LIBSVM's tau)
constexpr double kAlphaEps = 1e-12;
}  // namespace

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) s += a[k] * b[k];
  return s;
}

}  // namespace

SvmModel::SvmModel(std::vector<FeatureVector> support_vectors,
                   std::vector<double> coefficients, double bias,
                   KernelParams kernel)
    : svs_(std::move(support_vectors)),
      coef_(std::move(coefficients)),
      bias_(bias),
      kernel_(kernel) {
  LEAPS_CHECK(svs_.size() == coef_.size());
  if (kernel_.type == KernelType::kGaussian) {
    sv_sq_norms_.reserve(svs_.size());
    for (const FeatureVector& sv : svs_) sv_sq_norms_.push_back(dot(sv, sv));
  }
}

double SvmModel::decision_value(const FeatureVector& x) const {
  double f = bias_;
  if (kernel_.type == KernelType::kGaussian) {
    // Norm trick with the cached SV norms: ‖sv−x‖² = ‖sv‖² + ‖x‖² − 2·sv·x.
    const double xn = dot(x, x);
    for (std::size_t i = 0; i < svs_.size(); ++i) {
      const double sq =
          std::max(0.0, sv_sq_norms_[i] + xn - 2.0 * dot(svs_[i], x));
      f += coef_[i] * std::exp(-sq / kernel_.sigma2);
    }
    return f;
  }
  for (std::size_t i = 0; i < svs_.size(); ++i) {
    f += coef_[i] * kernel_(svs_[i], x);
  }
  return f;
}

int SvmModel::predict(const FeatureVector& x) const {
  return decision_value(x) >= 0.0 ? 1 : -1;
}

std::vector<SvmModel::Contribution> SvmModel::top_contributions(
    const FeatureVector& x, std::size_t top_k) const {
  std::vector<Contribution> all;
  all.reserve(svs_.size());
  for (std::size_t i = 0; i < svs_.size(); ++i) {
    Contribution c;
    c.sv_index = i;
    c.coefficient = coef_[i];
    c.kernel_value = kernel_(svs_[i], x);
    c.contribution = c.coefficient * c.kernel_value;
    all.push_back(c);
  }
  std::sort(all.begin(), all.end(), [](const Contribution& a,
                                       const Contribution& b) {
    const double ma = std::abs(a.contribution);
    const double mb = std::abs(b.contribution);
    if (ma != mb) return ma > mb;
    return a.sv_index < b.sv_index;
  });
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

SvmModel SvmTrainer::train(const Dataset& data, TrainStats* stats,
                           const std::vector<double>* warm_alpha) const {
  LEAPS_SPAN("svm.train");
  data.validate();
  const std::size_t n = data.size();
  LEAPS_CHECK_MSG(n >= 2, "SVM needs at least two samples");

  // Per-sample box bounds C_i = λ c_i. A zero weight pins α_i = 0.
  std::vector<double> C(n);
  bool has_pos = false;
  bool has_neg = false;
  for (std::size_t i = 0; i < n; ++i) {
    C[i] = params_.lambda * data.weight[i];
    if (C[i] > 0.0) {
      (data.y[i] > 0 ? has_pos : has_neg) = true;
    }
  }
  if (!has_pos || !has_neg) {
    throw std::invalid_argument(
        "SvmTrainer: need positively-weighted samples of both classes");
  }

  const GramMatrix K(data.X, params_.kernel);
  // The gram matrix evaluates each unique pair once (the mirror write is
  // free), so the metric still counts the upper triangle.
  static obs::Counter& kernel_evals = obs::MetricRegistry::global().counter(
      "leaps_ml_kernel_evals_total",
      "kernel evaluations spent building SVM gram matrices");
  kernel_evals.inc(n * (n + 1) / 2);
  // Diagonal entries feed the curvature terms of every working-set scan;
  // lift them out of the flat matrix once so the scan reads a contiguous
  // array instead of striding n doubles per element.
  std::vector<double> Kdiag(n);
  for (std::size_t t = 0; t < n; ++t) Kdiag[t] = K(t, t);
  const std::vector<int>& y = data.y;

  std::vector<double> alpha(n, 0.0);
  // G_i = Σ_j α_j y_j K_ij (decision value minus bias); all-zero initially.
  std::vector<double> G(n, 0.0);

  // ---- warm start: clamp, repair feasibility, seed the gradient ---------
  std::size_t warm_nonzero = 0;
  if (warm_alpha != nullptr && !warm_alpha->empty()) {
    const std::size_t m = std::min(n, warm_alpha->size());
    for (std::size_t t = 0; t < m; ++t) {
      alpha[t] = std::clamp((*warm_alpha)[t], 0.0, C[t]);
    }
    // Repair Σ α_i y_i = 0: shave the surplus class down toward zero,
    // largest entries untouched last so the seed stays close to the old
    // optimum. (A seed exported from a prefix of this dataset is already
    // feasible and this loop is a no-op.)
    double s = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      s += alpha[t] * static_cast<double>(y[t]);
    }
    if (std::abs(s) > kAlphaEps) {
      const int surplus_sign = s > 0.0 ? 1 : -1;
      for (std::size_t t = 0; t < n && std::abs(s) > kAlphaEps; ++t) {
        if (y[t] != surplus_sign || alpha[t] <= 0.0) continue;
        const double take = std::min(alpha[t], std::abs(s));
        alpha[t] -= take;
        s -= static_cast<double>(surplus_sign) * take;
      }
      // If the box left nothing to shave (all surplus pinned at 0 already),
      // fall back to a cold start rather than iterate from an infeasible
      // point.
      if (std::abs(s) > kAlphaEps) std::fill(alpha.begin(), alpha.end(), 0.0);
    }
    // Seed G with one contiguous row sweep per active seed entry.
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] <= kAlphaEps) continue;
      ++warm_nonzero;
      const double wj = static_cast<double>(y[j]) * alpha[j];
      const double* Kj = K.row(j);
      for (std::size_t t = 0; t < n; ++t) G[t] += wj * Kj[t];
    }
  }

  const std::size_t max_iter =
      params_.max_iterations > 0
          ? params_.max_iterations
          : std::max<std::size_t>(100000, 200 * n);

  const auto in_up = [&](std::size_t t) {
    return (y[t] > 0 && alpha[t] < C[t]) || (y[t] < 0 && alpha[t] > 0.0);
  };
  const auto in_low = [&](std::size_t t) {
    return (y[t] > 0 && alpha[t] > 0.0) || (y[t] < 0 && alpha[t] < C[t]);
  };
  // Violation score: -y_t ∇f_t = y_t - G_t.
  const auto viol = [&](std::size_t t) {
    return static_cast<double>(y[t]) - G[t];
  };

  std::size_t iter = 0;
  bool converged = false;
  double m_final = 0.0;
  double M_final = 0.0;

  for (; iter < max_iter; ++iter) {
    // ---- working-set selection (LIBSVM WSS2: second-order on j) --------
    std::size_t i = n;
    double m = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (in_up(t) && viol(t) > m) {
        m = viol(t);
        i = t;
      }
    }
    double M = std::numeric_limits<double>::infinity();
    std::size_t j = n;
    double best_gain = 0.0;
    const double* Ki = i < n ? K.row(i) : nullptr;
    const double Kii = i < n ? Kdiag[i] : 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      if (!in_low(t)) continue;
      const double vt = viol(t);
      M = std::min(M, vt);
      if (i < n && vt < m) {
        const double b_it = m - vt;  // > 0
        const double a_it = std::max(Kii + Kdiag[t] - 2.0 * Ki[t], kTau);
        const double gain = -(b_it * b_it) / a_it;
        if (gain < best_gain) {
          best_gain = gain;
          j = t;
        }
      }
    }
    m_final = m;
    M_final = M;
    if (i == n || j == n || m - M < params_.epsilon) {
      converged = (i == n || j == n) ? true : (m - M < params_.epsilon);
      break;
    }

    // ---- analytic two-variable update (Platt, per-sample bounds) -------
    const double eta = std::max(Kdiag[i] + Kdiag[j] - 2.0 * Ki[j], kTau);
    // E_i - E_j = (G_i - y_i) - (G_j - y_j) = -(viol(i) - viol(j)).
    const double delta = viol(i) - viol(j);  // = m - viol(j) > 0
    double L;
    double H;
    const double ai = alpha[i];
    const double aj = alpha[j];
    if (y[i] != y[j]) {
      L = std::max(0.0, aj - ai);
      H = std::min(C[j], C[i] + aj - ai);
    } else {
      L = std::max(0.0, ai + aj - C[i]);
      H = std::min(C[j], ai + aj);
    }
    // Platt: α_j += y_j (E_i - E_j) / η with E_i - E_j = -delta.
    double aj_new = aj - static_cast<double>(y[j]) * delta / eta;
    aj_new = std::clamp(aj_new, L, H);
    const double s = static_cast<double>(y[i]) * static_cast<double>(y[j]);
    double ai_new = std::clamp(ai + s * (aj - aj_new), 0.0, C[i]);
    // Snap to the box so bound membership stays *exact*: a clipped update
    // must not leave α a few ulps inside the bound, or the working-set
    // selection keeps proposing a step the arithmetic cannot take and the
    // solver stalls far from the optimum.
    const auto snap = [](double a, double upper) {
      const double tol = 1e-9 * std::max(1.0, upper);
      if (a < tol) return 0.0;
      if (a > upper - tol) return upper;
      return a;
    };
    ai_new = snap(ai_new, C[i]);
    aj_new = snap(aj_new, C[j]);

    const double dai = ai_new - ai;
    const double daj = aj_new - aj;
    if (std::abs(dai) < kAlphaEps && std::abs(daj) < kAlphaEps) {
      // No representable progress on the best pair: stop rather than spin,
      // and report honestly that the KKT gap was not driven below epsilon.
      converged = false;
      break;
    }
    alpha[i] = ai_new;
    alpha[j] = aj_new;
    // Contiguous K[i][·] / K[j][·] sweeps — the flat rows make this the
    // streaming inner loop it should be.
    const double wi = static_cast<double>(y[i]) * dai;
    const double wj = static_cast<double>(y[j]) * daj;
    const double* Kj = K.row(j);
    for (std::size_t t = 0; t < n; ++t) {
      G[t] += wi * Ki[t] + wj * Kj[t];
    }
  }

  // ---- bias: average over free support vectors, else midpoint ----------
  double b = 0.0;
  std::size_t free_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > kAlphaEps && alpha[t] < C[t] - kAlphaEps) {
      b += viol(t);
      ++free_count;
    }
  }
  if (free_count > 0) {
    b /= static_cast<double>(free_count);
  } else if (std::isfinite(m_final) && std::isfinite(M_final)) {
    b = (m_final + M_final) / 2.0;
  }

  // ---- package the model ------------------------------------------------
  std::vector<FeatureVector> svs;
  std::vector<double> coef;
  double objective = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    objective +=
        alpha[t] * (static_cast<double>(y[t]) * G[t] / 2.0 - 1.0);
    if (alpha[t] > kAlphaEps) {
      svs.push_back(data.X[t]);
      coef.push_back(alpha[t] * static_cast<double>(y[t]));
    }
  }
  if (stats != nullptr) {
    stats->iterations = iter;
    stats->support_vectors = svs.size();
    stats->converged = converged;
    stats->objective = objective;
    stats->alpha = alpha;
    stats->warm_nonzero = warm_nonzero;
  }
  static obs::Gauge& last_iters = obs::MetricRegistry::global().gauge(
      "leaps_ml_svm_iterations", "SMO iterations of the last SVM training");
  last_iters.set(static_cast<std::int64_t>(iter));
  return SvmModel(std::move(svs), std::move(coef), b, params_.kernel);
}

}  // namespace leaps::ml
