#include "ml/cgraph_model.h"

#include "util/check.h"
#include "util/rng.h"

namespace leaps::ml {

void CallGraphModel::train(const trace::PartitionedLog& benign_log,
                           const trace::PartitionedLog& mixed_log) {
  bcg_ = cfg::SystemCallGraph();
  mcg_ = cfg::SystemCallGraph();
  bcg_.add_log(benign_log);
  mcg_.add_log(mixed_log);
  trained_ = true;
}

int CallGraphModel::tie_break(std::uint64_t key) const {
  // Deterministic unbiased coin: undecidable points are split 50/50 without
  // consulting ground truth.
  return (util::splitmix64(key) & 1) == 0 ? 1 : -1;
}

namespace {

long event_score(const cfg::SystemCallGraph& bcg,
                 const cfg::SystemCallGraph& mcg,
                 const trace::PartitionedEvent& event,
                 std::uint64_t* hash_acc) {
  long score = 0;
  for (const cfg::Edge& e : cfg::SystemCallGraph::event_edges(event)) {
    const bool in_b = bcg.has_edge(e.first, e.second);
    const bool in_m = mcg.has_edge(e.first, e.second);
    if (in_b && !in_m) ++score;
    if (in_m && !in_b) --score;
    *hash_acc = util::splitmix64(*hash_acc ^ e.first) ^ e.second;
  }
  return score;
}

}  // namespace

int CallGraphModel::predict_event(const trace::PartitionedEvent& event) const {
  LEAPS_CHECK_MSG(trained_, "CallGraphModel used before train()");
  std::uint64_t h = event.seq;
  const long score = event_score(bcg_, mcg_, event, &h);
  if (score > 0) return 1;
  if (score < 0) return -1;
  return tie_break(h);
}

long CallGraphModel::score_window(
    std::span<const trace::PartitionedEvent* const> events) const {
  LEAPS_CHECK_MSG(trained_, "CallGraphModel used before train()");
  long score = 0;
  std::uint64_t h = 0;
  for (const trace::PartitionedEvent* e : events) {
    score += event_score(bcg_, mcg_, *e, &h);
  }
  return score;
}

int CallGraphModel::predict_window(
    std::span<const trace::PartitionedEvent* const> events) const {
  const long score = score_window(events);
  if (score > 0) return 1;
  if (score < 0) return -1;
  std::uint64_t h = 0;
  for (const trace::PartitionedEvent* e : events) {
    h = util::splitmix64(h ^ e->seq);
  }
  return tie_break(h);
}

}  // namespace leaps::ml
