#include "ml/dataset.h"

#include "util/check.h"

namespace leaps::ml {

void Dataset::add(FeatureVector x, int label, double w) {
  X.push_back(std::move(x));
  y.push_back(label);
  weight.push_back(w);
}

void Dataset::append(const Dataset& other) {
  X.insert(X.end(), other.X.begin(), other.X.end());
  y.insert(y.end(), other.y.begin(), other.y.end());
  weight.insert(weight.end(), other.weight.begin(), other.weight.end());
}

void Dataset::validate() const {
  LEAPS_CHECK(X.size() == y.size());
  LEAPS_CHECK(X.size() == weight.size());
  const std::size_t d = dims();
  for (std::size_t i = 0; i < X.size(); ++i) {
    LEAPS_CHECK_MSG(X[i].size() == d, "inconsistent feature dimensions");
    LEAPS_CHECK_MSG(y[i] == 1 || y[i] == -1, "label must be +1 or -1");
    LEAPS_CHECK_MSG(weight[i] >= 0.0 && weight[i] <= 1.0,
                    "weight must be in [0,1]");
  }
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.X.reserve(indices.size());
  for (const std::size_t i : indices) {
    LEAPS_CHECK(i < X.size());
    out.add(X[i], y[i], weight[i]);
  }
  return out;
}

}  // namespace leaps::ml
