// Weighted CART decision trees and a bagged random forest — the decision-
// tree alternative Section III-D-2 cites ([27]) alongside LR and SVM.
//
// Trees split on weighted Gini impurity; every sample carries the same
// CFG-derived confidence cᵢ used by the Weighted SVM, entering all impurity
// and leaf-vote computations as a fractional count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace leaps::ml {

struct DTreeParams {
  std::size_t max_depth = 8;
  /// A split is rejected if either side would carry less total weight.
  double min_leaf_weight = 2.0;
  /// Minimum weighted-Gini decrease for a split to be kept.
  double min_gain = 1e-7;
};

class DecisionTreeModel {
 public:
  /// +1 benign / -1 malicious (weighted majority of the reached leaf).
  int predict(const FeatureVector& x) const;
  /// Signed confidence in [-1, 1]: (benign − malicious) weight share of
  /// the reached leaf; larger leans benign.
  double score(const FeatureVector& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;
  bool empty() const { return nodes_.empty(); }

  /// Tree storage (public so the trainers' internal builder can produce
  /// it; not part of the stable API).
  struct Node {
    // Internal node: feature/threshold with children; leaf: children = -1.
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double leaf_score = 0.0;  // signed weight share at leaves
  };

 private:
  friend class DecisionTreeTrainer;
  friend class RandomForestTrainer;
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

class DecisionTreeTrainer {
 public:
  explicit DecisionTreeTrainer(DTreeParams params = {}) : params_(params) {}

  /// Requires both classes with positive weight.
  DecisionTreeModel train(const Dataset& data) const;

 private:
  DTreeParams params_;
};

struct ForestParams {
  DTreeParams tree;
  std::size_t trees = 25;
  /// Features considered per split (fraction of dims, at least 1).
  double feature_fraction = 0.6;
  /// Bootstrap sample size as a fraction of the training set.
  double sample_fraction = 0.8;
  std::uint64_t seed = 1;
};

class RandomForestModel {
 public:
  int predict(const FeatureVector& x) const;
  /// Mean tree score in [-1, 1]; larger leans benign.
  double score(const FeatureVector& x) const;
  std::size_t tree_count() const { return trees_.size(); }

 private:
  friend class RandomForestTrainer;
  std::vector<DecisionTreeModel> trees_;
};

class RandomForestTrainer {
 public:
  explicit RandomForestTrainer(ForestParams params = {}) : params_(params) {}

  RandomForestModel train(const Dataset& data) const;

 private:
  ForestParams params_;
};

}  // namespace leaps::ml
