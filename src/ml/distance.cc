#include "ml/distance.h"

#include <algorithm>

#include "util/check.h"

namespace leaps::ml {

double set_dissimilarity(const StringSet& a, const StringSet& b) {
  LEAPS_DCHECK(std::is_sorted(a.begin(), a.end()));
  LEAPS_DCHECK(std::is_sorted(b.begin(), b.end()));
  if (a.empty() && b.empty()) return 0.0;
  // Merge walk over two sorted sets.
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<std::vector<double>> jaccard_distance_matrix(
    const std::vector<StringSet>& sets) {
  const std::size_t n = sets.size();
  std::vector<std::vector<double>> dm(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = set_dissimilarity(sets[i], sets[j]);
      dm[i][j] = d;
      dm[j][i] = d;
    }
  }
  return dm;
}

}  // namespace leaps::ml
