#include "ml/distance.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string_view>

#include "util/check.h"
#include "util/parallel.h"

namespace leaps::ml {

double set_dissimilarity(const StringSet& a, const StringSet& b) {
  LEAPS_DCHECK(std::is_sorted(a.begin(), a.end()));
  LEAPS_DCHECK(std::is_sorted(b.begin(), b.end()));
  if (a.empty() && b.empty()) return 0.0;
  // Merge walk over two sorted sets.
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

CondensedMatrix jaccard_condensed(const std::vector<StringSet>& sets) {
  const std::size_t n = sets.size();
  CondensedMatrix dm(n);
  if (n < 2) return dm;

  // Intern every token to a dense uint32 id. The id sets stay sorted by
  // *string* order (ids are assigned over a global sorted token list), so
  // the integer merge-walk visits pairs in exactly the same order as the
  // string walk and |∩| / |∪| come out identical.
  std::map<std::string_view, std::uint32_t> ids;
  for (const StringSet& s : sets) {
    LEAPS_DCHECK(std::is_sorted(s.begin(), s.end()));
    for (const std::string& tok : s) ids.emplace(tok, 0);
  }
  std::uint32_t next_id = 0;
  for (auto& [tok, id] : ids) id = next_id++;
  std::vector<std::vector<std::uint32_t>> iset(n);
  for (std::size_t i = 0; i < n; ++i) {
    iset[i].reserve(sets[i].size());
    for (const std::string& tok : sets[i]) {
      iset[i].push_back(ids.find(tok)->second);
    }
  }

  // Row blocks in parallel: row i's condensed entries (j > i) are
  // contiguous and written by exactly one chunk, so the output is
  // bit-identical for any thread count.
  util::parallel_for(0, n - 1, 8, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      const std::vector<std::uint32_t>& a = iset[i];
      double* out = dm.row(i);
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::vector<std::uint32_t>& b = iset[j];
        std::size_t x = 0;
        std::size_t y = 0;
        std::size_t inter = 0;
        while (x < a.size() && y < b.size()) {
          if (a[x] == b[y]) {
            ++inter;
            ++x;
            ++y;
          } else if (a[x] < b[y]) {
            ++x;
          } else {
            ++y;
          }
        }
        const std::size_t uni = a.size() + b.size() - inter;
        out[j - i - 1] =
            uni == 0 ? 0.0
                     : 1.0 - static_cast<double>(inter) /
                                 static_cast<double>(uni);
      }
    }
  });
  return dm;
}

std::vector<std::vector<double>> jaccard_distance_matrix(
    const std::vector<StringSet>& sets) {
  const std::size_t n = sets.size();
  const CondensedMatrix dm = jaccard_condensed(sets);
  std::vector<std::vector<double>> out(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      out[i][j] = out[j][i] = dm.at(i, j);
    }
  }
  return out;
}

}  // namespace leaps::ml
