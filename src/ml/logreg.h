// Weighted L2-regularized logistic regression — the alternative linear
// classifier Section III-D-2 mentions alongside SVM and decision trees.
//
// Minimizes
//     (l2/2)·||w||² + Σᵢ cᵢ · log(1 + exp(-yᵢ (w·xᵢ + b)))
// by Newton/IRLS iterations (a dense Cholesky solve per step — the feature
// dimension here is 3 × window ≈ 30). The per-sample confidences cᵢ play
// the same role as in the Weighted SVM: CFG-certified-benign negatives
// contribute (almost) nothing to the loss.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.h"

namespace leaps::ml {

struct LogRegParams {
  double l2 = 1.0;
  std::size_t max_iterations = 50;
  /// Stop when the Newton step's max-norm falls below this.
  double tolerance = 1e-8;
};

class LogRegModel {
 public:
  LogRegModel() = default;
  LogRegModel(std::vector<double> weights, double bias);

  /// w·x + b: positive leans benign, mirroring the SVM convention.
  double decision_value(const FeatureVector& x) const;
  /// +1 (benign) or -1 (malicious).
  int predict(const FeatureVector& x) const;
  /// P(benign | x) under the logistic link.
  double probability(const FeatureVector& x) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

struct LogRegStats {
  std::size_t iterations = 0;
  bool converged = false;
  double final_loss = 0.0;
};

class LogRegTrainer {
 public:
  explicit LogRegTrainer(LogRegParams params = {}) : params_(params) {}

  /// Requires both classes with positive weight (like the SVM trainer).
  LogRegModel train(const Dataset& data, LogRegStats* stats = nullptr) const;

 private:
  LogRegParams params_;
};

}  // namespace leaps::ml
