#include "ml/hcluster.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "util/check.h"

namespace leaps::ml {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

struct MergeRecord {
  std::size_t left;   // node id
  std::size_t right;  // node id
  double distance;
};

/// Everything downstream of the merge sequence: cut selection, union-find
/// over the applied prefix, dendrogram leaf order, cluster numbering, and
/// dissimilarity-scaled positions. Shared by the NN-chain path and the
/// reference implementation so their outputs can only differ in the merges
/// themselves.
ClusterResult finalize(std::size_t n, const std::vector<MergeRecord>& merges,
                       const ClusterOptions& options) {
  ClusterResult result;

  // --- choose how many leading merges the cut applies -------------------
  // UPGMA merge distances are monotone non-decreasing, so both criteria
  // select a prefix of the merge sequence.
  std::size_t by_cut = 0;
  while (by_cut < merges.size() &&
         merges[by_cut].distance <= options.cut_distance) {
    ++by_cut;
  }
  std::size_t applied = by_cut;
  if (options.max_clusters > 0 && n > options.max_clusters) {
    applied = std::max(applied, n - options.max_clusters);
  }

  // --- union-find over the applied prefix -------------------------------
  std::vector<std::size_t> parent(2 * n - 1);
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t m = 0; m < applied; ++m) {
    const std::size_t root = n + m;
    parent[find(merges[m].left)] = root;
    parent[find(merges[m].right)] = root;
  }

  // --- dendrogram leaf order (full tree, iterative in-order) ------------
  // Alongside the order, record the cophenetic distance at each boundary
  // between consecutive leaves: the boundary between the left and right
  // subtree of node X is exactly X's merge distance.
  result.leaf_order.reserve(n);
  std::vector<double> boundary_gaps;  // size n-1 when done
  boundary_gaps.reserve(n - 1);
  {
    struct Item {
      std::size_t node;
      double gap;
      bool is_gap;
    };
    std::vector<Item> stack = {{2 * n - 2, 0.0, false}};
    while (!stack.empty()) {
      const Item item = stack.back();
      stack.pop_back();
      if (item.is_gap) {
        boundary_gaps.push_back(item.gap);
        continue;
      }
      if (item.node < n) {
        result.leaf_order.push_back(item.node);
      } else {
        const MergeRecord& m = merges[item.node - n];
        // Visit order: left subtree, boundary marker, right subtree.
        stack.push_back({m.right, 0.0, false});
        stack.push_back({0, m.distance, true});
        stack.push_back({m.left, 0.0, false});
      }
    }
  }

  // --- number clusters by first appearance in leaf order ----------------
  result.assignment.assign(n, -1);
  int next_id = 0;
  std::vector<int> root_to_id(2 * n - 1, -1);
  for (const std::size_t leaf : result.leaf_order) {
    const std::size_t root = find(leaf);
    if (root_to_id[root] < 0) root_to_id[root] = next_id++;
    result.assignment[leaf] = root_to_id[root];
  }
  result.cluster_count = next_id;

  // --- cluster positions: leaf-order coordinates with dissimilarity-
  // proportional gaps. A cluster's leaves are contiguous in leaf order
  // (clusters are dendrogram subtrees), so the transition gap between two
  // clusters is the boundary gap at their interface.
  result.positions.assign(static_cast<std::size_t>(next_id), 0.0);
  double coord = 0.0;
  int prev_id = result.assignment[result.leaf_order.front()];
  result.positions[static_cast<std::size_t>(prev_id)] = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const int id = result.assignment[result.leaf_order[i]];
    if (id != prev_id) {
      coord += 1.0 + options.gap_scale * boundary_gaps[i - 1];
      result.positions[static_cast<std::size_t>(id)] = coord;
      prev_id = id;
    }
  }
  return result;
}

ClusterResult singleton_result() {
  ClusterResult result;
  result.assignment = {0};
  result.cluster_count = 1;
  result.leaf_order = {0};
  result.positions = {0.0};
  return result;
}

}  // namespace

ClusterResult HierarchicalClusterer::cluster(CondensedMatrix dm) const {
  const std::size_t n = dm.n();
  LEAPS_CHECK_MSG(n > 0, "clustering an empty set");
  if (n == 1) return singleton_result();

  // Greedy UPGMA with cached per-row nearest neighbors over the condensed
  // matrix. Each step picks the same pair the reference's row-major i<j
  // scan would — a row's cache holds its first strict minimum (smallest j
  // among ties), and the global pick takes the smallest cached value at
  // the smallest i — so the merge sequence, heights, and tie behavior are
  // identical bit for bit, on every input. The scan itself drops from
  // O(n²) to O(n) per merge; caches are repaired incrementally and a row
  // is only rescanned when its cached neighbor was touched by the merge.
  // Expected cost O(n²) total (the reference is Θ(n³) always); the
  // adversarial worst case — every row's neighbor invalidated every merge
  // — degenerates to the reference's cost but cannot produce different
  // output.
  std::vector<std::size_t> slot_node(n);
  std::iota(slot_node.begin(), slot_node.end(), 0);
  std::vector<double> node_size(2 * n - 1, 1.0);
  std::vector<MergeRecord> merges;
  merges.reserve(n - 1);
  std::size_t active = n;

  // cand[i]: first strict minimum of row i over columns (i, active).
  struct Cand {
    double val;
    std::size_t j;
  };
  std::vector<Cand> cand(n, {std::numeric_limits<double>::infinity(), kNone});
  const auto recompute = [&](std::size_t i) {
    Cand c{std::numeric_limits<double>::infinity(), kNone};
    const double* row = dm.row(i);
    for (std::size_t j = i + 1; j < active; ++j) {
      const double d = row[j - i - 1];
      if (d < c.val) {
        c.val = d;
        c.j = j;
      }
    }
    cand[i] = c;
  };
  for (std::size_t i = 0; i + 1 < n; ++i) recompute(i);

  while (active > 1) {
    // Global minimum = smallest row cache, smallest i on ties; the cached
    // j is already the smallest column attaining that row's minimum.
    std::size_t bi = 0;
    for (std::size_t i = 1; i + 1 < active; ++i) {
      if (cand[i].val < cand[bi].val) bi = i;
    }
    const std::size_t bj = cand[bi].j;
    const double best = cand[bi].val;

    const std::size_t node_i = slot_node[bi];
    const std::size_t node_j = slot_node[bj];
    const std::size_t new_node = n + merges.size();
    merges.push_back({node_i, node_j, best});
    const double si = node_size[node_i];
    const double sj = node_size[node_j];
    node_size[new_node] = si + sj;

    // Lance–Williams update for average linkage, reference expression
    // verbatim:  d(new, k) = (|i| d(i,k) + |j| d(j,k)) / (|i| + |j|).
    for (std::size_t k = 0; k < active; ++k) {
      if (k == bi || k == bj) continue;
      dm.ref(bi, k) = (si * dm.at(bi, k) + sj * dm.at(bj, k)) / (si + sj);
    }
    slot_node[bi] = new_node;
    // Remove slot bj by swapping in the last slot (after the LW update, so
    // the moved row/column carries the updated d(bi, last) value).
    const std::size_t last = active - 1;
    if (bj != last) {
      for (std::size_t k = 0; k + 1 < active; ++k) {
        if (k == bj) continue;
        dm.ref(bj, k) = dm.at(last, k);
      }
      slot_node[bj] = slot_node[last];
    }
    --active;

    // --- cache repair ---------------------------------------------------
    // Row bi changed wholesale; row bj now holds the former last row.
    if (bi + 1 < active) recompute(bi);
    if (bj < active && bj + 1 < active) recompute(bj);
    for (std::size_t i = 0; i + 1 < active; ++i) {
      if (i == bi || i == bj) continue;
      Cand& c = cand[i];
      if (c.j == bi || c.j == bj) {
        // The cached neighbor's value changed (bi: LW-updated; bj: column
        // overwritten by the swap) — the cache may be stale either way.
        recompute(i);
        continue;
      }
      if (c.j == last) {
        // The cached value moved from column `last` to column bj. It was
        // a strict minimum (the first-strict-min scan only ends on the
        // last column when it beats every earlier one), so for i < bj the
        // pointer just follows the move; for i > bj the pair now lives in
        // row bj and this row must rescan what is left.
        if (i < bj) {
          c.j = bj;
        } else {
          recompute(i);
          continue;
        }
      }
      // The two rewritten columns can tie the row minimum at a smaller
      // column index, which the reference's scan would now prefer. They
      // can never beat it: an LW average is >= the smaller of its inputs,
      // and the moved column held this very row's value already.
      if (i < bi) {
        const double v = dm.at(i, bi);
        if (v < c.val || (v == c.val && bi < c.j)) c = {v, bi};
      }
      if (i < bj && bj < active) {
        const double v = dm.at(i, bj);
        if (v < c.val || (v == c.val && bj < c.j)) c = {v, bj};
      }
    }
  }

  return finalize(n, merges, options_);
}

ClusterResult HierarchicalClusterer::cluster(
    const std::vector<std::vector<double>>& distance) const {
  const std::size_t n = distance.size();
  LEAPS_CHECK_MSG(n > 0, "clustering an empty set");
  for (const auto& row : distance) {
    LEAPS_CHECK_MSG(row.size() == n, "distance matrix not square");
  }
  CondensedMatrix dm(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) dm.ref(i, j) = distance[i][j];
  }
  return cluster(std::move(dm));
}

ClusterResult HierarchicalClusterer::cluster_reference(
    const std::vector<std::vector<double>>& distance) const {
  const std::size_t n = distance.size();
  LEAPS_CHECK_MSG(n > 0, "clustering an empty set");
  for (const auto& row : distance) {
    LEAPS_CHECK_MSG(row.size() == n, "distance matrix not square");
  }
  if (n == 1) return singleton_result();

  // --- full UPGMA merge to a single root (historic O(n³) scan) ----------
  // Active clusters are tracked in slot arrays; nodes are numbered leaves
  // first (0..n-1), then internal nodes in merge order (n..2n-2).
  std::vector<std::size_t> slot_node(n);
  std::vector<std::size_t> node_size(2 * n - 1, 1);
  std::vector<MergeRecord> merges;
  merges.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) slot_node[i] = i;

  // Working copy of the distance matrix, indexed by slot.
  std::vector<std::vector<double>> d = distance;
  std::size_t active = n;

  while (active > 1) {
    // Closest active pair.
    std::size_t bi = 0;
    std::size_t bj = 1;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active; ++i) {
      for (std::size_t j = i + 1; j < active; ++j) {
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }

    const std::size_t node_i = slot_node[bi];
    const std::size_t node_j = slot_node[bj];
    const std::size_t new_node = n + merges.size();
    merges.push_back({node_i, node_j, best});
    const auto si = static_cast<double>(node_size[node_i]);
    const auto sj = static_cast<double>(node_size[node_j]);
    node_size[new_node] = node_size[node_i] + node_size[node_j];

    // Lance–Williams update for average linkage:
    // d(new, k) = (|i| d(i,k) + |j| d(j,k)) / (|i| + |j|)
    for (std::size_t k = 0; k < active; ++k) {
      if (k == bi || k == bj) continue;
      const double dk = (si * d[bi][k] + sj * d[bj][k]) / (si + sj);
      d[bi][k] = dk;
      d[k][bi] = dk;
    }
    slot_node[bi] = new_node;
    // Remove slot bj by swapping in the last slot.
    const std::size_t last = active - 1;
    if (bj != last) {
      slot_node[bj] = slot_node[last];
      for (std::size_t k = 0; k < active; ++k) {
        d[bj][k] = d[last][k];
        d[k][bj] = d[k][last];
      }
      d[bj][bj] = 0.0;
    }
    --active;
  }

  return finalize(n, merges, options_);
}

}  // namespace leaps::ml
