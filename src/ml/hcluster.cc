#include "ml/hcluster.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace leaps::ml {

namespace {

struct MergeRecord {
  std::size_t left;   // node id
  std::size_t right;  // node id
  double distance;
};

}  // namespace

ClusterResult HierarchicalClusterer::cluster(
    const std::vector<std::vector<double>>& distance) const {
  const std::size_t n = distance.size();
  LEAPS_CHECK_MSG(n > 0, "clustering an empty set");
  for (const auto& row : distance) {
    LEAPS_CHECK_MSG(row.size() == n, "distance matrix not square");
  }

  ClusterResult result;
  if (n == 1) {
    result.assignment = {0};
    result.cluster_count = 1;
    result.leaf_order = {0};
    result.positions = {0.0};
    return result;
  }

  // --- full UPGMA merge to a single root --------------------------------
  // Active clusters are tracked in slot arrays; nodes are numbered leaves
  // first (0..n-1), then internal nodes in merge order (n..2n-2).
  std::vector<std::size_t> slot_node(n);
  std::vector<std::size_t> node_size(2 * n - 1, 1);
  std::vector<MergeRecord> merges;
  merges.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) slot_node[i] = i;

  // Working copy of the distance matrix, indexed by slot.
  std::vector<std::vector<double>> d = distance;
  std::size_t active = n;

  while (active > 1) {
    // Closest active pair.
    std::size_t bi = 0;
    std::size_t bj = 1;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active; ++i) {
      for (std::size_t j = i + 1; j < active; ++j) {
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }

    const std::size_t node_i = slot_node[bi];
    const std::size_t node_j = slot_node[bj];
    const std::size_t new_node = n + merges.size();
    merges.push_back({node_i, node_j, best});
    const auto si = static_cast<double>(node_size[node_i]);
    const auto sj = static_cast<double>(node_size[node_j]);
    node_size[new_node] = node_size[node_i] + node_size[node_j];

    // Lance–Williams update for average linkage:
    // d(new, k) = (|i| d(i,k) + |j| d(j,k)) / (|i| + |j|)
    for (std::size_t k = 0; k < active; ++k) {
      if (k == bi || k == bj) continue;
      const double dk = (si * d[bi][k] + sj * d[bj][k]) / (si + sj);
      d[bi][k] = dk;
      d[k][bi] = dk;
    }
    slot_node[bi] = new_node;
    // Remove slot bj by swapping in the last slot.
    const std::size_t last = active - 1;
    if (bj != last) {
      slot_node[bj] = slot_node[last];
      for (std::size_t k = 0; k < active; ++k) {
        d[bj][k] = d[last][k];
        d[k][bj] = d[k][last];
      }
      d[bj][bj] = 0.0;
    }
    --active;
  }

  // --- choose how many leading merges the cut applies -------------------
  // UPGMA merge distances are monotone non-decreasing, so both criteria
  // select a prefix of the merge sequence.
  std::size_t by_cut = 0;
  while (by_cut < merges.size() &&
         merges[by_cut].distance <= options_.cut_distance) {
    ++by_cut;
  }
  std::size_t applied = by_cut;
  if (options_.max_clusters > 0 && n > options_.max_clusters) {
    applied = std::max(applied, n - options_.max_clusters);
  }

  // --- union-find over the applied prefix -------------------------------
  std::vector<std::size_t> parent(2 * n - 1);
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t m = 0; m < applied; ++m) {
    const std::size_t root = n + m;
    parent[find(merges[m].left)] = root;
    parent[find(merges[m].right)] = root;
  }

  // --- dendrogram leaf order (full tree, iterative in-order) ------------
  // Alongside the order, record the cophenetic distance at each boundary
  // between consecutive leaves: the boundary between the left and right
  // subtree of node X is exactly X's merge distance.
  result.leaf_order.reserve(n);
  std::vector<double> boundary_gaps;  // size n-1 when done
  boundary_gaps.reserve(n - 1);
  {
    struct Item {
      std::size_t node;
      double gap;
      bool is_gap;
    };
    std::vector<Item> stack = {{2 * n - 2, 0.0, false}};
    while (!stack.empty()) {
      const Item item = stack.back();
      stack.pop_back();
      if (item.is_gap) {
        boundary_gaps.push_back(item.gap);
        continue;
      }
      if (item.node < n) {
        result.leaf_order.push_back(item.node);
      } else {
        const MergeRecord& m = merges[item.node - n];
        // Visit order: left subtree, boundary marker, right subtree.
        stack.push_back({m.right, 0.0, false});
        stack.push_back({0, m.distance, true});
        stack.push_back({m.left, 0.0, false});
      }
    }
  }

  // --- number clusters by first appearance in leaf order ----------------
  result.assignment.assign(n, -1);
  int next_id = 0;
  std::vector<int> root_to_id(2 * n - 1, -1);
  for (const std::size_t leaf : result.leaf_order) {
    const std::size_t root = find(leaf);
    if (root_to_id[root] < 0) root_to_id[root] = next_id++;
    result.assignment[leaf] = root_to_id[root];
  }
  result.cluster_count = next_id;

  // --- cluster positions: leaf-order coordinates with dissimilarity-
  // proportional gaps. A cluster's leaves are contiguous in leaf order
  // (clusters are dendrogram subtrees), so the transition gap between two
  // clusters is the boundary gap at their interface.
  result.positions.assign(static_cast<std::size_t>(next_id), 0.0);
  double coord = 0.0;
  int prev_id = result.assignment[result.leaf_order.front()];
  result.positions[static_cast<std::size_t>(prev_id)] = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const int id = result.assignment[result.leaf_order[i]];
    if (id != prev_id) {
      coord += 1.0 + options_.gap_scale * boundary_gaps[i - 1];
      result.positions[static_cast<std::size_t>(id)] = coord;
      prev_id = id;
    }
  }
  return result;
}

}  // namespace leaps::ml
