// Set-dissimilarity metric (Eqn. 1) and pairwise distance matrices for the
// hierarchical-clustering stage.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace leaps::ml {

/// A lib/func set, sorted and deduplicated (callers must maintain this; the
/// matrix builder checks it).
using StringSet = std::vector<std::string>;

/// set_dissimilarity(a, b) = 1 - |a ∩ b| / |a ∪ b|  (Eqn. 1).
/// Two empty sets are identical (distance 0).
double set_dissimilarity(const StringSet& a, const StringSet& b);

/// Condensed pairwise distance matrix: the upper triangle (i < j) of an
/// n×n symmetric zero-diagonal matrix in one flat allocation, row-major
/// (scipy's `pdist` layout). This is the single representation shared
/// end-to-end by the distance builders and the clusterer — no nested
/// vectors, no O(n²) repacking at the hand-off.
class CondensedMatrix {
 public:
  CondensedMatrix() = default;
  explicit CondensedMatrix(std::size_t n)
      : n_(n), d_(n < 2 ? 0 : n * (n - 1) / 2, 0.0) {}

  std::size_t n() const { return n_; }

  /// Flat index of the unordered pair {i, j}, i != j.
  std::size_t index(std::size_t i, std::size_t j) const {
    if (i > j) std::swap(i, j);
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }

  double at(std::size_t i, std::size_t j) const {
    return i == j ? 0.0 : d_[index(i, j)];
  }
  double& ref(std::size_t i, std::size_t j) { return d_[index(i, j)]; }

  /// Start of row i's condensed entries, i.e. the distances to
  /// j = i+1 … n-1, which are contiguous in this layout.
  double* row(std::size_t i) { return d_.data() + index(i, i + 1); }

  const std::vector<double>& data() const { return d_; }

 private:
  std::size_t n_ = 0;
  std::vector<double> d_;
};

/// Condensed pairwise Jaccard matrix over the given sets — the fast path.
/// Tokens are interned to dense uint32 ids first, so the merge-walks
/// compare integers instead of strings, and rows are filled in parallel
/// (each row's condensed entries are contiguous, one writer per entry).
/// Values are bit-identical to calling set_dissimilarity per pair.
CondensedMatrix jaccard_condensed(const std::vector<StringSet>& sets);

/// Full symmetric pairwise matrix DM[i][j] = set_dissimilarity(i, j).
/// Compatibility shape for callers that want the nested representation;
/// built from jaccard_condensed.
std::vector<std::vector<double>> jaccard_distance_matrix(
    const std::vector<StringSet>& sets);

}  // namespace leaps::ml
