// Set-dissimilarity metric (Eqn. 1) and pairwise distance matrices for the
// hierarchical-clustering stage.
#pragma once

#include <string>
#include <vector>

namespace leaps::ml {

/// A lib/func set, sorted and deduplicated (callers must maintain this; the
/// matrix builder checks it).
using StringSet = std::vector<std::string>;

/// set_dissimilarity(a, b) = 1 - |a ∩ b| / |a ∪ b|  (Eqn. 1).
/// Two empty sets are identical (distance 0).
double set_dissimilarity(const StringSet& a, const StringSet& b);

/// Full symmetric pairwise matrix DM[i][j] = set_dissimilarity(i, j).
std::vector<std::vector<double>> jaccard_distance_matrix(
    const std::vector<StringSet>& sets);

}  // namespace leaps::ml
