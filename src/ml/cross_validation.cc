#include "ml/cross_validation.h"

#include <algorithm>
#include <numeric>

#include "ml/metrics.h"
#include "util/check.h"

namespace leaps::ml {

std::vector<std::vector<std::size_t>> make_folds(std::size_t n,
                                                 std::size_t folds,
                                                 util::Rng& rng) {
  LEAPS_CHECK_MSG(folds >= 2, "need at least 2 folds");
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);
  std::vector<std::vector<std::size_t>> out(folds);
  for (std::size_t i = 0; i < n; ++i) {
    out[i % folds].push_back(indices[i]);
  }
  return out;
}

namespace {

bool has_both_classes(const Dataset& d) {
  bool pos = false;
  bool neg = false;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.weight[i] <= 0.0) continue;
    (d.y[i] > 0 ? pos : neg) = true;
  }
  return pos && neg;
}

}  // namespace

double cross_validate(const Dataset& data, const SvmParams& params,
                      std::size_t folds, util::Rng& rng,
                      bool weighted_validation) {
  const std::size_t n = data.size();
  LEAPS_CHECK_MSG(n >= folds, "fewer samples than folds");
  const auto fold_sets = make_folds(n, folds, rng);

  double acc_sum = 0.0;
  std::size_t used_folds = 0;
  std::vector<char> in_test(n, 0);
  for (const auto& test_idx : fold_sets) {
    if (test_idx.empty()) continue;
    std::fill(in_test.begin(), in_test.end(), 0);
    for (const std::size_t i : test_idx) in_test[i] = 1;
    std::vector<std::size_t> train_idx;
    train_idx.reserve(n - test_idx.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_test[i]) train_idx.push_back(i);
    }
    const Dataset train = data.subset(train_idx);
    if (!has_both_classes(train)) continue;

    const SvmTrainer trainer(params);
    const SvmModel model = trainer.train(train);
    double correct = 0.0;
    double total = 0.0;
    for (const std::size_t i : test_idx) {
      const double w = weighted_validation ? data.weight[i] : 1.0;
      total += w;
      if (model.predict(data.X[i]) == data.y[i]) correct += w;
    }
    if (total <= 0.0) continue;
    acc_sum += correct / total;
    ++used_folds;
  }
  return used_folds == 0 ? 0.0 : acc_sum / static_cast<double>(used_folds);
}

GridSearchResult tune_svm(const Dataset& data, const SvmParams& base,
                          const CrossValidationOptions& options,
                          util::Rng& rng) {
  LEAPS_CHECK_MSG(!options.lambdas.empty() && !options.sigma2s.empty(),
                  "empty hyper-parameter grid");
  GridSearchResult result;
  result.best = base;
  result.best_accuracy = -1.0;
  for (const double lambda : options.lambdas) {
    for (const double sigma2 : options.sigma2s) {
      SvmParams p = base;
      p.lambda = lambda;
      p.kernel.sigma2 = sigma2;
      // Identical fold split for every grid point: comparisons stay fair.
      util::Rng fold_rng = rng.fork(0xF01D5);
      const double acc = cross_validate(data, p, options.folds, fold_rng,
                                        options.weighted_validation);
      result.trials.push_back({lambda, sigma2, acc});
      if (acc > result.best_accuracy) {
        result.best_accuracy = acc;
        result.best = p;
      }
    }
  }
  return result;
}

}  // namespace leaps::ml
