#include "ml/cross_validation.h"

#include <algorithm>
#include <numeric>

#include "ml/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace leaps::ml {

std::vector<std::vector<std::size_t>> make_folds(std::size_t n,
                                                 std::size_t folds,
                                                 util::Rng& rng) {
  LEAPS_CHECK_MSG(folds >= 2, "need at least 2 folds");
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);
  std::vector<std::vector<std::size_t>> out(folds);
  for (std::size_t i = 0; i < n; ++i) {
    out[i % folds].push_back(indices[i]);
  }
  return out;
}

namespace {

bool has_both_classes(const Dataset& d) {
  bool pos = false;
  bool neg = false;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.weight[i] <= 0.0) continue;
    (d.y[i] > 0 ? pos : neg) = true;
  }
  return pos && neg;
}

struct FoldOutcome {
  double accuracy = 0.0;
  bool used = false;  // false: empty test set, degenerate train, no weight
};

/// One held-out fold: train on the complement, score the fold. Pure —
/// deterministic in its inputs, no shared state — so folds and grid points
/// evaluate concurrently without changing any reported number. (SVM
/// training itself has no randomness; the only RNG in CV is the fold
/// shuffle, which happens up front on the caller's seed.)
FoldOutcome run_fold(const Dataset& data, const SvmParams& params,
                     const std::vector<std::size_t>& test_idx,
                     bool weighted_validation) {
  FoldOutcome out;
  if (test_idx.empty()) return out;
  const std::size_t n = data.size();
  std::vector<char> in_test(n, 0);
  for (const std::size_t i : test_idx) in_test[i] = 1;
  std::vector<std::size_t> train_idx;
  train_idx.reserve(n - test_idx.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_test[i]) train_idx.push_back(i);
  }
  const Dataset train = data.subset(train_idx);
  if (!has_both_classes(train)) return out;

  const SvmTrainer trainer(params);
  const SvmModel model = trainer.train(train);
  double correct = 0.0;
  double total = 0.0;
  for (const std::size_t i : test_idx) {
    const double w = weighted_validation ? data.weight[i] : 1.0;
    total += w;
    if (model.predict(data.X[i]) == data.y[i]) correct += w;
  }
  if (total <= 0.0) return out;
  out.accuracy = correct / total;
  out.used = true;
  return out;
}

/// Serial reduction in fold order — the same arithmetic sequence the old
/// sequential loop performed, so the mean is byte-identical regardless of
/// how many threads evaluated the folds.
double reduce_folds(const FoldOutcome* outcomes, std::size_t folds) {
  double acc_sum = 0.0;
  std::size_t used = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    if (!outcomes[f].used) continue;
    acc_sum += outcomes[f].accuracy;
    ++used;
  }
  return used == 0 ? 0.0 : acc_sum / static_cast<double>(used);
}

}  // namespace

double cross_validate(const Dataset& data, const SvmParams& params,
                      std::size_t folds, util::Rng& rng,
                      bool weighted_validation) {
  const std::size_t n = data.size();
  LEAPS_CHECK_MSG(n >= folds, "fewer samples than folds");
  const auto fold_sets = make_folds(n, folds, rng);

  std::vector<FoldOutcome> outcomes(fold_sets.size());
  util::parallel_for(0, fold_sets.size(), 1, [&](std::size_t b,
                                                 std::size_t e) {
    for (std::size_t f = b; f < e; ++f) {
      outcomes[f] = run_fold(data, params, fold_sets[f], weighted_validation);
    }
  });
  return reduce_folds(outcomes.data(), outcomes.size());
}

GridSearchResult tune_svm(const Dataset& data, const SvmParams& base,
                          const CrossValidationOptions& options,
                          util::Rng& rng) {
  LEAPS_CHECK_MSG(!options.lambdas.empty() && !options.sigma2s.empty(),
                  "empty hyper-parameter grid");
  LEAPS_CHECK_MSG(data.size() >= options.folds, "fewer samples than folds");

  // Identical fold split for every grid point: comparisons stay fair. The
  // fork is const on rng, so this matches the historic per-point fork.
  util::Rng fold_rng = rng.fork(0xF01D5);
  const auto fold_sets = make_folds(data.size(), options.folds, fold_rng);

  std::vector<std::pair<double, double>> grid;  // (λ, σ²) in trial order
  grid.reserve(options.lambdas.size() * options.sigma2s.size());
  for (const double lambda : options.lambdas) {
    for (const double sigma2 : options.sigma2s) {
      grid.emplace_back(lambda, sigma2);
    }
  }

  // One task per (grid point × fold): the whole tuning run drains through
  // the pool as a flat list, so wall-clock drops near-linearly in threads
  // even when a single grid point's folds are imbalanced.
  const std::size_t folds = fold_sets.size();
  std::vector<FoldOutcome> outcomes(grid.size() * folds);
  util::parallel_for(
      0, outcomes.size(), 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t task = b; task < e; ++task) {
          SvmParams p = base;
          p.lambda = grid[task / folds].first;
          p.kernel.sigma2 = grid[task / folds].second;
          outcomes[task] = run_fold(data, p, fold_sets[task % folds],
                                    options.weighted_validation);
        }
      });

  GridSearchResult result;
  result.best = base;
  result.best_accuracy = -1.0;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const double acc = reduce_folds(&outcomes[g * folds], folds);
    result.trials.push_back({grid[g].first, grid[g].second, acc});
    if (acc > result.best_accuracy) {
      result.best_accuracy = acc;
      result.best = base;
      result.best.lambda = grid[g].first;
      result.best.kernel.sigma2 = grid[g].second;
    }
  }
  return result;
}

}  // namespace leaps::ml
