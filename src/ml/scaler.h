// Per-dimension min-max scaling to [0, 1].
//
// LIBSVM practice (and a necessity for a shared σ² grid): features are
// integer ids of very different ranges (event types vs. cluster numbers);
// scaling is fit on the training set and applied to the test set.
#pragma once

#include <vector>

#include "ml/dataset.h"

namespace leaps::ml {

class MinMaxScaler {
 public:
  /// Learns per-dimension [min, max] from the rows of X (must be nonempty).
  void fit(const std::vector<FeatureVector>& X);

  FeatureVector transform(const FeatureVector& x) const;
  void transform_in_place(std::vector<FeatureVector>& X) const;
  void transform_in_place(Dataset& data) const;

  bool fitted() const { return !mins_.empty(); }
  std::size_t dims() const { return mins_.size(); }
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& ranges() const { return ranges_; }

  /// Reconstructs a fitted scaler from serialized state.
  static MinMaxScaler from_state(std::vector<double> mins,
                                 std::vector<double> ranges);

 private:
  std::vector<double> mins_;
  std::vector<double> ranges_;  // max - min; 0 collapses the dim to 0
};

}  // namespace leaps::ml
