// Kernel functions for the (W)SVM (Section III-D-2).
//
// The paper uses a Gaussian kernel k(x, z) = exp(-||x - z||² / σ²) with σ²
// as the radius parameter tuned by cross-validation; linear and polynomial
// kernels are provided for ablations.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace leaps::ml {

enum class KernelType : int {
  kGaussian = 0,
  kLinear,
  kPolynomial,
};

std::string_view kernel_type_name(KernelType t);

struct KernelParams {
  KernelType type = KernelType::kGaussian;
  double sigma2 = 1.0;  // Gaussian radius (σ²)
  int degree = 3;       // polynomial degree
  double coef0 = 1.0;   // polynomial offset

  double operator()(const std::vector<double>& a,
                    const std::vector<double>& b) const;
};

/// Full symmetric Gram matrix K[i][j] = k(X[i], X[j]).
std::vector<std::vector<double>> gram_matrix(
    const std::vector<std::vector<double>>& X, const KernelParams& kernel);

}  // namespace leaps::ml
