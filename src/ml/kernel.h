// Kernel functions for the (W)SVM (Section III-D-2).
//
// The paper uses a Gaussian kernel k(x, z) = exp(-||x - z||² / σ²) with σ²
// as the radius parameter tuned by cross-validation; linear and polynomial
// kernels are provided for ablations.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace leaps::ml {

enum class KernelType : int {
  kGaussian = 0,
  kLinear,
  kPolynomial,
};

std::string_view kernel_type_name(KernelType t);

struct KernelParams {
  KernelType type = KernelType::kGaussian;
  double sigma2 = 1.0;  // Gaussian radius (σ²)
  int degree = 3;       // polynomial degree
  double coef0 = 1.0;   // polynomial offset

  double operator()(const std::vector<double>& a,
                    const std::vector<double>& b) const;
};

/// Full symmetric Gram matrix K[i][j] = k(X[i], X[j]).
///
/// Reference implementation: one KernelParams::operator() call per unique
/// pair into a nested vector. The SMO solver uses GramMatrix below; this
/// stays as the behavioral yardstick for tests and bench_train.
std::vector<std::vector<double>> gram_matrix(
    const std::vector<std::vector<double>>& X, const KernelParams& kernel);

/// Flat row-major Gram matrix — the SMO fast path.
///
/// The build copies X into one contiguous n×d block, precomputes per-row
/// squared norms once, and fills rows in parallel (util::parallel_for).
/// For the Gaussian kernel each pair costs a single dot product:
///     K_ij = exp(-(‖xi‖² + ‖xj‖² − 2·xi·xj) / σ²)
/// (clamped at 0 before the exp so cancellation can never push K above 1);
/// linear/polynomial reuse the same dot. Agreement with the direct
/// KernelParams evaluation is a property-test contract (≤ 1e-12), and the
/// result is bit-identical for every thread count: entry values depend only
/// on the inputs, and each entry is written exactly once.
class GramMatrix {
 public:
  GramMatrix() = default;
  /// Builds the full symmetric matrix for the given rows.
  GramMatrix(const std::vector<std::vector<double>>& X,
             const KernelParams& kernel);

  double operator()(std::size_t i, std::size_t j) const {
    return k_[i * n_ + j];
  }
  /// Contiguous row i (n entries) — the SMO gradient sweeps iterate this.
  const double* row(std::size_t i) const { return k_.get() + i * n_; }
  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  // Uninitialized on allocation (every entry is written by the build):
  // value-initializing n² doubles costs a full extra memory pass.
  std::unique_ptr<double[]> k_;
};

}  // namespace leaps::ml
