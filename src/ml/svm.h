// Weighted Support Vector Machine (Section III-D-2, Eqns. 2-5).
//
// Solves the dual problem of Eqn. 4,
//
//     min_α  -Σ αᵢ + ½ Σᵢⱼ αᵢ αⱼ yᵢ yⱼ k(xᵢ, xⱼ)
//     s.t.    0 ≤ αᵢ ≤ λ·cᵢ,   Σ αᵢ yᵢ = 0,
//
// with Sequential Minimal Optimization: LIBSVM-style maximal-violating-pair
// working-set selection, analytic two-variable updates with per-sample box
// bounds Cᵢ = λ·cᵢ, and a precomputed Gram matrix. A sample with cᵢ = 0 is
// pinned at αᵢ = 0 — CFG-certified-benign points in the mixed set simply
// cannot become (negative) support vectors, which is the entire LEAPS
// mechanism. Plain SVM is the cᵢ ≡ 1 special case.
//
// The paper's Eqn. 2 omits the bias; we keep the standard C-SVC bias b
// (LIBSVM, which the authors built on, has it), so the equality constraint
// above applies.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.h"
#include "ml/kernel.h"

namespace leaps::ml {

struct SvmParams {
  KernelParams kernel;
  /// λ in Eqn. 2 (the C of C-SVC).
  double lambda = 10.0;
  /// KKT violation tolerance for convergence.
  double epsilon = 1e-3;
  /// Hard iteration cap; 0 = automatic (max(10⁵, 200·n)).
  std::size_t max_iterations = 0;
};

/// A trained classifier: f(x) = Σ αᵢ yᵢ k(svᵢ, x) + b; benign iff f(x) >= 0
/// (Eqn. 5: x is classified malicious if the prediction is negative).
class SvmModel {
 public:
  SvmModel() = default;
  SvmModel(std::vector<FeatureVector> support_vectors,
           std::vector<double> coefficients, double bias,
           KernelParams kernel);

  double decision_value(const FeatureVector& x) const;
  /// +1 (benign) or -1 (malicious).
  int predict(const FeatureVector& x) const;

  /// One support vector's share of f(x) — the explain unit of the verdict
  /// audit stream (serve/audit.h).
  struct Contribution {
    std::size_t sv_index = 0;    // into support_vectors()
    double coefficient = 0.0;    // αᵢ yᵢ (negative ⇒ pulls malicious)
    double kernel_value = 0.0;   // k(svᵢ, x)
    double contribution = 0.0;   // coefficient · kernel_value
  };
  /// The ≤ top_k support vectors with the largest |contribution| to f(x),
  /// most influential first (ties broken by sv_index for determinism).
  /// Off the hot path: costs one kernel evaluation per support vector.
  std::vector<Contribution> top_contributions(const FeatureVector& x,
                                              std::size_t top_k) const;

  std::size_t support_vector_count() const { return svs_.size(); }
  double bias() const { return bias_; }
  const KernelParams& kernel() const { return kernel_; }
  const std::vector<FeatureVector>& support_vectors() const { return svs_; }
  const std::vector<double>& coefficients() const { return coef_; }

 private:
  std::vector<FeatureVector> svs_;
  std::vector<double> coef_;  // αᵢ yᵢ
  /// ‖svᵢ‖², cached at construction for the Gaussian kernel so per-event
  /// scoring pays one dot product per SV instead of a difference-and-square
  /// pass (empty for other kernel types).
  std::vector<double> sv_sq_norms_;
  double bias_ = 0.0;
  KernelParams kernel_;
};

struct TrainStats {
  std::size_t iterations = 0;
  std::size_t support_vectors = 0;
  bool converged = false;
  double objective = 0.0;  // final dual objective value
  /// Full dual solution, aligned with the training-set row order (not just
  /// the support vectors). Exported so a later retraining run on a grown
  /// dataset can warm-start SMO from this optimum — the continual-learning
  /// path in src/online/ depends on it.
  std::vector<double> alpha;
  /// Number of strictly-positive entries in the warm-start vector after
  /// box clamping (0 on a cold start) — diagnostic for warm-start quality.
  std::size_t warm_nonzero = 0;
};

class SvmTrainer {
 public:
  explicit SvmTrainer(SvmParams params) : params_(params) {}

  /// Trains on `data` (labels ±1, weights in [0,1]). Requires at least one
  /// sample of each class with positive weight. `stats`, when non-null,
  /// receives solver diagnostics.
  ///
  /// `warm_alpha`, when non-null and non-empty, seeds the SMO solver: entry
  /// i initializes αᵢ (missing trailing entries — a dataset that grew since
  /// the alphas were exported — start at 0). The seed is made feasible
  /// before the first iteration: each αᵢ is clamped into [0, λ·cᵢ] and the
  /// equality constraint Σ αᵢ yᵢ = 0 is repaired by shaving the surplus
  /// class, so any exported (or persisted and re-parsed) vector is a legal
  /// starting point. A warm start never changes the optimum the solver
  /// converges to — only how many iterations it takes to get there.
  SvmModel train(const Dataset& data, TrainStats* stats = nullptr,
                 const std::vector<double>* warm_alpha = nullptr) const;

  const SvmParams& params() const { return params_; }

 private:
  SvmParams params_;
};

}  // namespace leaps::ml
