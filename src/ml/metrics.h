// Classification measurements (Section V-B).
//
// Convention from the paper: POSITIVE = benign, NEGATIVE = malicious.
//   TP benign→benign, TN malicious→malicious,
//   FP malicious→benign, FN benign→malicious.
// Derived measures: ACC (Eqn. 6), PPV/precision (7), TPR/recall (8),
// TNR/specificity (9), NPV (10).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace leaps::ml {

struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t tn = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  /// Records one prediction. Labels are +1 (benign) / -1 (malicious).
  void add(int actual, int predicted);
  void merge(const ConfusionMatrix& other);

  std::size_t total() const { return tp + tn + fp + fn; }

  double accuracy() const;  // ACC
  double ppv() const;       // precision
  double tpr() const;       // recall / sensitivity
  double tnr() const;       // specificity
  double npv() const;
};

/// One point of a ROC curve (positive class = benign).
struct RocPoint {
  double fpr = 0.0;  // malicious misclassified as benign
  double tpr = 0.0;  // benign correctly classified
  double threshold = 0.0;
};

/// Area under the ROC curve from decision scores, where *larger scores
/// lean benign* (+1). Equivalent to the Mann-Whitney U statistic; ties
/// contribute half. Returns 0.5 when either class is absent.
double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels);

/// The full ROC polyline, sorted by descending threshold (score). Includes
/// the (0,0) and (1,1) endpoints.
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels);

/// The five Table-I measurements as plain values (for aggregation).
struct Measurements {
  double acc = 0.0;
  double ppv = 0.0;
  double tpr = 0.0;
  double tnr = 0.0;
  double npv = 0.0;

  static Measurements from(const ConfusionMatrix& cm);
  /// "ACC=0.932 PPV=0.999 ..." — for logs and examples.
  std::string to_string() const;
};

}  // namespace leaps::ml
