#include "ml/scaler.h"

#include <algorithm>

#include "util/check.h"

namespace leaps::ml {

void MinMaxScaler::fit(const std::vector<FeatureVector>& X) {
  LEAPS_CHECK_MSG(!X.empty(), "MinMaxScaler::fit on empty data");
  const std::size_t d = X.front().size();
  mins_.assign(d, 0.0);
  ranges_.assign(d, 0.0);
  std::vector<double> maxs(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    mins_[j] = X.front()[j];
    maxs[j] = X.front()[j];
  }
  for (const FeatureVector& x : X) {
    LEAPS_CHECK_MSG(x.size() == d, "inconsistent dimensions in fit");
    for (std::size_t j = 0; j < d; ++j) {
      mins_[j] = std::min(mins_[j], x[j]);
      maxs[j] = std::max(maxs[j], x[j]);
    }
  }
  for (std::size_t j = 0; j < d; ++j) ranges_[j] = maxs[j] - mins_[j];
}

MinMaxScaler MinMaxScaler::from_state(std::vector<double> mins,
                                      std::vector<double> ranges) {
  LEAPS_CHECK_MSG(mins.size() == ranges.size(), "scaler state mismatch");
  MinMaxScaler s;
  s.mins_ = std::move(mins);
  s.ranges_ = std::move(ranges);
  return s;
}

FeatureVector MinMaxScaler::transform(const FeatureVector& x) const {
  LEAPS_CHECK_MSG(fitted(), "MinMaxScaler used before fit");
  LEAPS_CHECK_MSG(x.size() == mins_.size(), "dimension mismatch");
  FeatureVector out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (ranges_[j] == 0.0) {
      out[j] = 0.0;
    } else {
      // Test values outside the training range are clamped so a single
      // outlier cannot blow up the Gaussian kernel's scale.
      out[j] = std::clamp((x[j] - mins_[j]) / ranges_[j], -0.5, 1.5);
    }
  }
  return out;
}

void MinMaxScaler::transform_in_place(std::vector<FeatureVector>& X) const {
  for (FeatureVector& x : X) x = transform(x);
}

void MinMaxScaler::transform_in_place(Dataset& data) const {
  transform_in_place(data.X);
}

}  // namespace leaps::ml
