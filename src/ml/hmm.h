// Discrete hidden Markov model — the paper's Section VI-B future work.
//
// "LEAPS only takes the order of adjacent events into account … we plan to
// explore more machine learning techniques, such as conditional random
// field model and hidden Markov model, to reveal such hidden relationships
// between events." This module provides that exploration:
//
//  * Hmm — a discrete-observation HMM trained with (scaled) Baum-Welch.
//    Training accepts a *weight per sequence*, so the same CFG-derived
//    confidences that drive the Weighted SVM can discount mislabeled
//    mixed-log sequences — a weighted-HMM analogue of Eqn. 2.
//  * HmmClassifier — benign/malicious log-likelihood-ratio classifier: one
//    HMM per class; a sequence is malicious when the malicious model
//    explains it better (per-symbol LLR above a threshold tuned on the
//    training data).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace leaps::ml {

struct HmmParams {
  std::size_t states = 5;
  std::size_t max_iterations = 30;
  /// Stop when the total log-likelihood improves by less than this.
  double tolerance = 1e-3;
  /// Additive smoothing applied to all probability re-estimates.
  double smoothing = 1e-3;
  std::uint64_t seed = 1;
};

/// Observation sequences are vectors of symbol ids in [0, num_symbols).
using Sequence = std::vector<int>;

class Hmm {
 public:
  /// Trains with Baum-Welch. `weights` (same length as `sequences`, values
  /// in [0, 1]) scale each sequence's contribution to the re-estimation;
  /// pass all-ones for classic maximum likelihood. Zero-weight and empty
  /// sequences are ignored. Throws std::invalid_argument when no sequence
  /// has positive weight or a symbol is out of range.
  static Hmm train(const std::vector<Sequence>& sequences,
                   const std::vector<double>& weights,
                   std::size_t num_symbols, const HmmParams& params);

  /// Natural-log likelihood of the sequence (scaled forward algorithm).
  /// Returns -inf for sequences the model gives zero probability
  /// (prevented in practice by smoothing). Empty sequences score 0.
  double log_likelihood(const Sequence& sequence) const;

  std::size_t states() const { return transition_.size(); }
  std::size_t symbols() const { return num_symbols_; }
  const std::vector<double>& initial() const { return initial_; }
  const std::vector<std::vector<double>>& transition() const {
    return transition_;
  }
  const std::vector<std::vector<double>>& emission() const {
    return emission_;
  }
  /// Total training log-likelihood at the final iteration.
  double final_log_likelihood() const { return final_ll_; }
  std::size_t iterations_run() const { return iterations_; }

 private:
  Hmm() = default;

  std::size_t num_symbols_ = 0;
  std::vector<double> initial_;                  // π[s]
  std::vector<std::vector<double>> transition_;  // A[s][s']
  std::vector<std::vector<double>> emission_;    // B[s][symbol]
  double final_ll_ = 0.0;
  std::size_t iterations_ = 0;
};

/// Benign/malicious classifier from two HMMs (Section VI-B model).
class HmmClassifier {
 public:
  struct Options {
    HmmParams hmm;
    /// Threshold search grid granularity for tuning the LLR cut.
    std::size_t threshold_grid = 41;
  };

  HmmClassifier() = default;
  explicit HmmClassifier(Options options) : options_(options) {}

  /// `benign` sequences are positives (weight 1); `mixed` sequences are
  /// negatives whose weights come from the CFG weight assessment (pass
  /// all-ones for the unweighted baseline). The decision threshold is
  /// tuned to maximize confidence-weighted accuracy on the training data.
  void fit(const std::vector<Sequence>& benign,
           const std::vector<Sequence>& mixed,
           const std::vector<double>& mixed_weights,
           std::size_t num_symbols);

  /// Per-symbol log-likelihood ratio (malicious minus benign); greater
  /// means more malicious.
  double score(const Sequence& sequence) const;

  /// +1 benign / -1 malicious.
  int predict(const Sequence& sequence) const;

  bool fitted() const { return fitted_; }
  double threshold() const { return threshold_; }
  const Hmm& benign_model() const;
  const Hmm& malicious_model() const;

 private:
  Options options_;
  bool fitted_ = false;
  double threshold_ = 0.0;
  std::vector<Hmm> models_;  // [0] benign, [1] malicious (filled by fit)
};

}  // namespace leaps::ml
