#include "ml/kernel.h"

#include <cmath>

#include "util/check.h"

namespace leaps::ml {

std::string_view kernel_type_name(KernelType t) {
  switch (t) {
    case KernelType::kGaussian:
      return "gaussian";
    case KernelType::kLinear:
      return "linear";
    case KernelType::kPolynomial:
      return "polynomial";
  }
  return "unknown";
}

double KernelParams::operator()(const std::vector<double>& a,
                                const std::vector<double>& b) const {
  LEAPS_DCHECK(a.size() == b.size());
  switch (type) {
    case KernelType::kGaussian: {
      LEAPS_DCHECK(sigma2 > 0.0);
      double sq = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sq += d * d;
      }
      return std::exp(-sq / sigma2);
    }
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelType::kPolynomial: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return std::pow(dot + coef0, degree);
    }
  }
  return 0.0;
}

std::vector<std::vector<double>> gram_matrix(
    const std::vector<std::vector<double>>& X, const KernelParams& kernel) {
  const std::size_t n = X.size();
  std::vector<std::vector<double>> K(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(X[i], X[j]);
      K[i][j] = v;
      K[j][i] = v;
    }
  }
  return K;
}

}  // namespace leaps::ml
