#include "ml/kernel.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/parallel.h"

namespace leaps::ml {

std::string_view kernel_type_name(KernelType t) {
  switch (t) {
    case KernelType::kGaussian:
      return "gaussian";
    case KernelType::kLinear:
      return "linear";
    case KernelType::kPolynomial:
      return "polynomial";
  }
  return "unknown";
}

double KernelParams::operator()(const std::vector<double>& a,
                                const std::vector<double>& b) const {
  LEAPS_DCHECK(a.size() == b.size());
  switch (type) {
    case KernelType::kGaussian: {
      LEAPS_DCHECK(sigma2 > 0.0);
      double sq = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sq += d * d;
      }
      return std::exp(-sq / sigma2);
    }
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelType::kPolynomial: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return std::pow(dot + coef0, degree);
    }
  }
  return 0.0;
}

std::vector<std::vector<double>> gram_matrix(
    const std::vector<std::vector<double>>& X, const KernelParams& kernel) {
  const std::size_t n = X.size();
  std::vector<std::vector<double>> K(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(X[i], X[j]);
      K[i][j] = v;
      K[j][i] = v;
    }
  }
  return K;
}

namespace {

inline double dot(const double* a, const double* b, std::size_t d) {
  double s = 0.0;
  for (std::size_t k = 0; k < d; ++k) s += a[k] * b[k];
  return s;
}

}  // namespace

GramMatrix::GramMatrix(const std::vector<std::vector<double>>& X,
                       const KernelParams& kernel)
    : n_(X.size()) {
  const std::size_t d = n_ == 0 ? 0 : X.front().size();
  // One contiguous n×d block: the pair loop below reads rows without
  // pointer chasing, and the same dot product serves every kernel type.
  std::vector<double> xs(n_ * d);
  std::vector<double> sq(n_);  // ‖xi‖², Gaussian norm trick
  for (std::size_t i = 0; i < n_; ++i) {
    LEAPS_DCHECK(X[i].size() == d);
    std::copy(X[i].begin(), X[i].end(), xs.begin() + i * d);
    sq[i] = dot(&xs[i * d], &xs[i * d], d);
  }

  k_ = std::make_unique_for_overwrite<double[]>(n_ * n_);
  // Upper triangle first, row-major writes only: pair (i, j>i) is owned by
  // row i's chunk, so every entry has exactly one writer and the result is
  // independent of the thread count. Mirroring inline would store at
  // stride n_ — for power-of-two n_ that lands every write in the same L1
  // set (and shares lines across chunks); the separate tiled pass below
  // keeps both passes cache-friendly.
  util::parallel_for(0, n_, 8, [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      const double* xi = &xs[i * d];
      double* Ki = &k_[i * n_];
      switch (kernel.type) {
        case KernelType::kGaussian: {
          LEAPS_DCHECK(kernel.sigma2 > 0.0);
          Ki[i] = 1.0;
          for (std::size_t j = i + 1; j < n_; ++j) {
            const double s =
                std::max(0.0, sq[i] + sq[j] - 2.0 * dot(xi, &xs[j * d], d));
            Ki[j] = std::exp(-s / kernel.sigma2);
          }
          break;
        }
        case KernelType::kLinear: {
          Ki[i] = sq[i];
          for (std::size_t j = i + 1; j < n_; ++j) {
            Ki[j] = dot(xi, &xs[j * d], d);
          }
          break;
        }
        case KernelType::kPolynomial: {
          Ki[i] = std::pow(sq[i] + kernel.coef0, kernel.degree);
          for (std::size_t j = i + 1; j < n_; ++j) {
            Ki[j] =
                std::pow(dot(xi, &xs[j * d], d) + kernel.coef0, kernel.degree);
          }
          break;
        }
      }
    }
  });

  // Mirror the lower triangle as a tiled transpose: each destination row j
  // writes contiguously, and a 64×64 source tile stays resident while its
  // column slice is consumed. Entries are copied (never recomputed), and
  // each is written by exactly one chunk, so symmetry is exact and the
  // bytes are thread-count-independent.
  constexpr std::size_t kTile = 64;
  util::parallel_for(0, n_, kTile, [&](std::size_t jb, std::size_t je) {
    for (std::size_t ib = 0; ib < je; ib += kTile) {
      const std::size_t ie = std::min(ib + kTile, n_);
      for (std::size_t j = std::max(jb, ib + 1); j < je; ++j) {
        double* Kj = &k_[j * n_];
        const std::size_t end = std::min(ie, j);
        for (std::size_t i = ib; i < end; ++i) Kj[i] = k_[i * n_ + j];
      }
    }
  });
}

}  // namespace leaps::ml
