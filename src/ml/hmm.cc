#include "ml/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace leaps::ml {

namespace {

/// Normalizes a row to a distribution with additive smoothing.
void normalize(std::vector<double>& row, double smoothing) {
  double total = 0.0;
  for (double& v : row) {
    v += smoothing;
    total += v;
  }
  LEAPS_CHECK(total > 0.0);
  for (double& v : row) v /= total;
}

struct ForwardResult {
  // alpha[t][s] scaled so each row sums to 1; scale[t] are the factors.
  std::vector<std::vector<double>> alpha;
  std::vector<double> scale;
  double log_likelihood = 0.0;
};

ForwardResult forward(const Sequence& seq,
                      const std::vector<double>& initial,
                      const std::vector<std::vector<double>>& a,
                      const std::vector<std::vector<double>>& b) {
  const std::size_t n = a.size();
  const std::size_t t_len = seq.size();
  ForwardResult out;
  out.alpha.assign(t_len, std::vector<double>(n, 0.0));
  out.scale.assign(t_len, 0.0);
  for (std::size_t t = 0; t < t_len; ++t) {
    const auto sym = static_cast<std::size_t>(seq[t]);
    double row_sum = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      double v;
      if (t == 0) {
        v = initial[s] * b[s][sym];
      } else {
        double acc = 0.0;
        for (std::size_t p = 0; p < n; ++p) {
          acc += out.alpha[t - 1][p] * a[p][s];
        }
        v = acc * b[s][sym];
      }
      out.alpha[t][s] = v;
      row_sum += v;
    }
    if (row_sum <= 0.0) {
      out.log_likelihood = -std::numeric_limits<double>::infinity();
      return out;
    }
    out.scale[t] = row_sum;
    for (std::size_t s = 0; s < n; ++s) out.alpha[t][s] /= row_sum;
    out.log_likelihood += std::log(row_sum);
  }
  return out;
}

/// beta[t][s], scaled with the forward pass's factors.
std::vector<std::vector<double>> backward(
    const Sequence& seq, const std::vector<std::vector<double>>& a,
    const std::vector<std::vector<double>>& b,
    const std::vector<double>& scale) {
  const std::size_t n = a.size();
  const std::size_t t_len = seq.size();
  std::vector<std::vector<double>> beta(t_len, std::vector<double>(n, 0.0));
  for (std::size_t s = 0; s < n; ++s) beta[t_len - 1][s] = 1.0;
  for (std::size_t t = t_len - 1; t > 0; --t) {
    const auto sym = static_cast<std::size_t>(seq[t]);
    for (std::size_t s = 0; s < n; ++s) {
      double acc = 0.0;
      for (std::size_t q = 0; q < n; ++q) {
        acc += a[s][q] * b[q][sym] * beta[t][q];
      }
      beta[t - 1][s] = acc / scale[t];
    }
  }
  return beta;
}

}  // namespace

Hmm Hmm::train(const std::vector<Sequence>& sequences,
               const std::vector<double>& weights, std::size_t num_symbols,
               const HmmParams& params) {
  if (sequences.size() != weights.size()) {
    throw std::invalid_argument("Hmm::train: sequences/weights mismatch");
  }
  if (num_symbols == 0 || params.states == 0) {
    throw std::invalid_argument("Hmm::train: empty model");
  }
  double weight_total = 0.0;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    for (const int sym : sequences[i]) {
      if (sym < 0 || static_cast<std::size_t>(sym) >= num_symbols) {
        throw std::invalid_argument("Hmm::train: symbol out of range");
      }
    }
    if (weights[i] < 0.0) {
      throw std::invalid_argument("Hmm::train: negative weight");
    }
    if (!sequences[i].empty()) weight_total += weights[i];
  }
  if (weight_total <= 0.0) {
    throw std::invalid_argument("Hmm::train: no positively weighted data");
  }

  const std::size_t n = params.states;
  Hmm model;
  model.num_symbols_ = num_symbols;

  // Random (seeded) initialization, rows normalized.
  util::Rng rng(params.seed);
  model.initial_.assign(n, 0.0);
  model.transition_.assign(n, std::vector<double>(n, 0.0));
  model.emission_.assign(n, std::vector<double>(num_symbols, 0.0));
  for (double& v : model.initial_) v = 0.5 + rng.next_double();
  normalize(model.initial_, 0.0);
  for (auto& row : model.transition_) {
    for (double& v : row) v = 0.5 + rng.next_double();
    normalize(row, 0.0);
  }
  for (auto& row : model.emission_) {
    for (double& v : row) v = 0.5 + rng.next_double();
    normalize(row, 0.0);
  }

  double prev_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    model.iterations_ = iter + 1;
    // Expected-count accumulators.
    std::vector<double> pi_acc(n, 0.0);
    std::vector<std::vector<double>> a_acc(n, std::vector<double>(n, 0.0));
    std::vector<std::vector<double>> b_acc(
        n, std::vector<double>(num_symbols, 0.0));
    double total_ll = 0.0;

    for (std::size_t i = 0; i < sequences.size(); ++i) {
      const Sequence& seq = sequences[i];
      const double w = weights[i];
      if (seq.empty() || w <= 0.0) continue;
      const ForwardResult fwd =
          forward(seq, model.initial_, model.transition_, model.emission_);
      if (!std::isfinite(fwd.log_likelihood)) continue;
      total_ll += w * fwd.log_likelihood;
      const auto beta =
          backward(seq, model.transition_, model.emission_, fwd.scale);
      const std::size_t t_len = seq.size();

      // gamma[t][s] ∝ alpha[t][s] * beta[t][s] (already correctly scaled).
      for (std::size_t t = 0; t < t_len; ++t) {
        const auto sym = static_cast<std::size_t>(seq[t]);
        double norm = 0.0;
        for (std::size_t s = 0; s < n; ++s) {
          norm += fwd.alpha[t][s] * beta[t][s];
        }
        if (norm <= 0.0) continue;
        for (std::size_t s = 0; s < n; ++s) {
          const double g = fwd.alpha[t][s] * beta[t][s] / norm;
          if (t == 0) pi_acc[s] += w * g;
          b_acc[s][sym] += w * g;
        }
      }
      // xi[t][s][q] for transitions.
      for (std::size_t t = 0; t + 1 < t_len; ++t) {
        const auto sym1 = static_cast<std::size_t>(seq[t + 1]);
        double norm = 0.0;
        for (std::size_t s = 0; s < n; ++s) {
          for (std::size_t q = 0; q < n; ++q) {
            norm += fwd.alpha[t][s] * model.transition_[s][q] *
                    model.emission_[q][sym1] * beta[t + 1][q];
          }
        }
        if (norm <= 0.0) continue;
        for (std::size_t s = 0; s < n; ++s) {
          for (std::size_t q = 0; q < n; ++q) {
            const double xi = fwd.alpha[t][s] * model.transition_[s][q] *
                              model.emission_[q][sym1] * beta[t + 1][q] /
                              norm;
            a_acc[s][q] += w * xi;
          }
        }
      }
    }

    // Re-estimate (with smoothing to keep everything strictly positive).
    normalize(pi_acc, params.smoothing);
    model.initial_ = pi_acc;
    for (std::size_t s = 0; s < n; ++s) {
      normalize(a_acc[s], params.smoothing);
      model.transition_[s] = a_acc[s];
      normalize(b_acc[s], params.smoothing);
      model.emission_[s] = b_acc[s];
    }

    model.final_ll_ = total_ll;
    if (std::abs(total_ll - prev_ll) < params.tolerance) break;
    prev_ll = total_ll;
  }
  return model;
}

double Hmm::log_likelihood(const Sequence& sequence) const {
  if (sequence.empty()) return 0.0;
  for (const int sym : sequence) {
    LEAPS_CHECK_MSG(sym >= 0 &&
                        static_cast<std::size_t>(sym) < num_symbols_,
                    "symbol out of range");
  }
  return forward(sequence, initial_, transition_, emission_).log_likelihood;
}

void HmmClassifier::fit(const std::vector<Sequence>& benign,
                        const std::vector<Sequence>& mixed,
                        const std::vector<double>& mixed_weights,
                        std::size_t num_symbols) {
  LEAPS_CHECK_MSG(mixed.size() == mixed_weights.size(),
                  "mixed weights mismatch");
  const std::vector<double> ones(benign.size(), 1.0);
  HmmParams benign_params = options_.hmm;
  HmmParams mixed_params = options_.hmm;
  mixed_params.seed = options_.hmm.seed + 1;
  models_.clear();
  models_.push_back(Hmm::train(benign, ones, num_symbols, benign_params));
  models_.push_back(
      Hmm::train(mixed, mixed_weights, num_symbols, mixed_params));
  fitted_ = true;

  // Tune the LLR threshold on the training data, weighting mixed sequences
  // by their confidence (mislabeled sequences should not drag the cut).
  std::vector<std::pair<double, double>> scored;  // (llr, signed weight)
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const Sequence& s : benign) {
    const double v = score(s);
    scored.emplace_back(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const double v = score(mixed[i]);
    scored.emplace_back(v, -mixed_weights[i]);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!std::isfinite(lo) || !std::isfinite(hi) || lo >= hi) {
    threshold_ = 0.0;
    return;
  }
  double best_threshold = 0.0;
  double best_score = -1.0;
  const std::size_t grid = std::max<std::size_t>(options_.threshold_grid, 3);
  for (std::size_t k = 0; k < grid; ++k) {
    const double th =
        lo + (hi - lo) * static_cast<double>(k) / static_cast<double>(grid - 1);
    double correct = 0.0;
    double total = 0.0;
    for (const auto& [v, w] : scored) {
      const double weight = std::abs(w);
      if (weight <= 0.0) continue;
      total += weight;
      const bool predicted_benign = v <= th;
      const bool is_benign = w > 0.0;
      if (predicted_benign == is_benign) correct += weight;
    }
    const double acc = total > 0.0 ? correct / total : 0.0;
    if (acc > best_score) {
      best_score = acc;
      best_threshold = th;
    }
  }
  threshold_ = best_threshold;
}

double HmmClassifier::score(const Sequence& sequence) const {
  LEAPS_CHECK_MSG(fitted_, "HmmClassifier used before fit()");
  if (sequence.empty()) return 0.0;
  const double per_symbol = 1.0 / static_cast<double>(sequence.size());
  return (models_[1].log_likelihood(sequence) -
          models_[0].log_likelihood(sequence)) *
         per_symbol;
}

int HmmClassifier::predict(const Sequence& sequence) const {
  return score(sequence) <= threshold_ ? 1 : -1;
}

const Hmm& HmmClassifier::benign_model() const {
  LEAPS_CHECK_MSG(fitted_, "HmmClassifier used before fit()");
  return models_[0];
}

const Hmm& HmmClassifier::malicious_model() const {
  LEAPS_CHECK_MSG(fitted_, "HmmClassifier used before fit()");
  return models_[1];
}

}  // namespace leaps::ml
