#include "ml/logreg.h"

#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace leaps::ml {

namespace {

double sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Solves A x = rhs for symmetric positive-definite A via Cholesky
/// (in-place on copies); dimension is tiny (≈31), so O(d³) is free.
std::vector<double> cholesky_solve(std::vector<std::vector<double>> a,
                                   std::vector<double> rhs) {
  const std::size_t d = a.size();
  // Decompose A = L Lᵀ.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i][k] * a[j][k];
      if (i == j) {
        LEAPS_CHECK_MSG(sum > 0.0, "matrix not positive definite");
        a[i][i] = std::sqrt(sum);
      } else {
        a[i][j] = sum / a[j][j];
      }
    }
  }
  // Forward substitution L y = rhs.
  for (std::size_t i = 0; i < d; ++i) {
    double sum = rhs[i];
    for (std::size_t k = 0; k < i; ++k) sum -= a[i][k] * rhs[k];
    rhs[i] = sum / a[i][i];
  }
  // Back substitution Lᵀ x = y.
  for (std::size_t i = d; i-- > 0;) {
    double sum = rhs[i];
    for (std::size_t k = i + 1; k < d; ++k) sum -= a[k][i] * rhs[k];
    rhs[i] = sum / a[i][i];
  }
  return rhs;
}

}  // namespace

LogRegModel::LogRegModel(std::vector<double> weights, double bias)
    : weights_(std::move(weights)), bias_(bias) {}

double LogRegModel::decision_value(const FeatureVector& x) const {
  LEAPS_CHECK_MSG(x.size() == weights_.size(), "dimension mismatch");
  double z = bias_;
  for (std::size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return z;
}

int LogRegModel::predict(const FeatureVector& x) const {
  return decision_value(x) >= 0.0 ? 1 : -1;
}

double LogRegModel::probability(const FeatureVector& x) const {
  return sigmoid(decision_value(x));
}

LogRegModel LogRegTrainer::train(const Dataset& data,
                                 LogRegStats* stats) const {
  data.validate();
  const std::size_t n = data.size();
  LEAPS_CHECK_MSG(n >= 2, "logistic regression needs at least two samples");
  bool has_pos = false;
  bool has_neg = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (data.weight[i] > 0.0) (data.y[i] > 0 ? has_pos : has_neg) = true;
  }
  if (!has_pos || !has_neg) {
    throw std::invalid_argument(
        "LogRegTrainer: need positively-weighted samples of both classes");
  }

  const std::size_t d = data.dims();
  const std::size_t dim = d + 1;  // + bias, regularization excludes it
  std::vector<double> theta(dim, 0.0);

  const auto margin = [&](std::size_t i) {
    double z = theta[d];
    for (std::size_t j = 0; j < d; ++j) z += theta[j] * data.X[i][j];
    return z;
  };

  bool converged = false;
  std::size_t iter = 0;
  for (; iter < params_.max_iterations; ++iter) {
    // Gradient and Hessian of the weighted negative log-likelihood.
    std::vector<double> grad(dim, 0.0);
    std::vector<std::vector<double>> hess(dim, std::vector<double>(dim, 0.0));
    for (std::size_t j = 0; j < d; ++j) {
      grad[j] += params_.l2 * theta[j];
      hess[j][j] += params_.l2;
    }
    hess[d][d] += 1e-9;  // keep the bias row PD even in degenerate cases
    for (std::size_t i = 0; i < n; ++i) {
      const double c = data.weight[i];
      if (c <= 0.0) continue;
      const double y = static_cast<double>(data.y[i]);
      const double p = sigmoid(y * margin(i));   // P(correct)
      const double g = -c * y * (1.0 - p);       // dLoss/dz
      const double h = c * p * (1.0 - p);        // d²Loss/dz²
      for (std::size_t j = 0; j < d; ++j) {
        grad[j] += g * data.X[i][j];
        for (std::size_t k = 0; k <= j; ++k) {
          hess[j][k] += h * data.X[i][j] * data.X[i][k];
        }
        hess[j][d] += h * data.X[i][j];
      }
      grad[d] += g;
      hess[d][d] += h;
    }
    // Mirror the lower triangle.
    for (std::size_t j = 0; j < dim; ++j) {
      for (std::size_t k = j + 1; k < dim; ++k) hess[j][k] = hess[k][j];
    }

    const std::vector<double> step = cholesky_solve(hess, grad);
    double max_step = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      theta[j] -= step[j];
      max_step = std::max(max_step, std::abs(step[j]));
    }
    if (max_step < params_.tolerance) {
      converged = true;
      ++iter;
      break;
    }
  }

  if (stats != nullptr) {
    stats->iterations = iter;
    stats->converged = converged;
    double loss = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      loss += 0.5 * params_.l2 * theta[j] * theta[j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (data.weight[i] <= 0.0) continue;
      const double z = static_cast<double>(data.y[i]) * margin(i);
      // log(1 + exp(-z)) computed stably.
      loss += data.weight[i] *
              (z > 0 ? std::log1p(std::exp(-z)) : -z + std::log1p(std::exp(z)));
    }
    stats->final_loss = loss;
  }
  std::vector<double> w(theta.begin(), theta.begin() + static_cast<long>(d));
  return LogRegModel(std::move(w), theta[d]);
}

}  // namespace leaps::ml
