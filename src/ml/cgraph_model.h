// Decision model based on the system-level call graph (Section III-D-1) —
// the paper's non-learning baseline ("CGraph" in Figures 6 & 7).
//
// Training builds the benign call graph (BCG) from the benign log and the
// mixed call graph (MCG) from the mixed log. A test point (a window of
// events) is scored by edge membership: an edge present only in the BCG
// votes benign, one present only in the MCG votes malicious; edges in both
// or in neither are uninformative — exactly the weakness the paper
// documents. A zero score is "undecidable"; the model resolves it with a
// deterministic hash-parity coin flip (no ground-truth peeking), so
// undecidable events hurt both hit rates, as observed in the paper.
#pragma once

#include <cstdint>
#include <span>

#include "cfg/call_graph.h"
#include "trace/partition.h"

namespace leaps::ml {

class CallGraphModel {
 public:
  void train(const trace::PartitionedLog& benign_log,
             const trace::PartitionedLog& mixed_log);

  /// +1 benign / -1 malicious for one event.
  int predict_event(const trace::PartitionedEvent& event) const;

  /// +1 / -1 for a window of events (a coalesced test point): the votes of
  /// all edges in the window are pooled before the tie-break.
  int predict_window(
      std::span<const trace::PartitionedEvent* const> events) const;

  /// Signed vote balance: (#edges only in BCG) - (#edges only in MCG).
  long score_window(
      std::span<const trace::PartitionedEvent* const> events) const;

  const cfg::SystemCallGraph& bcg() const { return bcg_; }
  const cfg::SystemCallGraph& mcg() const { return mcg_; }
  bool trained() const { return trained_; }

 private:
  int tie_break(std::uint64_t key) const;

  cfg::SystemCallGraph bcg_;
  cfg::SystemCallGraph mcg_;
  bool trained_ = false;
};

}  // namespace leaps::ml
