#include "ml/dtree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/check.h"

namespace leaps::ml {

namespace {

double gini(double pos, double neg) {
  const double total = pos + neg;
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

struct SplitChoice {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

/// Shared recursive CART builder; `rng` + feature_fraction < 1 turns on
/// per-split feature subsampling (random-forest mode).
class Builder {
 public:
  Builder(const Dataset& data, const DTreeParams& params,
          std::vector<double> weights, util::Rng* rng,
          double feature_fraction)
      : data_(data),
        params_(params),
        weights_(std::move(weights)),
        rng_(rng),
        feature_fraction_(feature_fraction) {}

  std::int32_t build(std::vector<std::size_t>& idx, std::size_t depth,
                     std::vector<DecisionTreeModel::Node>& nodes) {
    double pos = 0.0;
    double neg = 0.0;
    for (const std::size_t i : idx) {
      (data_.y[i] > 0 ? pos : neg) += weights_[i];
    }
    const auto node_id = static_cast<std::int32_t>(nodes.size());
    nodes.push_back({});
    nodes[static_cast<std::size_t>(node_id)].leaf_score =
        pos + neg > 0.0 ? (pos - neg) / (pos + neg) : 0.0;

    if (depth >= params_.max_depth || pos == 0.0 || neg == 0.0 ||
        idx.size() < 2) {
      return node_id;
    }
    const SplitChoice split = best_split(idx, pos, neg);
    if (split.feature < 0 || split.gain < params_.min_gain) return node_id;

    std::vector<std::size_t> left;
    std::vector<std::size_t> right;
    for (const std::size_t i : idx) {
      (data_.X[i][static_cast<std::size_t>(split.feature)] <=
               split.threshold
           ? left
           : right)
          .push_back(i);
    }
    if (left.empty() || right.empty()) return node_id;
    idx.clear();
    idx.shrink_to_fit();

    const std::int32_t l = build(left, depth + 1, nodes);
    const std::int32_t r = build(right, depth + 1, nodes);
    auto& node = nodes[static_cast<std::size_t>(node_id)];
    node.feature = split.feature;
    node.threshold = split.threshold;
    node.left = l;
    node.right = r;
    return node_id;
  }

 private:
  SplitChoice best_split(const std::vector<std::size_t>& idx, double pos,
                         double neg) {
    const std::size_t dims = data_.dims();
    std::vector<std::size_t> features(dims);
    std::iota(features.begin(), features.end(), 0);
    if (rng_ != nullptr && feature_fraction_ < 1.0) {
      rng_->shuffle(features);
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(feature_fraction_ *
                                      static_cast<double>(dims)));
      features.resize(keep);
    }
    const double parent = gini(pos, neg);

    SplitChoice best;
    std::vector<std::pair<double, std::size_t>> column(idx.size());
    for (const std::size_t f : features) {
      for (std::size_t k = 0; k < idx.size(); ++k) {
        column[k] = {data_.X[idx[k]][f], idx[k]};
      }
      std::sort(column.begin(), column.end());
      double lp = 0.0;
      double ln = 0.0;
      for (std::size_t k = 0; k + 1 < column.size(); ++k) {
        const std::size_t i = column[k].second;
        (data_.y[i] > 0 ? lp : ln) += weights_[i];
        if (column[k].first == column[k + 1].first) continue;
        const double lw = lp + ln;
        const double rw = (pos + neg) - lw;
        if (lw < params_.min_leaf_weight || rw < params_.min_leaf_weight) {
          continue;
        }
        const double child =
            (lw * gini(lp, ln) + rw * gini(pos - lp, neg - ln)) /
            (pos + neg);
        const double gain = parent - child;
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = static_cast<int>(f);
          best.threshold = (column[k].first + column[k + 1].first) / 2.0;
        }
      }
    }
    return best;
  }

  const Dataset& data_;
  const DTreeParams& params_;
  std::vector<double> weights_;  // may differ from data.weight (bootstrap)
  util::Rng* rng_;
  double feature_fraction_;
};

void validate_trainable(const Dataset& data) {
  data.validate();
  LEAPS_CHECK_MSG(data.size() >= 2, "tree needs at least two samples");
  bool pos = false;
  bool neg = false;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.weight[i] > 0.0) (data.y[i] > 0 ? pos : neg) = true;
  }
  if (!pos || !neg) {
    throw std::invalid_argument(
        "DecisionTreeTrainer: need positively-weighted samples of both "
        "classes");
  }
}

}  // namespace

int DecisionTreeModel::predict(const FeatureVector& x) const {
  return score(x) >= 0.0 ? 1 : -1;
}

double DecisionTreeModel::score(const FeatureVector& x) const {
  LEAPS_CHECK_MSG(!nodes_.empty(), "DecisionTreeModel used before train()");
  std::size_t node = 0;
  while (nodes_[node].left >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    LEAPS_CHECK_MSG(f < x.size(), "dimension mismatch");
    node = static_cast<std::size_t>(x[f] <= nodes_[node].threshold
                                        ? nodes_[node].left
                                        : nodes_[node].right);
  }
  return nodes_[node].leaf_score;
}

std::size_t DecisionTreeModel::depth() const {
  // Iterative depth computation over the implicit tree.
  std::size_t max_depth = 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack = {{0, 1}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    if (nodes_[node].left >= 0) {
      stack.push_back({static_cast<std::size_t>(nodes_[node].left),
                       depth + 1});
      stack.push_back({static_cast<std::size_t>(nodes_[node].right),
                       depth + 1});
    }
  }
  return max_depth;
}

DecisionTreeModel DecisionTreeTrainer::train(const Dataset& data) const {
  validate_trainable(data);
  DecisionTreeModel model;
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.weight[i] > 0.0) idx.push_back(i);
  }
  Builder builder(data, params_, data.weight, nullptr, 1.0);
  builder.build(idx, 0, model.nodes_);
  return model;
}

int RandomForestModel::predict(const FeatureVector& x) const {
  return score(x) >= 0.0 ? 1 : -1;
}

double RandomForestModel::score(const FeatureVector& x) const {
  LEAPS_CHECK_MSG(!trees_.empty(), "RandomForestModel used before train()");
  double sum = 0.0;
  for (const DecisionTreeModel& t : trees_) sum += t.score(x);
  return sum / static_cast<double>(trees_.size());
}

RandomForestModel RandomForestTrainer::train(const Dataset& data) const {
  validate_trainable(data);
  LEAPS_CHECK_MSG(params_.trees >= 1, "forest needs at least one tree");
  RandomForestModel model;
  util::Rng rng(params_.seed);
  const auto sample_size = std::max<std::size_t>(
      2, static_cast<std::size_t>(params_.sample_fraction *
                                  static_cast<double>(data.size())));
  for (std::size_t t = 0; t < params_.trees; ++t) {
    // Weighted bootstrap: draw with probability proportional to cᵢ, then
    // train the tree with unit weights on the draw (bagging).
    std::vector<std::size_t> idx;
    std::vector<double> draw_weights = data.weight;
    std::vector<double> tree_weights(data.size(), 0.0);
    util::Rng tree_rng = rng.fork(t + 1);
    for (std::size_t k = 0; k < sample_size; ++k) {
      const std::size_t i = tree_rng.sample_weighted(draw_weights);
      tree_weights[i] += 1.0;
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (tree_weights[i] > 0.0) idx.push_back(i);
    }
    // Degenerate draws (one class) are skipped; the forest keeps going.
    bool pos = false;
    bool neg = false;
    for (const std::size_t i : idx) (data.y[i] > 0 ? pos : neg) = true;
    if (!pos || !neg) continue;

    DecisionTreeModel tree;
    Builder builder(data, params_.tree, tree_weights, &tree_rng,
                    params_.feature_fraction);
    builder.build(idx, 0, tree.nodes_);
    model.trees_.push_back(std::move(tree));
  }
  LEAPS_CHECK_MSG(!model.trees_.empty(), "all bootstrap draws degenerate");
  return model;
}

}  // namespace leaps::ml
