// k-fold cross-validation grid search for the SVM hyper-parameters
// (Section IV: "we use 10-fold cross validation to tune the model parameter
// λ and σ² on the training set").
//
// Fold × grid-point evaluations run in parallel on the shared pool
// (util/parallel.h): the fold split is drawn up front from the caller's
// seed, each task is a pure function of (data, params, fold), and the
// per-point reduction happens serially in fold order — so every accuracy,
// trial row, and the winning (λ, σ²) are byte-identical for --threads 1
// and --threads N.
#pragma once

#include <vector>

#include "ml/dataset.h"
#include "ml/svm.h"
#include "util/rng.h"

namespace leaps::ml {

struct GridPoint {
  double lambda = 0.0;
  double sigma2 = 0.0;
  double accuracy = 0.0;  // mean held-out accuracy across folds
};

struct GridSearchResult {
  SvmParams best;
  double best_accuracy = 0.0;
  std::vector<GridPoint> trials;
};

struct CrossValidationOptions {
  std::vector<double> lambdas = {1.0, 10.0, 100.0};
  std::vector<double> sigma2s = {2.0, 8.0, 32.0};
  std::size_t folds = 10;
  /// Score held-out folds by weight-weighted accuracy (Σ cᵢ·[correct]/Σ cᵢ)
  /// instead of plain accuracy. Plain accuracy *rewards* classifying the
  /// mislabeled (benign-looking, low-cᵢ) mixed windows as malicious, which
  /// systematically selects over-aggressive hyper-parameters for the WSVM;
  /// weighting the validation score by the same confidences the training
  /// objective uses removes that bias. Has no effect when all weights are 1
  /// (the plain-SVM case).
  bool weighted_validation = false;
};

/// Stratified-ish k-fold (folds are random after a shuffle): returns
/// `folds` disjoint index sets covering [0, n).
std::vector<std::vector<std::size_t>> make_folds(std::size_t n,
                                                 std::size_t folds,
                                                 util::Rng& rng);

/// Mean held-out accuracy of `params` under k-fold CV. Folds whose training
/// split degenerates (one class absent) are skipped. With
/// `weighted_validation`, held-out accuracy is confidence-weighted.
double cross_validate(const Dataset& data, const SvmParams& params,
                      std::size_t folds, util::Rng& rng,
                      bool weighted_validation = false);

/// Full grid search; `base` supplies everything except λ and σ².
GridSearchResult tune_svm(const Dataset& data, const SvmParams& base,
                          const CrossValidationOptions& options,
                          util::Rng& rng);

}  // namespace leaps::ml
