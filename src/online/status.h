// Live status surface: one JSON snapshot of everything an operator needs
// to judge a running deployment's model health at a glance.
//
// render_status_json() folds the serving metrics (sessions, queue depths,
// shed/quarantine state, verdict mix, decision-value quantiles), the
// online-learning report, the drift monitor, and the audit stream's
// written/dropped counters into a single JSON object;
// write_status_json() lands it with util::atomic_write_file so a reader
// (`leaps-top`, a scrape sidecar, `python -m json.tool` in CI) always
// sees a complete document, never a torn one.
//
// This lives in online/ (not serve/) because the interesting half of the
// surface — drift state, retrain phase, per-generation verdict mixes —
// comes from OnlineManager, which serve/ sits below.
#pragma once

#include <cstdint>
#include <string>

#include "attrib/matcher.h"
#include "online/manager.h"
#include "serve/audit.h"
#include "serve/server.h"
#include "util/status.h"

namespace leaps::online {

struct StatusInputs {
  /// Required: sessions + server metrics.
  const serve::DetectionServer* server = nullptr;
  /// Optional: online/drift report (null → "online": null).
  const OnlineManager* manager = nullptr;
  /// Optional: audit stream counters (null → "audit": null).
  const serve::AuditLog* audit = nullptr;
  /// Optional: campaign attribution (null → "attribution": null). Each
  /// ranked claim renders as an object tagged "AttributionVerdict".
  const attrib::FleetAttributor* attrib = nullptr;
};

/// The full status document (one JSON object, no trailing newline).
std::string render_status_json(const StatusInputs& inputs);

/// Atomically replaces `path` with the current status document.
util::Status write_status_json(const std::string& path,
                               const StatusInputs& inputs);

}  // namespace leaps::online
