#include "online/verdict_diff.h"

#include <algorithm>

namespace leaps::online {

SequenceDiff diff_sequences(const std::vector<int>& a,
                            const std::vector<int>& b) {
  SequenceDiff d;
  d.compared = std::min(a.size(), b.size());
  d.length_delta = a.size() > b.size() ? a.size() - b.size()
                                       : b.size() - a.size();
  for (std::size_t i = 0; i < d.compared; ++i) {
    if (a[i] != b[i]) {
      ++d.disagreements;
      d.mismatch_indices.push_back(i);
    }
  }
  return d;
}

}  // namespace leaps::online
