#include "online/status.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.h"
#include "util/check.h"

namespace leaps::online {

namespace {

/// %.9g, with the non-finite values JSON cannot carry clamped to 0 (they
/// cannot occur here — decision values and p-values are finite — but a
/// status file that fails `python -m json.tool` would be worse than a
/// clamped corner value).
void append_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void append_summary(std::ostream& os, const obs::Summary::Snapshot& s) {
  os << "{\"count\":" << s.count << ",\"sum\":";
  append_double(os, s.sum);
  os << ",\"min\":";
  append_double(os, s.min);
  os << ",\"max\":";
  append_double(os, s.max);
  os << ",\"q50\":";
  append_double(os, s.q50);
  os << ",\"q90\":";
  append_double(os, s.q90);
  os << ",\"q99\":";
  append_double(os, s.q99);
  os << "}";
}

}  // namespace

std::string render_status_json(const StatusInputs& inputs) {
  LEAPS_CHECK_MSG(inputs.server != nullptr, "status needs a server");
  const serve::MetricsSnapshot m = inputs.server->metrics().snapshot();
  std::ostringstream os;
  os << "{\"sessions\":{\"active\":" << inputs.server->sessions().active()
     << ",\"opened\":" << m.sessions_opened
     << ",\"closed\":" << m.sessions_closed
     << ",\"quarantined\":" << m.sessions_quarantined
     << ",\"evicted\":" << m.sessions_evicted << "}";
  os << ",\"events\":{\"ingested\":" << m.events_ingested
     << ",\"processed\":" << m.events_processed
     << ",\"dropped\":" << m.events_dropped
     << ",\"rejected\":" << m.events_rejected
     << ",\"quarantined\":" << m.events_quarantined
     << ",\"shed\":" << m.events_shed << "}";
  os << ",\"windows\":{\"scored\":" << m.windows_scored
     << ",\"benign\":" << m.verdicts_benign
     << ",\"malicious\":" << m.verdicts_malicious << "}";
  os << ",\"queues\":{\"high_water\":" << m.queue_high_water
     << ",\"batches\":" << m.batches_drained
     << ",\"shed_activations\":" << m.shed_activations
     << ",\"wait_p99_us\":" << m.queue_wait.quantile_us(0.99) << "}";
  os << ",\"decision_value\":";
  append_summary(os, m.decision_values);

  if (inputs.manager != nullptr) {
    const OnlineReport r = inputs.manager->report();
    os << ",\"online\":{\"phase\":\"" << r.phase << "\""
       << ",\"retrain_cycles\":" << r.retrain_cycles
       << ",\"retrain_failures\":" << r.retrain_failures
       << ",\"promotions\":" << r.promotions
       << ",\"rollbacks\":" << r.rollbacks
       << ",\"drift_retrains\":" << r.drift_retrains
       << ",\"windows_observed\":" << r.accumulator.windows_observed
       << ",\"windows_admitted\":" << r.accumulator.windows_admitted
       << ",\"windows_rejected\":" << r.accumulator.windows_rejected << "}";
    const DriftStatus& d = r.drift;
    os << ",\"drift\":{\"enabled\":" << (d.enabled ? "true" : "false")
       << ",\"generation\":" << d.generation
       << ",\"observed\":" << d.observed
       << ",\"reference_size\":" << d.reference_size
       << ",\"reference_frozen\":" << (d.reference_frozen ? "true" : "false")
       << ",\"live_size\":" << d.live_size << ",\"ks\":";
    append_double(os, d.ks_statistic);
    os << ",\"p_value\":";
    append_double(os, d.p_value);
    os << ",\"evaluations\":" << d.evaluations
       << ",\"triggers\":" << d.triggers << ",\"trigger_pending\":"
       << (d.trigger_pending ? "true" : "false")
       << ",\"last_trigger_lsn\":" << r.last_drift_trigger_lsn
       << ",\"sketch\":";
    append_summary(os, d.sketch);
    os << ",\"generations\":[";
    for (std::size_t g = 0; g < d.generations.size(); ++g) {
      if (g > 0) os << ",";
      os << "{\"generation\":" << g
         << ",\"benign\":" << d.generations[g].benign
         << ",\"malicious\":" << d.generations[g].malicious << "}";
    }
    os << "]}";
  } else {
    os << ",\"online\":null,\"drift\":null";
  }

  if (inputs.audit != nullptr) {
    os << ",\"audit\":{\"written\":" << inputs.audit->written()
       << ",\"dropped\":" << inputs.audit->dropped() << "}";
  } else {
    os << ",\"audit\":null";
  }

  if (inputs.attrib != nullptr) {
    const auto sessions = inputs.attrib->snapshot();
    os << ",\"attribution\":{\"sessions\":" << sessions.size()
       << ",\"flagged_windows\":" << inputs.attrib->flagged_total()
       << ",\"verdicts\":[";
    bool first = true;
    for (const auto& s : sessions) {
      for (const attrib::AttributionVerdict& v : s.verdicts) {
        if (!first) os << ",";
        first = false;
        os << "{\"type\":\"AttributionVerdict\",\"session\":\""
           << s.key.to_string() << "\",\"signature\":\"" << v.signature
           << "\",\"score\":";
        append_double(os, v.score);
        os << ",\"nodes_matched\":" << v.nodes_matched
           << ",\"nodes_total\":" << v.nodes_total
           << ",\"edges_satisfied\":" << v.edges_satisfied
           << ",\"edges_total\":" << v.edges_total
           << ",\"first_window\":" << v.first_window
           << ",\"last_window\":" << v.last_window << "}";
      }
    }
    os << "]}";
  } else {
    os << ",\"attribution\":null";
  }
  os << "}";
  return os.str();
}

util::Status write_status_json(const std::string& path,
                               const StatusInputs& inputs) {
  const std::string body = render_status_json(inputs);
  return util::atomic_write_file(path, [&body](std::ostream& os) {
    os << body << '\n';
  });
}

}  // namespace leaps::online
