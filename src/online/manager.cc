#include "online/manager.h"

#include <utility>

#include "obs/trace.h"
#include "util/check.h"
#include "util/fault.h"

namespace leaps::online {

namespace {

std::shared_ptr<const core::Detector> required_detector(
    serve::DetectionServer* server, const std::string& profile) {
  LEAPS_CHECK_MSG(server != nullptr, "online manager needs a server");
  std::shared_ptr<const core::Detector> d =
      server->registry().find(profile);
  LEAPS_CHECK_MSG(d != nullptr,
                  "online manager: profile not registered: " + profile);
  return d;
}

cfg::AddressGraph seed_cfg(const core::Detector& detector) {
  const core::ContinualState* state = detector.continual();
  return state != nullptr ? state->benign_cfg : cfg::AddressGraph{};
}

}  // namespace

OnlineManager::Metrics::Metrics()
    : windows_observed(obs::MetricRegistry::global().counter(
          "leaps_online_windows_observed_total",
          "classified-benign windows fed to the online accumulator")),
      windows_rejected(obs::MetricRegistry::global().counter(
          "leaps_online_windows_rejected_total",
          "windows rejected by the CFG admission floor (poisoning guard)")),
      retrain_cycles(obs::MetricRegistry::global().counter(
          "leaps_online_retrain_cycles_total",
          "completed incremental retrain cycles")),
      retrain_failures(obs::MetricRegistry::global().counter(
          "leaps_online_retrain_failures_total",
          "retrain cycles that produced no candidate")),
      warm_iterations_saved(obs::MetricRegistry::global().counter(
          "leaps_online_warm_iterations_saved_total",
          "SMO iterations saved by warm starts vs measured cold baselines")),
      shadow_windows(obs::MetricRegistry::global().counter(
          "leaps_online_shadow_windows_total",
          "window verdict pairs compared during shadow evaluation")),
      shadow_disagreements(obs::MetricRegistry::global().counter(
          "leaps_online_shadow_disagreements_total",
          "shadow verdict pairs where candidate and incumbent disagreed")),
      promotions(obs::MetricRegistry::global().counter(
          "leaps_online_promotions_total",
          "candidates promoted to active via the registry snapshot swap")),
      rollbacks(obs::MetricRegistry::global().counter(
          "leaps_online_rollbacks_total",
          "candidates rolled back into quarantine")),
      cfg_edges(obs::MetricRegistry::global().gauge(
          "leaps_online_cfg_edges_added",
          "edges the accumulator has merged into the benign CFG")),
      drift_triggers(obs::MetricRegistry::global().counter(
          "leaps_online_drift_triggers_total",
          "decision-value drift triggers fired by the KS test")),
      drift_retrains(obs::MetricRegistry::global().counter(
          "leaps_online_drift_retrains_total",
          "retrain cycles scheduled by a drift trigger")),
      drift_p_value_ppm(obs::MetricRegistry::global().gauge(
          "leaps_online_drift_p_value_ppm",
          "latest two-sample KS p-value, parts per million")),
      drift_ks_ppm(obs::MetricRegistry::global().gauge(
          "leaps_online_drift_ks_ppm",
          "latest two-sample KS statistic, parts per million")),
      drift_generation(obs::MetricRegistry::global().gauge(
          "leaps_online_drift_generation",
          "detector generation the drift monitor is watching")) {}

OnlineManager::OnlineManager(serve::DetectionServer* server,
                             OnlineOptions options)
    : server_(server),
      options_(std::move(options)),
      metrics_(),
      accumulator_(seed_cfg(*required_detector(server, options_.profile)),
                   options_.accumulator),
      scheduler_(required_detector(server, options_.profile), &accumulator_,
                 options_.retrain),
      drift_(options_.drift) {}

OnlineManager::~OnlineManager() { stop(); }

void OnlineManager::install() {
  server_->set_window_tap(
      [this](const serve::SessionKey& /*key*/, std::size_t /*window_index*/,
             int label, double decision_value,
             const trace::PartitionedEvent* events, std::size_t count) {
        // Drift watches every verdict (the malicious tail is exactly what
        // a shifted distribution moves), so it runs before the learnable
        // filter. The fence keeps the observe and its buffered journal
        // sample one atom against poll flushes and checkpoint captures.
        if (options_.drift.enabled) {
          const std::lock_guard<std::mutex> tap_lock(tap_mu_);
          drift_.observe(decision_value, label);
          if (options_.durable != nullptr) {
            drift_buffer_.push_back(
                durable::DriftSample{decision_value, label});
          }
        }
        if (!learnable(label)) return;
        metrics_.windows_observed.inc();
        if (options_.durable == nullptr) {
          accumulator_.observe_window(events, count);
          return;
        }
        // Journal before observing: once the accumulator has the window a
        // crash must be able to get it back. Replay re-runs admission, so
        // journaling pre-admission stays idempotent. The fence makes the
        // pair atomic against checkpoint capture→truncate and the retrain
        // drain — otherwise a window could land in the truncated journal
        // gap, or be cleared by a drain boundary it was never part of.
        const std::lock_guard<std::mutex> tap_lock(tap_mu_);
        const util::Status status =
            options_.durable->journal_window(events, count);
        if (!status.ok()) note_durable_failure(status);
        accumulator_.observe_window(events, count);
      });
}

void OnlineManager::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void OnlineManager::stop() {
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_.store(false);
  // poll_mu_ makes shutdown wait out any directly-driven poll_once still
  // in flight — a stop() racing a poll step must not lose admitted
  // windows or double-conclude the shadow.
  const std::lock_guard<std::mutex> poll_lock(poll_mu_);
  // Conclude a shadow still in flight by its evidence so far: promotion
  // still requires an affirmative gate pass, anything else rolls back.
  std::shared_ptr<ShadowEvaluator> evaluator;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    evaluator = evaluator_;
  }
  if (evaluator != nullptr) {
    conclude_shadow(evaluator->decision() == RolloverDecision::kPromote);
  }
  // Clean shutdown leaves nothing for the journal replay to do.
  if (options_.durable != nullptr) do_checkpoint();
}

void OnlineManager::run() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_) {
    wake_cv_.wait_for(lock, options_.poll_interval,
                      [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    poll_once();
    lock.lock();
  }
}

void OnlineManager::poll_once() {
  const std::lock_guard<std::mutex> poll_lock(poll_mu_);
  // Export accumulator progress (counters advance by delta; see header).
  const AccumulatorStats acc = accumulator_.stats();
  if (acc.windows_rejected > synced_rejected_) {
    metrics_.windows_rejected.inc(acc.windows_rejected - synced_rejected_);
    synced_rejected_ = acc.windows_rejected;
  }
  metrics_.cfg_edges.set(static_cast<std::int64_t>(acc.edges_added));
  if (options_.drift.enabled) poll_drift();

  std::shared_ptr<ShadowEvaluator> evaluator;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    evaluator = evaluator_;
  }
  if (evaluator != nullptr) {
    const DiffStats s = evaluator->stats();
    if (s.compared > synced_shadow_windows_) {
      metrics_.shadow_windows.inc(s.compared - synced_shadow_windows_);
      synced_shadow_windows_ = s.compared;
    }
    if (s.disagreements > synced_shadow_disagreements_) {
      metrics_.shadow_disagreements.inc(s.disagreements -
                                        synced_shadow_disagreements_);
      synced_shadow_disagreements_ = s.disagreements;
    }
    const RolloverDecision decision = evaluator->decision();
    if (decision != RolloverDecision::kUndecided) {
      conclude_shadow(decision == RolloverDecision::kPromote);
    }
    return;
  }
  maybe_retrain();
  if (options_.durable != nullptr && options_.durable->should_checkpoint()) {
    do_checkpoint();
  }
}

void OnlineManager::poll_drift() {
  // Flush the buffered drift samples as one journal record before
  // evaluating: the trigger decision below must be reproducible from the
  // journal alone (the drill's crash point sits between flush and the
  // trigger append).
  if (options_.durable != nullptr) {
    const std::lock_guard<std::mutex> tap_lock(tap_mu_);
    flush_drift_locked();
  }
  drift_.evaluate();
  const DriftStatus ds = drift_.status();
  metrics_.drift_p_value_ppm.set(
      static_cast<std::int64_t>(ds.p_value * 1e6));
  metrics_.drift_ks_ppm.set(
      static_cast<std::int64_t>(ds.ks_statistic * 1e6));
  metrics_.drift_generation.set(static_cast<std::int64_t>(ds.generation));
  if (ds.triggers > synced_drift_triggers_) {
    metrics_.drift_triggers.inc(ds.triggers - synced_drift_triggers_);
    synced_drift_triggers_ = ds.triggers;
    if (options_.durable != nullptr) {
      // Fault point for the kill-restart drill: dying here leaves the
      // flushed samples but no trigger record — recovery re-observes
      // them, re-evaluates, and must re-fire at the same LSN.
      LEAPS_FAULT_POINT("online.drift.pre_trigger");
      std::uint64_t lsn = 0;
      const util::Status status = options_.durable->journal_drift_trigger(
          ds.generation, ds.p_value, &lsn);
      if (!status.ok()) {
        note_durable_failure(status);
      } else {
        const std::lock_guard<std::mutex> lock(mu_);
        last_drift_trigger_lsn_ = lsn;
      }
    }
  }
}

void OnlineManager::flush_drift_locked() {
  if (drift_buffer_.empty() || options_.durable == nullptr) return;
  const util::Status status = options_.durable->journal_drift_batch(
      drift_buffer_.data(), drift_buffer_.size());
  if (!status.ok()) note_durable_failure(status);
  drift_buffer_.clear();
}

void OnlineManager::maybe_retrain() {
  const bool drift_due = options_.drift.enabled && drift_.trigger_pending();
  if (!scheduler_.due() && !drift_due) return;
  if (drift_due) {
    drift_.consume_trigger();
    metrics_.drift_retrains.inc();
    const std::lock_guard<std::mutex> lock(mu_);
    ++drift_retrains_;
  }
  LEAPS_SPAN("online.cycle");
  // Drain under the tap fence and capture the journal high-water mark at
  // the same instant: every window journaled at or below drain_lsn is
  // provably in `drained` (the fence keeps journal→observe atomic), and
  // every window journaled later is untouched by this cycle. Training
  // runs outside the fence — workers keep serving while the SMO solves.
  std::vector<PendingWindow> drained;
  std::uint64_t drain_lsn = 0;
  {
    const std::lock_guard<std::mutex> tap_lock(tap_mu_);
    drained = accumulator_.drain_windows();
    if (options_.durable != nullptr) {
      drain_lsn = options_.durable->last_lsn();
    }
  }
  const RetrainResult result = scheduler_.retrain(std::move(drained));
  // The retrain consumed every window up to the drain boundary; the
  // journal record makes replay stop treating exactly those as pending.
  // Journaled only now, after the fit: a crash mid-training leaves no
  // drain record, so the drained windows replay as pending and the cycle
  // simply reruns — nothing is lost either way.
  if (options_.durable != nullptr) {
    const util::Status status = options_.durable->journal_retrain(
        drain_lsn, result.candidate != nullptr, result.new_samples,
        result.error);
    if (!status.ok()) note_durable_failure(status);
  }
  if (result.candidate == nullptr) {
    metrics_.retrain_failures.inc();
    const std::lock_guard<std::mutex> lock(mu_);
    ++retrain_failures_;
    last_error_ = result.error;
    return;
  }
  metrics_.retrain_cycles.inc();
  metrics_.warm_iterations_saved.inc(result.iterations_saved);
  auto evaluator = std::make_shared<ShadowEvaluator>(options_.gates);
  serve::ShadowSink sink =
      [evaluator](const serve::SessionKey& key, int active_label,
                  int shadow_label, std::uint64_t active_ns,
                  std::uint64_t shadow_ns) {
        evaluator->record(key, active_label, shadow_label, active_ns,
                          shadow_ns);
      };
  if (!server_->begin_shadow(options_.profile, result.candidate,
                             std::move(sink))) {
    metrics_.retrain_failures.inc();
    const std::lock_guard<std::mutex> lock(mu_);
    ++retrain_failures_;
    last_error_ = "begin_shadow refused (profile gone or already shadowing)";
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  warm_saved_ += result.iterations_saved;
  last_warm_ = result.warm_iterations;
  last_cold_ = result.cold_iterations;
  evaluator_ = std::move(evaluator);
  candidate_ = result.candidate;
  synced_shadow_windows_ = 0;
  synced_shadow_disagreements_ = 0;
}

void OnlineManager::conclude_shadow(bool promote) {
  std::shared_ptr<ShadowEvaluator> evaluator;
  std::shared_ptr<const core::Detector> candidate;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    evaluator = evaluator_;
    candidate = candidate_;
  }
  if (evaluator == nullptr) return;
  const DiffStats final_stats = evaluator->stats();
  if (final_stats.compared > synced_shadow_windows_) {
    metrics_.shadow_windows.inc(final_stats.compared -
                                synced_shadow_windows_);
    synced_shadow_windows_ = final_stats.compared;
  }
  if (final_stats.disagreements > synced_shadow_disagreements_) {
    metrics_.shadow_disagreements.inc(final_stats.disagreements -
                                      synced_shadow_disagreements_);
    synced_shadow_disagreements_ = final_stats.disagreements;
  }
  // end_shadow retakes every session mutex to detach — this is why the
  // decision is acted on here (manager thread) and never in the sink.
  server_->end_shadow(options_.profile, promote);
  if (promote && candidate != nullptr) scheduler_.adopt(candidate);
  // A promoted model has a new "normal": reset the drift reference so the
  // monitor re-learns the new generation's decision-value distribution.
  if (promote && options_.drift.enabled) drift_.advance_generation();
  // Journal the verdict with the candidate's full bytes: a crash after
  // this append recovers the exact promoted (or quarantined) detector
  // even if the checkpoint below never lands.
  if (options_.durable != nullptr && candidate != nullptr) {
    const util::Status status =
        promote ? options_.durable->journal_promotion(*candidate)
                : options_.durable->journal_quarantine(*candidate);
    if (!status.ok()) note_durable_failure(status);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    last_shadow_ = final_stats;
    if (promote) {
      ++promotions_;
      metrics_.promotions.inc();
    } else {
      ++rollbacks_;
      metrics_.rollbacks.inc();
    }
    evaluator_.reset();
    candidate_.reset();
  }
  // A promotion is the most valuable state there is; fold it immediately.
  if (options_.durable != nullptr && promote) do_checkpoint();
}

void OnlineManager::do_checkpoint() {
  // Block taps for the whole capture→snapshot→truncate sequence: a window
  // journaled and observed after pending_snapshot() but before the store's
  // truncate would end up in neither the snapshot nor the journal. The
  // store's own mutex cannot close that window — it cannot see the
  // accumulator — so the fence lives here.
  const std::lock_guard<std::mutex> tap_lock(tap_mu_);
  // Land the buffered drift samples in the journal first so a failed
  // checkpoint leaves them recoverable; a successful one folds the full
  // monitor state into the DRIFT blob and truncates them away.
  if (options_.drift.enabled) flush_drift_locked();
  durable::CheckpointState state;
  if (options_.drift.enabled) state.drift = drift_.serialize();
  state.detector = server_->registry().find(options_.profile);
  if (state.detector == nullptr) {
    note_durable_failure(util::not_found(
        "checkpoint: profile gone from registry: " + options_.profile));
    return;
  }
  for (PendingWindow& w : accumulator_.pending_snapshot()) {
    state.pending_windows.push_back(durable::DurableWindow{std::move(w.events)});
  }
  state.quarantined = server_->registry().quarantined_all(options_.profile);
  // Terminal-state capture: events still in flight at a crash never reach
  // a terminal counter, so ingested is folded as the sum — that keeps the
  // ingested == processed + dropped + quarantined identity true across
  // the restart boundary instead of off by the in-queue count.
  const serve::ServerMetrics& sm = server_->metrics();
  state.accounting.processed =
      sm.events_processed.load(std::memory_order_relaxed);
  state.accounting.dropped = sm.events_dropped.load(std::memory_order_relaxed);
  state.accounting.quarantined =
      sm.events_quarantined.load(std::memory_order_relaxed);
  state.accounting.ingested = state.accounting.processed +
                              state.accounting.dropped +
                              state.accounting.quarantined;
  const util::Status status = options_.durable->checkpoint(state);
  if (!status.ok()) note_durable_failure(status);
}

void OnlineManager::restore(const durable::RecoveredState& recovered) {
  const std::lock_guard<std::mutex> poll_lock(poll_mu_);
  for (const auto& candidate : recovered.quarantined) {
    server_->registry().restore_quarantined(options_.profile, candidate);
  }
  server_->metrics().restore_baseline(
      recovered.accounting.ingested, recovered.accounting.processed,
      recovered.accounting.dropped, recovered.accounting.quarantined);
  for (const durable::DurableWindow& window : recovered.pending_windows) {
    accumulator_.observe_window(window.events.data(), window.events.size());
  }
  if (options_.drift.enabled) {
    // Snapshot state first, then the journaled tail in order: observes
    // rebuild the windows value by value (the monitor is a pure function
    // of its observation sequence), a trigger record re-latches, and a
    // retrain record marks where a pending trigger was consumed.
    if (!recovered.drift.empty()) {
      const util::Status status = drift_.deserialize(recovered.drift);
      if (!status.ok()) note_durable_failure(status);
    }
    for (const durable::DriftReplayOp& op : recovered.drift_ops) {
      switch (op.kind) {
        case durable::DriftReplayOp::Kind::kObserve:
          drift_.observe(op.value, op.label);
          break;
        case durable::DriftReplayOp::Kind::kTrigger:
          drift_.restore_trigger();
          break;
        case durable::DriftReplayOp::Kind::kRetrain:
          if (drift_.trigger_pending()) drift_.consume_trigger();
          break;
      }
    }
    synced_drift_triggers_ = drift_.status().triggers;
  }
  // Fold the replayed state into a fresh snapshot immediately: a crash
  // right after restart must recover to this same point, not re-replay a
  // journal that was just truncated.
  if (options_.durable != nullptr) do_checkpoint();
}

void OnlineManager::note_durable_failure(const util::Status& status) {
  const std::lock_guard<std::mutex> lock(mu_);
  last_error_ = "durable: " + status.to_string();
}

OnlineReport OnlineManager::report() const {
  OnlineReport r;
  r.accumulator = accumulator_.stats();
  r.retrain_cycles = scheduler_.cycles();
  r.drift = drift_.status();
  const std::lock_guard<std::mutex> lock(mu_);
  r.last_drift_trigger_lsn = last_drift_trigger_lsn_;
  r.drift_retrains = drift_retrains_;
  r.phase = evaluator_ != nullptr ? "shadowing" : "accumulating";
  r.retrain_failures = retrain_failures_;
  r.warm_iterations_saved = warm_saved_;
  r.last_warm_iterations = last_warm_;
  r.last_cold_iterations = last_cold_;
  r.promotions = promotions_;
  r.rollbacks = rollbacks_;
  r.shadow = evaluator_ != nullptr ? evaluator_->stats() : last_shadow_;
  r.last_error = last_error_;
  return r;
}

}  // namespace leaps::online
