#include "online/accumulator.h"

#include <utility>

#include "cfg/weight.h"
#include "obs/trace.h"

namespace leaps::online {

OnlineCfgAccumulator::OnlineCfgAccumulator(cfg::AddressGraph base_cfg,
                                           AccumulatorOptions options)
    : options_(options), graph_(std::move(base_cfg)) {}

void OnlineCfgAccumulator::observe_window(
    const trace::PartitionedEvent* events, std::size_t count) {
  if (count == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  PendingWindow w;
  w.events.assign(events, events + count);
  batch_.push_back(std::move(w));
  batch_events_ += count;
  events_since_drain_ += count;
  ++stats_.windows_observed;
  if (batch_events_ >= options_.fold_batch_events) fold_locked();
}

std::size_t OnlineCfgAccumulator::fold_now() {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = batch_.size();
  fold_locked();
  return n;
}

cfg::AddressGraph OnlineCfgAccumulator::graph_snapshot() {
  const std::lock_guard<std::mutex> lock(mu_);
  fold_locked();
  return graph_;
}

std::vector<PendingWindow> OnlineCfgAccumulator::drain_windows() {
  const std::lock_guard<std::mutex> lock(mu_);
  fold_locked();
  std::vector<PendingWindow> out(
      std::make_move_iterator(retained_.begin()),
      std::make_move_iterator(retained_.end()));
  retained_.clear();
  events_since_drain_ = 0;
  return out;
}

std::vector<PendingWindow> OnlineCfgAccumulator::pending_snapshot() {
  const std::lock_guard<std::mutex> lock(mu_);
  fold_locked();
  return {retained_.begin(), retained_.end()};
}

std::uint64_t OnlineCfgAccumulator::events_since_drain() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_since_drain_;
}

AccumulatorStats OnlineCfgAccumulator::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void OnlineCfgAccumulator::fold_locked() {
  if (batch_.empty()) return;
  LEAPS_SPAN("online.fold");
  ++stats_.folds;
  // Score against the graph as it stood when the fold began: admission is
  // judged by what the system *already* believed benign, never by edges
  // the same batch is about to contribute.
  const cfg::WeightAssessor assessor(graph_);
  const bool graph_empty = graph_.empty();
  const cfg::CfgInference inference(options_.inference);
  for (PendingWindow& w : batch_) {
    // Mean benignity of every application frame in the window — the
    // node form of Algorithm 2, applied as the admission test.
    double sum = 0.0;
    std::size_t frames = 0;
    for (const trace::PartitionedEvent& e : w.events) {
      for (const std::uint64_t addr : e.app_stack) {
        sum += graph_empty ? 1.0 : assessor.node_benignity(addr);
        ++frames;
      }
    }
    w.benignity = frames == 0 ? 1.0 : sum / static_cast<double>(frames);
    if (w.benignity < options_.admit_floor) {
      ++stats_.windows_rejected;
      continue;
    }
    // Merge the window's inferred control flow: a set union edge by edge.
    trace::PartitionedLog log;
    log.events = w.events;
    const cfg::InferredCfg inferred = inference.infer(log);
    for (const auto& [from, tos] : inferred.graph.adjacency()) {
      for (const std::uint64_t to : tos) {
        if (graph_.add_edge(from, to)) ++stats_.edges_added;
      }
    }
    ++stats_.windows_admitted;
    stats_.events_folded += w.events.size();
    retained_.push_back(std::move(w));
    if (retained_.size() > options_.max_pending_windows) {
      retained_.pop_front();
      ++stats_.windows_evicted;
    }
  }
  batch_.clear();
  batch_events_ = 0;
}

}  // namespace leaps::online
