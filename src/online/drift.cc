#include "online/drift.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

namespace leaps::online {

namespace {

constexpr std::string_view kMagic = "LPDM1";

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bytes(std::string& out, const std::string& bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;

  bool u8(std::uint8_t& v) {
    if (pos + 1 > bytes.size()) return false;
    v = static_cast<std::uint8_t>(bytes[pos++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos + 4 > bytes.size()) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(bytes[pos + i]);
    }
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos + 8 > bytes.size()) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(bytes[pos + i]);
    }
    pos += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }
  bool blob(std::string_view& v) {
    std::uint32_t len = 0;
    if (!u32(len) || pos + len > bytes.size()) return false;
    v = bytes.substr(pos, len);
    pos += len;
    return true;
  }
};

}  // namespace

DriftMonitor::DriftMonitor(DriftOptions options)
    : options_(std::move(options)),
      live_(std::max<std::size_t>(1, options_.live_window)) {
  generations_.resize(1);
}

void DriftMonitor::observe(double decision_value, int label) {
  if (!options_.enabled) return;
  const std::lock_guard<std::mutex> lock(mu_);
  ++observed_;
  sketch_.insert(decision_value);
  GenerationMix& mix = generations_[generation_];
  if (label == 1) {
    ++mix.benign;
  } else {
    ++mix.malicious;
  }
  if (!reference_frozen_) {
    reference_.push_back(decision_value);
    if (reference_.size() >= options_.reference_target) {
      reference_frozen_ = true;
    }
    return;
  }
  live_.insert(decision_value);
}

bool DriftMonitor::evaluate() {
  if (!options_.enabled) return false;
  const std::lock_guard<std::mutex> lock(mu_);
  if (trigger_pending_) return true;
  if (!reference_frozen_ || live_.size() < options_.min_live) return false;
  ++evaluations_;
  last_ks_ = ks_statistic(reference_, live_.values());
  last_p_ = ks_p_value(last_ks_, reference_.size(), live_.size());
  if (last_p_ < options_.p_threshold) {
    trigger_pending_ = true;
    ++triggers_;
  }
  return trigger_pending_;
}

bool DriftMonitor::trigger_pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return trigger_pending_;
}

bool DriftMonitor::consume_trigger() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!trigger_pending_) return false;
  trigger_pending_ = false;
  // Cooldown: the comparison re-arms only after a fresh live window has
  // accumulated, so one sustained shift fires once per retrain, not once
  // per poll.
  live_.clear();
  return true;
}

void DriftMonitor::restore_trigger() {
  const std::lock_guard<std::mutex> lock(mu_);
  trigger_pending_ = true;
}

void DriftMonitor::advance_generation() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  generations_.resize(generation_ + 1);
  observed_ = 0;
  reference_.clear();
  reference_frozen_ = false;
  live_.clear();
  sketch_ = obs::QuantileSketch(sketch_.k());
  last_ks_ = 0.0;
  last_p_ = 1.0;
  trigger_pending_ = false;
}

DriftStatus DriftMonitor::status() const {
  DriftStatus s;
  s.enabled = options_.enabled;
  const std::lock_guard<std::mutex> lock(mu_);
  s.generation = generation_;
  s.observed = observed_;
  s.reference_size = reference_.size();
  s.reference_frozen = reference_frozen_;
  s.live_size = live_.size();
  s.ks_statistic = last_ks_;
  s.p_value = last_p_;
  s.evaluations = evaluations_;
  s.triggers = triggers_;
  s.trigger_pending = trigger_pending_;
  s.sketch.count = sketch_.count();
  s.sketch.sum = sketch_.sum();
  s.sketch.min = sketch_.min();
  s.sketch.max = sketch_.max();
  s.sketch.q50 = sketch_.quantile(0.50);
  s.sketch.q90 = sketch_.quantile(0.90);
  s.sketch.q99 = sketch_.quantile(0.99);
  s.generations = generations_;
  return s;
}

std::string DriftMonitor::serialize() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out(kMagic);
  put_u32(out, generation_);
  put_u64(out, observed_);
  put_u8(out, reference_frozen_ ? 1 : 0);
  put_u8(out, trigger_pending_ ? 1 : 0);
  put_f64(out, last_ks_);
  put_f64(out, last_p_);
  put_u64(out, evaluations_);
  put_u64(out, triggers_);
  put_u32(out, static_cast<std::uint32_t>(reference_.size()));
  for (const double v : reference_) put_f64(out, v);
  put_bytes(out, live_.serialize());
  put_bytes(out, sketch_.serialize());
  put_u32(out, static_cast<std::uint32_t>(generations_.size()));
  for (const GenerationMix& mix : generations_) {
    put_u64(out, mix.benign);
    put_u64(out, mix.malicious);
  }
  return out;
}

util::Status DriftMonitor::deserialize(std::string_view bytes) {
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    return util::corrupt_input("drift state: bad magic");
  }
  Cursor c{bytes, kMagic.size()};
  std::uint32_t generation = 0;
  std::uint64_t observed = 0;
  std::uint8_t frozen = 0;
  std::uint8_t pending = 0;
  double last_ks = 0.0;
  double last_p = 1.0;
  std::uint64_t evaluations = 0;
  std::uint64_t triggers = 0;
  std::uint32_t ref_n = 0;
  if (!c.u32(generation) || !c.u64(observed) || !c.u8(frozen) ||
      !c.u8(pending) || !c.f64(last_ks) || !c.f64(last_p) ||
      !c.u64(evaluations) || !c.u64(triggers) || !c.u32(ref_n) ||
      ref_n > (1u << 24)) {
    return util::corrupt_input("drift state: truncated header");
  }
  std::vector<double> reference(ref_n);
  for (std::uint32_t i = 0; i < ref_n; ++i) {
    if (!c.f64(reference[i])) {
      return util::corrupt_input("drift state: truncated reference");
    }
  }
  std::string_view live_bytes;
  std::string_view sketch_bytes;
  std::uint32_t gen_n = 0;
  if (!c.blob(live_bytes) || !c.blob(sketch_bytes) || !c.u32(gen_n) ||
      gen_n == 0 || gen_n > (1u << 20) || gen_n != generation + 1) {
    return util::corrupt_input("drift state: truncated windows");
  }
  auto live = obs::ReservoirWindow::deserialize(live_bytes);
  if (!live.ok()) return live.status();
  auto sketch = obs::QuantileSketch::deserialize(sketch_bytes);
  if (!sketch.ok()) return sketch.status();
  std::vector<GenerationMix> generations(gen_n);
  for (std::uint32_t i = 0; i < gen_n; ++i) {
    if (!c.u64(generations[i].benign) || !c.u64(generations[i].malicious)) {
      return util::corrupt_input("drift state: truncated generation mix");
    }
  }
  if (c.pos != bytes.size()) {
    return util::corrupt_input("drift state: trailing bytes");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  generation_ = generation;
  observed_ = observed;
  reference_frozen_ = frozen != 0;
  trigger_pending_ = pending != 0;
  last_ks_ = last_ks;
  last_p_ = last_p;
  evaluations_ = evaluations;
  triggers_ = triggers;
  reference_ = std::move(reference);
  live_ = *std::move(live);
  sketch_ = *std::move(sketch);
  generations_ = std::move(generations);
  return util::ok_status();
}

bool DriftMonitor::operator==(const DriftMonitor& other) const {
  // Ordered lock irrelevant: comparison is test/drill-only, single caller.
  const std::lock_guard<std::mutex> lock(mu_);
  const std::lock_guard<std::mutex> other_lock(other.mu_);
  return generation_ == other.generation_ && observed_ == other.observed_ &&
         reference_frozen_ == other.reference_frozen_ &&
         trigger_pending_ == other.trigger_pending_ &&
         last_ks_ == other.last_ks_ && last_p_ == other.last_p_ &&
         evaluations_ == other.evaluations_ &&
         triggers_ == other.triggers_ && reference_ == other.reference_ &&
         live_ == other.live_ && sketch_ == other.sketch_ &&
         generations_.size() == other.generations_.size() &&
         std::equal(generations_.begin(), generations_.end(),
                    other.generations_.begin(),
                    [](const GenerationMix& a, const GenerationMix& b) {
                      return a.benign == b.benign &&
                             a.malicious == b.malicious;
                    });
}

double DriftMonitor::ks_statistic(std::vector<double> a,
                                  std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  return d;
}

double DriftMonitor::ks_p_value(double d, std::size_t n, std::size_t m) {
  if (n == 0 || m == 0 || d <= 0.0) return 1.0;
  const double ne = static_cast<double>(n) * static_cast<double>(m) /
                    static_cast<double>(n + m);
  const double sqrt_ne = std::sqrt(ne);
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  // Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}; alternating and rapidly
  // convergent, so stop once a term stops mattering.
  double sum = 0.0;
  double sign = 1.0;
  const double l2 = -2.0 * lambda * lambda;
  for (int j = 1; j <= 100; ++j) {
    const double term = sign * std::exp(l2 * j * j);
    sum += term;
    if (std::fabs(term) < 1e-12 * std::fabs(sum) ||
        std::fabs(term) < 1e-300) {
      break;
    }
    sign = -sign;
  }
  const double p = 2.0 * sum;
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace leaps::online
