// RetrainScheduler — incremental retraining with warm-started SMO.
//
// Periodically re-fits the deployed detector's SVM on its original
// training set *plus* the benign windows the accumulator admitted since
// the last cycle, seeding SMO with the previous model's full dual solution
// (ContinualState::alpha). The old optimum is feasible for the grown
// problem (new rows start at α = 0), so the solver resumes near the
// solution instead of rebuilding it — the measured iteration savings
// versus a cold start are the point of the warm-start machinery, and
// retrain() can run both to record them.
//
// Triggering is pull-based: the owner (OnlineManager, or an operator via
// `leaps-rollover retrain`) polls due() and calls retrain() on its own
// thread; the scheduler never spawns one. A detector loaded from a pre-v2
// file carries no ContinualState — can_retrain() is false and the caller
// must fall back to a cold offline retrain (tools/leaps-train).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/pipeline.h"
#include "ml/svm.h"
#include "online/accumulator.h"

namespace leaps::online {

struct RetrainConfig {
  /// Accumulated benign events that make a retrain due.
  std::uint64_t min_new_events = 2048;
  /// Wall-clock floor between retrains (0 = event count alone decides).
  std::chrono::milliseconds min_interval{0};
  /// Also run a cold (zero-seed) fit on the same grown dataset to record
  /// the iteration savings. Costs a second SMO solve; disable in
  /// production, keep for evaluation.
  bool measure_cold_baseline = true;
  /// Cap on new windows folded into one retrain (newest kept).
  std::size_t max_new_samples = 1024;
  /// Solver settings for the refit. The kernel is always taken from the
  /// deployed model (a candidate must be comparable to its incumbent);
  /// lambda/epsilon/max_iterations apply as given.
  ml::SvmParams svm;
};

/// What one retrain cycle produced. `candidate` is null when the cycle
/// could not run (see `error`).
struct RetrainResult {
  std::shared_ptr<const core::Detector> candidate;
  std::size_t new_samples = 0;     // windows appended this cycle
  std::size_t train_size = 0;      // total rows of the grown dataset
  std::size_t warm_iterations = 0;
  std::size_t warm_nonzero = 0;    // surviving seed entries
  std::size_t cold_iterations = 0;     // 0 unless measured
  std::size_t iterations_saved = 0;    // max(0, cold - warm), when measured
  bool measured_cold = false;
  std::string error;  // empty on success
};

class RetrainScheduler {
 public:
  /// `accumulator` must outlive the scheduler. `base` is the deployed
  /// detector whose ContinualState anchors the first cycle.
  RetrainScheduler(std::shared_ptr<const core::Detector> base,
                   OnlineCfgAccumulator* accumulator, RetrainConfig config);

  /// False when the base detector carries no ContinualState (pre-v2 model
  /// file): there is no training set to grow, so online retraining is
  /// unavailable and due() never fires.
  bool can_retrain() const;

  /// True when enough new benign events have accumulated and the
  /// wall-clock floor has passed.
  bool due() const;

  /// Drains the accumulator and fits a candidate detector. On success the
  /// candidate carries a fresh ContinualState (merged CFG, grown dataset,
  /// new α) and the incumbent's calibrated decision threshold.
  RetrainResult retrain();

  /// Same fit over windows the caller already drained — for callers that
  /// must make the drain atomic with other bookkeeping (OnlineManager
  /// drains under its durability fence so the journaled drain boundary
  /// exactly matches this set) while keeping the training outside it.
  RetrainResult retrain(std::vector<PendingWindow> windows);

  /// Rebase after a promotion: subsequent cycles grow from `promoted`'s
  /// ContinualState instead of the original base.
  void adopt(std::shared_ptr<const core::Detector> promoted);

  std::uint64_t cycles() const;
  const RetrainConfig& config() const { return config_; }

 private:
  const RetrainConfig config_;
  OnlineCfgAccumulator* const accumulator_;
  mutable std::mutex mu_;
  std::shared_ptr<const core::Detector> base_;  // guarded by mu_
  std::chrono::steady_clock::time_point last_retrain_;  // guarded by mu_
  std::uint64_t cycles_ = 0;                            // guarded by mu_
};

}  // namespace leaps::online
