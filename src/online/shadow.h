// ShadowEvaluator — the canary gate of a rollover.
//
// While a candidate detector shadows live sessions (serve::Session runs
// both streams window-aligned), every (active, shadow) verdict pair and
// its per-model classification cost land here via record(), which matches
// the serve::ShadowSink signature. Once enough windows have been compared,
// decision() applies the gates:
//
//   promote  — disagreement rate <= max_disagreement AND
//              shadow/active latency ratio <= max_latency_ratio,
//   rollback — either gate exceeded,
//   undecided — fewer than min_windows compared (keep shadowing).
//
// The evaluator only *judges*; acting on the judgment (the registry swap
// or quarantine) belongs to the owner. In particular record() runs under
// session mutexes, so the decision must be polled from another thread —
// never acted on inside the sink (detaching shadows retakes those same
// session mutexes).
#pragma once

#include <cstdint>

#include "online/verdict_diff.h"
#include "serve/session.h"

namespace leaps::online {

struct RolloverGates {
  /// Max fraction of compared windows where the candidate disagrees with
  /// the incumbent. Benign drift retraining should barely move verdicts;
  /// a candidate that reclassifies live traffic wholesale is wrong.
  double max_disagreement = 0.02;
  /// Max shadow/active per-window classification cost ratio. A candidate
  /// that is much slower (e.g. support-vector blowup) fails rollover even
  /// when it agrees perfectly.
  double max_latency_ratio = 3.0;
  /// Verdict pairs required before the gates are consulted at all.
  std::uint64_t min_windows = 64;
};

enum class RolloverDecision {
  kUndecided,  // not enough evidence yet
  kPromote,
  kRollback,
};

class ShadowEvaluator {
 public:
  explicit ShadowEvaluator(RolloverGates gates = {}) : gates_(gates) {}

  /// serve::ShadowSink-compatible; thread-safe and wait-free.
  void record(const serve::SessionKey& /*key*/, int active_label,
              int shadow_label, std::uint64_t active_ns,
              std::uint64_t shadow_ns) {
    diff_.record(active_label, shadow_label, active_ns, shadow_ns);
  }

  /// Gate verdict on the evidence so far.
  RolloverDecision decision() const {
    const DiffStats s = diff_.stats();
    if (s.compared < gates_.min_windows) return RolloverDecision::kUndecided;
    if (s.disagreement_rate() > gates_.max_disagreement ||
        s.latency_ratio() > gates_.max_latency_ratio) {
      return RolloverDecision::kRollback;
    }
    return RolloverDecision::kPromote;
  }

  DiffStats stats() const { return diff_.stats(); }
  const RolloverGates& gates() const { return gates_; }
  void reset() { diff_.reset(); }

 private:
  RolloverGates gates_;
  VerdictDiff diff_;
};

}  // namespace leaps::online
