// OnlineManager — the continuous-learning control loop.
//
// Ties the pieces into one state machine per served profile:
//
//   accumulating ──(retrain due)──▶ training ──▶ shadowing
//        ▲                                            │
//        └──── promote (RCU swap + adopt) ◀── gates ──┤
//        └──── rollback (quarantine)       ◀──────────┘
//
// install() hooks the server's WindowTap (classified-benign windows feed
// the OnlineCfgAccumulator); start() spawns the manager thread, which
// polls the retrain trigger and — crucially — the shadow decision. The
// decision is never taken inside the ShadowSink: sinks run under session
// mutexes on worker threads, and ending a shadow retakes every session's
// mutex to detach, so acting in the sink would deadlock. The manager
// thread is the only place promote/rollback happens.
//
// Every counter is created eagerly in the constructor so a metrics dump
// taken before any retrain still shows the online subsystem at zero —
// absence of a metric and a zero metric must not look the same.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "durable/store.h"
#include "obs/registry.h"
#include "online/accumulator.h"
#include "online/drift.h"
#include "online/retrain.h"
#include "online/shadow.h"
#include "serve/server.h"

namespace leaps::online {

struct OnlineOptions {
  /// The registry profile this manager learns for.
  std::string profile = "default";
  AccumulatorOptions accumulator;
  RetrainConfig retrain;
  RolloverGates gates;
  /// Manager-thread poll cadence (retrain trigger + shadow decision).
  std::chrono::milliseconds poll_interval{100};
  /// Decision-value drift detection (online/drift.h). When enabled, every
  /// scored window's decision value feeds the DriftMonitor and a KS-test
  /// trigger schedules a retrain alongside the volume trigger.
  DriftOptions drift;
  /// When set, the manager journals learnable windows, retrain outcomes
  /// and promotions/rollbacks to this store as they happen, checkpoints
  /// when the store says it is due (and on every promotion, on restore()
  /// and on stop()), making the online state crash-safe. The store must
  /// be open()ed and must outlive the manager. Null disables durability.
  durable::DurableStore* durable = nullptr;
};

struct OnlineReport {
  std::string phase;  // "accumulating" | "shadowing"
  AccumulatorStats accumulator;
  std::uint64_t retrain_cycles = 0;
  std::uint64_t retrain_failures = 0;
  std::uint64_t warm_iterations_saved = 0;  // summed over cycles
  std::uint64_t last_warm_iterations = 0;
  std::uint64_t last_cold_iterations = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
  DiffStats shadow;  // current (or final) shadow comparison
  DriftStatus drift;
  /// LSN of the most recent journaled drift trigger (0 = none); the drift
  /// drill asserts a recovered run re-fires at the same one.
  std::uint64_t last_drift_trigger_lsn = 0;
  std::uint64_t drift_retrains = 0;  // retrains caused by a drift trigger
  std::string last_error;
};

class OnlineManager {
 public:
  /// `server` must outlive the manager. The profile's detector must be
  /// registered before install(); its ContinualState (if any) seeds the
  /// accumulator's CFG.
  OnlineManager(serve::DetectionServer* server, OnlineOptions options);
  ~OnlineManager();

  OnlineManager(const OnlineManager&) = delete;
  OnlineManager& operator=(const OnlineManager&) = delete;

  /// Hooks the server's window tap. Must run before server->start().
  void install();

  /// Spawns the manager thread. Call after server->start().
  void start();

  /// Concludes an in-flight shadow (by its current evidence: promote only
  /// on a kPromote decision), joins the manager thread. Idempotent.
  void stop();

  /// One control-loop step, callable directly for deterministic drives
  /// (tests, tools): triggers a due retrain, starts/concludes shadows,
  /// checkpoints the durable store when due. Serialized against stop()
  /// and other poll_once callers — a shutdown racing a poll step can
  /// never lose admitted windows.
  void poll_once();

  /// Applies a recovered durability state: restores the profile's
  /// quarantine list and the server's accounting baseline, re-observes
  /// the recovered pending windows through the accumulator (re-running
  /// admission — replay is idempotent), then forces a checkpoint so a
  /// second crash recovers to this same state. Call after install(),
  /// before the server starts ingesting. The recovered incumbent
  /// detector must already be registered (it seeds this manager's
  /// accumulator CFG via the constructor).
  void restore(const durable::RecoveredState& recovered);

  OnlineReport report() const;
  bool shadowing() const { return server_->shadowing(options_.profile); }
  const OnlineOptions& options() const { return options_; }

 private:
  struct Metrics {
    obs::Counter& windows_observed;
    obs::Counter& windows_rejected;
    obs::Counter& retrain_cycles;
    obs::Counter& retrain_failures;
    obs::Counter& warm_iterations_saved;
    obs::Counter& shadow_windows;
    obs::Counter& shadow_disagreements;
    obs::Counter& promotions;
    obs::Counter& rollbacks;
    obs::Gauge& cfg_edges;
    obs::Counter& drift_triggers;
    obs::Counter& drift_retrains;
    obs::Gauge& drift_p_value_ppm;
    obs::Gauge& drift_ks_ppm;
    obs::Gauge& drift_generation;
    Metrics();
  };

  void run();
  void maybe_retrain();                  // accumulating → shadowing
  void conclude_shadow(bool promote);    // shadowing → accumulating
  void do_checkpoint();                  // fold journal into a snapshot
  void poll_drift();                     // flush, evaluate, journal trigger
  void flush_drift_locked();             // requires tap_mu_ held
  void note_durable_failure(const util::Status& status);

  serve::DetectionServer* const server_;
  const OnlineOptions options_;
  Metrics metrics_;
  OnlineCfgAccumulator accumulator_;
  RetrainScheduler scheduler_;
  DriftMonitor drift_;
  /// Drift samples observed since the last journal flush (poll_once and
  /// do_checkpoint flush them as one kDriftBatch record). Guarded by
  /// tap_mu_ — the same fence that keeps window journaling atomic against
  /// checkpoints keeps the batch aligned with the monitor state.
  std::vector<durable::DriftSample> drift_buffer_;

  /// Serializes control-loop steps (poll_once, stop()'s conclusion and
  /// final checkpoint, restore()) against each other.
  std::mutex poll_mu_;

  /// The durability fence. A tap's journal→observe pair and a
  /// checkpoint's capture→snapshot→truncate sequence must be mutually
  /// atomic: a window journaled after the pending-state capture but
  /// before the journal truncate would be in neither the snapshot nor
  /// the journal, and gone after a crash. The retrain drain takes the
  /// same fence so its journaled drain boundary exactly matches the
  /// drained set. Only taken when durability is on; ordering is always
  /// tap_mu_ → (accumulator / store) internal locks, never the reverse.
  std::mutex tap_mu_;

  mutable std::mutex mu_;
  std::shared_ptr<ShadowEvaluator> evaluator_;           // guarded by mu_
  std::shared_ptr<const core::Detector> candidate_;      // guarded by mu_
  std::uint64_t retrain_failures_ = 0;                   // guarded by mu_
  std::uint64_t warm_saved_ = 0;                         // guarded by mu_
  std::uint64_t last_warm_ = 0;                          // guarded by mu_
  std::uint64_t last_cold_ = 0;                          // guarded by mu_
  std::uint64_t promotions_ = 0;                         // guarded by mu_
  std::uint64_t rollbacks_ = 0;                          // guarded by mu_
  DiffStats last_shadow_;                                // guarded by mu_
  std::string last_error_;                               // guarded by mu_
  // Counter sync marks (counters only increment; these remember how much
  // of each underlying stat has already been exported). Manager thread /
  // poll_once callers only.
  std::uint64_t synced_rejected_ = 0;
  std::uint64_t synced_shadow_windows_ = 0;
  std::uint64_t synced_shadow_disagreements_ = 0;
  std::uint64_t synced_drift_triggers_ = 0;
  std::uint64_t last_drift_trigger_lsn_ = 0;  // guarded by mu_
  std::uint64_t drift_retrains_ = 0;          // guarded by mu_

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;  // guarded by wake_mu_
  std::atomic<bool> started_{false};
};

/// Helper for the tap closure: true for windows the accumulator should
/// learn from (classified benign by the active detector).
inline bool learnable(int label) { return label == 1; }

}  // namespace leaps::online
