// OnlineCfgAccumulator — Algorithm 1, running forever.
//
// Training infers the benign CFG from one recorded log; serving sees an
// endless benign stream the recorded log never covered. The accumulator
// consumes classified-benign windows straight off the serving path (the
// server's WindowTap) and folds their control flow into the benign CFG
// *incrementally*: each batch of buffered windows is run through the same
// CfgInference as training and its edges merged into the running graph —
// edges only accumulate, so a merge is a set union, never a rebuild.
//
// Poisoning guard: a camouflaged attacker that slips a malicious window
// past the active detector must not thereby teach the next detector that
// its control flow is benign. Every observed window is scored against the
// *current* merged benign CFG (mean WeightAssessor::node_benignity over
// its application frames); windows below the admission floor are folded
// into neither the CFG nor the retraining set, and are counted as
// rejected. Self-training only on samples the program analysis already
// vouches for is the LEAPS answer to the classic self-training trap.
//
// Threading: observe_window() is called under session mutexes from worker
// threads — it only appends to a pending buffer under the accumulator's
// own mutex (no inference, no allocation beyond the copy). The fold — the
// expensive part — runs when a batch fills or when the retrain scheduler
// asks for a snapshot, on whichever thread that is.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "cfg/graph.h"
#include "cfg/inference.h"
#include "trace/partition.h"

namespace leaps::online {

struct AccumulatorOptions {
  /// Pending windows are folded into the CFG once their events reach this
  /// count (amortizes inference); fold_now() forces an early fold.
  std::size_t fold_batch_events = 256;
  /// Admission floor: windows whose mean frame benignity against the
  /// current merged CFG falls below this are rejected (poisoning guard).
  /// 0 admits everything (the graph still only grows).
  double admit_floor = 0.25;
  /// Bound on windows retained for the next retraining pass; when full,
  /// the oldest retained window is evicted (counted, never silent).
  std::size_t max_pending_windows = 4096;
  cfg::InferenceOptions inference;
};

struct AccumulatorStats {
  std::uint64_t windows_observed = 0;
  std::uint64_t windows_admitted = 0;
  std::uint64_t windows_rejected = 0;  // below the admission floor
  std::uint64_t windows_evicted = 0;   // retention bound hit
  std::uint64_t events_folded = 0;
  std::uint64_t edges_added = 0;  // new edges merged into the benign CFG
  std::uint64_t folds = 0;
};

/// One admitted window, retained for the next retraining pass.
struct PendingWindow {
  std::vector<trace::PartitionedEvent> events;
  double benignity = 1.0;  // CFG-derived, at admission time
};

class OnlineCfgAccumulator {
 public:
  /// Seeds the merged CFG with the deployed detector's benign graph (the
  /// ContinualState CFG — pass a default-constructed graph to start empty).
  OnlineCfgAccumulator(cfg::AddressGraph base_cfg,
                       AccumulatorOptions options = {});

  /// Feeds one classified-benign window (label +1) from the serving path.
  /// Cheap: copies the events into the pending batch; folding happens on
  /// batch boundaries. Thread-safe.
  void observe_window(const trace::PartitionedEvent* events,
                      std::size_t count);

  /// Folds any pending batch immediately (the scheduler calls this before
  /// snapshotting). Returns the number of windows folded.
  std::size_t fold_now();

  /// Copy of the current merged benign CFG (after folding pending data).
  cfg::AddressGraph graph_snapshot();

  /// Drains the admitted windows retained for retraining (after folding);
  /// the internal retention buffer is left empty.
  std::vector<PendingWindow> drain_windows();

  /// Copy of the admitted-but-undrained windows (after folding), without
  /// disturbing them — what a durability checkpoint folds into the
  /// snapshot so a crash loses no retained window.
  std::vector<PendingWindow> pending_snapshot();

  /// Events observed since construction or the last drain — the retrain
  /// trigger's progress counter. Thread-safe.
  std::uint64_t events_since_drain() const;

  AccumulatorStats stats() const;

 private:
  // Requires lock held.
  void fold_locked();

  const AccumulatorOptions options_;
  mutable std::mutex mu_;
  cfg::AddressGraph graph_;                       // guarded by mu_
  std::vector<PendingWindow> batch_;              // awaiting fold
  std::size_t batch_events_ = 0;                  // events in batch_
  std::deque<PendingWindow> retained_;            // admitted, for retrain
  std::uint64_t events_since_drain_ = 0;          // guarded by mu_
  AccumulatorStats stats_;                        // guarded by mu_
};

}  // namespace leaps::online
