// Verdict diffing: the comparison primitive of shadow evaluation.
//
// Two classifiers looking at the same traffic either agree window-for-
// window or they do not, and "how much they disagree" is the entire
// promotion question of a shadow rollover. VerdictDiff accumulates
// (active, shadow) verdict pairs concurrently from many sessions —
// lock-free, one atomic bump per pair — and exposes the running
// disagreement rate plus the per-model classification cost, which the
// rollover gates (online/shadow.h) read.
//
// diff_sequences() is the offline form of the same idea: align two verdict
// sequences positionally and report where they diverge. It generalizes the
// steady-vs-baseline comparison the chaos harness (tools/leaps-chaos) does
// by hand, and is what the `leaps-rollover diff` subcommand prints.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace leaps::online {

/// Snapshot of an accumulating diff (see VerdictDiff::stats).
struct DiffStats {
  std::uint64_t compared = 0;       // verdict pairs seen
  std::uint64_t disagreements = 0;  // pairs with active != shadow
  // Aggregate per-window classification cost of each model.
  std::uint64_t active_ns = 0;
  std::uint64_t shadow_ns = 0;

  double disagreement_rate() const {
    return compared == 0
               ? 0.0
               : static_cast<double>(disagreements) /
                     static_cast<double>(compared);
  }
  /// shadow cost / active cost; 1.0 when either side has no samples yet.
  double latency_ratio() const {
    if (active_ns == 0 || shadow_ns == 0) return 1.0;
    return static_cast<double>(shadow_ns) / static_cast<double>(active_ns);
  }
};

/// Thread-safe accumulator of (active, shadow) verdict pairs. record() is
/// wait-free (relaxed atomics) — safe to call from the serving path under
/// session mutexes.
class VerdictDiff {
 public:
  void record(int active_label, int shadow_label, std::uint64_t active_ns,
              std::uint64_t shadow_ns) {
    compared_.fetch_add(1, std::memory_order_relaxed);
    if (active_label != shadow_label) {
      disagreements_.fetch_add(1, std::memory_order_relaxed);
    }
    active_ns_.fetch_add(active_ns, std::memory_order_relaxed);
    shadow_ns_.fetch_add(shadow_ns, std::memory_order_relaxed);
  }

  DiffStats stats() const {
    DiffStats s;
    s.compared = compared_.load(std::memory_order_relaxed);
    s.disagreements = disagreements_.load(std::memory_order_relaxed);
    s.active_ns = active_ns_.load(std::memory_order_relaxed);
    s.shadow_ns = shadow_ns_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    compared_.store(0, std::memory_order_relaxed);
    disagreements_.store(0, std::memory_order_relaxed);
    active_ns_.store(0, std::memory_order_relaxed);
    shadow_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> compared_{0};
  std::atomic<std::uint64_t> disagreements_{0};
  std::atomic<std::uint64_t> active_ns_{0};
  std::atomic<std::uint64_t> shadow_ns_{0};
};

/// Positional diff of two whole verdict sequences (+1/-1 labels).
struct SequenceDiff {
  std::size_t compared = 0;       // min(a.size(), b.size())
  std::size_t disagreements = 0;  // positions where a[i] != b[i]
  std::size_t length_delta = 0;   // |a.size() - b.size()|
  std::vector<std::size_t> mismatch_indices;

  bool identical() const { return disagreements == 0 && length_delta == 0; }
  double disagreement_rate() const {
    return compared == 0
               ? 0.0
               : static_cast<double>(disagreements) /
                     static_cast<double>(compared);
  }
};

/// Compares the overlapping prefix position-by-position; extra trailing
/// verdicts on either side count toward length_delta, not disagreements.
SequenceDiff diff_sequences(const std::vector<int>& a,
                            const std::vector<int>& b);

}  // namespace leaps::online
