#include "online/retrain.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace leaps::online {

RetrainScheduler::RetrainScheduler(
    std::shared_ptr<const core::Detector> base,
    OnlineCfgAccumulator* accumulator, RetrainConfig config)
    : config_(config),
      accumulator_(accumulator),
      base_(std::move(base)),
      last_retrain_(std::chrono::steady_clock::now()) {
  LEAPS_CHECK_MSG(base_ != nullptr, "retrain needs a base detector");
  LEAPS_CHECK_MSG(accumulator_ != nullptr, "retrain needs an accumulator");
}

bool RetrainScheduler::can_retrain() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return base_->continual() != nullptr;
}

bool RetrainScheduler::due() const {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (base_->continual() == nullptr) return false;
    if (config_.min_interval.count() > 0 &&
        std::chrono::steady_clock::now() - last_retrain_ <
            config_.min_interval) {
      return false;
    }
  }
  return accumulator_->events_since_drain() >= config_.min_new_events;
}

RetrainResult RetrainScheduler::retrain() {
  return retrain(accumulator_->drain_windows());
}

RetrainResult RetrainScheduler::retrain(std::vector<PendingWindow> windows) {
  LEAPS_SPAN("online.retrain");
  RetrainResult result;
  std::shared_ptr<const core::Detector> base;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    base = base_;
  }
  const core::ContinualState* state = base->continual();
  if (state == nullptr) {
    result.error =
        "base detector has no continual state (pre-v2 model file); "
        "retrain offline with leaps-train";
    return result;
  }

  if (windows.empty()) {
    result.error = "no admitted benign windows since the last cycle";
    return result;
  }
  if (windows.size() > config_.max_new_samples) {
    // Newest windows describe current behavior best; drop the oldest.
    windows.erase(windows.begin(),
                  windows.end() - static_cast<std::ptrdiff_t>(
                                      config_.max_new_samples));
  }

  // Grow the dataset: incumbent rows first (so the exported α lines up as
  // the warm seed), then the new benign windows, featurized exactly like
  // the serving path (Detector::Stream) and scaled with the incumbent's
  // scaler — the grown problem must live in the same feature space.
  const core::Preprocessor& pre = base->preprocessor();
  const std::size_t window = pre.window();
  ml::Dataset grown = state->train;
  for (const PendingWindow& w : windows) {
    if (w.events.size() != window) continue;  // tap guarantees this; belt
    ml::FeatureVector raw;
    raw.reserve(3 * window);
    for (const trace::PartitionedEvent& e : w.events) {
      const core::EventTuple t = pre.tuple(e);
      raw.push_back(static_cast<double>(t.event_type));
      raw.push_back(t.lib_coord);
      raw.push_back(t.func_coord);
    }
    grown.add(base->scaler().transform(raw), +1,
              std::clamp(w.benignity, 0.0, 1.0));
    ++result.new_samples;
  }
  if (result.new_samples == 0) {
    result.error = "no admitted window matched the detector's window size";
    return result;
  }
  result.train_size = grown.size();

  // The warm seed: the incumbent's full dual solution over the prefix of
  // the grown dataset; new rows implicitly start at α = 0.
  ml::SvmParams params = config_.svm;
  params.kernel = base->model().kernel();
  const ml::SvmTrainer trainer(params);

  ml::TrainStats warm_stats;
  ml::SvmModel model;
  try {
    model = trainer.train(grown, &warm_stats, &state->alpha);
  } catch (const std::exception& e) {
    result.error = std::string("warm refit failed: ") + e.what();
    return result;
  }
  result.warm_iterations = warm_stats.iterations;
  result.warm_nonzero = warm_stats.warm_nonzero;

  if (config_.measure_cold_baseline) {
    LEAPS_SPAN("online.retrain.cold");
    ml::TrainStats cold_stats;
    try {
      (void)trainer.train(grown, &cold_stats);
      result.cold_iterations = cold_stats.iterations;
      result.measured_cold = true;
      result.iterations_saved =
          cold_stats.iterations > warm_stats.iterations
              ? cold_stats.iterations - warm_stats.iterations
              : 0;
    } catch (const std::exception&) {
      // The warm fit is the product; a failed baseline only loses the
      // measurement.
    }
  }

  auto candidate = std::make_shared<core::Detector>(
      base->preprocessor(), base->scaler(), std::move(model));
  candidate->set_decision_threshold(base->decision_threshold());
  core::ContinualState next;
  next.benign_cfg = accumulator_->graph_snapshot();
  next.train = std::move(grown);
  next.alpha = std::move(warm_stats.alpha);
  candidate->set_continual(std::move(next));
  result.candidate = std::move(candidate);

  const std::lock_guard<std::mutex> lock(mu_);
  last_retrain_ = std::chrono::steady_clock::now();
  ++cycles_;
  return result;
}

void RetrainScheduler::adopt(
    std::shared_ptr<const core::Detector> promoted) {
  LEAPS_CHECK_MSG(promoted != nullptr, "cannot adopt a null detector");
  const std::lock_guard<std::mutex> lock(mu_);
  base_ = std::move(promoted);
}

std::uint64_t RetrainScheduler::cycles() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cycles_;
}

}  // namespace leaps::online
