// DriftMonitor — distribution-shift detection over SVM decision values.
//
// The serving layer's verdicts carry the raw decision value f(x); its
// distribution is the model-health signal. For each detector generation
// the monitor first *freezes a reference window* (the first
// `reference_target` values the generation scores — what "normal" looks
// like right after training), then maintains a sliding *live window* of
// the most recent values. A two-sample Kolmogorov–Smirnov test between
// the two fires a retrain trigger when the live distribution has drifted
// from the reference with p below `p_threshold`.
//
// Everything here is deterministic: the reference is a plain prefix, the
// live window is a FIFO ring, and the per-generation quantile sketch uses
// the deterministic compaction in obs/sketch.h — so the monitor's full
// state is a pure function of the observation sequence. That is what lets
// durability replay (journal the values, re-observe them in order)
// recover the monitor byte-exactly and re-fire a lost trigger at the same
// point in the sequence.
//
// Generations: advance_generation() (called on promotion) resets the
// reference/live windows and starts a fresh sketch — a newly promoted
// model has a new "normal". Per-generation verdict mixes are kept for the
// status surface.
//
// Thread-safety: all members serialize on one internal mutex; observe()
// runs on server worker threads, evaluate()/consume_trigger() on the
// manager thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sketch.h"
#include "util/status.h"

namespace leaps::online {

struct DriftOptions {
  /// Master switch; a disabled monitor observes nothing and never fires.
  bool enabled = false;
  /// Values that freeze the reference window (per generation).
  std::size_t reference_target = 256;
  /// Capacity of the live FIFO window compared against the reference.
  std::size_t live_window = 128;
  /// Live values required before the KS test is consulted.
  std::size_t min_live = 64;
  /// Fire when the two-sample KS p-value drops below this.
  double p_threshold = 0.01;
};

/// One generation's verdict mix (for the status surface).
struct GenerationMix {
  std::uint64_t benign = 0;
  std::uint64_t malicious = 0;
};

/// A coherent reading of the monitor (all plain values).
struct DriftStatus {
  bool enabled = false;
  std::uint32_t generation = 0;
  std::uint64_t observed = 0;        // values seen, current generation
  std::size_t reference_size = 0;
  bool reference_frozen = false;
  std::size_t live_size = 0;
  double ks_statistic = 0.0;         // from the most recent evaluation
  double p_value = 1.0;              // from the most recent evaluation
  std::uint64_t evaluations = 0;
  std::uint64_t triggers = 0;
  bool trigger_pending = false;
  obs::Summary::Snapshot sketch;     // current generation's decision values
  std::vector<GenerationMix> generations;  // index = generation number
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftOptions options = {});

  const DriftOptions& options() const { return options_; }

  /// Feeds one scored window's decision value and verdict label. Builds
  /// the reference until it freezes, then the live window; always feeds
  /// the generation sketch and verdict mix.
  void observe(double decision_value, int label);

  /// Runs the KS test (when the reference is frozen, the live window has
  /// at least min_live values, and no trigger is already pending) and
  /// latches a trigger on p < p_threshold. Returns true when a trigger is
  /// pending after the call. Deterministic: same observation sequence and
  /// call points → same result.
  bool evaluate();

  /// True when a drift trigger has fired and not yet been consumed.
  bool trigger_pending() const;

  /// Claims a pending trigger: returns false when none; otherwise clears
  /// it and resets the live window (natural cooldown — the test is not
  /// re-armed until a fresh live window accumulates).
  bool consume_trigger();

  /// Re-latches a trigger recovered from the journal (crash after the
  /// trigger record landed but before the retrain consumed it).
  void restore_trigger();

  /// New detector generation (promotion): resets reference, live window
  /// and sketch; verdict mixes of past generations are retained.
  void advance_generation();

  DriftStatus status() const;

  /// Full monitor state, little-endian, magic-tagged; deserialize() of
  /// the result reconstructs a monitor that compares equal (options are
  /// NOT serialized — the caller configures them).
  std::string serialize() const;
  util::Status deserialize(std::string_view bytes);

  /// Byte-exact state comparison (ignores options).
  bool operator==(const DriftMonitor& other) const;

  /// Two-sample KS statistic D = sup |F_a − F_b|; inputs need not be
  /// sorted. Returns 0 when either sample is empty.
  static double ks_statistic(std::vector<double> a, std::vector<double> b);

  /// Asymptotic two-sample KS p-value for statistic `d` over sample sizes
  /// n and m (Numerical-Recipes Q_KS with the small-sample correction).
  static double ks_p_value(double d, std::size_t n, std::size_t m);

 private:
  const DriftOptions options_;
  mutable std::mutex mu_;
  std::uint32_t generation_ = 0;            // guarded by mu_
  std::uint64_t observed_ = 0;              // current generation
  std::vector<double> reference_;           // frozen prefix when full
  bool reference_frozen_ = false;
  obs::ReservoirWindow live_;               // FIFO of recent values
  obs::QuantileSketch sketch_;              // current generation
  double last_ks_ = 0.0;
  double last_p_ = 1.0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t triggers_ = 0;
  bool trigger_pending_ = false;
  std::vector<GenerationMix> generations_;  // index = generation
};

}  // namespace leaps::online
