#include "cfg/inference.h"

#include <unordered_map>

#include "obs/trace.h"

namespace leaps::cfg {

std::size_t CfgInference::branch_point(
    const std::vector<std::uint64_t>& prev,
    const std::vector<std::uint64_t>& curr) {
  const std::size_t limit = std::min(prev.size(), curr.size());
  std::size_t i = 0;
  while (i < limit && prev[i] == curr[i]) ++i;
  return i;
}

InferredCfg CfgInference::infer(const trace::PartitionedLog& log) const {
  LEAPS_SPAN("cfg.infer");
  InferredCfg out;
  // prev_stacklist, keyed by thread when per-thread adjacency is on.
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> prev_by_tid;

  auto record = [&out](std::uint64_t from, std::uint64_t to,
                       std::uint64_t seq) {
    out.graph.add_edge(from, to);
    auto& events = out.edge_events[{from, to}];
    // Events arrive in order; avoid recording the same event twice per edge.
    if (events.empty() || events.back() != seq) events.push_back(seq);
  };

  for (const trace::PartitionedEvent& event : log.events) {
    const std::vector<std::uint64_t>& curr = event.app_stack;
    if (curr.empty()) continue;
    const std::uint32_t key = options_.per_thread_adjacency ? event.tid : 0;
    std::vector<std::uint64_t>& prev = prev_by_tid[key];

    if (!prev.empty()) {
      // Implicit path (Algorithm 1, lines 12-13). When one walk is a prefix
      // of the other, the branch index is out of range for the shorter walk
      // and the explicit edges already cover the containment — skip.
      const std::size_t idx = branch_point(prev, curr);
      if (idx < prev.size() && idx < curr.size()) {
        record(prev[idx], curr[idx], event.seq);
      }
    }
    // Explicit paths (Algorithm 1, lines 14-15).
    for (std::size_t i = 0; i + 1 < curr.size(); ++i) {
      record(curr[i], curr[i + 1], event.seq);
    }
    prev = curr;
  }
  return out;
}

}  // namespace leaps::cfg
