#include "cfg/weight.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace leaps::cfg {

WeightAssessor::WeightAssessor(const AddressGraph& benign_cfg)
    : benign_(benign_cfg), density_(benign_cfg.density_array()) {}

bool WeightAssessor::within_range(std::uint64_t start,
                                  std::uint64_t end) const {
  if (density_.empty()) return false;
  const std::uint64_t lo = density_.front();
  const std::uint64_t hi = density_.back();
  return start >= lo && start <= hi && end >= lo && end <= hi;
}

double WeightAssessor::estimate_weight(
    std::uint64_t addr, const std::vector<std::uint64_t>& density) {
  LEAPS_CHECK_MSG(!density.empty(), "estimate_weight: empty density array");
  LEAPS_CHECK_MSG(addr >= density.front() && addr <= density.back(),
                  "estimate_weight: address out of range");
  // BISECT = bisect_right: index of the first element > addr.
  const auto it = std::upper_bound(density.begin(), density.end(), addr);
  if (it == density.end()) {
    // addr == density.back(): coincides with a benign node.
    return 1.0;
  }
  const auto idx = static_cast<std::size_t>(it - density.begin());
  if (idx == 0) return 1.0;  // addr == density.front() with front duplicated
  const std::uint64_t below = density[idx - 1];
  const std::uint64_t above = density[idx];
  const std::uint64_t gap = above - below;
  if (gap == 0) return 1.0;  // duplicate addresses: addr sits on a node
  const std::uint64_t mindiff = std::min(addr - below, above - addr);
  return 1.0 - static_cast<double>(mindiff) / static_cast<double>(gap);
}

double WeightAssessor::node_benignity(std::uint64_t addr) const {
  if (density_.empty()) return 0.0;
  if (addr < density_.front() || addr > density_.back()) return 0.0;
  return estimate_weight(addr, density_);
}

double WeightAssessor::path_benignity(std::uint64_t start,
                                      std::uint64_t end) const {
  if (benign_.reachable(start, end)) return 1.0;
  if (within_range(start, end)) return estimate_weight(start, density_);
  return 0.0;
}

std::map<std::uint64_t, double> WeightAssessor::assess(
    const InferredCfg& mixed_cfg) const {
  LEAPS_SPAN("cfg.assess_weights");
  // SET_WEIGHT keeps {running mean, count} per event; REBALANCE folds each
  // new path weight into the mean.
  struct Acc {
    double mean = 0.0;
    std::size_t number = 0;
  };
  std::map<std::uint64_t, Acc> accum;

  for (const auto& [start, endset] : mixed_cfg.graph.adjacency()) {
    for (const std::uint64_t end : endset) {
      const double weight = path_benignity(start, end);
      const auto events_it = mixed_cfg.edge_events.find({start, end});
      if (events_it == mixed_cfg.edge_events.end()) continue;
      for (const std::uint64_t seq : events_it->second) {
        Acc& acc = accum[seq];
        acc.mean = (acc.mean * static_cast<double>(acc.number) + weight) /
                   static_cast<double>(acc.number + 1);
        ++acc.number;
      }
    }
  }

  std::map<std::uint64_t, double> result;
  for (const auto& [seq, acc] : accum) result[seq] = acc.mean;
  return result;
}

}  // namespace leaps::cfg
