#include "cfg/graph.h"

#include <algorithm>
#include <ostream>

#include "util/strings.h"

namespace leaps::cfg {

bool AddressGraph::add_edge(Address from, Address to) {
  const bool inserted = adjacency_[from].insert(to).second;
  if (inserted) ++edge_count_;
  return inserted;
}

bool AddressGraph::has_edge(Address from, Address to) const {
  auto it = adjacency_.find(from);
  return it != adjacency_.end() && it->second.count(to) > 0;
}

const std::set<AddressGraph::Address>* AddressGraph::successors(
    Address from) const {
  auto it = adjacency_.find(from);
  return it == adjacency_.end() ? nullptr : &it->second;
}

bool AddressGraph::reachable(Address start, Address end) const {
  // Iterative DFS over successors of `start`; a hit on `end` anywhere along
  // the way (including start == end via a cycle) means a path of length >= 1.
  std::vector<Address> stack;
  std::set<Address> visited;
  stack.push_back(start);
  // `start` itself is expanded but only counts as `end` when re-entered.
  while (!stack.empty()) {
    const Address node = stack.back();
    stack.pop_back();
    const auto it = adjacency_.find(node);
    if (it == adjacency_.end()) continue;
    for (const Address next : it->second) {
      if (next == end) return true;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

std::vector<AddressGraph::Address> AddressGraph::nodes() const {
  std::set<Address> uniq;
  for (const auto& [from, tos] : adjacency_) {
    uniq.insert(from);
    uniq.insert(tos.begin(), tos.end());
  }
  return {uniq.begin(), uniq.end()};
}

std::vector<AddressGraph::Address> AddressGraph::density_array() const {
  std::vector<Address> density;
  density.reserve(edge_count_ * 2);
  for (const auto& [from, tos] : adjacency_) {
    for (const Address to : tos) {
      density.push_back(from);
      density.push_back(to);
    }
  }
  std::sort(density.begin(), density.end());
  return density;
}

std::size_t AddressGraph::node_count() const { return nodes().size(); }

void AddressGraph::to_dot(
    std::ostream& os, const std::string& title,
    const std::function<std::string(Address)>& node_attrs) const {
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (const Address node : nodes()) {
    os << "  \"" << util::hex_addr(node) << "\"";
    if (node_attrs) {
      const std::string attrs = node_attrs(node);
      if (!attrs.empty()) os << " [" << attrs << "]";
    }
    os << ";\n";
  }
  for (const auto& [from, tos] : adjacency_) {
    for (const Address to : tos) {
      os << "  \"" << util::hex_addr(from) << "\" -> \"" << util::hex_addr(to)
         << "\";\n";
    }
  }
  os << "}\n";
}

}  // namespace leaps::cfg
