// System-level function call graph (Section III-D-1).
//
// The CGraph baseline's substrate: from the *system stack trace* of each
// event, extract the function-invocation chain (caller → callee pairs of
// adjacent system frames) and accumulate the edges. Training builds one
// graph from the benign log (BCG) and one from the mixed log (MCG); the
// decision model in ml/cgraph_model.h classifies test events by edge
// membership in the two graphs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cfg/graph.h"
#include "cfg/inference.h"  // Edge
#include "trace/partition.h"

namespace leaps::cfg {

class SystemCallGraph {
 public:
  /// Caller→callee pairs of one event's system stack trace. Frames are
  /// innermost-first, so the invocation edge runs frame[i+1] → frame[i].
  static std::vector<Edge> event_edges(const trace::PartitionedEvent& event);

  void add_event(const trace::PartitionedEvent& event);
  void add_log(const trace::PartitionedLog& log);

  bool has_edge(std::uint64_t caller, std::uint64_t callee) const {
    return graph_.has_edge(caller, callee);
  }
  std::size_t edge_count() const { return graph_.edge_count(); }
  const AddressGraph& graph() const { return graph_; }

 private:
  AddressGraph graph_;
};

}  // namespace leaps::cfg
