// CFG alignment — the paper's Section VI-A future work, implemented.
//
// Against *source-level* trojans the adversary recompiles the application
// with the payload's source added, so every address shifts and Algorithm
// 2's exact-address comparison collapses (all mixed paths look in-range).
// The paper proposes "searching for isomorphic subgraphs in both
// benign/mixed CFGs by identifying and aligning pivotal nodes"; this module
// does exactly that:
//
//  1. *Pivot discovery* — compilation preserves the relative order of the
//     benign functions, so the correspondence must be monotone in address
//     order: pivots come from a global sequence alignment (dynamic
//     programming with free gaps) over the two node sequences. Node
//     similarity starts from degree profiles — robust to the sampling
//     noise of log-inferred CFGs, where exact-neighborhood (WL-style)
//     signatures never coincide — and is sharpened over a few passes by
//     matched-neighbor support (a node pair is credible when its
//     neighbors' matches are neighbors too). A confidence filter keeps
//     only structurally supported pairs as pivotal nodes.
//  2. *Interval mapping* — between consecutive pivots, addresses translate
//     linearly when the interval lengths agree (no insertion); an interval
//     that grew in the mixed build contains inserted (payload) code, and
//     its unmatched addresses map to a far sentinel region instead.
//
// The resulting address translation turns a shifted mixed CFG back into
// benign coordinates, after which the standard WeightAssessor applies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cfg/graph.h"
#include "cfg/inference.h"
#include "trace/partition.h"

namespace leaps::cfg {

/// Per-node behavioral fingerprint: the histogram of event types whose
/// stack walks pass through the node. A function keeps its behavior across
/// recompilation, so fingerprints are the strongest log-derived matching
/// signal (degree profiles alone are ambiguous on sampled CFGs).
using NodeFingerprints =
    std::map<std::uint64_t, std::vector<double>>;  // addr → type histogram

/// Builds fingerprints from a partitioned log (every application frame of
/// every event contributes to its node's histogram).
NodeFingerprints node_fingerprints(const trace::PartitionedLog& log);

struct AlignmentOptions {
  /// Maximum similarity-sharpening passes (alignment usually stabilizes
  /// after 2-3).
  std::size_t max_passes = 6;
  /// Two pivot intervals of lengths within this many bytes of each other
  /// count as "no insertion" and translate linearly.
  std::uint64_t interval_tolerance = 0x100;
  /// Where unmatched / inserted addresses are relocated: far outside any
  /// benign range, preserving distinctness.
  std::uint64_t sentinel_base = 0xFFFF900000000000ULL;
};

struct Alignment {
  /// Matched pivotal nodes: mixed address -> benign address, monotone.
  std::map<std::uint64_t, std::uint64_t> pivots;
  std::size_t benign_nodes = 0;
  std::size_t mixed_nodes = 0;
  std::size_t passes = 0;

  double pivot_fraction() const {
    return mixed_nodes == 0
               ? 0.0
               : static_cast<double>(pivots.size()) /
                     static_cast<double>(mixed_nodes);
  }
};

class CfgAligner {
 public:
  explicit CfgAligner(AlignmentOptions options = {}) : options_(options) {}

  /// Computes the pivot correspondence between two inferred CFGs. The
  /// fingerprints are optional but strongly recommended — without them the
  /// matcher falls back to degree profiles plus neighbor support only.
  Alignment align(const AddressGraph& benign, const AddressGraph& mixed,
                  const NodeFingerprints* benign_fp = nullptr,
                  const NodeFingerprints* mixed_fp = nullptr) const;

  /// Translates one mixed-graph address into benign coordinates using the
  /// pivot map; nullopt means the address lies in inserted (payload) code
  /// or outside all pivot intervals.
  std::optional<std::uint64_t> translate(const Alignment& alignment,
                                         std::uint64_t mixed_addr) const;

  /// Rewrites a whole inferred CFG into benign coordinates. Untranslatable
  /// addresses relocate to distinct sentinel addresses (far outside the
  /// benign density range), so Algorithm 2 scores their paths 0.
  InferredCfg translate_cfg(const Alignment& alignment,
                            const InferredCfg& mixed) const;

  const AlignmentOptions& options() const { return options_; }

 private:
  AlignmentOptions options_;
};

}  // namespace leaps::cfg
