// Control Flow Graph Inference — Algorithm 1.
//
// Builds an application CFG purely from the application stack traces in the
// event log:
//  * explicit paths — caller→callee pairs inside one stack walk,
//  * implicit paths — at the divergence point of two adjacent walks, an edge
//    from the previous walk's frame to the current walk's frame (Figure 3:
//    Addr_4 → Addr_6).
// It also records the reverse mapping from each inferred edge to the events
// that produced it (the "memap" input of Algorithm 2).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "cfg/graph.h"
#include "trace/partition.h"

namespace leaps::cfg {

using Edge = std::pair<std::uint64_t, std::uint64_t>;

struct InferredCfg {
  AddressGraph graph;
  /// memap: inferred edge -> sequence numbers of the events affiliated with
  /// it (explicit edges belong to their own event; an implicit edge belongs
  /// to the later of the two adjacent events).
  std::map<Edge, std::vector<std::uint64_t>> edge_events;
};

struct InferenceOptions {
  /// When true (default), "adjacent events" for implicit paths means
  /// adjacent within the same thread. The paper's Algorithm 1 is written
  /// against a single-threaded log (false reproduces it verbatim); with
  /// multi-threaded mixed logs, global adjacency manufactures spurious
  /// cross-thread edges, which per-thread adjacency avoids.
  bool per_thread_adjacency = true;
};

class CfgInference {
 public:
  explicit CfgInference(InferenceOptions options = {}) : options_(options) {}

  /// GEN_CFG over a partitioned log. Events with empty application stacks
  /// are skipped (they contribute no application control flow).
  InferredCfg infer(const trace::PartitionedLog& log) const;

  /// BRANCH_POINT (Algorithm 1, lines 6-8): length of the common prefix.
  static std::size_t branch_point(const std::vector<std::uint64_t>& prev,
                                  const std::vector<std::uint64_t>& curr);

 private:
  InferenceOptions options_;
};

}  // namespace leaps::cfg
