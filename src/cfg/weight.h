// Weight Assessment — Algorithm 2.
//
// Compares the mixed CFG against the benign CFG and assigns each mixed-log
// event a *benignity* in [0, 1]:
//  * an edge whose endpoints are already connected in the benign CFG scores 1
//    (CHECK_CFG),
//  * an edge inside the benign address range but not connected scores an
//    interpolated value from the density array (ESTIMATE_WEIGHT) — tolerance
//    for the inferred benign CFG's incompleteness,
//  * an edge outside the benign range scores 0 — code far from benign code
//    is almost certainly the payload.
// Per-event benignity is the running mean over all paths mapped to the event
// (SET_WEIGHT / REBALANCE).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cfg/graph.h"
#include "cfg/inference.h"

namespace leaps::cfg {

class WeightAssessor {
 public:
  /// Precomputes the density array (GEN_CFG_DENSITY) of the benign CFG.
  /// The benign graph must outlive the assessor.
  explicit WeightAssessor(const AddressGraph& benign_cfg);

  /// Benignity of one inferred path (COMPARE_CFG body, lines 33-41).
  double path_benignity(std::uint64_t start, std::uint64_t end) const;

  /// COMPARE_CFG: per-event benignity for every event referenced by the
  /// mixed CFG's memap. Events not covered by any path are absent from the
  /// result (callers choose the default; the LEAPS pipeline uses 1 — no
  /// evidence of maliciousness).
  std::map<std::uint64_t, double> assess(const InferredCfg& mixed_cfg) const;

  /// ESTIMATE_WEIGHT (lines 26-30) against an explicit density array;
  /// `addr` must lie within [density.front(), density.back()].
  static double estimate_weight(std::uint64_t addr,
                                const std::vector<std::uint64_t>& density);

  /// Benignity of a single code address: 1 on a benign node, interpolated
  /// inside the benign range, 0 outside. Used for events whose stack walks
  /// are too shallow to produce any path (e.g. a one-frame shellcode
  /// stack) — Algorithm 2's density logic applied to a node instead of an
  /// edge.
  double node_benignity(std::uint64_t addr) const;

  const std::vector<std::uint64_t>& density_array() const { return density_; }

 private:
  bool within_range(std::uint64_t start, std::uint64_t end) const;

  const AddressGraph& benign_;
  std::vector<std::uint64_t> density_;
};

}  // namespace leaps::cfg
