#include "cfg/alignment.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace leaps::cfg {

NodeFingerprints node_fingerprints(const trace::PartitionedLog& log) {
  NodeFingerprints fp;
  for (const trace::PartitionedEvent& e : log.events) {
    const auto type = static_cast<std::size_t>(trace::event_type_id(e.type));
    for (const std::uint64_t addr : e.app_stack) {
      auto& hist = fp[addr];
      if (hist.empty()) hist.assign(trace::kEventTypeCount, 0.0);
      hist[type] += 1.0;
    }
  }
  return fp;
}

namespace {

using Address = std::uint64_t;

struct GraphView {
  std::vector<Address> nodes;  // ascending address order
  std::vector<std::vector<std::size_t>> succ;
  std::vector<std::vector<std::size_t>> pred;

  explicit GraphView(const AddressGraph& g) {
    nodes = g.nodes();
    std::unordered_map<Address, std::size_t> index;
    index.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) index[nodes[i]] = i;
    succ.resize(nodes.size());
    pred.resize(nodes.size());
    for (const auto& [from, tos] : g.adjacency()) {
      const std::size_t fi = index.at(from);
      for (const Address to : tos) {
        const std::size_t ti = index.at(to);
        succ[fi].push_back(ti);
        pred[ti].push_back(fi);
      }
    }
  }
};

/// Degree-profile similarity in [0, 1]: identical in/out degrees score 1.
double degree_similarity(const GraphView& gb, std::size_t i,
                         const GraphView& gm, std::size_t j) {
  const auto din = static_cast<double>(gb.pred[i].size()) -
                   static_cast<double>(gm.pred[j].size());
  const auto dout = static_cast<double>(gb.succ[i].size()) -
                    static_cast<double>(gm.succ[j].size());
  return 1.0 / (1.0 + std::abs(din) + std::abs(dout));
}

/// Cosine similarity of two event-type histograms (0 when either node has
/// no fingerprint).
double fingerprint_similarity(const NodeFingerprints* fb, Address a,
                              const NodeFingerprints* fm, Address b) {
  if (fb == nullptr || fm == nullptr) return 0.0;
  const auto ia = fb->find(a);
  const auto ib = fm->find(b);
  if (ia == fb->end() || ib == fm->end()) return 0.0;
  const auto& x = ia->second;
  const auto& y = ib->second;
  double dot = 0.0;
  double nx = 0.0;
  double ny = 0.0;
  for (std::size_t k = 0; k < x.size() && k < y.size(); ++k) {
    dot += x[k] * y[k];
    nx += x[k] * x[k];
    ny += y[k] * y[k];
  }
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return dot / std::sqrt(nx * ny);
}

/// Monotone matching maximizing total (score - threshold) via global
/// sequence alignment with free gaps. Returns matched index pairs.
std::vector<std::pair<std::size_t, std::size_t>> dp_align(
    const std::vector<std::vector<double>>& score, double threshold) {
  const std::size_t nb = score.size();
  const std::size_t nm = nb == 0 ? 0 : score[0].size();
  // A[i][j]: best total over prefixes b[0..i), m[0..j).
  std::vector<std::vector<double>> a(nb + 1, std::vector<double>(nm + 1, 0));
  for (std::size_t i = 1; i <= nb; ++i) {
    for (std::size_t j = 1; j <= nm; ++j) {
      double best = std::max(a[i - 1][j], a[i][j - 1]);
      const double gain = score[i - 1][j - 1] - threshold;
      if (gain > 0.0) best = std::max(best, a[i - 1][j - 1] + gain);
      a[i][j] = best;
    }
  }
  // Backtrack.
  std::vector<std::pair<std::size_t, std::size_t>> matches;
  std::size_t i = nb;
  std::size_t j = nm;
  while (i > 0 && j > 0) {
    const double gain = score[i - 1][j - 1] - threshold;
    if (gain > 0.0 && a[i][j] == a[i - 1][j - 1] + gain) {
      matches.emplace_back(i - 1, j - 1);
      --i;
      --j;
    } else if (a[i][j] == a[i - 1][j]) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(matches.begin(), matches.end());
  return matches;
}

}  // namespace

Alignment CfgAligner::align(const AddressGraph& benign,
                            const AddressGraph& mixed,
                            const NodeFingerprints* benign_fp,
                            const NodeFingerprints* mixed_fp) const {
  // Pivotal-node alignment as iterative monotone sequence alignment:
  // compilation preserves the relative order of the benign functions, so
  // the correspondence must be monotone in the address order — a global
  // sequence alignment with the payload block absorbed as a gap. Node
  // similarity starts from degree profiles (robust to log-sampling noise)
  // and is sharpened by matched-neighbor support over a few passes.
  Alignment result;
  const GraphView gb(benign);
  const GraphView gm(mixed);
  result.benign_nodes = gb.nodes.size();
  result.mixed_nodes = gm.nodes.size();
  if (gb.nodes.empty() || gm.nodes.empty()) return result;

  const std::size_t nb = gb.nodes.size();
  const std::size_t nm = gm.nodes.size();
  const bool have_fp = benign_fp != nullptr && mixed_fp != nullptr;
  // Base similarity: behavioral fingerprint (dominant when available) plus
  // degree profile. Cached — it does not change across passes.
  std::vector<std::vector<double>> base(nb, std::vector<double>(nm, 0.0));
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = 0; j < nm; ++j) {
      const double deg = degree_similarity(gb, i, gm, j);
      if (have_fp) {
        const double fp = fingerprint_similarity(benign_fp, gb.nodes[i],
                                                 mixed_fp, gm.nodes[j]);
        base[i][j] = 0.75 * fp + 0.25 * deg;
      } else {
        base[i][j] = deg;
      }
    }
  }
  std::vector<std::vector<double>> score = base;

  std::vector<std::pair<std::size_t, std::size_t>> matches;
  // benign index -> matched mixed index (and inverse) for support lookups.
  std::vector<std::size_t> match_of_b(nb);
  std::vector<std::size_t> match_of_m(nm);
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  for (std::size_t pass = 0; pass < options_.max_passes; ++pass) {
    result.passes = pass + 1;
    auto new_matches = dp_align(score, /*threshold=*/0.25);
    const bool stable = new_matches == matches;
    matches = std::move(new_matches);
    if (stable || pass + 1 == options_.max_passes) break;

    std::fill(match_of_b.begin(), match_of_b.end(), kNone);
    std::fill(match_of_m.begin(), match_of_m.end(), kNone);
    for (const auto& [bi, mj] : matches) {
      match_of_b[bi] = mj;
      match_of_m[mj] = bi;
    }

    // Neighbor support: the fraction of i's neighbors whose match is a
    // neighbor of j (successors and predecessors pooled).
    const auto support = [&](std::size_t i, std::size_t j) {
      std::size_t hits = 0;
      std::size_t total = 0;
      for (const std::size_t s : gb.succ[i]) {
        ++total;
        const std::size_t m = match_of_b[s];
        if (m != kNone &&
            std::find(gm.succ[j].begin(), gm.succ[j].end(), m) !=
                gm.succ[j].end()) {
          ++hits;
        }
      }
      for (const std::size_t p : gb.pred[i]) {
        ++total;
        const std::size_t m = match_of_b[p];
        if (m != kNone &&
            std::find(gm.pred[j].begin(), gm.pred[j].end(), m) !=
                gm.pred[j].end()) {
          ++hits;
        }
      }
      return total == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(total);
    };
    for (std::size_t i = 0; i < nb; ++i) {
      for (std::size_t j = 0; j < nm; ++j) {
        score[i][j] = 0.6 * base[i][j] + 0.4 * support(i, j);
      }
    }
  }

  // Confidence filter: keep pairs with real structural support so stray
  // degree coincidences inside the payload block do not become pivots.
  std::map<Address, Address> pivots;
  for (const auto& [bi, mj] : matches) {
    if (score[bi][mj] >= 0.30) {
      pivots.emplace(gm.nodes[mj], gb.nodes[bi]);
    }
  }
  result.pivots = std::move(pivots);  // monotone by construction (DP)
  return result;
}

std::optional<std::uint64_t> CfgAligner::translate(
    const Alignment& alignment, std::uint64_t mixed_addr) const {
  const auto& pivots = alignment.pivots;
  if (pivots.empty()) return std::nullopt;
  const auto exact = pivots.find(mixed_addr);
  if (exact != pivots.end()) return exact->second;

  const auto above = pivots.upper_bound(mixed_addr);
  if (above == pivots.begin() || above == pivots.end()) {
    // Outside the pivot envelope: unknown territory.
    return std::nullopt;
  }
  const auto below = std::prev(above);
  const std::uint64_t mixed_gap = above->first - below->first;
  const std::uint64_t benign_gap = above->second - below->second;
  if (mixed_gap > benign_gap + options_.interval_tolerance) {
    // The interval grew in the recompiled binary: inserted code.
    return std::nullopt;
  }
  const std::uint64_t offset = mixed_addr - below->first;
  // Clamp into the interval (shrunk intervals can otherwise overshoot).
  return below->second + std::min(offset, benign_gap);
}

InferredCfg CfgAligner::translate_cfg(const Alignment& alignment,
                                      const InferredCfg& mixed) const {
  InferredCfg out;
  // Distinct sentinel per untranslatable source address, assigned in
  // address order for determinism.
  std::map<std::uint64_t, std::uint64_t> sentinels;
  const auto map_addr = [&](std::uint64_t a) {
    if (const auto t = translate(alignment, a)) return *t;
    const auto it = sentinels.find(a);
    if (it != sentinels.end()) return it->second;
    const std::uint64_t s =
        options_.sentinel_base + sentinels.size() * 0x100;
    sentinels.emplace(a, s);
    return s;
  };
  for (const auto& [from, tos] : mixed.graph.adjacency()) {
    for (const std::uint64_t to : tos) {
      const std::uint64_t nf = map_addr(from);
      const std::uint64_t nt = map_addr(to);
      out.graph.add_edge(nf, nt);
      auto& events = out.edge_events[{nf, nt}];
      const auto src = mixed.edge_events.find({from, to});
      if (src != mixed.edge_events.end()) {
        events.insert(events.end(), src->second.begin(), src->second.end());
      }
    }
  }
  // Translation can merge edges; restore per-edge event order/uniqueness.
  for (auto& [edge, events] : out.edge_events) {
    std::sort(events.begin(), events.end());
    events.erase(std::unique(events.begin(), events.end()), events.end());
  }
  return out;
}

}  // namespace leaps::cfg
