#include "cfg/call_graph.h"

namespace leaps::cfg {

std::vector<Edge> SystemCallGraph::event_edges(
    const trace::PartitionedEvent& event) {
  std::vector<Edge> edges;
  const auto& frames = event.system_stack;
  edges.reserve(frames.size());
  for (std::size_t i = 0; i + 1 < frames.size(); ++i) {
    edges.emplace_back(frames[i + 1].address, frames[i].address);
  }
  return edges;
}

void SystemCallGraph::add_event(const trace::PartitionedEvent& event) {
  for (const Edge& e : event_edges(event)) graph_.add_edge(e.first, e.second);
}

void SystemCallGraph::add_log(const trace::PartitionedLog& log) {
  for (const trace::PartitionedEvent& e : log.events) add_event(e);
}

}  // namespace leaps::cfg
