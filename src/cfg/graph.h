// Address-keyed directed graph — the CFG representation of Algorithms 1 & 2.
//
// Matches the paper's "cfg dict": adjacency from a start address to the set
// of end addresses. Ordered containers keep iteration (and therefore DOT
// output and weight assessment) deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace leaps::cfg {

class AddressGraph {
 public:
  using Address = std::uint64_t;
  using EdgeMap = std::map<Address, std::set<Address>>;

  /// ADDTO_CFG (Algorithm 1, lines 1-5). Returns true if the edge is new.
  bool add_edge(Address from, Address to);

  bool has_edge(Address from, Address to) const;

  /// Successor set of `from`; nullptr when `from` has no outgoing edges.
  const std::set<Address>* successors(Address from) const;

  /// CHECK_CFG (Algorithm 2, lines 7-17): true iff a path of length >= 1
  /// leads from `start` to `end`. Unlike the paper's pseudo-code recursion,
  /// this DFS carries a visited set, so it terminates on cyclic CFGs and
  /// returns the identical answer on acyclic ones.
  bool reachable(Address start, Address end) const;

  /// Every address appearing as an edge endpoint, ascending, deduplicated.
  std::vector<Address> nodes() const;

  /// GEN_CFG_DENSITY (Algorithm 2, lines 1-6): every endpoint of every edge,
  /// sorted, duplicates preserved (as in the paper's pseudo-code).
  std::vector<Address> density_array() const;

  std::size_t node_count() const;
  std::size_t edge_count() const { return edge_count_; }
  bool empty() const { return adjacency_.empty(); }

  const EdgeMap& adjacency() const { return adjacency_; }

  /// Graphviz rendering (Figure 4). `node_attrs`, when provided, returns
  /// extra attributes for a node (e.g. coloring payload-region nodes).
  void to_dot(std::ostream& os, const std::string& title,
              const std::function<std::string(Address)>& node_attrs = {}) const;

 private:
  EdgeMap adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace leaps::cfg
