#include "attrib/matcher.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <stdexcept>
#include <string>

#include "trace/intern.h"
#include "util/strings.h"

namespace leaps::attrib {

namespace {

/// Count of `want` entries present in sorted-unique `have`.
template <typename T>
std::size_t intersect_count(const std::vector<T>& want,
                            const std::vector<T>& have) {
  std::size_t n = 0;
  auto it = have.begin();
  for (const T& w : want) {
    it = std::lower_bound(it, have.end(), w);
    if (it == have.end()) break;
    if (*it == w) ++n;
  }
  return n;
}

/// Predicate coverage of a window: matched atoms / total atoms, where
/// the atoms are the node's event types plus its funcs (or its libs when
/// the signature carries no func predicates). Zero unless at least one
/// event type matches — the type is the mandatory signal; Lib/Func
/// refine it.
double node_coverage(const TechniqueNode& node, const WindowEvidence& w) {
  const std::size_t type_hits = intersect_count(node.event_types, w.event_types);
  if (type_hits == 0) return 0.0;
  std::size_t atoms = node.event_types.size();
  std::size_t hits = type_hits;
  if (!node.funcs.empty()) {
    atoms += node.funcs.size();
    const std::size_t func_hits = intersect_count(node.funcs, w.funcs);
    if (func_hits == 0) return 0.0;
    hits += func_hits;
  } else if (!node.libs.empty()) {
    atoms += node.libs.size();
    const std::size_t lib_hits = intersect_count(node.libs, w.libs);
    if (lib_hits == 0) return 0.0;
    hits += lib_hits;
  }
  return static_cast<double>(hits) / static_cast<double>(atoms);
}

constexpr double kNodeWeight = 0.7;
constexpr double kEdgeWeight = 0.3;

/// Minimal JSON scanning for the audit stream's fixed record shape (the
/// writer is serve/audit.cc; this is not a general JSON parser).
struct JsonScanError {
  std::string what;
};

std::string_view find_value(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) {
    throw JsonScanError{"missing key '" + std::string(key) + "'"};
  }
  return line.substr(pos + needle.size());
}

double parse_number(std::string_view v) {
  std::size_t end = 0;
  while (end < v.size() &&
         (std::isdigit(static_cast<unsigned char>(v[end])) != 0 ||
          v[end] == '-' || v[end] == '+' || v[end] == '.' || v[end] == 'e' ||
          v[end] == 'E')) {
    ++end;
  }
  if (end == 0) throw JsonScanError{"expected a number"};
  try {
    return std::stod(std::string(v.substr(0, end)));
  } catch (const std::exception&) {
    throw JsonScanError{"bad number '" + std::string(v.substr(0, end)) + "'"};
  }
}

std::vector<std::string> parse_string_array(std::string_view v) {
  if (v.empty() || v.front() != '[') throw JsonScanError{"expected an array"};
  std::vector<std::string> out;
  std::size_t i = 1;
  while (i < v.size() && v[i] != ']') {
    if (v[i] == ',' || v[i] == ' ') {
      ++i;
      continue;
    }
    if (v[i] != '"') throw JsonScanError{"expected a string element"};
    std::string s;
    ++i;
    while (i < v.size() && v[i] != '"') {
      if (v[i] == '\\') {
        ++i;
        if (i >= v.size()) break;
        switch (v[i]) {
          case 'n': s.push_back('\n'); break;
          case 't': s.push_back('\t'); break;
          case 'r': s.push_back('\r'); break;
          default: s.push_back(v[i]); break;  // \" \\ \/ pass through
        }
      } else {
        s.push_back(v[i]);
      }
      ++i;
    }
    if (i >= v.size()) throw JsonScanError{"unterminated string"};
    ++i;  // closing quote
    out.push_back(std::move(s));
  }
  if (i >= v.size()) throw JsonScanError{"unterminated array"};
  return out;
}

}  // namespace

WindowEvidence evidence_from_events(std::size_t window_index,
                                    double decision_value,
                                    const trace::PartitionedEvent* events,
                                    std::size_t count) {
  WindowEvidence out;
  out.window_index = window_index;
  out.decision_value = decision_value;
  for (std::size_t i = 0; i < count; ++i) {
    const trace::PartitionedEvent& e = events[i];
    out.event_types.push_back(e.type);
    for (std::string& lib :
         trace::TokenTable::derive_lib_set(e.system_stack)) {
      out.libs.push_back(std::move(lib));
    }
    for (std::string& func :
         trace::TokenTable::derive_func_set(e.system_stack)) {
      out.funcs.push_back(std::move(func));
    }
  }
  std::sort(out.event_types.begin(), out.event_types.end());
  out.event_types.erase(
      std::unique(out.event_types.begin(), out.event_types.end()),
      out.event_types.end());
  std::sort(out.libs.begin(), out.libs.end());
  out.libs.erase(std::unique(out.libs.begin(), out.libs.end()),
                 out.libs.end());
  std::sort(out.funcs.begin(), out.funcs.end());
  out.funcs.erase(std::unique(out.funcs.begin(), out.funcs.end()),
                  out.funcs.end());
  return out;
}

util::StatusOr<std::vector<WindowEvidence>> evidence_from_audit_jsonl(
    std::istream& is) {
  std::vector<WindowEvidence> out;
  std::string line;
  std::size_t lineno = 0;
  try {
    while (std::getline(is, line)) {
      ++lineno;
      if (util::trim(line).empty()) continue;
      const std::string_view v(line);
      if (static_cast<int>(parse_number(find_value(v, "label"))) != -1) {
        continue;  // benign window; attribution consumes flagged ones
      }
      WindowEvidence w;
      w.window_index =
          static_cast<std::size_t>(parse_number(find_value(v, "window")));
      w.decision_value = parse_number(find_value(v, "decision_value"));
      const std::string_view evidence = find_value(v, "evidence");
      w.event_types.reserve(8);
      for (const std::string& name :
           parse_string_array(find_value(evidence, "event_types"))) {
        const auto type = trace::event_type_from_name(name);
        if (!type) throw JsonScanError{"unknown event type '" + name + "'"};
        w.event_types.push_back(*type);
      }
      w.libs = parse_string_array(find_value(evidence, "libs"));
      w.funcs = parse_string_array(find_value(evidence, "funcs"));
      std::sort(w.event_types.begin(), w.event_types.end());
      std::sort(w.libs.begin(), w.libs.end());
      std::sort(w.funcs.begin(), w.funcs.end());
      out.push_back(std::move(w));
    }
  } catch (const JsonScanError& e) {
    return util::corrupt_input("audit JSONL record at line " +
                               std::to_string(lineno) + ": " + e.what);
  } catch (const std::bad_alloc&) {
    return util::resource_exhausted("audit JSONL parse: allocation failed");
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const WindowEvidence& a, const WindowEvidence& b) {
                     return a.window_index < b.window_index;
                   });
  return out;
}

AttributionVerdict match_signature(
    const CampaignSignature& sig,
    const std::vector<WindowEvidence>& evidence) {
  AttributionVerdict out;
  out.signature = sig.name;
  out.nodes_total = sig.nodes.size();
  out.edges_total = sig.edges.size();
  if (sig.nodes.empty()) return out;

  // assigned[i] = evidence position of node i's window, npos if none.
  constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> assigned(sig.nodes.size(), kUnassigned);
  std::vector<double> coverage(sig.nodes.size(), 0.0);
  const auto node_pos = [&sig](std::uint32_t id) -> std::size_t {
    for (std::size_t i = 0; i < sig.nodes.size(); ++i) {
      if (sig.nodes[i].id == id) return i;
    }
    return static_cast<std::size_t>(-1);
  };

  for (std::size_t i = 0; i < sig.nodes.size(); ++i) {
    const TechniqueNode& node = sig.nodes[i];
    std::size_t best = kUnassigned;
    double best_cov = 0.0;
    for (std::size_t w = 0; w < evidence.size(); ++w) {
      bool admissible = true;
      for (const SignatureEdge& e : sig.edges) {
        if (e.to != node.id) continue;
        const std::size_t from = node_pos(e.from);
        if (from == static_cast<std::size_t>(-1) ||
            assigned[from] == kUnassigned) {
          continue;  // predecessor not (yet) placed: no constraint
        }
        if (w <= assigned[from] ||
            (e.max_gap_windows > 0 &&
             w - assigned[from] > e.max_gap_windows)) {
          admissible = false;
          break;
        }
      }
      if (!admissible) continue;
      const double cov = node_coverage(node, evidence[w]);
      if (cov > best_cov) {
        best_cov = cov;
        best = w;
      }
    }
    if (best != kUnassigned) {
      assigned[i] = best;
      coverage[i] = best_cov;
      ++out.nodes_matched;
    }
  }

  double node_sum = 0.0;
  bool any = false;
  std::size_t first = 0;
  std::size_t last = 0;
  for (std::size_t i = 0; i < sig.nodes.size(); ++i) {
    node_sum += coverage[i];
    if (assigned[i] == kUnassigned) continue;
    const std::size_t w = evidence[assigned[i]].window_index;
    if (!any || w < first) first = w;
    if (!any || w > last) last = w;
    any = true;
  }
  out.first_window = first;
  out.last_window = last;

  for (const SignatureEdge& e : sig.edges) {
    const std::size_t from = node_pos(e.from);
    const std::size_t to = node_pos(e.to);
    if (from == static_cast<std::size_t>(-1) ||
        to == static_cast<std::size_t>(-1)) {
      continue;
    }
    if (assigned[from] == kUnassigned || assigned[to] == kUnassigned) continue;
    if (assigned[to] > assigned[from] &&
        (e.max_gap_windows == 0 ||
         assigned[to] - assigned[from] <= e.max_gap_windows)) {
      ++out.edges_satisfied;
    }
  }

  const double node_frac = node_sum / static_cast<double>(sig.nodes.size());
  const double edge_frac =
      sig.edges.empty() ? 1.0
                        : static_cast<double>(out.edges_satisfied) /
                              static_cast<double>(sig.edges.size());
  out.score = kNodeWeight * node_frac + kEdgeWeight * edge_frac;
  return out;
}

std::vector<AttributionVerdict> attribute(
    const SignatureLibrary& library,
    const std::vector<WindowEvidence>& evidence) {
  std::vector<AttributionVerdict> out;
  out.reserve(library.size());
  for (const CampaignSignature& sig : library.signatures()) {
    out.push_back(match_signature(sig, evidence));
  }
  std::sort(out.begin(), out.end(),
            [](const AttributionVerdict& a, const AttributionVerdict& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.signature < b.signature;
            });
  return out;
}

void FleetAttributor::observe(const serve::SessionKey& key,
                              std::size_t window_index, int label,
                              double decision_value,
                              const trace::PartitionedEvent* events,
                              std::size_t count) {
  if (label != -1) return;
  WindowEvidence evidence =
      evidence_from_events(window_index, decision_value, events, count);
  const std::lock_guard lock(mu_);
  evidence_[key].push_back(std::move(evidence));
  ++flagged_total_;
}

std::vector<FleetAttributor::SessionAttribution> FleetAttributor::snapshot(
    std::size_t top_k) const {
  std::map<serve::SessionKey, std::vector<WindowEvidence>> evidence;
  {
    const std::lock_guard lock(mu_);
    evidence = evidence_;
  }
  std::vector<SessionAttribution> out;
  out.reserve(evidence.size());
  for (const auto& [key, windows] : evidence) {
    SessionAttribution s;
    s.key = key;
    s.flagged_windows = windows.size();
    for (AttributionVerdict& v : attribute(*library_, windows)) {
      if (v.score < min_score_) continue;
      if (s.verdicts.size() >= top_k) break;
      s.verdicts.push_back(std::move(v));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t FleetAttributor::sessions() const {
  const std::lock_guard lock(mu_);
  return evidence_.size();
}

std::uint64_t FleetAttributor::flagged_total() const {
  const std::lock_guard lock(mu_);
  return flagged_total_;
}

}  // namespace leaps::attrib
