// Incremental subgraph matching of detector-flagged windows against a
// campaign-signature library.
//
// The attribution pipeline is detect-then-attribute: the detector flags
// windows (label −1); each flagged window is reduced to WindowEvidence —
// its {Event_Type, Lib, Func} projections plus the decision value — and
// a session's evidence sequence is matched against every signature in
// the library.
//
// Matching semantics (DESIGN.md §15): signature nodes are processed in
// listed (topological) order. A node is *assigned* the flagged window
// that maximizes predicate coverage among windows satisfying every edge
// from an already-assigned predecessor (strictly later, within the
// edge's gap bound); ties break to the earliest window. Coverage is the
// fraction of the node's predicate atoms (event types + funcs, or libs
// when the signature carries no funcs) present in the window. The
// verdict score is
//
//     0.7 · mean node coverage  +  0.3 · satisfied-edge fraction
//
// so a permuted decoy — reversed or rotated kill chain — loses on the
// ordering term even when its technique predicates still match, and a
// foreign campaign's signature loses on coverage. Ranking is (score
// desc, name asc): fully deterministic, independent of worker count,
// because each session's flagged windows arrive in window-index order
// regardless of how many workers the server runs (per-session FIFO).
//
// FleetAttributor is the online half: a WindowTap-shaped observer that
// collects flagged windows per serve session and re-matches the library
// incrementally as evidence arrives; leaps-serve surfaces its ranked
// AttributionVerdicts through --status-json.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "attrib/signature.h"
#include "serve/session.h"
#include "trace/partition.h"
#include "util/status.h"

namespace leaps::attrib {

/// One flagged window, reduced to what the matcher consumes. The
/// event_types/libs/funcs projections are sorted and unique (the same
/// recipes as trace::TokenTable::derive_lib_set/derive_func_set).
struct WindowEvidence {
  std::size_t window_index = 0;
  double decision_value = 0.0;
  std::vector<trace::EventType> event_types;
  std::vector<std::string> libs;
  std::vector<std::string> funcs;
};

/// Builds evidence from a flagged window's events (the WindowTap form).
WindowEvidence evidence_from_events(std::size_t window_index,
                                    double decision_value,
                                    const trace::PartitionedEvent* events,
                                    std::size_t count);

/// Reads flagged-window evidence back out of a serve/audit.h JSONL
/// stream (the offline leaps-attrib input). Records are keyed on the
/// "evidence" object the audit stream embeds; benign records (label 1)
/// are skipped. kCorruptInput on records that do not parse.
util::StatusOr<std::vector<WindowEvidence>> evidence_from_audit_jsonl(
    std::istream& is);

/// One ranked attribution claim.
struct AttributionVerdict {
  std::string signature;
  double score = 0.0;
  std::size_t nodes_matched = 0;
  std::size_t nodes_total = 0;
  std::size_t edges_satisfied = 0;
  std::size_t edges_total = 0;
  /// Window index range of the assigned nodes (0/0 when none matched).
  std::size_t first_window = 0;
  std::size_t last_window = 0;
};

/// Matches one signature against a session's evidence (which must be in
/// window-index order, as both the tap and the audit stream deliver it).
AttributionVerdict match_signature(const CampaignSignature& sig,
                                   const std::vector<WindowEvidence>& evidence);

/// Every signature in the library, ranked (score desc, name asc).
std::vector<AttributionVerdict> attribute(
    const SignatureLibrary& library,
    const std::vector<WindowEvidence>& evidence);

/// Per-session attribution state for a serving fleet. Thread-safe; the
/// tap path appends evidence under one mutex and verdict snapshots
/// re-run the matcher on demand (flagged windows are rare relative to
/// traffic, so collection — not matching — is the hot path).
class FleetAttributor {
 public:
  /// The attributor keeps a reference to `library`; it must outlive it.
  explicit FleetAttributor(const SignatureLibrary* library,
                           double min_score = 0.0)
      : library_(library), min_score_(min_score) {}

  /// WindowTap-shaped observer: records flagged (label −1) windows,
  /// ignores benign ones. Install via DetectionServer::add_window_tap.
  void observe(const serve::SessionKey& key, std::size_t window_index,
               int label, double decision_value,
               const trace::PartitionedEvent* events, std::size_t count);

  struct SessionAttribution {
    serve::SessionKey key;
    std::size_t flagged_windows = 0;
    /// Ranked verdicts with score ≥ min_score (at most `top_k`).
    std::vector<AttributionVerdict> verdicts;
  };

  /// Ranked verdicts for every session with flagged windows, key-sorted.
  std::vector<SessionAttribution> snapshot(std::size_t top_k = 3) const;

  std::size_t sessions() const;
  std::uint64_t flagged_total() const;

 private:
  const SignatureLibrary* library_;
  const double min_score_;
  mutable std::mutex mu_;
  std::map<serve::SessionKey, std::vector<WindowEvidence>> evidence_;
  std::uint64_t flagged_total_ = 0;
};

}  // namespace leaps::attrib
