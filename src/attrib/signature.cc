#include "attrib/signature.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/behavior.h"
#include "util/strings.h"

namespace leaps::attrib {

namespace {

void sort_unique(std::vector<std::string>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

void write_list(std::ostream& os, const std::vector<std::string>& v) {
  if (v.empty()) {
    os << '-';
    return;
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ',';
    os << v[i];
  }
}

/// Internal parse error carrying the 1-based line number.
struct SigError {
  std::size_t line;
  std::string what;
};

std::vector<std::string_view> parse_list(std::string_view v) {
  if (v == "-") return {};
  return util::split(v, ',');
}

}  // namespace

void write_signature(const CampaignSignature& sig, std::ostream& os) {
  os << "# LEAPS campaign signature (see DESIGN.md §15)\n";
  os << "SIGNATURE " << sig.name << '\n';
  for (const TechniqueNode& n : sig.nodes) {
    os << "NODE " << n.id << ' ' << n.name << " TYPES ";
    for (std::size_t i = 0; i < n.event_types.size(); ++i) {
      if (i > 0) os << ',';
      os << trace::event_type_name(n.event_types[i]);
    }
    os << " LIBS ";
    write_list(os, n.libs);
    os << " FUNCS ";
    write_list(os, n.funcs);
    os << '\n';
  }
  for (const SignatureEdge& e : sig.edges) {
    os << "EDGE " << e.from << ' ' << e.to << " GAP " << e.max_gap_windows
       << '\n';
  }
}

std::string signature_to_string(const CampaignSignature& sig) {
  std::ostringstream os;
  write_signature(sig, os);
  return os.str();
}

util::StatusOr<CampaignSignature> read_signature(std::istream& is) {
  CampaignSignature sig;
  std::string raw;
  std::size_t lineno = 0;
  try {
    const auto fail = [&lineno](const std::string& what) {
      throw SigError{lineno, what};
    };
    const auto parse_u32 = [&](std::string_view s) -> std::uint32_t {
      std::uint64_t v = 0;
      if (s.empty()) fail("empty number");
      for (char c : s) {
        if (c < '0' || c > '9') fail("bad number '" + std::string(s) + "'");
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > 0xffffffffULL) fail("number out of range");
      }
      return static_cast<std::uint32_t>(v);
    };
    while (std::getline(is, raw)) {
      ++lineno;
      const std::string_view line = util::trim(raw);
      if (line.empty() || line.front() == '#') continue;
      const auto tok = util::split_ws(line);
      if (tok[0] == "SIGNATURE") {
        if (tok.size() != 2) fail("SIGNATURE takes exactly one name");
        if (!sig.name.empty()) fail("duplicate SIGNATURE record");
        sig.name = std::string(tok[1]);
      } else if (tok[0] == "NODE") {
        if (sig.name.empty()) fail("NODE before SIGNATURE");
        if (tok.size() != 9 || tok[3] != "TYPES" || tok[5] != "LIBS" ||
            tok[7] != "FUNCS") {
          fail("NODE shape is: NODE <id> <name> TYPES t,.. LIBS l,..|- "
               "FUNCS f,..|-");
        }
        TechniqueNode n;
        n.id = parse_u32(tok[1]);
        for (const TechniqueNode& seen : sig.nodes) {
          if (seen.id == n.id) fail("duplicate node id");
        }
        n.name = std::string(tok[2]);
        for (const std::string_view t : parse_list(tok[4])) {
          const auto type = trace::event_type_from_name(t);
          if (!type) fail("unknown event type '" + std::string(t) + "'");
          n.event_types.push_back(*type);
        }
        if (n.event_types.empty()) fail("NODE without event types");
        std::sort(n.event_types.begin(), n.event_types.end());
        n.event_types.erase(
            std::unique(n.event_types.begin(), n.event_types.end()),
            n.event_types.end());
        for (const std::string_view l : parse_list(tok[6])) {
          n.libs.emplace_back(l);
        }
        sort_unique(n.libs);
        for (const std::string_view f : parse_list(tok[8])) {
          if (f.find('!') == std::string_view::npos) {
            fail("FUNCS entries are module-qualified (lib!func)");
          }
          n.funcs.emplace_back(f);
        }
        sort_unique(n.funcs);
        sig.nodes.push_back(std::move(n));
      } else if (tok[0] == "EDGE") {
        if (sig.name.empty()) fail("EDGE before SIGNATURE");
        if (tok.size() != 5 || tok[3] != "GAP") {
          fail("EDGE shape is: EDGE <from> <to> GAP <windows>");
        }
        SignatureEdge e;
        e.from = parse_u32(tok[1]);
        e.to = parse_u32(tok[2]);
        e.max_gap_windows = parse_u32(tok[4]);
        if (e.from == e.to) fail("self-edge");
        const auto has = [&sig](std::uint32_t id) {
          for (const TechniqueNode& n : sig.nodes) {
            if (n.id == id) return true;
          }
          return false;
        };
        if (!has(e.from) || !has(e.to)) fail("edge references missing node");
        sig.edges.push_back(e);
      } else {
        fail("unknown record '" + std::string(tok[0]) + "'");
      }
    }
    if (sig.name.empty()) {
      throw SigError{lineno, "missing SIGNATURE record"};
    }
    if (sig.nodes.empty()) {
      throw SigError{lineno, "signature without nodes"};
    }
  } catch (const SigError& e) {
    return util::corrupt_input("signature parse error at line " +
                               std::to_string(e.line) + ": " + e.what);
  } catch (const std::bad_alloc&) {
    return util::resource_exhausted("signature parse: allocation failed");
  }
  return sig;
}

CampaignSignature signature_from_campaign(const sim::CampaignSpec& spec) {
  CampaignSignature sig;
  sig.name = spec.name;
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    const sim::CampaignStageSpec& stage = spec.stages[s];
    const sim::ProgramSpec pspec = sim::campaign_stage_payload_spec(spec, stage);
    TechniqueNode node;
    node.id = static_cast<std::uint32_t>(s);
    node.name = std::string(sim::campaign_stage_name(stage.stage));
    for (const auto& [kind, weight] : pspec.mix) {
      (void)weight;
      // Restrict to the payload's chain style when the action has
      // variants of it — the same fallback BehaviorTable::variants uses,
      // so the predicate covers exactly the stacks the stage can emit.
      const auto& all = sim::action_variants(kind);
      bool any_styled = false;
      for (const sim::ActionVariant& v : all) {
        if (v.style == pspec.chain_style) any_styled = true;
      }
      for (const sim::ActionVariant& v : all) {
        if (any_styled && v.style != pspec.chain_style) continue;
        node.event_types.push_back(v.event_type);
        for (const sim::SystemFrameSpec& f : v.frames) {
          node.libs.emplace_back(f.lib);
          node.funcs.push_back(std::string(f.lib) + "!" + std::string(f.func));
        }
      }
    }
    std::sort(node.event_types.begin(), node.event_types.end());
    node.event_types.erase(
        std::unique(node.event_types.begin(), node.event_types.end()),
        node.event_types.end());
    sort_unique(node.libs);
    sort_unique(node.funcs);
    sig.nodes.push_back(std::move(node));
  }
  for (std::size_t s = 0; s + 1 < spec.stages.size(); ++s) {
    SignatureEdge e;
    e.from = static_cast<std::uint32_t>(s);
    e.to = static_cast<std::uint32_t>(s + 1);
    e.max_gap_windows = 0;
    sig.edges.push_back(e);
  }
  return sig;
}

std::vector<CampaignSignature> decoy_signatures(const CampaignSignature& sig) {
  std::vector<CampaignSignature> out;

  // The kill chain run backwards: same techniques, reversed ordering.
  CampaignSignature reversed = sig;
  reversed.name = sig.name + "__reversed";
  for (SignatureEdge& e : reversed.edges) std::swap(e.from, e.to);
  out.push_back(std::move(reversed));

  // Techniques rotated one stage out of phase: node ids/edges keep the
  // chain shape but each position carries the next stage's predicates.
  if (sig.nodes.size() > 1) {
    CampaignSignature rotated = sig;
    rotated.name = sig.name + "__rotated";
    for (std::size_t i = 0; i < sig.nodes.size(); ++i) {
      const TechniqueNode& src = sig.nodes[(i + 1) % sig.nodes.size()];
      rotated.nodes[i].name = src.name;
      rotated.nodes[i].event_types = src.event_types;
      rotated.nodes[i].libs = src.libs;
      rotated.nodes[i].funcs = src.funcs;
    }
    out.push_back(std::move(rotated));
  }
  return out;
}

void SignatureLibrary::add(CampaignSignature sig) {
  const auto it = std::lower_bound(
      sigs_.begin(), sigs_.end(), sig,
      [](const CampaignSignature& a, const CampaignSignature& b) {
        return a.name < b.name;
      });
  if (it != sigs_.end() && it->name == sig.name) {
    *it = std::move(sig);
  } else {
    sigs_.insert(it, std::move(sig));
  }
}

util::Status SignatureLibrary::load_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return util::not_found("signature directory not found: " + dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".sig") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) return util::not_found("cannot list " + dir + ": " + ec.message());
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    return util::not_found("no .sig files under " + dir);
  }
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) return util::not_found("cannot open " + path);
    util::StatusOr<CampaignSignature> sig = read_signature(in);
    if (!sig.ok()) {
      return util::corrupt_input(path + ": " + sig.status().message());
    }
    add(*std::move(sig));
  }
  return util::ok_status();
}

}  // namespace leaps::attrib
