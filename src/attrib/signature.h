// Campaign signatures: what the attribution subsystem matches against.
//
// A CampaignSignature is a small DAG of technique nodes over
// {Event_Type, Lib, Func} predicates with ordering/time-gap edges — the
// detect-then-attribute half of the cascade APT-attribution setting
// (arxiv 2410.22602): LEAPS flags the windows, the signature library
// names the campaign. A node describes one technique ("foothold":
// FileWrite/MemProtect through direct ntdll chains); an edge (a → b)
// asserts that technique b was first observed in a strictly later
// flagged window than technique a, optionally within `max_gap_windows`.
//
// Signatures live in a plain-text `.sig` format (one per file, '#'
// comments), parsed behind the same StatusOr discipline as the trace
// dialects:
//
//   SIGNATURE campaign_putty_apt
//   NODE 0 recon TYPES ProcessCreate,RegistryRead LIBS ntdll.dll
//     FUNCS ntdll.dll!NtQuerySystemInformation
//   EDGE 0 1 GAP 0
//
// Empty LIBS/FUNCS predicate lists are written as `-` (match any).
// `signature_from_campaign` derives the ground-truth signature for a
// sim::CampaignSpec from the same action-variant tables the executor
// fabricates stacks from, and `decoy_signatures` derives the permuted
// negatives (reversed edge order, rotated node predicates) the
// acceptance tests score against.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/campaign.h"
#include "trace/event.h"
#include "util/status.h"

namespace leaps::attrib {

/// One technique node: a window matches it when the window's evidence
/// intersects `event_types` and (when non-empty) `libs` / `funcs`.
struct TechniqueNode {
  std::uint32_t id = 0;
  std::string name;  // e.g. "recon"
  std::vector<trace::EventType> event_types;  // sorted, unique
  std::vector<std::string> libs;              // sorted, unique; empty = any
  std::vector<std::string> funcs;             // "lib!func"; empty = any
};

/// Ordering edge: `to` must first match strictly after `from`, and —
/// when max_gap_windows > 0 — within that many flagged windows.
struct SignatureEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t max_gap_windows = 0;  // 0 = unbounded
};

struct CampaignSignature {
  std::string name;
  std::vector<TechniqueNode> nodes;  // listed in topological order
  std::vector<SignatureEdge> edges;
};

/// Serializes one signature in the `.sig` text format.
void write_signature(const CampaignSignature& sig, std::ostream& os);
std::string signature_to_string(const CampaignSignature& sig);

/// Parses one `.sig` document; kCorruptInput (with the 1-based line
/// number) on malformed input — unknown event-type names, edges that
/// reference missing nodes, duplicate node ids all reject.
util::StatusOr<CampaignSignature> read_signature(std::istream& is);

/// Derives the ground-truth signature of a campaign: one node per stage,
/// predicates taken from the action-variant table for exactly the
/// {ActionKind, ChainStyle} set the stage payload draws from, and one
/// ordering edge per consecutive stage pair.
CampaignSignature signature_from_campaign(const sim::CampaignSpec& spec);

/// Deterministic permuted negatives for `sig`: `<name>__reversed` (edge
/// directions flipped — the kill chain run backwards) and
/// `<name>__rotated` (node predicates rotated one stage out of phase).
std::vector<CampaignSignature> decoy_signatures(const CampaignSignature& sig);

/// An in-memory signature library (sorted by name, names unique).
class SignatureLibrary {
 public:
  /// Adds a signature; a later add with the same name replaces it.
  void add(CampaignSignature sig);

  /// Loads every `*.sig` file under `dir` (non-recursive, name order).
  /// Fails with the first file's parse error; kNotFound when the
  /// directory does not exist or holds no signatures.
  util::Status load_dir(const std::string& dir);

  const std::vector<CampaignSignature>& signatures() const { return sigs_; }
  bool empty() const { return sigs_.empty(); }
  std::size_t size() const { return sigs_.size(); }

 private:
  std::vector<CampaignSignature> sigs_;  // name-sorted
};

}  // namespace leaps::attrib
