// Verdict provenance: a bounded JSONL audit stream for anomalous windows.
//
// Security operators triaging a malicious verdict need more than a label —
// they need *why*: how far below the threshold the decision value fell,
// which support vectors pulled it there, and which code addresses the
// CFG-weight assessment considered least benign (NVision-PA's case for
// behavior-level visibility into process logs). AuditLog answers that as
// one JSON object per anomalous window:
//
//   {"window":12,"host":"web1","pid":4242,"profile":"default","label":-1,
//    "decision_value":-0.41,"threshold":0.0,"events":40,
//    "sv_contributions":[{"sv":7,"coefficient":-9.8,"kernel":0.92,
//                         "contribution":-9.02},...],
//    "cfg_terms":[{"address":"0x404f10","benignity":0.0},...]}
//
// Backpressure is drop-not-block: submit() runs on worker threads under
// the session mutex, so it only copies the window's events into a bounded
// queue (capacity `queue_capacity`); a full queue drops the record and
// bumps a counter (leaps_serve_audit_dropped_total) — auditing must never
// stall classification. The expensive part — one kernel evaluation per
// support vector, CFG node benignity per frame, JSON formatting, file I/O
// — happens on a dedicated writer thread against the detector snapshot
// the session classified with (records stay correct across hot swaps).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/session.h"
#include "trace/partition.h"
#include "util/status.h"

namespace leaps::serve {

struct AuditOptions {
  /// JSONL output path ("-" = stdout).
  std::string path;
  /// Max records buffered for the writer; beyond this, submit() drops.
  std::size_t queue_capacity = 1024;
  /// Support-vector contributions and CFG terms kept per record.
  std::size_t top_k = 3;
};

class AuditLog {
 public:
  explicit AuditLog(AuditOptions options);
  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Opens the output and spawns the writer thread.
  util::Status start();

  /// Flushes queued records and joins the writer. Idempotent.
  void stop();

  /// Enqueues one anomalous-window record (drop-not-block). Cheap: copies
  /// `count` events and takes the queue mutex briefly. `detector` is the
  /// model that scored the window; explanation runs against it later.
  void submit(const SessionKey& key, const std::string& profile,
              std::size_t window_index, int label, double decision_value,
              const trace::PartitionedEvent* events, std::size_t count,
              std::shared_ptr<const core::Detector> detector);

  std::uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const AuditOptions& options() const { return options_; }

  /// Renders one record (exposed for tests; the writer thread calls it).
  static std::string format_record(
      const SessionKey& key, const std::string& profile,
      std::size_t window_index, int label, double decision_value,
      const std::vector<trace::PartitionedEvent>& events,
      const core::Detector& detector, std::size_t top_k);

 private:
  struct Record {
    SessionKey key;
    std::string profile;
    std::size_t window_index = 0;
    int label = 0;
    double decision_value = 0.0;
    std::vector<trace::PartitionedEvent> events;
    std::shared_ptr<const core::Detector> detector;
  };

  void writer_loop();

  const AuditOptions options_;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Record> queue_;   // guarded by mu_
  bool stop_ = false;          // guarded by mu_
  bool started_ = false;       // guarded by mu_
  std::ofstream file_;         // writer thread only (after start())
  std::ostream* out_ = nullptr;
  std::thread writer_;
};

}  // namespace leaps::serve
