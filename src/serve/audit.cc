#include "serve/audit.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <utility>

#include "cfg/weight.h"
#include "ml/svm.h"
#include "obs/registry.h"
#include "trace/intern.h"

namespace leaps::serve {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

obs::Counter& records_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "leaps_serve_audit_records_total",
      "anomalous-verdict audit records written");
  return c;
}

obs::Counter& dropped_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "leaps_serve_audit_dropped_total",
      "audit records dropped because the writer queue was full");
  return c;
}

void append_double(std::ostringstream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

AuditLog::AuditLog(AuditOptions options) : options_(std::move(options)) {}

AuditLog::~AuditLog() { stop(); }

util::Status AuditLog::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (started_) return util::ok_status();
  if (options_.path == "-") {
    out_ = &std::cout;
  } else {
    file_.open(options_.path, std::ios::out | std::ios::trunc);
    if (!file_.is_open()) {
      return util::unavailable("audit: cannot open '" + options_.path + "'");
    }
    out_ = &file_;
  }
  stop_ = false;
  started_ = true;
  writer_ = std::thread([this] { writer_loop(); });
  return util::ok_status();
}

void AuditLog::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_.is_open()) file_.close();
  out_ = nullptr;
  started_ = false;
}

void AuditLog::submit(const SessionKey& key, const std::string& profile,
                      std::size_t window_index, int label,
                      double decision_value,
                      const trace::PartitionedEvent* events,
                      std::size_t count,
                      std::shared_ptr<const core::Detector> detector) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (started_ && !stop_ && queue_.size() < options_.queue_capacity) {
      Record r;
      r.key = key;
      r.profile = profile;
      r.window_index = window_index;
      r.label = label;
      r.decision_value = decision_value;
      r.events.assign(events, events + count);
      r.detector = std::move(detector);
      queue_.push_back(std::move(r));
      cv_.notify_one();
      return;
    }
  }
  dropped_.fetch_add(1, kRelaxed);
  dropped_counter().inc();
}

void AuditLog::writer_loop() {
  for (;;) {
    Record r;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      r = std::move(queue_.front());
      queue_.pop_front();
    }
    const std::string line =
        r.detector == nullptr
            ? std::string()
            : format_record(r.key, r.profile, r.window_index, r.label,
                            r.decision_value, r.events, *r.detector,
                            options_.top_k);
    if (!line.empty()) {
      // out_ is set before the writer spawns and cleared after it joins,
      // so the unguarded use here never races with start()/stop().
      (*out_) << line << "\n";
      out_->flush();
      written_.fetch_add(1, kRelaxed);
      records_counter().inc();
    }
  }
}

std::string AuditLog::format_record(
    const SessionKey& key, const std::string& profile,
    std::size_t window_index, int label, double decision_value,
    const std::vector<trace::PartitionedEvent>& events,
    const core::Detector& detector, std::size_t top_k) {
  std::ostringstream os;
  os << "{\"window\":" << window_index << ",\"host\":\"";
  append_json_escaped(os, key.host);
  os << "\",\"pid\":" << key.pid << ",\"profile\":\"";
  append_json_escaped(os, profile);
  os << "\",\"label\":" << label << ",\"decision_value\":";
  append_double(os, decision_value);
  os << ",\"threshold\":";
  append_double(os, detector.decision_threshold());
  os << ",\"events\":" << events.size();

  // Top-k support-vector contributions to f(x), against the scaled window
  // features — the same x the model scored.
  ml::FeatureVector raw;
  raw.reserve(3 * events.size());
  for (const trace::PartitionedEvent& e : events) {
    const core::EventTuple t = detector.preprocessor().tuple(e);
    raw.push_back(static_cast<double>(t.event_type));
    raw.push_back(t.lib_coord);
    raw.push_back(t.func_coord);
  }
  os << ",\"sv_contributions\":[";
  const ml::FeatureVector x = detector.scaler().transform(raw);
  const auto contributions = detector.model().top_contributions(x, top_k);
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    const auto& c = contributions[i];
    if (i > 0) os << ",";
    os << "{\"sv\":" << c.sv_index << ",\"coefficient\":";
    append_double(os, c.coefficient);
    os << ",\"kernel\":";
    append_double(os, c.kernel_value);
    os << ",\"contribution\":";
    append_double(os, c.contribution);
    os << "}";
  }
  os << "]";

  // The CFG-weight terms that dominated: the k least-benign application
  // addresses in the window, judged against the benign CFG the deployed
  // weights were assessed on. Empty when the detector carries no
  // ContinualState (pre-v2 model file).
  os << ",\"cfg_terms\":[";
  if (detector.continual() != nullptr) {
    const cfg::WeightAssessor assessor(detector.continual()->benign_cfg);
    std::map<std::uint64_t, double> benignity;
    for (const trace::PartitionedEvent& e : events) {
      for (const std::uint64_t addr : e.app_stack) {
        benignity.emplace(addr, assessor.node_benignity(addr));
      }
    }
    std::vector<std::pair<std::uint64_t, double>> terms(benignity.begin(),
                                                        benignity.end());
    std::sort(terms.begin(), terms.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    if (terms.size() > top_k) terms.resize(top_k);
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) os << ",";
      char addr[32];
      std::snprintf(addr, sizeof addr, "0x%llx",
                    static_cast<unsigned long long>(terms[i].first));
      os << "{\"address\":\"" << addr << "\",\"benignity\":";
      append_double(os, terms[i].second);
      os << "}";
    }
  }
  os << "]";

  // The window's {Event_Type, Lib, Func} projections — what the
  // attribution matcher (src/attrib/) consumes when replaying this
  // stream offline via leaps-attrib. Same sorted-unique recipes as the
  // TokenTable's derived sets.
  std::vector<std::string> types;
  std::vector<std::string> libs;
  std::vector<std::string> funcs;
  for (const trace::PartitionedEvent& e : events) {
    types.emplace_back(trace::event_type_name(e.type));
    for (std::string& lib : trace::TokenTable::derive_lib_set(e.system_stack)) {
      libs.push_back(std::move(lib));
    }
    for (std::string& func :
         trace::TokenTable::derive_func_set(e.system_stack)) {
      funcs.push_back(std::move(func));
    }
  }
  const auto emit_set = [&os](const char* name, std::vector<std::string>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    os << "\"" << name << "\":[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"";
      append_json_escaped(os, v[i]);
      os << "\"";
    }
    os << "]";
  };
  os << ",\"evidence\":{";
  emit_set("event_types", types);
  os << ",";
  emit_set("libs", libs);
  os << ",";
  emit_set("funcs", funcs);
  os << "}}";
  return os.str();
}

}  // namespace leaps::serve
