// DetectorRegistry: named, shared, hot-swappable detectors.
//
// Multi-tenant serving keys detectors by *profile* — one trained detector
// per monitored application (the paper trains per application; Section V-A).
// The registry is read-mostly: every session open takes a snapshot pointer,
// every operator reload swaps one in. Reads take a shared lock and copy a
// shared_ptr; a replaced detector stays alive until the last session
// holding its snapshot closes, so reloads never invalidate live sessions
// (RCU-flavored lifetime without the RCU machinery).
//
// A `const core::Detector` is immutable (see core/pipeline.h), which is
// what makes handing one pointer to many worker threads sound.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace leaps::serve {

class DetectorRegistry {
 public:
  /// Registers or replaces the detector for `profile`.
  void add(const std::string& profile,
           std::shared_ptr<const core::Detector> detector);

  /// Loads a persisted detector file (core::load_detector_file) under
  /// `profile`. Throws core::PersistError on malformed input.
  void load_file(const std::string& profile, const std::string& path);

  /// Snapshot of the current detector for `profile`; nullptr if absent.
  std::shared_ptr<const core::Detector> find(const std::string& profile) const;

  bool contains(const std::string& profile) const;
  bool erase(const std::string& profile);
  std::vector<std::string> profiles() const;
  std::size_t size() const;

  // --- shadow rollover (src/online/) ------------------------------------
  // A candidate detector rides alongside the active one for `profile`
  // until the evaluation decides: promote_shadow() publishes it with the
  // same RCU snapshot swap as add() (live sessions keep their pinned
  // detector; new sessions get the promoted one), rollback_shadow() moves
  // it to the profile's quarantine list so operators can inspect what was
  // rejected and why it never served.

  /// Stages `candidate` as the shadow for `profile`. False (no-op) when
  /// the profile is absent or already has a shadow in flight.
  bool begin_shadow(const std::string& profile,
                    std::shared_ptr<const core::Detector> candidate);
  /// The in-flight shadow candidate; nullptr when none.
  std::shared_ptr<const core::Detector> shadow_candidate(
      const std::string& profile) const;
  /// Publishes the shadow as the active detector. False when none staged.
  bool promote_shadow(const std::string& profile);
  /// Rejects the shadow, appending it to the quarantine list. False when
  /// none staged.
  bool rollback_shadow(const std::string& profile);
  std::size_t quarantined_count(const std::string& profile) const;
  /// Most recently quarantined candidate; nullptr when none.
  std::shared_ptr<const core::Detector> last_quarantined(
      const std::string& profile) const;
  /// Full quarantine list, oldest first (durability checkpoints fold it
  /// into the snapshot so rejected candidates survive restarts).
  std::vector<std::shared_ptr<const core::Detector>> quarantined_all(
      const std::string& profile) const;
  /// Re-appends a quarantined candidate during warm-restart recovery
  /// (same effect on staging as rollback_shadow, without needing a
  /// shadow in flight).
  void restore_quarantined(const std::string& profile,
                           std::shared_ptr<const core::Detector> candidate);

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const core::Detector>> detectors_;
  std::map<std::string, std::shared_ptr<const core::Detector>> shadows_;
  std::map<std::string, std::vector<std::shared_ptr<const core::Detector>>>
      quarantined_;
};

}  // namespace leaps::serve
