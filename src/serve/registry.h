// DetectorRegistry: named, shared, hot-swappable detectors.
//
// Multi-tenant serving keys detectors by *profile* — one trained detector
// per monitored application (the paper trains per application; Section V-A).
// The registry is read-mostly: every session open takes a snapshot pointer,
// every operator reload swaps one in. Reads take a shared lock and copy a
// shared_ptr; a replaced detector stays alive until the last session
// holding its snapshot closes, so reloads never invalidate live sessions
// (RCU-flavored lifetime without the RCU machinery).
//
// A `const core::Detector` is immutable (see core/pipeline.h), which is
// what makes handing one pointer to many worker threads sound.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace leaps::serve {

class DetectorRegistry {
 public:
  /// Registers or replaces the detector for `profile`.
  void add(const std::string& profile,
           std::shared_ptr<const core::Detector> detector);

  /// Loads a persisted detector file (core::load_detector_file) under
  /// `profile`. Throws core::PersistError on malformed input.
  void load_file(const std::string& profile, const std::string& path);

  /// Snapshot of the current detector for `profile`; nullptr if absent.
  std::shared_ptr<const core::Detector> find(const std::string& profile) const;

  bool contains(const std::string& profile) const;
  bool erase(const std::string& profile);
  std::vector<std::string> profiles() const;
  std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const core::Detector>> detectors_;
};

}  // namespace leaps::serve
