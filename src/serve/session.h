// Streaming detection sessions, keyed by (host, pid).
//
// One Session wraps one core::Detector::Stream: the online Testing Phase
// for one monitored process on one host. The session pins a snapshot of
// its profile's detector at open time (hot-swapping the registry affects
// only sessions opened afterwards — a session must not change classifiers
// mid-stream, or its window verdicts become incomparable).
//
// Sessions are fed by exactly one worker at a time in the server (events
// are sharded by session key), but feed_run() still takes the session
// mutex so that reports() and direct submit paths are race-free under
// ThreadSanitizer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "serve/registry.h"
#include "trace/partition.h"

namespace leaps::serve {

struct SessionKey {
  std::string host;
  std::uint32_t pid = 0;

  auto operator<=>(const SessionKey&) const = default;
  std::string to_string() const { return host + ":" + std::to_string(pid); }
};

/// One completed-window classification.
struct Verdict {
  std::size_t window_index = 0;
  int label = 0;  // +1 benign / -1 malicious
};

struct SessionReport {
  SessionKey key;
  std::string profile;
  std::size_t events_seen = 0;
  std::size_t pending_events = 0;  // tail not yet forming a full window
  std::size_t windows = 0;
  std::size_t benign_windows = 0;
  std::size_t malicious_windows = 0;
  double malicious_fraction = 0.0;
};

class Session {
 public:
  Session(SessionKey key, std::string profile,
          std::shared_ptr<const core::Detector> detector);

  /// Feeds one event; returns a verdict when it completes a window.
  std::optional<Verdict> feed(const trace::PartitionedEvent& event);

  /// Feeds a run of events under one lock (the worker batch path),
  /// appending any completed-window verdicts to `out`. Returns the number
  /// of verdicts appended.
  std::size_t feed_run(const trace::PartitionedEvent* const* events,
                       std::size_t count, std::vector<Verdict>& out);

  SessionReport report() const;
  const SessionKey& key() const { return key_; }
  const std::string& profile() const { return profile_; }
  /// Stable hash of the key — the server's shard selector.
  std::size_t shard_hash() const { return shard_hash_; }

 private:
  const SessionKey key_;
  const std::string profile_;
  const std::size_t shard_hash_;
  const std::shared_ptr<const core::Detector> detector_;
  mutable std::mutex mu_;
  core::Detector::Stream stream_;
};

/// Owns the live sessions; thread-safe open/find/close.
class SessionManager {
 public:
  /// The registry must outlive the manager.
  explicit SessionManager(const DetectorRegistry* registry);

  /// Opens a session for `key` classified by `profile`'s detector.
  /// Returns the existing session if one is already open for `key` (its
  /// profile wins); nullptr if the registry has no such profile.
  std::shared_ptr<Session> open(const SessionKey& key,
                                const std::string& profile);

  std::shared_ptr<Session> find(const SessionKey& key) const;

  /// Removes the session and returns its final report; nullopt if absent.
  /// The Session object itself lives until the last queued event referring
  /// to it has been processed (shared_ptr ownership).
  std::optional<SessionReport> close(const SessionKey& key);

  std::size_t active() const;
  /// Reports for every live session, in key order.
  std::vector<SessionReport> reports() const;

 private:
  const DetectorRegistry* registry_;
  mutable std::shared_mutex mu_;
  std::map<SessionKey, std::shared_ptr<Session>> sessions_;
};

}  // namespace leaps::serve
