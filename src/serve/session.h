// Streaming detection sessions, keyed by (host, pid).
//
// One Session wraps one core::Detector::Stream: the online Testing Phase
// for one monitored process on one host. The session pins a snapshot of
// its profile's detector at open time (hot-swapping the registry affects
// only sessions opened afterwards — a session must not change classifiers
// mid-stream, or its window verdicts become incomparable).
//
// Hot-path form: the worker path feeds trace::CompactEvent batches
// (interned at the ingest boundary, see trace/intern.h); strings never
// reach feed_run. Tapped windows are materialized — exactly — from the
// TokenTable only when a WindowTap/audit consumer is installed.
//
// Failure model: classification runs against adversarial event streams,
// so feed_run guards every event. An event that throws (poison input, an
// injected fault) counts as *failed* and bumps the session's
// consecutive-failure counter; when that reaches the circuit-breaker
// threshold the session flips to SessionState::kQuarantined and all its
// further events are discarded-with-accounting. One hostile session can
// never take down a worker — or another session — with it.
//
// Sessions are fed by exactly one worker at a time in the server (events
// are sharded by session key), but feed_run() still takes the session
// mutex so that reports() and direct submit paths are race-free under
// ThreadSanitizer.
//
// SessionManager is sharded: the key space is split across N
// independently-locked shards (power of two, key-hash selected), so
// open/find/close on different shards never contend — the fleet-scale
// fabric's first requirement. Session objects themselves come from a
// freelist-backed slab pool (serve/slab.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "serve/registry.h"
#include "serve/slab.h"
#include "trace/intern.h"
#include "trace/partition.h"

namespace leaps::serve {

struct SessionKey {
  std::string host;
  std::uint32_t pid = 0;

  auto operator<=>(const SessionKey&) const = default;
  std::string to_string() const { return host + ":" + std::to_string(pid); }
};

enum class SessionState {
  kActive,
  kQuarantined,  // circuit breaker tripped; events discarded, accounted
};

/// One completed-window classification.
struct Verdict {
  std::size_t window_index = 0;
  int label = 0;  // +1 benign / -1 malicious
  /// SVM decision value f(x); label is `f >= decision_threshold`. The raw
  /// model-health signal: drift monitoring and the audit stream key on it.
  double decision_value = 0.0;
};

/// Observes every *completed* window on the worker path, with the raw
/// events that formed it — the feed of the online-learning accumulator
/// and drift monitor (src/online/). Called under the session mutex from
/// worker threads: must be thread-safe, cheap, and must not throw or call
/// back into the session. `events` points at `count` buffered copies valid
/// only for the call (materialized exactly from the interned form).
using WindowTap =
    std::function<void(const SessionKey& key, std::size_t window_index,
                       int label, double decision_value,
                       const trace::PartitionedEvent* events,
                       std::size_t count)>;

/// Receives one (active, shadow) verdict pair per window while a candidate
/// detector shadows a session, plus the accumulated per-window
/// classification cost of each model in nanoseconds. Same calling
/// constraints as WindowTap.
using ShadowSink = std::function<void(
    const SessionKey& key, int active_label, int shadow_label,
    std::uint64_t active_ns, std::uint64_t shadow_ns)>;

/// Per-event accounting for one guarded feed_run call.
/// processed + failed + skipped always equals the run length.
struct RunOutcome {
  std::size_t processed = 0;  // classified cleanly
  std::size_t failed = 0;     // threw; counted toward the circuit breaker
  std::size_t skipped = 0;    // discarded: session (already) quarantined
  bool newly_quarantined = false;  // this run tripped the breaker
};

struct SessionReport {
  SessionKey key;
  std::string profile;
  std::size_t events_seen = 0;
  std::size_t pending_events = 0;  // tail not yet forming a full window
  std::size_t windows = 0;
  std::size_t benign_windows = 0;
  std::size_t malicious_windows = 0;
  double malicious_fraction = 0.0;
  std::size_t failed_events = 0;
  bool quarantined = false;
};

class Session {
 public:
  Session(SessionKey key, std::string profile,
          std::shared_ptr<const core::Detector> detector);

  /// Feeds one event; returns a verdict when it completes a window.
  /// Unguarded (exceptions propagate) — the direct single-event path.
  /// Quarantined sessions ignore the event and return nullopt.
  std::optional<Verdict> feed(const trace::PartitionedEvent& event);

  /// Feeds a run of interned events under one lock (the worker batch
  /// path), appending any completed-window verdicts to `out`. Every event
  /// is individually guarded: one that throws is counted as failed, and
  /// `breaker_threshold` consecutive failures quarantine the session
  /// (0 disables the breaker — failures never quarantine).
  /// `tap`, when non-null, observes every completed window (see WindowTap);
  /// the session buffers the window's events only while a tap is passed.
  RunOutcome feed_run(std::span<const trace::CompactEvent> events,
                      std::vector<Verdict>& out,
                      std::size_t breaker_threshold,
                      const WindowTap* tap = nullptr);

  /// String-event compatibility shim (direct callers and tests): interns
  /// each event through the global TokenTable, then runs the compact
  /// path. Verdicts are byte-identical either way.
  RunOutcome feed_run(const trace::PartitionedEvent* const* events,
                      std::size_t count, std::vector<Verdict>& out,
                      std::size_t breaker_threshold,
                      const WindowTap* tap = nullptr);

  /// Attaches a candidate detector that classifies this session's traffic
  /// in parallel with the active one (shadow deploy). The shadow stream
  /// starts at the next window boundary so its verdicts stay
  /// window-for-window comparable with the active stream's; from then on
  /// every completed window reports an (active, shadow) verdict pair to
  /// `sink`. Returns false when a shadow is already attached. An event
  /// that makes the *shadow* throw detaches it (the active stream and the
  /// session are unaffected — a bad candidate must never hurt serving).
  bool attach_shadow(std::shared_ptr<const core::Detector> candidate,
                     std::shared_ptr<const ShadowSink> sink);
  /// Drops the shadow stream, if any. Returns true if one was attached.
  bool detach_shadow();
  bool has_shadow() const;

  SessionReport report() const;
  const SessionKey& key() const { return key_; }
  const std::string& profile() const { return profile_; }
  /// Cached `key().to_string()` — use this on hot paths (fault-point
  /// details, per-verdict logging) instead of rebuilding the string.
  const std::string& key_string() const { return key_string_; }
  /// The detector snapshot pinned at open time (never changes; see class
  /// comment). The audit stream borrows it to explain this session's
  /// verdicts against the exact model that produced them.
  const std::shared_ptr<const core::Detector>& detector() const {
    return detector_;
  }
  /// Stable hash of the key — the server's shard selector.
  std::size_t shard_hash() const { return shard_hash_; }

  SessionState state() const {
    return state_.load(std::memory_order_acquire);
  }
  bool quarantined() const { return state() == SessionState::kQuarantined; }
  /// Manually trips the breaker (defensive path / operator action).
  void quarantine() {
    state_.store(SessionState::kQuarantined, std::memory_order_release);
  }

  /// Last time an event reached this session (feed/feed_run), for idle
  /// eviction. Opening counts as activity.
  std::chrono::steady_clock::time_point last_active() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            last_active_.load(std::memory_order_acquire)));
  }

  /// The producer-side micro-batch stage (guarded by its own mutex so
  /// staging never contends with classification). submit() appends here
  /// and the server flushes a full stage into the shard queue as one
  /// EventBatch; see DetectionServer. Exposed as plain members for the
  /// server (same translation unit family), not for general use.
  std::mutex& stage_mutex() { return stage_mu_; }
  std::vector<trace::CompactEvent>& stage() { return stage_; }

 private:
  // Shadow-deploy state (guarded by mu_). The candidate's stream exists
  // from attach but only starts consuming events once `aligned` flips true
  // — at the first event that begins a fresh active window — so both
  // streams complete windows in lockstep.
  struct ShadowState {
    std::shared_ptr<const core::Detector> detector;
    core::Detector::Stream stream;
    std::shared_ptr<const ShadowSink> sink;
    bool aligned = false;
    std::uint64_t active_ns = 0;  // per-window classification cost
    std::uint64_t shadow_ns = 0;  // accumulators, reset on each pair

    ShadowState(std::shared_ptr<const core::Detector> d,
                std::shared_ptr<const ShadowSink> s)
        : detector(std::move(d)), stream(detector->stream()),
          sink(std::move(s)) {}
  };

  void touch() {
    last_active_.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_release);
  }

  const SessionKey key_;
  const std::string profile_;
  const std::string key_string_;  // cached fault-point detail
  const std::size_t shard_hash_;
  const std::shared_ptr<const core::Detector> detector_;
  const trace::TokenTable* table_;  // interning domain of compact events
  std::atomic<SessionState> state_{SessionState::kActive};
  std::atomic<std::chrono::steady_clock::duration::rep> last_active_;
  mutable std::mutex mu_;
  core::Detector::Stream stream_;      // guarded by mu_
  std::size_t consecutive_failures_ = 0;  // guarded by mu_
  std::size_t failed_events_ = 0;         // guarded by mu_
  std::unique_ptr<ShadowState> shadow_;   // guarded by mu_
  // Window-event buffer for the tap; filled only on tapped feed_run calls,
  // and only with events since the last window boundary (guarded by mu_).
  std::vector<trace::CompactEvent> tap_buf_;
  // Scratch for materializing a tapped window (guarded by mu_; reused).
  std::vector<trace::PartitionedEvent> tap_scratch_;
  // Producer-side micro-batch stage (guarded by stage_mu_, never by mu_).
  std::mutex stage_mu_;
  std::vector<trace::CompactEvent> stage_;
};

/// Owns the live sessions; thread-safe open/find/close. Sharded: the key
/// space is hash-split across independently-locked shards, so session
/// table operations scale with the worker count instead of serializing
/// on one map mutex. Iterating calls (reports, evict_idle, sessions_for)
/// lock one shard at a time.
class SessionManager {
 public:
  /// Shards are rounded up to a power of two (default 64). The registry
  /// must outlive the manager.
  explicit SessionManager(const DetectorRegistry* registry,
                          std::size_t shards = 64,
                          std::shared_ptr<SlabGauges> slab_gauges = nullptr);

  /// Opens a session for `key` classified by `profile`'s detector.
  /// Returns the existing session if one is already open for `key` (its
  /// profile wins); nullptr if the registry has no such profile.
  std::shared_ptr<Session> open(const SessionKey& key,
                                const std::string& profile);

  std::shared_ptr<Session> find(const SessionKey& key) const;

  /// Removes the session and returns its final report; nullopt if absent.
  /// The Session object itself lives until the last queued event referring
  /// to it has been processed (shared_ptr ownership).
  std::optional<SessionReport> close(const SessionKey& key);

  /// Removes every session idle since before `cutoff` and returns their
  /// final reports (the TTL sweep). Queued events for an evicted session
  /// are still processed — the shared_ptr keeps it alive — but, as with
  /// close(), the report is taken at eviction time. Sweeps shard by
  /// shard; never holds more than one shard lock.
  std::vector<SessionReport> evict_idle(
      std::chrono::steady_clock::time_point cutoff);

  /// evict_idle, but hands back the session objects instead of reports —
  /// the server needs the handles to flush staged events so none strand
  /// in an evicted session's stage.
  std::vector<std::shared_ptr<Session>> evict_idle_sessions(
      std::chrono::steady_clock::time_point cutoff);

  std::size_t active() const;
  /// Reports for every live session, in key order.
  std::vector<SessionReport> reports() const;

  /// Snapshot of the live sessions serving `profile` (for shadow
  /// attach/detach sweeps; the shared_ptrs keep them valid lock-free).
  std::vector<std::shared_ptr<Session>> sessions_for(
      const std::string& profile) const;

  /// Every live session (for the server's stage flush); unordered.
  std::vector<std::shared_ptr<Session>> all() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::map<SessionKey, std::shared_ptr<Session>> sessions;
  };

  Shard& shard_for(const SessionKey& key) const;

  const DetectorRegistry* registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<SlabPool> pool_;  // session slots; outlives via allocator
};

}  // namespace leaps::serve
