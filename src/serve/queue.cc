#include "serve/queue.h"

namespace leaps::serve {

const char* overflow_policy_name(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kDropOldest:
      return "drop-oldest";
  }
  return "?";
}

std::optional<OverflowPolicy> parse_overflow_policy(std::string_view name) {
  if (name == "block") return OverflowPolicy::kBlock;
  if (name == "drop-oldest") return OverflowPolicy::kDropOldest;
  return std::nullopt;
}

}  // namespace leaps::serve
