// Serving-layer metrics: lock-free atomic counters and log₂-bucketed
// latency histograms, snapshotted periodically into a plain struct with
// text and JSON renderings.
//
// Everything here is written from worker and producer threads on the hot
// path, so all mutation is relaxed-atomic; a snapshot is a best-effort
// consistent read (counters may be mid-update relative to each other,
// which is fine for operational metrics).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/histogram.h"
#include "obs/registry.h"
#include "serve/slab.h"

namespace leaps::serve {

/// The log₂-bucketed histogram now lives in obs/ (the metric registry
/// needs it below the serving layer); this alias keeps every existing
/// serve::LatencyHistogram user compiling unchanged.
using LatencyHistogram = obs::LatencyHistogram;

/// One coherent reading of every server counter (plain values).
///
/// Accounting identity (holds exactly after drain()):
///   events_ingested == events_processed + events_dropped
///                      + events_quarantined
/// events_failed and events_shed are *subset* counters (failed ⊆
/// quarantined, shed ⊆ dropped); rejected events were never accepted and
/// sit outside the identity.
struct MetricsSnapshot {
  std::uint64_t events_ingested = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t events_dropped = 0;   // evicted from a queue before feed
  std::uint64_t events_rejected = 0;  // unknown session / server stopped
  std::uint64_t events_quarantined = 0;  // failed or skipped in feed_run
  std::uint64_t events_failed = 0;       // threw during classification
  std::uint64_t events_shed = 0;         // dropped while shedding engaged
  std::uint64_t windows_scored = 0;
  std::uint64_t verdicts_benign = 0;
  std::uint64_t verdicts_malicious = 0;
  std::uint64_t batches_drained = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_quarantined = 0;  // circuit-breaker trips
  std::uint64_t sessions_evicted = 0;      // removed by the idle sweep
  std::uint64_t registry_retries = 0;      // open_session re-lookups
  std::uint64_t shed_activations = 0;      // shard entered shedding
  std::uint64_t queue_high_water = 0;  // deepest any shard queue got (events)
  // Slab fabric (see serve/slab.h): session slots and batch buffers.
  std::int64_t slab_sessions_in_use = 0;
  std::int64_t slab_sessions_free = 0;
  std::int64_t slab_chunks = 0;
  std::int64_t slab_overflow = 0;
  std::int64_t slab_batches_in_use = 0;
  std::int64_t slab_batches_free = 0;
  LatencyHistogram::Snapshot queue_wait;  // enqueue → worker dequeue
  LatencyHistogram::Snapshot classify;    // per drained run of one session
  /// Distribution of SVM decision values over every scored window — the
  /// model-health signal (quantiles from the streaming sketch).
  obs::Summary::Snapshot decision_values;

  std::string to_text() const;
  std::string to_json() const;
};

/// The live counters. Shared by the server, its workers, and any
/// metrics-dumping thread; every member is individually atomic.
class ServerMetrics {
 public:
  std::atomic<std::uint64_t> events_ingested{0};
  std::atomic<std::uint64_t> events_processed{0};
  std::atomic<std::uint64_t> events_dropped{0};
  std::atomic<std::uint64_t> events_rejected{0};
  std::atomic<std::uint64_t> events_quarantined{0};
  std::atomic<std::uint64_t> events_failed{0};
  std::atomic<std::uint64_t> events_shed{0};
  std::atomic<std::uint64_t> windows_scored{0};
  std::atomic<std::uint64_t> verdicts_benign{0};
  std::atomic<std::uint64_t> verdicts_malicious{0};
  std::atomic<std::uint64_t> batches_drained{0};
  std::atomic<std::uint64_t> sessions_opened{0};
  std::atomic<std::uint64_t> sessions_closed{0};
  std::atomic<std::uint64_t> sessions_quarantined{0};
  std::atomic<std::uint64_t> sessions_evicted{0};
  std::atomic<std::uint64_t> registry_retries{0};
  std::atomic<std::uint64_t> shed_activations{0};
  LatencyHistogram queue_wait;
  LatencyHistogram classify;
  /// Streaming quantile sketch of per-window decision values (mutex-
  /// guarded internally; observed once per scored window, not per event).
  obs::Summary decision_values;
  /// Gauge blocks the slab pools publish into (leaps_serve_slab_*).
  /// shared_ptr: the session pool — and its gauges — can outlive the
  /// server when queued events keep sessions alive past shutdown.
  std::shared_ptr<SlabGauges> session_slabs =
      std::make_shared<SlabGauges>();
  std::shared_ptr<SlabGauges> batch_buffers =
      std::make_shared<SlabGauges>();

  /// Raises the queue-depth high-water mark if `depth` exceeds it.
  void note_queue_depth(std::size_t depth);

  /// Seeds the four accounting-identity counters from a recovered
  /// durability checkpoint, so ingested == processed + dropped +
  /// quarantined keeps holding across a restart boundary. Only valid
  /// before the server starts ingesting (counters must still be zero).
  void restore_baseline(std::uint64_t ingested, std::uint64_t processed,
                        std::uint64_t dropped, std::uint64_t quarantined);

  MetricsSnapshot snapshot() const;

  /// Contributes every counter and both histograms to `registry` under
  /// `leaps_serve_*` names, so serving metrics share one scrape surface
  /// with the pipeline/ingest metrics. Readings are taken at collect()
  /// time from the live atomics. The returned handle unregisters on
  /// destruction and must not outlive this object.
  [[nodiscard]] obs::MetricRegistry::Registration register_with(
      obs::MetricRegistry& registry) const;

 private:
  std::atomic<std::uint64_t> queue_high_water_{0};
};

}  // namespace leaps::serve
