// Slab allocation for the session fabric.
//
// Two recycling allocators back the serving hot path:
//
//   * SlabPool — fixed-slot chunked slabs with a freelist, used (through
//     SlabAllocator + std::allocate_shared) for Session control blocks.
//     The slot size locks to the first request; oversized or odd-sized
//     requests fall back to the heap with an overflow counter, so the
//     pool is always correct and only ever an optimization. Freed slots
//     go back on the freelist; chunks are only released when the pool
//     dies. Deallocation classifies a pointer by chunk containment, so
//     slab and heap blocks need no headers.
//
//   * BufferPool<T> — recycles std::vector<T> buffers with their
//     capacity intact (the per-hand-off event batches), bounding the
//     steady-state allocation rate of submit()/worker loops to zero.
//
// Both are thread-safe (one mutex each; every operation is O(1) plus, on
// deallocate, a walk of the chunk list — dozens of entries at most).
//
// Observability: both pools publish into a shared SlabGauges block
// (leaps_serve_slab_* once registered by ServerMetrics). Pools hold the
// gauges by shared_ptr because sessions — and therefore their slab
// slots — can outlive the server that created them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace leaps::serve {

/// Live readings for one pool, shared with ServerMetrics.
struct SlabGauges {
  std::atomic<std::int64_t> in_use{0};    // outstanding slots/buffers
  std::atomic<std::int64_t> free{0};      // recycled, ready to hand out
  std::atomic<std::int64_t> chunks{0};    // slabs (or peak buffers) created
  std::atomic<std::int64_t> overflow{0};  // requests served off-pool
};

class SlabPool {
 public:
  explicit SlabPool(std::size_t slots_per_chunk = 256,
                    std::shared_ptr<SlabGauges> gauges = nullptr)
      : slots_per_chunk_(slots_per_chunk == 0 ? 1 : slots_per_chunk),
        gauges_(std::move(gauges)) {}
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() {
    for (const Chunk& c : chunks_) ::operator delete(c.base, align_);
  }

  void* allocate(std::size_t bytes, std::size_t align) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (slot_size_ == 0) {
      // First request fixes the slot geometry (one pool, one type).
      slot_size_ = bytes;
      align_ = std::align_val_t{align};
    }
    if (bytes != slot_size_ ||
        align > static_cast<std::size_t>(align_)) {
      ++overflow_;
      if (gauges_) gauges_->overflow.fetch_add(1, std::memory_order_relaxed);
      return ::operator new(bytes, std::align_val_t{align});
    }
    if (free_.empty()) grow();
    void* p = free_.back();
    free_.pop_back();
    ++in_use_;
    publish();
    return p;
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (owns(p)) {
      free_.push_back(p);
      --in_use_;
      publish();
      return;
    }
    ::operator delete(p, bytes, std::align_val_t{align});
  }

  std::size_t slot_size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return slot_size_;
  }
  std::size_t in_use() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return in_use_;
  }
  std::size_t free_slots() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }
  std::size_t chunk_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return chunks_.size();
  }
  std::size_t overflow() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return overflow_;
  }

 private:
  struct Chunk {
    void* base = nullptr;
    std::size_t bytes = 0;
  };

  void grow() {  // caller holds mu_
    const std::size_t stride =
        (slot_size_ + static_cast<std::size_t>(align_) - 1) /
        static_cast<std::size_t>(align_) * static_cast<std::size_t>(align_);
    Chunk chunk;
    chunk.bytes = stride * slots_per_chunk_;
    chunk.base = ::operator new(chunk.bytes, align_);
    auto* cursor = static_cast<char*>(chunk.base);
    for (std::size_t i = 0; i < slots_per_chunk_; ++i) {
      free_.push_back(cursor + i * stride);
    }
    chunks_.push_back(chunk);
  }

  bool owns(const void* p) const {  // caller holds mu_
    for (const Chunk& c : chunks_) {
      const auto* base = static_cast<const char*>(c.base);
      const auto* q = static_cast<const char*>(p);
      if (q >= base && q < base + c.bytes) return true;
    }
    return false;
  }

  void publish() {  // caller holds mu_
    if (!gauges_) return;
    gauges_->in_use.store(static_cast<std::int64_t>(in_use_),
                          std::memory_order_relaxed);
    gauges_->free.store(static_cast<std::int64_t>(free_.size()),
                        std::memory_order_relaxed);
    gauges_->chunks.store(static_cast<std::int64_t>(chunks_.size()),
                          std::memory_order_relaxed);
  }

  const std::size_t slots_per_chunk_;
  std::shared_ptr<SlabGauges> gauges_;
  mutable std::mutex mu_;
  std::size_t slot_size_ = 0;  // fixed by the first allocation
  std::align_val_t align_{alignof(std::max_align_t)};
  std::vector<Chunk> chunks_;
  std::vector<void*> free_;
  std::size_t in_use_ = 0;
  std::size_t overflow_ = 0;
};

/// Allocator adapter for std::allocate_shared: the shared_ptr control
/// block + object land in one pool slot. Copies share the pool (and keep
/// it alive past the owning manager, which matters because queued events
/// can hold sessions after their manager is gone).
template <typename T>
class SlabAllocator {
 public:
  using value_type = T;

  explicit SlabAllocator(std::shared_ptr<SlabPool> pool)
      : pool_(std::move(pool)) {}
  template <typename U>
  SlabAllocator(const SlabAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    pool_->deallocate(p, n * sizeof(T), alignof(T));
  }

  const std::shared_ptr<SlabPool>& pool() const { return pool_; }

  template <typename U>
  bool operator==(const SlabAllocator<U>& other) const {
    return pool_ == other.pool();
  }

 private:
  std::shared_ptr<SlabPool> pool_;
};

/// Recycles vectors with their capacity; the event-batch buffer pool.
template <typename T>
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_free = 1024,
                      std::shared_ptr<SlabGauges> gauges = nullptr)
      : max_free_(max_free), gauges_(std::move(gauges)) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  std::vector<T> acquire() {
    std::vector<T> buf;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        buf = std::move(free_.back());
        free_.pop_back();
      }
      ++in_use_;
      publish();
    }
    buf.clear();
    return buf;
  }

  void release(std::vector<T> buf) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (in_use_ > 0) --in_use_;
    if (free_.size() < max_free_) {
      free_.push_back(std::move(buf));
    }  // else: drop the buffer, bounding pooled memory
    publish();
  }

  std::size_t free_buffers() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }
  std::size_t in_use() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return in_use_;
  }

 private:
  void publish() {  // caller holds mu_
    if (!gauges_) return;
    gauges_->in_use.store(static_cast<std::int64_t>(in_use_),
                          std::memory_order_relaxed);
    gauges_->free.store(static_cast<std::int64_t>(free_.size()),
                        std::memory_order_relaxed);
  }

  const std::size_t max_free_;
  std::shared_ptr<SlabGauges> gauges_;
  mutable std::mutex mu_;
  std::vector<std::vector<T>> free_;
  std::size_t in_use_ = 0;
};

}  // namespace leaps::serve
