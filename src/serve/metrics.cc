#include "serve/metrics.h"

#include <cstdio>
#include <sstream>

namespace leaps::serve {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// fetch_max for pre-C++26 atomics.
void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t value) {
  std::uint64_t seen = a.load(kRelaxed);
  while (seen < value && !a.compare_exchange_weak(seen, value, kRelaxed)) {
  }
}

void histogram_text(std::ostringstream& os, const char* name,
                    const LatencyHistogram::Snapshot& h) {
  os << "  " << name << " us: count=" << h.count;
  if (h.count > 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", h.mean_us());
    os << " mean=" << buf << " p50<=" << h.quantile_us(0.50)
       << " p95<=" << h.quantile_us(0.95) << " p99<=" << h.quantile_us(0.99)
       << " max=" << h.max_us;
  }
  os << "\n";
}

void histogram_json(std::ostringstream& os, const char* name,
                    const LatencyHistogram::Snapshot& h) {
  os << "\"" << name << "\":{\"count\":" << h.count
     << ",\"total_us\":" << h.total_us << ",\"max_us\":" << h.max_us
     << ",\"p50_us\":" << h.quantile_us(0.50)
     << ",\"p95_us\":" << h.quantile_us(0.95)
     << ",\"p99_us\":" << h.quantile_us(0.99) << ",\"le_us\":[";
  // Full bucket shape, not just three pre-chewed quantiles: downstream
  // consumers can compute any quantile, and the Prometheus _bucket lines
  // derive from the same arrays. le_us[i] is bucket i's inclusive upper
  // bound (-1 = the saturated last bucket, le="+Inf" in Prometheus).
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (i > 0) os << ",";
    if (i + 1 == LatencyHistogram::kBuckets) {
      os << -1;
    } else {
      os << LatencyHistogram::bucket_upper_us(i);
    }
  }
  os << "],\"buckets\":[";
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (i > 0) os << ",";
    os << h.buckets[i];
  }
  os << "]}";
}

}  // namespace

void ServerMetrics::note_queue_depth(std::size_t depth) {
  atomic_max(queue_high_water_, depth);
}

void ServerMetrics::restore_baseline(std::uint64_t ingested,
                                     std::uint64_t processed,
                                     std::uint64_t dropped,
                                     std::uint64_t quarantined) {
  events_ingested.store(ingested, kRelaxed);
  events_processed.store(processed, kRelaxed);
  events_dropped.store(dropped, kRelaxed);
  events_quarantined.store(quarantined, kRelaxed);
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot s;
  s.events_ingested = events_ingested.load(kRelaxed);
  s.events_processed = events_processed.load(kRelaxed);
  s.events_dropped = events_dropped.load(kRelaxed);
  s.events_rejected = events_rejected.load(kRelaxed);
  s.events_quarantined = events_quarantined.load(kRelaxed);
  s.events_failed = events_failed.load(kRelaxed);
  s.events_shed = events_shed.load(kRelaxed);
  s.windows_scored = windows_scored.load(kRelaxed);
  s.verdicts_benign = verdicts_benign.load(kRelaxed);
  s.verdicts_malicious = verdicts_malicious.load(kRelaxed);
  s.batches_drained = batches_drained.load(kRelaxed);
  s.sessions_opened = sessions_opened.load(kRelaxed);
  s.sessions_closed = sessions_closed.load(kRelaxed);
  s.sessions_quarantined = sessions_quarantined.load(kRelaxed);
  s.sessions_evicted = sessions_evicted.load(kRelaxed);
  s.registry_retries = registry_retries.load(kRelaxed);
  s.shed_activations = shed_activations.load(kRelaxed);
  s.queue_high_water = queue_high_water_.load(kRelaxed);
  s.slab_sessions_in_use = session_slabs->in_use.load(kRelaxed);
  s.slab_sessions_free = session_slabs->free.load(kRelaxed);
  s.slab_chunks = session_slabs->chunks.load(kRelaxed);
  s.slab_overflow = session_slabs->overflow.load(kRelaxed);
  s.slab_batches_in_use = batch_buffers->in_use.load(kRelaxed);
  s.slab_batches_free = batch_buffers->free.load(kRelaxed);
  s.queue_wait = queue_wait.snapshot();
  s.classify = classify.snapshot();
  s.decision_values = decision_values.snapshot();
  return s;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  os << "serve metrics:\n"
     << "  events: ingested=" << events_ingested
     << " processed=" << events_processed << " dropped=" << events_dropped
     << " rejected=" << events_rejected
     << " quarantined=" << events_quarantined
     << " failed=" << events_failed << " shed=" << events_shed << "\n"
     << "  windows: scored=" << windows_scored
     << " benign=" << verdicts_benign << " malicious=" << verdicts_malicious
     << "\n"
     << "  sessions: opened=" << sessions_opened
     << " closed=" << sessions_closed
     << " quarantined=" << sessions_quarantined
     << " evicted=" << sessions_evicted << "\n"
     << "  queues: high-water=" << queue_high_water
     << " batches=" << batches_drained
     << " shed-activations=" << shed_activations
     << " registry-retries=" << registry_retries << "\n"
     << "  slabs: sessions-in-use=" << slab_sessions_in_use
     << " sessions-free=" << slab_sessions_free
     << " chunks=" << slab_chunks << " overflow=" << slab_overflow
     << " batch-buffers=" << slab_batches_in_use << "/"
     << slab_batches_free << " (in-use/free)\n";
  histogram_text(os, "queue-wait", queue_wait);
  histogram_text(os, "classify ", classify);
  os << "  decision-value: count=" << decision_values.count;
  if (decision_values.count > 0) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  " min=%.4f q50=%.4f q90=%.4f q99=%.4f max=%.4f",
                  decision_values.min, decision_values.q50,
                  decision_values.q90, decision_values.q99,
                  decision_values.max);
    os << buf;
  }
  os << "\n";
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"events\":{\"ingested\":" << events_ingested
     << ",\"processed\":" << events_processed
     << ",\"dropped\":" << events_dropped
     << ",\"rejected\":" << events_rejected
     << ",\"quarantined\":" << events_quarantined
     << ",\"failed\":" << events_failed
     << ",\"shed\":" << events_shed << "}"
     << ",\"windows\":{\"scored\":" << windows_scored
     << ",\"benign\":" << verdicts_benign
     << ",\"malicious\":" << verdicts_malicious << "}"
     << ",\"sessions\":{\"opened\":" << sessions_opened
     << ",\"closed\":" << sessions_closed
     << ",\"quarantined\":" << sessions_quarantined
     << ",\"evicted\":" << sessions_evicted << "}"
     << ",\"queues\":{\"high_water\":" << queue_high_water
     << ",\"batches\":" << batches_drained
     << ",\"shed_activations\":" << shed_activations
     << ",\"registry_retries\":" << registry_retries << "}"
     << ",\"slabs\":{\"sessions_in_use\":" << slab_sessions_in_use
     << ",\"sessions_free\":" << slab_sessions_free
     << ",\"chunks\":" << slab_chunks
     << ",\"overflow\":" << slab_overflow
     << ",\"batch_buffers_in_use\":" << slab_batches_in_use
     << ",\"batch_buffers_free\":" << slab_batches_free << "},";
  histogram_json(os, "queue_wait", queue_wait);
  os << ",";
  histogram_json(os, "classify", classify);
  char dv[256];
  std::snprintf(dv, sizeof dv,
                ",\"decision_value\":{\"count\":%llu,\"sum\":%.9g,"
                "\"min\":%.9g,\"max\":%.9g,\"q50\":%.9g,\"q90\":%.9g,"
                "\"q99\":%.9g}",
                static_cast<unsigned long long>(decision_values.count),
                decision_values.sum, decision_values.min,
                decision_values.max, decision_values.q50,
                decision_values.q90, decision_values.q99);
  os << dv << "}";
  return os.str();
}

obs::MetricRegistry::Registration ServerMetrics::register_with(
    obs::MetricRegistry& registry) const {
  return registry.register_collector([this](
                                         std::vector<obs::MetricSample>& out) {
    const auto counter = [&out](const char* name, const char* help,
                                std::uint64_t value) {
      obs::MetricSample s;
      s.name = name;
      s.help = help;
      s.type = obs::MetricType::kCounter;
      s.counter_value = value;
      out.push_back(std::move(s));
    };
    const MetricsSnapshot snap = snapshot();
    counter("leaps_serve_events_ingested_total", "events accepted by submit",
            snap.events_ingested);
    counter("leaps_serve_events_processed_total", "events classified",
            snap.events_processed);
    counter("leaps_serve_events_dropped_total",
            "events evicted from a queue before feed", snap.events_dropped);
    counter("leaps_serve_events_rejected_total",
            "submits refused (unknown session / stopped server)",
            snap.events_rejected);
    counter("leaps_serve_events_quarantined_total",
            "events failed or skipped in feed_run", snap.events_quarantined);
    counter("leaps_serve_events_failed_total",
            "events that threw during classification", snap.events_failed);
    counter("leaps_serve_events_shed_total",
            "events dropped while shedding engaged", snap.events_shed);
    counter("leaps_serve_windows_scored_total", "windows classified",
            snap.windows_scored);
    counter("leaps_serve_verdicts_benign_total", "benign window verdicts",
            snap.verdicts_benign);
    counter("leaps_serve_verdicts_malicious_total",
            "malicious window verdicts", snap.verdicts_malicious);
    counter("leaps_serve_batches_drained_total", "worker batch drains",
            snap.batches_drained);
    counter("leaps_serve_sessions_opened_total", "sessions opened",
            snap.sessions_opened);
    counter("leaps_serve_sessions_closed_total", "sessions closed",
            snap.sessions_closed);
    counter("leaps_serve_sessions_quarantined_total",
            "circuit-breaker trips", snap.sessions_quarantined);
    counter("leaps_serve_sessions_evicted_total",
            "sessions removed by the idle sweep", snap.sessions_evicted);
    counter("leaps_serve_registry_retries_total",
            "open_session registry re-lookups", snap.registry_retries);
    counter("leaps_serve_shed_activations_total",
            "times a shard entered shedding", snap.shed_activations);

    obs::MetricSample hw;
    hw.name = "leaps_serve_queue_high_water";
    hw.help = "deepest any shard queue got (events)";
    hw.type = obs::MetricType::kGauge;
    hw.gauge_value = static_cast<std::int64_t>(snap.queue_high_water);
    out.push_back(std::move(hw));

    const auto gauge = [&out](const char* name, const char* help,
                              std::int64_t value) {
      obs::MetricSample s;
      s.name = name;
      s.help = help;
      s.type = obs::MetricType::kGauge;
      s.gauge_value = value;
      out.push_back(std::move(s));
    };
    gauge("leaps_serve_slab_sessions_in_use",
          "session slots handed out by the slab pool",
          snap.slab_sessions_in_use);
    gauge("leaps_serve_slab_sessions_free",
          "recycled session slots on the freelist", snap.slab_sessions_free);
    gauge("leaps_serve_slab_chunks", "slab chunks allocated",
          snap.slab_chunks);
    gauge("leaps_serve_slab_overflow_total",
          "allocations served off-pool (size mismatch)",
          snap.slab_overflow);
    gauge("leaps_serve_slab_batch_buffers_in_use",
          "event-batch buffers in flight", snap.slab_batches_in_use);
    gauge("leaps_serve_slab_batch_buffers_free",
          "event-batch buffers pooled for reuse", snap.slab_batches_free);

    obs::MetricSample qw;
    qw.name = "leaps_serve_queue_wait_us";
    qw.help = "enqueue to worker dequeue latency";
    qw.type = obs::MetricType::kHistogram;
    qw.histogram = snap.queue_wait;
    out.push_back(std::move(qw));

    obs::MetricSample cl;
    cl.name = "leaps_serve_classify_us";
    cl.help = "per drained run of one session";
    cl.type = obs::MetricType::kHistogram;
    cl.histogram = snap.classify;
    out.push_back(std::move(cl));

    obs::MetricSample dv;
    dv.name = "leaps_serve_decision_value";
    dv.help = "SVM decision values over scored windows (quantile sketch)";
    dv.type = obs::MetricType::kSummary;
    dv.summary = snap.decision_values;
    out.push_back(std::move(dv));
  });
}

}  // namespace leaps::serve
