#include "serve/metrics.h"

#include <bit>
#include <cstdio>
#include <sstream>

namespace leaps::serve {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// fetch_max for pre-C++26 atomics.
void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t value) {
  std::uint64_t seen = a.load(kRelaxed);
  while (seen < value && !a.compare_exchange_weak(seen, value, kRelaxed)) {
  }
}

std::size_t bucket_index(std::uint64_t us) {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(us));
  return w < LatencyHistogram::kBuckets ? w : LatencyHistogram::kBuckets - 1;
}

void histogram_text(std::ostringstream& os, const char* name,
                    const LatencyHistogram::Snapshot& h) {
  os << "  " << name << " us: count=" << h.count;
  if (h.count > 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", h.mean_us());
    os << " mean=" << buf << " p50<=" << h.quantile_us(0.50)
       << " p95<=" << h.quantile_us(0.95) << " p99<=" << h.quantile_us(0.99)
       << " max=" << h.max_us;
  }
  os << "\n";
}

void histogram_json(std::ostringstream& os, const char* name,
                    const LatencyHistogram::Snapshot& h) {
  os << "\"" << name << "\":{\"count\":" << h.count
     << ",\"total_us\":" << h.total_us << ",\"max_us\":" << h.max_us
     << ",\"p50_us\":" << h.quantile_us(0.50)
     << ",\"p95_us\":" << h.quantile_us(0.95)
     << ",\"p99_us\":" << h.quantile_us(0.99) << "}";
}

}  // namespace

void LatencyHistogram::record(std::chrono::nanoseconds elapsed) {
  record_us(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
}

void LatencyHistogram::record_us(std::uint64_t us) {
  buckets_[bucket_index(us)].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  total_us_.fetch_add(us, kRelaxed);
  atomic_max(max_us_, us);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(kRelaxed);
  s.total_us = total_us_.load(kRelaxed);
  s.max_us = max_us_.load(kRelaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(kRelaxed);
  }
  return s;
}

double LatencyHistogram::Snapshot::mean_us() const {
  return count == 0 ? 0.0
                    : static_cast<double>(total_us) / static_cast<double>(count);
}

std::uint64_t LatencyHistogram::Snapshot::quantile_us(double q) const {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Upper bound of bucket i: 2^i - 1 µs (bucket 0 holds sub-µs samples).
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return max_us;
}

void ServerMetrics::note_queue_depth(std::size_t depth) {
  atomic_max(queue_high_water_, depth);
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot s;
  s.events_ingested = events_ingested.load(kRelaxed);
  s.events_processed = events_processed.load(kRelaxed);
  s.events_dropped = events_dropped.load(kRelaxed);
  s.events_rejected = events_rejected.load(kRelaxed);
  s.events_quarantined = events_quarantined.load(kRelaxed);
  s.events_failed = events_failed.load(kRelaxed);
  s.events_shed = events_shed.load(kRelaxed);
  s.windows_scored = windows_scored.load(kRelaxed);
  s.verdicts_benign = verdicts_benign.load(kRelaxed);
  s.verdicts_malicious = verdicts_malicious.load(kRelaxed);
  s.batches_drained = batches_drained.load(kRelaxed);
  s.sessions_opened = sessions_opened.load(kRelaxed);
  s.sessions_closed = sessions_closed.load(kRelaxed);
  s.sessions_quarantined = sessions_quarantined.load(kRelaxed);
  s.sessions_evicted = sessions_evicted.load(kRelaxed);
  s.registry_retries = registry_retries.load(kRelaxed);
  s.shed_activations = shed_activations.load(kRelaxed);
  s.queue_high_water = queue_high_water_.load(kRelaxed);
  s.queue_wait = queue_wait.snapshot();
  s.classify = classify.snapshot();
  return s;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  os << "serve metrics:\n"
     << "  events: ingested=" << events_ingested
     << " processed=" << events_processed << " dropped=" << events_dropped
     << " rejected=" << events_rejected
     << " quarantined=" << events_quarantined
     << " failed=" << events_failed << " shed=" << events_shed << "\n"
     << "  windows: scored=" << windows_scored
     << " benign=" << verdicts_benign << " malicious=" << verdicts_malicious
     << "\n"
     << "  sessions: opened=" << sessions_opened
     << " closed=" << sessions_closed
     << " quarantined=" << sessions_quarantined
     << " evicted=" << sessions_evicted << "\n"
     << "  queues: high-water=" << queue_high_water
     << " batches=" << batches_drained
     << " shed-activations=" << shed_activations
     << " registry-retries=" << registry_retries << "\n";
  histogram_text(os, "queue-wait", queue_wait);
  histogram_text(os, "classify ", classify);
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"events\":{\"ingested\":" << events_ingested
     << ",\"processed\":" << events_processed
     << ",\"dropped\":" << events_dropped
     << ",\"rejected\":" << events_rejected
     << ",\"quarantined\":" << events_quarantined
     << ",\"failed\":" << events_failed
     << ",\"shed\":" << events_shed << "}"
     << ",\"windows\":{\"scored\":" << windows_scored
     << ",\"benign\":" << verdicts_benign
     << ",\"malicious\":" << verdicts_malicious << "}"
     << ",\"sessions\":{\"opened\":" << sessions_opened
     << ",\"closed\":" << sessions_closed
     << ",\"quarantined\":" << sessions_quarantined
     << ",\"evicted\":" << sessions_evicted << "}"
     << ",\"queues\":{\"high_water\":" << queue_high_water
     << ",\"batches\":" << batches_drained
     << ",\"shed_activations\":" << shed_activations
     << ",\"registry_retries\":" << registry_retries << "},";
  histogram_json(os, "queue_wait", queue_wait);
  os << ",";
  histogram_json(os, "classify", classify);
  os << "}";
  return os.str();
}

}  // namespace leaps::serve
