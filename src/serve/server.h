// DetectionServer: the concurrent multi-tenant serving front end.
//
//                    ┌────────────────────────────────────────────┐
//   producers ──────▶│ shard queues (bounded, backpressure) ──▶   │
//   submit(key, ev)  │   worker 0 … worker N−1 (fixed pool)       │──▶ verdict
//                    │   each drains its own queue in batches,    │    sink
//                    │   groups runs by session, feeds Streams    │
//                    └────────────────────────────────────────────┘
//        DetectorRegistry (profiles) · SessionManager ((host,pid) streams)
//        ServerMetrics (atomic counters + latency histograms)
//
// Sharding: every session is pinned to one shard queue by a hash of its
// key, so one session's events are consumed by one worker in FIFO order —
// per-session event order (which window semantics depend on) is preserved
// without any cross-worker coordination; parallelism comes from having
// many sessions. Queues are MPMC-capable; any number of producer threads
// may submit concurrently.
//
// Backpressure per ServerOptions::overflow: kBlock stalls producers when
// a shard queue fills (lossless replay), kDropOldest evicts the oldest
// queued event (bounded-latency live ingest); drops are counted in
// metrics. drain() blocks until every accepted event has been classified,
// which makes "replay N logs, then read the tallies" deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/session.h"

namespace leaps::serve {

struct ServerOptions {
  /// Fixed worker-pool size (= shard count).
  std::size_t workers = 4;
  /// Per-shard queue capacity (events).
  std::size_t queue_capacity = 4096;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Max events a worker drains per wakeup.
  std::size_t batch_size = 128;
};

/// Called from worker threads for every completed window; must be
/// thread-safe. Keep it cheap — it runs on the classification path.
struct VerdictRecord {
  SessionKey key;
  std::size_t window_index;
  int label;  // +1 benign / -1 malicious
};
using VerdictSink = std::function<void(const VerdictRecord&)>;

class DetectionServer {
 public:
  explicit DetectionServer(ServerOptions options = {});
  ~DetectionServer();

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  DetectorRegistry& registry() { return registry_; }
  const DetectorRegistry& registry() const { return registry_; }
  SessionManager& sessions() { return sessions_; }
  const SessionManager& sessions() const { return sessions_; }
  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }
  const ServerOptions& options() const { return options_; }

  /// Install before start(); called from workers for every verdict.
  void set_verdict_sink(VerdictSink sink);

  /// Spawns the worker pool. Events submitted before start() sit in the
  /// shard queues and are drained once workers come up.
  void start();

  /// Closes the queues, drains what remains, joins the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Blocks until every accepted event has been processed. Only
  /// meaningful while the server is started (otherwise nothing drains).
  void drain();

  /// Opens (or returns the already-open) session for `key` served by
  /// `profile`'s detector; nullptr if the profile is not registered.
  std::shared_ptr<Session> open_session(const SessionKey& key,
                                        const std::string& profile);

  /// Final report for the session; nullopt if it was never opened. Call
  /// after drain() for complete tallies — events still queued for a
  /// closed session are processed (the session lives on), but the
  /// report is taken at close time.
  std::optional<SessionReport> close_session(const SessionKey& key);

  /// Enqueues one event for the session. Returns false — and counts the
  /// event as rejected — when the session handle is null or the server
  /// has been stopped. Under kDropOldest an *older* queued event may be
  /// evicted (counted as dropped) to admit this one.
  bool submit(const std::shared_ptr<Session>& session,
              trace::PartitionedEvent event);

  /// Convenience: looks the session up by key, then submits.
  bool submit(const SessionKey& key, trace::PartitionedEvent event);

 private:
  struct Item {
    std::shared_ptr<Session> session;
    trace::PartitionedEvent event;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(std::size_t shard);
  void note_completed(std::uint64_t n);

  const ServerOptions options_;
  DetectorRegistry registry_;
  SessionManager sessions_{&registry_};
  ServerMetrics metrics_;
  VerdictSink sink_;
  std::vector<std::unique_ptr<BoundedQueue<Item>>> shards_;
  std::vector<std::thread> workers_;
  bool started_ = false;  // guarded by lifecycle_mu_
  bool stopped_ = false;  // guarded by lifecycle_mu_; stop is terminal
  std::mutex lifecycle_mu_;

  // drain() bookkeeping: accepted == retired once nothing is in flight.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> retired_{0};  // processed + evicted
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace leaps::serve
