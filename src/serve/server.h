// DetectionServer: the concurrent multi-tenant serving front end.
//
//                    ┌────────────────────────────────────────────┐
//   producers ──────▶│ shard queues (bounded, backpressure) ──▶   │
//   submit(key, ev)  │   worker 0 … worker N−1 (fixed pool)       │──▶ verdict
//     [intern →      │   each drains its own queue in batches,    │    sink
//      stage →       │   groups runs by session, feeds Streams    │
//      batch]        └────────────────────────────────────────────┘
//        DetectorRegistry (profiles) · SessionManager ((host,pid) streams)
//        ServerMetrics (atomic counters + latency histograms)
//
// The fleet-scale fabric (see DESIGN.md §14):
//
//   * interning at the ingest boundary — submit() compacts the event
//     through the process-wide trace::TokenTable; only fixed-size
//     trace::CompactEvent values (ids, no strings) flow through queues
//     and workers,
//   * micro-batched hand-off — events stage per session and are pushed
//     to the shard queue as one EventBatch every `coalesce` events
//     (default 1: every event ships immediately, exactly the classic
//     per-event behavior), slashing queue contention at high coalesce,
//   * weighted queues — capacity/depth/drop accounting stay in EVENT
//     units regardless of batching, so `queue_capacity` means the same
//     thing at any coalesce,
//   * slab/arena allocation — Session control blocks come from a
//     freelist slab pool and batch buffers are recycled through a
//     BufferPool (leaps_serve_slab_* gauges; see serve/slab.h).
//
// Sharding: every session is pinned to one shard queue by a hash of its
// key, so one session's events are consumed by one worker in FIFO order —
// per-session event order (which window semantics depend on) is preserved
// without any cross-worker coordination; parallelism comes from having
// many sessions. Queues are MPMC-capable; any number of producer threads
// may submit concurrently. The session table itself is sharded too
// (`session_shards` independently-locked map shards), so open/find/close
// never serialize on one mutex.
//
// Backpressure per ServerOptions::overflow: kBlock stalls producers when
// a shard queue fills (lossless replay), kDropOldest evicts the oldest
// queued events (bounded-latency live ingest); drops are counted in
// metrics. drain() first flushes every session's stage, then blocks until
// every accepted event has been classified, which makes "replay N logs,
// then read the tallies" deterministic.
//
// Failure model — the server self-heals around hostile sessions instead
// of crashing with them:
//
//   * crash isolation: every event is fed under a per-event guard inside
//     Session::feed_run; an event that throws is counted (events_failed,
//     events_quarantined) and classification continues,
//   * circuit breaker: `circuit_breaker` consecutive failures flip the
//     session to SessionState::kQuarantined; its remaining events are
//     discarded-with-accounting and new submits are rejected,
//   * idle eviction: a background sweep (every `sweep_interval`, when
//     `idle_ttl` > 0) closes sessions with no recent activity (staged
//     events are flushed first, never stranded),
//   * registry retry: open_session retries transient registry misses
//     (operator mid-reload) with exponential backoff,
//   * overload shedding: when a batch's queue-wait p99 exceeds
//     `shed_queue_wait_us`, the shard flips to drop-with-accounting
//     (kBlock producers stop stalling) until the wait recovers to
//     below half the threshold (hysteresis).
//
// Accounting identity, exact after drain():
//   events_ingested == events_processed + events_dropped
//                      + events_quarantined
// Staged events count as ingested the moment submit() accepts them; a
// stage flushed into a closing queue retires its events as dropped, so
// the identity survives shutdown races.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/audit.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "serve/slab.h"
#include "trace/intern.h"

namespace leaps::serve {

struct ServerOptions {
  /// Fixed worker-pool size (= shard-queue count).
  std::size_t workers = 4;
  /// Per-shard queue capacity, in EVENTS (not batches).
  std::size_t queue_capacity = 4096;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Max events a worker drains per wakeup.
  std::size_t batch_size = 128;
  /// Events staged per session before the stage ships to the shard queue
  /// as one batch. 1 (the default) hands every event off immediately —
  /// byte-for-byte the classic behavior; raise it (e.g. 32) to amortize
  /// queue contention under fleet-scale ingest. Verdicts are identical at
  /// any setting; only hand-off granularity changes. drain(), stop(),
  /// close_session() and the idle sweep all flush partial stages.
  std::size_t coalesce = 1;
  /// Session-table shards (rounded up to a power of two).
  std::size_t session_shards = 64;
  /// Consecutive per-session classification failures that quarantine the
  /// session. 0 disables the breaker (failures are counted, never fatal).
  std::size_t circuit_breaker = 3;
  /// Sessions idle longer than this are evicted by the background sweep;
  /// zero disables eviction (and the sweeper thread).
  std::chrono::milliseconds idle_ttl{0};
  /// How often the idle sweep runs (only when idle_ttl > 0).
  std::chrono::milliseconds sweep_interval{250};
  /// Extra registry lookups open_session makes when the profile is
  /// missing (transient reload window). 0 = fail immediately.
  std::size_t registry_retries = 0;
  /// Base backoff between registry retries; doubles per attempt
  /// (capped at 64×).
  std::chrono::milliseconds registry_backoff{1};
  /// Queue-wait p99 (µs, per drained batch) above which the shard sheds
  /// load. 0 disables shedding.
  std::uint64_t shed_queue_wait_us = 0;
};

/// Called from worker threads for every completed window; must be
/// thread-safe and must not throw. Keep it cheap — it runs on the
/// classification path.
struct VerdictRecord {
  SessionKey key;
  std::size_t window_index;
  int label;  // +1 benign / -1 malicious
  double decision_value = 0.0;  // SVM f(x); label is f >= threshold
};
using VerdictSink = std::function<void(const VerdictRecord&)>;

class DetectionServer {
 public:
  explicit DetectionServer(ServerOptions options = {});
  ~DetectionServer();

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  DetectorRegistry& registry() { return registry_; }
  const DetectorRegistry& registry() const { return registry_; }
  SessionManager& sessions() { return sessions_; }
  const SessionManager& sessions() const { return sessions_; }
  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }
  const ServerOptions& options() const { return options_; }

  /// Install before start(); called from workers for every verdict.
  void set_verdict_sink(VerdictSink sink);

  /// Install before start(); observes every completed window on the worker
  /// path with its raw events (the online-learning feed, see WindowTap).
  void set_window_tap(WindowTap tap);

  /// Install before start(); every anomalous (label −1) completed window
  /// is submitted to `audit` with its events and the session's pinned
  /// detector (drop-not-block; see serve/audit.h). The log must outlive
  /// the server and be started/stopped by the caller.
  void set_audit_log(AuditLog* audit);

  /// Install before start(); like set_window_tap but additive — each
  /// registered tap observes every completed window after the primary
  /// tap. This is how serve-agnostic consumers (the attribution matcher)
  /// join the window stream without claiming the online-learning slot.
  void add_window_tap(WindowTap tap);

  /// Stages `candidate` as the shadow for `profile` (see
  /// DetectorRegistry::begin_shadow) and attaches a shadow stream to every
  /// live session of the profile; sessions opened while the shadow is in
  /// flight attach automatically. `sink` receives one (active, shadow)
  /// verdict pair per aligned window. Returns false when the profile is
  /// absent or already has a shadow in flight.
  bool begin_shadow(const std::string& profile,
                    std::shared_ptr<const core::Detector> candidate,
                    ShadowSink sink);

  /// Concludes the rollover: detaches every shadow stream, then either
  /// promotes the candidate into the registry (the RCU snapshot swap —
  /// zero downtime, live sessions keep serving on their pinned detector)
  /// or rolls it back into the profile's quarantine list. Returns false
  /// when no shadow is in flight.
  bool end_shadow(const std::string& profile, bool promote);

  /// Whether a shadow rollover is in flight for `profile`.
  bool shadowing(const std::string& profile) const {
    return registry_.shadow_candidate(profile) != nullptr;
  }

  /// Spawns the worker pool (and the idle sweeper when idle_ttl > 0).
  /// Events submitted before start() sit in the shard queues and are
  /// drained once workers come up.
  void start();

  /// Flushes staged events, closes the queues, drains what remains,
  /// joins the workers. Idempotent; the destructor calls it.
  void stop();

  /// Flushes every session's stage, then blocks until every accepted
  /// event has been processed. Only meaningful while the server is
  /// started (otherwise nothing drains).
  void drain();

  /// Opens (or returns the already-open) session for `key` served by
  /// `profile`'s detector; nullptr if the profile is not registered
  /// even after `registry_retries` backed-off re-lookups.
  std::shared_ptr<Session> open_session(const SessionKey& key,
                                        const std::string& profile);

  /// Final report for the session; nullopt if it was never opened. Call
  /// after drain() for complete tallies — events still queued for a
  /// closed session are processed (the session lives on), but the
  /// report is taken at close time.
  std::optional<SessionReport> close_session(const SessionKey& key);

  /// Runs one idle-eviction sweep immediately (what the background
  /// sweeper does every sweep_interval); returns the number evicted.
  /// No-op (returns 0) when idle_ttl is zero.
  std::size_t sweep_idle_now();

  /// Enqueues one event for the session: interns it, stages it, and —
  /// at every `coalesce`-th staged event — ships the stage to the
  /// session's shard queue as one batch. Returns false — and counts the
  /// event as rejected — when the session handle is null or quarantined,
  /// or the server has been stopped. Under kDropOldest (or a shedding
  /// shard) *older* queued events may be evicted (counted as dropped,
  /// and as shed while shedding) to admit this one's batch.
  bool submit(const std::shared_ptr<Session>& session,
              trace::PartitionedEvent event);

  /// Convenience: looks the session up by key, then submits.
  bool submit(const SessionKey& key, trace::PartitionedEvent event);

 private:
  /// One hand-off unit: a run of same-session events. `events` comes from
  /// (and returns to) batch_pool_. Queue weight = events.size().
  struct EventBatch {
    std::shared_ptr<Session> session;
    std::vector<trace::CompactEvent> events;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(std::size_t shard);
  void sweeper_loop();
  void note_completed(std::uint64_t n);
  /// Ships `session`'s stage (if non-empty) to its shard queue; caller
  /// must hold the session's stage mutex.
  void flush_locked(const std::shared_ptr<Session>& session);
  /// Locks the stage mutex, then flush_locked.
  void flush_staged(const std::shared_ptr<Session>& session);
  /// flush_staged for every live session (drain()/stop()/sweeper).
  void flush_all_stages();
  /// Retires a batch that will never reach a worker (evicted or pushed
  /// into a closed queue): counts `n` dropped (+shed), wakes drain().
  void retire_dropped(std::size_t n, bool shed);

  const ServerOptions options_;
  DetectorRegistry registry_;
  // metrics_ precedes sessions_/batch_pool_: they capture its gauge blocks.
  ServerMetrics metrics_;
  SessionManager sessions_{&registry_, options_.session_shards,
                           metrics_.session_slabs};
  BufferPool<trace::CompactEvent> batch_pool_{1024, metrics_.batch_buffers};
  VerdictSink sink_;
  WindowTap tap_;  // set before start(), then read-only from workers
  AuditLog* audit_ = nullptr;  // set before start(); not owned
  // tap_ and the audit hook folded into one callable for feed_run; built
  // at start() so the per-window dispatch is a single call.
  std::vector<WindowTap> extra_taps_;
  WindowTap effective_tap_;
  // Serializes begin/end shadow against the open_session auto-attach.
  mutable std::mutex shadow_mu_;
  std::map<std::string, std::shared_ptr<const ShadowSink>> shadow_sinks_;
  std::vector<std::unique_ptr<WeightedQueue<EventBatch>>> shards_;
  std::vector<std::thread> workers_;
  std::thread sweeper_;
  bool started_ = false;  // guarded by lifecycle_mu_
  bool stopped_ = false;  // guarded by lifecycle_mu_; stop is terminal
  std::mutex lifecycle_mu_;
  // Raised (seq_cst) at the top of stop(), before the final stage flush.
  // submit() checks it before staging AND re-checks after: either the
  // closing flush sees a staged event, or the submitter sees closing_ and
  // self-flushes — no event can strand in a stage across shutdown.
  std::atomic<bool> closing_{false};

  // Sweeper wakeup/shutdown handshake.
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  bool sweep_stop_ = false;  // guarded by sweep_mu_

  // drain() bookkeeping: accepted == retired once nothing is in flight.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> retired_{0};  // processed + evicted
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace leaps::serve
