// DetectionServer: the concurrent multi-tenant serving front end.
//
//                    ┌────────────────────────────────────────────┐
//   producers ──────▶│ shard queues (bounded, backpressure) ──▶   │
//   submit(key, ev)  │   worker 0 … worker N−1 (fixed pool)       │──▶ verdict
//                    │   each drains its own queue in batches,    │    sink
//                    │   groups runs by session, feeds Streams    │
//                    └────────────────────────────────────────────┘
//        DetectorRegistry (profiles) · SessionManager ((host,pid) streams)
//        ServerMetrics (atomic counters + latency histograms)
//
// Sharding: every session is pinned to one shard queue by a hash of its
// key, so one session's events are consumed by one worker in FIFO order —
// per-session event order (which window semantics depend on) is preserved
// without any cross-worker coordination; parallelism comes from having
// many sessions. Queues are MPMC-capable; any number of producer threads
// may submit concurrently.
//
// Backpressure per ServerOptions::overflow: kBlock stalls producers when
// a shard queue fills (lossless replay), kDropOldest evicts the oldest
// queued event (bounded-latency live ingest); drops are counted in
// metrics. drain() blocks until every accepted event has been classified,
// which makes "replay N logs, then read the tallies" deterministic.
//
// Failure model — the server self-heals around hostile sessions instead
// of crashing with them:
//
//   * crash isolation: every event is fed under a per-event guard inside
//     Session::feed_run; an event that throws is counted (events_failed,
//     events_quarantined) and classification continues,
//   * circuit breaker: `circuit_breaker` consecutive failures flip the
//     session to SessionState::kQuarantined; its remaining events are
//     discarded-with-accounting and new submits are rejected,
//   * idle eviction: a background sweep (every `sweep_interval`, when
//     `idle_ttl` > 0) closes sessions with no recent activity,
//   * registry retry: open_session retries transient registry misses
//     (operator mid-reload) with exponential backoff,
//   * overload shedding: when a batch's queue-wait p99 exceeds
//     `shed_queue_wait_us`, the shard flips to drop-with-accounting
//     (kBlock producers stop stalling) until the wait recovers to
//     below half the threshold (hysteresis).
//
// Accounting identity, exact after drain():
//   events_ingested == events_processed + events_dropped
//                      + events_quarantined
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/audit.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/session.h"

namespace leaps::serve {

struct ServerOptions {
  /// Fixed worker-pool size (= shard count).
  std::size_t workers = 4;
  /// Per-shard queue capacity (events).
  std::size_t queue_capacity = 4096;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Max events a worker drains per wakeup.
  std::size_t batch_size = 128;
  /// Consecutive per-session classification failures that quarantine the
  /// session. 0 disables the breaker (failures are counted, never fatal).
  std::size_t circuit_breaker = 3;
  /// Sessions idle longer than this are evicted by the background sweep;
  /// zero disables eviction (and the sweeper thread).
  std::chrono::milliseconds idle_ttl{0};
  /// How often the idle sweep runs (only when idle_ttl > 0).
  std::chrono::milliseconds sweep_interval{250};
  /// Extra registry lookups open_session makes when the profile is
  /// missing (transient reload window). 0 = fail immediately.
  std::size_t registry_retries = 0;
  /// Base backoff between registry retries; doubles per attempt
  /// (capped at 64×).
  std::chrono::milliseconds registry_backoff{1};
  /// Queue-wait p99 (µs, per drained batch) above which the shard sheds
  /// load. 0 disables shedding.
  std::uint64_t shed_queue_wait_us = 0;
};

/// Called from worker threads for every completed window; must be
/// thread-safe and must not throw. Keep it cheap — it runs on the
/// classification path.
struct VerdictRecord {
  SessionKey key;
  std::size_t window_index;
  int label;  // +1 benign / -1 malicious
  double decision_value = 0.0;  // SVM f(x); label is f >= threshold
};
using VerdictSink = std::function<void(const VerdictRecord&)>;

class DetectionServer {
 public:
  explicit DetectionServer(ServerOptions options = {});
  ~DetectionServer();

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  DetectorRegistry& registry() { return registry_; }
  const DetectorRegistry& registry() const { return registry_; }
  SessionManager& sessions() { return sessions_; }
  const SessionManager& sessions() const { return sessions_; }
  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }
  const ServerOptions& options() const { return options_; }

  /// Install before start(); called from workers for every verdict.
  void set_verdict_sink(VerdictSink sink);

  /// Install before start(); observes every completed window on the worker
  /// path with its raw events (the online-learning feed, see WindowTap).
  void set_window_tap(WindowTap tap);

  /// Install before start(); every anomalous (label −1) completed window
  /// is submitted to `audit` with its events and the session's pinned
  /// detector (drop-not-block; see serve/audit.h). The log must outlive
  /// the server and be started/stopped by the caller.
  void set_audit_log(AuditLog* audit);

  /// Stages `candidate` as the shadow for `profile` (see
  /// DetectorRegistry::begin_shadow) and attaches a shadow stream to every
  /// live session of the profile; sessions opened while the shadow is in
  /// flight attach automatically. `sink` receives one (active, shadow)
  /// verdict pair per aligned window. Returns false when the profile is
  /// absent or already has a shadow in flight.
  bool begin_shadow(const std::string& profile,
                    std::shared_ptr<const core::Detector> candidate,
                    ShadowSink sink);

  /// Concludes the rollover: detaches every shadow stream, then either
  /// promotes the candidate into the registry (the RCU snapshot swap —
  /// zero downtime, live sessions keep serving on their pinned detector)
  /// or rolls it back into the profile's quarantine list. Returns false
  /// when no shadow is in flight.
  bool end_shadow(const std::string& profile, bool promote);

  /// Whether a shadow rollover is in flight for `profile`.
  bool shadowing(const std::string& profile) const {
    return registry_.shadow_candidate(profile) != nullptr;
  }

  /// Spawns the worker pool (and the idle sweeper when idle_ttl > 0).
  /// Events submitted before start() sit in the shard queues and are
  /// drained once workers come up.
  void start();

  /// Closes the queues, drains what remains, joins the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Blocks until every accepted event has been processed. Only
  /// meaningful while the server is started (otherwise nothing drains).
  void drain();

  /// Opens (or returns the already-open) session for `key` served by
  /// `profile`'s detector; nullptr if the profile is not registered
  /// even after `registry_retries` backed-off re-lookups.
  std::shared_ptr<Session> open_session(const SessionKey& key,
                                        const std::string& profile);

  /// Final report for the session; nullopt if it was never opened. Call
  /// after drain() for complete tallies — events still queued for a
  /// closed session are processed (the session lives on), but the
  /// report is taken at close time.
  std::optional<SessionReport> close_session(const SessionKey& key);

  /// Runs one idle-eviction sweep immediately (what the background
  /// sweeper does every sweep_interval); returns the number evicted.
  /// No-op (returns 0) when idle_ttl is zero.
  std::size_t sweep_idle_now();

  /// Enqueues one event for the session. Returns false — and counts the
  /// event as rejected — when the session handle is null or quarantined,
  /// or the server has been stopped. Under kDropOldest (or a shedding
  /// shard) an *older* queued event may be evicted (counted as dropped,
  /// and as shed while shedding) to admit this one.
  bool submit(const std::shared_ptr<Session>& session,
              trace::PartitionedEvent event);

  /// Convenience: looks the session up by key, then submits.
  bool submit(const SessionKey& key, trace::PartitionedEvent event);

 private:
  struct Item {
    std::shared_ptr<Session> session;
    trace::PartitionedEvent event;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(std::size_t shard);
  void sweeper_loop();
  void note_completed(std::uint64_t n);

  const ServerOptions options_;
  DetectorRegistry registry_;
  SessionManager sessions_{&registry_};
  ServerMetrics metrics_;
  VerdictSink sink_;
  WindowTap tap_;  // set before start(), then read-only from workers
  AuditLog* audit_ = nullptr;  // set before start(); not owned
  // tap_ and the audit hook folded into one callable for feed_run; built
  // at start() so the per-window dispatch is a single call.
  WindowTap effective_tap_;
  // Serializes begin/end shadow against the open_session auto-attach.
  mutable std::mutex shadow_mu_;
  std::map<std::string, std::shared_ptr<const ShadowSink>> shadow_sinks_;
  std::vector<std::unique_ptr<BoundedQueue<Item>>> shards_;
  std::vector<std::thread> workers_;
  std::thread sweeper_;
  bool started_ = false;  // guarded by lifecycle_mu_
  bool stopped_ = false;  // guarded by lifecycle_mu_; stop is terminal
  std::mutex lifecycle_mu_;

  // Sweeper wakeup/shutdown handshake.
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  bool sweep_stop_ = false;  // guarded by sweep_mu_

  // drain() bookkeeping: accepted == retired once nothing is in flight.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> retired_{0};  // processed + evicted
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace leaps::serve
