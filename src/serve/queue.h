// Bounded MPMC queue for the serving layer.
//
// A classic mutex + two-condition-variable design: small, obviously correct,
// and fast enough that the SVM classification (hundreds of kernel
// evaluations per window) dominates by orders of magnitude. Producers are
// subject to a backpressure policy when the queue is full:
//
//   kBlock      — push() waits for space (lossless; slows ingest to the
//                 drain rate, the right default for replayed logs),
//   kDropOldest — push() evicts the oldest queued item to make room
//                 (lossy but bounded-latency, the right choice for live
//                 tracers that must never stall the monitored host).
//
// close() wakes everyone; consumers then drain the remaining items and
// pop() returns nullopt once the queue is both closed and empty.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

namespace leaps::serve {

enum class OverflowPolicy {
  kBlock,
  kDropOldest,
};

const char* overflow_policy_name(OverflowPolicy policy);
/// Parses "block" / "drop-oldest"; nullopt on anything else.
std::optional<OverflowPolicy> parse_overflow_policy(std::string_view name);

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity,
                        OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues one item. Under kBlock, waits for space; under kDropOldest
  /// — or kBlock with shedding engaged — never waits and instead evicts
  /// the oldest queued item when full. Returns false (item discarded)
  /// only when the queue is closed. `evicted`, when non-null, receives
  /// the number of items dropped to make room (0 or 1).
  bool push(T item, std::size_t* evicted = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (evicted != nullptr) *evicted = 0;
    if (policy_ == OverflowPolicy::kBlock) {
      space_.wait(lock, [this] {
        return closed_ || shedding_ || items_.size() < capacity_;
      });
    }
    if (closed_) return false;
    if (items_.size() >= capacity_) {
      items_.pop_front();
      ++dropped_;
      if (evicted != nullptr) *evicted = 1;
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    ready_.notify_one();
    return true;
  }

  /// Overload shedding: while engaged, kBlock producers stop waiting and
  /// full pushes evict the oldest item instead (drop-with-accounting, as
  /// if the policy were kDropOldest). Engaging wakes blocked producers.
  void set_shedding(bool on) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (shedding_ == on) return;
      shedding_ = on;
    }
    if (on) space_.notify_all();
  }
  bool shedding() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return shedding_;
  }

  /// Blocks until an item is available; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_.notify_one();
    return item;
  }

  /// Appends up to `max` items to `out`, blocking for the first one.
  /// Returns the number appended; 0 means closed and drained.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    std::size_t n = 0;
    while (n < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    lock.unlock();
    if (n > 0) space_.notify_all();
    return n;
  }

  /// No further pushes succeed; consumers drain what remains.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  /// Deepest the queue has ever been (for metrics high-water marks).
  std::size_t high_water() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }
  /// Items evicted by kDropOldest since construction.
  std::size_t dropped() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable ready_;  // items available
  std::condition_variable space_;  // room available (kBlock producers)
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  std::size_t dropped_ = 0;
  bool closed_ = false;
  bool shedding_ = false;
};

/// Bounded MPMC queue for *weighted* items — the batched hand-off form.
/// Each item carries a weight (events per batch) and capacity, size,
/// high-water, and drop accounting are all in weight units, so a server
/// configured for "4096 queued events" admits exactly that many whether
/// they arrive one per item or thirty-two. Same backpressure policies and
/// close semantics as BoundedQueue, with two differences forced by
/// batching:
///
///   * eviction hands the evicted items back (via `evicted`) instead of
///     returning a count — the caller must retire each evicted event and
///     recycle the batch buffer,
///   * an item heavier than the whole capacity is admitted when the
///     queue is empty (kBlock would otherwise deadlock); it simply
///     occupies the queue alone.
template <typename T>
class WeightedQueue {
 public:
  explicit WeightedQueue(std::size_t capacity,
                         OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  WeightedQueue(const WeightedQueue&) = delete;
  WeightedQueue& operator=(const WeightedQueue&) = delete;

  /// Enqueues one item of `weight` units. Under kBlock, waits until the
  /// item fits (or the queue is empty — see class comment); under
  /// kDropOldest — or kBlock with shedding engaged — evicts oldest items
  /// into `evicted` until it fits. Returns false (item discarded, not
  /// evicted into the vector) only when the queue is closed.
  bool push(T item, std::size_t weight, std::vector<T>* evicted = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_ == OverflowPolicy::kBlock) {
      space_.wait(lock, [this, weight] {
        return closed_ || shedding_ || items_.empty() ||
               weight_ + weight <= capacity_;
      });
    }
    if (closed_) return false;
    while (weight_ + weight > capacity_ && !items_.empty()) {
      Entry& front = items_.front();
      dropped_ += front.weight;
      weight_ -= front.weight;
      if (evicted != nullptr) evicted->push_back(std::move(front.item));
      items_.pop_front();
    }
    items_.push_back(Entry{std::move(item), weight});
    weight_ += weight;
    if (weight_ > high_water_) high_water_ = weight_;
    lock.unlock();
    ready_.notify_one();
    return true;
  }

  /// See BoundedQueue::set_shedding.
  void set_shedding(bool on) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (shedding_ == on) return;
      shedding_ = on;
    }
    if (on) space_.notify_all();
  }
  bool shedding() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return shedding_;
  }

  /// Appends items to `out` until at least `max_weight` units have been
  /// taken (the last item may overshoot), blocking for the first one.
  /// Returns the total weight appended; 0 means closed and drained.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_weight) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    std::size_t taken = 0;
    while (!items_.empty() && (taken == 0 || taken < max_weight)) {
      Entry& front = items_.front();
      taken += front.weight;
      weight_ -= front.weight;
      out.push_back(std::move(front.item));
      items_.pop_front();
    }
    lock.unlock();
    if (taken > 0) space_.notify_all();
    return taken;
  }

  /// No further pushes succeed; consumers drain what remains.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Queued weight (events), not item count.
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return weight_;
  }
  /// Heaviest the queue has ever been, in weight units.
  std::size_t high_water() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }
  /// Weight units evicted since construction.
  std::size_t dropped() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

 private:
  struct Entry {
    T item;
    std::size_t weight;
  };

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable space_;
  std::deque<Entry> items_;
  std::size_t weight_ = 0;
  std::size_t high_water_ = 0;
  std::size_t dropped_ = 0;
  bool closed_ = false;
  bool shedding_ = false;
};

}  // namespace leaps::serve
