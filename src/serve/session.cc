#include "serve/session.h"

#include <exception>
#include <functional>

#include "util/check.h"
#include "util/fault.h"

namespace leaps::serve {

namespace {

std::size_t hash_key(const SessionKey& key) {
  // Boost-style combine; only needs to spread sessions across shards.
  const std::size_t h1 = std::hash<std::string>{}(key.host);
  const std::size_t h2 = std::hash<std::uint32_t>{}(key.pid);
  return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
}

std::shared_ptr<const core::Detector> checked(
    std::shared_ptr<const core::Detector> detector) {
  LEAPS_CHECK_MSG(detector != nullptr, "session needs a detector");
  return detector;
}

}  // namespace

Session::Session(SessionKey key, std::string profile,
                 std::shared_ptr<const core::Detector> detector)
    : key_(std::move(key)),
      profile_(std::move(profile)),
      key_string_(key_.to_string()),
      shard_hash_(hash_key(key_)),
      detector_(checked(std::move(detector))),
      last_active_(
          std::chrono::steady_clock::now().time_since_epoch().count()),
      stream_(detector_->stream()) {}

std::optional<Verdict> Session::feed(const trace::PartitionedEvent& event) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (quarantined()) return std::nullopt;
  touch();
  const std::optional<int> label = stream_.push(event);
  if (!label.has_value()) return std::nullopt;
  return Verdict{stream_.tally().window_labels.size() - 1, *label,
                 stream_.last_decision_value()};
}

RunOutcome Session::feed_run(const trace::PartitionedEvent* const* events,
                             std::size_t count, std::vector<Verdict>& out,
                             std::size_t breaker_threshold,
                             const WindowTap* tap) {
  const std::lock_guard<std::mutex> lock(mu_);
  touch();
  // An untapped call invalidates any partially-buffered window: the buffer
  // would no longer span contiguous events, so restart at a boundary.
  if (tap == nullptr && !tap_buf_.empty()) tap_buf_.clear();
  RunOutcome outcome;
  for (std::size_t i = 0; i < count; ++i) {
    if (quarantined()) {
      ++outcome.skipped;
      continue;
    }
    try {
      LEAPS_FAULT_POINT_DETAIL("serve.worker.classify", key_string_);
      std::optional<int> label;
      std::optional<int> shadow_label;
      if (shadow_ != nullptr) {
        if (!shadow_->aligned && stream_.pending_events() == 0) {
          shadow_->aligned = true;
        }
        if (shadow_->aligned) {
          const auto a0 = std::chrono::steady_clock::now();
          label = stream_.push(*events[i]);
          const auto a1 = std::chrono::steady_clock::now();
          shadow_->active_ns += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(a1 - a0)
                  .count());
          try {
            const auto s0 = std::chrono::steady_clock::now();
            shadow_label = shadow_->stream.push(*events[i]);
            const auto s1 = std::chrono::steady_clock::now();
            shadow_->shadow_ns += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(s1 - s0)
                    .count());
          } catch (...) {
            // A candidate that chokes on live traffic disqualifies itself:
            // drop the shadow, leave the session and active stream alone.
            shadow_.reset();
            shadow_label.reset();
          }
        } else {
          label = stream_.push(*events[i]);
        }
      } else {
        label = stream_.push(*events[i]);
      }
      consecutive_failures_ = 0;
      ++outcome.processed;
      if (tap != nullptr) tap_buf_.push_back(*events[i]);
      if (label.has_value()) {
        const double decision = stream_.last_decision_value();
        const std::size_t window_index =
            stream_.tally().window_labels.size() - 1;
        out.push_back(Verdict{window_index, *label, decision});
        if (shadow_ != nullptr && shadow_label.has_value()) {
          (*shadow_->sink)(key_, *label, *shadow_label, shadow_->active_ns,
                           shadow_->shadow_ns);
          shadow_->active_ns = 0;
          shadow_->shadow_ns = 0;
        }
        if (tap != nullptr) {
          // Report only full windows: a buffer started mid-window is short
          // at its first verdict and merely resynchronizes here.
          if (tap_buf_.size() == detector_->preprocessor().window()) {
            (*tap)(key_, window_index, *label, decision, tap_buf_.data(),
                   tap_buf_.size());
          }
          tap_buf_.clear();
        }
      }
    } catch (...) {
      // Poison event (or injected fault): the event is lost, the stream
      // object stays valid (Stream::push has no partial-commit state the
      // next event can observe corrupted), and the breaker decides
      // whether the whole session is beyond saving.
      ++outcome.failed;
      ++failed_events_;
      if (breaker_threshold > 0 &&
          ++consecutive_failures_ >= breaker_threshold) {
        quarantine();
        outcome.newly_quarantined = true;
      }
    }
  }
  return outcome;
}

bool Session::attach_shadow(std::shared_ptr<const core::Detector> candidate,
                            std::shared_ptr<const ShadowSink> sink) {
  LEAPS_CHECK_MSG(candidate != nullptr, "shadow needs a detector");
  LEAPS_CHECK_MSG(sink != nullptr && *sink, "shadow needs a sink");
  const std::lock_guard<std::mutex> lock(mu_);
  if (shadow_ != nullptr) return false;
  shadow_ = std::make_unique<ShadowState>(std::move(candidate),
                                          std::move(sink));
  return true;
}

bool Session::detach_shadow() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (shadow_ == nullptr) return false;
  shadow_.reset();
  return true;
}

bool Session::has_shadow() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return shadow_ != nullptr;
}

SessionReport Session::report() const {
  const std::lock_guard<std::mutex> lock(mu_);
  SessionReport r;
  r.key = key_;
  r.profile = profile_;
  r.events_seen = stream_.events_seen();
  r.pending_events = stream_.pending_events();
  const core::Detector::ScanResult& tally = stream_.tally();
  r.windows = tally.window_labels.size();
  r.benign_windows = tally.benign_windows;
  r.malicious_windows = tally.malicious_windows;
  r.malicious_fraction = tally.malicious_fraction();
  r.failed_events = failed_events_;
  r.quarantined = quarantined();
  return r;
}

SessionManager::SessionManager(const DetectorRegistry* registry)
    : registry_(registry) {
  LEAPS_CHECK_MSG(registry_ != nullptr, "SessionManager needs a registry");
}

std::shared_ptr<Session> SessionManager::open(const SessionKey& key,
                                              const std::string& profile) {
  {
    const std::shared_lock lock(mu_);
    const auto it = sessions_.find(key);
    if (it != sessions_.end()) return it->second;
  }
  // Snapshot the detector outside the sessions lock.
  std::shared_ptr<const core::Detector> detector = registry_->find(profile);
  if (detector == nullptr) return nullptr;
  auto session =
      std::make_shared<Session>(key, profile, std::move(detector));
  const std::unique_lock lock(mu_);
  // Another opener may have raced us; first one in wins.
  const auto [it, inserted] = sessions_.emplace(key, std::move(session));
  return it->second;
}

std::shared_ptr<Session> SessionManager::find(const SessionKey& key) const {
  const std::shared_lock lock(mu_);
  const auto it = sessions_.find(key);
  return it == sessions_.end() ? nullptr : it->second;
}

std::optional<SessionReport> SessionManager::close(const SessionKey& key) {
  std::shared_ptr<Session> session;
  {
    const std::unique_lock lock(mu_);
    const auto it = sessions_.find(key);
    if (it == sessions_.end()) return std::nullopt;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  return session->report();
}

std::vector<SessionReport> SessionManager::evict_idle(
    std::chrono::steady_clock::time_point cutoff) {
  std::vector<std::shared_ptr<Session>> evicted;
  {
    const std::unique_lock lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->last_active() < cutoff) {
        evicted.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Reports outside the manager lock: report() takes each session's mutex.
  std::vector<SessionReport> reports;
  reports.reserve(evicted.size());
  for (const auto& s : evicted) reports.push_back(s->report());
  return reports;
}

std::size_t SessionManager::active() const {
  const std::shared_lock lock(mu_);
  return sessions_.size();
}

std::vector<SessionReport> SessionManager::reports() const {
  std::vector<std::shared_ptr<Session>> live;
  {
    const std::shared_lock lock(mu_);
    live.reserve(sessions_.size());
    for (const auto& [_, s] : sessions_) live.push_back(s);
  }
  std::vector<SessionReport> out;
  out.reserve(live.size());
  for (const auto& s : live) out.push_back(s->report());
  return out;
}

std::vector<std::shared_ptr<Session>> SessionManager::sessions_for(
    const std::string& profile) const {
  std::vector<std::shared_ptr<Session>> out;
  const std::shared_lock lock(mu_);
  for (const auto& [_, s] : sessions_) {
    if (s->profile() == profile) out.push_back(s);
  }
  return out;
}

}  // namespace leaps::serve
