#include "serve/session.h"

#include <algorithm>
#include <bit>
#include <exception>
#include <functional>

#include "util/check.h"
#include "util/fault.h"

namespace leaps::serve {

namespace {

std::size_t hash_key(const SessionKey& key) {
  // Boost-style combine; only needs to spread sessions across shards.
  const std::size_t h1 = std::hash<std::string>{}(key.host);
  const std::size_t h2 = std::hash<std::uint32_t>{}(key.pid);
  return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
}

std::shared_ptr<const core::Detector> checked(
    std::shared_ptr<const core::Detector> detector) {
  LEAPS_CHECK_MSG(detector != nullptr, "session needs a detector");
  return detector;
}

}  // namespace

Session::Session(SessionKey key, std::string profile,
                 std::shared_ptr<const core::Detector> detector)
    : key_(std::move(key)),
      profile_(std::move(profile)),
      key_string_(key_.to_string()),
      shard_hash_(hash_key(key_)),
      detector_(checked(std::move(detector))),
      table_(&trace::TokenTable::global()),
      last_active_(
          std::chrono::steady_clock::now().time_since_epoch().count()),
      stream_(detector_->stream()) {}

std::optional<Verdict> Session::feed(const trace::PartitionedEvent& event) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (quarantined()) return std::nullopt;
  touch();
  const std::optional<int> label = stream_.push(event);
  if (!label.has_value()) return std::nullopt;
  return Verdict{stream_.tally().window_labels.size() - 1, *label,
                 stream_.last_decision_value()};
}

RunOutcome Session::feed_run(std::span<const trace::CompactEvent> events,
                             std::vector<Verdict>& out,
                             std::size_t breaker_threshold,
                             const WindowTap* tap) {
  const std::lock_guard<std::mutex> lock(mu_);
  touch();
  // An untapped call invalidates any partially-buffered window: the buffer
  // would no longer span contiguous events, so restart at a boundary.
  if (tap == nullptr && !tap_buf_.empty()) tap_buf_.clear();
  RunOutcome outcome;
  for (const trace::CompactEvent& event : events) {
    if (quarantined()) {
      ++outcome.skipped;
      continue;
    }
    try {
      LEAPS_FAULT_POINT_DETAIL("serve.worker.classify", key_string_);
      std::optional<int> label;
      std::optional<int> shadow_label;
      if (shadow_ != nullptr) {
        if (!shadow_->aligned && stream_.pending_events() == 0) {
          shadow_->aligned = true;
        }
        if (shadow_->aligned) {
          const auto a0 = std::chrono::steady_clock::now();
          label = stream_.push(event, *table_);
          const auto a1 = std::chrono::steady_clock::now();
          shadow_->active_ns += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(a1 - a0)
                  .count());
          try {
            const auto s0 = std::chrono::steady_clock::now();
            shadow_label = shadow_->stream.push(event, *table_);
            const auto s1 = std::chrono::steady_clock::now();
            shadow_->shadow_ns += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(s1 - s0)
                    .count());
          } catch (...) {
            // A candidate that chokes on live traffic disqualifies itself:
            // drop the shadow, leave the session and active stream alone.
            shadow_.reset();
            shadow_label.reset();
          }
        } else {
          label = stream_.push(event, *table_);
        }
      } else {
        label = stream_.push(event, *table_);
      }
      consecutive_failures_ = 0;
      ++outcome.processed;
      if (tap != nullptr) tap_buf_.push_back(event);
      if (label.has_value()) {
        const double decision = stream_.last_decision_value();
        const std::size_t window_index =
            stream_.tally().window_labels.size() - 1;
        out.push_back(Verdict{window_index, *label, decision});
        if (shadow_ != nullptr && shadow_label.has_value()) {
          (*shadow_->sink)(key_, *label, *shadow_label, shadow_->active_ns,
                           shadow_->shadow_ns);
          shadow_->active_ns = 0;
          shadow_->shadow_ns = 0;
        }
        if (tap != nullptr) {
          // Report only full windows: a buffer started mid-window is short
          // at its first verdict and merely resynchronizes here. Tapped
          // windows are materialized back to the string form exactly
          // (TokenTable interning is lossless), so tap consumers — the
          // online accumulator, the durable WAL, the audit stream — see
          // byte-identical events to the pre-interning fabric.
          if (tap_buf_.size() == detector_->preprocessor().window()) {
            tap_scratch_.clear();
            tap_scratch_.reserve(tap_buf_.size());
            for (const trace::CompactEvent& e : tap_buf_) {
              tap_scratch_.push_back(table_->materialize(e));
            }
            (*tap)(key_, window_index, *label, decision,
                   tap_scratch_.data(), tap_scratch_.size());
          }
          tap_buf_.clear();
        }
      }
    } catch (...) {
      // Poison event (or injected fault): the event is lost, the stream
      // object stays valid (Stream::push has no partial-commit state the
      // next event can observe corrupted), and the breaker decides
      // whether the whole session is beyond saving.
      ++outcome.failed;
      ++failed_events_;
      if (breaker_threshold > 0 &&
          ++consecutive_failures_ >= breaker_threshold) {
        quarantine();
        outcome.newly_quarantined = true;
      }
    }
  }
  return outcome;
}

RunOutcome Session::feed_run(const trace::PartitionedEvent* const* events,
                             std::size_t count, std::vector<Verdict>& out,
                             std::size_t breaker_threshold,
                             const WindowTap* tap) {
  auto& table = trace::TokenTable::global();
  std::vector<trace::CompactEvent> compact;
  compact.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    compact.push_back(table.compact(*events[i]));
  }
  return feed_run(std::span<const trace::CompactEvent>(compact), out,
                  breaker_threshold, tap);
}

bool Session::attach_shadow(std::shared_ptr<const core::Detector> candidate,
                            std::shared_ptr<const ShadowSink> sink) {
  LEAPS_CHECK_MSG(candidate != nullptr, "shadow needs a detector");
  LEAPS_CHECK_MSG(sink != nullptr && *sink, "shadow needs a sink");
  const std::lock_guard<std::mutex> lock(mu_);
  if (shadow_ != nullptr) return false;
  shadow_ = std::make_unique<ShadowState>(std::move(candidate),
                                          std::move(sink));
  return true;
}

bool Session::detach_shadow() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (shadow_ == nullptr) return false;
  shadow_.reset();
  return true;
}

bool Session::has_shadow() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return shadow_ != nullptr;
}

SessionReport Session::report() const {
  const std::lock_guard<std::mutex> lock(mu_);
  SessionReport r;
  r.key = key_;
  r.profile = profile_;
  r.events_seen = stream_.events_seen();
  r.pending_events = stream_.pending_events();
  const core::Detector::ScanResult& tally = stream_.tally();
  r.windows = tally.window_labels.size();
  r.benign_windows = tally.benign_windows;
  r.malicious_windows = tally.malicious_windows;
  r.malicious_fraction = tally.malicious_fraction();
  r.failed_events = failed_events_;
  r.quarantined = quarantined();
  return r;
}

SessionManager::SessionManager(const DetectorRegistry* registry,
                               std::size_t shards,
                               std::shared_ptr<SlabGauges> slab_gauges)
    : registry_(registry),
      pool_(std::make_shared<SlabPool>(/*slots_per_chunk=*/256,
                                       std::move(slab_gauges))) {
  LEAPS_CHECK_MSG(registry_ != nullptr, "SessionManager needs a registry");
  const std::size_t n = std::bit_ceil(shards == 0 ? std::size_t{1} : shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionManager::Shard& SessionManager::shard_for(
    const SessionKey& key) const {
  // shards_.size() is a power of two, so masking the key hash picks a
  // shard uniformly; Session::shard_hash() uses the same hash, keeping
  // queue sharding and table sharding coherent.
  return *shards_[hash_key(key) & (shards_.size() - 1)];
}

std::shared_ptr<Session> SessionManager::open(const SessionKey& key,
                                              const std::string& profile) {
  Shard& shard = shard_for(key);
  {
    const std::shared_lock lock(shard.mu);
    const auto it = shard.sessions.find(key);
    if (it != shard.sessions.end()) return it->second;
  }
  // Snapshot the detector outside the shard lock.
  std::shared_ptr<const core::Detector> detector = registry_->find(profile);
  if (detector == nullptr) return nullptr;
  // allocate_shared: the Session and its control block land in one slab
  // slot; the allocator's pool shared_ptr keeps the slot's chunk alive
  // even if the manager dies while queued events still hold the session.
  auto session = std::allocate_shared<Session>(
      SlabAllocator<Session>(pool_), key, profile, std::move(detector));
  const std::unique_lock lock(shard.mu);
  // Another opener may have raced us; first one in wins.
  const auto [it, inserted] = shard.sessions.emplace(key, std::move(session));
  return it->second;
}

std::shared_ptr<Session> SessionManager::find(const SessionKey& key) const {
  Shard& shard = shard_for(key);
  const std::shared_lock lock(shard.mu);
  const auto it = shard.sessions.find(key);
  return it == shard.sessions.end() ? nullptr : it->second;
}

std::optional<SessionReport> SessionManager::close(const SessionKey& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<Session> session;
  {
    const std::unique_lock lock(shard.mu);
    const auto it = shard.sessions.find(key);
    if (it == shard.sessions.end()) return std::nullopt;
    session = std::move(it->second);
    shard.sessions.erase(it);
  }
  return session->report();
}

std::vector<SessionReport> SessionManager::evict_idle(
    std::chrono::steady_clock::time_point cutoff) {
  const std::vector<std::shared_ptr<Session>> evicted =
      evict_idle_sessions(cutoff);
  // Reports outside the shard locks: report() takes each session's mutex.
  std::vector<SessionReport> reports;
  reports.reserve(evicted.size());
  for (const auto& s : evicted) reports.push_back(s->report());
  return reports;
}

std::vector<std::shared_ptr<Session>> SessionManager::evict_idle_sessions(
    std::chrono::steady_clock::time_point cutoff) {
  std::vector<std::shared_ptr<Session>> evicted;
  for (const auto& shard : shards_) {
    const std::unique_lock lock(shard->mu);
    for (auto it = shard->sessions.begin(); it != shard->sessions.end();) {
      if (it->second->last_active() < cutoff) {
        evicted.push_back(std::move(it->second));
        it = shard->sessions.erase(it);
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

std::size_t SessionManager::active() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::shared_lock lock(shard->mu);
    n += shard->sessions.size();
  }
  return n;
}

std::vector<SessionReport> SessionManager::reports() const {
  std::vector<std::shared_ptr<Session>> live = all();
  // Key order, as before sharding (shards interleave the key space).
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a->key() < b->key(); });
  std::vector<SessionReport> out;
  out.reserve(live.size());
  for (const auto& s : live) out.push_back(s->report());
  return out;
}

std::vector<std::shared_ptr<Session>> SessionManager::sessions_for(
    const std::string& profile) const {
  std::vector<std::shared_ptr<Session>> out;
  for (const auto& shard : shards_) {
    const std::shared_lock lock(shard->mu);
    for (const auto& [_, s] : shard->sessions) {
      if (s->profile() == profile) out.push_back(s);
    }
  }
  return out;
}

std::vector<std::shared_ptr<Session>> SessionManager::all() const {
  std::vector<std::shared_ptr<Session>> out;
  for (const auto& shard : shards_) {
    const std::shared_lock lock(shard->mu);
    for (const auto& [_, s] : shard->sessions) out.push_back(s);
  }
  return out;
}

}  // namespace leaps::serve
