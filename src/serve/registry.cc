#include "serve/registry.h"

#include <mutex>

#include "core/persist.h"
#include "util/check.h"
#include "util/fault.h"

namespace leaps::serve {

void DetectorRegistry::add(const std::string& profile,
                           std::shared_ptr<const core::Detector> detector) {
  LEAPS_CHECK_MSG(detector != nullptr, "registry detector must not be null");
  const std::unique_lock lock(mu_);
  detectors_[profile] = std::move(detector);
}

void DetectorRegistry::load_file(const std::string& profile,
                                 const std::string& path) {
  // Parse outside the lock: loading is slow, swapping is cheap.
  auto detector =
      std::make_shared<const core::Detector>(core::load_detector_file(path));
  add(profile, std::move(detector));
}

std::shared_ptr<const core::Detector> DetectorRegistry::find(
    const std::string& profile) const {
  // Chaos hook: a kError arming simulates the transient miss window of an
  // operator reload (erase-then-add), which open_session retries over.
  {
    auto& injector = util::FaultInjector::instance();
    if (injector.any_armed() &&
        !injector.hit("serve.registry.find", profile).ok()) {
      return nullptr;
    }
  }
  const std::shared_lock lock(mu_);
  const auto it = detectors_.find(profile);
  return it == detectors_.end() ? nullptr : it->second;
}

bool DetectorRegistry::contains(const std::string& profile) const {
  const std::shared_lock lock(mu_);
  return detectors_.count(profile) > 0;
}

bool DetectorRegistry::erase(const std::string& profile) {
  const std::unique_lock lock(mu_);
  return detectors_.erase(profile) > 0;
}

std::vector<std::string> DetectorRegistry::profiles() const {
  const std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(detectors_.size());
  for (const auto& [name, _] : detectors_) out.push_back(name);
  return out;
}

std::size_t DetectorRegistry::size() const {
  const std::shared_lock lock(mu_);
  return detectors_.size();
}

bool DetectorRegistry::begin_shadow(
    const std::string& profile,
    std::shared_ptr<const core::Detector> candidate) {
  LEAPS_CHECK_MSG(candidate != nullptr, "shadow candidate must not be null");
  const std::unique_lock lock(mu_);
  if (detectors_.count(profile) == 0) return false;
  const auto [it, inserted] = shadows_.emplace(profile, std::move(candidate));
  return inserted;
}

std::shared_ptr<const core::Detector> DetectorRegistry::shadow_candidate(
    const std::string& profile) const {
  const std::shared_lock lock(mu_);
  const auto it = shadows_.find(profile);
  return it == shadows_.end() ? nullptr : it->second;
}

bool DetectorRegistry::promote_shadow(const std::string& profile) {
  const std::unique_lock lock(mu_);
  const auto it = shadows_.find(profile);
  if (it == shadows_.end()) return false;
  // The same snapshot swap as add(): sessions opened before this keep the
  // detector they pinned; the promoted model serves everyone after.
  detectors_[profile] = std::move(it->second);
  shadows_.erase(it);
  return true;
}

bool DetectorRegistry::rollback_shadow(const std::string& profile) {
  const std::unique_lock lock(mu_);
  const auto it = shadows_.find(profile);
  if (it == shadows_.end()) return false;
  quarantined_[profile].push_back(std::move(it->second));
  shadows_.erase(it);
  return true;
}

std::size_t DetectorRegistry::quarantined_count(
    const std::string& profile) const {
  const std::shared_lock lock(mu_);
  const auto it = quarantined_.find(profile);
  return it == quarantined_.end() ? 0 : it->second.size();
}

std::shared_ptr<const core::Detector> DetectorRegistry::last_quarantined(
    const std::string& profile) const {
  const std::shared_lock lock(mu_);
  const auto it = quarantined_.find(profile);
  if (it == quarantined_.end() || it->second.empty()) return nullptr;
  return it->second.back();
}

std::vector<std::shared_ptr<const core::Detector>>
DetectorRegistry::quarantined_all(const std::string& profile) const {
  const std::shared_lock lock(mu_);
  const auto it = quarantined_.find(profile);
  if (it == quarantined_.end()) return {};
  return it->second;
}

void DetectorRegistry::restore_quarantined(
    const std::string& profile,
    std::shared_ptr<const core::Detector> candidate) {
  const std::unique_lock lock(mu_);
  quarantined_[profile].push_back(std::move(candidate));
}

}  // namespace leaps::serve
