#include "serve/server.h"

#include <algorithm>
#include <span>

#include "obs/trace.h"
#include "util/check.h"

namespace leaps::serve {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// p99 (upper-rank) of a small scratch vector; mutates `waits_us`.
std::uint64_t batch_p99_us(std::vector<std::uint64_t>& waits_us) {
  if (waits_us.empty()) return 0;
  const std::size_t rank =
      static_cast<std::size_t>(0.99 * static_cast<double>(waits_us.size()));
  const std::size_t idx = std::min(rank, waits_us.size() - 1);
  std::nth_element(waits_us.begin(),
                   waits_us.begin() + static_cast<std::ptrdiff_t>(idx),
                   waits_us.end());
  return waits_us[idx];
}

}  // namespace

DetectionServer::DetectionServer(ServerOptions options) : options_(options) {
  LEAPS_CHECK_MSG(options_.workers >= 1, "server needs at least one worker");
  LEAPS_CHECK_MSG(options_.batch_size >= 1, "batch size must be >= 1");
  LEAPS_CHECK_MSG(options_.coalesce >= 1, "coalesce must be >= 1");
  shards_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    shards_.push_back(std::make_unique<WeightedQueue<EventBatch>>(
        options_.queue_capacity, options_.overflow));
  }
}

DetectionServer::~DetectionServer() { stop(); }

void DetectionServer::set_verdict_sink(VerdictSink sink) {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  LEAPS_CHECK_MSG(!started_, "set the verdict sink before start()");
  sink_ = std::move(sink);
}

void DetectionServer::set_window_tap(WindowTap tap) {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  LEAPS_CHECK_MSG(!started_, "set the window tap before start()");
  tap_ = std::move(tap);
}

void DetectionServer::set_audit_log(AuditLog* audit) {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  LEAPS_CHECK_MSG(!started_, "set the audit log before start()");
  audit_ = audit;
}

void DetectionServer::add_window_tap(WindowTap tap) {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  LEAPS_CHECK_MSG(!started_, "add window taps before start()");
  LEAPS_CHECK_MSG(tap, "add_window_tap needs a callable tap");
  extra_taps_.push_back(std::move(tap));
}

bool DetectionServer::begin_shadow(
    const std::string& profile,
    std::shared_ptr<const core::Detector> candidate, ShadowSink sink) {
  LEAPS_CHECK_MSG(sink, "begin_shadow needs a sink");
  auto shared_sink = std::make_shared<const ShadowSink>(std::move(sink));
  {
    // Stage candidate and sink atomically w.r.t. the open_session
    // auto-attach: an opener that sees the candidate must find the sink.
    const std::lock_guard<std::mutex> lock(shadow_mu_);
    if (!registry_.begin_shadow(profile, candidate)) return false;
    shadow_sinks_[profile] = shared_sink;
  }
  for (const auto& session : sessions_.sessions_for(profile)) {
    session->attach_shadow(candidate, shared_sink);
  }
  return true;
}

bool DetectionServer::end_shadow(const std::string& profile, bool promote) {
  {
    const std::lock_guard<std::mutex> lock(shadow_mu_);
    const bool ok = promote ? registry_.promote_shadow(profile)
                            : registry_.rollback_shadow(profile);
    if (!ok) return false;
    shadow_sinks_.erase(profile);
  }
  // With the candidate gone from the registry no new session can attach,
  // so this sweep leaves nothing shadowed behind it.
  for (const auto& session : sessions_.sessions_for(profile)) {
    session->detach_shadow();
  }
  return true;
}

void DetectionServer::start() {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return;
  LEAPS_CHECK_MSG(!stopped_, "a stopped server cannot be restarted");
  // Fold the user tap, the extra taps, and the audit hook into one window
  // callback so feed_run buffers events whenever any consumer wants them.
  if (audit_ != nullptr || !extra_taps_.empty()) {
    effective_tap_ = [this](const SessionKey& key, std::size_t window_index,
                            int label, double decision_value,
                            const trace::PartitionedEvent* events,
                            std::size_t count) {
      if (tap_) tap_(key, window_index, label, decision_value, events, count);
      for (const WindowTap& tap : extra_taps_) {
        tap(key, window_index, label, decision_value, events, count);
      }
      if (audit_ != nullptr && label == -1) {
        // Anomalous verdicts are the rare path; the session lookup (one
        // shared-lock map find) buys the audit record the exact detector
        // snapshot that scored the window.
        if (const std::shared_ptr<Session> s = sessions_.find(key)) {
          audit_->submit(key, s->profile(), window_index, label,
                         decision_value, events, count, s->detector());
        }
      }
    };
  } else {
    effective_tap_ = tap_;
  }
  started_ = true;
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (options_.idle_ttl.count() > 0) {
    sweeper_ = std::thread([this] { sweeper_loop(); });
  }
}

void DetectionServer::stop() {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  stopped_ = true;
  // Fence new submits, then flush what already staged: any submit that
  // misses this store re-checks closing_ after staging and self-flushes
  // (see the closing_ comment in the header), so no event strands.
  closing_.store(true, std::memory_order_seq_cst);
  // Sweeper first: it must not race session eviction against shutdown.
  {
    const std::lock_guard<std::mutex> sweep_lock(sweep_mu_);
    sweep_stop_ = true;
  }
  sweep_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
  flush_all_stages();  // queues still open; workers still draining
  for (const auto& shard : shards_) shard->close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  started_ = false;
}

void DetectionServer::drain() {
  // Ship partial stages first, or their events would never retire and
  // this wait could not terminate.
  flush_all_stages();
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return retired_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

std::shared_ptr<Session> DetectionServer::open_session(
    const SessionKey& key, const std::string& profile) {
  std::shared_ptr<Session> session = sessions_.open(key, profile);
  for (std::size_t attempt = 0;
       session == nullptr && attempt < options_.registry_retries; ++attempt) {
    metrics_.registry_retries.fetch_add(1, kRelaxed);
    const auto backoff =
        options_.registry_backoff * (std::int64_t{1}
                                     << std::min<std::size_t>(attempt, 6));
    std::this_thread::sleep_for(backoff);
    session = sessions_.open(key, profile);
  }
  if (session != nullptr) {
    metrics_.sessions_opened.fetch_add(1, kRelaxed);
    // Auto-attach while a shadow rollover is in flight for the profile.
    std::shared_ptr<const core::Detector> candidate =
        registry_.shadow_candidate(profile);
    if (candidate != nullptr) {
      std::shared_ptr<const ShadowSink> sink;
      {
        const std::lock_guard<std::mutex> lock(shadow_mu_);
        const auto it = shadow_sinks_.find(profile);
        if (it != shadow_sinks_.end()) sink = it->second;
      }
      if (sink != nullptr) {
        session->attach_shadow(candidate, sink);
        // end_shadow may have swept between our lookup and the attach;
        // never leave a stale shadow on a session it could not see.
        if (registry_.shadow_candidate(profile) != candidate) {
          session->detach_shadow();
        }
      }
    }
  }
  return session;
}

std::optional<SessionReport> DetectionServer::close_session(
    const SessionKey& key) {
  // Hold the handle across close so any staged events can still ship
  // (they are already counted ingested and must retire).
  const std::shared_ptr<Session> session = sessions_.find(key);
  std::optional<SessionReport> report = sessions_.close(key);
  if (report.has_value()) {
    metrics_.sessions_closed.fetch_add(1, kRelaxed);
    if (session != nullptr) flush_staged(session);
  }
  return report;
}

std::size_t DetectionServer::sweep_idle_now() {
  if (options_.idle_ttl.count() == 0) return 0;
  const auto cutoff = std::chrono::steady_clock::now() - options_.idle_ttl;
  const std::vector<std::shared_ptr<Session>> evicted =
      sessions_.evict_idle_sessions(cutoff);
  if (!evicted.empty()) {
    metrics_.sessions_evicted.fetch_add(evicted.size(), kRelaxed);
    // An evicted session's staged events still retire: flush them now
    // (the queue keeps the session alive until they are processed).
    for (const auto& s : evicted) flush_staged(s);
  }
  return evicted.size();
}

bool DetectionServer::submit(const std::shared_ptr<Session>& session,
                             trace::PartitionedEvent event) {
  if (session == nullptr || session->quarantined()) {
    metrics_.events_rejected.fetch_add(1, kRelaxed);
    return false;
  }
  if (closing_.load(std::memory_order_seq_cst)) {
    metrics_.events_rejected.fetch_add(1, kRelaxed);
    return false;
  }
  // Ingest boundary: the event's strings die here; only the compact form
  // (interned ids, see trace/intern.h) flows onward.
  const trace::CompactEvent compact =
      trace::TokenTable::global().compact(event);
  accepted_.fetch_add(1, std::memory_order_release);
  metrics_.events_ingested.fetch_add(1, kRelaxed);
  {
    const std::lock_guard<std::mutex> lock(session->stage_mutex());
    session->stage().push_back(compact);
    if (session->stage().size() >= options_.coalesce) {
      flush_locked(session);
    }
  }
  // Shutdown race: if stop() raised closing_ after our check above, its
  // flush_all_stages may already have passed this session. Re-check and
  // self-flush so the staged event retires either way.
  if (closing_.load(std::memory_order_seq_cst)) flush_staged(session);
  return true;
}

bool DetectionServer::submit(const SessionKey& key,
                             trace::PartitionedEvent event) {
  return submit(sessions_.find(key), std::move(event));
}

void DetectionServer::retire_dropped(std::size_t n, bool shed) {
  metrics_.events_dropped.fetch_add(n, kRelaxed);
  if (shed) metrics_.events_shed.fetch_add(n, kRelaxed);
  note_completed(n);
}

void DetectionServer::flush_locked(const std::shared_ptr<Session>& session) {
  if (session->stage().empty()) return;
  EventBatch batch;
  batch.session = session;
  batch.events = std::move(session->stage());
  session->stage() = batch_pool_.acquire();
  batch.enqueued = std::chrono::steady_clock::now();
  const std::size_t weight = batch.events.size();
  WeightedQueue<EventBatch>& shard =
      *shards_[session->shard_hash() % shards_.size()];
  // Pushed while the stage lock is held: two racing flushes for one
  // session would otherwise be able to enqueue out of order, corrupting
  // the per-session FIFO that window assembly depends on.
  std::vector<EventBatch> evicted;
  const bool ok = shard.push(std::move(batch), weight, &evicted);
  metrics_.note_queue_depth(shard.high_water());
  if (!evicted.empty()) {
    const bool shed = shard.shedding();
    for (EventBatch& b : evicted) {
      retire_dropped(b.events.size(), shed);
      batch_pool_.release(std::move(b.events));
    }
  }
  if (!ok) {
    // Queue closed mid-shutdown: these events were accepted (ingested),
    // so they retire as dropped to keep the accounting identity exact.
    retire_dropped(weight, false);
  }
}

void DetectionServer::flush_staged(const std::shared_ptr<Session>& session) {
  const std::lock_guard<std::mutex> lock(session->stage_mutex());
  flush_locked(session);
}

void DetectionServer::flush_all_stages() {
  // Coalesce == 1 ships every event at submit; nothing can be staged.
  if (options_.coalesce <= 1) return;
  for (const auto& session : sessions_.all()) flush_staged(session);
}

void DetectionServer::note_completed(std::uint64_t n) {
  retired_.fetch_add(n, std::memory_order_release);
  // Serialize with drain()'s predicate check, then wake it.
  {
    const std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

void DetectionServer::sweeper_loop() {
  std::unique_lock<std::mutex> lock(sweep_mu_);
  while (!sweep_stop_) {
    sweep_cv_.wait_for(lock, options_.sweep_interval,
                       [this] { return sweep_stop_; });
    if (sweep_stop_) break;
    lock.unlock();
    sweep_idle_now();
    lock.lock();
  }
}

void DetectionServer::worker_loop(std::size_t shard_index) {
  WeightedQueue<EventBatch>& queue = *shards_[shard_index];
  std::vector<EventBatch> batches;
  std::vector<trace::CompactEvent> run;
  std::vector<Verdict> verdicts;
  std::vector<std::uint64_t> waits_us;
  batches.reserve(options_.batch_size);
  run.reserve(options_.batch_size);
  waits_us.reserve(options_.batch_size);
  while (true) {
    batches.clear();
    const std::size_t n = queue.pop_batch(batches, options_.batch_size);
    if (n == 0) break;  // closed and drained
    metrics_.batches_drained.fetch_add(1, kRelaxed);
    const auto dequeued = std::chrono::steady_clock::now();
    waits_us.clear();
    for (const EventBatch& b : batches) {
      const auto wait = dequeued - b.enqueued;
      metrics_.queue_wait.record(wait);
      waits_us.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(wait)
              .count()));
    }
    if (options_.shed_queue_wait_us > 0) {
      // Overload shedding with hysteresis: engage when this batch waited
      // p99 > threshold; disengage once waits recover below half of it.
      const std::uint64_t p99 = batch_p99_us(waits_us);
      if (!queue.shedding() && p99 > options_.shed_queue_wait_us) {
        queue.set_shedding(true);
        metrics_.shed_activations.fetch_add(1, kRelaxed);
      } else if (queue.shedding() &&
                 p99 * 2 < options_.shed_queue_wait_us) {
        queue.set_shedding(false);
      }
    }
    // Feed maximal consecutive same-session runs under one session lock —
    // this is where window classification batches up. Compact events are
    // 32-byte PODs, so concatenating a run is a cheap copy.
    std::size_t i = 0;
    while (i < batches.size()) {
      std::size_t j = i;
      run.clear();
      while (j < batches.size() && batches[j].session == batches[i].session) {
        run.insert(run.end(), batches[j].events.begin(),
                   batches[j].events.end());
        ++j;
      }
      verdicts.clear();
      LEAPS_SPAN("serve.feed_run");
      const auto t0 = std::chrono::steady_clock::now();
      RunOutcome outcome;
      bool run_ok = true;
      try {
        outcome = batches[i].session->feed_run(
            std::span<const trace::CompactEvent>(run), verdicts,
            options_.circuit_breaker,
            effective_tap_ ? &effective_tap_ : nullptr);
      } catch (...) {
        // feed_run guards each event, so reaching here means something
        // escaped even that (e.g. a throwing verdict copy). Quarantine
        // the session and account the whole run — the worker survives.
        run_ok = false;
      }
      metrics_.classify.record(std::chrono::steady_clock::now() - t0);
      if (!run_ok) {
        const bool already = batches[i].session->quarantined();
        batches[i].session->quarantine();
        if (!already) metrics_.sessions_quarantined.fetch_add(1, kRelaxed);
        metrics_.events_failed.fetch_add(run.size(), kRelaxed);
        metrics_.events_quarantined.fetch_add(run.size(), kRelaxed);
        note_completed(run.size());
        for (std::size_t k = i; k < j; ++k) {
          batch_pool_.release(std::move(batches[k].events));
        }
        i = j;
        continue;
      }
      metrics_.events_processed.fetch_add(outcome.processed, kRelaxed);
      if (outcome.failed > 0) {
        metrics_.events_failed.fetch_add(outcome.failed, kRelaxed);
      }
      if (outcome.failed + outcome.skipped > 0) {
        metrics_.events_quarantined.fetch_add(
            outcome.failed + outcome.skipped, kRelaxed);
      }
      if (outcome.newly_quarantined) {
        metrics_.sessions_quarantined.fetch_add(1, kRelaxed);
      }
      for (const Verdict& v : verdicts) {
        metrics_.windows_scored.fetch_add(1, kRelaxed);
        (v.label == 1 ? metrics_.verdicts_benign
                      : metrics_.verdicts_malicious)
            .fetch_add(1, kRelaxed);
        metrics_.decision_values.observe(v.decision_value);
        if (sink_) {
          sink_(VerdictRecord{batches[i].session->key(), v.window_index,
                              v.label, v.decision_value});
        }
      }
      note_completed(run.size());
      for (std::size_t k = i; k < j; ++k) {
        batch_pool_.release(std::move(batches[k].events));
      }
      i = j;
    }
  }
}

}  // namespace leaps::serve
