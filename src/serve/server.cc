#include "serve/server.h"

#include "util/check.h"

namespace leaps::serve {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

DetectionServer::DetectionServer(ServerOptions options) : options_(options) {
  LEAPS_CHECK_MSG(options_.workers >= 1, "server needs at least one worker");
  LEAPS_CHECK_MSG(options_.batch_size >= 1, "batch size must be >= 1");
  shards_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    shards_.push_back(std::make_unique<BoundedQueue<Item>>(
        options_.queue_capacity, options_.overflow));
  }
}

DetectionServer::~DetectionServer() { stop(); }

void DetectionServer::set_verdict_sink(VerdictSink sink) {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  LEAPS_CHECK_MSG(!started_, "set the verdict sink before start()");
  sink_ = std::move(sink);
}

void DetectionServer::start() {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return;
  LEAPS_CHECK_MSG(!stopped_, "a stopped server cannot be restarted");
  started_ = true;
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void DetectionServer::stop() {
  const std::lock_guard<std::mutex> lock(lifecycle_mu_);
  stopped_ = true;
  for (const auto& shard : shards_) shard->close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  started_ = false;
}

void DetectionServer::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return retired_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

std::shared_ptr<Session> DetectionServer::open_session(
    const SessionKey& key, const std::string& profile) {
  std::shared_ptr<Session> session = sessions_.open(key, profile);
  if (session != nullptr) metrics_.sessions_opened.fetch_add(1, kRelaxed);
  return session;
}

std::optional<SessionReport> DetectionServer::close_session(
    const SessionKey& key) {
  std::optional<SessionReport> report = sessions_.close(key);
  if (report.has_value()) metrics_.sessions_closed.fetch_add(1, kRelaxed);
  return report;
}

bool DetectionServer::submit(const std::shared_ptr<Session>& session,
                             trace::PartitionedEvent event) {
  if (session == nullptr) {
    metrics_.events_rejected.fetch_add(1, kRelaxed);
    return false;
  }
  BoundedQueue<Item>& shard =
      *shards_[session->shard_hash() % shards_.size()];
  accepted_.fetch_add(1, std::memory_order_release);
  std::size_t evicted = 0;
  const bool ok = shard.push(
      Item{session, std::move(event), std::chrono::steady_clock::now()},
      &evicted);
  metrics_.note_queue_depth(shard.high_water());
  if (evicted > 0) {
    metrics_.events_dropped.fetch_add(evicted, kRelaxed);
    note_completed(evicted);  // evicted events retire unprocessed
  }
  if (!ok) {
    // Queue closed (server stopped): the event was never enqueued.
    metrics_.events_rejected.fetch_add(1, kRelaxed);
    note_completed(1);
    return false;
  }
  metrics_.events_ingested.fetch_add(1, kRelaxed);
  return true;
}

bool DetectionServer::submit(const SessionKey& key,
                             trace::PartitionedEvent event) {
  return submit(sessions_.find(key), std::move(event));
}

void DetectionServer::note_completed(std::uint64_t n) {
  retired_.fetch_add(n, std::memory_order_release);
  // Serialize with drain()'s predicate check, then wake it.
  {
    const std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

void DetectionServer::worker_loop(std::size_t shard_index) {
  BoundedQueue<Item>& queue = *shards_[shard_index];
  std::vector<Item> batch;
  std::vector<const trace::PartitionedEvent*> run;
  std::vector<Verdict> verdicts;
  batch.reserve(options_.batch_size);
  run.reserve(options_.batch_size);
  while (true) {
    batch.clear();
    const std::size_t n = queue.pop_batch(batch, options_.batch_size);
    if (n == 0) break;  // closed and drained
    metrics_.batches_drained.fetch_add(1, kRelaxed);
    const auto dequeued = std::chrono::steady_clock::now();
    for (const Item& item : batch) {
      metrics_.queue_wait.record(dequeued - item.enqueued);
    }
    // Feed maximal consecutive runs of the same session under one session
    // lock — this is where window classification batches up.
    std::size_t i = 0;
    while (i < batch.size()) {
      std::size_t j = i;
      run.clear();
      while (j < batch.size() && batch[j].session == batch[i].session) {
        run.push_back(&batch[j].event);
        ++j;
      }
      verdicts.clear();
      const auto t0 = std::chrono::steady_clock::now();
      batch[i].session->feed_run(run.data(), run.size(), verdicts);
      metrics_.classify.record(std::chrono::steady_clock::now() - t0);
      metrics_.events_processed.fetch_add(run.size(), kRelaxed);
      for (const Verdict& v : verdicts) {
        metrics_.windows_scored.fetch_add(1, kRelaxed);
        (v.label == 1 ? metrics_.verdicts_benign
                      : metrics_.verdicts_malicious)
            .fetch_add(1, kRelaxed);
        if (sink_) {
          sink_(VerdictRecord{batch[i].session->key(), v.window_index,
                              v.label});
        }
      }
      i = j;
    }
    note_completed(batch.size());
  }
}

}  // namespace leaps::serve
