// The LEAPS training pipeline (Figure 1) and the trained detector.
//
// prepare() runs the full front half of the workflow on a (benign, mixed)
// pair of partitioned logs:
//   Stack-partitioned events
//     → Data Preprocessing (clustered {Event_Type, Lib, Func} tuples,
//        coalesced into windows)                                → features
//     → CFG Inference on both application stack traces (Alg. 1)
//     → Weight Assessment mixed-vs-benign (Alg. 2)              → benignity
//     → per-window SVM weights  c = 1 − mean benignity.
//
// The benignity→c flip is deliberate (see DESIGN.md): Algorithm 2 measures
// *benignity*, while Eqn. 2's cᵢ is the importance of a *negative* training
// sample — a mixed-log window that the CFG proves benign must not act as a
// malicious exemplar.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "cfg/alignment.h"
#include "cfg/inference.h"
#include "cfg/weight.h"
#include "core/preprocess.h"
#include "ml/dataset.h"
#include "ml/scaler.h"
#include "ml/svm.h"
#include "trace/partition.h"

namespace leaps::core {

struct PipelineOptions {
  PreprocessOptions preprocess;
  cfg::InferenceOptions inference;
  /// Benignity assumed for mixed events with no application frames at all.
  double default_benignity = 1.0;
  /// Align the mixed CFG to the benign CFG structurally before weight
  /// assessment (Section VI-A extension). Required for source-level
  /// trojans, where recompilation shifts every address; harmless (pivots
  /// are identities) for the binary attacks of Table I.
  bool align_cfgs = false;
  cfg::AlignmentOptions alignment;
};

/// Everything prepare() learns from one (benign, mixed) training pair.
struct TrainingData {
  Preprocessor preprocessor;  // fitted on both logs
  /// Positive samples: label +1, weight 1.
  ml::Dataset benign;
  /// Negative samples: label -1, weight = CFG-derived maliciousness.
  ml::Dataset mixed;
  /// Window → source-event indices (for the CGraph baseline and tests).
  WindowedData benign_windows;
  WindowedData mixed_windows;
  /// Diagnostics: the inferred CFGs and raw per-event benignity.
  cfg::InferredCfg benign_cfg;
  cfg::InferredCfg mixed_cfg;
  std::map<std::uint64_t, double> event_benignity;  // seq → [0,1]
  /// Populated when PipelineOptions::align_cfgs is set.
  cfg::Alignment alignment;
};

class LeapsPipeline {
 public:
  explicit LeapsPipeline(PipelineOptions options = {}) : options_(options) {}

  TrainingData prepare(const trace::PartitionedLog& benign_log,
                       const trace::PartitionedLog& mixed_log) const;

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

/// Everything a later *incremental* retraining run needs to continue from
/// this detector instead of starting cold (the continual-learning state of
/// src/online/):
///   * the benign CFG the weights were assessed against — live benign
///     traffic merges new edges into it (edges only accumulate),
///   * the scaled training set the SVM was fit on — new benign windows are
///     appended to it,
///   * the full dual solution α aligned with that set — the warm start for
///     the next SMO run.
/// Persisted by core/persist (format v2); absent on detectors loaded from
/// pre-v2 files, which therefore fall back to cold-start retraining.
struct ContinualState {
  cfg::AddressGraph benign_cfg;
  ml::Dataset train;          // scaled rows, labels ±1, weights c_i
  std::vector<double> alpha;  // size == train.size()
};

/// A deployed classifier: preprocessing + scaling + (W)SVM, applied to any
/// partitioned log (the Testing Phase).
///
/// Thread safety: every const member (scan, predict, stream, accessors)
/// may be called concurrently on a shared `const Detector` (the serving
/// layer in src/serve/ relies on this). The model/preprocessor state is
/// genuinely read-only; the one internal cache — the TupleCodec that
/// memoizes interned-id features for the compact-event path — is itself
/// thread-safe and deterministic (same id, same value), so sharing stays
/// race-free and verdicts stay byte-identical. The only mutators are
/// calibrate() and set_decision_threshold(); finish calibrating before
/// publishing the detector to other threads. Stream objects are NOT
/// thread-safe: one stream = one event source.
class Detector {
 public:
  Detector(Preprocessor preprocessor, ml::MinMaxScaler scaler,
           ml::SvmModel model);

  struct ScanResult {
    std::vector<int> window_labels;  // +1 benign / -1 malicious per window
    std::size_t benign_windows = 0;
    std::size_t malicious_windows = 0;
    double malicious_fraction() const;
  };

  /// Classifies every window of the log.
  ScanResult scan(const trace::PartitionedLog& log) const;

  /// Classifies one already-extracted (unscaled) feature window.
  int predict(const ml::FeatureVector& raw_features) const;

  /// The SVM decision value f(x) for one (unscaled) feature window —
  /// predict() is `f >= decision_threshold()`. Exposed separately so the
  /// serving layer can report *how* malicious a window looked (audit
  /// stream) and watch the distribution drift (src/online/drift.h).
  double decision_value(const ml::FeatureVector& raw_features) const;

  /// Calibrates the verdict threshold so that at most
  /// `max_false_alarm_rate` of the given known-clean log's windows are
  /// flagged malicious (an operator-facing operating point; the default
  /// threshold 0 is the SVM's natural boundary). Returns the fraction of
  /// clean windows flagged after calibration.
  double calibrate(const trace::PartitionedLog& clean_log,
                   double max_false_alarm_rate);

  /// Decision offset: a window is malicious when the SVM decision value
  /// falls below this.
  double decision_threshold() const { return decision_threshold_; }
  void set_decision_threshold(double t) { decision_threshold_ = t; }

  const ml::SvmModel& model() const { return model_; }
  const Preprocessor& preprocessor() const { return preprocessor_; }
  const ml::MinMaxScaler& scaler() const { return scaler_; }
  /// The interned-feature cache for the compact-event serving path (see
  /// TupleCodec). Shared by every Stream of this detector; copies of the
  /// detector share it too (the cached values depend only on the model,
  /// never on addresses).
  TupleCodec& codec() const { return *codec_; }

  /// Continual-learning state, when this detector carries one (see
  /// ContinualState). Like calibrate(), set it before publishing the
  /// detector to other threads; a published `const Detector` stays
  /// genuinely immutable.
  const ContinualState* continual() const {
    return continual_.has_value() ? &*continual_ : nullptr;
  }
  void set_continual(ContinualState state) { continual_ = std::move(state); }
  void clear_continual() { continual_.reset(); }

  /// Online scanning: feed events as the tracer produces them; a verdict
  /// (+1 benign / -1 malicious) pops out every `window` events. The stream
  /// borrows the detector, which must outlive it.
  class Stream {
   public:
    explicit Stream(const Detector& detector);

    /// Returns a verdict when this event completes a window.
    std::optional<int> push(const trace::PartitionedEvent& event);

    /// Compact-event fast path: same verdicts, byte for byte, as push()
    /// on the event `table` interned. Features come from the detector's
    /// TupleCodec (id-keyed cache) instead of rebuilding string sets.
    std::optional<int> push(const trace::CompactEvent& event,
                            const trace::TokenTable& table);

    std::size_t events_seen() const { return events_seen_; }
    /// Events buffered toward the next (incomplete) window. Mirrors batch
    /// scan() semantics: a trailing partial window is never classified.
    std::size_t pending_events() const { return pending_.size() / 3; }
    const ScanResult& tally() const { return tally_; }
    /// Decision value of the most recently completed window (0 before the
    /// first verdict). Valid right after push() returned a label.
    double last_decision_value() const { return last_decision_value_; }

   private:
    std::optional<int> push_tuple(const EventTuple& tuple);

    const Detector* detector_;
    ml::FeatureVector pending_;
    std::size_t events_seen_ = 0;
    double last_decision_value_ = 0.0;
    ScanResult tally_;
  };
  Stream stream() const { return Stream(*this); }

 private:
  Preprocessor preprocessor_;
  ml::MinMaxScaler scaler_;
  ml::SvmModel model_;
  double decision_threshold_ = 0.0;
  std::optional<ContinualState> continual_;
  // shared_ptr keeps the detector movable/copyable while the codec stays
  // non-copyable (its cache is address-stable, not its identity).
  std::shared_ptr<TupleCodec> codec_ = std::make_shared<TupleCodec>();
};

}  // namespace leaps::core
