#include "core/persist.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/crc32c.h"

namespace leaps::core {

namespace {

constexpr const char* kMagic = "LEAPS-DETECTOR";
constexpr const char* kVersionV1 = "v1";
constexpr const char* kVersionV2 = "v2";
constexpr const char* kVersionV3 = "v3";

// An attacker-supplied BLOCK length must not force a giant allocation.
constexpr std::size_t kMaxBlockBytes = std::size_t{256} << 20;

void require(bool condition, const std::string& what) {
  if (!condition) throw PersistError(what);
}

void check_token(const std::string& token) {
  require(!token.empty(), "empty token");
  for (const char c : token) {
    require(!std::isspace(static_cast<unsigned char>(c)),
            "token contains whitespace: '" + token + "'");
  }
}

void write_clusterer(std::ostream& os, const char* tag,
                     const SetClusterer& c) {
  os << "CLUSTERER " << tag << ' ' << c.unique_sets().size() << ' '
     << c.cluster_count() << '\n';
  const ml::ClusterResult& r = c.result();
  for (int id = 0; id < c.cluster_count(); ++id) {
    os << "POS " << id << ' ' << r.positions[static_cast<std::size_t>(id)]
       << '\n';
  }
  for (std::size_t i = 0; i < c.unique_sets().size(); ++i) {
    const ml::StringSet& set = c.unique_sets()[i];
    os << "SET " << r.assignment[i] << ' ' << set.size();
    for (const std::string& member : set) {
      check_token(member);
      os << ' ' << member;
    }
    os << '\n';
  }
}

void write_options(std::ostream& os, const PreprocessOptions& popt) {
  os << "OPTIONS " << popt.window << ' '
     << popt.lib_clustering.cut_distance << ' '
     << popt.lib_clustering.gap_scale << ' '
     << popt.func_clustering.cut_distance << ' '
     << popt.func_clustering.gap_scale << '\n';
}

void write_scaler(std::ostream& os, const ml::MinMaxScaler& scaler) {
  os << "SCALER " << scaler.dims() << '\n';
  os << "MIN";
  for (const double v : scaler.mins()) os << ' ' << v;
  os << "\nRANGE";
  for (const double v : scaler.ranges()) os << ' ' << v;
  os << '\n';
}

void write_svm(std::ostream& os, const Detector& detector) {
  const ml::SvmModel& model = detector.model();
  const ml::KernelParams& kernel = model.kernel();
  os << "SVM " << kernel_type_name(kernel.type) << ' ' << kernel.sigma2
     << ' ' << kernel.degree << ' ' << kernel.coef0 << ' ' << model.bias()
     << ' ' << model.support_vector_count() << ' '
     << (model.support_vector_count() > 0 ? model.support_vectors()[0].size()
                                          : 0)
     << '\n';
  for (std::size_t i = 0; i < model.support_vector_count(); ++i) {
    os << "SV " << model.coefficients()[i];
    for (const double v : model.support_vectors()[i]) os << ' ' << v;
    os << '\n';
  }
  os << "THRESHOLD " << detector.decision_threshold() << '\n';
}

void write_continual(std::ostream& os, const ContinualState& cs) {
  os << "CONTINUAL\n";
  os << "CFG " << cs.benign_cfg.edge_count() << '\n';
  for (const auto& [from, succs] : cs.benign_cfg.adjacency()) {
    for (const cfg::AddressGraph::Address to : succs) {
      os << "E " << from << ' ' << to << '\n';
    }
  }
  os << "TRAINSET " << cs.train.size() << ' ' << cs.train.dims() << '\n';
  for (std::size_t i = 0; i < cs.train.size(); ++i) {
    os << "ROW " << cs.train.y[i] << ' ' << cs.train.weight[i] << ' '
       << cs.alpha[i];
    for (const double v : cs.train.X[i]) os << ' ' << v;
    os << '\n';
  }
}

void write_block(std::ostream& os, const char* name,
                 const std::string& payload) {
  os << "BLOCK " << name << ' ' << payload.size() << ' ' << std::hex
     << std::setw(8) << std::setfill('0') << util::crc32c(payload)
     << std::dec << std::setfill(' ') << '\n'
     << payload;
}

/// Token-stream reader with error context.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  std::string word() {
    std::string w;
    require(static_cast<bool>(is_ >> w), "unexpected end of input");
    return w;
  }
  void expect(const std::string& token) {
    const std::string w = word();
    require(w == token, "expected '" + token + "', got '" + w + "'");
  }
  long long integer() {
    const std::string w = word();
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(w, &pos);
      require(pos == w.size(), "bad integer '" + w + "'");
      return v;
    } catch (const std::logic_error&) {
      throw PersistError("bad integer '" + w + "'");
    }
  }
  double real() {
    const std::string w = word();
    try {
      std::size_t pos = 0;
      const double v = std::stod(w, &pos);
      require(pos == w.size(), "bad number '" + w + "'");
      return v;
    } catch (const std::logic_error&) {
      throw PersistError("bad number '" + w + "'");
    }
  }

 private:
  std::istream& is_;
};

SetClusterer read_clusterer(Reader& r, const char* tag,
                            ml::ClusterOptions options) {
  r.expect("CLUSTERER");
  r.expect(tag);
  const auto set_count = static_cast<std::size_t>(r.integer());
  const auto cluster_count = static_cast<std::size_t>(r.integer());
  require(cluster_count > 0 && set_count >= cluster_count,
          "implausible clusterer sizes");

  ml::ClusterResult result;
  result.cluster_count = static_cast<int>(cluster_count);
  result.positions.assign(cluster_count, 0.0);
  for (std::size_t i = 0; i < cluster_count; ++i) {
    r.expect("POS");
    const auto id = static_cast<std::size_t>(r.integer());
    require(id < cluster_count, "POS id out of range");
    result.positions[id] = r.real();
  }
  std::vector<ml::StringSet> sets;
  sets.reserve(set_count);
  result.assignment.reserve(set_count);
  for (std::size_t i = 0; i < set_count; ++i) {
    r.expect("SET");
    const auto id = r.integer();
    require(id >= 0 && static_cast<std::size_t>(id) < cluster_count,
            "SET cluster id out of range");
    result.assignment.push_back(static_cast<int>(id));
    const auto members = static_cast<std::size_t>(r.integer());
    ml::StringSet set;
    set.reserve(members);
    for (std::size_t m = 0; m < members; ++m) set.push_back(r.word());
    require(std::is_sorted(set.begin(), set.end()), "SET not sorted");
    sets.push_back(std::move(set));
  }
  // leaf_order is not needed for assignment/position lookups; store the
  // identity to keep the result internally consistent.
  result.leaf_order.resize(set_count);
  for (std::size_t i = 0; i < set_count; ++i) result.leaf_order[i] = i;
  return SetClusterer::from_state(options, std::move(sets),
                                  std::move(result));
}

/// Parses everything after the magic line (OPTIONS..END). Shared by the
/// v1/v2 token-stream path and the v3 path (which feeds it the verified
/// concatenated block payloads).
Detector load_detector_body(Reader& r, bool allow_continual) {
  r.expect("OPTIONS");
  PreprocessOptions popt;
  popt.window = static_cast<std::size_t>(r.integer());
  require(popt.window >= 1, "bad window");
  popt.lib_clustering.cut_distance = r.real();
  popt.lib_clustering.gap_scale = r.real();
  popt.func_clustering.cut_distance = r.real();
  popt.func_clustering.gap_scale = r.real();

  SetClusterer libs = read_clusterer(r, "LIB", popt.lib_clustering);
  SetClusterer funcs = read_clusterer(r, "FUNC", popt.func_clustering);
  Preprocessor pre =
      Preprocessor::from_state(popt, std::move(libs), std::move(funcs));

  r.expect("SCALER");
  const auto dims = static_cast<std::size_t>(r.integer());
  require(dims == 3 * popt.window, "scaler dims disagree with window");
  std::vector<double> mins(dims);
  std::vector<double> ranges(dims);
  r.expect("MIN");
  for (double& v : mins) v = r.real();
  r.expect("RANGE");
  for (double& v : ranges) v = r.real();
  ml::MinMaxScaler scaler =
      ml::MinMaxScaler::from_state(std::move(mins), std::move(ranges));

  r.expect("SVM");
  ml::KernelParams kernel;
  const std::string kernel_name = r.word();
  if (kernel_name == "gaussian") {
    kernel.type = ml::KernelType::kGaussian;
  } else if (kernel_name == "linear") {
    kernel.type = ml::KernelType::kLinear;
  } else if (kernel_name == "polynomial") {
    kernel.type = ml::KernelType::kPolynomial;
  } else {
    throw PersistError("unknown kernel '" + kernel_name + "'");
  }
  kernel.sigma2 = r.real();
  require(kernel.sigma2 > 0.0, "bad sigma2");
  kernel.degree = static_cast<int>(r.integer());
  kernel.coef0 = r.real();
  const double bias = r.real();
  const auto sv_count = static_cast<std::size_t>(r.integer());
  const auto sv_dims = static_cast<std::size_t>(r.integer());
  require(sv_count == 0 || sv_dims == dims, "SV dims disagree with scaler");
  std::vector<ml::FeatureVector> svs;
  std::vector<double> coefs;
  svs.reserve(sv_count);
  coefs.reserve(sv_count);
  for (std::size_t i = 0; i < sv_count; ++i) {
    r.expect("SV");
    coefs.push_back(r.real());
    ml::FeatureVector x(sv_dims);
    for (double& v : x) v = r.real();
    svs.push_back(std::move(x));
  }
  r.expect("THRESHOLD");
  const double threshold = r.real();

  // Optional continual-learning block between THRESHOLD and END (v2/v3).
  // A v1 file goes straight to END and yields a detector without the
  // state — the cold-start fallback for pre-online-learning model files.
  std::optional<ContinualState> continual;
  std::string tail = r.word();
  if (tail == "CONTINUAL") {
    require(allow_continual, "CONTINUAL block in a v1 file");
    ContinualState cs;
    r.expect("CFG");
    const auto edges = static_cast<std::size_t>(r.integer());
    for (std::size_t e = 0; e < edges; ++e) {
      r.expect("E");
      const auto from = static_cast<std::uint64_t>(r.integer());
      const auto to = static_cast<std::uint64_t>(r.integer());
      cs.benign_cfg.add_edge(from, to);
    }
    require(cs.benign_cfg.edge_count() == edges,
            "CONTINUAL CFG edge count disagrees (duplicate edges?)");
    r.expect("TRAINSET");
    const auto rows = static_cast<std::size_t>(r.integer());
    const auto row_dims = static_cast<std::size_t>(r.integer());
    require(rows == 0 || row_dims == dims,
            "TRAINSET dims disagree with scaler");
    cs.alpha.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      r.expect("ROW");
      const auto label = static_cast<int>(r.integer());
      require(label == 1 || label == -1, "ROW label must be +/-1");
      const double w = r.real();
      require(w >= 0.0 && w <= 1.0, "ROW weight outside [0,1]");
      const double a = r.real();
      require(a >= 0.0, "ROW alpha must be >= 0");
      ml::FeatureVector x(row_dims);
      for (double& v : x) v = r.real();
      cs.train.add(std::move(x), label, w);
      cs.alpha.push_back(a);
    }
    continual = std::move(cs);
    tail = r.word();
  }
  require(tail == "END", "expected 'END', got '" + tail + "'");

  ml::SvmModel model(std::move(svs), std::move(coefs), bias, kernel);
  Detector detector(std::move(pre), std::move(scaler), std::move(model));
  detector.set_decision_threshold(threshold);
  if (continual.has_value()) detector.set_continual(*std::move(continual));
  return detector;
}

std::size_t offset_of(std::istream& is) {
  const std::streampos pos = is.tellg();
  return pos < 0 ? 0 : static_cast<std::size_t>(pos);
}

/// v3: verify every BLOCK's CRC32C before parsing a single token, then
/// parse the concatenated payloads with the shared body parser. Every
/// failure names the damaged block and the byte offset of the damage.
Detector load_detector_v3(std::istream& is) {
  std::string body;
  for (;;) {
    const std::size_t line_offset = offset_of(is);
    std::string line;
    if (!std::getline(is, line)) {
      throw PersistError("truncated v3 file: missing END at byte offset " +
                         std::to_string(line_offset));
    }
    if (line == "END") break;
    std::istringstream header(line);
    std::string keyword;
    std::string name;
    unsigned long long nbytes = 0;
    std::string crc_hex;
    if (!(header >> keyword >> name >> nbytes >> crc_hex) ||
        keyword != "BLOCK") {
      throw PersistError("bad v3 block header at byte offset " +
                         std::to_string(line_offset) + ": '" + line + "'");
    }
    require(nbytes <= kMaxBlockBytes,
            "implausible block size in '" + name + "'");
    std::size_t crc_len = 0;
    unsigned long stored_crc = 0;
    try {
      stored_crc = std::stoul(crc_hex, &crc_len, 16);
    } catch (const std::logic_error&) {
      crc_len = 0;
    }
    if (crc_len != crc_hex.size() || crc_hex.empty()) {
      throw PersistError("bad v3 block checksum field at byte offset " +
                         std::to_string(line_offset) + ": '" + crc_hex +
                         "'");
    }

    const std::size_t payload_offset = offset_of(is);
    std::string payload(static_cast<std::size_t>(nbytes), '\0');
    is.read(payload.data(), static_cast<std::streamsize>(nbytes));
    const auto got = static_cast<std::size_t>(is.gcount());
    if (got != nbytes) {
      throw PersistError(
          "truncated block '" + name + "': expected " +
          std::to_string(nbytes) + " payload bytes at byte offset " +
          std::to_string(payload_offset) + ", file ends after " +
          std::to_string(got));
    }
    const std::uint32_t computed = util::crc32c(payload);
    if (computed != static_cast<std::uint32_t>(stored_crc)) {
      std::ostringstream msg;
      msg << "block '" << name << "' checksum mismatch at byte offset "
          << payload_offset << " (stored " << std::hex << std::setw(8)
          << std::setfill('0') << stored_crc << ", computed " << std::setw(8)
          << computed << ")";
      throw PersistError(msg.str());
    }
    body += payload;
  }
  // Every block's CRC checked out; parse the concatenation as one v2-style
  // body with the END sentinel the framing made redundant.
  body += "END\n";
  std::istringstream body_stream(body);
  Reader r(body_stream);
  return load_detector_body(r, /*allow_continual=*/true);
}

}  // namespace

void save_detector(const Detector& detector, std::ostream& os,
                   PersistVersion version) {
  const Preprocessor& pre = detector.preprocessor();
  require(pre.fitted(), "detector preprocessor not fitted");
  const ContinualState* cs = detector.continual();
  if (cs != nullptr) {
    require(cs->alpha.size() == cs->train.size(),
            "continual state: alpha size disagrees with training set");
  }

  if (version == PersistVersion::kV2) {
    os << std::setprecision(17);
    os << kMagic << ' ' << kVersionV2 << '\n';
    write_options(os, pre.options());
    write_clusterer(os, "LIB", pre.lib_clusterer());
    write_clusterer(os, "FUNC", pre.func_clusterer());
    write_scaler(os, detector.scaler());
    write_svm(os, detector);
    if (cs != nullptr) write_continual(os, *cs);
    os << "END\n";
    require(static_cast<bool>(os), "write failure");
    return;
  }

  // v3: render each section once, frame it with size + CRC32C. The body
  // parser's END sentinel is supplied by the loader after it verifies and
  // concatenates the payloads; the outer END terminates the block stream.
  const auto render = [](const std::function<void(std::ostream&)>& fn) {
    std::ostringstream section;
    section << std::setprecision(17);
    fn(section);
    return std::move(section).str();
  };
  os << kMagic << ' ' << kVersionV3 << '\n';
  write_block(os, "OPTIONS",
              render([&](std::ostream& s) { write_options(s, pre.options()); }));
  write_block(os, "LIB", render([&](std::ostream& s) {
                write_clusterer(s, "LIB", pre.lib_clusterer());
              }));
  write_block(os, "FUNC", render([&](std::ostream& s) {
                write_clusterer(s, "FUNC", pre.func_clusterer());
              }));
  write_block(os, "SCALER", render([&](std::ostream& s) {
                write_scaler(s, detector.scaler());
              }));
  write_block(os, "SVM",
              render([&](std::ostream& s) { write_svm(s, detector); }));
  if (cs != nullptr) {
    write_block(os, "CONTINUAL", render([&](std::ostream& s) {
                  write_continual(s, *cs);
                }));
  }
  os << "END\n";
  require(static_cast<bool>(os), "write failure");
}

Detector load_detector(std::istream& is) {
  std::string magic_line;
  require(static_cast<bool>(std::getline(is, magic_line)),
          "unexpected end of input");
  std::istringstream header(magic_line);
  std::string magic;
  std::string version;
  require(static_cast<bool>(header >> magic) && magic == kMagic,
          "expected '" + std::string(kMagic) + "', got '" + magic + "'");
  require(static_cast<bool>(header >> version),
          "missing version after magic");
  if (version == kVersionV3) return load_detector_v3(is);
  require(version == kVersionV1 || version == kVersionV2,
          "unsupported version '" + version + "'");
  Reader r(is);
  return load_detector_body(r, /*allow_continual=*/version == kVersionV2);
}

void save_detector_file(const Detector& detector, const std::string& path,
                        PersistVersion version) {
  const util::Status status = util::atomic_write_file(
      path,
      [&](std::ostream& os) { save_detector(detector, os, version); });
  if (!status.ok()) {
    throw PersistError("atomic save of " + path + " failed: " +
                       status.to_string());
  }
}

Detector load_detector_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw PersistError("cannot open: " + path);
  return load_detector(is);
}

}  // namespace leaps::core
