// Evaluation harness (Section V): data selection, the three competing
// models, the five measurements, and multi-run averaging.
//
// For each run:
//  * pure benign windows are split 50/50 into train/test pools,
//  * `sample_fraction` (paper: 20%) of each pool — and of the mixed and
//    pure-malicious windows — is randomly selected,
//  * CGraph, plain SVM and Weighted SVM are trained on the *same* selection
//    and evaluated on the same held-out benign + pure-malicious points,
//  * λ and σ² are tuned by k-fold cross-validation (by default once per
//    scenario, on the first run's training set — the selection is an i.i.d.
//    resample, so the tuned values are stable; set tune_every_run to
//    reproduce the paper's per-run tuning at ~10x the cost).
// Results are averaged over `runs` (paper: 10) runs.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ml/cgraph_model.h"
#include "ml/cross_validation.h"
#include "ml/hmm.h"
#include "ml/metrics.h"
#include "sim/scenario.h"

namespace leaps::core {

struct ExperimentOptions {
  sim::SimConfig sim;
  PipelineOptions pipeline;
  ml::SvmParams svm_base;
  ml::CrossValidationOptions cv;
  std::size_t runs = 10;
  double sample_fraction = 0.20;
  double benign_train_fraction = 0.50;
  std::uint64_t seed = 7;
  bool tune_every_run = false;
  /// Execute the averaging runs on a thread pool (each run is independently
  /// seeded and aggregation is order-stable, so results are bit-identical
  /// to sequential execution).
  bool parallel_runs = true;
  /// Score the WSVM's cross-validation folds with confidence-weighted
  /// accuracy (see CrossValidationOptions::weighted_validation). Exposed so
  /// the ablation bench can quantify the bias of plain CV under label noise.
  bool weighted_cv_for_wsvm = true;
  /// Also train/evaluate the HMM sequence models (Section VI-B extension):
  /// an unweighted LLR classifier and a CFG-weighted one. Off by default —
  /// the paper's evaluation compares CGraph/SVM/WSVM only.
  bool include_hmm = false;
  ml::HmmClassifier::Options hmm;
};

struct ModelOutcome {
  ml::Measurements mean;
  ml::Measurements stddev;
  /// Mean area under the ROC curve across runs (threshold-free quality).
  double auc = 0.0;
  /// Confusion counts pooled over all runs (diagnostics).
  ml::ConfusionMatrix pooled;
  /// Hyper-parameters used (SVM/WSVM only).
  ml::SvmParams params;
};

struct ExperimentResult {
  sim::ScenarioSpec spec;
  std::size_t runs = 0;
  ModelOutcome cgraph;
  ModelOutcome svm;
  ModelOutcome wsvm;
  /// Populated only when ExperimentOptions::include_hmm is set.
  ModelOutcome hmm;        // unweighted sequences
  ModelOutcome whmm;       // CFG-weighted sequences
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentOptions options)
      : options_(std::move(options)) {}

  /// Generates the scenario's logs and evaluates all three models.
  ExperimentResult run_scenario(const sim::ScenarioSpec& spec) const;

  /// Evaluates all three models on pre-generated logs.
  ExperimentResult run_on_logs(const sim::ScenarioLogs& logs) const;

  const ExperimentOptions& options() const { return options_; }

 private:
  ExperimentOptions options_;
};

/// Fixed-width table formatting shared by the bench binaries.
std::string format_result_header(bool with_models);
std::string format_result_row(const ExperimentResult& r, bool with_models);

}  // namespace leaps::core
